// Skip-vs-no-skip regression suite: the quiescence-skipping scheduler
// must be invisible in every observable output. Each case runs the same
// workload twice — once with skipping (the default) and once with
// Config.NoSkip — with the full observability stack attached, and
// requires identical cycle counts, per-CPU stall statistics, memory
// reports, interval samples, latency histograms, trace event streams,
// rendered Chrome traces and profile JSON. The figures built from the
// runs must also match, so the printed experiments/cmpsim output is
// byte-identical by construction.
package cmpsim_test

import (
	"bytes"
	"reflect"
	"testing"

	"cmpsim"
	"cmpsim/internal/workload"
)

// instrumentedRun is everything observable about one run.
type instrumentedRun struct {
	res     *cmpsim.Result
	samples []cmpsim.Sample
	hist    string
	events  []cmpsim.TraceEvent
	chrome  []byte
	prof    []byte
}

func runInstrumented(t *testing.T, mk func() cmpsim.Workload, arch cmpsim.Arch, model cmpsim.CPUModel, noSkip bool) instrumentedRun {
	t.Helper()
	cfg := cmpsim.DefaultConfig()
	cfg.NoSkip = noSkip
	cfg.Metrics = cmpsim.NewMetrics(5000)
	ring := cmpsim.NewTraceRing(1 << 16)
	cfg.Trace = ring
	cfg.Prof = cmpsim.NewProfiler(cfg.NumCPUs, cfg.LineBytes)
	res, err := cmpsim.RunWorkload(mk(), arch, model, &cfg)
	if err != nil {
		t.Fatalf("%s/%s noSkip=%v: %v", arch, model, noSkip, err)
	}
	out := instrumentedRun{
		res:     res,
		samples: cfg.Metrics.Samples(),
		hist:    cfg.Metrics.Hist().String(),
		events:  ring.Events(),
	}
	var cb bytes.Buffer
	if err := cmpsim.WriteChromeTrace(&cb, out.events); err != nil {
		t.Fatal(err)
	}
	out.chrome = cb.Bytes()
	var pb bytes.Buffer
	if err := res.Profile.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	out.prof = pb.Bytes()
	return out
}

// diffRuns fails the test on the first observable difference between a
// skipping and a non-skipping run of the same configuration.
func diffRuns(t *testing.T, skip, ref instrumentedRun) {
	t.Helper()
	if skip.res.Cycles != ref.res.Cycles {
		t.Errorf("cycles: skip=%d no-skip=%d", skip.res.Cycles, ref.res.Cycles)
	}
	if !reflect.DeepEqual(skip.res.PerCPU, ref.res.PerCPU) {
		t.Errorf("per-CPU stats diverge:\nskip:    %+v\nno-skip: %+v", skip.res.PerCPU, ref.res.PerCPU)
	}
	if !reflect.DeepEqual(skip.res.MemReport, ref.res.MemReport) {
		t.Errorf("memory report diverges:\nskip:    %+v\nno-skip: %+v", skip.res.MemReport, ref.res.MemReport)
	}
	if !reflect.DeepEqual(skip.samples, ref.samples) {
		t.Errorf("interval samples diverge (%d vs %d samples)", len(skip.samples), len(ref.samples))
	}
	if skip.hist != ref.hist {
		t.Errorf("latency histograms diverge:\nskip:\n%s\nno-skip:\n%s", skip.hist, ref.hist)
	}
	if !reflect.DeepEqual(skip.events, ref.events) {
		t.Errorf("trace event streams diverge (%d vs %d events)", len(skip.events), len(ref.events))
	}
	if !bytes.Equal(skip.chrome, ref.chrome) {
		t.Error("rendered Chrome traces diverge")
	}
	if !bytes.Equal(skip.prof, ref.prof) {
		t.Error("profile JSON diverges")
	}
}

// TestSkipMatchesNoSkip covers the full architecture × CPU-model matrix
// with a miss-heavy workload (the case the scheduler accelerates most),
// comparing every observable output and the assembled figures.
func TestSkipMatchesNoSkip(t *testing.T) {
	for _, model := range []cmpsim.CPUModel{cmpsim.ModelMipsy, cmpsim.ModelMXS} {
		model := model
		mk := func() cmpsim.Workload {
			// Small enough to keep 12 instrumented runs in the seconds
			// range, large enough to blow the L1s and hit memory.
			return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
		}
		t.Run(string(model), func(t *testing.T) {
			skipRuns := map[cmpsim.Arch]*cmpsim.Result{}
			refRuns := map[cmpsim.Arch]*cmpsim.Result{}
			for _, arch := range cmpsim.Architectures() {
				skip := runInstrumented(t, mk, arch, model, false)
				ref := runInstrumented(t, mk, arch, model, true)
				t.Run(string(arch), func(t *testing.T) { diffRuns(t, skip, ref) })
				skipRuns[arch] = skip.res
				refRuns[arch] = ref.res
			}
			skipFig := cmpsim.BuildFigure("skip", "mp3d", model, skipRuns)
			refFig := cmpsim.BuildFigure("skip", "mp3d", model, refRuns)
			if skipFig.String() != refFig.String() {
				t.Errorf("figure text diverges:\nskip:\n%s\nno-skip:\n%s", skipFig, refFig)
			}
			if skipFig.Chart() != refFig.Chart() {
				t.Error("figure charts diverge")
			}
		})
	}
}

// TestSkipMatchesNoSkipKernel exercises the paths the matrix above
// cannot: the guest kernel's preemption timers (events scheduling
// events across skip windows), external interrupts landing on blocked
// CPUs, and context switches re-activating parked cores.
func TestSkipMatchesNoSkipKernel(t *testing.T) {
	for _, model := range []cmpsim.CPUModel{cmpsim.ModelMipsy, cmpsim.ModelMXS} {
		model := model
		mk := func() cmpsim.Workload {
			return workload.NewPmake(workload.PmakeParams{Procs: 5, Funcs: 10, Passes: 2})
		}
		t.Run(string(model), func(t *testing.T) {
			skip := runInstrumented(t, mk, cmpsim.SharedL1, model, false)
			ref := runInstrumented(t, mk, cmpsim.SharedL1, model, true)
			diffRuns(t, skip, ref)
		})
	}
}
