// End-to-end tests for the observability layer: the interval sampler
// must reconcile with the end-of-run memory report on every
// architecture, and the disabled instrumentation path must cost nothing.
package cmpsim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cmpsim"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/workload"
)

func eqntottSmall() cmpsim.Workload {
	return workload.NewEqntott(workload.EqntottParams{Words: 64, Iters: 20})
}

// TestIntervalMetricsReconcileWithReport checks the sampler's books on
// all three architectures: summing the per-interval access/miss deltas
// must reproduce the end-of-run memsys.Report aggregates exactly, and
// per-CPU interval instruction counts must sum to the run's total.
func TestIntervalMetricsReconcileWithReport(t *testing.T) {
	for _, arch := range cmpsim.Architectures() {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			t.Parallel()
			cfg := memsys.DefaultConfig()
			cfg.Metrics = cmpsim.NewMetrics(5000)
			res, err := cmpsim.RunWorkload(eqntottSmall(), arch, cmpsim.ModelMipsy, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics == nil {
				t.Fatal("run did not return the metrics collector")
			}
			samples := res.Metrics.Samples()
			if len(samples) < 2 {
				t.Fatalf("only %d samples for a %d-cycle run", len(samples), res.Cycles)
			}
			var insts, l1a, l1m, l2a, l2m uint64
			prevEnd := uint64(0)
			for i, s := range samples {
				if s.Start != prevEnd || s.End <= s.Start {
					t.Fatalf("sample %d has bad bounds [%d,%d) after %d", i, s.Start, s.End, prevEnd)
				}
				prevEnd = s.End
				insts += s.Insts
				l1a += s.L1DAcc
				l1m += s.L1DMiss
				l2a += s.L2Acc
				l2m += s.L2Miss
			}
			if last := samples[len(samples)-1].End; last != res.Cycles {
				t.Errorf("final sample ends at %d, run at %d (missing tail flush)", last, res.Cycles)
			}
			rep := res.MemReport
			if l1a != rep.L1D.Accesses() || l1m != rep.L1D.Misses() {
				t.Errorf("L1D interval sums %d/%d != report %d/%d",
					l1a, l1m, rep.L1D.Accesses(), rep.L1D.Misses())
			}
			if l2a != rep.L2.Accesses() || l2m != rep.L2.Misses() {
				t.Errorf("L2 interval sums %d/%d != report %d/%d",
					l2a, l2m, rep.L2.Accesses(), rep.L2.Misses())
			}
			if insts != res.Instructions() {
				t.Errorf("interval insts %d != run total %d", insts, res.Instructions())
			}
			if res.Metrics.Hist().Count[0] == 0 {
				t.Error("latency histogram saw no L1 accesses")
			}
		})
	}
}

// TestShortRunFlushesPartialInterval is the short-run satellite at
// system level: an interval longer than the whole run must still yield
// exactly one (partial) sample covering it.
func TestShortRunFlushesPartialInterval(t *testing.T) {
	cfg := memsys.DefaultConfig()
	cfg.Metrics = cmpsim.NewMetrics(1 << 40)
	res, err := cmpsim.RunWorkload(eqntottSmall(), cmpsim.SharedL2, cmpsim.ModelMipsy, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Metrics.Samples()
	if len(samples) != 1 {
		t.Fatalf("short run produced %d samples, want 1", len(samples))
	}
	if s := samples[0]; s.Start != 0 || s.End != res.Cycles || s.Insts != res.Instructions() {
		t.Errorf("partial sample %+v does not cover run (%d cycles, %d insts)",
			s, res.Cycles, res.Instructions())
	}
}

// TestTracedRunEmitsLoadableChromeTrace runs a traced workload end to
// end and validates the Chrome trace a user would open in Perfetto.
func TestTracedRunEmitsLoadableChromeTrace(t *testing.T) {
	cfg := memsys.DefaultConfig()
	ring := cmpsim.NewTraceRing(1 << 18)
	cfg.Trace = ring
	res, err := cmpsim.RunWorkload(eqntottSmall(), cmpsim.SharedL2, cmpsim.ModelMipsy, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("traced run emitted no events")
	}
	kinds := map[obsv.EventKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Cycle > res.Cycles {
			t.Fatalf("event %v beyond the run's last cycle %d", ev, res.Cycles)
		}
	}
	for _, k := range []obsv.EventKind{obsv.EvLoad, obsv.EvStore, obsv.EvGrant, obsv.EvMSHRAlloc} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in a full traced run", k)
		}
	}
	var buf bytes.Buffer
	if err := cmpsim.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	last := -1.0
	for _, ev := range trace.TraceEvents {
		ts, ok := ev["ts"].(float64)
		if !ok {
			continue // metadata
		}
		if ts < last {
			t.Fatalf("trace timestamps regress: %v after %v", ts, last)
		}
		last = ts
	}
}

// TestDisabledTracingMatchesUntracedRun: wiring a tracer must observe,
// never perturb — cycle counts with tracing on and off must be
// identical, and a disabled config must not allocate on the hot path.
func TestDisabledTracingMatchesUntracedRun(t *testing.T) {
	base := memsys.DefaultConfig()
	plain, err := cmpsim.RunWorkload(eqntottSmall(), cmpsim.SharedL2, cmpsim.ModelMipsy, &base)
	if err != nil {
		t.Fatal(err)
	}
	traced := memsys.DefaultConfig()
	traced.Trace = cmpsim.NewTraceRing(1 << 18)
	traced.Metrics = cmpsim.NewMetrics(5000)
	got, err := cmpsim.RunWorkload(eqntottSmall(), cmpsim.SharedL2, cmpsim.ModelMipsy, &traced)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != plain.Cycles || got.Instructions() != plain.Instructions() {
		t.Errorf("tracing perturbed the run: %d/%d cycles, %d/%d insts",
			got.Cycles, plain.Cycles, got.Instructions(), plain.Instructions())
	}
}

// TestDisabledPathDoesNotAllocate proves the nil-tracer fast path of a
// steady-state L1 hit performs zero heap allocations.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	s := memsys.NewSharedL2(memsys.DefaultConfig())
	now := warmLine(s)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			t.Fatal("steady-state read hit refused")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-tracing access allocates %v per op, want 0", allocs)
	}
}

// warmLine faults one line into CPU 0's L1 and returns a cycle safely
// past the fill, so subsequent reads are 1-cycle hits.
func warmLine(s memsys.System) uint64 {
	res, _ := s.Access(0, 0, 0x4000, false)
	return res.Done + 100
}

// BenchmarkTracerDisabled measures the cost of instrumented-but-
// disabled code: steady-state L1 read hits through the SharedL2 system
// with a nil tracer. The acceptance bar is 0 allocs/op; the per-event
// overhead of the nil check itself is measured by the delta against the
// pre-instrumentation seed benchmarks.
func BenchmarkTracerDisabled(b *testing.B) {
	s := memsys.NewSharedL2(memsys.DefaultConfig())
	now := warmLine(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			b.Fatal("read hit refused")
		}
	}
}

// BenchmarkTracerRing is the enabled-path companion: the same loop with
// a live ring tracer, to quantify what turning tracing on costs.
func BenchmarkTracerRing(b *testing.B) {
	cfg := memsys.DefaultConfig()
	cfg.Trace = obsv.NewRing(1 << 16)
	s := memsys.NewSharedL2(cfg)
	now := warmLine(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			b.Fatal("read hit refused")
		}
	}
}
