module cmpsim

go 1.22
