// Package cmpsim is a from-scratch reproduction of the system studied in
// "Evaluation of Design Alternatives for a Multiprocessor Microprocessor"
// (Nayfeh, Hammond, Olukotun; ISCA 1996): an execution-driven simulator
// for three four-processor architectures — shared-primary-cache,
// shared-secondary-cache, and bus-based shared-memory — driven by two CPU
// models (the simple in-order "Mipsy" and the 2-way out-of-order "MXS")
// running the paper's seven workloads as real guest programs for a custom
// MIPS-like ISA.
//
// This package is the public facade: it re-exports the user-facing types
// from the internal packages so a downstream user can run workloads,
// sweep configurations and collect the paper's figures without touching
// simulator internals.
//
// Quick start:
//
//	w, _ := cmpsim.NewWorkload("eqntott")
//	res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, nil)
//	fmt.Println(res.Cycles, res.IPC())
//
// See examples/ for complete programs and cmd/experiments for the
// harness that regenerates every table and figure of the paper.
package cmpsim

import (
	"io"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
	"cmpsim/internal/runner"
	"cmpsim/internal/stats"
	"cmpsim/internal/workload"
)

// Arch selects one of the three architecture compositions of Section 2.
type Arch = core.Arch

// The three architectures under study.
const (
	SharedL1  = core.SharedL1  // shared 64KB L1 D-cache behind a crossbar
	SharedL2  = core.SharedL2  // private write-through L1s, shared banked L2
	SharedMem = core.SharedMem // private L1+L2 per CPU, snoopy bus
)

// Architectures returns the three architectures in the paper's order.
func Architectures() []Arch { return core.Arches() }

// CPUModel selects the processor simulator.
type CPUModel = core.CPUModel

// The two CPU models of Section 3.1.
const (
	ModelMipsy = core.ModelMipsy // in-order, 1-cycle results, blocking memory
	ModelMXS   = core.ModelMXS   // 2-way dynamic superscalar, speculative, non-blocking
)

// Config carries every memory-system parameter (Table 2 latencies, cache
// geometries, structural limits). DefaultConfig returns the paper's
// values.
type Config = memsys.Config

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config { return memsys.DefaultConfig() }

// Machine is a composed simulated system (architecture + CPUs + memory +
// guest programs). Most users never need it directly — RunWorkload
// handles the lifecycle — but custom guest programs are loaded through
// it; see examples/custom-workload.
type Machine = core.Machine

// NewMachine builds a bare machine for custom guest programs: pick an
// architecture and CPU model, load programs with Machine.LoadProgram,
// add hardware contexts with Machine.AddContext, then call Machine.Run.
func NewMachine(arch Arch, model CPUModel, cfg Config, memBytes uint32) (*Machine, error) {
	return core.NewMachine(arch, model, cfg, memBytes)
}

// Checkpoint captures a machine's functional state (memory image and
// hardware contexts), following the paper's methodology: position a
// workload once, then resume the identical state on each architecture.
// Serialize with WriteCheckpoint/ReadCheckpoint; timing state restarts
// cold, as in SimOS.
type Checkpoint = core.Checkpoint

// WriteCheckpoint serializes a checkpoint (gob, gzip-compressed).
var WriteCheckpoint = core.WriteCheckpoint

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
var ReadCheckpoint = core.ReadCheckpoint

// Result summarizes a completed simulation run.
type Result = core.RunResult

// Workload is one of the paper's seven benchmarks (or a user-defined
// one): it configures a machine and validates the guest's results
// against a host-side reference implementation.
type Workload = workload.Workload

// Workloads lists the built-in workload names.
func Workloads() []string { return workload.Names() }

// NewWorkload returns a built-in workload with its paper-scale defaults:
// "eqntott", "mp3d", "ocean", "volpack", "ear", "fft" or "pmake".
func NewWorkload(name string) (Workload, error) { return workload.New(name) }

// RunWorkload builds a machine for (workload, architecture, CPU model),
// runs it to completion, validates the results against the workload's Go
// reference, and returns the run statistics. cfg overrides the
// memory-system parameters; nil uses the paper's defaults.
func RunWorkload(w Workload, arch Arch, model CPUModel, cfg *Config) (*Result, error) {
	return workload.Run(w, arch, model, cfg)
}

// Breakdown is the execution-time decomposition used by the paper's
// per-application figures.
type Breakdown = stats.Breakdown

// BreakdownOf computes the execution-time decomposition of a run.
func BreakdownOf(r *Result) Breakdown { return stats.FromRun(r) }

// Figure is a reproduction of one of the paper's per-application
// figures: the three architectures' breakdowns, normalized to the
// shared-memory baseline.
type Figure = stats.Figure

// BuildFigure assembles a Figure from per-architecture runs (the
// shared-memory run is required as the normalization baseline).
func BuildFigure(name, workloadName string, model CPUModel, runs map[Arch]*Result) Figure {
	return stats.BuildFigure(name, workloadName, model, runs)
}

// IPCRow is one bar of the paper's Figure 11: achieved per-CPU IPC and
// the apportioned losses.
type IPCRow = stats.IPCRow

// IPCBreakdownOf computes a Figure 11 row from an MXS run.
func IPCBreakdownOf(r *Result) IPCRow { return stats.IPCBreakdown(r) }

// --- parallel runs and result caching (package runner) ---

// Job is one independent simulation run for the parallel runner: a
// fresh workload on one architecture under one CPU model and config.
// Distinct jobs share no state, so a grid of them is embarrassingly
// parallel; see RunnerPool.
type Job = runner.Job

// JobResult is one Job's outcome, in the same slice position.
type JobResult = runner.Result

// RunnerPool shards independent jobs across a worker pool and merges
// results in stable job order — parallel output is bit-identical to
// serial. Set Cache to memoize results across invocations.
type RunnerPool = runner.Pool

// RunCache is a directory of JSON-serialized run results keyed by a
// canonical hash of (sim version, workload, architecture, CPU model,
// config); repeated invocations skip already-computed runs.
type RunCache = runner.Cache

// OpenRunCache opens (creating if needed) a result cache directory.
func OpenRunCache(dir string) (*RunCache, error) { return runner.OpenCache(dir) }

// --- observability (package obsv) ---

// Tracer receives cycle-accurate simulator events. Install one in
// Config.Trace before building a machine; the disabled (nil) fast path
// costs a single pointer check per event site.
type Tracer = obsv.Tracer

// TraceEvent is one trace record (flat value type, allocation-free).
type TraceEvent = obsv.Event

// TraceRing is the standard Tracer: a bounded in-memory ring buffer
// keeping the most recent events.
type TraceRing = obsv.Ring

// NewTraceRing returns a ring tracer holding the last capacity events.
func NewTraceRing(capacity int) *TraceRing { return obsv.NewRing(capacity) }

// WriteChromeTrace writes events in the Chrome trace-event format,
// loadable in chrome://tracing and Perfetto (one track per CPU, one per
// shared resource).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obsv.WriteChromeTrace(w, events)
}

// WriteTraceJSONL writes events as JSON Lines, the input format of
// cmd/tracestats.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return obsv.WriteJSONL(w, events)
}

// Metrics is the interval sampler: set Config.Metrics to a NewMetrics
// collector and the run produces a time-series of per-CPU IPC, miss
// rates, resource utilization and MSHR occupancy, plus latency
// histograms (Result.Metrics).
type Metrics = obsv.Metrics

// Sample is one interval of the metrics time-series.
type Sample = obsv.Sample

// NewMetrics returns a collector sampling every interval cycles.
func NewMetrics(interval uint64) *Metrics { return obsv.NewMetrics(interval) }

// --- guest-level profiling (package prof) ---

// Profiler is the guest-level cycle-attribution profiler: set
// Config.Prof to a NewProfiler instance and the run charges every busy
// and stall cycle to the guest PC responsible, and records per-cache-
// line sharing behavior (misses, invalidations, cache-to-cache
// transfers by writer→reader CPU pair). The disabled (nil) fast path
// costs a single pointer check per site. A job carrying a profiler is
// never served from the result cache.
type Profiler = prof.Profiler

// NewProfiler returns a profiler for a machine with numCPUs processors
// and lineBytes-sized cache lines (pass Config.NumCPUs and
// Config.LineBytes).
func NewProfiler(numCPUs int, lineBytes uint32) *Profiler {
	return prof.New(numCPUs, lineBytes)
}

// Profile is a completed run's profile snapshot (Result.Profile):
// per-PC and per-function cycle attribution with per-level stall
// splits, the cache-line sharing table with false-sharing candidates,
// and the guest symbol table used for attribution. Render with
// WriteReport / WriteFolded, or serialize with WriteJSON.
type Profile = prof.Profile

// ReadProfile deserializes a profile written by Profile.WriteJSON.
func ReadProfile(r io.Reader) (*Profile, error) { return prof.ReadProfile(r) }
