// End-to-end tests for the guest-level cycle-attribution profiler: the
// per-PC books must reconcile with the CPU models' stall statistics,
// profiled output must be byte-deterministic at any worker count, and
// the disabled (nil-profiler) path must cost nothing.
package cmpsim_test

import (
	"bytes"
	"testing"

	"cmpsim"
	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/prof"
	"cmpsim/internal/runner"
	"cmpsim/internal/workload"
)

// TestProfNumLevelsPinned pins prof's private copy of the memory-level
// count to the real one: memsys imports prof, so prof cannot import
// memsys back, and a new level added there must be mirrored.
func TestProfNumLevelsPinned(t *testing.T) {
	if prof.NumLevels != memsys.NumLevels {
		t.Fatalf("prof.NumLevels = %d, memsys.NumLevels = %d; keep them in lockstep",
			prof.NumLevels, memsys.NumLevels)
	}
}

// profRun runs one workload with a fresh profiler attached and returns
// the result (whose Profile is the snapshot).
func profRun(t *testing.T, arch cmpsim.Arch, model cmpsim.CPUModel) *cmpsim.Result {
	t.Helper()
	cfg := memsys.DefaultConfig()
	cfg.Prof = cmpsim.NewProfiler(cfg.NumCPUs, cfg.LineBytes)
	res, err := cmpsim.RunWorkload(eqntottSmall(), arch, model, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("profiled run returned no Profile snapshot")
	}
	return res
}

// sumPCs folds every per-PC entry of a profile into one aggregate.
func sumPCs(p *cmpsim.Profile) (retired, pipe uint64, istall, dstall [prof.NumLevels]uint64) {
	for i := range p.PCs {
		e := &p.PCs[i]
		retired += e.Retired
		pipe += e.Pipe
		for l := 0; l < prof.NumLevels; l++ {
			istall[l] += e.IStall[l]
			dstall[l] += e.DStall[l]
		}
	}
	return
}

// TestProfReconcilesWithStallStatsMipsy checks the Mipsy books exactly
// on every architecture: summing the per-PC profile entries must
// reproduce the run's instruction count and per-level stall statistics
// cycle for cycle — the profiler observes the same events, keyed by PC.
func TestProfReconcilesWithStallStatsMipsy(t *testing.T) {
	for _, arch := range cmpsim.Architectures() {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			t.Parallel()
			res := profRun(t, arch, cmpsim.ModelMipsy)
			retired, pipe, istall, dstall := sumPCs(res.Profile)
			var wantI, wantD [prof.NumLevels]uint64
			var wantPipe uint64
			for _, s := range res.PerCPU {
				for l := 0; l < prof.NumLevels; l++ {
					wantI[l] += s.IStall[l]
					wantD[l] += s.DStall[l]
				}
				wantPipe += s.PipeStall
			}
			if retired != res.Instructions() {
				t.Errorf("profile retired %d != run instructions %d", retired, res.Instructions())
			}
			if istall != wantI {
				t.Errorf("profile istall %v != stats %v", istall, wantI)
			}
			if dstall != wantD {
				t.Errorf("profile dstall %v != stats %v", dstall, wantD)
			}
			if pipe != wantPipe {
				t.Errorf("profile pipe %d != stats %d", pipe, wantPipe)
			}
		})
	}
}

// TestProfReconcilesWithStallStatsMXS checks the MXS books: retired,
// data-stall and pipeline-stall attributions are exact; instruction-
// fetch attribution may fall short of the stats only by the rare
// unmapped-fetch-PC cycles (the stall is still counted, just not
// attributable to a guest PC), never exceed them.
func TestProfReconcilesWithStallStatsMXS(t *testing.T) {
	res := profRun(t, cmpsim.SharedMem, cmpsim.ModelMXS)
	retired, pipe, istall, dstall := sumPCs(res.Profile)
	var wantI, wantD [prof.NumLevels]uint64
	var wantPipe uint64
	for _, s := range res.PerCPU {
		for l := 0; l < prof.NumLevels; l++ {
			wantI[l] += s.IStall[l]
			wantD[l] += s.DStall[l]
		}
		wantPipe += s.PipeStall
	}
	if retired != res.Instructions() {
		t.Errorf("profile retired %d != run instructions %d", retired, res.Instructions())
	}
	if dstall != wantD {
		t.Errorf("profile dstall %v != stats %v", dstall, wantD)
	}
	if pipe != wantPipe {
		t.Errorf("profile pipe %d != stats %d", pipe, wantPipe)
	}
	for l := 0; l < prof.NumLevels; l++ {
		if istall[l] > wantI[l] {
			t.Errorf("profile istall[%d] %d exceeds stats %d", l, istall[l], wantI[l])
		}
	}
}

// TestProfDoesNotPerturbRun: attaching a profiler must observe, never
// perturb — cycle and instruction counts must match an unprofiled run.
func TestProfDoesNotPerturbRun(t *testing.T) {
	base := memsys.DefaultConfig()
	plain, err := cmpsim.RunWorkload(eqntottSmall(), cmpsim.SharedMem, cmpsim.ModelMipsy, &base)
	if err != nil {
		t.Fatal(err)
	}
	res := profRun(t, cmpsim.SharedMem, cmpsim.ModelMipsy)
	if res.Cycles != plain.Cycles || res.Instructions() != plain.Instructions() {
		t.Errorf("profiling perturbed the run: %d/%d cycles, %d/%d insts",
			res.Cycles, plain.Cycles, res.Instructions(), plain.Instructions())
	}
}

// TestProfSymbolAttribution: the hot-function table must resolve PCs to
// real guest symbols — an all-hex table means the symbol plumbing from
// asm.Program.Symbols through core.Machine broke.
func TestProfSymbolAttribution(t *testing.T) {
	res := profRun(t, cmpsim.SharedL2, cmpsim.ModelMipsy)
	if len(res.Profile.Symbols) == 0 {
		t.Fatal("profile carries no symbols")
	}
	named := 0
	for _, r := range res.Profile.HotFuncs() {
		if len(r.Name) > 0 && r.Name[0] != '0' {
			named++
		}
	}
	if named == 0 {
		t.Error("no hot function resolved to a guest symbol")
	}
}

// TestProfLineSharingOnSharedMem: under the snoopy shared-memory
// architecture a multi-CPU workload must surface at least one line with
// coherence traffic (invalidation or cache-to-cache transfer) and
// writer→reader pair counts consistent with the totals.
func TestProfLineSharingOnSharedMem(t *testing.T) {
	res := profRun(t, cmpsim.SharedMem, cmpsim.ModelMipsy)
	shared := 0
	for i := range res.Profile.Lines {
		e := &res.Profile.Lines[i]
		var pairSum uint64
		for _, p := range e.Pairs {
			pairSum += p.Count
			if p.Writer == p.Reader {
				t.Errorf("line %#x has self-pair %d>%d", e.Addr, p.Writer, p.Reader)
			}
		}
		if pairSum != e.Invals+e.C2C {
			t.Errorf("line %#x pair counts %d != invals %d + c2c %d",
				e.Addr, pairSum, e.Invals, e.C2C)
		}
		if e.Traffic() > 0 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no line saw coherence traffic on shared-mem")
	}
}

// profJobs builds the three-architecture profiled job grid the way
// cmd/simprof does.
func profJobs() []runner.Job {
	jobs := make([]runner.Job, 0, 3)
	for _, a := range core.Arches() {
		cfg := memsys.DefaultConfig()
		cfg.Prof = prof.New(cfg.NumCPUs, cfg.LineBytes)
		jobs = append(jobs, runner.Job{
			Workload: func() (workload.Workload, error) {
				return eqntottSmall(), nil
			},
			Arch:  a,
			Model: core.ModelMipsy,
			Cfg:   cfg,
			Tag:   "prof-" + string(a),
		})
	}
	return jobs
}

// renderProfiles runs the grid on a pool with the given worker count
// and renders every profile report and folded-stack dump to one buffer.
func renderProfiles(t *testing.T, workers int) []byte {
	t.Helper()
	pool := &runner.Pool{Workers: workers}
	results := pool.Run(profJobs())
	if err := runner.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		p := r.Res.Profile
		if p == nil {
			t.Fatal("job returned no profile")
		}
		p.Workload = "eqntott"
		p.WriteReport(&buf, 10)
		if err := p.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestProfOutputDeterministic is the acceptance gate for report
// stability: repeated serial runs and a 4-worker parallel run must all
// render byte-identical profile reports.
func TestProfOutputDeterministic(t *testing.T) {
	first := renderProfiles(t, 1)
	if again := renderProfiles(t, 1); !bytes.Equal(first, again) {
		t.Error("repeated -jobs=1 runs rendered different profiles")
	}
	if par := renderProfiles(t, 4); !bytes.Equal(first, par) {
		t.Error("-jobs=4 rendered a different profile than -jobs=1")
	}
}

// TestProfiledJobBypassesCache: a job carrying a profiler must never be
// served from (or written to) the result cache — a cached result could
// not carry a fresh profile.
func TestProfiledJobBypassesCache(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := &runner.Pool{Workers: 1, Cache: cache}
	jobs := profJobs()
	for i := range jobs {
		jobs[i].WorkloadKey = "eqntott/test"
	}
	for round := 0; round < 2; round++ {
		results := pool.Run(jobs)
		if err := runner.FirstErr(results); err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Cached {
				t.Fatal("profiled job was served from the cache")
			}
			if r.Res.Profile == nil {
				t.Fatal("profiled job returned no profile")
			}
		}
	}
}

// TestProfDisabledDoesNotAllocate proves the nil-profiler fast path of
// a steady-state L1 hit performs zero heap allocations.
func TestProfDisabledDoesNotAllocate(t *testing.T) {
	s := memsys.NewSharedL2(memsys.DefaultConfig()) // Prof is nil
	now := warmLine(s)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			t.Fatal("steady-state read hit refused")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-profiling access allocates %v per op, want 0", allocs)
	}
}

// BenchmarkProfDisabled measures the instrumented-but-disabled cost of
// the profiler hooks: steady-state L1 read hits with Config.Prof nil.
// The acceptance bar is 0 allocs/op.
func BenchmarkProfDisabled(b *testing.B) {
	s := memsys.NewSharedL2(memsys.DefaultConfig()) // Prof is nil
	now := warmLine(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			b.Fatal("read hit refused")
		}
	}
}

// BenchmarkProfEnabled is the enabled-path companion: the same loop
// with a live profiler, quantifying what turning profiling on costs.
func BenchmarkProfEnabled(b *testing.B) {
	cfg := memsys.DefaultConfig()
	cfg.Prof = prof.New(cfg.NumCPUs, cfg.LineBytes)
	s := memsys.NewSharedL2(cfg)
	now := warmLine(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 4
		if _, ok := s.Access(now, 0, 0x4000, false); !ok {
			b.Fatal("read hit refused")
		}
	}
}
