// Custom-workload shows how to write a new guest program against the
// simulator's assembler DSL and run it on any of the three
// architectures. The guest here is a parallel histogram: four CPUs
// classify a shared input array into buckets with LL/SC atomic
// increments and meet at a barrier, and the host verifies the result.
//
// (Guest authoring uses the internal assembler packages directly; the
// stable simulation surface is the root cmpsim package.)
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cmpsim"
	"cmpsim/internal/asm"
	"cmpsim/internal/cpu"
	"cmpsim/internal/guestlib"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
)

const (
	numCPUs = 4
	values  = 4096
	buckets = 16
)

func buildProgram() *asm.Program {
	b := asm.NewBuilder()

	// Each CPU histograms its quarter of the input.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0) // tid
	b.LI(asm.R8, values/numCPUs)
	b.MUL(asm.R16, asm.R20, asm.R8) // start index
	b.ADD(asm.R17, asm.R16, asm.R8) // end index
	b.Label("loop")
	b.SLLI(asm.R9, asm.R16, 2)
	b.LA(asm.R10, "input")
	b.ADD(asm.R10, asm.R10, asm.R9)
	b.LW(asm.R11, 0, asm.R10)
	b.ANDI(asm.R11, asm.R11, buckets-1) // bucket index
	b.SLLI(asm.R11, asm.R11, 2)
	b.LA(asm.R12, "hist")
	b.ADD(asm.R12, asm.R12, asm.R11)
	b.Label("bump") // hist[bucket]++ atomically
	b.LL(asm.R13, 0, asm.R12)
	b.ADDI(asm.R13, asm.R13, 1)
	b.SC(asm.R13, 0, asm.R12)
	b.BEQZ(asm.R13, "bump")
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "loop")
	// Meet at a barrier, then CPU 0 publishes a checksum.
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.BNEZ(asm.R20, "done")
	b.LI(asm.R14, 0)
	b.LI(asm.R15, 0)
	b.Label("sum")
	b.SLLI(asm.R9, asm.R15, 2)
	b.LA(asm.R10, "hist")
	b.ADD(asm.R10, asm.R10, asm.R9)
	b.LW(asm.R11, 0, asm.R10)
	b.ADD(asm.R14, asm.R14, asm.R11)
	b.ADDI(asm.R15, asm.R15, 1)
	b.LI(asm.R9, buckets)
	b.BLT(asm.R15, asm.R9, "sum")
	b.LA(asm.R10, "total")
	b.SW(asm.R14, 0, asm.R10)
	b.Label("done")
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(4)
	b.DataLabel("input")
	b.Zero(4 * values)
	b.DataLabel("hist")
	b.Zero(4 * buckets)
	b.DataLabel("total")
	b.Word32(0)
	guestlib.EmitBarrierData(b, "bar", numCPUs)

	return b.MustAssemble(0x1000, 0x100000)
}

func main() {
	prog := buildProgram()

	for _, arch := range cmpsim.Architectures() {
		m, err := cmpsim.NewMachine(arch, cmpsim.ModelMipsy, cmpsim.DefaultConfig(), 32<<20)
		if err != nil {
			log.Fatal(err)
		}
		m.LoadProgram(prog, 0)

		// Host-side input and reference histogram.
		rng := rand.New(rand.NewSource(7))
		want := make([]uint32, buckets)
		for i := 0; i < values; i++ {
			v := uint32(rng.Intn(1 << 20))
			m.Img.Write32(prog.Addr("input")+uint32(4*i), v)
			want[v&(buckets-1)]++
		}

		for i := 0; i < numCPUs; i++ {
			ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, TID: i, PC: prog.Addr("start")}
			ctx.Regs[isa.RegSP] = 0x1f0_0000 - uint32(i)*0x1_0000
			ctx.Regs[isa.RegArg0] = uint32(i)
			m.AddContext(ctx)
		}
		res, err := m.Run(100_000_000)
		if err != nil {
			log.Fatal(err)
		}

		for bkt, w := range want {
			got := m.Img.Read32(prog.Addr("hist") + uint32(4*bkt))
			if got != w {
				log.Fatalf("%s: bucket %d = %d, want %d", arch, bkt, got, w)
			}
		}
		total := m.Img.Read32(prog.Addr("total"))
		fmt.Printf("%-11s histogram verified, total=%d, cycles=%d, IPC=%.2f\n",
			arch, total, res.Cycles, res.IPC())
	}
}
