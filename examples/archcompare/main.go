// Archcompare reproduces one of the paper's per-application figures for
// any built-in workload: it runs the workload on all three architectures
// and prints the normalized execution-time breakdown and the
// replacement/invalidation miss-rate components, exactly the quantities
// the paper's bar charts encode.
//
//	go run ./examples/archcompare -workload mp3d
//	go run ./examples/archcompare -workload ear -model mxs
package main

import (
	"flag"
	"fmt"
	"log"

	"cmpsim"
)

func main() {
	name := flag.String("workload", "ocean", "one of the built-in workloads")
	model := flag.String("model", "mipsy", "cpu model: mipsy or mxs")
	flag.Parse()

	runs := map[cmpsim.Arch]*cmpsim.Result{}
	for _, arch := range cmpsim.Architectures() {
		w, err := cmpsim.NewWorkload(*name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cmpsim.RunWorkload(w, arch, cmpsim.CPUModel(*model), nil)
		if err != nil {
			log.Fatal(err)
		}
		runs[arch] = res
	}
	fig := cmpsim.BuildFigure("Architecture comparison", *name, cmpsim.CPUModel(*model), runs)
	fmt.Print(fig.String())

	if cmpsim.CPUModel(*model) == cmpsim.ModelMXS {
		fmt.Println("\nIPC-loss breakdown (Figure 11 style, ideal per-CPU IPC = 2):")
		for _, arch := range cmpsim.Architectures() {
			row := cmpsim.IPCBreakdownOf(runs[arch])
			fmt.Printf("  %-11s IPC=%.3f  lossI=%.3f  lossD=%.3f  lossPipe=%.3f\n",
				arch, row.IPC, row.LossI, row.LossD, row.LossPipe)
		}
	}
}
