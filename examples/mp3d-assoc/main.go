// Mp3d-assoc reproduces the Section 4.1 ablation: MP3D on the shared-L1
// architecture with the L2 associativity swept from direct-mapped to
// 8-way. The paper reports that the direct-mapped L2 suffers conflict
// misses fed by the thrashing shared L1, and that at 4 ways the L2 miss
// rate drops to ~10%, similar to the other architectures.
package main

import (
	"fmt"
	"log"

	"cmpsim"
	"cmpsim/internal/workload"
)

func main() {
	fmt.Println("MP3D on shared-L1, sweeping L2 associativity (Section 4.1):")
	fmt.Printf("%8s %12s %10s %10s %10s\n", "L2 ways", "cycles", "L2 miss%", "L1R%", "speedup")
	var base float64
	for _, assoc := range []uint32{1, 2, 4, 8} {
		cfg := cmpsim.DefaultConfig()
		cfg.L2Assoc = assoc
		w := workload.NewMP3D(workload.MP3DParams{})
		res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, &cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(res.Cycles)
		}
		fmt.Printf("%8d %12d %9.1f%% %9.1f%% %9.2fx\n",
			assoc, res.Cycles,
			100*res.MemReport.L2.MissRate(),
			100*res.MemReport.L1D.ReplRate(),
			base/float64(res.Cycles))
	}
}
