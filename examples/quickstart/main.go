// Quickstart: run one workload on one architecture and print the
// headline numbers. This is the smallest useful program against the
// cmpsim public API.
package main

import (
	"fmt"
	"log"

	"cmpsim"
)

func main() {
	w, err := cmpsim.NewWorkload("eqntott")
	if err != nil {
		log.Fatal(err)
	}
	res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, nil)
	if err != nil {
		log.Fatal(err)
	}
	b := cmpsim.BreakdownOf(res)
	fmt.Printf("workload   : %s on %s (%s model)\n", w.Name(), res.Arch, res.Model)
	fmt.Printf("cycles     : %d\n", res.Cycles)
	fmt.Printf("instructions: %d (aggregate IPC %.2f)\n", res.Instructions(), res.IPC())
	fmt.Printf("time split : cpu %.0f%%  ifetch %.0f%%  memory %.0f%%\n",
		100*b.CPU/b.Total, 100*b.IStall/b.Total, 100*b.MemStall()/b.Total)
	fmt.Printf("L1D misses : %.2f%% of references (%.2f%% replacement, %.2f%% invalidation)\n",
		100*res.MemReport.L1D.MissRate(),
		100*res.MemReport.L1D.ReplRate(),
		100*res.MemReport.L1D.InvRate())
}
