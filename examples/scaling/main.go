// Scaling runs the CMP processor-count study the authors' earlier work
// explored (ISCA '94): the same fixed-size workload on 1, 2, 4 and 8
// processor machines of each architecture. Coarse-grained FFT scales
// near-linearly; fine-grained ear shows how synchronization and the
// serial fraction bound the achievable speedup.
package main

import (
	"fmt"
	"log"

	"cmpsim"
	"cmpsim/internal/workload"
)

func main() {
	for _, wl := range []struct {
		name string
		mk   func() cmpsim.Workload
	}{
		{"fft (coarse grain)", func() cmpsim.Workload { return workload.NewFFT(workload.FFTParams{}) }},
		{"ear (fine grain)", func() cmpsim.Workload { return workload.NewEar(workload.EarParams{}) }},
		{"ocean (boundary sharing)", func() cmpsim.Workload { return workload.NewOcean(workload.OceanParams{}) }},
	} {
		fmt.Printf("=== %s ===\n", wl.name)
		fmt.Printf("%-11s", "arch")
		counts := []int{1, 2, 4, 8}
		for _, n := range counts {
			fmt.Printf("  %4d CPU", n)
		}
		fmt.Println("   (speedup over 1 CPU)")
		for _, arch := range cmpsim.Architectures() {
			fmt.Printf("%-11s", arch)
			var base float64
			for _, n := range counts {
				cfg := cmpsim.DefaultConfig()
				cfg.NumCPUs = n
				res, err := cmpsim.RunWorkload(wl.mk(), arch, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					log.Fatal(err)
				}
				if base == 0 {
					base = float64(res.Cycles)
				}
				fmt.Printf("  %7.2fx", base/float64(res.Cycles))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
