package kernel_test

import (
	"strings"
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/kernel"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// buildUser emits a minimal process: read one file block, add a
// per-process constant into the block's first word, store it at
// "result", yield once, then exit.
func buildUser(yields int) *asm.Program {
	b := asm.NewBuilder()
	b.Label("start")
	b.MOVE(asm.R20, asm.A0) // proc id
	b.LI(asm.R21, int32(yields))
	b.Label("loop")
	b.LA(asm.A0, "buf")
	b.MOVE(asm.A1, asm.R20) // file = proc id
	b.LI(asm.A2, 5)         // offset
	b.SYSCALL(kernel.SysRead)
	b.LA(asm.R8, "buf")
	b.LW(asm.R9, 0, asm.R8)
	b.ADD(asm.R9, asm.R9, asm.R20)
	b.LA(asm.R10, "result")
	b.SW(asm.R9, 0, asm.R10)
	b.SYSCALL(kernel.SysYield)
	b.ADDI(asm.R21, asm.R21, -1)
	b.BNEZ(asm.R21, "loop")
	b.SYSCALL(kernel.SysExit)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("buf")
	b.Zero(4 * kernel.BufWords)
	b.DataLabel("result")
	b.Word32(0)
	return b.MustAssemble(0x1000, 0x8000)
}

// rig builds a machine with nProcs processes of the given program.
func rig(t *testing.T, nProcs, yields int, model core.CPUModel) (*core.Machine, *kernel.Kernel, *asm.Program) {
	t.Helper()
	m, err := core.NewMachine(core.SharedMem, model, memsys.DefaultConfig(), 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	prog := buildUser(yields)
	spaces := make([]mem.Proc, nProcs)
	for i := range spaces {
		base := 0x0010_0000 + uint32(i)*0x10000
		prog.LoadDataAt(m.Img, base)
		spaces[i] = mem.Proc{
			TextPhys:    0x0008_0000,
			TextLimit:   0x8000,
			DataPhys:    base,
			UserLimit:   0x10000,
			KernelStart: kernel.Base,
			KernelLimit: kernel.Limit,
		}
	}
	m.LoadText(prog, 0x0008_0000)
	k, err := kernel.Build(m, spaces, prog.Addr("start"), 0xf000)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, prog
}

func TestKernelReadCopiesBufferCache(t *testing.T) {
	m, k, prog := rig(t, 2, 1, core.ModelMipsy)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.AllExited() {
		t.Fatal("processes did not exit")
	}
	for p := 0; p < 2; p++ {
		idx := kernel.HashBuf(uint32(p), 5)
		want := kernel.BufDataWord(idx, 0) + uint32(p)
		base := 0x0010_0000 + uint32(p)*0x10000
		got := m.Img.Read32(base + (prog.Addr("result") - 0x8000))
		if got != want {
			t.Errorf("proc %d result = %#x, want %#x", p, got, want)
		}
		// The whole block must have been copied, not just word 0.
		for w := 1; w < kernel.BufWords; w++ {
			gotW := m.Img.Read32(base + (prog.Addr("buf") - 0x8000) + uint32(4*w))
			if gotW != kernel.BufDataWord(idx, w) {
				t.Fatalf("proc %d buf[%d] = %#x, want %#x", p, w, gotW, kernel.BufDataWord(idx, w))
			}
		}
	}
}

func TestKernelTimeSharesMoreProcsThanCPUs(t *testing.T) {
	m, k, _ := rig(t, 7, 3, core.ModelMipsy)
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.AllExited() {
		t.Fatal("processes did not exit")
	}
	if k.ExitCount != 7 {
		t.Errorf("exits = %d, want 7", k.ExitCount)
	}
	if k.Switches == 0 {
		t.Error("expected context switches with 7 procs on 4 CPUs")
	}
}

func TestKernelPreemptionRoundRobins(t *testing.T) {
	// Without voluntary yields (yields=1 means one yield per proc), the
	// timer must still multiplex 8 procs over 4 CPUs.
	for _, model := range []core.CPUModel{core.ModelMipsy, core.ModelMXS} {
		t.Run(string(model), func(t *testing.T) {
			m, k, _ := rig(t, 8, 2, model)
			k.EnablePreemption(2000)
			if _, err := m.Run(100_000_000); err != nil {
				t.Fatal(err)
			}
			if !k.AllExited() {
				t.Fatal("processes did not exit under preemption")
			}
			if k.Preemptions == 0 {
				t.Error("no preemptions happened with a 2000-cycle quantum")
			}
		})
	}
}

func TestKernelPreemptionPreservesResults(t *testing.T) {
	// The same workload with and without aggressive preemption must
	// compute identical results (only timing may differ).
	run := func(pre bool) []uint32 {
		m, k, prog := rig(t, 6, 4, core.ModelMipsy)
		if pre {
			k.EnablePreemption(1500)
		}
		if _, err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		var out []uint32
		for p := 0; p < 6; p++ {
			base := 0x0010_0000 + uint32(p)*0x10000
			out = append(out, m.Img.Read32(base+(prog.Addr("result")-0x8000)))
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("proc %d: result differs under preemption: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestBufDataDeterministic(t *testing.T) {
	if kernel.BufDataWord(3, 7) != kernel.BufDataWord(3, 7) {
		t.Error("BufDataWord not deterministic")
	}
	if kernel.HashBuf(1, 2) < 0 || kernel.HashBuf(1, 2) >= kernel.NumBuf {
		t.Error("HashBuf out of range")
	}
	// The hash must actually spread.
	seen := map[int]bool{}
	for f := uint32(0); f < 16; f++ {
		for o := uint32(0); o < 16; o++ {
			seen[kernel.HashBuf(f, o)] = true
		}
	}
	if len(seen) < 32 {
		t.Errorf("hash covers only %d buckets", len(seen))
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.SYSCALL(99)
	b.HALT()
	prog := b.MustAssemble(0x1000, 0x8000)
	m, err := core.NewMachine(core.SharedMem, core.ModelMipsy, memsys.DefaultConfig(), 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	prog.LoadDataAt(m.Img, 0x0010_0000)
	m.LoadText(prog, 0x0008_0000)
	sp := mem.Proc{
		TextPhys: 0x0008_0000, TextLimit: 0x8000,
		DataPhys: 0x0010_0000, UserLimit: 0x10000,
		KernelStart: kernel.Base, KernelLimit: kernel.Limit,
	}
	if _, err := kernel.Build(m, []mem.Proc{sp}, prog.Addr("start"), 0xf000); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(1_000_000)
	if err == nil {
		t.Fatal("expected a fault for the unknown syscall")
	}
	if want := "unknown syscall"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}
