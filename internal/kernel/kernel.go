// Package kernel is the miniature guest operating system used by the
// multiprogramming workload (Section 3.2.3). It plays the role IRIX 5.3
// plays under SimOS, scaled to this simulator: system calls trap into
// kernel code that executes as real guest instructions in a kernel
// address region shared by every process, so kernel data structures (the
// buffer cache, the run queue, process control blocks) generate genuine
// shared-memory traffic between the CPUs — the effect behind the paper's
// observation that 16% of non-idle time is kernel time and that the
// shared-L1 cache "provides overlap of the kernel data structures".
//
// Scheduling policy and the context-switch register swap are performed
// host-side (the substitution is documented in DESIGN.md); the *timing*
// of kernel work — syscall handlers, PCB save/restore traffic, run-queue
// updates — comes from executing kernel guest code.
package kernel

import (
	"fmt"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
)

// System call numbers.
const (
	SysRead   = 1 // A0 = user buffer, A1 = file id, A2 = offset; RV = first word
	SysYield  = 2 // voluntarily release the CPU
	SysExit   = 3 // terminate the calling process
	sysCommit = 4 // internal: second half of a context switch
)

// Layout of the kernel region (identity-mapped into every process).
const (
	Base     = 0x0040_0000 // kernel text base
	Limit    = 0x0048_0000 // end of the kernel region
	NumBuf   = 256         // buffer-cache entries
	hdrBytes = 16          // per buffer-cache header
	bufBytes = 128         // per buffer-cache data block
	BufWords = bufBytes / 4
	pcbBytes = 160 // 32 GPR save slots + bookkeeping
)

// RegLink is the register the trap dispatcher places the user return
// address in; kernel routines return with JR RegLink. R27 (k1 in MIPS
// convention) is reserved for the kernel by the ABI.
const RegLink = asm.R27

// Proc is one process: its saved context and address space.
type Proc struct {
	Ctx  cpu.Context
	Done bool
}

// Kernel is the guest OS instance: trap handler, scheduler and the
// kernel program.
type Kernel struct {
	m    *core.Machine
	prog *asm.Program

	procs     []*Proc
	ready     []int  // FIFO run queue of runnable, not-running procs
	running   []int  // per-CPU current proc index, -1 when idle
	pending   []int  // per-CPU proc to commit at sysCommit time
	switching []bool // per-CPU: inside kern_switch (interrupts masked)

	// Statistics.
	Syscalls    uint64
	Switches    uint64
	ExitCount   uint64
	Preemptions uint64
}

// BufDataWord returns the deterministic content of word w of buffer
// cache entry idx — shared with workload mirrors so guest results can be
// validated.
func BufDataWord(idx, w int) uint32 {
	return uint32(idx*2654435761 + w*40503 + 17)
}

// HashBuf maps (file, offset) to a buffer-cache index, mirroring the
// guest's hash exactly.
func HashBuf(file, off uint32) int {
	return int(file*31+off*7) & (NumBuf - 1)
}

// Build assembles and loads the kernel, creates nProcs processes that
// start at entryPC in their own address spaces, installs the trap
// handler, and creates one hardware context per CPU running the first
// processes. spaces[i] must map the kernel region identically.
func Build(m *core.Machine, spaces []mem.Proc, entryPC, userSP uint32) (*Kernel, error) {
	k := &Kernel{
		m:         m,
		running:   make([]int, m.Cfg.NumCPUs),
		pending:   make([]int, m.Cfg.NumCPUs),
		switching: make([]bool, m.Cfg.NumCPUs),
	}
	prog, err := buildKernelProgram()
	if err != nil {
		return nil, err
	}
	k.prog = prog
	m.LoadProgram(prog, 0)

	// Initialize the buffer cache data blocks.
	dataBase := prog.Addr("kbufdata")
	for i := 0; i < NumBuf; i++ {
		for w := 0; w < bufBytes/4; w++ {
			m.Img.Write32(dataBase+uint32(i*bufBytes+4*w), BufDataWord(i, w))
		}
	}

	for i, sp := range spaces {
		p := &Proc{}
		p.Ctx.Space = sp
		p.Ctx.TID = i
		p.Ctx.PC = entryPC
		p.Ctx.Regs[isa.RegSP] = userSP
		p.Ctx.Regs[isa.RegArg0] = uint32(i)
		k.procs = append(k.procs, p)
	}

	m.SetTrapHandler(k)
	n := m.Cfg.NumCPUs
	for c := 0; c < n; c++ {
		if c < len(k.procs) {
			live := k.procs[c].Ctx // copy
			k.running[c] = c
			m.AddContext(&live)
		} else {
			// No process for this CPU: park it.
			idle := &cpu.Context{Halted: true, TID: -1, Space: mem.Identity{}}
			k.running[c] = -1
			m.AddContext(idle)
		}
	}
	// Remaining processes wait on the run queue.
	for i := n; i < len(k.procs); i++ {
		k.ready = append(k.ready, i)
	}
	return k, nil
}

// Prog returns the kernel's assembled program (for address lookups in
// tests and reports).
func (k *Kernel) Prog() *asm.Program { return k.prog }

// AllExited reports whether every process has terminated.
func (k *Kernel) AllExited() bool {
	for _, p := range k.procs {
		if !p.Done {
			return false
		}
	}
	return true
}

// Syscall implements cpu.TrapHandler. ctx.PC has already been advanced
// past the SYSCALL instruction by the CPU model.
func (k *Kernel) Syscall(now uint64, cpuID int, ctx *cpu.Context, num int32) uint64 {
	k.Syscalls++
	switch num {
	case SysRead:
		// Redirect into the guest buffer-cache read path; it returns to
		// the user continuation via RegLink.
		ctx.Regs[RegLink] = ctx.PC
		ctx.PC = k.prog.Addr("kern_read")
		return 0
	case SysYield:
		if len(k.ready) == 0 {
			// Nothing else to run; charge a quick run-queue probe.
			ctx.Regs[RegLink] = ctx.PC
			ctx.PC = k.prog.Addr("kern_yield_fast")
			return 0
		}
		cur := k.running[cpuID]
		k.procs[cur].Ctx = *ctx // pristine snapshot, resumes after the syscall
		k.ready = append(k.ready, cur)
		k.beginSwitch(cpuID, ctx, cur)
		return 0
	case SysExit:
		cur := k.running[cpuID]
		k.procs[cur].Done = true
		k.ExitCount++
		if len(k.ready) == 0 {
			k.running[cpuID] = -1
			ctx.Halted = true
			return 0
		}
		k.beginSwitch(cpuID, ctx, cur)
		return 0
	case sysCommit:
		nxt := k.pending[cpuID]
		*ctx = k.procs[nxt].Ctx
		k.running[cpuID] = nxt
		k.switching[cpuID] = false
		k.m.Sys.ClearReservation(cpuID)
		k.Switches++
		return 0
	case cpu.IRQ:
		// Timer preemption. The PC is the resume point (not advanced).
		if k.switching[cpuID] || k.running[cpuID] < 0 {
			return 0 // interrupts are masked during a context switch
		}
		if len(k.ready) == 0 {
			return 0 // nothing else to run; skip the reschedule entirely
		}
		k.Preemptions++
		cur := k.running[cpuID]
		k.procs[cur].Ctx = *ctx
		k.ready = append(k.ready, cur)
		k.beginSwitch(cpuID, ctx, cur)
		return 0
	}
	ctx.Faultf("kernel: unknown syscall %d at pc %#x", num, ctx.PC)
	return 0
}

// EnablePreemption arms a per-CPU timer: every quantum cycles a CPU
// receives an interrupt and, if other processes are runnable, is
// rescheduled through the guest kern_switch path. Timers are staggered
// across CPUs so the run queue is not hit by all four at once.
func (k *Kernel) EnablePreemption(quantum uint64) {
	n := k.m.Cfg.NumCPUs
	for c := 0; c < n; c++ {
		c := c
		var tick func(now uint64)
		tick = func(now uint64) {
			if k.AllExited() {
				return
			}
			k.m.RaiseIRQ(c)
			k.m.Events.Schedule(now+quantum, tick)
		}
		k.m.Events.Schedule(quantum+uint64(c)*(quantum/uint64(n)+1), tick)
	}
}

// beginSwitch pops the next process and routes the (now disposable)
// current context through the guest kern_switch routine, which performs
// the PCB save/restore memory traffic and then traps sysCommit.
func (k *Kernel) beginSwitch(cpuID int, ctx *cpu.Context, oldProc int) {
	nxt := k.ready[0]
	k.ready = k.ready[1:]
	k.pending[cpuID] = nxt
	k.switching[cpuID] = true
	pcbs := k.prog.Addr("kpcbs")
	ctx.Regs[isa.RegArg0] = pcbs + uint32(oldProc*pcbBytes)
	ctx.Regs[isa.RegArg1] = pcbs + uint32(nxt*pcbBytes)
	ctx.PC = k.prog.Addr("kern_switch")
}

// buildKernelProgram emits the kernel's guest code and data.
func buildKernelProgram() (*asm.Program, error) {
	b := asm.NewBuilder()

	// kern_read: buffer-cache lookup and copy-out.
	//   A0 = user buffer, A1 = file id, A2 = offset, RegLink = return.
	// Clobbers R8..R15 (kernel-reserved temporaries by our ABI).
	b.Label("kern_read")
	// idx = (file*31 + off*7) & (NumBuf-1)
	b.LI(asm.R8, 31)
	b.MUL(asm.R9, asm.A1, asm.R8)
	b.LI(asm.R8, 7)
	b.MUL(asm.R10, asm.A2, asm.R8)
	b.ADD(asm.R9, asm.R9, asm.R10)
	b.ANDI(asm.R9, asm.R9, NumBuf-1)
	// Walk the hash chain: probe four headers (shared kernel data) the
	// way a buffer cache checks identity tags along a bucket chain.
	b.LI(asm.R15, 4)
	b.MOVE(asm.R8, asm.R9)
	b.Label("kr_chain")
	b.SLLI(asm.R10, asm.R8, 4) // * hdrBytes
	b.LA(asm.R11, "kbufhdr")
	b.ADD(asm.R10, asm.R11, asm.R10)
	b.LW(asm.R12, 0, asm.R10) // id tag
	b.ADDI(asm.R8, asm.R8, 1)
	b.ANDI(asm.R8, asm.R8, NumBuf-1)
	b.ADDI(asm.R15, asm.R15, -1)
	b.BNEZ(asm.R15, "kr_chain")
	// LRU bump on the hit entry.
	b.SLLI(asm.R10, asm.R9, 4)
	b.LA(asm.R11, "kbufhdr")
	b.ADD(asm.R10, asm.R11, asm.R10)
	b.LW(asm.R13, 4, asm.R10) // lru
	b.ADDI(asm.R13, asm.R13, 1)
	b.SW(asm.R13, 4, asm.R10)
	// Copy the data block to the user buffer.
	b.SLLI(asm.R10, asm.R9, 7) // * bufBytes
	b.LA(asm.R11, "kbufdata")
	b.ADD(asm.R10, asm.R11, asm.R10)
	b.LI(asm.R12, BufWords)
	b.MOVE(asm.R13, asm.A0)
	b.Label("kr_copy")
	b.LW(asm.R14, 0, asm.R10)
	b.SW(asm.R14, 0, asm.R13)
	b.ADDI(asm.R10, asm.R10, 4)
	b.ADDI(asm.R13, asm.R13, 4)
	b.ADDI(asm.R12, asm.R12, -1)
	b.BNEZ(asm.R12, "kr_copy")
	// RV = first word of the block (re-read through the user buffer).
	b.LW(asm.RV, 0, asm.A0)
	b.JR(RegLink)

	// kern_yield_fast: probe the run queue and return.
	b.Label("kern_yield_fast")
	b.LA(asm.R8, "krunq")
	b.LW(asm.R9, 0, asm.R8)
	b.ADDI(asm.R9, asm.R9, 1)
	b.SW(asm.R9, 0, asm.R8)
	b.JR(RegLink)

	// kern_switch: PCB save/restore traffic, then commit.
	//   A0 = old PCB, A1 = new PCB. The current register state is
	//   disposable (the host snapshotted the process at trap time).
	b.Label("kern_switch")
	// Save 32 words into the old PCB.
	b.LI(asm.R8, 32)
	b.MOVE(asm.R9, asm.A0)
	b.Label("ks_save")
	b.SW(asm.R8, 0, asm.R9)
	b.ADDI(asm.R9, asm.R9, 4)
	b.ADDI(asm.R8, asm.R8, -1)
	b.BNEZ(asm.R8, "ks_save")
	// Run-queue bookkeeping (shared, contended).
	b.LA(asm.R8, "krunq")
	b.LW(asm.R9, 4, asm.R8)
	b.ADDI(asm.R9, asm.R9, 1)
	b.SW(asm.R9, 4, asm.R8)
	// Restore 32 words from the new PCB.
	b.LI(asm.R8, 32)
	b.MOVE(asm.R9, asm.A1)
	b.Label("ks_restore")
	b.LW(asm.R10, 0, asm.R9)
	b.ADDI(asm.R9, asm.R9, 4)
	b.ADDI(asm.R8, asm.R8, -1)
	b.BNEZ(asm.R8, "ks_restore")
	b.SYSCALL(sysCommit)
	// Unreachable; the commit handler replaces the context.
	b.HALT()

	// Kernel data.
	b.AlignData(32)
	b.DataLabel("krunq")
	b.Zero(64)
	b.AlignData(32)
	b.DataLabel("kbufhdr")
	b.Zero(NumBuf * hdrBytes)
	b.AlignData(32)
	b.DataLabel("kbufdata")
	b.Zero(NumBuf * bufBytes)
	b.AlignData(32)
	b.DataLabel("kpcbs")
	b.Zero(16 * pcbBytes) // up to 16 processes

	// Kernel text at Base; kernel data right after (both inside the
	// identity-mapped kernel region).
	p, err := b.Assemble(Base, Base+0x10000)
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	if p.DataEnd() > Limit {
		return nil, fmt.Errorf("kernel: image overflows the kernel region")
	}
	return p, nil
}
