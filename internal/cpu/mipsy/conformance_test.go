package mipsy

import (
	"math"
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/cpu"
)

// TestISAConformance executes a program using every KRISC opcode at
// least once and compares every result against host-computed expected
// values — a single-pass conformance check of assembler, encoder,
// interpreter and semantics helpers together.
func TestISAConformance(t *testing.T) {
	b := asm.NewBuilder()
	const (
		a  = int32(-77)
		c  = int32(13)
		u  = uint32(0xF0F0F0F0)
		sh = uint8(5)
	)

	b.Label("start")
	b.LI(asm.R1, a)
	b.LI(asm.R2, c)
	b.LIU(asm.R3, u)
	b.LA(asm.R20, "out")
	slot := int32(0)
	store := func(r asm.Reg) {
		b.SW(r, slot, asm.R20)
		slot += 4
	}
	storeF := func(f asm.FReg) {
		b.AlignData(8) // no-op for text; results land in out2
		b.SD(f, slot, asm.R21)
		slot += 8
	}

	// Integer R-type.
	b.ADD(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.SUB(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.MUL(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.DIV(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.REM(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.AND(asm.R4, asm.R3, asm.R2)
	store(asm.R4)
	b.OR(asm.R4, asm.R3, asm.R2)
	store(asm.R4)
	b.XOR(asm.R4, asm.R3, asm.R1)
	store(asm.R4)
	b.NOR(asm.R4, asm.R3, asm.R2)
	store(asm.R4)
	b.LI(asm.R5, int32(sh))
	b.SLL(asm.R4, asm.R3, asm.R5)
	store(asm.R4)
	b.SRL(asm.R4, asm.R3, asm.R5)
	store(asm.R4)
	b.SRA(asm.R4, asm.R3, asm.R5)
	store(asm.R4)
	b.SLT(asm.R4, asm.R1, asm.R2)
	store(asm.R4)
	b.SLTU(asm.R4, asm.R1, asm.R2)
	store(asm.R4)

	// Integer I-type.
	b.ADDI(asm.R4, asm.R1, 1000)
	store(asm.R4)
	b.ANDI(asm.R4, asm.R3, 0xABCD)
	store(asm.R4)
	b.ORI(asm.R4, asm.R3, 0xABCD)
	store(asm.R4)
	b.XORI(asm.R4, asm.R3, 0xABCD)
	store(asm.R4)
	b.SLTI(asm.R4, asm.R1, -76)
	store(asm.R4)
	b.LUI(asm.R4, 0xBEEF)
	store(asm.R4)
	b.SLLI(asm.R4, asm.R3, sh)
	store(asm.R4)
	b.SRLI(asm.R4, asm.R3, sh)
	store(asm.R4)
	b.SRAI(asm.R4, asm.R3, sh)
	store(asm.R4)

	// Byte memory.
	b.LA(asm.R6, "bytes")
	b.LB(asm.R4, 1, asm.R6)
	store(asm.R4)
	b.LI(asm.R4, 0x1AB)
	b.SB(asm.R4, 2, asm.R6) // stores 0xAB
	b.LB(asm.R4, 2, asm.R6)
	store(asm.R4)

	// Control flow: BGT/BLE pseudos and JALR.
	b.LI(asm.R4, 0)
	b.BGT(asm.R2, asm.R1, "took_bgt") // 13 > -77
	b.LI(asm.R4, 111)
	b.Label("took_bgt")
	store(asm.R4) // 0 if taken
	b.LI(asm.R4, 0)
	b.BLE(asm.R1, asm.R2, "took_ble")
	b.LI(asm.R4, 222)
	b.Label("took_ble")
	store(asm.R4)
	b.LA(asm.R7, "callee")
	b.JALR(asm.RA, asm.R7)
	store(asm.RV) // callee returns 4242

	// Floating point.
	b.LA(asm.R21, "out2")
	b.LA(asm.R8, "fvals")
	b.LD(asm.F1, 0, asm.R8) // 2.5
	b.LD(asm.F2, 8, asm.R8) // -0.75
	slot = 0
	b.FADDD(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FSUBD(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FMULD(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FDIVD(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FADDS(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FSUBS(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FMULS(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FDIVS(asm.F3, asm.F1, asm.F2)
	storeF(asm.F3)
	b.FNEG(asm.F3, asm.F1)
	storeF(asm.F3)
	b.FMOV(asm.F3, asm.F2)
	storeF(asm.F3)
	b.CVTIF(asm.F3, asm.R1) // -77 -> -77.0
	storeF(asm.F3)

	// FP compares and CVTFI land in the integer region after the last
	// integer slot; recompute the base.
	b.LA(asm.R22, "out3")
	b.FEQ(asm.R4, asm.F1, asm.F1)
	b.SW(asm.R4, 0, asm.R22)
	b.FLT(asm.R4, asm.F2, asm.F1)
	b.SW(asm.R4, 4, asm.R22)
	b.FLE(asm.R4, asm.F1, asm.F2)
	b.SW(asm.R4, 8, asm.R22)
	b.CVTFI(asm.R4, asm.F1) // trunc(2.5) = 2
	b.SW(asm.R4, 12, asm.R22)
	b.CPUID(asm.R4)
	b.SW(asm.R4, 16, asm.R22)
	b.HALT()

	b.Label("callee")
	b.LI(asm.RV, 4242)
	b.RET()

	b.AlignData(8)
	b.DataLabel("fvals")
	b.Float64(2.5, -0.75)
	b.DataLabel("out2")
	b.Zero(8 * 16)
	b.AlignData(4)
	b.DataLabel("bytes")
	b.Word32(0x04030201)
	b.DataLabel("out")
	b.Zero(4 * 32)
	b.DataLabel("out3")
	b.Zero(4 * 8)

	r := newRig(t, b, 1, nil)
	r.run(t, 1_000_000)

	var av, cv int32 = a, c
	var uv uint32 = u
	au, cu := uint32(av), uint32(cv)
	wantInt := []uint32{
		au + cu, au - cu, uint32(av * cv), uint32(av / cv), uint32(av % cv),
		uv & cu, uv | cu, uv ^ au, ^(uv | cu),
		uv << sh, uv >> sh, uint32(int32(uv) >> sh),
		1, 0, // slt(-77,13)=1; sltu(huge,13)=0
		uint32(av + 1000), uv & 0xABCD, uv | 0xABCD, uv ^ 0xABCD,
		1,                                                       // -77 < -76
		0xBEEF0000, uv << sh, uv >> sh, uint32(int32(uv) >> sh), // LUI + shift-imm
		0x02, 0xAB, // LB, SB+LB
		0, 0, // both branches taken
		4242,
	}
	out := r.prog.Addr("out")
	for i, w := range wantInt {
		if got := r.img.Read32(out + uint32(4*i)); got != w {
			t.Errorf("int slot %d = %#x, want %#x", i, got, w)
		}
	}

	f1, f2 := 2.5, -0.75
	s := func(v float64) float64 { return v } // doc alias
	wantF := []float64{
		f1 + f2, f1 - f2, f1 * f2, f1 / f2,
		float64(float32(f1) + float32(f2)),
		float64(float32(f1) - float32(f2)),
		float64(float32(f1) * float32(f2)),
		float64(float32(f1) / float32(f2)),
		-f1, f2, s(-77.0),
	}
	out2 := r.prog.Addr("out2")
	for i, w := range wantF {
		got := r.img.ReadF64(out2 + uint32(8*i))
		if math.Float64bits(got) != math.Float64bits(w) {
			t.Errorf("fp slot %d = %v, want %v", i, got, w)
		}
	}

	out3 := r.prog.Addr("out3")
	wantCmp := []uint32{1, 1, 0, 2, 0}
	for i, w := range wantCmp {
		if got := r.img.Read32(out3 + uint32(4*i)); got != w {
			t.Errorf("cmp slot %d = %d, want %d", i, got, w)
		}
	}

	// Every architectural instruction executed exactly once per source
	// line; sanity-check the counter is in a plausible band.
	st := r.cpus[0].Stats()
	if st.Instructions < 100 || st.Instructions > 400 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	_ = cpu.StallStats{}
}
