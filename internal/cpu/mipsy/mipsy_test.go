package mipsy

import (
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// progSource adapts one assembled program to cpu.CodeSource.
type progSource struct{ p *asm.Program }

func (s progSource) InstAt(paddr uint32) (isa.Inst, bool) {
	if paddr < s.p.TextBase || paddr >= s.p.TextEnd() {
		return isa.Inst{}, false
	}
	return s.p.Insts[(paddr-s.p.TextBase)/4], true
}

type rig struct {
	img  *mem.Image
	sys  memsys.System
	prog *asm.Program
	cpus []*CPU
}

// newRig assembles b at 0/0x10000, loads it, and creates n CPUs all
// starting at label "start" (or per-CPU start labels "startN" if
// present), on a shared-memory architecture.
func newRig(t *testing.T, b *asm.Builder, n int, trap cpu.TrapHandler) *rig {
	t.Helper()
	p, err := b.Assemble(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	img := mem.NewImage(1 << 20)
	p.Load(img, 0)
	cfg := memsys.DefaultConfig()
	sys := memsys.NewSharedMem(cfg)
	r := &rig{img: img, sys: sys, prog: p}
	for i := 0; i < n; i++ {
		ctx := &cpu.Context{Space: mem.Identity{Limit: img.Size()}, TID: i}
		ctx.PC = p.Addr("start")
		ctx.Regs[isa.RegSP] = 0x80000 + uint32(i)*0x1000
		ctx.Regs[asm.A0] = uint32(i)
		r.cpus = append(r.cpus, New(i, ctx, sys, progSource{p}, trap, img, cfg.LineBytes))
	}
	return r
}

// run drives the rig until all CPUs halt.
func (r *rig) run(t *testing.T, maxCycles uint64) uint64 {
	t.Helper()
	for cyc := uint64(0); cyc < maxCycles; cyc++ {
		alive := false
		for _, c := range r.cpus {
			if !c.Done() {
				alive = true
				c.Tick(cyc)
			}
		}
		if !alive {
			for _, c := range r.cpus {
				if f := c.Context().Fault; f != "" {
					t.Fatalf("cpu fault: %s", f)
				}
			}
			return cyc
		}
	}
	t.Fatalf("did not halt in %d cycles", maxCycles)
	return 0
}

func TestIntegerArithmetic(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 100)
	b.LI(asm.R2, -7)
	b.ADD(asm.R3, asm.R1, asm.R2)  // 93
	b.SUB(asm.R4, asm.R1, asm.R2)  // 107
	b.MUL(asm.R5, asm.R1, asm.R2)  // -700
	b.DIV(asm.R6, asm.R1, asm.R2)  // -14
	b.REM(asm.R7, asm.R1, asm.R2)  // 2
	b.SLT(asm.R8, asm.R2, asm.R1)  // 1
	b.SLTU(asm.R9, asm.R2, asm.R1) // 0 (0xfffffff9 > 100 unsigned)
	b.SLLI(asm.R10, asm.R1, 3)     // 800
	b.SRAI(asm.R11, asm.R2, 1)     // -4
	b.SRLI(asm.R12, asm.R2, 28)    // 0xf
	b.XORI(asm.R13, asm.R1, 0xff)  // 100^255 = 155
	b.NOR(asm.R14, asm.R1, asm.R2) // ^(100 | -7)
	b.LA(asm.R20, "out")
	for i := 0; i < 12; i++ {
		b.SW(asm.Reg(3+i), int32(4*i), asm.R20)
	}
	b.HALT()
	b.AlignData(4)
	b.DataLabel("out")
	b.Zero(48)

	r := newRig(t, b, 1, nil)
	r.run(t, 100000)
	out := r.prog.Addr("out")
	neg := func(v int32) uint32 { return uint32(v) }
	want := []uint32{93, 107, neg(-700), neg(-14), 2, 1, 0, 800,
		neg(-4), 0xf, 155, ^(uint32(100) | uint32(0xfffffff9))}
	for i, w := range want {
		if got := r.img.Read32(out + uint32(4*i)); got != w {
			t.Errorf("out[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 with a loop; store to "sum".
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 0)   // sum
	b.LI(asm.R2, 1)   // i
	b.LI(asm.R3, 100) // limit
	b.Label("loop")
	b.ADD(asm.R1, asm.R1, asm.R2)
	b.ADDI(asm.R2, asm.R2, 1)
	b.BLE(asm.R2, asm.R3, "loop")
	b.LA(asm.R4, "sum")
	b.SW(asm.R1, 0, asm.R4)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("sum")
	b.Word32(0)

	r := newRig(t, b, 1, nil)
	r.run(t, 100000)
	if got := r.img.Read32(r.prog.Addr("sum")); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestFunctionCallsAndStack(t *testing.T) {
	// Recursive factorial(8) via JAL/JR with stack frames.
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.A0, 8)
	b.JAL("fact")
	b.LA(asm.R9, "result")
	b.SW(asm.RV, 0, asm.R9)
	b.HALT()

	b.Label("fact")
	b.LI(asm.RV, 1)
	b.BLE(asm.A0, asm.RV, "fact_ret") // n <= 1 -> 1
	b.Prologue(16)
	b.SW(asm.A0, 0, asm.SP)
	b.ADDI(asm.A0, asm.A0, -1)
	b.JAL("fact")
	b.LW(asm.A0, 0, asm.SP)
	b.MUL(asm.RV, asm.RV, asm.A0)
	b.Epilogue(16)
	b.Label("fact_ret")
	b.RET()

	b.AlignData(4)
	b.DataLabel("result")
	b.Word32(0)

	r := newRig(t, b, 1, nil)
	r.run(t, 100000)
	if got := r.img.Read32(r.prog.Addr("result")); got != 40320 {
		t.Errorf("8! = %d, want 40320", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	// Dot product of two small vectors, double precision, plus an SP op
	// and conversions.
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.R1, "va")
	b.LA(asm.R2, "vb")
	b.LI(asm.R3, 4) // length
	b.LI(asm.R4, 0) // i
	b.CVTIF(asm.F0, asm.R0)
	b.Label("loop")
	b.SLLI(asm.R5, asm.R4, 3)
	b.ADD(asm.R6, asm.R1, asm.R5)
	b.ADD(asm.R7, asm.R2, asm.R5)
	b.LD(asm.F1, 0, asm.R6)
	b.LD(asm.F2, 0, asm.R7)
	b.FMULD(asm.F3, asm.F1, asm.F2)
	b.FADDD(asm.F0, asm.F0, asm.F3)
	b.ADDI(asm.R4, asm.R4, 1)
	b.BLT(asm.R4, asm.R3, "loop")
	b.LA(asm.R8, "dot")
	b.SD(asm.F0, 0, asm.R8)
	// Truncate to int and store.
	b.CVTFI(asm.R9, asm.F0)
	b.LA(asm.R10, "doti")
	b.SW(asm.R9, 0, asm.R10)
	// Compare: dot >= 10.0?
	b.LA(asm.R11, "ten")
	b.LD(asm.F4, 0, asm.R11)
	b.FLE(asm.R12, asm.F4, asm.F0)
	b.LA(asm.R13, "ge10")
	b.SW(asm.R12, 0, asm.R13)
	b.HALT()

	b.DataLabel("va")
	b.Float64(1.5, 2.0, -3.0, 4.25)
	b.DataLabel("vb")
	b.Float64(2.0, 0.5, 1.0, 2.0)
	b.DataLabel("ten")
	b.Float64(10.0)
	b.AlignData(8)
	b.DataLabel("dot")
	b.Float64(0)
	b.AlignData(4)
	b.DataLabel("doti")
	b.Word32(0)
	b.DataLabel("ge10")
	b.Word32(0)

	r := newRig(t, b, 1, nil)
	r.run(t, 100000)
	want := 1.5*2.0 + 2.0*0.5 + -3.0*1.0 + 4.25*2.0 // 9.5
	if got := r.img.ReadF64(r.prog.Addr("dot")); got != want {
		t.Errorf("dot = %v, want %v", got, want)
	}
	if got := r.img.Read32(r.prog.Addr("doti")); got != 9 {
		t.Errorf("trunc dot = %d, want 9", got)
	}
	if got := r.img.Read32(r.prog.Addr("ge10")); got != 0 {
		t.Errorf("ge10 = %d, want 0", got)
	}
}

func TestLLSCAtomicIncrement(t *testing.T) {
	// Four CPUs each atomically increment a shared counter 500 times.
	const perCPU = 500
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.R1, "counter")
	b.LI(asm.R2, perCPU)
	b.Label("loop")
	b.Label("retry")
	b.LL(asm.R3, 0, asm.R1)
	b.ADDI(asm.R3, asm.R3, 1)
	b.SC(asm.R3, 0, asm.R1)
	b.BEQZ(asm.R3, "retry")
	b.ADDI(asm.R2, asm.R2, -1)
	b.BNEZ(asm.R2, "loop")
	b.HALT()
	b.AlignData(4)
	b.DataLabel("counter")
	b.Word32(0)

	r := newRig(t, b, 4, nil)
	r.run(t, 5_000_000)
	if got := r.img.Read32(r.prog.Addr("counter")); got != 4*perCPU {
		t.Errorf("counter = %d, want %d", got, 4*perCPU)
	}
}

func TestCPUIDDistinguishesCPUs(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.CPUID(asm.R1)
	b.SLLI(asm.R2, asm.R1, 2)
	b.LA(asm.R3, "slots")
	b.ADD(asm.R3, asm.R3, asm.R2)
	b.ADDI(asm.R4, asm.R1, 100)
	b.SW(asm.R4, 0, asm.R3)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("slots")
	b.Zero(16)

	r := newRig(t, b, 4, nil)
	r.run(t, 100000)
	for i := 0; i < 4; i++ {
		if got := r.img.Read32(r.prog.Addr("slots") + uint32(4*i)); got != uint32(100+i) {
			t.Errorf("slot[%d] = %d, want %d", i, got, 100+i)
		}
	}
}

type recordingTrap struct {
	calls []int32
}

func (r *recordingTrap) Syscall(now uint64, cpuID int, ctx *cpu.Context, num int32) uint64 {
	r.calls = append(r.calls, num)
	ctx.Regs[asm.RV] = uint32(num) * 2
	return 5
}

func TestSyscallTrap(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.SYSCALL(21)
	b.LA(asm.R1, "out")
	b.SW(asm.RV, 0, asm.R1)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("out")
	b.Word32(0)

	tr := &recordingTrap{}
	r := newRig(t, b, 1, tr)
	r.run(t, 100000)
	if len(tr.calls) != 1 || tr.calls[0] != 21 {
		t.Fatalf("trap calls = %v", tr.calls)
	}
	if got := r.img.Read32(r.prog.Addr("out")); got != 42 {
		t.Errorf("syscall result = %d, want 42", got)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LUI(asm.R1, 0xffff) // far beyond the identity space limit
	b.LW(asm.R2, 0, asm.R1)
	b.HALT()
	p := b.MustAssemble(0, 0x10000)
	img := mem.NewImage(1 << 20)
	p.Load(img, 0)
	cfg := memsys.DefaultConfig()
	sys := memsys.NewSharedMem(cfg)
	ctx := &cpu.Context{Space: mem.Identity{Limit: img.Size()}, PC: p.Addr("start")}
	c := New(0, ctx, sys, progSource{p}, nil, img, cfg.LineBytes)
	for cyc := uint64(0); cyc < 1000 && !c.Done(); cyc++ {
		c.Tick(cyc)
	}
	if ctx.Fault == "" {
		t.Fatal("expected a fault on unmapped access")
	}
}

func TestStallAccounting(t *testing.T) {
	// One load from a cold line: instruction count exact, D-stall at the
	// memory level present, CPU executed exactly the instructions.
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.R1, "x") // 2 insts
	b.LW(asm.R2, 0, asm.R1)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("x")
	b.Word32(7)

	r := newRig(t, b, 1, nil)
	r.run(t, 100000)
	st := r.cpus[0].Stats()
	if st.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", st.Instructions)
	}
	if st.DStall[memsys.LvlMem] == 0 {
		t.Error("expected memory-level data stall on cold load")
	}
	if st.IStall[memsys.LvlMem] == 0 {
		t.Error("expected memory-level ifetch stall on cold fetch")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (uint64, uint32) {
		b := asm.NewBuilder()
		b.Label("start")
		b.LA(asm.R1, "counter")
		b.LI(asm.R2, 50)
		b.Label("loop")
		b.Label("retry")
		b.LL(asm.R3, 0, asm.R1)
		b.ADDI(asm.R3, asm.R3, 1)
		b.SC(asm.R3, 0, asm.R1)
		b.BEQZ(asm.R3, "retry")
		b.ADDI(asm.R2, asm.R2, -1)
		b.BNEZ(asm.R2, "loop")
		b.HALT()
		b.AlignData(4)
		b.DataLabel("counter")
		b.Word32(0)
		r := newRig(t, b, 4, nil)
		cycles := r.run(t, 1_000_000)
		return cycles, r.img.Read32(r.prog.Addr("counter"))
	}
	c1, v1 := build()
	c2, v2 := build()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, v1, c2, v2)
	}
}
