// Package mipsy implements the paper's simple CPU model (Section 3.1):
// an in-order instruction-set interpreter with a one-cycle result
// latency and a one-cycle repeat rate that stalls for every memory
// operation taking longer than a cycle. All time spent in the memory
// system therefore contributes directly to execution time, which makes
// the Figure 4-10 breakdowns easy to interpret.
package mipsy

import (
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
	"cmpsim/internal/prof"
)

const invalidLine = ^uint32(0)

// CPU is one in-order processor driving a memory system.
type CPU struct {
	id   int
	ctx  *cpu.Context
	mem  memsys.System
	code cpu.CodeSource
	trap cpu.TrapHandler
	img  *mem.Image

	lineMask  uint32
	nextFree  uint64
	fetchLine uint32

	irq cpu.InterruptSource

	stats cpu.StallStats
	prof  *prof.Profiler
}

// SetInterruptSource attaches an external interrupt line, polled between
// instructions.
func (c *CPU) SetInterruptSource(src cpu.InterruptSource) { c.irq = src }

// SetProfiler attaches a cycle-attribution profiler: every retired
// instruction and stall cycle is charged to its physical PC, in
// lockstep with the StallStats counters. nil (the default) keeps the
// hook sites on their zero-cost path.
func (c *CPU) SetProfiler(p *prof.Profiler) { c.prof = p }

// New builds a Mipsy CPU with hardware id id executing ctx.
func New(id int, ctx *cpu.Context, sys memsys.System, code cpu.CodeSource, trap cpu.TrapHandler, img *mem.Image, lineBytes uint32) *CPU {
	if trap == nil {
		trap = cpu.NopTrap{}
	}
	return &CPU{
		id:        id,
		ctx:       ctx,
		mem:       sys,
		code:      code,
		trap:      trap,
		img:       img,
		lineMask:  ^(lineBytes - 1),
		fetchLine: invalidLine,
	}
}

// Context returns the context currently executing on this CPU.
func (c *CPU) Context() *cpu.Context { return c.ctx }

// Stats returns the stall/instruction counters accumulated so far.
func (c *CPU) Stats() cpu.StallStats { return c.stats }

// Done reports whether this CPU has stopped (halt or fault).
func (c *CPU) Done() bool { return c.ctx.Halted }

// FlushFetchBuffer invalidates the fetch line buffer; the kernel's
// context switches call this because the new context's PC translates
// differently.
func (c *CPU) FlushFetchBuffer() { c.fetchLine = invalidLine }

// NextWork implements the scheduler's quiescence probe: the earliest
// cycle at or after now at which Tick can do anything. While blocked on
// a memory reference the CPU is completely inert until nextFree — every
// stall cycle was already charged when the access was issued — so the
// cycle loop may jump straight there. A pending interrupt changes
// nothing: Tick only polls the line once the CPU is free again, so
// delivery still happens at nextFree, exactly as in the per-cycle loop.
func (c *CPU) NextWork(now uint64) uint64 {
	if c.ctx.Halted {
		return cpu.NoWork
	}
	if c.nextFree > now {
		return c.nextFree
	}
	return now
}

// Tick advances the CPU by (at most) one instruction at cycle now and
// returns the scheduler's quiescence hint (see core.Core): nextFree,
// which after an executed instruction is exactly the next cycle this
// CPU can do anything, and during a memory stall is the cycle the
// blocking access completes. The hint costs nothing — nextFree is
// already in hand on every path.
func (c *CPU) Tick(now uint64) uint64 {
	c.step(now)
	if c.ctx.Halted {
		return cpu.NoWork
	}
	if c.nextFree > now {
		return c.nextFree
	}
	// Faulted (but not halted) or an unreached corner: stay per-cycle.
	return now + 1
}

// step executes the cycle: deliver a pending interrupt at the
// instruction boundary, or fetch and run one instruction if the CPU is
// free.
func (c *CPU) step(now uint64) {
	ctx := c.ctx
	if ctx.Halted || now < c.nextFree {
		return
	}
	if c.irq != nil && c.irq.PendingInterrupt(c.id) {
		// Deliver at the instruction boundary: the PC is the resume point.
		c.irq.AckInterrupt(c.id)
		extra := c.trap.Syscall(now, c.id, ctx, cpu.IRQ)
		c.fetchLine = invalidLine
		c.nextFree = now + 1 + extra
		return
	}
	pc := ctx.PC
	ppc, ok := ctx.Space.Translate(pc)
	if !ok {
		ctx.Faultf("instruction fetch from unmapped address %#x", pc)
		return
	}

	cur := now
	if ppc&c.lineMask != c.fetchLine {
		r := c.mem.IFetch(cur, c.id, ppc)
		c.fetchLine = ppc & c.lineMask
		if r.Done > cur+1 {
			c.stats.IStall[r.Level] += r.Done - (cur + 1)
			if c.prof != nil {
				c.prof.IStallPC(ppc, uint8(r.Level), r.Done-(cur+1))
			}
			cur = r.Done - 1 //simlint:allow cycleflow — r.Done > cur+1 here, so r.Done >= 2
		}
	}

	in, ok := c.code.InstAt(ppc)
	if !ok {
		ctx.Faultf("no code at %#x (pc %#x)", ppc, pc)
		return
	}

	c.execute(cur, ppc, in)
}

// execute runs one instruction whose execution cycle is cur (physical
// PC ppc, for profiling). It sets ctx.PC and c.nextFree.
func (c *CPU) execute(cur uint64, ppc uint32, in isa.Inst) {
	ctx := c.ctx
	next := ctx.PC + 4
	done := cur + 1

	switch {
	case in.Op.IsMem():
		if !c.executeMem(cur, ppc, in, &done) {
			return // structural stall or fault; retry or stop
		}
	case in.Op.IsBranch():
		if cpu.BranchTaken(in.Op, ctx.Regs[in.R1], ctx.Regs[in.R2]) {
			next = uint32(int64(ctx.PC) + 4 + int64(in.Imm)*4)
		}
	case in.Op == isa.J:
		next = uint32(in.Imm) * 4
	case in.Op == isa.JAL:
		ctx.Regs[isa.RegRA] = ctx.PC + 4
		next = uint32(in.Imm) * 4
	case in.Op == isa.JR:
		next = ctx.Regs[in.R2]
	case in.Op == isa.JALR:
		t := ctx.Regs[in.R2]
		c.setReg(in.R1, ctx.PC+4)
		next = t
	case in.Op == isa.HALT:
		ctx.Halted = true
		c.stats.Instructions++
		if c.prof != nil {
			c.prof.RetirePC(ppc)
		}
		return
	case in.Op == isa.CPUID:
		c.setReg(in.R1, uint32(c.id))
	case in.Op == isa.SYSCALL:
		ctx.PC = next
		extra := c.trap.Syscall(cur, c.id, ctx, in.Imm)
		c.fetchLine = invalidLine // the handler may have switched spaces
		c.stats.Instructions++
		if c.prof != nil {
			c.prof.RetirePC(ppc)
		}
		c.nextFree = done + extra
		return
	case in.Op == isa.FMOV, in.Op == isa.FNEG:
		ctx.FRegs[in.R1] = cpu.FPOp(in.Op, ctx.FRegs[in.R2], 0)
	case in.Op == isa.FEQ, in.Op == isa.FLT, in.Op == isa.FLE:
		c.setReg(in.R1, cpu.FPCmp(in.Op, ctx.FRegs[in.R2], ctx.FRegs[in.R3]))
	case in.Op == isa.CVTIF:
		ctx.FRegs[in.R1] = float64(int32(ctx.Regs[in.R2]))
	case in.Op == isa.CVTFI:
		c.setReg(in.R1, cpu.CvtFI(ctx.FRegs[in.R2]))
	case in.Op.IsFPOp():
		ctx.FRegs[in.R1] = cpu.FPOp(in.Op, ctx.FRegs[in.R2], ctx.FRegs[in.R3])
	default:
		// Integer ALU, register or immediate form.
		var v uint32
		if in.Op.Format() == isa.FormatR {
			v = cpu.ALU(in.Op, ctx.Regs[in.R2], ctx.Regs[in.R3], 0)
		} else {
			v = cpu.ALU(in.Op, ctx.Regs[in.R2], 0, in.Imm)
		}
		c.setReg(in.R1, v)
	}

	ctx.PC = next
	c.stats.Instructions++
	if c.prof != nil {
		c.prof.RetirePC(ppc)
	}
	c.nextFree = done
}

// executeMem handles loads and stores. It returns false if the
// instruction could not complete this cycle (structural refusal or
// fault); on refusal the PC is left unchanged so the instruction
// retries.
func (c *CPU) executeMem(cur uint64, ppc uint32, in isa.Inst, done *uint64) bool {
	ctx := c.ctx
	ea := ctx.Regs[in.R2] + uint32(in.Imm)
	pea, ok := ctx.Space.Translate(ea)
	if !ok {
		ctx.Faultf("%v: unmapped data address %#x (pc %#x)", in.Op, ea, ctx.PC)
		return false
	}

	// Store-conditional that lost its reservation performs no memory
	// access at all.
	if in.Op == isa.SC && !c.mem.SCCheck(c.id, pea) {
		c.setReg(in.R1, 0)
		ctx.PC += 4
		c.stats.Instructions++
		if c.prof != nil {
			c.prof.RetirePC(ppc)
		}
		c.nextFree = cur + 1
		return false // PC already advanced; skip the caller's epilogue
	}

	write := in.Op.IsStore()
	res, accepted := c.mem.Access(cur, c.id, pea, write)
	if !accepted {
		// MSHRs or write buffer full: stall one cycle and retry.
		c.stats.DStall[res.Level]++
		if c.prof != nil {
			c.prof.DStallPC(ppc, uint8(res.Level), 1)
		}
		c.nextFree = cur + 1
		return false
	}

	switch in.Op {
	case isa.LW:
		c.setReg(in.R1, c.img.Read32(pea))
	case isa.LB:
		c.setReg(in.R1, uint32(c.img.Read8(pea)))
	case isa.LD:
		ctx.FRegs[in.R1] = c.img.ReadF64(pea)
	case isa.LL:
		c.mem.LLReserve(c.id, pea)
		c.setReg(in.R1, c.img.Read32(pea))
	case isa.SW:
		c.img.Write32(pea, ctx.Regs[in.R1])
	case isa.SB:
		c.img.Write8(pea, uint8(ctx.Regs[in.R1]))
	case isa.SD:
		c.img.WriteF64(pea, ctx.FRegs[in.R1])
	case isa.SC:
		c.img.Write32(pea, ctx.Regs[in.R1])
		c.setReg(in.R1, 1)
	}

	if res.Done > cur+1 {
		c.stats.DStall[res.Level] += res.Done - (cur + 1)
		if c.prof != nil {
			c.prof.DStallPC(ppc, uint8(res.Level), res.Done-(cur+1))
		}
		*done = res.Done
	}
	return true
}

func (c *CPU) setReg(r uint8, v uint32) {
	if r != 0 {
		c.ctx.Regs[r] = v
	}
}
