// Package mxs implements the paper's detailed CPU model (Sections 2.1,
// 3.1): a 2-way-issue dynamically scheduled superscalar with speculative
// execution and non-blocking memory references. The pipeline is
// decoupled into fetch, execute and graduate stages: up to two
// instructions per cycle are fetched (with 1024-entry BTB prediction and
// wrong-path fetch after mispredictions), dispatched into a 32-entry
// centralized instruction window / reorder buffer, issued out of order
// to fully pipelined functional units with the Table 1 latencies (two
// copies of every unit except the single memory data port), and
// graduated in program order to maintain precise state.
package mxs

import (
	"math"

	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
)

const (
	fetchWidth  = 2
	issueWidth  = 2
	gradWidth   = 2
	windowSize  = 32
	fetchQueue  = 8
	btbEntries  = 1024
	invalidLine = ^uint32(0)
)

// fetchEntry is one fetched, predicted instruction.
type fetchEntry struct {
	pc        uint32 // virtual PC
	ppc       uint32 // physical PC (profiling attribution)
	inst      isa.Inst
	predNext  uint32 // predicted next PC after this instruction
	predTaken bool
}

// robEntry is one in-flight instruction.
type robEntry struct {
	valid bool
	inst  isa.Inst
	pc    uint32
	ppc   uint32 // physical PC (profiling attribution)

	dispatched bool
	issued     bool
	done       bool
	doneAt     uint64

	// Renamed sources: producer ROB slot or -1 for architectural.
	srcRegs [2]uint8
	srcProd [2]int
	nSrc    int
	dest    uint8

	// Results.
	value  uint32
	fvalue float64

	// Control flow.
	predNext   uint32
	actualNext uint32

	// Memory.
	ea       uint32 // physical address
	eaOK     bool
	memLevel memsys.Level
	fwd      bool // load forwarded from an older store

	// Store data computed at issue, written at graduation.
	storeVal  uint32
	storeFVal float64
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
}

// CPU is one MXS core.
type CPU struct {
	id   int
	ctx  *cpu.Context
	mem  memsys.System
	code cpu.CodeSource
	trap cpu.TrapHandler
	img  *mem.Image

	lineMask uint32

	// Fetch.
	fetchPC      uint32
	fetchReady   uint64 // I-miss completion gate
	fetchLine    uint32
	fetchLvl     memsys.Level
	fq           []fetchEntry
	fetchStalled bool // stopped at a serializing instruction or fetch fault
	fetchFault   bool

	// Window/ROB ring buffer.
	rob   [windowSize]robEntry
	head  int
	tail  int
	count int
	seq   uint64

	// Rename table: last ROB slot writing each unified register, -1 none.
	writer [64]int

	btb [btbEntries]btbEntry

	irq     cpu.InterruptSource
	irqStop bool         // draining the pipeline to take an interrupt
	gate    cpu.TickGate // shared-state grant under the parallel scheduler; nil serial

	tr    obsv.Tracer    // optional event tracer; nil means disabled
	prof  *prof.Profiler // optional cycle-attribution profiler; nil means disabled
	stats cpu.StallStats
}

// SetInterruptSource attaches an external interrupt line. Delivery is
// precise: fetch stops, the pipeline drains, then the trap fires with
// the architectural PC as the resume point.
func (c *CPU) SetInterruptSource(src cpu.InterruptSource) { c.irq = src }

// SetTickGate attaches the parallel scheduler's shared-state grant.
// Every memory-system and trap call is already gated by the core's
// wrappers; the one place this model touches shared state directly is
// the graduation-time load refresh, which re-reads the guest image
// with no memory-system call in front of it, so graduate() syncs the
// gate explicitly before refreshing. nil (the default, and always in
// serial runs) keeps that site on its zero-cost path.
func (c *CPU) SetTickGate(g cpu.TickGate) { c.gate = g }

// SetTracer attaches an event tracer; pipeline flushes, branch
// mispredictions and window-full dispatch stalls then emit events.
func (c *CPU) SetTracer(tr obsv.Tracer) { c.tr = tr }

// SetProfiler attaches a cycle-attribution profiler: retired
// instructions and blamed stall cycles are charged to physical PCs,
// in lockstep with the StallStats counters. nil (the default) keeps
// the hook sites on their zero-cost path.
func (c *CPU) SetProfiler(p *prof.Profiler) { c.prof = p }

// New builds an MXS core with hardware id executing ctx.
func New(id int, ctx *cpu.Context, sys memsys.System, code cpu.CodeSource, trap cpu.TrapHandler, img *mem.Image, lineBytes uint32) *CPU {
	if trap == nil {
		trap = cpu.NopTrap{}
	}
	c := &CPU{
		id:        id,
		ctx:       ctx,
		mem:       sys,
		code:      code,
		trap:      trap,
		img:       img,
		lineMask:  ^(lineBytes - 1),
		fetchLine: invalidLine,
	}
	c.fetchPC = ctx.PC
	for i := range c.writer {
		c.writer[i] = -1
	}
	return c
}

// Context returns the executing context.
func (c *CPU) Context() *cpu.Context { return c.ctx }

// Stats returns the accumulated statistics.
func (c *CPU) Stats() cpu.StallStats { return c.stats }

// Done reports whether the CPU halted.
func (c *CPU) Done() bool { return c.ctx.Halted }

// FlushFetchBuffer invalidates the fetch line buffer (context switch).
func (c *CPU) FlushFetchBuffer() { c.fetchLine = invalidLine }

// Tick advances the core by one cycle.
func (c *CPU) Tick(now uint64) uint64 {
	if c.ctx.Halted {
		return cpu.NoWork
	}
	if c.irq != nil && c.irq.PendingInterrupt(c.id) {
		c.irqStop = true
	}
	if c.irqStop && c.count == 0 {
		c.fq = c.fq[:0]
		c.irq.AckInterrupt(c.id)
		extra := c.trap.Syscall(now, c.id, c.ctx, cpu.IRQ)
		c.flushAll(now)
		c.irqStop = false
		c.fetchPC = c.ctx.PC
		c.fetchReady = now + 1 + extra
		return c.NextWork(now)
	}
	graduated := c.graduate(now)
	c.complete(now)
	c.issue(now)
	c.dispatch(now)
	if !c.irqStop {
		c.fetch(now)
	}
	if graduated == 0 && !c.ctx.Halted {
		c.blame(now)
	}
	// Quiescence hint (see core.Core): a graduating pipeline certainly
	// has per-cycle work, so the full NextWork proof only runs on
	// zero-graduation cycles — the stalls it exists to fast-forward.
	if c.ctx.Halted {
		return cpu.NoWork
	}
	if graduated > 0 {
		return now + 1
	}
	return c.NextWork(now)
}

// NextWork implements the scheduler's quiescence probe: the earliest
// cycle at or after now at which Tick can make progress or have a
// per-cycle side effect beyond stall blame (which SkipCycles backfills).
// The proof is conservative — any state whose wake-up time this scan
// cannot bound returns now+1, which degrades gracefully to the
// per-cycle loop — and sound only because every timed transition in the
// pipeline is driven by a cycle number the scan can see: fetchReady for
// the front end and doneAt for every in-flight instruction. States
// governed by memory-system backpressure instead of a timestamp (write
// buffer or MSHR refusal retries, serializing instructions at the
// head) must be ticked every cycle, both because their retry probes
// have per-cycle side effects (stat charging, refusal trace events)
// and because the retry outcome is not visible from here.
func (c *CPU) NextWork(now uint64) uint64 {
	if c.ctx.Halted {
		return cpu.NoWork
	}
	if c.irqStop || (c.irq != nil && c.irq.PendingInterrupt(c.id)) {
		return now + 1 // interrupt delivery and pipeline draining are per-cycle
	}
	wake := uint64(cpu.NoWork)
	if !c.fetchStalled && !c.fetchFault && len(c.fq) < fetchQueue {
		if c.fetchReady <= now+1 {
			return now + 1 // the front end can fetch next cycle
		}
		wake = c.fetchReady // I-miss completion re-enables fetch
	}
	if len(c.fq) > 0 && c.count < windowSize {
		return now + 1 // dispatch moves fetched instructions every cycle
	}
	if c.tr != nil && c.count == windowSize && len(c.fq) > 0 {
		return now + 1 // the window-full trace event is emitted per cycle
	}
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%windowSize {
		e := &c.rob[idx]
		op := e.inst.Op
		if op == isa.SYSCALL || op == isa.HALT || op == isa.LL || op == isa.SC {
			if idx == c.head {
				return now + 1 // serializers execute (and retry) at the head
			}
			continue // inert until it reaches the head; older entries bound that
		}
		if !e.issued {
			// Wakes when its last producer completes. If its operands are
			// already available, the reason it has not issued (FU conflict,
			// issue width, a load blocked on an older store or refused by
			// the memory system) is not provable from here: no skip.
			ready := now
			unknown := false
			for s := 0; s < e.nSrc; s++ {
				p := e.srcProd[s]
				if p < 0 {
					continue
				}
				pe := &c.rob[p]
				if !pe.issued {
					// The producer's own window entry bounds progress; this
					// consumer cannot issue before the producer does.
					unknown = true
					break
				}
				if !pe.done && pe.doneAt <= now {
					return now + 1 // completion pass cut short by a flush this cycle
				}
				if pe.doneAt > ready {
					ready = pe.doneAt
				}
			}
			if unknown {
				continue
			}
			if ready <= now {
				return now + 1
			}
			if ready < wake {
				wake = ready
			}
			continue
		}
		if !e.done {
			if e.doneAt <= now {
				return now + 1 // complete() was cut short by a flush this cycle
			}
			if e.doneAt < wake {
				wake = e.doneAt // completion marks it done at doneAt
			}
			continue
		}
		// Issued and done: values latched, inert — except at the head,
		// where graduation acts on it (or retries against memory-system
		// backpressure) as soon as doneAt has passed.
		if idx == c.head {
			if e.doneAt <= now {
				return now + 1
			}
			if e.doneAt < wake {
				wake = e.doneAt
			}
		}
	}
	if wake <= now {
		return now + 1
	}
	return wake
}

// SkipCycles is the scheduler's bulk-accounting hook: the cycles in
// [from, to) were proved inert by NextWork and will never be ticked,
// but in the per-cycle loop each of them would have charged one
// zero-graduation blame cycle. NextWork guarantees nothing completes,
// issues, dispatches or graduates inside the range, so the blame
// attribution is frozen across it and one bulk charge of to-from
// cycles is identical to the per-cycle charges.
func (c *CPU) SkipCycles(from, to uint64) {
	if c.ctx.Halted || to <= from {
		return
	}
	c.blameN(from, to-from)
}

// --- graduate ---

func (c *CPU) graduate(now uint64) int {
	n := 0
	for n < gradWidth && c.count > 0 {
		e := &c.rob[c.head]
		if !e.dispatched {
			break
		}
		op := e.inst.Op

		// Serializing instructions execute here, at the head,
		// non-speculatively.
		if op == isa.SYSCALL || op == isa.HALT || op == isa.LL || op == isa.SC {
			if !c.serialize(now, e) {
				break
			}
			n++
			continue
		}

		if !e.done || e.doneAt > now {
			break
		}

		if op.IsMem() && !e.eaOK {
			c.ctx.Faultf("%v: unmapped data address (pc %#x)", op, e.pc)
			break
		}
		if op.IsLoad() && c.gate != nil {
			// The refresh below reads the shared guest image directly;
			// under the parallel scheduler, claim the serial-order grant
			// first so it observes exactly what the serial loop would.
			c.gate.Sync()
		}
		if op.IsLoad() && c.loadRefresh(e) {
			// Another CPU wrote the location between this load's
			// speculative issue and its graduation (value-based
			// memory-ordering check, as in the R10000). Commit the load
			// with the coherent value — guaranteeing forward progress
			// even on heavily contended spin locations — and squash the
			// younger instructions that may have consumed the stale one.
			c.stats.Replays++
			c.stats.Squashed += uint64(c.squashAfter(c.head) + len(c.fq))
			c.fq = c.fq[:0]
			c.fetchPC = e.actualNext
			c.fetchReady = now + 1
			c.fetchStalled = false
			c.fetchFault = false
			c.commit(e)
			n++
			continue
		}
		if op.IsStore() {
			if _, ok := c.mem.Access(now, c.id, e.ea, true); !ok {
				break // write buffer full; retry next cycle
			}
			c.writeStore(e)
		}

		c.commit(e)
		n++
	}
	return n
}

// commit retires the head entry into architectural state.
func (c *CPU) commit(e *robEntry) {
	c.writeDest(e)
	c.ctx.PC = e.actualNext
	c.stats.Instructions++
	if c.prof != nil {
		c.prof.RetirePC(e.ppc)
	}
	c.release()
}

// writeDest updates the architectural register file from e.
func (c *CPU) writeDest(e *robEntry) {
	d := e.dest
	if d == isa.RegNone {
		return
	}
	if d >= isa.RegFPBase {
		c.ctx.FRegs[d-isa.RegFPBase] = e.fvalue
	} else {
		c.ctx.Regs[d] = e.value
	}
}

// release frees the head slot, clears rename entries pointing at it, and
// detaches younger consumers (the committed value is now architectural,
// so they read the register file instead of a slot that may be reused).
func (c *CPU) release() {
	slot := c.head
	for r := range c.writer {
		if c.writer[r] == slot {
			c.writer[r] = -1
		}
	}
	c.rob[slot] = robEntry{}
	c.head = (c.head + 1) % windowSize
	c.count--
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%windowSize {
		e := &c.rob[idx]
		for s := 0; s < e.nSrc; s++ {
			if e.srcProd[s] == slot {
				e.srcProd[s] = -1
			}
		}
	}
}

// loadRefresh re-reads a graduating load's location; if the value
// changed since the speculative read it stores the coherent value into e
// and reports true.
func (c *CPU) loadRefresh(e *robEntry) bool {
	switch e.inst.Op {
	case isa.LW:
		if v := c.img.Read32(e.ea); v != e.value {
			e.value = v
			return true
		}
	case isa.LB:
		if v := uint32(c.img.Read8(e.ea)); v != e.value {
			e.value = v
			return true
		}
	case isa.LD:
		if bits := c.img.Read64(e.ea); bits != math.Float64bits(e.fvalue) {
			e.fvalue = math.Float64frombits(bits)
			return true
		}
	}
	return false
}

// writeStore performs the functional memory write of a graduating store.
func (c *CPU) writeStore(e *robEntry) {
	switch e.inst.Op {
	case isa.SW:
		c.img.Write32(e.ea, e.storeVal)
	case isa.SB:
		c.img.Write8(e.ea, uint8(e.storeVal))
	case isa.SD:
		c.img.WriteF64(e.ea, e.storeFVal)
	}
}

// serialize handles SYSCALL/HALT/LL/SC at the ROB head. Reports whether
// the instruction graduated this cycle.
func (c *CPU) serialize(now uint64, e *robEntry) bool {
	switch e.inst.Op {
	case isa.HALT:
		c.stats.Instructions++
		if c.prof != nil {
			c.prof.RetirePC(e.ppc)
		}
		c.ctx.Halted = true
		return false
	case isa.SYSCALL:
		c.ctx.PC = e.pc + 4
		extra := c.trap.Syscall(now, c.id, c.ctx, e.inst.Imm)
		c.stats.Instructions++
		if c.prof != nil {
			c.prof.RetirePC(e.ppc)
		}
		c.flushAll(now)
		c.fetchPC = c.ctx.PC
		c.fetchReady = now + 1 + extra
		if c.ctx.Halted {
			return false
		}
		return true
	case isa.LL:
		if !e.issued {
			ea := c.ctx.Regs[e.inst.R2] + uint32(e.inst.Imm)
			pea, ok := c.ctx.Space.Translate(ea)
			if !ok {
				c.ctx.Faultf("ll: unmapped address %#x (pc %#x)", ea, e.pc)
				return false
			}
			res, accepted := c.mem.Access(now, c.id, pea, false)
			if !accepted {
				return false
			}
			e.issued = true
			e.ea, e.eaOK = pea, true
			e.doneAt = res.Done
			e.memLevel = res.Level
		}
		if e.doneAt > now+1 {
			e.done = true
			return false
		}
		c.mem.LLReserve(c.id, e.ea)
		e.value = c.img.Read32(e.ea)
		e.actualNext = e.pc + 4
		c.commit(e)
		return true
	case isa.SC:
		ea := c.ctx.Regs[e.inst.R2] + uint32(e.inst.Imm)
		pea, ok := c.ctx.Space.Translate(ea)
		if !ok {
			c.ctx.Faultf("sc: unmapped address %#x (pc %#x)", ea, e.pc)
			return false
		}
		if !c.mem.SCCheck(c.id, pea) {
			e.value = 0
		} else {
			if _, accepted := c.mem.Access(now, c.id, pea, true); !accepted {
				c.mem.LLReserve(c.id, pea) // restore the consumed reservation
				return false
			}
			c.img.Write32(pea, c.ctx.Regs[e.inst.R1])
			e.value = 1
		}
		e.actualNext = e.pc + 4
		c.commit(e)
		return true
	}
	return false
}

// flushAll squashes every in-flight instruction and the fetch queue.
func (c *CPU) flushAll(now uint64) {
	if c.tr != nil {
		c.tr.Emit(obsv.Event{
			Cycle: now, Arg: uint32(c.count + len(c.fq)),
			Kind: obsv.EvFlush, CPU: int8(c.id),
		})
	}
	for i := range c.rob {
		c.rob[i] = robEntry{}
	}
	for i := range c.writer {
		c.writer[i] = -1
	}
	c.head, c.tail, c.count = 0, 0, 0
	c.fq = c.fq[:0]
	c.fetchLine = invalidLine
	c.fetchStalled = false
	c.fetchFault = false
}

// --- complete: finish executed instructions, resolve branches ---

func (c *CPU) complete(now uint64) {
	// Mark newly finished entries and handle branch resolution in
	// program order, so a mispredicted older branch squashes younger
	// work before that work can resolve.
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%windowSize {
		e := &c.rob[idx]
		if !e.issued || e.doneAt > now || e.done {
			continue
		}
		e.done = true
		if e.inst.Op.IsControl() {
			c.stats.Branches++
		}
		if e.inst.Op.IsControl() && e.actualNext != e.predNext {
			// Misprediction: squash younger entries, redirect fetch.
			c.stats.Mispredicts++
			squashed := c.squashAfter(idx) + len(c.fq)
			c.stats.Squashed += uint64(squashed)
			if c.tr != nil {
				c.tr.Emit(obsv.Event{
					Cycle: now, Addr: e.pc, Arg: uint32(squashed),
					Kind: obsv.EvMispredict, CPU: int8(c.id),
				})
			}
			c.updateBTB(e)
			c.fetchPC = e.actualNext
			c.fetchReady = now + 1
			c.fetchStalled = false
			c.fetchFault = false
			c.fq = c.fq[:0]
			return
		}
		if e.inst.Op.IsControl() {
			c.updateBTB(e)
		}
	}
}

// squashAfter removes every entry younger than the one at slot and
// returns how many were removed.
func (c *CPU) squashAfter(slot int) int {
	n := 0
	for c.count > 0 {
		last := (c.tail - 1 + windowSize) % windowSize
		if last == slot {
			break
		}
		n++
		e := &c.rob[last]
		for r := range c.writer {
			if c.writer[r] == last {
				c.writer[r] = -1
			}
		}
		// Restore rename visibility for older writers of the squashed
		// entry's destination.
		if e.dest != isa.RegNone {
			c.rewireWriter(e.dest, last)
		}
		c.rob[last] = robEntry{}
		c.tail = last
		c.count--
	}
	return n
}

// rewireWriter points writer[reg] at the youngest surviving producer.
func (c *CPU) rewireWriter(reg uint8, excluded int) {
	c.writer[reg] = -1
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%windowSize {
		if idx == excluded {
			continue
		}
		if c.rob[idx].valid && c.rob[idx].dest == reg {
			c.writer[reg] = idx
		}
	}
}

func (c *CPU) updateBTB(e *robEntry) {
	idx := (e.pc >> 2) % btbEntries
	if e.actualNext != e.pc+4 {
		c.btb[idx] = btbEntry{tag: e.pc, target: e.actualNext, valid: true}
	} else if c.btb[idx].valid && c.btb[idx].tag == e.pc {
		c.btb[idx].valid = false
	}
}

// --- issue ---

// fuBusy tracks per-cycle structural limits.
type fuBusy [cpu.NumFUClasses]int

func (c *CPU) issue(now uint64) {
	var busy fuBusy
	issued := 0
	for i, idx := 0, c.head; i < c.count && issued < issueWidth; i, idx = i+1, (idx+1)%windowSize {
		e := &c.rob[idx]
		if !e.dispatched || e.issued {
			continue
		}
		op := e.inst.Op
		if op == isa.SYSCALL || op == isa.HALT || op == isa.LL || op == isa.SC {
			continue // executed at the head
		}
		if !c.operandsReady(e, now) {
			continue
		}
		class := cpu.ClassOf(op)
		if busy[class] >= class.Copies() {
			continue
		}
		if op.IsLoad() && !c.tryLoad(now, idx, e) {
			continue
		}
		if !op.IsLoad() {
			c.execute(now, idx, e)
		}
		busy[class]++
		issued++
	}
}

// operandsReady reports whether e's renamed sources have produced.
func (c *CPU) operandsReady(e *robEntry, now uint64) bool {
	for s := 0; s < e.nSrc; s++ {
		p := e.srcProd[s]
		if p < 0 {
			continue
		}
		pe := &c.rob[p]
		if !pe.done || pe.doneAt > now {
			return false
		}
	}
	return true
}

// readSrc returns the integer value of unified register r for entry e.
func (c *CPU) readSrc(e *robEntry, r uint8) uint32 {
	for s := 0; s < e.nSrc; s++ {
		if e.srcRegs[s] == r && e.srcProd[s] >= 0 {
			return c.rob[e.srcProd[s]].value
		}
	}
	if r < 32 {
		return c.ctx.Regs[r]
	}
	return 0
}

// readSrcF returns the FP value of unified register r for entry e.
func (c *CPU) readSrcF(e *robEntry, r uint8) float64 {
	u := r + isa.RegFPBase
	for s := 0; s < e.nSrc; s++ {
		if e.srcRegs[s] == u && e.srcProd[s] >= 0 {
			return c.rob[e.srcProd[s]].fvalue
		}
	}
	return c.ctx.FRegs[r]
}

// tryLoad issues a load: address generation, store-queue check, cache
// access. Returns false if it must retry later.
func (c *CPU) tryLoad(now uint64, idx int, e *robEntry) bool {
	ea := c.readSrc(e, e.inst.R2) + uint32(e.inst.Imm)
	pea, ok := c.ctx.Space.Translate(ea)
	if !ok {
		// Wrong-path loads may compute garbage addresses; complete
		// harmlessly here. If this load is on the right path it faults
		// at graduation (eaOK stays false).
		e.issued, e.done = true, true
		e.doneAt = now + 1
		e.value, e.fvalue = 0, 0
		e.actualNext = e.pc + 4
		return true
	}
	e.ea, e.eaOK = pea, true

	// Store-to-load ordering: scan older stores.
	lSize := e.inst.Op.MemBytes()
	for i, j := 0, c.head; j != idx; i, j = i+1, (j+1)%windowSize {
		se := &c.rob[j]
		if !se.valid || !se.inst.Op.IsStore() || se.inst.Op == isa.SC {
			continue
		}
		if !se.issued || !se.done || se.doneAt > now {
			return false // older store address unknown: wait
		}
		sSize := se.inst.Op.MemBytes()
		if se.ea+sSize <= pea || pea+lSize <= se.ea {
			continue // disjoint
		}
		if se.ea == pea && sSize == lSize {
			// Exact match: forward the store's data.
			if se.inst.Op == isa.SD {
				e.fvalue = se.storeFVal
			} else {
				e.value = se.storeVal
			}
			e.issued, e.done, e.fwd = true, true, true
			e.doneAt = now + 1
			e.actualNext = e.pc + 4
			return true
		}
		// Partial overlap: wait until the store graduates and writes
		// memory, then the load reads the merged bytes.
		return false
	}

	res, accepted := c.mem.Access(now, c.id, pea, false)
	if !accepted {
		return false
	}
	e.issued = true
	e.doneAt = res.Done
	e.memLevel = res.Level
	e.actualNext = e.pc + 4
	switch e.inst.Op {
	case isa.LW:
		e.value = c.img.Read32(pea)
	case isa.LB:
		e.value = uint32(c.img.Read8(pea))
	case isa.LD:
		e.fvalue = c.img.ReadF64(pea)
	}
	return true
}

// execute performs a non-load instruction's computation at issue.
func (c *CPU) execute(now uint64, idx int, e *robEntry) {
	in := e.inst
	op := in.Op
	e.issued = true
	e.doneAt = now + cpu.Latency(op)
	e.actualNext = e.pc + 4

	switch {
	case op.IsStore(): // SW, SB, SD (SC handled at head)
		ea := c.readSrc(e, in.R2) + uint32(in.Imm)
		if pea, ok := c.ctx.Space.Translate(ea); ok {
			e.ea, e.eaOK = pea, true
		}
		// else: eaOK stays false; graduation faults if this store turns
		// out to be on the right path.
		if op == isa.SD {
			e.storeFVal = c.readSrcF(e, in.R1)
		} else {
			e.storeVal = c.readSrc(e, in.R1)
		}
	case op.IsBranch():
		if cpu.BranchTaken(op, c.readSrc(e, in.R1), c.readSrc(e, in.R2)) {
			e.actualNext = uint32(int64(e.pc) + 4 + int64(in.Imm)*4)
		}
	case op == isa.J:
		e.actualNext = uint32(in.Imm) * 4
	case op == isa.JAL:
		e.value = e.pc + 4
		e.actualNext = uint32(in.Imm) * 4
	case op == isa.JR:
		e.actualNext = c.readSrc(e, in.R2)
	case op == isa.JALR:
		e.value = e.pc + 4
		e.actualNext = c.readSrc(e, in.R2)
	case op == isa.CPUID:
		e.value = uint32(c.id)
	case op == isa.FMOV, op == isa.FNEG:
		e.fvalue = cpu.FPOp(op, c.readSrcF(e, in.R2), 0)
	case op == isa.FEQ, op == isa.FLT, op == isa.FLE:
		e.value = cpu.FPCmp(op, c.readSrcF(e, in.R2), c.readSrcF(e, in.R3))
	case op == isa.CVTIF:
		e.fvalue = float64(int32(c.readSrc(e, in.R2)))
	case op == isa.CVTFI:
		e.value = cpu.CvtFI(c.readSrcF(e, in.R2))
	case op.IsFPOp():
		e.fvalue = cpu.FPOp(op, c.readSrcF(e, in.R2), c.readSrcF(e, in.R3))
	default:
		if op.Format() == isa.FormatR {
			e.value = cpu.ALU(op, c.readSrc(e, in.R2), c.readSrc(e, in.R3), 0)
		} else {
			e.value = cpu.ALU(op, c.readSrc(e, in.R2), 0, in.Imm)
		}
	}
}

// --- dispatch ---

func (c *CPU) dispatch(now uint64) {
	if c.count == windowSize && len(c.fq) > 0 && c.tr != nil {
		c.tr.Emit(obsv.Event{Cycle: now, Kind: obsv.EvROBFull, CPU: int8(c.id)})
	}
	n := 0
	for n < issueWidth && len(c.fq) > 0 && c.count < windowSize {
		fe := c.fq[0]
		c.fq = c.fq[1:]
		slot := c.tail
		e := &c.rob[slot]
		*e = robEntry{
			valid:      true,
			inst:       fe.inst,
			pc:         fe.pc,
			ppc:        fe.ppc,
			dispatched: true,
			predNext:   fe.predNext,
			actualNext: fe.predNext,
			dest:       fe.inst.Dest(),
		}
		var srcs []uint8
		srcs = fe.inst.Srcs(srcs)
		if len(srcs) > 2 {
			srcs = srcs[:2]
		}
		for i, r := range srcs {
			e.srcRegs[i] = r
			e.srcProd[i] = c.writer[r]
		}
		e.nSrc = len(srcs)
		if e.dest != isa.RegNone {
			c.writer[e.dest] = slot
		}
		c.tail = (c.tail + 1) % windowSize
		c.count++
		c.seq++
		n++
	}
}

// --- fetch ---

func (c *CPU) fetch(now uint64) {
	if c.fetchStalled || c.fetchFault || now < c.fetchReady {
		return
	}
	for n := 0; n < fetchWidth && len(c.fq) < fetchQueue; n++ {
		pc := c.fetchPC
		ppc, ok := c.ctx.Space.Translate(pc)
		if !ok {
			c.fetchFault = true
			return
		}
		if ppc&c.lineMask != c.fetchLine {
			r := c.mem.IFetch(now, c.id, ppc)
			c.fetchLine = ppc & c.lineMask
			c.fetchLvl = r.Level
			if r.Done > now+1 {
				c.fetchReady = r.Done
				return
			}
		}
		in, ok := c.code.InstAt(ppc)
		if !ok {
			c.fetchFault = true
			return
		}
		fe := fetchEntry{pc: pc, ppc: ppc, inst: in}
		fe.predNext = c.predict(pc, in)
		//simlint:allow hotalloc — fetch queue reuses its backing array at steady state
		c.fq = append(c.fq, fe)
		c.fetchPC = fe.predNext
		if in.Op == isa.SYSCALL || in.Op == isa.HALT {
			// Serialize: nothing is fetched past a trap boundary.
			c.fetchStalled = true
			return
		}
	}
}

// predict returns the predicted next PC for in at pc.
func (c *CPU) predict(pc uint32, in isa.Inst) uint32 {
	switch {
	case in.Op == isa.J, in.Op == isa.JAL:
		return uint32(in.Imm) * 4
	case in.Op == isa.JR, in.Op == isa.JALR, in.Op.IsBranch():
		idx := (pc >> 2) % btbEntries
		if b := c.btb[idx]; b.valid && b.tag == pc {
			return b.target
		}
		return pc + 4
	}
	return pc + 4
}

// --- stall attribution (blame the head) ---

// blame charges the zero-graduation cycle to its cause, following the
// paper's Figure 11 categories: instruction stalls, data stalls, and
// pipeline stalls (which include the shared-L1 hit time and bank
// contention, surfaced here as L1-level load waits).
func (c *CPU) blame(now uint64) { c.blameN(now, 1) }

// blameN charges n consecutive zero-graduation cycles starting at now.
// The bulk form exists for SkipCycles: across a window NextWork proved
// inert, the head entry (and the cause it would be blamed on) cannot
// change, so charging n cycles at once is identical to n per-cycle
// blame calls.
func (c *CPU) blameN(now, n uint64) {
	if c.count == 0 {
		c.stats.IStall[c.fetchLvl] += n
		if c.prof != nil {
			// Charge the PC the front end is trying to fetch; Translate
			// is pure, and only paid when profiling is on.
			if ppc, ok := c.ctx.Space.Translate(c.fetchPC); ok {
				c.prof.IStallPC(ppc, uint8(c.fetchLvl), n)
			}
		}
		return
	}
	e := &c.rob[c.head]
	op := e.inst.Op
	switch {
	case e.issued && !e.fwd && op.IsLoad() && (!e.done || e.doneAt > now):
		if e.memLevel == memsys.LvlL1 {
			c.stats.PipeStall += n // extra hit latency / bank contention
			if c.prof != nil {
				c.prof.PipeStallPC(e.ppc, n)
			}
		} else {
			c.stats.DStall[e.memLevel] += n
			if c.prof != nil {
				c.prof.DStallPC(e.ppc, uint8(e.memLevel), n)
			}
		}
	case op.IsStore() && e.done && e.doneAt <= now:
		c.stats.DStall[memsys.LvlL2] += n // write buffer backpressure
		if c.prof != nil {
			c.prof.DStallPC(e.ppc, uint8(memsys.LvlL2), n)
		}
	default:
		c.stats.PipeStall += n
		if c.prof != nil {
			c.prof.PipeStallPC(e.ppc, n)
		}
	}
}
