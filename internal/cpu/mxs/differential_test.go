package mxs_test

import (
	"math/rand"
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// genProgram builds a random but guaranteed-terminating guest program:
// a few counted loops whose bodies are random ALU operations and
// loads/stores into a scratch region, finishing by dumping the register
// file to memory. The generated control flow exercises the BTB, the
// window, forwarding and the replay machinery; identical final memory
// under Mipsy and MXS is the correctness oracle.
func genProgram(r *rand.Rand) *asm.Builder {
	b := asm.NewBuilder()
	const scratchWords = 256

	// Registers r1..r15 are the random pool; r16+ are loop bookkeeping.
	b.Label("start")
	for i := asm.Reg(1); i <= 15; i++ {
		b.LI(i, int32(r.Intn(1<<16))-1<<15)
	}
	b.LA(asm.R16, "scratch")

	emitRandomOp := func(tag int) {
		rd := asm.Reg(1 + r.Intn(15))
		rs := asm.Reg(1 + r.Intn(15))
		rt := asm.Reg(1 + r.Intn(15))
		switch r.Intn(12) {
		case 0:
			b.ADD(rd, rs, rt)
		case 1:
			b.SUB(rd, rs, rt)
		case 2:
			b.MUL(rd, rs, rt)
		case 3:
			b.DIV(rd, rs, rt) // division by zero is architected as zero
		case 4:
			b.XOR(rd, rs, rt)
		case 5:
			b.SLL(rd, rs, rt)
		case 6:
			b.SRA(rd, rs, rt)
		case 7:
			b.ADDI(rd, rs, int32(r.Intn(2048)-1024))
		case 8:
			b.SLT(rd, rs, rt)
		case 9: // store then reload (exercises forwarding)
			off := int32(4 * r.Intn(scratchWords))
			b.SW(rs, off, asm.R16)
			b.LW(rd, off, asm.R16)
		case 10: // plain store
			off := int32(4 * r.Intn(scratchWords))
			b.SW(rs, off, asm.R16)
		case 11: // plain load
			off := int32(4 * r.Intn(scratchWords))
			b.LW(rd, off, asm.R16)
		}
		_ = tag
	}

	loops := 2 + r.Intn(3)
	for l := 0; l < loops; l++ {
		iters := int32(5 + r.Intn(40))
		b.LI(asm.R17, iters)
		b.Label(loopLabel(l))
		body := 3 + r.Intn(10)
		for i := 0; i < body; i++ {
			emitRandomOp(l*100 + i)
		}
		// A data-dependent forward branch inside the loop.
		rs := asm.Reg(1 + r.Intn(15))
		b.BEQZ(rs, skipLabel(l))
		emitRandomOp(l*100 + 50)
		b.Label(skipLabel(l))
		b.ADDI(asm.R17, asm.R17, -1)
		b.BNEZ(asm.R17, loopLabel(l))
	}

	// Dump the register pool so the oracle sees every live value.
	b.LA(asm.R16, "dump")
	for i := asm.Reg(1); i <= 15; i++ {
		b.SW(i, int32(4*(i-1)), asm.R16)
	}
	b.HALT()

	b.AlignData(4)
	b.DataLabel("scratch")
	b.Zero(4 * scratchWords)
	b.DataLabel("dump")
	b.Zero(4 * 15)
	return b
}

func loopLabel(l int) string { return "L" + string(rune('a'+l)) }
func skipLabel(l int) string { return "S" + string(rune('a'+l)) }

// runModel executes the program under the given CPU model and returns
// the scratch+dump memory contents.
func runModel(t *testing.T, build func() *asm.Builder, model core.CPUModel, arch core.Arch) []uint32 {
	t.Helper()
	p, err := build().Assemble(0x1000, 0x40000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(arch, model, memsys.DefaultConfig(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p, 0)
	ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, PC: p.Addr("start")}
	ctx.Regs[isa.RegSP] = 0x80000
	m.AddContext(ctx)
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 256+15)
	for i := range out {
		out[i] = m.Img.Read32(0x40000 + uint32(4*i))
	}
	return out
}

// TestDifferentialRandomPrograms cross-checks the two CPU models on a
// corpus of random programs across all three architectures: the
// out-of-order core must be architecturally indistinguishable from the
// in-order interpreter.
func TestDifferentialRandomPrograms(t *testing.T) {
	const programs = 60
	arches := core.Arches()
	for seed := int64(0); seed < programs; seed++ {
		build := func() *asm.Builder { return genProgram(rand.New(rand.NewSource(seed))) }
		arch := arches[int(seed)%len(arches)]
		a := runModel(t, build, core.ModelMipsy, arch)
		b := runModel(t, build, core.ModelMXS, arch)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d on %s: word %d differs: mipsy=%#x mxs=%#x",
					seed, arch, i, a[i], b[i])
			}
		}
	}
}
