package mxs_test

import (
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// runBoth assembles b and runs it on nCPU CPUs under both CPU models on
// the given architecture, returning the two machines for comparison.
func runBoth(t *testing.T, build func() *asm.Builder, nCPU int, arch core.Arch) (mip, mxs *core.Machine) {
	t.Helper()
	run := func(model core.CPUModel) *core.Machine {
		b := build()
		p, err := b.Assemble(0x1000, 0x40000)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMachine(arch, model, memsys.DefaultConfig(), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(p, 0)
		for i := 0; i < nCPU; i++ {
			ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, TID: i, PC: p.Addr("start")}
			ctx.Regs[isa.RegSP] = 0x300000 + uint32(i)*0x10000
			ctx.Regs[asm.A0] = uint32(i)
			m.AddContext(ctx)
		}
		if _, err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	return run(core.ModelMipsy), run(core.ModelMXS)
}

// checkSameMemory compares a region of both machines' memories.
func checkSameMemory(t *testing.T, mip, mxs *core.Machine, base, words uint32) {
	t.Helper()
	for i := uint32(0); i < words; i++ {
		a := mip.Img.Read32(base + 4*i)
		b := mxs.Img.Read32(base + 4*i)
		if a != b {
			t.Fatalf("memory differs at %#x: mipsy=%#x mxs=%#x", base+4*i, a, b)
		}
	}
}

func TestMXSMatchesMipsyOnALUProgram(t *testing.T) {
	build := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LI(asm.R1, 0)
		b.LI(asm.R2, 1)
		b.LI(asm.R3, 200)
		b.Label("loop")
		// A dependent chain with branches, multiplies and divides.
		b.MUL(asm.R4, asm.R2, asm.R2)
		b.ADDI(asm.R5, asm.R4, 13)
		b.DIV(asm.R6, asm.R5, asm.R2)
		b.XOR(asm.R1, asm.R1, asm.R6)
		b.ANDI(asm.R7, asm.R2, 3)
		b.BNEZ(asm.R7, "skip")
		b.ADDI(asm.R1, asm.R1, 7)
		b.Label("skip")
		b.ADDI(asm.R2, asm.R2, 1)
		b.BLT(asm.R2, asm.R3, "loop")
		b.LA(asm.R8, "out")
		b.SW(asm.R1, 0, asm.R8)
		b.HALT()
		b.AlignData(4)
		b.DataLabel("out")
		b.Word32(0)
		return b
	}
	mip, mxs := runBoth(t, build, 1, core.SharedMem)
	checkSameMemory(t, mip, mxs, 0x40000, 4)
}

func TestMXSMatchesMipsyOnFPAndCalls(t *testing.T) {
	build := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LA(asm.R16, "vals")
		b.CVTIF(asm.F10, asm.R0)
		b.LI(asm.R17, 24)
		b.LI(asm.R18, 0)
		b.Label("loop")
		b.SLLI(asm.R8, asm.R18, 3)
		b.ADD(asm.R8, asm.R16, asm.R8)
		b.LD(asm.F0, 0, asm.R8)
		b.JAL("fma") // f10 += f0*f0 via a call
		b.ADDI(asm.R18, asm.R18, 1)
		b.BLT(asm.R18, asm.R17, "loop")
		b.LA(asm.R8, "sum")
		b.SD(asm.F10, 0, asm.R8)
		b.CVTFI(asm.R9, asm.F10)
		b.LA(asm.R10, "sumi")
		b.SW(asm.R9, 0, asm.R10)
		b.HALT()
		b.Label("fma")
		b.FMULD(asm.F1, asm.F0, asm.F0)
		b.FADDD(asm.F10, asm.F10, asm.F1)
		b.RET()
		b.DataLabel("vals")
		for i := 0; i < 24; i++ {
			b.Float64(float64(i)*0.75 - 3)
		}
		b.AlignData(8)
		b.DataLabel("sum")
		b.Float64(0)
		b.DataLabel("sumi")
		b.Word32(0)
		return b
	}
	mip, mxs := runBoth(t, build, 1, core.SharedL1)
	// Compare the full data region including the FP sum bits.
	checkSameMemory(t, mip, mxs, 0x40000, 24*2+4)
}

func TestMXSStoreToLoadForwarding(t *testing.T) {
	build := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LA(asm.R1, "buf")
		b.LI(asm.R2, 100)
		b.LI(asm.R5, 0)
		b.Label("loop")
		// Store then immediately load the same word: must forward.
		b.SW(asm.R2, 0, asm.R1)
		b.LW(asm.R3, 0, asm.R1)
		b.ADD(asm.R5, asm.R5, asm.R3)
		b.ADDI(asm.R2, asm.R2, -1)
		b.BNEZ(asm.R2, "loop")
		b.LA(asm.R4, "out")
		b.SW(asm.R5, 0, asm.R4)
		b.HALT()
		b.AlignData(4)
		b.DataLabel("buf")
		b.Word32(0)
		b.DataLabel("out")
		b.Word32(0)
		return b
	}
	mip, mxs := runBoth(t, build, 1, core.SharedMem)
	checkSameMemory(t, mip, mxs, 0x40000, 2)
	// 100+99+...+1 = 5050.
	if got := mxs.Img.Read32(0x40004); got != 5050 {
		t.Errorf("forwarded sum = %d, want 5050", got)
	}
}

func TestMXSLLSCAtomicIncrement(t *testing.T) {
	build := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LA(asm.R1, "counter")
		b.LI(asm.R2, 100)
		b.Label("retry")
		b.LL(asm.R3, 0, asm.R1)
		b.ADDI(asm.R3, asm.R3, 1)
		b.SC(asm.R3, 0, asm.R1)
		b.BEQZ(asm.R3, "retry")
		b.ADDI(asm.R2, asm.R2, -1)
		b.BNEZ(asm.R2, "retry")
		b.HALT()
		b.AlignData(4)
		b.DataLabel("counter")
		b.Word32(0)
		return b
	}
	_, mxs := runBoth(t, build, 4, core.SharedMem)
	if got := mxs.Img.Read32(0x40000); got != 400 {
		t.Errorf("counter = %d, want 400", got)
	}
}

func TestMXSIsFasterThanMipsyOnILP(t *testing.T) {
	// Independent operations: the 2-way OoO core must beat 1-IPC Mipsy.
	build := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LI(asm.R1, 0)
		b.LI(asm.R2, 0)
		b.LI(asm.R3, 0)
		b.LI(asm.R4, 0)
		b.LI(asm.R10, 2000)
		b.Label("loop")
		b.ADDI(asm.R1, asm.R1, 1)
		b.ADDI(asm.R2, asm.R2, 2)
		b.ADDI(asm.R3, asm.R3, 3)
		b.ADDI(asm.R4, asm.R4, 4)
		b.ADDI(asm.R10, asm.R10, -1)
		b.BNEZ(asm.R10, "loop")
		b.HALT()
		return b
	}
	run := func(model core.CPUModel) uint64 {
		b := build()
		p := b.MustAssemble(0x1000, 0x40000)
		m, err := core.NewMachine(core.SharedMem, model, memsys.DefaultConfig(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(p, 0)
		ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, PC: p.Addr("start")}
		ctx.Regs[isa.RegSP] = 0x80000
		m.AddContext(ctx)
		res, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	mip := run(core.ModelMipsy)
	ooo := run(core.ModelMXS)
	if ooo >= mip {
		t.Errorf("MXS (%d cycles) should beat Mipsy (%d) on ILP code", ooo, mip)
	}
}

func TestMXSRunsWorkloadsCorrectly(t *testing.T) {
	// The ultimate equivalence test: real workloads validate their
	// numeric results against the Go reference under the OoO model too.
	wls := []workload.Workload{
		workload.NewEqntott(workload.EqntottParams{Words: 64, Iters: 12}),
		workload.NewEar(workload.EarParams{Channels: 16, Samples: 30}),
		workload.NewFFT(workload.FFTParams{N: 32, Batches: 4}),
	}
	for _, w := range wls {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			if _, err := workload.Run(w, core.SharedL2, core.ModelMXS, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMXSRunsPmakeWithKernel(t *testing.T) {
	w := workload.NewPmake(workload.PmakeParams{Procs: 5, Funcs: 12, Passes: 2})
	if _, err := workload.Run(w, core.SharedMem, core.ModelMXS, nil); err != nil {
		t.Fatal(err)
	}
}
