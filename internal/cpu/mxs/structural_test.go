package mxs_test

import (
	"testing"

	"cmpsim/internal/asm"
)

// TestSingleMemoryPortLimitsLoadThroughput: independent loads to hot
// lines can retire at most one per cycle (one memory data port), while
// independent ALU ops dual-issue. The loop with 4 loads must therefore
// take roughly twice as long as the loop with 4 ALU ops.
func TestSingleMemoryPortLimitsLoadThroughput(t *testing.T) {
	mkLoads := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LA(asm.R1, "data")
		b.LI(asm.R10, 1000)
		b.Label("loop")
		b.LW(asm.R2, 0, asm.R1)
		b.LW(asm.R3, 4, asm.R1)
		b.LW(asm.R4, 8, asm.R1)
		b.LW(asm.R5, 12, asm.R1)
		b.ADDI(asm.R10, asm.R10, -1)
		b.BNEZ(asm.R10, "loop")
		b.HALT()
		b.AlignData(4)
		b.DataLabel("data")
		b.Word32(1, 2, 3, 4)
		return b
	}
	mkALU := func() *asm.Builder {
		b := asm.NewBuilder()
		b.Label("start")
		b.LI(asm.R10, 1000)
		b.Label("loop")
		b.ADDI(asm.R2, asm.R2, 1)
		b.ADDI(asm.R3, asm.R3, 1)
		b.ADDI(asm.R4, asm.R4, 1)
		b.ADDI(asm.R5, asm.R5, 1)
		b.ADDI(asm.R10, asm.R10, -1)
		b.BNEZ(asm.R10, "loop")
		b.HALT()
		return b
	}
	// Both loops run the same instruction count; the load loop's single
	// memory port shows up as extra head-blocked (pipe-stall) cycles.
	run := func(mk func() *asm.Builder) float64 {
		st, _ := runMXS(t, mk())
		return float64(st.PipeStall)
	}
	loadStalls := run(mkLoads)
	aluStalls := run(mkALU)
	if loadStalls <= aluStalls {
		t.Errorf("memory-port pressure not visible: load-loop pipe stalls %v <= alu-loop %v",
			loadStalls, aluStalls)
	}
}

// TestWindowBoundsOutstandingWork: a long dependent FP-divide chain
// cannot hide anything; the blame accounting must attribute the time to
// pipeline stalls rather than losing it.
func TestDependentDivideChainStalls(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.R1, "c")
	b.LD(asm.F0, 0, asm.R1)
	b.LD(asm.F1, 8, asm.R1)
	b.LI(asm.R10, 200)
	b.Label("loop")
	b.FDIVD(asm.F0, asm.F0, asm.F1) // 18-cycle dependent divides
	b.ADDI(asm.R10, asm.R10, -1)
	b.BNEZ(asm.R10, "loop")
	b.HALT()
	b.DataLabel("c")
	b.Float64(1e300, 1.0000001)
	st, _ := runMXS(t, b)
	// 200 divides x 18 cycles ≈ 3600 cycles of mostly pipeline stall.
	if st.PipeStall < 2500 {
		t.Errorf("pipe stalls = %d, want most of the ~3600 divide cycles", st.PipeStall)
	}
	if st.Instructions < 600 {
		t.Errorf("instructions = %d", st.Instructions)
	}
}
