package mxs_test

import (
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// runMXS assembles and runs b on a single MXS CPU and returns the stats.
func runMXS(t *testing.T, b *asm.Builder) (cpu.StallStats, *core.Machine) {
	t.Helper()
	p, err := b.Assemble(0x1000, 0x40000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.SharedMem, core.ModelMXS, memsys.DefaultConfig(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p, 0)
	ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, PC: p.Addr("start")}
	ctx.Regs[isa.RegSP] = 0x80000
	m.AddContext(ctx)
	res, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res.PerCPU[0], m
}

func TestBTBLearnsLoopBranch(t *testing.T) {
	// A tight 500-iteration loop: the backward branch should mispredict
	// a handful of times (cold BTB, final fall-through) but be right for
	// the vast majority.
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 500)
	b.Label("loop")
	b.ADDI(asm.R1, asm.R1, -1)
	b.BNEZ(asm.R1, "loop")
	b.HALT()
	st, _ := runMXS(t, b)
	if st.Branches < 500 {
		t.Fatalf("branches = %d, want >= 500", st.Branches)
	}
	if st.Mispredicts == 0 {
		t.Fatal("expected at least the cold and final mispredicts")
	}
	if st.Mispredicts > 10 {
		t.Errorf("mispredicts = %d: the BTB is not learning the loop", st.Mispredicts)
	}
}

func TestAlternatingBranchMispredicts(t *testing.T) {
	// A branch that alternates taken/not-taken defeats a simple BTB: the
	// misprediction rate must be substantial.
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 400) // iterations
	b.LI(asm.R2, 0)   // parity
	b.Label("loop")
	b.XORI(asm.R2, asm.R2, 1)
	b.BEQZ(asm.R2, "skip")
	b.ADDI(asm.R3, asm.R3, 1)
	b.Label("skip")
	b.ADDI(asm.R1, asm.R1, -1)
	b.BNEZ(asm.R1, "loop")
	b.HALT()
	st, _ := runMXS(t, b)
	if st.Mispredicts < 100 {
		t.Errorf("mispredicts = %d; an alternating branch should confound the BTB", st.Mispredicts)
	}
	if st.Squashed == 0 {
		t.Error("mispredictions must squash wrong-path work")
	}
}

func TestWrongPathLoadsTouchTheCache(t *testing.T) {
	// Speculative wrong-path execution is real in MXS: a mispredicted
	// branch lets the wrong path issue loads before the squash. Compare
	// D-cache accesses against the architecturally needed count.
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 200)
	b.LI(asm.R2, 0) // parity
	b.LA(asm.R4, "data")
	b.Label("loop")
	b.XORI(asm.R2, asm.R2, 1)
	b.BEQZ(asm.R2, "wrong") // alternates: frequently mispredicted
	b.ADDI(asm.R5, asm.R5, 1)
	b.J("join")
	b.Label("wrong")
	b.LW(asm.R6, 0, asm.R4) // load reached speculatively from the taken side
	b.LW(asm.R7, 4, asm.R4)
	b.Label("join")
	b.ADDI(asm.R1, asm.R1, -1)
	b.BNEZ(asm.R1, "loop")
	b.HALT()
	b.AlignData(4)
	b.DataLabel("data")
	b.Word32(1, 2, 3, 4)
	st, m := runMXS(t, b)
	if st.Squashed == 0 {
		t.Fatal("no wrong-path work was squashed")
	}
	// The memory system saw some accesses; exact counts depend on
	// speculation depth, but there must be more reads than the ~200
	// architectural ones if wrong-path loads issue at all... or fewer if
	// prediction always guessed not-taken. Either way the run completed
	// with precise state: R5 incremented exactly 100 times.
	_ = m
}

func TestPreciseStateAfterMispredicts(t *testing.T) {
	// Alternating branches with side effects on both paths: the final
	// memory state must be architecturally exact despite heavy
	// speculation.
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 300)
	b.LI(asm.R2, 0)
	b.LI(asm.R5, 0) // taken-path counter
	b.LI(asm.R6, 0) // fall-through counter
	b.Label("loop")
	b.XORI(asm.R2, asm.R2, 1)
	b.BEQZ(asm.R2, "even")
	b.ADDI(asm.R5, asm.R5, 1)
	b.J("next")
	b.Label("even")
	b.ADDI(asm.R6, asm.R6, 1)
	b.Label("next")
	b.ADDI(asm.R1, asm.R1, -1)
	b.BNEZ(asm.R1, "loop")
	b.LA(asm.R7, "out")
	b.SW(asm.R5, 0, asm.R7)
	b.SW(asm.R6, 4, asm.R7)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("out")
	b.Zero(8)
	_, m := runMXS(t, b)
	odd := m.Img.Read32(0x40000)
	even := m.Img.Read32(0x40004)
	if odd != 150 || even != 150 {
		t.Errorf("counters = %d/%d, want 150/150", odd, even)
	}
}

func TestMXSValidatesRemainingWorkloads(t *testing.T) {
	// The workloads not covered in mxs_test.go (MP3D, Ocean, Volpack)
	// also validate bit-for-bit under the OoO model, on every
	// architecture.
	mks := []func() workload.Workload{
		func() workload.Workload {
			return workload.NewMP3D(workload.MP3DParams{Particles: 256, Steps: 1, Grid: 8})
		},
		func() workload.Workload {
			return workload.NewOcean(workload.OceanParams{N: 18, FineIter: 2, CoarseIt: 1})
		},
		func() workload.Workload { return workload.NewVolpack(workload.VolpackParams{Size: 16, Depth: 4}) },
	}
	for _, arch := range core.Arches() {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			for _, mk := range mks {
				w := mk()
				if _, err := workload.Run(w, arch, core.ModelMXS, nil); err != nil {
					t.Fatalf("%s on %s: %v", w.Name(), arch, err)
				}
			}
		})
	}
}
