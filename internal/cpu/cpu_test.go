package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"cmpsim/internal/isa"
)

func TestTable1Latencies(t *testing.T) {
	// Table 1 of the paper, exactly.
	cases := []struct {
		op  isa.Op
		lat uint64
	}{
		{isa.ADD, 1}, // integer ALU
		{isa.AND, 1},
		{isa.MUL, 2},    // integer multiply
		{isa.DIV, 12},   // integer divide
		{isa.BEQ, 2},    // branch
		{isa.SW, 1},     // store
		{isa.FADDS, 2},  // SP add/sub
		{isa.FMULS, 2},  // SP multiply
		{isa.FDIVS, 12}, // SP divide
		{isa.FADDD, 2},  // DP add/sub
		{isa.FMULD, 2},  // DP multiply
		{isa.FDIVD, 18}, // DP divide
	}
	for _, c := range cases {
		if got := Latency(c.op); got != c.lat {
			t.Errorf("Latency(%v) = %d, want %d", c.op, got, c.lat)
		}
	}
}

func TestFUClassesAndCopies(t *testing.T) {
	if ClassOf(isa.LW) != FUMem || ClassOf(isa.SW) != FUMem {
		t.Error("memory ops must use the memory port")
	}
	if FUMem.Copies() != 1 {
		t.Error("exactly one memory data port (Section 2.1)")
	}
	if FUIntALU.Copies() != 2 || FUFPDiv.Copies() != 2 {
		t.Error("two copies of every other unit")
	}
	if ClassOf(isa.MUL) != FUIntMul || ClassOf(isa.DIV) != FUIntDiv {
		t.Error("int mul/div classes wrong")
	}
	if ClassOf(isa.BEQ) != FUBranch || ClassOf(isa.JAL) != FUBranch {
		t.Error("control class wrong")
	}
	if ClassOf(isa.FMULD) != FUFPMul || ClassOf(isa.FDIVS) != FUFPDiv || ClassOf(isa.CVTIF) != FUFPAdd {
		t.Error("FP classes wrong")
	}
}

func TestALUEdgeCases(t *testing.T) {
	if got := ALU(isa.DIV, 100, 0, 0); got != 0 {
		t.Errorf("div by zero = %d, want 0", got)
	}
	if got := ALU(isa.REM, 100, 0, 0); got != 100 {
		t.Errorf("rem by zero = %d, want dividend", got)
	}
	minInt := uint32(1 << 31)
	if got := ALU(isa.DIV, minInt, uint32(0xffffffff), 0); got != minInt {
		t.Errorf("MinInt32/-1 = %#x, want wrap to MinInt32", got)
	}
	if got := ALU(isa.REM, minInt, uint32(0xffffffff), 0); got != 0 {
		t.Errorf("MinInt32 rem -1 = %d, want 0", got)
	}
	if got := ALU(isa.SLL, 1, 33, 0); got != 2 {
		t.Errorf("shift amount must be mod 32: got %d", got)
	}
}

func TestQuickALUMatchesGoSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		if ALU(isa.ADD, a, b, 0) != a+b {
			return false
		}
		if ALU(isa.SUB, a, b, 0) != a-b {
			return false
		}
		if ALU(isa.XOR, a, b, 0) != a^b {
			return false
		}
		if ALU(isa.SLT, a, b, 0) != boolToU32(int32(a) < int32(b)) {
			return false
		}
		if ALU(isa.SLTU, a, b, 0) != boolToU32(a < b) {
			return false
		}
		if b != 0 && int32(b) != -1 {
			if ALU(isa.DIV, a, b, 0) != uint32(int32(a)/int32(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickALUImmediates(t *testing.T) {
	f := func(a uint32, imm16 int16) bool {
		imm := int32(imm16)
		if ALU(isa.ADDI, a, 0, imm) != a+uint32(imm) {
			return false
		}
		if ALU(isa.ORI, a, 0, imm) != a|uint32(uint16(imm)) {
			return false
		}
		if ALU(isa.LUI, 0, 0, imm) != uint32(uint16(imm))<<16 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFPSinglePrecisionRounds(t *testing.T) {
	// 1/3 in SP differs from DP.
	sp := FPOp(isa.FDIVS, 1, 3)
	dp := FPOp(isa.FDIVD, 1, 3)
	if sp == dp {
		t.Error("SP divide should round through float32")
	}
	if float32(sp) != float32(1)/float32(3) {
		t.Error("SP divide wrong value")
	}
}

func TestFPCmpNaN(t *testing.T) {
	nan := math.NaN()
	if FPCmp(isa.FEQ, nan, nan) != 0 || FPCmp(isa.FLT, nan, 1) != 0 || FPCmp(isa.FLE, 1, nan) != 0 {
		t.Error("comparisons with NaN must be false")
	}
}

func TestCvtFISaturation(t *testing.T) {
	if CvtFI(math.NaN()) != 0 {
		t.Error("NaN -> 0")
	}
	if CvtFI(1e18) != uint32(math.MaxInt32) {
		t.Error("overflow must saturate to MaxInt32")
	}
	if CvtFI(-1e18) != uint32(1)<<31 {
		t.Error("underflow must saturate to MinInt32")
	}
	if CvtFI(-2.9) != uint32(0xfffffffe) {
		t.Errorf("trunc(-2.9) = %#x, want -2", CvtFI(-2.9))
	}
}

func TestBranchTaken(t *testing.T) {
	if !BranchTaken(isa.BEQ, 5, 5) || BranchTaken(isa.BEQ, 5, 6) {
		t.Error("BEQ wrong")
	}
	if !BranchTaken(isa.BLT, uint32(0xffffffff), 0) { // -1 < 0
		t.Error("BLT must be signed")
	}
	if !BranchTaken(isa.BGE, 0, uint32(0xffffffff)) {
		t.Error("BGE must be signed")
	}
}

func TestStallStatsAdd(t *testing.T) {
	var a, b StallStats
	a.Instructions = 10
	a.IStall[1] = 3
	a.DStall[2] = 4
	a.PipeStall = 5
	b = a
	a.Add(b)
	if a.Instructions != 20 || a.IStall[1] != 6 || a.DStall[2] != 8 || a.PipeStall != 10 {
		t.Errorf("Add result = %+v", a)
	}
	if a.TotalIStall() != 6 || a.TotalDStall() != 8 {
		t.Error("totals wrong")
	}
}

func TestContextFault(t *testing.T) {
	var c Context
	c.Faultf("bad %s at %#x", "load", 0x10)
	if !c.Halted || c.Fault != "bad load at 0x10" {
		t.Errorf("fault = %q halted = %v", c.Fault, c.Halted)
	}
}
