// Package cpu holds the definitions shared by the two CPU models: the
// architectural context of a hardware thread, the functional-unit
// classes and latencies of the paper's Table 1, the instruction
// semantics (pure value functions reused by the in-order interpreter and
// the out-of-order window), and the interfaces through which a CPU model
// reaches code, the trap handler and the memory system.
package cpu

import (
	"fmt"
	"math"

	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// Context is the architectural state of one hardware context (guest
// thread or process). The guest kernel switches contexts by swapping
// these fields.
type Context struct {
	Regs  [32]uint32
	FRegs [32]float64
	PC    uint32
	Space mem.Space
	TID   int // software thread/process id (for the kernel and reports)

	Halted bool
	Fault  string // non-empty after an unrecoverable guest fault
}

// Faultf marks the context faulted (stopping its CPU) with a reason.
func (c *Context) Faultf(format string, args ...any) {
	c.Halted = true
	// A fault halts this CPU for the rest of the run, so the format
	// executes at most once per context — off the steady-state path.
	c.Fault = fmt.Sprintf(format, args...) //simlint:allow hotalloc — faults halt the CPU; formats at most once per run
}

// NoWork is the sentinel a CPU model's NextWork returns when the core
// can never make progress on its own (halted, or inert until external
// state changes): it places no bound on how far the quiescence-skipping
// scheduler may fast-forward the cycle loop.
const NoWork = ^uint64(0)

// CodeSource resolves a physical address to a decoded instruction. The
// simulator core implements it over the loaded programs.
type CodeSource interface {
	InstAt(paddr uint32) (isa.Inst, bool)
}

// TrapHandler receives SYSCALL traps. It may mutate the context —
// including redirecting the PC into guest kernel code or swapping the
// entire register state for a context switch. It returns the number of
// extra cycles to charge for trap entry (hardware overhead).
type TrapHandler interface {
	Syscall(now uint64, cpuID int, ctx *Context, num int32) uint64
}

// NopTrap ignores syscalls (parallel applications that never trap).
type NopTrap struct{}

// Syscall implements TrapHandler.
func (NopTrap) Syscall(uint64, int, *Context, int32) uint64 { return 0 }

// IRQ is the pseudo syscall number delivered to the trap handler for an
// external (timer) interrupt. Unlike a SYSCALL trap, the context's PC
// still points at the next unexecuted instruction.
const IRQ int32 = -1

// InterruptSource lets a CPU model poll for pending external interrupts
// at instruction boundaries. The simulator core implements it.
type InterruptSource interface {
	PendingInterrupt(cpuID int) bool
	AckInterrupt(cpuID int)
}

// TickGate is the parallel scheduler's shared-state grant: Sync blocks
// until every CPU ahead of this one in the current cycle's service
// rotation has finished its tick, then returns with the shared
// simulation state (memory system, guest memory image, kernel
// structures) exactly as the serial loop would present it. The core
// installs it around every memory-system and trap call; a CPU model
// that reads the shared guest image outside those calls (MXS's
// graduation-time load refresh) must call Sync itself first. Sync is
// idempotent within one tick and free once the grant is held.
type TickGate interface {
	Sync()
}

// FUClass identifies a functional-unit type. The paper's CPU has two
// copies of every unit except the memory data port (Section 2.1).
type FUClass uint8

const (
	FUIntALU FUClass = iota
	FUIntMul
	FUIntDiv
	FUBranch
	FUMem
	FUFPAdd // FP add/sub, compares, converts, moves
	FUFPMul
	FUFPDiv
	NumFUClasses
)

// Copies returns the number of copies of the unit class (Table 1 text:
// two of everything except the memory data port).
func (f FUClass) Copies() int {
	if f == FUMem {
		return 1
	}
	return 2
}

// ClassOf maps an opcode to its functional unit.
func ClassOf(op isa.Op) FUClass {
	switch {
	case op.IsMem():
		return FUMem
	case op.IsBranch(), op.IsJump():
		return FUBranch
	}
	switch op {
	case isa.MUL:
		return FUIntMul
	case isa.DIV, isa.REM:
		return FUIntDiv
	case isa.FMULS, isa.FMULD:
		return FUFPMul
	case isa.FDIVS, isa.FDIVD:
		return FUFPDiv
	case isa.FADDS, isa.FSUBS, isa.FADDD, isa.FSUBD,
		isa.FMOV, isa.FNEG, isa.FEQ, isa.FLT, isa.FLE,
		isa.CVTIF, isa.CVTFI:
		return FUFPAdd
	}
	return FUIntALU
}

// Latency returns the execution latency of op in cycles per the paper's
// Table 1. Loads are "1 or 3": the memory system supplies the real
// completion time, so the table value here is the 1-cycle issue slot.
func Latency(op isa.Op) uint64 {
	switch op {
	case isa.MUL:
		return 2
	case isa.DIV, isa.REM:
		return 12
	case isa.FADDS, isa.FSUBS, isa.FADDD, isa.FSUBD:
		return 2
	case isa.FMULS, isa.FMULD:
		return 2
	case isa.FDIVS:
		return 12
	case isa.FDIVD:
		return 18
	case isa.FEQ, isa.FLT, isa.FLE, isa.CVTIF, isa.CVTFI, isa.FMOV, isa.FNEG:
		return 2
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.J, isa.JAL, isa.JR, isa.JALR:
		return 2
	}
	return 1
}

// ALU computes an integer register-register or register-immediate
// operation. a and b are the register operands (b is ignored for
// immediate forms, which use imm).
func ALU(op isa.Op, a, b uint32, imm int32) uint32 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return uint32(int32(a) * int32(b))
	case isa.DIV:
		return divS(a, b)
	case isa.REM:
		return remS(a, b)
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.NOR:
		return ^(a | b)
	case isa.SLL:
		return a << (b & 31)
	case isa.SRL:
		return a >> (b & 31)
	case isa.SRA:
		return uint32(int32(a) >> (b & 31))
	case isa.SLT:
		return boolToU32(int32(a) < int32(b))
	case isa.SLTU:
		return boolToU32(a < b)
	case isa.ADDI:
		return a + uint32(imm)
	case isa.ANDI:
		return a & uint32(uint16(imm))
	case isa.ORI:
		return a | uint32(uint16(imm))
	case isa.XORI:
		return a ^ uint32(uint16(imm))
	case isa.SLTI:
		return boolToU32(int32(a) < imm)
	case isa.LUI:
		return uint32(uint16(imm)) << 16
	case isa.SLLI:
		return a << (uint32(imm) & 31)
	case isa.SRLI:
		return a >> (uint32(imm) & 31)
	case isa.SRAI:
		return uint32(int32(a) >> (uint32(imm) & 31))
	}
	panic(fmt.Sprintf("cpu: ALU called with non-ALU op %v", op))
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		return 0 // architected: division by zero yields zero, no trap
	}
	if int32(a) == math.MinInt32 && int32(b) == -1 {
		return a // overflow wraps
	}
	return uint32(int32(a) / int32(b))
}

func remS(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	if int32(a) == math.MinInt32 && int32(b) == -1 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// FPOp computes a floating-point arithmetic operation. Single-precision
// variants round through float32.
func FPOp(op isa.Op, a, b float64) float64 {
	switch op {
	case isa.FADDS:
		return float64(float32(a) + float32(b))
	case isa.FSUBS:
		return float64(float32(a) - float32(b))
	case isa.FMULS:
		return float64(float32(a) * float32(b))
	case isa.FDIVS:
		return float64(float32(a) / float32(b))
	case isa.FADDD:
		return a + b
	case isa.FSUBD:
		return a - b
	case isa.FMULD:
		return a * b
	case isa.FDIVD:
		return a / b
	case isa.FMOV:
		return a
	case isa.FNEG:
		return -a
	}
	panic(fmt.Sprintf("cpu: FPOp called with non-FP op %v", op))
}

// FPCmp computes an FP compare result (1 or 0). Comparisons with NaN
// are false.
func FPCmp(op isa.Op, a, b float64) uint32 {
	switch op {
	case isa.FEQ:
		return boolToU32(a == b)
	case isa.FLT:
		return boolToU32(a < b)
	case isa.FLE:
		return boolToU32(a <= b)
	}
	panic(fmt.Sprintf("cpu: FPCmp called with non-compare op %v", op))
}

// CvtFI truncates a float64 to int32 with saturation (Go's conversion of
// out-of-range values is not portable, so clamp explicitly).
func CvtFI(f float64) uint32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return uint32(math.MaxInt32)
	case f <= math.MinInt32:
		return uint32(uint32(1) << 31)
	}
	return uint32(int32(f))
}

// BranchTaken evaluates a conditional branch on operand values.
func BranchTaken(op isa.Op, a, b uint32) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int32(a) < int32(b)
	case isa.BGE:
		return int32(a) >= int32(b)
	}
	panic(fmt.Sprintf("cpu: BranchTaken called with non-branch op %v", op))
}

// StallStats records where a CPU's cycles went, attributed by the
// memory-hierarchy level that caused each stall. These feed the
// execution-time breakdowns of Figures 4-10 and the IPC-loss breakdown
// of Figure 11.
type StallStats struct {
	Instructions uint64
	IStall       [memsys.NumLevels]uint64 // instruction-fetch stalls
	DStall       [memsys.NumLevels]uint64 // data stalls
	PipeStall    uint64                   // MXS only: window/FU/bank stalls

	// Speculation counters (MXS only; zero under Mipsy).
	Branches    uint64 // control instructions resolved
	Mispredicts uint64 // resolved against the prediction
	Squashed    uint64 // wrong-path instructions removed from the window
	Replays     uint64 // loads replayed because another CPU wrote the location
}

// Add accumulates o into s.
func (s *StallStats) Add(o StallStats) {
	s.Instructions += o.Instructions
	for i := range s.IStall {
		s.IStall[i] += o.IStall[i]
		s.DStall[i] += o.DStall[i]
	}
	s.PipeStall += o.PipeStall
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.Squashed += o.Squashed
	s.Replays += o.Replays
}

// TotalIStall sums instruction-fetch stall cycles.
func (s *StallStats) TotalIStall() uint64 {
	var t uint64
	for _, v := range s.IStall {
		t += v
	}
	return t
}

// TotalDStall sums data stall cycles.
func (s *StallStats) TotalDStall() uint64 {
	var t uint64
	for _, v := range s.DStall {
		t += v
	}
	return t
}
