package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 32B lines = 256 bytes.
	return New(Config{Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 2, Banks: 4})
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Name: "line", SizeBytes: 256, LineBytes: 24, Assoc: 2},
		{Name: "assoc", SizeBytes: 256, LineBytes: 32, Assoc: 0},
		{Name: "banks", SizeBytes: 256, LineBytes: 32, Assoc: 2, Banks: 3},
		{Name: "size", SizeBytes: 100, LineBytes: 32, Assoc: 2},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitAfterFill(t *testing.T) {
	c := small()
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	c.Fill(0x100, Exclusive)
	if r := c.Access(0x100, false); !r.Hit || r.State != Exclusive {
		t.Fatalf("expected E hit, got %+v", r)
	}
	// Same line, different word.
	if r := c.Access(0x11c, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	// Different line.
	if r := c.Access(0x120, false); r.Hit {
		t.Fatal("different line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (set stride = 4 sets * 32B = 128B).
	a, b2, d := uint32(0x000), uint32(0x080), uint32(0x100)
	c.Access(a, false)
	c.Fill(a, Exclusive)
	c.Access(b2, false)
	c.Fill(b2, Exclusive)
	c.Access(a, false) // touch a so b2 is LRU
	c.Access(d, false)
	v := c.Fill(d, Exclusive)
	if !v.Valid || v.LineAddr != b2 {
		t.Fatalf("victim = %+v, want line %#x", v, b2)
	}
	if c.Probe(a) == nil || c.Probe(d) == nil || c.Probe(b2) != nil {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	c := small()
	c.Fill(0x000, Modified)
	c.Fill(0x080, Exclusive)
	v := c.Fill(0x100, Exclusive) // evicts 0x000 (LRU, dirty)
	if !v.Valid || !v.Dirty || v.LineAddr != 0 {
		t.Fatalf("victim = %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInvalidationMissClassification(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.Fill(0x40, Shared)
	c.Invalidate(0x40)
	r := c.Access(0x40, false)
	if r.Hit || !r.InvMiss {
		t.Fatalf("expected invalidation miss, got %+v", r)
	}
	c.Fill(0x40, Shared)
	// A second miss after a plain eviction is a replacement miss.
	c.EvictForInclusion(0x40)
	r = c.Access(0x40, false)
	if r.Hit || r.InvMiss {
		t.Fatalf("expected replacement miss, got %+v", r)
	}
	s := c.Stats()
	if s.InvMisses != 1 || s.Misses() != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInvalidateReportsDirty(t *testing.T) {
	c := small()
	c.Fill(0x40, Modified)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("present=%v dirty=%v", present, dirty)
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestDowngrade(t *testing.T) {
	c := small()
	c.Fill(0x40, Modified)
	present, wasDirty := c.Downgrade(0x40)
	if !present || !wasDirty {
		t.Fatalf("present=%v wasDirty=%v", present, wasDirty)
	}
	if ln := c.Probe(0x40); ln == nil || ln.State != Shared {
		t.Fatal("line not Shared after downgrade")
	}
}

func TestBankInterleaving(t *testing.T) {
	c := small() // 4 banks, 32B lines
	if c.BankOf(0x00) != 0 || c.BankOf(0x20) != 1 || c.BankOf(0x40) != 2 || c.BankOf(0x60) != 3 || c.BankOf(0x80) != 0 {
		t.Error("bank interleaving wrong")
	}
	// Offsets within a line map to the same bank.
	if c.BankOf(0x23) != c.BankOf(0x20) {
		t.Error("within-line offsets changed bank")
	}
}

func TestFlushDirtyLines(t *testing.T) {
	c := small()
	c.Fill(0x00, Modified)
	c.Fill(0x20, Exclusive)
	c.Fill(0x40, Modified)
	var flushed []uint32
	c.FlushDirtyLines(func(la uint32) { flushed = append(flushed, la) })
	if len(flushed) != 2 {
		t.Fatalf("flushed %v", flushed)
	}
	c.FlushDirtyLines(func(la uint32) { t.Errorf("line %#x still dirty", la) })
}

func TestStatsRates(t *testing.T) {
	c := small()
	c.Access(0x00, false) // miss
	c.Fill(0x00, Exclusive)
	c.Access(0x00, false) // hit
	c.Access(0x00, true)  // hit
	c.Access(0x20, true)  // miss
	s := c.Stats()
	if s.Accesses() != 4 || s.Misses() != 2 || s.ReadMisses != 1 || s.WriteMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 || s.ReplRate() != 0.5 || s.InvRate() != 0 {
		t.Errorf("rates = %v %v %v", s.MissRate(), s.ReplRate(), s.InvRate())
	}
}

// Property: the cache never holds more lines than its capacity, and a
// line just filled is always resident.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "q", SizeBytes: 512, LineBytes: 32, Assoc: 4, Banks: 2})
		capacity := int(512 / 32)
		for i := 0; i < 300; i++ {
			addr := uint32(r.Intn(1<<14)) &^ 3
			res := c.Access(addr, r.Intn(2) == 0)
			if !res.Hit {
				c.Fill(addr, Exclusive)
			}
			if c.Probe(addr) == nil {
				return false
			}
			if c.CountValid() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: miss classification is consistent — InvMisses never exceeds
// Invalidates, and total misses equals repl + inv misses.
func TestQuickMissClassificationConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "q", SizeBytes: 256, LineBytes: 32, Assoc: 2})
		for i := 0; i < 500; i++ {
			addr := uint32(r.Intn(1 << 11))
			switch r.Intn(3) {
			case 0, 1:
				if res := c.Access(addr, false); !res.Hit {
					c.Fill(addr, Exclusive)
				}
			case 2:
				c.Invalidate(addr)
			}
		}
		s := c.Stats()
		return s.InvMisses <= s.Invalidates && s.Misses() == s.ReplMisses()+s.InvMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.Allocate(0, 0x100, 50, 1) {
		t.Fatal("first allocate failed")
	}
	if !m.Allocate(0, 0x200, 60, 2) {
		t.Fatal("second allocate failed")
	}
	if !m.Full(0) {
		t.Fatal("file should be full")
	}
	// Full: a third distinct line must be refused.
	if m.Allocate(0, 0x300, 70, 3) {
		t.Fatal("third allocate should fail")
	}
	// Same line merges even when full.
	if !m.Allocate(0, 0x100, 55, 1) {
		t.Fatal("merge refused")
	}
	if done, tag, ok := m.Lookup(0, 0x100); !ok || done != 50 || tag != 1 {
		t.Fatalf("merged entry done=%d tag=%d ok=%v, want 50/1", done, tag, ok)
	}
	if m.Outstanding(0) != 2 {
		t.Fatalf("outstanding = %d", m.Outstanding(0))
	}
	// After completion cycles pass, entries are reaped.
	if m.Outstanding(55) != 1 {
		t.Fatalf("outstanding at 55 = %d", m.Outstanding(55))
	}
	if !m.Allocate(61, 0x300, 99, 0) {
		t.Fatal("allocate after reap failed")
	}
}

func TestMSHRMergeKeepsEarlierCompletion(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(0, 0x100, 80, 2)
	m.Allocate(0, 0x100, 40, 1) // earlier completion wins
	if done, tag, _ := m.Lookup(0, 0x100); done != 40 || tag != 1 {
		t.Fatalf("done = %d tag = %d, want 40/1", done, tag)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, ReadMisses: 3, WriteMisses: 4, InvMisses: 5, Invalidates: 6, Writebacks: 7}
	b := a
	a.Add(b)
	if a.Reads != 2 || a.Writes != 4 || a.ReadMisses != 6 || a.WriteMisses != 8 ||
		a.InvMisses != 10 || a.Invalidates != 12 || a.Writebacks != 14 {
		t.Errorf("Add result = %+v", a)
	}
}
