// Package cache models set-associative caches with LRU replacement,
// MESI-compatible per-line state, bank interleaving, and the
// replacement-vs-invalidation miss classification used throughout the
// paper's Section 4 (L1R/L1I and L2R/L2I miss-rate components).
//
// Caches here hold only tags and state; data lives in the functional
// memory image (package mem). Timing — latencies, occupancies, bank and
// bus contention — belongs to the memory-system compositions (package
// memsys), which drive these caches.
package cache

import (
	"fmt"
	"math/bits"

	"cmpsim/internal/cyc"
)

// State is the MESI state of a cache line. Non-coherent caches use
// Exclusive for clean lines and Modified for dirty lines.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes a cache's geometry.
type Config struct {
	Name      string // for error messages and reports
	SizeBytes uint32
	LineBytes uint32
	Assoc     uint32 // 1 = direct mapped
	Banks     uint32 // power of two; lines are interleaved across banks
}

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag   uint32 // line address (addr >> lineShift); valid only if State != Invalid
	State State
	lru   uint64
}

// Stats counts cache events. All counters are cumulative.
type Stats struct {
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	InvMisses   uint64 // misses caused by a prior coherence invalidation
	Invalidates uint64 // lines removed by coherence actions
	Writebacks  uint64 // dirty victims handed back to the caller
}

// Accesses returns total references.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Add accumulates o into s (for aggregating the four private caches of
// an architecture into one report line).
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadMisses += o.ReadMisses
	s.WriteMisses += o.WriteMisses
	s.InvMisses += o.InvMisses
	s.Invalidates += o.Invalidates
	s.Writebacks += o.Writebacks
}

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// ReplMisses returns misses not caused by invalidation (cold, capacity
// and conflict misses).
func (s Stats) ReplMisses() uint64 { return cyc.Sub(s.Misses(), s.InvMisses) }

// MissRate returns misses per reference (the paper's "local miss rate").
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses()) / float64(a)
	}
	return 0
}

// ReplRate returns the replacement-miss component of the local miss rate.
func (s Stats) ReplRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.ReplMisses()) / float64(a)
	}
	return 0
}

// InvRate returns the invalidation-miss component of the local miss rate.
func (s Stats) InvRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.InvMisses) / float64(a)
	}
	return 0
}

// Victim describes a line evicted by Fill.
type Victim struct {
	LineAddr uint32 // byte address of the first byte of the victim line
	Dirty    bool
	Valid    bool
}

// Cache is a set-associative, LRU-replaced cache.
type Cache struct {
	cfg       Config
	lines     []Line // numSets * assoc
	numSets   uint32
	assoc     uint32
	lineShift uint32
	bankMask  uint32
	clock     uint64 // LRU timestamp source

	// invalidated remembers line addresses removed by coherence so the
	// next miss on them can be classified as an invalidation miss.
	invalidated map[uint32]struct{}

	stats Stats
}

// New builds a cache from cfg, panicking on invalid geometry (cache
// configurations are fixed at simulator construction time).
func New(cfg Config) *Cache {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Assoc == 0 {
		panic(fmt.Sprintf("cache %s: associativity must be >= 1", cfg.Name))
	}
	if cfg.Banks == 0 {
		cfg.Banks = 1
	}
	if cfg.Banks&(cfg.Banks-1) != 0 {
		panic(fmt.Sprintf("cache %s: bank count %d not a power of two", cfg.Name, cfg.Banks))
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by line*assoc", cfg.Name, cfg.SizeBytes))
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, numSets))
	}
	return &Cache{
		cfg:         cfg,
		lines:       make([]Line, numSets*cfg.Assoc),
		numSets:     numSets,
		assoc:       cfg.Assoc,
		lineShift:   uint32(bits.TrailingZeros32(cfg.LineBytes)),
		bankMask:    cfg.Banks - 1,
		invalidated: make(map[uint32]struct{}),
	}
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr masks addr down to its line base address.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ (c.cfg.LineBytes - 1)
}

// BankOf returns the bank index servicing addr (line-interleaved).
func (c *Cache) BankOf(addr uint32) uint32 {
	return (addr >> c.lineShift) & c.bankMask
}

func (c *Cache) set(addr uint32) []Line {
	tag := addr >> c.lineShift
	setIdx := tag & (c.numSets - 1)
	return c.lines[setIdx*c.assoc : (setIdx+1)*c.assoc]
}

// Probe returns the line holding addr, or nil on miss. Probe does not
// update LRU state or statistics; it is the snooping/directory interface.
func (c *Cache) Probe(addr uint32) *Line {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// AccessResult reports what an Access found.
type AccessResult struct {
	Hit     bool
	InvMiss bool  // miss was caused by a previous coherence invalidation
	State   State // state of the line on a hit (before any caller updates)
}

// Access performs a load (write=false) or store (write=true) lookup,
// updating LRU and statistics. On a miss the caller is responsible for
// calling Fill once the line has been fetched; Access itself does not
// allocate, because the fill state depends on the coherence protocol.
func (c *Cache) Access(addr uint32, write bool) AccessResult {
	c.clock++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	if ln := c.Probe(addr); ln != nil {
		ln.lru = c.clock
		return AccessResult{Hit: true, State: ln.State}
	}
	inv := false
	la := c.LineAddr(addr)
	if _, ok := c.invalidated[la]; ok {
		inv = true
		delete(c.invalidated, la)
		c.stats.InvMisses++
	}
	if write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}
	return AccessResult{Hit: false, InvMiss: inv}
}

// Fill inserts addr's line in the given state, evicting the LRU way of
// its set if necessary. The victim (if valid) is returned so the caller
// can write it back or invalidate lower/upper levels for inclusion.
func (c *Cache) Fill(addr uint32, state State) Victim {
	if state == Invalid {
		panic("cache: Fill with Invalid state")
	}
	c.clock++
	tag := addr >> c.lineShift
	set := c.set(addr)
	// Reuse the matching or an invalid way if present.
	victimIdx := 0
	var oldest uint64 = ^uint64(0)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == tag {
			set[i].State = state
			set[i].lru = c.clock
			return Victim{}
		}
		if set[i].State == Invalid {
			victimIdx = i
			oldest = 0
		} else if set[i].lru < oldest {
			victimIdx = i
			oldest = set[i].lru
		}
	}
	v := Victim{}
	if set[victimIdx].State != Invalid {
		v = Victim{
			LineAddr: c.victimAddr(set[victimIdx].Tag),
			Dirty:    set[victimIdx].State == Modified,
			Valid:    true,
		}
		if v.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victimIdx] = Line{Tag: tag, State: state, lru: c.clock}
	return v
}

func (c *Cache) victimAddr(tag uint32) uint32 {
	return tag << c.lineShift
}

// Invalidate removes addr's line due to a coherence action and remembers
// it for invalidation-miss classification. It reports whether the line
// was present and whether it was dirty (needing a writeback or transfer).
func (c *Cache) Invalidate(addr uint32) (present, dirty bool) {
	ln := c.Probe(addr)
	if ln == nil {
		return false, false
	}
	dirty = ln.State == Modified
	ln.State = Invalid
	c.stats.Invalidates++
	c.invalidated[c.LineAddr(addr)] = struct{}{}
	return true, dirty
}

// EvictForInclusion removes addr's line because a lower (larger) level
// evicted it. Unlike Invalidate, the removal is *not* counted as a
// coherence invalidation for miss classification: a re-miss on the line
// is a replacement (capacity/conflict) miss of the lower level.
func (c *Cache) EvictForInclusion(addr uint32) (present, dirty bool) {
	ln := c.Probe(addr)
	if ln == nil {
		return false, false
	}
	dirty = ln.State == Modified
	ln.State = Invalid
	return true, dirty
}

// Downgrade moves addr's line to Shared (e.g. a remote read snoop hit a
// Modified/Exclusive line). Reports prior dirtiness.
func (c *Cache) Downgrade(addr uint32) (present, wasDirty bool) {
	ln := c.Probe(addr)
	if ln == nil {
		return false, false
	}
	wasDirty = ln.State == Modified
	ln.State = Shared
	return true, wasDirty
}

// FlushDirtyLines calls fn for each Modified line and marks it clean
// (Exclusive). Used at workload-region boundaries when draining caches.
func (c *Cache) FlushDirtyLines(fn func(lineAddr uint32)) {
	for i := range c.lines {
		if c.lines[i].State == Modified {
			fn(c.victimAddr(c.lines[i].Tag))
			c.lines[i].State = Exclusive
		}
	}
}

// CountValid returns the number of valid lines (for tests and reports).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}
