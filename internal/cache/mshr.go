package cache

import (
	"sort"

	"cmpsim/internal/cyc"
	"cmpsim/internal/obsv"
)

// MSHRFile models the miss-status holding registers of a non-blocking
// cache (Kroft-style). Each entry tracks one outstanding line miss, the
// cycle at which its fill completes, and an opaque caller tag (the
// memory system stores the service level there so that merged secondary
// misses attribute their stall to the right place). Secondary misses to
// the same line merge into the existing entry.
type MSHRFile struct {
	max     int
	entries map[uint32]mshrEntry

	trace obsv.Tracer
	cpu   int8
}

type mshrEntry struct {
	done uint64
	tag  uint8
}

// NewMSHRFile returns an MSHR file with capacity max (the paper's CPUs
// support four outstanding misses).
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make(map[uint32]mshrEntry, max)}
}

// SetTracer attaches a tracer; allocations, retirements and structural
// refusals then emit events attributed to cpu (-1 for a shared file).
func (m *MSHRFile) SetTracer(tr obsv.Tracer, cpu int) {
	m.trace, m.cpu = tr, int8(cpu)
}

// reap drops entries whose fills have completed by now. Entries are
// reaped lazily, so retire events can be emitted well after their
// timestamped completion cycle; tracers must tolerate that (sinks sort).
func (m *MSHRFile) reap(now uint64) {
	if m.trace == nil {
		//simlint:allow determinism — deletion-only sweep; iteration order is unobservable
		for la, e := range m.entries {
			if e.done <= now {
				delete(m.entries, la)
			}
		}
		return
	}
	var retired []retiredEntry // deterministic emission order despite map iteration
	//simlint:allow determinism — retirements are sorted by (done, addr) below before emission
	for la, e := range m.entries {
		if e.done <= now {
			delete(m.entries, la)
			retired = append(retired, retiredEntry{addr: la, done: e.done})
		}
	}
	sort.Slice(retired, func(i, j int) bool {
		if retired[i].done != retired[j].done {
			return retired[i].done < retired[j].done
		}
		return retired[i].addr < retired[j].addr
	})
	for _, r := range retired {
		m.trace.Emit(obsv.Event{Cycle: r.done, Addr: r.addr, Kind: obsv.EvMSHRRetire, CPU: m.cpu})
	}
}

type retiredEntry struct {
	addr uint32
	done uint64
}

// Outstanding returns the number of in-flight misses at cycle now.
func (m *MSHRFile) Outstanding(now uint64) int {
	m.reap(now)
	return len(m.entries)
}

// Full reports whether a new (non-merging) miss would be refused at now.
func (m *MSHRFile) Full(now uint64) bool {
	full := m.Outstanding(now) >= m.max
	if full && m.trace != nil {
		m.trace.Emit(obsv.Event{Cycle: now, Kind: obsv.EvMSHRFull, CPU: m.cpu})
	}
	return full
}

// Lookup reports whether lineAddr has an in-flight miss, and if so when
// it completes and with which caller tag.
func (m *MSHRFile) Lookup(now uint64, lineAddr uint32) (done uint64, tag uint8, merged bool) {
	m.reap(now)
	e, ok := m.entries[lineAddr]
	return e.done, e.tag, ok
}

// Allocate records a new outstanding miss for lineAddr completing at
// done. It reports false if all MSHRs are busy, in which case the
// requester must stall and retry. A second Allocate for an in-flight
// line merges, keeping the earlier completion.
func (m *MSHRFile) Allocate(now uint64, lineAddr uint32, done uint64, tag uint8) bool {
	m.reap(now)
	if e, ok := m.entries[lineAddr]; ok {
		if done < e.done {
			m.entries[lineAddr] = mshrEntry{done: done, tag: tag}
		}
		return true
	}
	if len(m.entries) >= m.max {
		return false
	}
	m.entries[lineAddr] = mshrEntry{done: done, tag: tag}
	if m.trace != nil {
		m.trace.Emit(obsv.Event{
			Cycle: now, Addr: lineAddr, Arg: uint32(cyc.Lat(done, now)),
			Kind: obsv.EvMSHRAlloc, CPU: m.cpu,
		})
	}
	return true
}
