package cache

// MSHRFile models the miss-status holding registers of a non-blocking
// cache (Kroft-style). Each entry tracks one outstanding line miss, the
// cycle at which its fill completes, and an opaque caller tag (the
// memory system stores the service level there so that merged secondary
// misses attribute their stall to the right place). Secondary misses to
// the same line merge into the existing entry.
type MSHRFile struct {
	max     int
	entries map[uint32]mshrEntry
}

type mshrEntry struct {
	done uint64
	tag  uint8
}

// NewMSHRFile returns an MSHR file with capacity max (the paper's CPUs
// support four outstanding misses).
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make(map[uint32]mshrEntry, max)}
}

// reap drops entries whose fills have completed by now.
func (m *MSHRFile) reap(now uint64) {
	for la, e := range m.entries {
		if e.done <= now {
			delete(m.entries, la)
		}
	}
}

// Outstanding returns the number of in-flight misses at cycle now.
func (m *MSHRFile) Outstanding(now uint64) int {
	m.reap(now)
	return len(m.entries)
}

// Full reports whether a new (non-merging) miss would be refused at now.
func (m *MSHRFile) Full(now uint64) bool {
	return m.Outstanding(now) >= m.max
}

// Lookup reports whether lineAddr has an in-flight miss, and if so when
// it completes and with which caller tag.
func (m *MSHRFile) Lookup(now uint64, lineAddr uint32) (done uint64, tag uint8, merged bool) {
	m.reap(now)
	e, ok := m.entries[lineAddr]
	return e.done, e.tag, ok
}

// Allocate records a new outstanding miss for lineAddr completing at
// done. It reports false if all MSHRs are busy, in which case the
// requester must stall and retry. A second Allocate for an in-flight
// line merges, keeping the earlier completion.
func (m *MSHRFile) Allocate(now uint64, lineAddr uint32, done uint64, tag uint8) bool {
	m.reap(now)
	if e, ok := m.entries[lineAddr]; ok {
		if done < e.done {
			m.entries[lineAddr] = mshrEntry{done: done, tag: tag}
		}
		return true
	}
	if len(m.entries) >= m.max {
		return false
	}
	m.entries[lineAddr] = mshrEntry{done: done, tag: tag}
	return true
}
