package cache

import (
	"sort"

	"cmpsim/internal/cyc"
	"cmpsim/internal/obsv"
)

// MSHRFile models the miss-status holding registers of a non-blocking
// cache (Kroft-style). Each entry tracks one outstanding line miss, the
// cycle at which its fill completes, and an opaque caller tag (the
// memory system stores the service level there so that merged secondary
// misses attribute their stall to the right place). Secondary misses to
// the same line merge into the existing entry.
//
// The file is a dense fixed-capacity slice, not a map: it holds at most
// max (4-8) entries but is consulted on every memory reference, so the
// linear scan beats map hashing by a wide margin on the simulator's
// hottest path, and the lazy reap is allocation- and iteration-order-
// free. Slot order is unobservable — every operation is keyed by line
// address, counts, or the sorted retirement list.
type MSHRFile struct {
	max     int
	entries []mshrSlot

	trace obsv.Tracer
	cpu   int8
}

type mshrSlot struct {
	done uint64
	addr uint32
	tag  uint8
}

// NewMSHRFile returns an MSHR file with capacity max (the paper's CPUs
// support four outstanding misses).
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make([]mshrSlot, 0, max)}
}

// SetTracer attaches a tracer; allocations, retirements and structural
// refusals then emit events attributed to cpu (-1 for a shared file).
func (m *MSHRFile) SetTracer(tr obsv.Tracer, cpu int) {
	m.trace, m.cpu = tr, int8(cpu)
}

// reap drops entries whose fills have completed by now, swapping the
// last slot into the hole. Entries are reaped lazily, so retire events
// can be emitted well after their timestamped completion cycle; tracers
// must tolerate that (sinks sort).
func (m *MSHRFile) reap(now uint64) {
	if m.trace == nil {
		for i := 0; i < len(m.entries); {
			if m.entries[i].done <= now {
				last := len(m.entries) - 1
				m.entries[i] = m.entries[last]
				m.entries = m.entries[:last]
			} else {
				i++
			}
		}
		return
	}
	var retired []retiredEntry // deterministic emission order despite swap-deletes
	for i := 0; i < len(m.entries); {
		if e := m.entries[i]; e.done <= now {
			retired = append(retired, retiredEntry{addr: e.addr, done: e.done})
			last := len(m.entries) - 1
			m.entries[i] = m.entries[last]
			m.entries = m.entries[:last]
		} else {
			i++
		}
	}
	sort.Slice(retired, func(i, j int) bool {
		if retired[i].done != retired[j].done {
			return retired[i].done < retired[j].done
		}
		return retired[i].addr < retired[j].addr
	})
	for _, r := range retired {
		m.trace.Emit(obsv.Event{Cycle: r.done, Addr: r.addr, Kind: obsv.EvMSHRRetire, CPU: m.cpu})
	}
}

type retiredEntry struct {
	addr uint32
	done uint64
}

// Outstanding returns the number of in-flight misses at cycle now.
func (m *MSHRFile) Outstanding(now uint64) int {
	m.reap(now)
	return len(m.entries)
}

// Full reports whether a new (non-merging) miss would be refused at now.
func (m *MSHRFile) Full(now uint64) bool {
	full := m.Outstanding(now) >= m.max
	if full && m.trace != nil {
		m.trace.Emit(obsv.Event{Cycle: now, Kind: obsv.EvMSHRFull, CPU: m.cpu})
	}
	return full
}

// Lookup reports whether lineAddr has an in-flight miss, and if so when
// it completes and with which caller tag.
func (m *MSHRFile) Lookup(now uint64, lineAddr uint32) (done uint64, tag uint8, merged bool) {
	m.reap(now)
	for i := range m.entries {
		if m.entries[i].addr == lineAddr {
			return m.entries[i].done, m.entries[i].tag, true
		}
	}
	return 0, 0, false
}

// Allocate records a new outstanding miss for lineAddr completing at
// done. It reports false if all MSHRs are busy, in which case the
// requester must stall and retry. A second Allocate for an in-flight
// line merges, keeping the earlier completion.
func (m *MSHRFile) Allocate(now uint64, lineAddr uint32, done uint64, tag uint8) bool {
	m.reap(now)
	for i := range m.entries {
		if m.entries[i].addr == lineAddr {
			if done < m.entries[i].done {
				m.entries[i].done, m.entries[i].tag = done, tag
			}
			return true
		}
	}
	if len(m.entries) >= m.max {
		return false
	}
	m.entries = append(m.entries, mshrSlot{done: done, addr: lineAddr, tag: tag}) //simlint:allow hotalloc — len < max <= cap (NewMSHRFile preallocates), so this never grows the backing array
	if m.trace != nil {
		m.trace.Emit(obsv.Event{
			Cycle: now, Addr: lineAddr, Arg: uint32(cyc.Lat(done, now)),
			Kind: obsv.EvMSHRAlloc, CPU: m.cpu,
		})
	}
	return true
}
