package memsys

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
	"cmpsim/internal/cyc"
	"cmpsim/internal/interconnect"
	"cmpsim/internal/obsv"
)

// SharedL2 is the shared-secondary-cache multiprocessor (Section 2.3):
// four CPUs with private single-cycle write-through L1 data caches share
// a 4-banked write-back L2 through a crossbar chip. The narrower 64-bit
// L2 datapath raises the L2 latency to 14 cycles and line occupancy to
// 4 cycles. L1 coherence uses a per-L2-line directory: a write-through
// by one CPU invalidates every other sharer's L1 copy.
//
// Stores retire into a per-CPU write buffer; the CPU sees a single-cycle
// store unless the buffer is full, but each write-through occupies an L2
// bank, which is what produces the L2 port contention the paper reports
// for Ocean and the multiprogramming workload.
type SharedL2 struct {
	cfg Config
	res reservations

	icaches []*cache.Cache
	dcaches []*cache.Cache
	mshrs   []*cache.MSHRFile

	dir     *coherence.Directory
	l2      *cache.Cache
	l2banks interconnect.Banks
	mem     interconnect.Resource

	wbufs []writeBuf
}

// NewSharedL2 builds the shared-L2 architecture from cfg.
func NewSharedL2(cfg Config) *SharedL2 {
	dcaches := make([]*cache.Cache, cfg.NumCPUs)
	mshrs := make([]*cache.MSHRFile, cfg.NumCPUs)
	for i := range dcaches {
		dcaches[i] = cache.New(cache.Config{
			Name:      "l1d",
			SizeBytes: cfg.L1DSize,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L1DAssoc,
		})
		mshrs[i] = cache.NewMSHRFile(cfg.MSHRs)
	}
	s := &SharedL2{
		cfg:     cfg,
		res:     newReservations(cfg.NumCPUs, cfg.LineBytes),
		icaches: newICaches(cfg),
		dcaches: dcaches,
		mshrs:   mshrs,
		dir:     coherence.NewDirectory(dcaches),
		l2: cache.New(cache.Config{
			Name:      "shared-l2",
			SizeBytes: cfg.L2Size,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L2Assoc,
			Banks:     cfg.L2Banks,
		}),
		l2banks: interconnect.NewBanks("l2-bank", int(cfg.L2Banks)),
		mem:     interconnect.Resource{Name: "memory"},
		wbufs:   newWriteBufs(cfg.NumCPUs, cfg.WriteBufDepth),
	}
	if cfg.Trace != nil {
		s.l2banks.Instrument(cfg.Trace, obsv.ResL2Bank)
		s.mem.Instrument(cfg.Trace, obsv.ResMem, 0)
		for i, m := range s.mshrs {
			m.SetTracer(cfg.Trace, i)
		}
		s.dir.SetTracer(cfg.Trace)
	}
	if cfg.Prof != nil {
		s.dir.SetProfiler(cfg.Prof)
	}
	return s
}

// Name implements System.
func (s *SharedL2) Name() string { return "shared-l2" }

// SetSharedData installs the workload's shared-vs-private address
// classification (core.Machine forwards it here).
func (s *SharedL2) SetSharedData(f func(addr uint32) bool) { s.cfg.SharedData = f }

func (s *SharedL2) isShared(addr uint32) bool {
	if s.cfg.SharedData == nil {
		return true
	}
	return s.cfg.SharedData(addr)
}

// LLReserve implements System.
func (s *SharedL2) LLReserve(cpu int, addr uint32) { s.res.set(cpu, addr) }

// SCCheck implements System.
func (s *SharedL2) SCCheck(cpu int, addr uint32) bool { return s.res.checkAndClear(cpu, addr) }

// ClearReservation implements System.
func (s *SharedL2) ClearReservation(cpu int) { s.res.clear(cpu) }

// l2Fetch services an L1 (or I-cache) line miss from the shared L2,
// going to memory below it on an L2 miss. Returns data-ready cycle and
// supplying level.
func (s *SharedL2) l2Fetch(reqTime uint64, lineAddr uint32) (uint64, Level) {
	start := s.l2banks.Acquire(s.l2.BankOf(lineAddr), reqTime, s.cfg.SharedL2Occ)
	r := s.l2.Access(lineAddr, false)
	if r.Hit {
		return start + s.cfg.SharedL2Lat, LvlL2
	}
	mstart := s.mem.Acquire(start+s.cfg.SharedL2Lat, s.cfg.MemOcc)
	dataAt := mstart + s.cfg.MemLat
	victim := s.l2.Fill(lineAddr, cache.Exclusive)
	// The victim writeback drains concurrently with the fill.
	s.evictL2Victim(victim, mstart+s.cfg.MemOcc)
	return dataAt, LvlMem
}

// evictL2Victim enforces inclusion over the private L1s and writes dirty
// victims back to memory.
func (s *SharedL2) evictL2Victim(v cache.Victim, at uint64) {
	if !v.Valid {
		return
	}
	s.dir.L2Evict(at, v.LineAddr)
	if v.Dirty {
		s.mem.Acquire(at, s.cfg.MemOcc)
	}
}

// Access implements System.
func (s *SharedL2) Access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	r, ok := s.access(now, cpu, addr, write)
	if ok {
		s.cfg.traceAccess(now, cpu, addr, write, r.Level, cyc.Lat(r.Done, now))
		if s.cfg.Check != nil {
			s.sanityCheck(now, cpu, addr, r)
		}
	}
	return r, ok
}

// sanityCheck validates the completed transaction under -sanitize: the
// completion time, then — for shared-classified lines — that the
// directory's sharer bitmask exactly matches which L1s hold the line
// and that inclusion against the shared L2 holds.
func (s *SharedL2) sanityCheck(now uint64, cpu int, addr uint32, r Result) {
	chk := s.cfg.Check
	chk.CheckAccessTime(now, r.Done, cpu, addr)
	if !s.isShared(addr) {
		return // private lines are write-back and untracked by design
	}
	la := s.dcaches[cpu].LineAddr(addr)
	var present uint16
	for i, d := range s.dcaches {
		if d.Probe(la) != nil {
			present |= 1 << uint(i)
		}
	}
	chk.CheckDirectory(now, la, s.dir.Sharers(la), present, s.l2.Probe(la) != nil)
}

// MSHROutstanding returns the in-flight misses summed over the CPUs'
// MSHR files at cycle now.
func (s *SharedL2) MSHROutstanding(now uint64) int {
	n := 0
	for _, m := range s.mshrs {
		n += m.Outstanding(now)
	}
	return n
}

func (s *SharedL2) access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	if write {
		return s.store(now, cpu, addr)
	}
	return s.load(now, cpu, addr)
}

func (s *SharedL2) load(now uint64, cpu int, addr uint32) (Result, bool) {
	d := s.dcaches[cpu]
	la := d.LineAddr(addr)
	r := d.Access(addr, false)
	if r.Hit {
		if done, tag, merged := s.mshrs[cpu].Lookup(now, la); merged {
			return Result{Done: maxU64(now+1, done), Level: Level(tag)}, true
		}
		return Result{Done: now + 1, Level: LvlL1}, true
	}
	if s.mshrs[cpu].Full(now) {
		return Result{Done: now + 1, Level: LvlL1}, false
	}
	dataAt, lvl := s.l2Fetch(now+1, la)
	st := cache.Shared
	if !s.isShared(addr) {
		st = cache.Exclusive // private data may be written back silently
	}
	victim := d.Fill(addr, st)
	s.handleL1Victim(cpu, victim, now+1)
	if s.isShared(addr) {
		// Only shared (write-through) lines carry directory state; a
		// private line's only consumer is its owner, so the directory —
		// and with it L2-eviction inclusion — does not track it.
		s.dir.AddSharer(la, cpu)
	}
	s.mshrs[cpu].Allocate(now, la, dataAt, uint8(lvl))
	return Result{Done: dataAt, Level: lvl}, true
}

// handleL1Victim unregisters an L1 victim from the directory and, for
// dirty (write-back, private-data) victims, drains the line to the L2.
func (s *SharedL2) handleL1Victim(cpu int, v cache.Victim, at uint64) {
	if !v.Valid {
		return
	}
	s.dir.DropSharer(v.LineAddr, cpu)
	if !v.Dirty {
		return
	}
	s.l2banks.Acquire(s.l2.BankOf(v.LineAddr), at, s.cfg.SharedL2Occ)
	if ln := s.l2.Probe(v.LineAddr); ln != nil {
		ln.State = cache.Modified
		return
	}
	// The L2 already replaced the line; push it to memory.
	s.mem.Acquire(at, s.cfg.MemOcc)
}

// store implements the write-through, write-allocate policy: every
// other sharer is invalidated via the directory, the word is written
// through to the L2 bank, and on an L1 miss the line is also fetched
// into the writer's L1. The CPU sees a 1-cycle store (it drains from a
// write buffer) unless the buffer is full.
func (s *SharedL2) store(now uint64, cpu int, addr uint32) (Result, bool) {
	if s.wbufs[cpu].full(now) {
		// Stall until a buffer slot drains; attribute to the L2 (port
		// contention), as in the paper's Figure 10 discussion.
		s.cfg.traceRefusal(now, cpu, obsv.EvWBufFull)
		return Result{Done: now + 1, Level: LvlL2}, false
	}
	d := s.dcaches[cpu]
	la := d.LineAddr(addr)
	s.res.clearOthers(cpu, addr)
	if !s.isShared(addr) {
		return s.storePrivate(now, cpu, addr)
	}
	hit := d.Access(addr, true).Hit
	s.dir.Write(now, la, cpu)

	start := s.l2banks.Acquire(s.l2.BankOf(addr), now+1, s.cfg.WTWriteOcc)
	done := start + s.cfg.WTWriteOcc
	r := s.l2.Access(la, true)
	if r.Hit {
		s.l2.Probe(la).State = cache.Modified
	} else {
		// Allocate in the write-back L2: fetch the rest of the line from
		// memory, then merge the write (read-modify-write fill).
		mstart := s.mem.Acquire(start+s.cfg.SharedL2Lat, s.cfg.MemOcc)
		done = mstart + s.cfg.MemLat
		victim := s.l2.Fill(la, cache.Modified)
		s.evictL2Victim(victim, mstart+s.cfg.MemOcc)
	}
	if !hit {
		// Write-allocate: the store's line transfer into L1 rides the
		// same read-modify-write; account the line occupancy adjacent to
		// the word write so it never blocks earlier requests.
		s.l2banks.Acquire(s.l2.BankOf(addr), start+s.cfg.WTWriteOcc, s.cfg.SharedL2Occ)
		victim := d.Fill(addr, cache.Shared)
		if victim.Valid {
			s.dir.DropSharer(victim.LineAddr, cpu)
		}
		s.dir.AddSharer(la, cpu)
	}
	s.wbufs[cpu].add(done)
	return Result{Done: now + 1, Level: LvlL1}, true
}

// storePrivate handles a store to private (write-back) data: an L1 hit
// dirties the line with no L2 traffic at all; a miss write-allocates
// from the L2 while the CPU continues past its store buffer.
func (s *SharedL2) storePrivate(now uint64, cpu int, addr uint32) (Result, bool) {
	d := s.dcaches[cpu]
	la := d.LineAddr(addr)
	if d.Access(addr, true).Hit {
		d.Probe(addr).State = cache.Modified
		return Result{Done: now + 1, Level: LvlL1}, true
	}
	if s.mshrs[cpu].Full(now) {
		return Result{Done: now + 1, Level: LvlL1}, false
	}
	dataAt, lvl := s.l2Fetch(now+1, la)
	victim := d.Fill(addr, cache.Modified)
	s.handleL1Victim(cpu, victim, now+1)
	s.mshrs[cpu].Allocate(now, la, dataAt, uint8(lvl))
	s.wbufs[cpu].add(dataAt)
	return Result{Done: now + 1, Level: LvlL1}, true
}

// IFetch implements System.
func (s *SharedL2) IFetch(now uint64, cpu int, addr uint32) Result {
	ic := s.icaches[cpu]
	la := ic.LineAddr(addr)
	r := ic.Access(addr, false)
	if r.Hit {
		return Result{Done: now + 1, Level: LvlL1}
	}
	dataAt, lvl := s.l2Fetch(now+1, la)
	ic.Fill(addr, cache.Exclusive)
	s.cfg.traceIFetch(now, cpu, addr, lvl, cyc.Lat(dataAt, now))
	if s.cfg.Check != nil {
		s.cfg.Check.CheckAccessTime(now, dataAt, cpu, addr)
	}
	return Result{Done: dataAt, Level: lvl}
}

// Report implements System.
func (s *SharedL2) Report() Report {
	rep := Report{Name: s.Name(), L2: s.l2.Stats()}
	for _, ic := range s.icaches {
		rep.L1I.Add(ic.Stats())
	}
	for _, d := range s.dcaches {
		rep.L1D.Add(d.Stats())
	}
	ds := s.dir.Stats()
	rep.Dir = &ds
	rep.Resources = []interconnect.ResourceStats{
		s.l2banks.Stats(),
		s.mem.Stats(),
	}
	return rep
}
