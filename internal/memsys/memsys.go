// Package memsys composes the three memory-system architectures of the
// paper (Section 2): shared-L1 cache, shared-L2 cache, and conventional
// bus-based shared memory. Each composition wires caches (package
// cache), contended resources (package interconnect) and a coherence
// mechanism (package coherence) into a transaction-level timing model
// with the latencies and occupancies of Table 2.
//
// A CPU model drives a System through Access (data) and IFetch
// (instructions). Every call returns the cycle at which the reference
// completes and the memory-hierarchy level that serviced it, which the
// CPU model uses for stall attribution in the Figure 4-10 breakdowns.
package memsys

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/check"
	"cmpsim/internal/coherence"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/interconnect"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
	"cmpsim/internal/telemetry"
)

// Note on cycle arithmetic: latency computations in the compositions go
// through cyc.Lat/cyc.Sub (saturating) so an out-of-order completion
// timestamp can never wrap a uint64 latency; the simlint cycleflow
// analyzer enforces this.

// Level identifies the deepest memory-hierarchy level involved in
// servicing a reference; the CPU models attribute stall cycles to it.
type Level uint8

const (
	LvlL1  Level = iota // serviced by the level-1 cache
	LvlL2               // L1 miss serviced by the level-2 cache
	LvlMem              // serviced by main memory
	LvlC2C              // serviced by a remote cache or a coherence action on the bus
	NumLevels
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlMem:
		return "Mem"
	case LvlC2C:
		return "C2C"
	}
	return "?"
}

// Result reports the outcome of a memory reference.
type Result struct {
	Done  uint64 // cycle at which the data is available / the store is accepted
	Level Level
}

// System is one of the three architecture compositions.
type System interface {
	// Name returns the architecture's short name ("shared-l1", ...).
	Name() string

	// Access performs a data reference by cpu to physical address addr.
	// ok=false is a structural refusal (MSHRs or write buffer full): the
	// CPU must retry next cycle and attribute the stall to Result.Level.
	Access(now uint64, cpu int, addr uint32, write bool) (Result, bool)

	// IFetch fetches the instruction line containing addr for cpu.
	IFetch(now uint64, cpu int, addr uint32) Result

	// LLReserve registers a load-linked reservation for cpu on addr's
	// line. Reservations are broken by any other CPU's store to the line.
	LLReserve(cpu int, addr uint32)

	// SCCheck consumes cpu's reservation and reports whether a
	// store-conditional to addr may proceed.
	SCCheck(cpu int, addr uint32) bool

	// ClearReservation drops cpu's reservation (used by the guest kernel
	// on context switches).
	ClearReservation(cpu int)

	// Report returns the accumulated cache/coherence statistics.
	Report() Report
}

// Report aggregates an architecture's statistics for the figures.
type Report struct {
	Name      string
	L1I       cache.Stats // all CPUs' instruction caches combined
	L1D       cache.Stats // the shared D-cache, or all private D-caches combined
	L2        cache.Stats // the shared L2, or all private L2s combined
	Resources []interconnect.ResourceStats
	Snoop     *coherence.SnoopStats // shared-memory architecture only
	Dir       *coherence.DirStats   // shared-L2 architecture only
}

// Config carries every architecture parameter. DefaultConfig returns the
// paper's values; experiments override individual fields.
type Config struct {
	NumCPUs   int
	LineBytes uint32

	// Private per-CPU L1 caches (all architectures use private I-caches;
	// shared-L2 and shared-memory also use private D-caches).
	L1ISize  uint32
	L1IAssoc uint32
	L1DSize  uint32
	L1DAssoc uint32

	// Shared L1 D-cache (shared-L1 architecture).
	SharedL1Size           uint32
	SharedL1Assoc          uint32
	SharedL1Banks          uint32
	SharedL1HitLat         uint64 // 1 under Mipsy (paper's optimistic model), 3 under MXS
	SharedL1BankContention bool   // modelled only under MXS, as in Section 4.4

	// L2. Size/Assoc describe the shared L2 of the shared-L1 and
	// shared-L2 architectures; PrivL2Size is each CPU's private L2 in the
	// shared-memory architecture ("its own separate bank of L2 cache").
	L2Size     uint32
	L2Assoc    uint32
	L2Banks    uint32 // shared-L2 architecture: 4 independent banks
	PrivL2Size uint32

	// Table 2 latencies and occupancies (cycles).
	L2Lat       uint64 // uniprocessor-style L2: shared-L1 and shared-memory
	L2Occ       uint64
	SharedL2Lat uint64 // crossbar-attached L2 of the shared-L2 architecture
	SharedL2Occ uint64
	MemLat      uint64
	MemOcc      uint64
	C2CLat      uint64 // cache-to-cache transfer (> memory latency, Table 2)
	C2COcc      uint64
	UpgLat      uint64 // bus upgrade (invalidate-only) latency

	// Structural limits.
	MSHRs         int    // outstanding misses per non-blocking cache port
	WriteBufDepth int    // write-through store buffer entries per CPU (shared-L2)
	WTWriteOcc    uint64 // L2 bank occupancy of one write-through word

	// SharedData classifies addresses for the shared-L2 architecture's
	// L1 policy (Section 2.3: "the L1 cache uses a write-through policy
	// for shared data"): shared addresses are write-through with
	// directory invalidations; private addresses are write-back. nil
	// means everything is treated as shared (the conservative default).
	SharedData func(addr uint32) bool

	// Trace, when non-nil, receives a cycle-accurate event stream from
	// every instrumented component: data accesses and I-fetch misses
	// here, plus resource grants, MSHR traffic and coherence actions from
	// the sub-components the constructors wire it into. Leave nil for
	// normal runs — the disabled fast path is a single pointer check.
	Trace obsv.Tracer

	// Metrics, when non-nil, accumulates interval samples and latency
	// histograms. Carried by pointer so that Config copies made by the
	// compositions all feed one collector.
	Metrics *obsv.Metrics

	// Check, when non-nil, enables the runtime sanitizer: every completed
	// transaction is validated against the coherence and cycle-flow
	// invariants (package check), and a violation panics with the recent
	// event trail. Tee the checker into Trace so the trail is populated.
	// Opt-in (cmpsim -sanitize): it probes every cache on every access.
	Check *check.Checker

	// Prof, when non-nil, enables the guest-level cycle-attribution
	// profiler (package prof): completed data accesses are charged to
	// their cache line here, coherence invalidations and C2C transfers
	// by the snoop/directory machinery, and retired instructions and
	// stall cycles by the CPU models. Carried by pointer so every
	// Config copy feeds one collector; like Trace, a non-nil profiler
	// makes a runner job uncacheable.
	Prof *prof.Profiler

	// Telem, when non-nil, feeds the core cycle loop's host-side
	// telemetry counters (ticked/skipped cycles, window counts) in
	// internal/telemetry. Unlike the guest-observability attachments
	// above it never influences simulation output and never contributes
	// to the cache key, so a campaign shares one instance across all
	// jobs — cached and simulated alike — without bypassing the result
	// cache. Leave nil for normal runs; the disabled fast path is a
	// single pointer check per executed cycle.
	//
	//simlint:cachekey-exempt — output-neutral by contract (enforced by the neutral analyzer)
	Telem *telemetry.SimMetrics

	// HostProf, when non-nil, attaches the host-side execution
	// observatory (package hostprof) to the parallel-tick scheduler:
	// gate-wait attribution by (waiter, peer, site), window cut reasons
	// and lengths, local-skip distances, coordinator serial time. Like
	// Telem — and unlike the guest attachments Trace/Prof/Check — it
	// observes the host schedule, never sim state, so it does NOT force
	// the serial path and never contributes to the cache key; it does
	// make a job uncacheable (a cache hit skips the simulation, so there
	// would be nothing to observe). Serial runs leave it unbound and its
	// snapshot empty.
	//
	//simlint:cachekey-exempt — output-neutral by contract (enforced by the neutral analyzer; parallel-identity tests pin byte-identical output with a recorder attached)
	HostProf *hostprof.Recorder

	// NoSkip disables the core loop's quiescence skipping (cmpsim
	// -no-skip), forcing every cycle to be ticked as before the
	// event-driven scheduler existed. Output is identical either way —
	// that is the scheduler's correctness bar, pinned by the skip
	// regression tests — so this is purely a debugging escape hatch and
	// the reference side of the skip-vs-no-skip diff.
	NoSkip bool

	// SimJobs shards one simulation's per-CPU tick work across up to
	// this many host goroutines (cmpsim -sim-jobs). Shared-resource
	// accesses are granted in exact serial rotation order by the core
	// scheduler's per-tick gate, so output is byte-identical for any
	// value — the parallel-identity regression tests pin that — and the
	// field is therefore excluded from the runner's cache fingerprint
	// (runner.Fingerprint skips it by name): a cached serial result is
	// the parallel result. 0 or 1 selects the untouched serial loop.
	//
	//simlint:cachekey-exempt — output-neutral by contract (parallel-identity tests; serial grant order reproduced exactly)
	SimJobs int

	// ShardLayout overrides the parallel scheduler's contiguous-block
	// CPU→worker assignment with an explicit one (cmpsim
	// -shard-layout): a comma-separated worker index per CPU, e.g.
	// "0,1,0,1" co-schedules CPUs 0+2 and 1+3. Profile-guided layouts
	// from `parprof -suggest-layout` co-locate the hottest waiter-peer
	// pairs, whose gate spins then vanish (same-shard accesses are
	// ordered by the owning worker's pick order, not by spinning). Like
	// SimJobs it is a pure host-parallelism knob — shared accesses still
	// happen in exact serial rotation order, output is byte-identical
	// for any layout (parallel-identity tests) — so it is excluded from
	// the cache fingerprint by name. Empty selects the default layout.
	//
	//simlint:cachekey-exempt — output-neutral by contract (parallel-identity tests; serial grant order reproduced exactly under any CPU→worker assignment)
	ShardLayout string

	// AdaptWindow lets the parallel scheduler pick window edges
	// adaptively (cmpsim -sim-window-adapt): the coordinator
	// fast-forwards whole all-quiescent gaps between windows (the
	// sharded analog of the serial global skip) and shortens windows
	// below the grid when recent spin counts say a laggard dominates.
	// Window edges only move barriers, never what any cycle computes —
	// IRQ-merge grid boundaries still bound every window, so the
	// delivery contract is untouched and output stays byte-identical
	// (parallel-identity tests run the whole matrix with this on).
	// Excluded from the cache fingerprint by name, like SimJobs.
	//
	//simlint:cachekey-exempt — output-neutral by contract (parallel-identity tests; window edges never change simulated state, only host scheduling)
	AdaptWindow bool

	// SimWindow is the scheduling-window grid of the core cycle loop, in
	// cycles: cross-CPU interrupt raises performed from tick phase (a
	// trap handler running under a CPU's tick, as opposed to an event
	// callback) are buffered and delivered at the next cycle that is a
	// multiple of SimWindow, in both the serial and the parallel
	// scheduler, and the parallel scheduler's barriers land on the same
	// grid. It is part of the delivery contract — a different grid may
	// legally produce different simulated timing — so unlike SimJobs it
	// stays in the cache fingerprint. 0 means DefaultSimWindow. (Today's
	// guest kernel raises interrupts only from timer events, which are
	// delivered immediately in both modes, so the grid is latent.)
	SimWindow uint64
}

// DefaultSimWindow is the scheduling-window grid used when
// Config.SimWindow is zero: long enough that window barriers are
// negligible against thousands of simulated cycles of work, short
// enough that a buffered tick-phase interrupt is never deferred by more
// than a few microseconds of simulated time.
const DefaultSimWindow = 4096

// traceAccess reports one completed data access to the tracer and the
// latency histogram.
func (c *Config) traceAccess(now uint64, cpu int, addr uint32, write bool, lvl Level, lat uint64) {
	if c.Trace != nil {
		kind := obsv.EvLoad
		if write {
			kind = obsv.EvStore
		}
		c.Trace.Emit(obsv.Event{
			Cycle: now, Addr: addr, Arg: uint32(lat),
			Kind: kind, CPU: int8(cpu), Level: uint8(lvl),
		})
	}
	if c.Metrics != nil {
		c.Metrics.ObserveAccess(uint8(lvl), lat)
	}
	if c.Prof != nil {
		c.Prof.LineAccess(cpu, addr, write, uint8(lvl))
	}
}

// traceIFetch reports an instruction-line fetch that missed the L1
// I-cache (hits are omitted to keep traces tractable — under the simple
// CPU model every cycle begins with an I-fetch).
func (c *Config) traceIFetch(now uint64, cpu int, addr uint32, lvl Level, lat uint64) {
	if c.Trace != nil && lvl != LvlL1 {
		c.Trace.Emit(obsv.Event{
			Cycle: now, Addr: addr, Arg: uint32(lat),
			Kind: obsv.EvIFetch, CPU: int8(cpu), Level: uint8(lvl),
		})
	}
}

// traceRefusal reports a structural refusal (write buffer full; MSHR-full
// refusals are emitted by the MSHR file itself).
func (c *Config) traceRefusal(now uint64, cpu int, kind obsv.EventKind) {
	if c.Trace != nil {
		c.Trace.Emit(obsv.Event{Cycle: now, Kind: kind, CPU: int8(cpu)})
	}
}

// DefaultConfig returns the paper's parameters (Sections 2.1-2.4,
// Table 2): 16KB 2-way private L1s, 64KB 2-way 4-banked shared L1, 2MB
// L2 (direct-mapped commodity SRAM), 512KB private L2 per CPU in the
// shared-memory system, 32-byte lines, and the Table 2 timings.
func DefaultConfig() Config {
	return Config{
		NumCPUs:   4,
		LineBytes: 32,

		L1ISize:  16 << 10,
		L1IAssoc: 2,
		L1DSize:  16 << 10,
		L1DAssoc: 2,

		SharedL1Size:   64 << 10,
		SharedL1Assoc:  2,
		SharedL1Banks:  4,
		SharedL1HitLat: 1,

		L2Size:     2 << 20,
		L2Assoc:    1,
		L2Banks:    4,
		PrivL2Size: 512 << 10,

		L2Lat:       10,
		L2Occ:       2,
		SharedL2Lat: 14,
		SharedL2Occ: 4,
		MemLat:      50,
		MemOcc:      6,
		C2CLat:      55,
		C2COcc:      6,
		UpgLat:      10,

		MSHRs:         4,
		WriteBufDepth: 8,
		WTWriteOcc:    1,
	}
}

// MXS returns cfg adjusted for the detailed CPU model: the shared-L1
// architecture pays its true 3-cycle hit time and bank contention
// (Section 4.4).
func (c Config) MXS() Config {
	c.SharedL1HitLat = 3
	c.SharedL1BankContention = true
	return c
}

// writeBuf models a per-CPU store buffer: the CPU retires a store in one
// cycle while the write (and any allocation fetch it triggers) drains in
// the background. A full buffer stalls further stores.
//
//simlint:owned per-cpu — each CPU drains only its own buffer (wbufs[cpu])
type writeBuf struct {
	depth   int
	pending []uint64 // completion cycles of in-flight stores
}

func (w *writeBuf) reap(now uint64) {
	p := w.pending[:0]
	for _, done := range w.pending {
		if done > now {
			//simlint:allow hotalloc — compacts into the reused backing array, never grows it
			p = append(p, done)
		}
	}
	w.pending = p
}

func (w *writeBuf) full(now uint64) bool {
	w.reap(now)
	return len(w.pending) >= w.depth
}

func (w *writeBuf) add(done uint64) {
	// The backing array is preallocated to depth by newWriteBufs and
	// add is only called when full() said no; the append never grows.
	w.pending = append(w.pending, done) //simlint:allow hotalloc — appends into the depth-capacity array preallocated by newWriteBufs
}

func newWriteBufs(n, depth int) []writeBuf {
	bufs := make([]writeBuf, n)
	for i := range bufs {
		bufs[i].depth = depth
		bufs[i].pending = make([]uint64, 0, depth)
	}
	return bufs
}

// reservations tracks LL/SC line reservations per CPU.
type reservations struct {
	lineMask uint32
	addr     []uint32
	valid    []bool
}

func newReservations(numCPUs int, lineBytes uint32) reservations {
	return reservations{
		lineMask: ^(lineBytes - 1),
		addr:     make([]uint32, numCPUs),
		valid:    make([]bool, numCPUs),
	}
}

// set records cpu's LL reservation. The reservation table is itself an
// inter-CPU arbitration mechanism (LL/SC): its methods are the declared
// serialization points the parallel tick must order at window
// boundaries, exactly like bus acquisition.
//
//simlint:arbiter
func (r *reservations) set(cpu int, addr uint32) {
	r.addr[cpu] = addr & r.lineMask
	r.valid[cpu] = true
}

// clearOthers breaks every other CPU's reservation on addr's line; call
// on every store.
//
//simlint:arbiter
func (r *reservations) clearOthers(cpu int, addr uint32) {
	la := addr & r.lineMask
	for i := range r.valid {
		if i != cpu && r.valid[i] && r.addr[i] == la {
			r.valid[i] = false
		}
	}
}

// checkAndClear consumes cpu's reservation, reporting whether it was
// still valid for addr's line.
//
//simlint:arbiter
func (r *reservations) checkAndClear(cpu int, addr uint32) bool {
	ok := r.valid[cpu] && r.addr[cpu] == addr&r.lineMask
	r.valid[cpu] = false
	return ok
}

//simlint:arbiter
func (r *reservations) clear(cpu int) { r.valid[cpu] = false }

// newICaches builds the private instruction caches common to all three
// architectures.
func newICaches(cfg Config) []*cache.Cache {
	ics := make([]*cache.Cache, cfg.NumCPUs)
	for i := range ics {
		ics[i] = cache.New(cache.Config{
			Name:      "l1i",
			SizeBytes: cfg.L1ISize,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L1IAssoc,
		})
	}
	return ics
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
