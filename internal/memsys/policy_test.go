package memsys

import (
	"testing"
	"testing/quick"

	"cmpsim/internal/obsv"
)

func TestTracerObservesAccesses(t *testing.T) {
	for _, mk := range []func(Config) System{
		func(c Config) System { return NewSharedL1(c) },
		func(c Config) System { return NewSharedL2(c) },
		func(c Config) System { return NewSharedMem(c) },
	} {
		ring := obsv.NewRing(1024)
		cfg := DefaultConfig()
		cfg.Trace = ring
		s := mk(cfg)
		s.Access(0, 1, 0x1000, false)
		s.Access(100, 2, 0x2000, true)
		var got []obsv.Event
		for _, ev := range ring.Events() {
			if ev.Kind == obsv.EvLoad || ev.Kind == obsv.EvStore {
				got = append(got, ev)
				if ev.Arg == 0 {
					t.Error("latency must be at least one cycle")
				}
			}
		}
		if len(got) != 2 {
			t.Fatalf("%s: tracer saw %d access events, want 2", s.Name(), len(got))
		}
		if got[0].CPU != 1 || got[0].Addr != 0x1000 || got[0].Kind != obsv.EvLoad || Level(got[0].Level) != LvlMem {
			t.Errorf("%s: first event = %+v", s.Name(), got[0])
		}
		if got[1].CPU != 2 || got[1].Kind != obsv.EvStore {
			t.Errorf("%s: second event = %+v", s.Name(), got[1])
		}
		// A cold-start load miss must also have produced MSHR and grant
		// activity from the instrumented sub-components.
		var sawAlloc, sawGrant bool
		for _, ev := range ring.Events() {
			switch ev.Kind {
			case obsv.EvMSHRAlloc:
				sawAlloc = true
			case obsv.EvGrant:
				sawGrant = true
			}
		}
		if !sawAlloc || !sawGrant {
			t.Errorf("%s: missing sub-component events (mshr-alloc=%v grant=%v)",
				s.Name(), sawAlloc, sawGrant)
		}
	}
}

func TestSharedDataPolicySplitsWritePaths(t *testing.T) {
	// Private stores must not touch the directory or write through;
	// shared stores must do both.
	cfg := DefaultConfig()
	cfg.SharedData = func(a uint32) bool { return a >= 0x10000 }
	s := NewSharedL2(cfg)

	// Private line: load then store. The store dirties the L1 line
	// without an L2 write access.
	s.Access(0, 0, 0x1000, false)
	l2Before := s.l2.Stats().Writes
	s.Access(100, 0, 0x1000, true)
	if s.l2.Stats().Writes != l2Before {
		t.Error("private store wrote through to the L2")
	}
	if ln := s.dcaches[0].Probe(0x1000); ln == nil || ln.State.String() != "M" {
		t.Error("private store did not dirty the L1 line")
	}

	// Shared line: two sharers; a store by a third invalidates both and
	// writes through.
	s.Access(200, 0, 0x20000, false)
	s.Access(300, 1, 0x20000, false)
	s.Access(400, 2, 0x20000, true)
	if s.dcaches[0].Probe(0x20000) != nil || s.dcaches[1].Probe(0x20000) != nil {
		t.Error("shared store did not invalidate the other sharers")
	}
	if s.l2.Stats().Writes == l2Before {
		t.Error("shared store did not write through to the L2")
	}
}

func TestPrivateDirtyVictimWritesBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharedData = func(a uint32) bool { return false } // everything private
	s := NewSharedL2(cfg)
	// Dirty a line, then evict it with conflicting fills (16KB 2-way:
	// set stride 8KB).
	s.Access(0, 0, 0x1000, false)
	s.Access(10, 0, 0x1000, true)
	memBefore := s.mem.Stats().Acquires
	s.Access(100, 0, 0x1000+8<<10, false)
	s.Access(200, 0, 0x1000+16<<10, false)
	// The dirty victim drains into the L2 (it is resident there), not to
	// memory; its L2 line must now be dirty.
	if ln := s.l2.Probe(0x1000); ln == nil || ln.State.String() != "M" {
		t.Error("write-back victim did not dirty its L2 line")
	}
	_ = memBefore
}

func TestWriteBufferDrainsOverTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteBufDepth = 1
	s := NewSharedL1(cfg)
	if _, ok := s.Access(0, 0, 0x1000, true); !ok {
		t.Fatal("first store refused")
	}
	// Immediately after, the single-entry buffer holds the miss.
	if _, ok := s.Access(1, 0, 0x2000, true); ok {
		t.Fatal("second store should be refused while the first drains")
	}
	// The first store's miss completes by ~cycle 61.
	if _, ok := s.Access(200, 0, 0x2000, true); !ok {
		t.Fatal("store after drain refused")
	}
}

// Property: every accepted access completes strictly after it was
// issued, and never earlier than the 1-cycle L1 time.
func TestQuickAccessCompletionMonotonic(t *testing.T) {
	mkSys := []func(Config) System{
		func(c Config) System { return NewSharedL1(c) },
		func(c Config) System { return NewSharedL2(c) },
		func(c Config) System { return NewSharedMem(c) },
	}
	f := func(seed int64) bool {
		cfg := DefaultConfig()
		s := mkSys[int(uint64(seed)%3)](cfg)
		rng := seed
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return uint64(rng)
		}
		now := uint64(0)
		for i := 0; i < 200; i++ {
			now += next() % 8
			cpu := int(next() % 4)
			addr := uint32(next() % (1 << 22))
			addr &^= 3
			write := next()%3 == 0
			res, ok := s.Access(now, cpu, addr, write)
			if !ok {
				continue
			}
			if res.Done <= now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: IFetch always completes in the future and at a sane level.
func TestQuickIFetchSane(t *testing.T) {
	f := func(seed int64) bool {
		s := NewSharedL2(DefaultConfig())
		rng := seed
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return uint64(rng)
		}
		now := uint64(0)
		for i := 0; i < 200; i++ {
			now += next() % 4
			r := s.IFetch(now, int(next()%4), uint32(next()%(1<<20))&^3)
			if r.Done <= now || r.Level >= NumLevels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
