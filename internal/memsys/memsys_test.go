package memsys

import (
	"testing"
)

// latency returns the load-to-use latency of a fresh access on sys.
func latency(t *testing.T, sys System, now uint64, cpu int, addr uint32, write bool) (uint64, Level) {
	t.Helper()
	r, ok := sys.Access(now, cpu, addr, write)
	if !ok {
		t.Fatalf("%s: access refused", sys.Name())
	}
	return r.Done - now, r.Level
}

// --- Table 2: contention-free access latencies ---

func TestTable2SharedL1Latencies(t *testing.T) {
	s := NewSharedL1(DefaultConfig())
	// Cold miss goes to memory: 1 (L1 detect) + 10 (L2 tag) + 50 (memory).
	if lat, lvl := latency(t, s, 0, 0, 0x1000, false); lat != 61 || lvl != LvlMem {
		t.Errorf("memory fill: lat=%d lvl=%v, want 61/Mem", lat, lvl)
	}
	// Now an L1 hit: 1 cycle under the simple-CPU configuration.
	if lat, lvl := latency(t, s, 100, 0, 0x1000, false); lat != 1 || lvl != LvlL1 {
		t.Errorf("L1 hit: lat=%d lvl=%v, want 1/L1", lat, lvl)
	}
	// Evict nothing, hit L2: access another word mapping to a line that is
	// in L2 but not L1. First bring a line in, flush it from L1 by filling
	// conflicting lines... simpler: access line A (fills L1+L2), then a
	// fresh line B, then a line conflicting with A in L1 to evict it, then
	// A again must hit in L2: 1 + 10 = 11 cycles.
	s2 := NewSharedL1(DefaultConfig())
	s2.Access(0, 0, 0x1000, false) // A -> L1+L2
	// Shared L1 is 64KB 2-way -> way stride is 32KB. Two conflicting fills
	// evict A from its set.
	s2.Access(100, 0, 0x1000+32<<10, false)
	s2.Access(200, 0, 0x1000+64<<10, false)
	s2.Access(300, 0, 0x1000+96<<10, false)
	if lat, lvl := latency(t, s2, 1000, 0, 0x1000, false); lat != 11 || lvl != LvlL2 {
		t.Errorf("L2 hit: lat=%d lvl=%v, want 11/L2", lat, lvl)
	}
}

func TestTable2SharedL1MXSHitTime(t *testing.T) {
	s := NewSharedL1(DefaultConfig().MXS())
	s.Access(0, 0, 0x1000, false)
	// 3-cycle hit under the detailed model.
	if lat, _ := latency(t, s, 100, 0, 0x1000, false); lat != 3 {
		t.Errorf("MXS L1 hit: lat=%d, want 3", lat)
	}
}

func TestTable2SharedL2Latencies(t *testing.T) {
	s := NewSharedL2(DefaultConfig())
	// Cold: 1 + 14 + 50 = 65.
	if lat, lvl := latency(t, s, 0, 0, 0x2000, false); lat != 65 || lvl != LvlMem {
		t.Errorf("memory fill: lat=%d lvl=%v, want 65/Mem", lat, lvl)
	}
	// L1 hit: 1 cycle.
	if lat, lvl := latency(t, s, 100, 0, 0x2000, false); lat != 1 || lvl != LvlL1 {
		t.Errorf("L1 hit: lat=%d lvl=%v", lat, lvl)
	}
	// L2 hit from another CPU that doesn't have it in L1: 1 + 14 = 15.
	if lat, lvl := latency(t, s, 200, 1, 0x2000, false); lat != 15 || lvl != LvlL2 {
		t.Errorf("L2 hit: lat=%d lvl=%v, want 15/L2", lat, lvl)
	}
}

func TestTable2SharedMemLatencies(t *testing.T) {
	s := NewSharedMem(DefaultConfig())
	// Cold: 1 + 10 (L2 tags) + 50 = 61.
	if lat, lvl := latency(t, s, 0, 0, 0x3000, false); lat != 61 || lvl != LvlMem {
		t.Errorf("memory fill: lat=%d lvl=%v, want 61/Mem", lat, lvl)
	}
	if lat, lvl := latency(t, s, 100, 0, 0x3000, false); lat != 1 || lvl != LvlL1 {
		t.Errorf("L1 hit: lat=%d lvl=%v", lat, lvl)
	}
	// Another CPU reads the same line: cache-to-cache, 1 + 10 + 55 = 66
	// (Table 2: "> 50", comparable to a memory access).
	if lat, lvl := latency(t, s, 200, 1, 0x3000, false); lat != 66 || lvl != LvlC2C {
		t.Errorf("c2c: lat=%d lvl=%v, want 66/C2C", lat, lvl)
	}
}

// --- Coherence through the full access paths ---

func TestSharedMemWriteInvalidatesRemoteL1(t *testing.T) {
	s := NewSharedMem(DefaultConfig())
	s.Access(0, 0, 0x100, false)   // CPU0: E
	s.Access(100, 1, 0x100, false) // CPU1 reads: both S (c2c)
	// CPU0 writes: upgrade, invalidating CPU1. The store itself retires
	// into the write buffer in one cycle.
	r, ok := s.Access(200, 0, 0x100, true)
	if !ok || r.Done != 201 {
		t.Fatalf("upgrade result %+v ok=%v", r, ok)
	}
	// CPU1's next read misses with invalidation classification and is
	// supplied cache-to-cache (CPU0 holds it M).
	r2, _ := s.Access(300, 1, 0x100, false)
	if r2.Level != LvlC2C {
		t.Errorf("after invalidate: level=%v, want C2C", r2.Level)
	}
	rep := s.Report()
	if rep.L1D.InvMisses != 1 {
		t.Errorf("L1D invalidation misses = %d, want 1", rep.L1D.InvMisses)
	}
	if rep.Snoop.Upgrades != 1 {
		t.Errorf("upgrades = %d", rep.Snoop.Upgrades)
	}
}

func TestSharedMemSilentEtoM(t *testing.T) {
	s := NewSharedMem(DefaultConfig())
	s.Access(0, 0, 0x100, false) // E
	r, _ := s.Access(100, 0, 0x100, true)
	if r.Done-100 != 1 || r.Level != LvlL1 {
		t.Errorf("silent E->M: lat=%d lvl=%v", r.Done-100, r.Level)
	}
}

func TestSharedMemWriteMissWithRemoteDirty(t *testing.T) {
	s := NewSharedMem(DefaultConfig())
	s.Access(0, 0, 0x100, true) // CPU0 write miss -> M
	s.Access(100, 1, 0x100, true)
	// The BusRdX was supplied cache-to-cache from CPU0's dirty copy.
	if s.snoop.Stats().CacheToCache == 0 {
		t.Error("write miss on remote-M should transfer cache-to-cache")
	}
	// CPU0's copies must be gone.
	if s.l1s[0].Probe(0x100) != nil || s.l2s[0].Probe(0x100) != nil {
		t.Error("remote copies survived BusRdX")
	}
}

func TestSharedL2StoreInvalidatesOtherSharers(t *testing.T) {
	s := NewSharedL2(DefaultConfig())
	s.Access(0, 0, 0x200, false)   // CPU0 caches the line
	s.Access(100, 1, 0x200, false) // CPU1 caches the line
	s.Access(200, 2, 0x200, true)  // CPU2 writes through
	// Both sharers invalidated; their next accesses are invalidation
	// misses.
	r0, _ := s.Access(300, 0, 0x200, false)
	if r0.Level != LvlL2 {
		t.Errorf("refetch should hit L2, got %v", r0.Level)
	}
	rep := s.Report()
	if rep.L1D.InvMisses != 1 {
		t.Errorf("invalidation misses = %d, want 1 so far", rep.L1D.InvMisses)
	}
	if rep.Dir.Invalidations != 2 {
		t.Errorf("directory invalidations = %d, want 2", rep.Dir.Invalidations)
	}
}

func TestSharedL2StoreIsBufferedAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteBufDepth = 2
	s := NewSharedL2(cfg)
	// First two stores to uncached L2 lines are slow to drain (memory
	// fills) but complete in 1 CPU cycle.
	r, ok := s.Access(0, 0, 0x10000, true)
	if !ok || r.Done != 1 {
		t.Fatalf("store 1: %+v %v", r, ok)
	}
	r, ok = s.Access(1, 0, 0x20000, true)
	if !ok || r.Done != 2 {
		t.Fatalf("store 2: %+v %v", r, ok)
	}
	// Third store while both are in flight: refused.
	if _, ok := s.Access(2, 0, 0x30000, true); ok {
		t.Fatal("store 3 should be refused with a full write buffer")
	}
	// Much later, the buffer has drained.
	if _, ok := s.Access(500, 0, 0x30000, true); !ok {
		t.Fatal("store after drain refused")
	}
}

func TestSharedL1ConflictBetweenCPUs(t *testing.T) {
	// Two CPUs touching disjoint data conflict in the shared cache: fill
	// the same set from three "CPUs" and verify evictions occur.
	cfg := DefaultConfig()
	cfg.SharedL1Size = 256 // 4 sets x 2 ways x 32B
	cfg.SharedL1Assoc = 2
	cfg.SharedL1Banks = 1
	s := NewSharedL1(cfg)
	s.Access(0, 0, 0x0000, false)
	s.Access(100, 1, 0x0080, false) // same set (stride 128B)
	s.Access(200, 2, 0x0100, false) // evicts CPU0's line
	r, _ := s.Access(300, 0, 0x0000, false)
	if r.Level == LvlL1 {
		t.Error("expected a conflict miss in the shared L1")
	}
	rep := s.Report()
	if rep.L1D.InvMisses != 0 {
		t.Error("conflict misses must not classify as invalidation misses")
	}
}

func TestSharedL1BankContention(t *testing.T) {
	cfg := DefaultConfig().MXS()
	s := NewSharedL1(cfg)
	// Warm the line.
	s.Access(0, 0, 0x1000, false)
	s.Access(10, 1, 0x1000, false)
	// Two CPUs hit the same bank in the same cycle: the second is delayed
	// by the 1-cycle bank occupancy.
	r0, _ := s.Access(100, 0, 0x1000, false)
	r1, _ := s.Access(100, 1, 0x1000, false)
	if r0.Done != 103 {
		t.Errorf("first: done=%d, want 103", r0.Done)
	}
	if r1.Done != 104 {
		t.Errorf("second (bank conflict): done=%d, want 104", r1.Done)
	}
	// A different bank in the same cycle is not delayed. (Warm the line
	// early so its fill has completed by cycle 100.)
	s.Access(20, 2, 0x1020, false)
	r2, _ := s.Access(100, 2, 0x1020, false)
	if r2.Done != 103 {
		t.Errorf("different bank: done=%d, want 103", r2.Done)
	}
}

func TestMSHRRefusal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	s := NewSharedMem(cfg)
	if _, ok := s.Access(0, 0, 0x1000, false); !ok {
		t.Fatal("first miss refused")
	}
	// A second distinct miss by the same CPU while the first is in flight
	// must be refused.
	if _, ok := s.Access(1, 0, 0x2000, false); ok {
		t.Fatal("second miss should be refused with 1 MSHR")
	}
	// A hit on the in-flight line is allowed (secondary miss merge) and
	// completes no earlier than the fill.
	r, ok := s.Access(2, 0, 0x1004, false)
	if !ok {
		t.Fatal("secondary miss refused")
	}
	if r.Done < 61 {
		t.Errorf("secondary miss done=%d, want >= 61 (fill time)", r.Done)
	}
	// After the fill completes, new misses are accepted.
	if _, ok := s.Access(100, 0, 0x2000, false); !ok {
		t.Fatal("miss after fill refused")
	}
}

func TestReservations(t *testing.T) {
	for _, sys := range []System{
		NewSharedL1(DefaultConfig()),
		NewSharedL2(DefaultConfig()),
		NewSharedMem(DefaultConfig()),
	} {
		sys.LLReserve(0, 0x100)
		if !sys.SCCheck(0, 0x104) { // same line
			t.Errorf("%s: SC on reserved line failed", sys.Name())
		}
		if sys.SCCheck(0, 0x104) {
			t.Errorf("%s: SC consumed reservation twice", sys.Name())
		}
		// A store by another CPU breaks the reservation.
		sys.LLReserve(1, 0x200)
		sys.Access(10, 2, 0x204, true)
		if sys.SCCheck(1, 0x200) {
			t.Errorf("%s: reservation survived remote store", sys.Name())
		}
		// ClearReservation drops it too.
		sys.LLReserve(3, 0x300)
		sys.ClearReservation(3)
		if sys.SCCheck(3, 0x300) {
			t.Errorf("%s: reservation survived ClearReservation", sys.Name())
		}
	}
}

func TestIFetchPaths(t *testing.T) {
	for _, sys := range []System{
		NewSharedL1(DefaultConfig()),
		NewSharedL2(DefaultConfig()),
		NewSharedMem(DefaultConfig()),
	} {
		r := sys.IFetch(0, 0, 0x4000)
		if r.Level != LvlMem {
			t.Errorf("%s: cold ifetch level=%v, want Mem", sys.Name(), r.Level)
		}
		r = sys.IFetch(100, 0, 0x4004)
		if r.Done != 101 || r.Level != LvlL1 {
			t.Errorf("%s: warm ifetch done=%d lvl=%v", sys.Name(), r.Done, r.Level)
		}
		// Second CPU misses its own I-cache but should find the line in L2
		// (shared architectures) or remotely/memory (shared-mem).
		r = sys.IFetch(200, 1, 0x4000)
		if r.Level == LvlL1 {
			t.Errorf("%s: cpu1 cold ifetch hit L1?", sys.Name())
		}
		rep := sys.Report()
		if rep.L1I.Accesses() != 3 || rep.L1I.Misses() != 2 {
			t.Errorf("%s: L1I stats %+v", sys.Name(), rep.L1I)
		}
	}
}

func TestL2AssociativityConfigurable(t *testing.T) {
	// The MP3D ablation: a direct-mapped L2 suffers conflict misses that a
	// 4-way L2 avoids. Two lines 2MB/1-way apart conflict only when DM.
	cfgDM := DefaultConfig()
	sDM := NewSharedL1(cfgDM)
	cfg4 := DefaultConfig()
	cfg4.L2Assoc = 4
	s4 := NewSharedL1(cfg4)

	stride := cfgDM.L2Size // conflicting stride for DM
	for _, s := range []*SharedL1{sDM, s4} {
		now := uint64(0)
		for i := 0; i < 4; i++ {
			// Alternate two conflicting L2 lines; keep L1 out of the way by
			// using addresses that conflict in L1 too... just evict: use
			// distinct L1 sets per iteration is hard; rely on L2 stats.
			s.l2.Access(uint32(stride)*uint32(i%2), false)
			if s.l2.Probe(uint32(stride)*uint32(i%2)) == nil {
				s.l2.Fill(uint32(stride)*uint32(i%2), 2)
			}
			now += 100
		}
	}
	if sDM.l2.Stats().Misses() <= s4.l2.Stats().Misses() {
		t.Errorf("DM L2 misses (%d) should exceed 4-way (%d)",
			sDM.l2.Stats().Misses(), s4.l2.Stats().Misses())
	}
}

func TestSharedL2LoadAfterL2EvictIsReplacementMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Size = 4096 // tiny: 128 lines direct-mapped
	s := NewSharedL2(cfg)
	s.Access(0, 0, 0x0, false)
	// Conflict in L2: same L2 set, stride = L2 size.
	s.Access(100, 1, 4096, false)
	// CPU0's L1 line was removed for inclusion; its re-read must be a
	// replacement miss, not an invalidation miss.
	s.Access(200, 0, 0x0, false)
	rep := s.Report()
	if rep.L1D.InvMisses != 0 {
		t.Errorf("inclusion eviction misclassified as invalidation: %+v", rep.L1D)
	}
	// Two inclusion evicts: CPU1's fill evicted CPU0's line, and CPU0's
	// refetch evicted CPU1's line right back (they conflict in the L2).
	if rep.Dir.InclusionEvicts != 2 {
		t.Errorf("inclusion evicts = %d, want 2", rep.Dir.InclusionEvicts)
	}
}
