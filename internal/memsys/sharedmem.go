package memsys

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/check"
	"cmpsim/internal/coherence"
	"cmpsim/internal/cyc"
	"cmpsim/internal/interconnect"
	"cmpsim/internal/obsv"
)

// SharedMem is the conventional bus-based shared-memory multiprocessor
// (Section 2.4): each CPU has a private single-cycle write-back L1 and a
// private L2 bank running at full SRAM speed (10-cycle latency, 2-cycle
// occupancy). Communication crosses the shared system bus: memory
// accesses cost 50/6 and cache-to-cache transfers cost even more
// (Table 2's "> 50 / > 6"), because all other processors must snoop
// their tags and the slowest responder gates the transfer. Both cache
// levels participate in MESI snooping, with L2 inclusive of L1.
type SharedMem struct {
	cfg Config
	res reservations

	icaches []*cache.Cache
	l1s     []*cache.Cache
	l2s     []*cache.Cache
	l2ports []interconnect.Resource
	mshrs   []*cache.MSHRFile

	snoop *coherence.Snoop
	bus   interconnect.Resource
	wbufs []writeBuf

	// chkNodes is preallocated sanitizer scratch, nil unless Check is
	// set. It is written only inside sanityCheck, which runs under the
	// memory system's serial-order arbitration: sanityCheck is called
	// from Access, and every Access happens either on the serial cycle
	// loop or under the parallel scheduler's tick-gate grant (in
	// practice a Checker forces the serial loop outright — parActive
	// refuses to shard sanitized runs).
	chkNodes []check.NodeState
}

// NewSharedMem builds the shared-memory architecture from cfg.
func NewSharedMem(cfg Config) *SharedMem {
	n := cfg.NumCPUs
	l1s := make([]*cache.Cache, n)
	l2s := make([]*cache.Cache, n)
	ports := make([]interconnect.Resource, n)
	mshrs := make([]*cache.MSHRFile, n)
	nodes := make([]coherence.Node, n)
	for i := 0; i < n; i++ {
		l1s[i] = cache.New(cache.Config{
			Name:      "l1d",
			SizeBytes: cfg.L1DSize,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L1DAssoc,
		})
		l2s[i] = cache.New(cache.Config{
			Name:      "priv-l2",
			SizeBytes: cfg.PrivL2Size,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L2Assoc,
		})
		ports[i] = interconnect.Resource{Name: "l2-port"}
		mshrs[i] = cache.NewMSHRFile(cfg.MSHRs)
		nodes[i] = coherence.Node{L1: l1s[i], L2: l2s[i]}
	}
	s := &SharedMem{
		cfg:     cfg,
		res:     newReservations(n, cfg.LineBytes),
		icaches: newICaches(cfg),
		l1s:     l1s,
		l2s:     l2s,
		l2ports: ports,
		mshrs:   mshrs,
		snoop:   coherence.NewSnoop(nodes),
		bus:     interconnect.Resource{Name: "bus"},
		wbufs:   newWriteBufs(n, cfg.WriteBufDepth),
	}
	if cfg.Trace != nil {
		s.bus.Instrument(cfg.Trace, obsv.ResBus, 0)
		for i := range s.l2ports {
			// Per-CPU ports: the owning CPU doubles as the bank index.
			s.l2ports[i].Instrument(cfg.Trace, obsv.ResL2Port, uint32(i))
			s.mshrs[i].SetTracer(cfg.Trace, i)
		}
		s.snoop.SetTracer(cfg.Trace)
	}
	if cfg.Prof != nil {
		s.snoop.SetProfiler(cfg.Prof)
	}
	if cfg.Check != nil {
		s.chkNodes = make([]check.NodeState, n)
	}
	return s
}

// Name implements System.
func (s *SharedMem) Name() string { return "shared-mem" }

// LLReserve implements System.
func (s *SharedMem) LLReserve(cpu int, addr uint32) { s.res.set(cpu, addr) }

// SCCheck implements System.
func (s *SharedMem) SCCheck(cpu int, addr uint32) bool { return s.res.checkAndClear(cpu, addr) }

// ClearReservation implements System.
func (s *SharedMem) ClearReservation(cpu int) { s.res.clear(cpu) }

// l1FillState derives the L1 fill state from the local L2 line's state.
func l1FillState(l2State cache.State) cache.State {
	if l2State == cache.Shared {
		return cache.Shared
	}
	// E or M in L2: the L1 may take it exclusively and upgrade silently.
	return cache.Exclusive
}

// busFetch performs the bus transaction for a local L2 miss. write says
// whether this is a BusRdX (write miss). Returns data-ready cycle, the
// supplying level and the state the requester should fill in.
func (s *SharedMem) busFetch(cpu int, reqTime uint64, lineAddr uint32, write bool) (uint64, Level, cache.State) {
	var sn coherence.SnoopResult
	if write {
		sn = s.snoop.Write(reqTime, cpu, lineAddr)
	} else {
		sn = s.snoop.Read(reqTime, cpu, lineAddr)
	}
	if sn.RemoteCopy {
		// Cache-to-cache transfer: every other processor checks its tags
		// and the owner sources the line (Table 2: > 50 cycles).
		start := s.bus.Acquire(reqTime, s.cfg.C2COcc)
		st := cache.Shared
		if write {
			st = cache.Modified
		}
		return start + s.cfg.C2CLat, LvlC2C, st
	}
	start := s.bus.Acquire(reqTime, s.cfg.MemOcc)
	st := cache.Exclusive
	if write {
		st = cache.Modified
	}
	return start + s.cfg.MemLat, LvlMem, st
}

// evictL2Victim enforces L2->L1 inclusion for cpu and writes dirty
// victims to memory over the bus.
func (s *SharedMem) evictL2Victim(cpu int, v cache.Victim, at uint64) {
	if !v.Valid {
		return
	}
	_, l1Dirty := s.l1s[cpu].EvictForInclusion(v.LineAddr)
	if v.Dirty || l1Dirty {
		s.bus.Acquire(at, s.cfg.MemOcc)
	}
}

// writebackL1Victim folds a dirty L1 victim into the local L2.
func (s *SharedMem) writebackL1Victim(cpu int, v cache.Victim, at uint64) {
	if !v.Valid || !v.Dirty {
		return
	}
	s.l2ports[cpu].Acquire(at, s.cfg.L2Occ)
	if ln := s.l2s[cpu].Probe(v.LineAddr); ln != nil {
		ln.State = cache.Modified
		return
	}
	// Inclusion says this cannot normally happen, but be safe: push the
	// line to memory.
	s.bus.Acquire(at, s.cfg.MemOcc)
}

// Access implements System. Stores retire through a per-CPU store
// buffer: the CPU sees one cycle while the write miss or upgrade drains
// in the background.
func (s *SharedMem) Access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	r, ok := s.access(now, cpu, addr, write)
	if ok {
		s.cfg.traceAccess(now, cpu, addr, write, r.Level, cyc.Lat(r.Done, now))
		if s.cfg.Check != nil {
			s.sanityCheck(now, cpu, addr, r)
		}
	}
	return r, ok
}

// sanityCheck validates the completed transaction under -sanitize: the
// completion time, then the MESI/inclusion invariants for the touched
// line across all four private hierarchies. It is an arbitration point
// for its scratch buffer: callers reach it only through Access, which
// executes under the cycle loop's serial-order grant.
//
//simlint:arbiter
func (s *SharedMem) sanityCheck(now uint64, cpu int, addr uint32, r Result) {
	chk := s.cfg.Check
	chk.CheckAccessTime(now, r.Done, cpu, addr)
	la := s.l1s[cpu].LineAddr(addr)
	for i := range s.l1s {
		s.chkNodes[i] = check.NodeState{L1: s.l1s[i].Probe(la), L2: s.l2s[i].Probe(la)}
	}
	chk.CheckMESI(now, la, s.chkNodes)
}

// MSHROutstanding returns the in-flight misses summed over the CPUs'
// MSHR files at cycle now.
func (s *SharedMem) MSHROutstanding(now uint64) int {
	n := 0
	for _, m := range s.mshrs {
		n += m.Outstanding(now)
	}
	return n
}

func (s *SharedMem) access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	l1 := s.l1s[cpu]
	la := l1.LineAddr(addr)
	if write {
		if s.wbufs[cpu].full(now) {
			s.cfg.traceRefusal(now, cpu, obsv.EvWBufFull)
			return Result{Done: now + 1, Level: LvlL2}, false
		}
		s.res.clearOthers(cpu, addr)
	}

	finish := func(done uint64, lvl Level) (Result, bool) {
		if write {
			s.wbufs[cpu].add(done)
			return Result{Done: now + 1, Level: LvlL1}, true
		}
		return Result{Done: done, Level: lvl}, true
	}

	r := l1.Access(addr, write)
	if r.Hit {
		if done, tag, merged := s.mshrs[cpu].Lookup(now, la); merged {
			if write {
				l1.Probe(addr).State = cache.Modified
			}
			return finish(maxU64(now+1, done), Level(tag))
		}
		if !write {
			return Result{Done: now + 1, Level: LvlL1}, true
		}
		ln := l1.Probe(addr)
		switch ln.State {
		case cache.Modified:
			return finish(now+1, LvlL1)
		case cache.Exclusive:
			ln.State = cache.Modified
			return finish(now+1, LvlL1)
		default: // Shared: bus upgrade to invalidate the other copies
			s.snoop.Upgrade(now, cpu, la)
			start := s.bus.Acquire(now+1, 2)
			ln.State = cache.Modified
			if l2ln := s.l2s[cpu].Probe(la); l2ln != nil {
				l2ln.State = cache.Modified
			}
			return finish(start+s.cfg.UpgLat, LvlC2C)
		}
	}

	// L1 miss.
	if s.mshrs[cpu].Full(now) {
		return Result{Done: now + 1, Level: LvlL1}, false
	}
	start := s.l2ports[cpu].Acquire(now+1, s.cfg.L2Occ)
	l2 := s.l2s[cpu]
	l2r := l2.Access(la, write)
	var dataAt uint64
	var lvl Level
	var l1State cache.State
	if l2r.Hit {
		dataAt = start + s.cfg.L2Lat
		lvl = LvlL2
		ln := l2.Probe(la)
		if write {
			if ln.State == cache.Shared {
				// Write to a shared line: upgrade on the bus first.
				s.snoop.Upgrade(dataAt, cpu, la)
				bstart := s.bus.Acquire(dataAt, 2)
				dataAt = bstart + s.cfg.UpgLat
				lvl = LvlC2C
			}
			ln.State = cache.Modified
			l1State = cache.Modified
		} else {
			l1State = l1FillState(ln.State)
		}
	} else {
		var fillState cache.State
		dataAt, lvl, fillState = s.busFetch(cpu, start+s.cfg.L2Lat, la, write)
		victim := l2.Fill(la, fillState)
		// Victim traffic drains concurrently with the fill; charge it
		// adjacent to the transaction, not at the future completion.
		s.evictL2Victim(cpu, victim, start+s.cfg.L2Lat)
		if write {
			l1State = cache.Modified
		} else {
			l1State = l1FillState(fillState)
		}
	}
	v := l1.Fill(addr, l1State)
	s.writebackL1Victim(cpu, v, start+s.cfg.L2Occ)
	s.mshrs[cpu].Allocate(now, la, dataAt, uint8(lvl))
	return finish(dataAt, lvl)
}

// IFetch implements System. Instruction misses go through the CPU's own
// L2; kernel text shared between processes may be sourced from a remote
// cache over the bus.
func (s *SharedMem) IFetch(now uint64, cpu int, addr uint32) Result {
	ic := s.icaches[cpu]
	la := ic.LineAddr(addr)
	r := ic.Access(addr, false)
	if r.Hit {
		return Result{Done: now + 1, Level: LvlL1}
	}
	start := s.l2ports[cpu].Acquire(now+1, s.cfg.L2Occ)
	l2 := s.l2s[cpu]
	l2r := l2.Access(la, false)
	var dataAt uint64
	var lvl Level
	if l2r.Hit {
		dataAt = start + s.cfg.L2Lat
		lvl = LvlL2
	} else {
		var fillState cache.State
		dataAt, lvl, fillState = s.busFetch(cpu, start+s.cfg.L2Lat, la, false)
		victim := l2.Fill(la, fillState)
		s.evictL2Victim(cpu, victim, start+s.cfg.L2Lat)
	}
	ic.Fill(addr, cache.Exclusive)
	s.cfg.traceIFetch(now, cpu, addr, lvl, cyc.Lat(dataAt, now))
	if s.cfg.Check != nil {
		s.cfg.Check.CheckAccessTime(now, dataAt, cpu, addr)
	}
	return Result{Done: dataAt, Level: lvl}
}

// Report implements System.
func (s *SharedMem) Report() Report {
	rep := Report{Name: s.Name()}
	for _, ic := range s.icaches {
		rep.L1I.Add(ic.Stats())
	}
	for _, l1 := range s.l1s {
		rep.L1D.Add(l1.Stats())
	}
	for _, l2 := range s.l2s {
		rep.L2.Add(l2.Stats())
	}
	sn := s.snoop.Stats()
	rep.Snoop = &sn
	res := []interconnect.ResourceStats{s.bus.Stats()}
	var ports interconnect.ResourceStats
	for i := range s.l2ports {
		st := s.l2ports[i].Stats()
		ports.Name = st.Name
		ports.Acquires += st.Acquires
		ports.WaitCycles += st.WaitCycles
		ports.BusyCycles += st.BusyCycles
	}
	rep.Resources = append(res, ports)
	return rep
}
