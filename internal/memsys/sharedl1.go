package memsys

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/cyc"
	"cmpsim/internal/interconnect"
	"cmpsim/internal/obsv"
)

// SharedL1 is the shared-primary-cache multiprocessor (Section 2.2):
// four CPUs share one 64KB 2-way, 4-banked write-back L1 data cache
// through a crossbar. Below it sit a uniprocessor-style L2 (10-cycle
// latency, 2-cycle occupancy over a 128-bit bus) and main memory
// (50/6). No coherence mechanism is needed — there is only one data
// cache — and LL/SC reservations are the only inter-CPU monitor state.
//
// Under the simple CPU model the L1 hit time is the paper's optimistic
// 1 cycle with no bank contention; Config.MXS() enables the true
// 3-cycle hit time and crossbar bank arbitration.
type SharedL1 struct {
	cfg Config
	res reservations

	icaches []*cache.Cache
	dcache  *cache.Cache
	dbanks  interconnect.Banks
	mshr    *cache.MSHRFile // one file on the shared cache's miss path

	l2     *cache.Cache
	l2port interconnect.Resource
	mem    interconnect.Resource

	wbufs []writeBuf
}

// NewSharedL1 builds the shared-L1 architecture from cfg.
func NewSharedL1(cfg Config) *SharedL1 {
	s := &SharedL1{
		cfg:     cfg,
		res:     newReservations(cfg.NumCPUs, cfg.LineBytes),
		icaches: newICaches(cfg),
		dcache: cache.New(cache.Config{
			Name:      "shared-l1d",
			SizeBytes: cfg.SharedL1Size,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.SharedL1Assoc,
			Banks:     cfg.SharedL1Banks,
		}),
		dbanks: interconnect.NewBanks("l1-bank", int(cfg.SharedL1Banks)),
		mshr:   cache.NewMSHRFile(cfg.MSHRs * cfg.NumCPUs),
		l2: cache.New(cache.Config{
			Name:      "l2",
			SizeBytes: cfg.L2Size,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L2Assoc,
		}),
		l2port: interconnect.Resource{Name: "l2-port"},
		mem:    interconnect.Resource{Name: "memory"},
		wbufs:  newWriteBufs(cfg.NumCPUs, cfg.WriteBufDepth),
	}
	if cfg.Trace != nil {
		s.dbanks.Instrument(cfg.Trace, obsv.ResL1Bank)
		s.l2port.Instrument(cfg.Trace, obsv.ResL2Port, 0)
		s.mem.Instrument(cfg.Trace, obsv.ResMem, 0)
		s.mshr.SetTracer(cfg.Trace, -1) // the MSHR file is shared, not per-CPU
	}
	return s
}

// Name implements System.
func (s *SharedL1) Name() string { return "shared-l1" }

// LLReserve implements System.
func (s *SharedL1) LLReserve(cpu int, addr uint32) { s.res.set(cpu, addr) }

// SCCheck implements System.
func (s *SharedL1) SCCheck(cpu int, addr uint32) bool { return s.res.checkAndClear(cpu, addr) }

// ClearReservation implements System.
func (s *SharedL1) ClearReservation(cpu int) { s.res.clear(cpu) }

// l2Fetch services a shared-L1 (or I-cache) miss from the L2 and memory,
// returning the data-ready cycle and the level that supplied the data.
// reqTime is the cycle at which the miss leaves the L1 level.
func (s *SharedL1) l2Fetch(reqTime uint64, lineAddr uint32) (uint64, Level) {
	start := s.l2port.Acquire(reqTime, s.cfg.L2Occ)
	r := s.l2.Access(lineAddr, false)
	if r.Hit {
		return start + s.cfg.L2Lat, LvlL2
	}
	mstart := s.mem.Acquire(start+s.cfg.L2Lat, s.cfg.MemOcc)
	dataAt := mstart + s.cfg.MemLat
	victim := s.l2.Fill(lineAddr, cache.Exclusive)
	if victim.Valid && victim.Dirty {
		// The dirty victim drains to memory concurrently with the fill;
		// charge its occupancy adjacent to the fetch so it contends with
		// other transactions but never blocks earlier ones (the
		// busy-until model cannot backfill around a future reservation).
		s.mem.Acquire(mstart+s.cfg.MemOcc, s.cfg.MemOcc)
	}
	return dataAt, LvlMem
}

// writebackToL2 handles a dirty victim leaving the shared L1. at is the
// time the victim's replacement transaction begins; the writeback drains
// concurrently with the fill.
func (s *SharedL1) writebackToL2(at uint64, lineAddr uint32) {
	s.l2port.Acquire(at, s.cfg.L2Occ)
	if ln := s.l2.Probe(lineAddr); ln != nil {
		ln.State = cache.Modified
		return
	}
	// The L2 replaced the line already (it is not strictly inclusive of
	// dirty L1 data in this model); write it to memory.
	s.mem.Acquire(at, s.cfg.MemOcc)
}

// Access implements System. Stores retire through a per-CPU store
// buffer: the CPU sees one cycle while the write (and any miss it
// triggers) drains in the background.
func (s *SharedL1) Access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	r, ok := s.access(now, cpu, addr, write)
	if ok {
		s.cfg.traceAccess(now, cpu, addr, write, r.Level, cyc.Lat(r.Done, now))
		if s.cfg.Check != nil {
			// One shared cache, no coherence: the time invariants are the
			// whole sanitizer surface here.
			s.cfg.Check.CheckAccessTime(now, r.Done, cpu, addr)
		}
	}
	return r, ok
}

// MSHROutstanding returns the number of in-flight misses at cycle now
// (the interval sampler's occupancy probe).
func (s *SharedL1) MSHROutstanding(now uint64) int { return s.mshr.Outstanding(now) }

func (s *SharedL1) access(now uint64, cpu int, addr uint32, write bool) (Result, bool) {
	la := s.dcache.LineAddr(addr)
	if write {
		if s.wbufs[cpu].full(now) {
			s.cfg.traceRefusal(now, cpu, obsv.EvWBufFull)
			return Result{Done: now + 1, Level: LvlL2}, false
		}
	}
	// Refuse a guaranteed primary miss before consuming a bank slot, so
	// MSHR-full retry storms do not eat crossbar bandwidth.
	if s.dcache.Probe(addr) == nil && s.mshr.Full(now) {
		return Result{Done: now + 1, Level: LvlL1}, false
	}
	if write {
		s.res.clearOthers(cpu, addr)
	}
	start := now
	if s.cfg.SharedL1BankContention {
		start = s.dbanks.Acquire(s.dcache.BankOf(addr), now, 1)
	}
	ready := start + s.cfg.SharedL1HitLat

	finish := func(done uint64, lvl Level) (Result, bool) {
		if write {
			s.wbufs[cpu].add(done)
			return Result{Done: now + 1, Level: LvlL1}, true
		}
		return Result{Done: done, Level: lvl}, true
	}

	r := s.dcache.Access(addr, write)
	if r.Hit {
		if write {
			s.dcache.Probe(addr).State = cache.Modified
		}
		// A tag hit on a line whose fill is still in flight (secondary
		// miss) completes when the fill does.
		if done, tag, merged := s.mshr.Lookup(now, la); merged {
			return finish(maxU64(ready, done), Level(tag))
		}
		return finish(ready, LvlL1)
	}

	// Primary miss. Refuse if the MSHR file is full.
	if s.mshr.Full(now) {
		return Result{Done: now + 1, Level: LvlL1}, false
	}
	dataAt, lvl := s.l2Fetch(ready, la)
	st := cache.Exclusive
	if write {
		st = cache.Modified
	}
	victim := s.dcache.Fill(addr, st)
	if victim.Valid && victim.Dirty {
		s.writebackToL2(ready, victim.LineAddr)
	}
	s.mshr.Allocate(now, la, dataAt, uint8(lvl))
	return finish(dataAt, lvl)
}

// IFetch implements System. Instruction misses share the L2 port with
// data misses but bypass the shared D-cache.
func (s *SharedL1) IFetch(now uint64, cpu int, addr uint32) Result {
	ic := s.icaches[cpu]
	la := ic.LineAddr(addr)
	r := ic.Access(addr, false)
	if r.Hit {
		return Result{Done: now + 1, Level: LvlL1}
	}
	dataAt, lvl := s.l2Fetch(now+1, la)
	ic.Fill(addr, cache.Exclusive)
	s.cfg.traceIFetch(now, cpu, addr, lvl, cyc.Lat(dataAt, now))
	if s.cfg.Check != nil {
		s.cfg.Check.CheckAccessTime(now, dataAt, cpu, addr)
	}
	return Result{Done: dataAt, Level: lvl}
}

// Report implements System.
func (s *SharedL1) Report() Report {
	rep := Report{Name: s.Name(), L1D: s.dcache.Stats(), L2: s.l2.Stats()}
	for _, ic := range s.icaches {
		rep.L1I.Add(ic.Stats())
	}
	rep.Resources = []interconnect.ResourceStats{
		s.dbanks.Stats(),
		s.l2port.Stats(),
		s.mem.Stats(),
	}
	return rep
}
