package runner

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// smallJob is one fast (workload × arch) cell for pool tests: small
// enough that a 3×3 grid finishes in well under a second.
func smallJob(arch core.Arch) Job {
	return Job{
		Workload: func() (workload.Workload, error) {
			return workload.NewEqntott(workload.EqntottParams{Words: 64, Iters: 40}), nil
		},
		WorkloadKey: "eqntott/words=64,iters=40",
		Arch:        arch,
		Model:       core.ModelMipsy,
		Cfg:         memsys.DefaultConfig(),
		Tag:         "test-eqntott-" + string(arch),
	}
}

// smallGrid is the quick test table: one small workload on every
// architecture, three times over with different configs so the pool
// has enough cells to keep several workers busy.
func smallGrid() []Job {
	var jobs []Job
	for _, assoc := range []uint32{1, 2, 4} {
		for _, a := range core.Arches() {
			j := smallJob(a)
			j.Cfg.L2Assoc = assoc
			j.Tag = fmt.Sprintf("%s-assoc%d", j.Tag, assoc)
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// TestParallelEqualsSerial is the pool's core guarantee: running the
// quick grid with 1 worker and with 4 workers must produce
// bit-identical merged reports — same cycle counts, per-CPU stall
// breakdowns and memory reports in the same positions. Any shared
// mutable state between runs (a process-global counter, a shared
// tracer, scheduler-order dependence) shows up here as a diff, and
// under -race as a report.
func TestParallelEqualsSerial(t *testing.T) {
	serial := (&Pool{Workers: 1}).Run(smallGrid())
	parallel := (&Pool{Workers: 4}).Run(smallGrid())
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: serial=%v parallel=%v", i, serial[i].Err, parallel[i].Err)
		}
		s, p := serial[i].Res, parallel[i].Res
		if s.Cycles != p.Cycles {
			t.Errorf("job %d: cycles differ: serial=%d parallel=%d", i, s.Cycles, p.Cycles)
		}
		if !reflect.DeepEqual(s.PerCPU, p.PerCPU) {
			t.Errorf("job %d: per-CPU stats differ:\n%+v\n%+v", i, s.PerCPU, p.PerCPU)
		}
		if !reflect.DeepEqual(s.MemReport, p.MemReport) {
			t.Errorf("job %d: memory reports differ:\n%+v\n%+v", i, s.MemReport, p.MemReport)
		}
	}
}

// TestMoreWorkersThanJobs checks the worker clamp: a pool with more
// workers than jobs must still complete every job exactly once, in
// order.
func TestMoreWorkersThanJobs(t *testing.T) {
	jobs := []Job{smallJob(core.SharedL1), smallJob(core.SharedMem)}
	results := (&Pool{Workers: 16}).Run(jobs)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Res.Arch != jobs[i].Arch {
			t.Errorf("result %d is for arch %s, want %s (order not preserved)", i, r.Res.Arch, jobs[i].Arch)
		}
	}
}

// TestEmptyAndZeroWorkerPool covers the degenerate inputs.
func TestEmptyAndZeroWorkerPool(t *testing.T) {
	if got := (&Pool{}).Run(nil); len(got) != 0 {
		t.Errorf("empty job list returned %d results", len(got))
	}
	// Workers == 0 defaults to GOMAXPROCS and must still run jobs.
	results := (&Pool{}).Run([]Job{smallJob(core.SharedL1)})
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("zero-worker pool: %+v", results)
	}
}

// TestJobErrorsStayPositional verifies that one failing job reports
// its error in its own slot without poisoning the rest of the batch,
// and that FirstErr surfaces it.
func TestJobErrorsStayPositional(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		smallJob(core.SharedL1),
		{
			Workload: func() (workload.Workload, error) { return nil, boom },
			Arch:     core.SharedL2,
			Model:    core.ModelMipsy,
			Cfg:      memsys.DefaultConfig(),
			Tag:      "failing",
		},
		smallJob(core.SharedMem),
	}
	results := (&Pool{Workers: 3}).Run(jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, boom) {
		t.Errorf("failing job error = %v, want wrapped boom", results[1].Err)
	}
	if err := FirstErr(results); !errors.Is(err, boom) {
		t.Errorf("FirstErr = %v, want boom", err)
	}
	if err := FirstErr(results[:1]); err != nil {
		t.Errorf("FirstErr of clean prefix = %v, want nil", err)
	}
}

// TestUnknownArchPropagates makes sure a run-level failure (not a
// workload construction failure) also lands in Result.Err.
func TestUnknownArchPropagates(t *testing.T) {
	j := smallJob("no-such-arch")
	results := (&Pool{Workers: 1}).Run([]Job{j})
	if results[0].Err == nil {
		t.Fatal("unknown architecture did not error")
	}
}
