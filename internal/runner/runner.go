// Package runner is the driver-level parallel experiment engine: it
// shards independent simulation runs across a deterministic worker
// pool and memoizes their results in a config-hash-keyed on-disk
// cache.
//
// The simulation core (internal/{core, memsys, cpu, ...}) is strictly
// single-threaded per machine — the simlint determinism analyzer
// forbids goroutines inside it — but distinct runs share no mutable
// state, so a (workload × architecture × CPU model × config) grid is
// embarrassingly parallel. The runner exploits exactly that boundary:
// every Job builds its own fully-isolated machine (memory system,
// CPUs, guest programs, tracers) inside one worker goroutine, results
// travel back through per-job channels, and the pool merges them in
// stable job order, so a parallel run is bit-identical to a serial
// one. cmd/experiments, cmd/sweep and cmd/cmpsim all dispatch through
// this package.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

// Job describes one independent simulation run: a fresh workload
// instance on one architecture under one CPU model and configuration.
type Job struct {
	// Workload constructs a fresh workload instance for this run. It is
	// called inside the worker, must not share mutable state with other
	// jobs, and must build the same workload every time it is called
	// (the cache relies on WorkloadKey naming it uniquely).
	Workload func() (workload.Workload, error)

	// WorkloadKey identifies the workload and its parameters for the
	// result cache (e.g. "eqntott/quick"). Jobs with an empty key are
	// never cached.
	WorkloadKey string

	Arch  core.Arch
	Model core.CPUModel

	// Cfg is this job's private memory-system configuration. Runtime
	// attachments (Trace, Metrics, Check) must be per-job instances —
	// two jobs sharing one ring or checker would interleave their
	// events. A job carrying any non-nil attachment, or a non-nil
	// SharedData classifier, bypasses the cache (attachments are not
	// part of the cache key; SharedData cannot be hashed).
	Cfg memsys.Config

	// Tag is a filename-safe label for messages and per-job sink paths
	// ("figure-5-mp3d-shared-l1").
	Tag string
}

// Result is the outcome of one Job, in the same slice position.
type Result struct {
	Res    *core.RunResult
	Err    error
	Cached bool // satisfied from the result cache without simulating
}

// Pool runs batches of jobs. The zero value runs serially without a
// cache; set Workers for parallelism and Cache for memoization.
type Pool struct {
	// Workers caps concurrent simulations; the effective count is
	// min(Workers, len(jobs)). <= 0 means GOMAXPROCS (all cores). An
	// explicit count above GOMAXPROCS is honored rather than clamped:
	// runs are CPU-bound so it buys nothing, but it lets single-core
	// machines still exercise the pool's interleaving under -race.
	Workers int

	// Cache, when non-nil, memoizes results keyed by the canonical hash
	// of (sim version, workload key, arch, model, config fingerprint).
	Cache *Cache

	// Progress, when non-nil, receives one line per completed job —
	// "[k/n] tag 1.234s" plus "(cached)" for cache hits and "(error)"
	// for failures — in completion order, as jobs finish. Point it at
	// stderr (the -progress flag of the cmd tools does) so stdout
	// stays byte-identical to a progress-less run; the result slice
	// itself is unaffected.
	Progress io.Writer

	// Telem, when non-nil, receives host-side pool metrics: job
	// lifecycle counters, queue depth, per-worker busy time, cache
	// effectiveness, attachment counts, and per-job wall-clock records
	// for the end-of-campaign run report. Every update site is
	// nil-guarded, so the disabled path costs one pointer check.
	Telem *telemetry.RunnerMetrics

	mu      sync.Mutex // guards done (Progress lines from worker goroutines)
	done    int
	started time.Time // start of the current Run, for progress rate/ETA
}

// CapWorkers returns the pool worker count to use when every simulation
// itself runs simJobs shard goroutines (Config.SimJobs): the requested
// count (0 = GOMAXPROCS), clamped so pool workers × shard workers never
// oversubscribes the host. With simJobs <= 1 the request passes through
// unchanged, preserving Pool.Workers' contract that an explicit
// above-GOMAXPROCS count is honored.
func CapWorkers(jobs, simJobs int) int {
	if simJobs <= 1 {
		return jobs
	}
	procs := runtime.GOMAXPROCS(0)
	w := jobs
	if w <= 0 || w > procs {
		w = procs
	}
	if limit := procs / simJobs; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns their results in job order.
// Output is deterministic: the merged results are bit-identical
// regardless of the worker count, because each job's machine is fully
// isolated and results are reassembled positionally, not in completion
// order. Individual failures land in Result.Err; Run itself never
// panics on a failed job.
func (p *Pool) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	n := len(jobs)
	if n == 0 {
		return results
	}
	p.mu.Lock()
	p.done = 0
	p.started = time.Now()
	p.mu.Unlock()
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if t := p.Telem; t != nil {
		t.JobsTotal.Add(uint64(n))
		t.QueueDepth.Add(int64(n))
		t.Workers.Set(int64(workers))
	}
	if workers == 1 {
		for i := range jobs {
			results[i] = p.runJob(n, 0, &jobs[i])
		}
		return results
	}

	// Per-job result channels: workers complete in any order, the merge
	// below reads channel 0, 1, 2, ... so results land in job order.
	out := make([]chan Result, n)
	for i := range out {
		out[i] = make(chan Result, 1)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			for i := range next {
				out[i] <- p.runJob(n, worker, &jobs[i])
			}
		}(w)
	}
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for i := range out {
		results[i] = <-out[i]
	}
	return results
}

// runJob executes one job, reports its completion to Progress, and
// feeds the pool telemetry.
func (p *Pool) runJob(total, worker int, job *Job) Result {
	t := p.Telem
	if t != nil {
		t.JobsStarted.Inc()
		t.QueueDepth.Add(-1)
	}
	start := time.Now()
	res := p.execJob(job)
	wall := time.Since(start)
	if t != nil {
		t.JobsCompleted.Inc()
		if res.Err != nil {
			t.JobsFailed.Inc()
		}
		t.JobSeconds.Observe(wall.Seconds())
		t.WorkerBusy.With(strconv.Itoa(worker)).Add(uint64(wall.Nanoseconds()))
		var cycles uint64
		if res.Res != nil {
			cycles = res.Res.Cycles
		}
		t.RecordJob(telemetry.JobRecord{
			Tag:       job.Tag,
			Seconds:   wall.Seconds(),
			SimCycles: cycles,
			Cached:    res.Cached,
			Failed:    res.Err != nil,
		})
	}
	if p.Progress != nil {
		status := ""
		switch {
		case res.Err != nil:
			status = " (error)"
		case res.Cached:
			status = " (cached)"
		}
		// Count and print under one lock so the [k/n] numbering matches
		// the line order even when workers finish simultaneously.
		p.mu.Lock()
		p.done++
		elapsed := time.Since(p.started)
		rate := 0.0
		if es := elapsed.Seconds(); es > 0 {
			rate = float64(p.done) / es
		}
		eta := "?"
		if rate > 0 {
			eta = time.Duration(float64(total-p.done) / rate * float64(time.Second)).
				Round(100 * time.Millisecond).String()
		}
		fmt.Fprintf(p.Progress, "[%d/%d] %s %s%s | %s elapsed, %.1f jobs/s, eta %s\n",
			p.done, total, job.Tag, wall.Round(time.Millisecond), status,
			elapsed.Round(100*time.Millisecond), rate, eta)
		p.mu.Unlock()
	}
	return res
}

// execJob executes one job: cache probe, simulate on miss, fill.
func (p *Pool) execJob(job *Job) Result {
	t := p.Telem
	if t != nil {
		// Attachment accounting: jobs carrying guest observability run
		// slower and bypass the cache, so they are tallied separately.
		if job.Cfg.Trace != nil {
			t.JobsTraced.Inc()
		}
		if job.Cfg.Metrics != nil {
			t.JobsSampled.Inc()
		}
		if job.Cfg.Prof != nil {
			t.JobsProfiled.Inc()
		}
		if job.Cfg.Check != nil {
			t.JobsChecked.Inc()
		}
	}
	var key string
	cacheable := p.Cache != nil && Cacheable(job)
	if cacheable {
		key = Key(job)
		res, ok, err := p.Cache.Get(key)
		if err != nil {
			if t != nil {
				t.CacheCorrupt.Inc()
			}
			return Result{Err: fmt.Errorf("runner: %s: cache read: %w", job.Tag, err)}
		}
		if t != nil {
			if ok {
				t.CacheHits.Inc()
			} else {
				t.CacheMisses.Inc()
			}
		}
		if ok {
			return Result{Res: res, Cached: true}
		}
	}
	w, err := job.Workload()
	if err != nil {
		return Result{Err: fmt.Errorf("runner: %s: %w", job.Tag, err)}
	}
	cfg := job.Cfg
	res, err := workload.Run(w, job.Arch, job.Model, &cfg)
	if t != nil {
		// Trace overhead accounting: when the job's tracer is a plain
		// ring, fold its emit/drop totals into the campaign counters.
		if ring, ok := job.Cfg.Trace.(*obsv.Ring); ok && ring != nil {
			t.TraceEvents.Add(ring.Emitted())
			t.TraceDropped.Add(ring.Dropped())
		}
	}
	if err != nil {
		return Result{Err: fmt.Errorf("runner: %s: %w", job.Tag, err)}
	}
	if cacheable {
		if err := p.Cache.Put(key, res); err != nil {
			// A cache-write failure must not pass silently (the next
			// invocation would quietly re-simulate), but the computed
			// result is still good; hand both back.
			return Result{Res: res, Err: fmt.Errorf("runner: %s: cache write: %w", job.Tag, err)}
		}
	}
	return Result{Res: res}
}

// FirstErr returns the first job error in job order, or nil. Drivers
// use it to turn any failed or unfillable cell into a non-zero exit.
func FirstErr(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
