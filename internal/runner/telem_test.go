package runner

// Pool telemetry tests: counter bookkeeping across cached and
// simulated jobs, reconciliation between the scheduler counters and
// the merged results, output-neutrality of enabled telemetry, and the
// upgraded progress line format.

import (
	"bytes"
	"reflect"
	"regexp"
	"testing"

	"cmpsim/internal/telemetry"
)

// TestPoolTelemetryCounts runs the quick grid twice against one cache
// and checks every pool counter: the first pass is all misses, the
// second all hits, and the scheduler's ticked+skipped cycles reconcile
// with the cycle counts of the simulated (non-cached) results.
func TestPoolTelemetryCounts(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.New()
	jobs := smallGrid()
	for i := range jobs {
		jobs[i].Cfg.Telem = set.Sim
	}
	pool := &Pool{Workers: 4, Cache: cache, Telem: set.Runner}

	first := pool.Run(jobs)
	if err := FirstErr(first); err != nil {
		t.Fatal(err)
	}
	n := uint64(len(jobs))
	if got := set.Runner.CacheMisses.Value(); got != n {
		t.Errorf("first pass: CacheMisses = %d, want %d", got, n)
	}
	if got := set.Runner.CacheHits.Value(); got != 0 {
		t.Errorf("first pass: CacheHits = %d, want 0", got)
	}
	var simulated uint64
	for _, r := range first {
		simulated += r.Res.Cycles
	}
	if got := set.Sim.Cycles(); got != simulated {
		t.Errorf("scheduler cycles %d != sum of simulated results %d", got, simulated)
	}

	second := pool.Run(jobs)
	if err := FirstErr(second); err != nil {
		t.Fatal(err)
	}
	if got := set.Runner.CacheHits.Value(); got != n {
		t.Errorf("second pass: CacheHits = %d, want %d", got, n)
	}
	if got := set.Sim.Cycles(); got != simulated {
		t.Errorf("cached pass advanced scheduler cycles: %d != %d", got, simulated)
	}
	if got := set.Runner.JobsTotal.Value(); got != 2*n {
		t.Errorf("JobsTotal = %d, want %d", got, 2*n)
	}
	if got := set.Runner.JobsCompleted.Value(); got != 2*n {
		t.Errorf("JobsCompleted = %d, want %d", got, 2*n)
	}
	if got := set.Runner.JobsStarted.Value(); got != 2*n {
		t.Errorf("JobsStarted = %d, want %d", got, 2*n)
	}
	if got := set.Runner.JobsFailed.Value(); got != 0 {
		t.Errorf("JobsFailed = %d, want 0", got)
	}
	if got := set.Runner.QueueDepth.Value(); got != 0 {
		t.Errorf("QueueDepth = %d, want 0 after both runs drained", got)
	}
	if got := set.Runner.JobSeconds.Count(); got != 2*n {
		t.Errorf("JobSeconds.Count = %d, want %d", got, 2*n)
	}
	recs := set.Runner.Jobs()
	if uint64(len(recs)) != 2*n {
		t.Fatalf("job records = %d, want %d", len(recs), 2*n)
	}
	var cached int
	for _, r := range recs {
		if r.Cached {
			cached++
		}
	}
	if uint64(cached) != n {
		t.Errorf("cached job records = %d, want %d", cached, n)
	}
}

// TestTelemetryDoesNotChangeResults pins the host-telemetry contract:
// an instrumented run returns bit-identical results to a bare one.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	bare := (&Pool{Workers: 2}).Run(smallGrid())

	set := telemetry.New()
	jobs := smallGrid()
	for i := range jobs {
		jobs[i].Cfg.Telem = set.Sim
	}
	instrumented := (&Pool{Workers: 2, Telem: set.Runner}).Run(jobs)

	if len(bare) != len(instrumented) {
		t.Fatalf("result counts differ: %d vs %d", len(bare), len(instrumented))
	}
	for i := range bare {
		if !reflect.DeepEqual(bare[i].Res, instrumented[i].Res) {
			t.Errorf("job %d: telemetry changed the simulation result", i)
		}
	}
}

// TestProgressLineFormat pins the upgraded progress line: per-job wall
// clock plus campaign elapsed time, completion rate and ETA.
func TestProgressLineFormat(t *testing.T) {
	var buf bytes.Buffer
	pool := &Pool{Workers: 2, Progress: &buf}
	if err := FirstErr(pool.Run(smallGrid()[:2])); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	re := regexp.MustCompile(`^\[\d/2\] \S+ [0-9.]+m?s \| [0-9.]+m?s elapsed, \d+\.\d jobs/s, eta \S+$`)
	for _, line := range lines {
		if !re.Match(line) {
			t.Errorf("progress line %q does not match %v", line, re)
		}
	}
}
