package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

// SimVersion stamps every cache key. Bump it whenever a change can
// alter simulated timing or statistics for an unchanged configuration
// — memory-system or CPU-model behavior, workload construction
// (including the NewQuick parameter table), or stall attribution —
// so stale entries from older simulator revisions can never be
// returned as current results.
const SimVersion = 1

// Cacheable reports whether a job's result may be memoized: it needs a
// workload identity and a configuration whose non-scalar fields are
// all nil (runtime attachments are excluded from the fingerprint, and
// a SharedData classifier cannot be hashed).
func Cacheable(job *Job) bool {
	return job.WorkloadKey != "" &&
		job.Cfg.Trace == nil &&
		job.Cfg.Metrics == nil &&
		job.Cfg.Check == nil &&
		job.Cfg.Prof == nil &&
		job.Cfg.HostProf == nil &&
		job.Cfg.SharedData == nil
}

// Key returns the cache key of a job: a hex SHA-256 over the sim
// version, the workload identity, the architecture, the CPU model and
// the canonical config fingerprint.
func Key(job *Job) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\x00%s\x00%s\x00%s\x00%s",
		SimVersion, job.WorkloadKey, job.Arch, job.Model, Fingerprint(&job.Cfg))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Fingerprint renders every scalar knob of a configuration as a
// canonical "Name=value;" list in declared field order. Walking the
// struct by reflection means a newly added knob changes the
// fingerprint (and so the cache key) automatically instead of aliasing
// against old entries. Func, pointer and interface fields — the
// runtime attachments Trace/Metrics/Check and the SharedData
// classifier — are skipped; Cacheable requires them nil. SimJobs,
// ShardLayout and AdaptWindow are skipped by name: the parallel
// scheduler reproduces the serial grant order exactly (output is
// byte-identical for any worker count, any CPU→worker assignment and
// either window policy, pinned by the parallel-identity tests), so a
// result computed under one host-scheduling configuration is the
// result under every one and sharding knobs must not fragment the
// cache.
func Fingerprint(cfg *memsys.Config) string {
	var sb strings.Builder
	v := reflect.ValueOf(*cfg)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		switch v.Field(i).Kind() {
		case reflect.Func, reflect.Pointer, reflect.Interface:
			continue
		}
		switch t.Field(i).Name {
		case "SimJobs", "ShardLayout", "AdaptWindow":
			continue // output-neutral host-parallelism knobs (see doc comment)
		}
		fmt.Fprintf(&sb, "%s=%v;", t.Field(i).Name, v.Field(i).Interface())
	}
	return sb.String()
}

// Cache is a directory of JSON-serialized run results, one file per
// key. Entries are written atomically (temp file + rename), so a
// parallel pool filling the same cell twice converges on one valid
// file and concurrent experiment invocations can safely share a
// directory.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a result cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk form: the sim-version stamp plus the run's
// cycle counts and statistics (the Metrics attachment is never cached
// — Cacheable excludes sampled runs).
type entry struct {
	SimVersion int             `json:"simVersion"`
	Result     *core.RunResult `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the result stored under key. A missing file is a plain
// miss; an unreadable or corrupt file is an error, so silent
// recomputation never masks a damaged cache.
func (c *Cache) Get(key string) (*core.RunResult, bool, error) {
	data, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, fmt.Errorf("corrupt cache entry %s (delete it to recompute): %w", c.path(key), err)
	}
	if e.SimVersion != SimVersion || e.Result == nil {
		return nil, false, nil // written by another simulator revision: miss
	}
	return e.Result, true, nil
}

// Put stores a result under key, atomically.
func (c *Cache) Put(key string, res *core.RunResult) error {
	saved := *res
	saved.Metrics = nil // runtime attachments, never part of a cached result
	saved.Profile = nil
	data, err := json.MarshalIndent(entry{SimVersion: SimVersion, Result: &saved}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
