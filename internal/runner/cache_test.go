package runner

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
)

// TestCacheHitAndKnobMiss is the cache contract: a second identical
// invocation is served from disk without simulating, and mutating any
// timing knob misses.
func TestCacheHitAndKnobMiss(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := &Pool{Workers: 1, Cache: cache}

	job := smallJob(core.SharedL1)
	first := pool.Run([]Job{job})[0]
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Cached {
		t.Error("first run reported Cached on a cold cache")
	}

	second := pool.Run([]Job{job})[0]
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Cached {
		t.Error("second identical run did not hit the cache")
	}
	if second.Res.Cycles != first.Res.Cycles ||
		!reflect.DeepEqual(second.Res.PerCPU, first.Res.PerCPU) ||
		!reflect.DeepEqual(second.Res.MemReport, first.Res.MemReport) {
		t.Error("cached result does not round-trip bit-identically")
	}

	mutated := job
	mutated.Cfg.MemLat = 200 // 4x the paper's memory latency: timing must move
	third := pool.Run([]Job{mutated})[0]
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if third.Cached {
		t.Error("mutated knob still hit the cache")
	}
	if third.Res.Cycles == first.Res.Cycles {
		t.Error("4x memory latency left the cycle count unchanged — cache key may be aliasing")
	}
}

// TestKeyDiscriminates pins the key construction: every identity
// component (workload, arch, model, any scalar knob) must change the
// key, while runtime attachments must not.
func TestKeyDiscriminates(t *testing.T) {
	base := smallJob(core.SharedL1)
	baseKey := Key(&base)

	vary := map[string]func(*Job){
		"workload": func(j *Job) { j.WorkloadKey = "other/params" },
		"arch":     func(j *Job) { j.Arch = core.SharedMem },
		"model":    func(j *Job) { j.Model = core.ModelMXS },
		"knob":     func(j *Job) { j.Cfg.MemLat = 51 },
		"cpus":     func(j *Job) { j.Cfg.NumCPUs = 8 },
	}
	for name, mutate := range vary {
		j := base
		mutate(&j)
		if Key(&j) == baseKey {
			t.Errorf("varying %s did not change the cache key", name)
		}
	}

	// Runtime attachments are not part of the key — but jobs carrying
	// them are declared uncacheable, so they can never alias.
	withRing := base
	withRing.Cfg.Trace = obsv.NewRing(8)
	if Key(&withRing) != baseKey {
		t.Error("tracer attachment changed the cache key")
	}
	if Cacheable(&withRing) {
		t.Error("job with a tracer must not be cacheable")
	}
	withMetrics := base
	withMetrics.Cfg.Metrics = obsv.NewMetrics(100)
	if Cacheable(&withMetrics) {
		t.Error("job with a metrics sampler must not be cacheable")
	}
	noKey := base
	noKey.WorkloadKey = ""
	if Cacheable(&noKey) {
		t.Error("job without a workload key must not be cacheable")
	}
	if !Cacheable(&base) {
		t.Error("plain job must be cacheable")
	}
}

// TestFingerprintCoversEveryScalarKnob guards the reflection walk: if
// a future Config field of scalar kind were skipped, two configs
// differing only in that knob would alias in the cache. Every field
// that is not a runtime attachment must appear by name.
func TestFingerprintCoversEveryScalarKnob(t *testing.T) {
	cfg := memsys.DefaultConfig()
	fp := Fingerprint(&cfg)
	typ := reflect.TypeOf(cfg)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch reflect.ValueOf(cfg).Field(i).Kind() {
		case reflect.Func, reflect.Pointer, reflect.Interface:
			if strings.Contains(fp, f.Name+"=") {
				t.Errorf("attachment field %s leaked into the fingerprint", f.Name)
			}
		default:
			switch f.Name {
			case "SimJobs", "ShardLayout", "AdaptWindow":
				// Output-neutral host-parallelism knobs: skipped by name so
				// sharded and serial runs share cache entries (see
				// Fingerprint's doc comment).
				if strings.Contains(fp, f.Name+"=") {
					t.Errorf("output-neutral knob %s leaked into the fingerprint", f.Name)
				}
				continue
			}
			if !strings.Contains(fp, f.Name+"=") {
				t.Errorf("scalar knob %s missing from the fingerprint", f.Name)
			}
		}
	}
}

// TestCorruptEntryIsAnError: a damaged cache file must surface as an
// explicit error, not silent recomputation (which would mask the
// damage forever).
func TestCorruptEntryIsAnError(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := smallJob(core.SharedL1)
	key := Key(&job)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Get(key); err == nil {
		t.Fatal("corrupt entry did not error")
	}
	res := (&Pool{Workers: 1, Cache: cache}).Run([]Job{job})[0]
	if res.Err == nil {
		t.Fatal("pool did not propagate the corrupt-cache error")
	}
}

// TestStaleSimVersionMisses: entries stamped by another simulator
// revision are ignored (a miss), never returned as current results.
func TestStaleSimVersionMisses(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := smallJob(core.SharedL1)
	key := Key(&job)
	stale := `{"simVersion": 0, "result": {"Arch": "shared-l1", "Cycles": 1}}`
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(stale), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cache.Get(key); err != nil || ok {
		t.Fatalf("stale entry: ok=%v err=%v, want miss without error", ok, err)
	}
}

// TestMetricsNeverCached: Put must strip the Metrics attachment so a
// cached result can never alias a sampler from another run.
func TestMetricsNeverCached(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &core.RunResult{Arch: core.SharedL1, Model: core.ModelMipsy, Cycles: 42,
		Metrics: obsv.NewMetrics(10)}
	if err := cache.Put("somekey", res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cache.Get("somekey")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Metrics != nil {
		t.Error("Metrics attachment survived the cache round-trip")
	}
	if got.Cycles != 42 || got.Arch != core.SharedL1 {
		t.Errorf("cached result corrupted: %+v", got)
	}
}
