package asm

import (
	"strings"
	"testing"

	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
)

func TestLabelsAndBranches(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.LI(R1, 10) // one instruction (fits imm16)
	b.Label("loop")
	b.ADDI(R1, R1, -1)
	b.BNEZ(R1, "loop")
	b.J("done")
	b.NOP()
	b.Label("done")
	b.HALT()

	p, err := b.Assemble(0x1000, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr("start") != 0x1000 {
		t.Errorf("start = %#x", p.Addr("start"))
	}
	if p.Addr("loop") != 0x1004 {
		t.Errorf("loop = %#x", p.Addr("loop"))
	}
	// BNEZ at index 2 targets index 1: imm = 1 - 2 - 1 = -2.
	if got := p.Insts[2].Imm; got != -2 {
		t.Errorf("branch imm = %d, want -2", got)
	}
	// J at index 3 targets "done" (index 5): absolute index (0x1000/4)+5.
	if got := p.Insts[3].Imm; got != int32(0x1000/4+5) {
		t.Errorf("jump imm = %d", got)
	}
}

func TestLIExpansions(t *testing.T) {
	cases := []struct {
		v     int32
		insts int
	}{
		{0, 1},
		{32767, 1},
		{-32768, 1},
		{32768, 2},      // LUI+ORI
		{0x70000, 1},    // LUI only (low half zero)
		{-1, 1},         // fits signed imm16 via ADDI
		{0x12345678, 2}, // LUI+ORI
	}
	for _, c := range cases {
		b := NewBuilder()
		b.LI(R1, c.v)
		b.HALT()
		p, err := b.Assemble(0, 0x1000)
		if err != nil {
			t.Fatalf("LI(%d): %v", c.v, err)
		}
		if got := len(p.Insts) - 1; got != c.insts {
			t.Errorf("LI(%d) used %d instructions, want %d", c.v, got, c.insts)
		}
	}
}

func TestLAResolvesDataLabel(t *testing.T) {
	b := NewBuilder()
	b.LA(R4, "table")
	b.HALT()
	b.DataLabel("table")
	b.Word32(1, 2, 3)

	p, err := b.Assemble(0x0, 0x20000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr("table") != 0x20000 {
		t.Fatalf("table = %#x", p.Addr("table"))
	}
	// LA expands to LUI (hi) + ORI (lo).
	if p.Insts[0].Op != isa.LUI || uint16(p.Insts[0].Imm) != 0x2 {
		t.Errorf("LUI = %v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.ORI || uint16(p.Insts[1].Imm) != 0x0 {
		t.Errorf("ORI = %v", p.Insts[1])
	}
}

func TestDataSection(t *testing.T) {
	b := NewBuilder()
	b.HALT()
	b.DataLabel("bytes")
	b.Zero(3)
	b.AlignData(4) // labels mark the current position, so align first
	b.DataLabel("words")
	b.Word32(0xaabbccdd)
	b.AlignData(8)
	b.DataLabel("floats")
	b.Float64(1.5)
	b.WordSym("words")

	p, err := b.Assemble(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr("words")%4 != 0 {
		t.Errorf("words misaligned: %#x", p.Addr("words"))
	}
	if p.Addr("floats")%8 != 0 {
		t.Errorf("floats misaligned: %#x", p.Addr("floats"))
	}
	img := mem.NewImage(0x20000)
	p.Load(img, 0)
	if got := img.Read32(p.Addr("words")); got != 0xaabbccdd {
		t.Errorf("words = %#x", got)
	}
	if got := img.ReadF64(p.Addr("floats")); got != 1.5 {
		t.Errorf("floats = %v", got)
	}
	// The WordSym cell holds the address of "words".
	symCell := p.Addr("floats") + 8
	if got := img.Read32(symCell); got != p.Addr("words") {
		t.Errorf("WordSym cell = %#x, want %#x", got, p.Addr("words"))
	}
}

func TestAssembleErrors(t *testing.T) {
	check := func(name string, build func(b *Builder), wantSub string) {
		b := NewBuilder()
		build(b)
		_, err := b.Assemble(0, 0x1000)
		if err == nil {
			t.Errorf("%s: expected error", name)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	check("undefined label", func(b *Builder) { b.J("nowhere") }, "undefined label")
	check("duplicate label", func(b *Builder) { b.Label("x"); b.Label("x") }, "duplicate")
	check("duplicate across sections", func(b *Builder) { b.Label("x"); b.DataLabel("x") }, "duplicate")
	check("imm overflow", func(b *Builder) { b.ADDI(R1, R0, 40000) }, "16-bit")
	check("bad prologue", func(b *Builder) { b.Prologue(12) }, "multiple of 8")
	check("bad align", func(b *Builder) { b.AlignData(3) }, "power of two")

	b := NewBuilder()
	b.NOP()
	if _, err := b.Assemble(2, 0x1000); err == nil {
		t.Error("unaligned text base: expected error")
	}
	b2 := NewBuilder()
	b2.NOP()
	b2.NOP()
	if _, err := b2.Assemble(0, 4); err == nil {
		t.Error("data overlapping text: expected error")
	}
}

func TestEncodedWordsMatchInsts(t *testing.T) {
	b := NewBuilder()
	b.Label("f")
	b.Prologue(16)
	b.ADDI(R8, R0, 5)
	b.JAL("f")
	b.Epilogue(16)
	p, err := b.Assemble(0x4000, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("inst %d: %v", i, err)
		}
		if in != p.Insts[i] {
			t.Errorf("inst %d: decoded %v, assembled %v", i, in, p.Insts[i])
		}
	}
}

func TestProgramLoadWithBias(t *testing.T) {
	b := NewBuilder()
	b.LI(R1, 7)
	b.HALT()
	b.DataLabel("d")
	b.Word32(99)
	p := b.MustAssemble(0, 0x100)

	img := mem.NewImage(0x10000)
	const bias = 0x4000
	p.Load(img, bias)
	// Text loaded at bias.
	in, err := isa.Decode(isa.Word(img.Read32(bias)))
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.ADDI || in.Imm != 7 {
		t.Errorf("first inst = %v", in)
	}
	if got := img.Read32(bias + 0x100); got != 99 {
		t.Errorf("data at bias = %d", got)
	}
}

func TestLabelsListing(t *testing.T) {
	b := NewBuilder()
	b.Label("zz")
	b.NOP()
	b.DataLabel("aa")
	p := b.MustAssemble(0, 0x1000)
	labels := p.Labels()
	if len(labels) != 2 || labels[0] != "aa" || labels[1] != "zz" {
		t.Errorf("Labels = %v", labels)
	}
	if !p.HasLabel("zz") || p.HasLabel("qq") {
		t.Error("HasLabel wrong")
	}
}

func TestTextEndDataEnd(t *testing.T) {
	b := NewBuilder()
	b.NOP()
	b.NOP()
	b.Zero(10)
	p := b.MustAssemble(0x1000, 0x2000)
	if p.TextEnd() != 0x1008 {
		t.Errorf("TextEnd = %#x", p.TextEnd())
	}
	if p.DataEnd() != 0x200a {
		t.Errorf("DataEnd = %#x", p.DataEnd())
	}
}

func TestListingAnnotatesLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.LI(R1, 1)
	b.Label("loop")
	b.ADDI(R1, R1, -1)
	b.BNEZ(R1, "loop")
	b.HALT()
	p := b.MustAssemble(0x1000, 0x2000)
	l := p.Listing()
	for _, want := range []string{"start:", "loop:", "00001000:", "halt"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	// Data labels must not appear in the text listing.
	b2 := NewBuilder()
	b2.Label("t")
	b2.NOP()
	b2.DataLabel("d")
	b2.Word32(1)
	if l2 := b2.MustAssemble(0, 0x1000).Listing(); strings.Contains(l2, "d:") {
		t.Errorf("data label leaked into the text listing:\n%s", l2)
	}
}

func TestSymbols(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.NOP()
	b.Label("body")
	b.Label("body2") // alias at the same address
	b.NOP()
	b.NOP()
	b.HALT()
	b.DataLabel("tbl")
	b.Zero(8)
	b.DataLabel("end")
	b.Word32(7)
	p := b.MustAssemble(0x1000, 0x2000)
	syms := p.Symbols()
	want := []Symbol{
		{Name: "start", Start: 0x1000, End: 0x1004, Text: true},
		{Name: "body", Start: 0x1004, End: 0x1010, Text: true},
		{Name: "body2", Start: 0x1004, End: 0x1010, Text: true},
		{Name: "tbl", Start: 0x2000, End: 0x2008, Text: false},
		{Name: "end", Start: 0x2008, End: 0x200c, Text: false},
	}
	if len(syms) != len(want) {
		t.Fatalf("Symbols() = %v, want %v", syms, want)
	}
	for i, w := range want {
		if syms[i] != w {
			t.Errorf("Symbols()[%d] = %v, want %v", i, syms[i], w)
		}
	}
}
