// Package asm is an embedded macro-assembler for KRISC. Guest programs
// (the benchmark kernels, the guest runtime library and the miniature
// kernel) are written against the Builder API from Go code, assembled
// into a Program, and loaded into the simulated physical memory.
//
// The assembler supports labels in a single flat namespace across the
// text and data sections, PC-relative branch fixups, absolute jump
// fixups, and LA/LI pseudo-instructions that expand to LUI+ORI pairs.
package asm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
)

// Reg names an integer register. FReg names a floating-point register.
type Reg = uint8
type FReg = uint8

// Integer register names. R0 is hardwired zero; SP, RA, RV and A0..A3
// follow the KRISC ABI.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// ABI aliases.
const (
	RV Reg = isa.RegRV   // return value
	A0 Reg = isa.RegArg0 // arguments
	A1 Reg = isa.RegArg1
	A2 Reg = isa.RegArg2
	A3 Reg = isa.RegArg3
	SP Reg = isa.RegSP
	RA Reg = isa.RegRA
)

// FP register names.
const (
	F0 FReg = iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

type fixupKind uint8

const (
	fixBranch fixupKind = iota // I-format imm <- target - (pc+1), instruction units
	fixJump                    // J-format imm <- absolute instruction index of target
	fixLUI                     // imm <- high 16 bits of target byte address
	fixORI                     // imm <- low 16 bits of target byte address
)

type fixup struct {
	inst  int // index into text
	label string
	kind  fixupKind
}

type symbol struct {
	text  bool // text label (value = instruction index) vs data (byte offset)
	value uint32
}

// Builder accumulates a guest program. Create with NewBuilder, emit
// instructions and data, then call Assemble.
type Builder struct {
	text     []isa.Inst
	data     []byte
	syms     map[string]symbol
	fixups   []fixup
	dataSyms []fixup // data words holding a label's final address
	errs     []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{syms: make(map[string]symbol)}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Label defines a text label at the current instruction position.
func (b *Builder) Label(name string) {
	if _, dup := b.syms[name]; dup {
		b.errorf("asm: duplicate label %q", name)
		return
	}
	b.syms[name] = symbol{text: true, value: uint32(len(b.text))}
}

// PC returns the current instruction index (useful for size accounting).
func (b *Builder) PC() int { return len(b.text) }

func (b *Builder) emit(in isa.Inst) {
	b.text = append(b.text, in)
}

func (b *Builder) emitFixup(in isa.Inst, label string, kind fixupKind) {
	b.fixups = append(b.fixups, fixup{inst: len(b.text), label: label, kind: kind})
	b.emit(in)
}

// --- Integer register-register ---

func (b *Builder) ADD(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.ADD, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SUB(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.SUB, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) MUL(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.MUL, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) DIV(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.DIV, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) REM(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.REM, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) AND(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.AND, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) OR(rd, rs, rt Reg)   { b.emit(isa.Inst{Op: isa.OR, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) XOR(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.XOR, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) NOR(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.NOR, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SLL(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.SLL, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SRL(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.SRL, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SRA(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.SRA, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SLT(rd, rs, rt Reg)  { b.emit(isa.Inst{Op: isa.SLT, R1: rd, R2: rs, R3: rt}) }
func (b *Builder) SLTU(rd, rs, rt Reg) { b.emit(isa.Inst{Op: isa.SLTU, R1: rd, R2: rs, R3: rt}) }

// --- Integer register-immediate ---

func (b *Builder) immI(op isa.Op, rt, rs Reg, imm int32) {
	if imm < -32768 || imm > 32767 {
		b.errorf("asm: %v immediate %d out of 16-bit range", op, imm)
	}
	b.emit(isa.Inst{Op: op, R1: rt, R2: rs, Imm: imm})
}

func (b *Builder) ADDI(rt, rs Reg, imm int32) { b.immI(isa.ADDI, rt, rs, imm) }
func (b *Builder) SLTI(rt, rs Reg, imm int32) { b.immI(isa.SLTI, rt, rs, imm) }

// Logical immediates are zero-extended at execution; accept 0..0xffff.
func (b *Builder) logI(op isa.Op, rt, rs Reg, imm uint32) {
	if imm > 0xffff {
		b.errorf("asm: %v immediate %#x out of 16-bit range", op, imm)
	}
	b.emit(isa.Inst{Op: op, R1: rt, R2: rs, Imm: int32(int16(uint16(imm)))})
}

func (b *Builder) ANDI(rt, rs Reg, imm uint32) { b.logI(isa.ANDI, rt, rs, imm) }
func (b *Builder) ORI(rt, rs Reg, imm uint32)  { b.logI(isa.ORI, rt, rs, imm) }
func (b *Builder) XORI(rt, rs Reg, imm uint32) { b.logI(isa.XORI, rt, rs, imm) }

// LUI loads imm<<16 into rt.
func (b *Builder) LUI(rt Reg, imm uint32) { b.logI(isa.LUI, rt, 0, imm) }

// Shift-immediates use the low 5 bits of imm.
func (b *Builder) SLLI(rt, rs Reg, sh uint8) {
	b.emit(isa.Inst{Op: isa.SLLI, R1: rt, R2: rs, Imm: int32(sh & 31)})
}
func (b *Builder) SRLI(rt, rs Reg, sh uint8) {
	b.emit(isa.Inst{Op: isa.SRLI, R1: rt, R2: rs, Imm: int32(sh & 31)})
}
func (b *Builder) SRAI(rt, rs Reg, sh uint8) {
	b.emit(isa.Inst{Op: isa.SRAI, R1: rt, R2: rs, Imm: int32(sh & 31)})
}

// --- Memory ---

func (b *Builder) memI(op isa.Op, r Reg, off int32, base Reg) {
	if off < -32768 || off > 32767 {
		b.errorf("asm: %v offset %d out of 16-bit range", op, off)
	}
	b.emit(isa.Inst{Op: op, R1: r, R2: base, Imm: off})
}

func (b *Builder) LW(rt Reg, off int32, base Reg)  { b.memI(isa.LW, rt, off, base) }
func (b *Builder) SW(rt Reg, off int32, base Reg)  { b.memI(isa.SW, rt, off, base) }
func (b *Builder) LB(rt Reg, off int32, base Reg)  { b.memI(isa.LB, rt, off, base) }
func (b *Builder) SB(rt Reg, off int32, base Reg)  { b.memI(isa.SB, rt, off, base) }
func (b *Builder) LD(ft FReg, off int32, base Reg) { b.memI(isa.LD, ft, off, base) }
func (b *Builder) SD(ft FReg, off int32, base Reg) { b.memI(isa.SD, ft, off, base) }
func (b *Builder) LL(rt Reg, off int32, base Reg)  { b.memI(isa.LL, rt, off, base) }
func (b *Builder) SC(rt Reg, off int32, base Reg)  { b.memI(isa.SC, rt, off, base) }

// --- Control flow ---

func (b *Builder) branch(op isa.Op, rs, rt Reg, label string) {
	b.emitFixup(isa.Inst{Op: op, R1: rs, R2: rt}, label, fixBranch)
}

// BEQ branches to label if rs == rt.
func (b *Builder) BEQ(rs, rt Reg, label string) { b.branch(isa.BEQ, rs, rt, label) }

// BNE branches to label if rs != rt.
func (b *Builder) BNE(rs, rt Reg, label string) { b.branch(isa.BNE, rs, rt, label) }

// BLT branches to label if rs < rt (signed).
func (b *Builder) BLT(rs, rt Reg, label string) { b.branch(isa.BLT, rs, rt, label) }

// BGE branches to label if rs >= rt (signed).
func (b *Builder) BGE(rs, rt Reg, label string) { b.branch(isa.BGE, rs, rt, label) }

// BGT and BLE are pseudo-branches synthesized by operand swap.
func (b *Builder) BGT(rs, rt Reg, label string) { b.branch(isa.BLT, rt, rs, label) }
func (b *Builder) BLE(rs, rt Reg, label string) { b.branch(isa.BGE, rt, rs, label) }

// BEQZ/BNEZ compare against r0.
func (b *Builder) BEQZ(rs Reg, label string) { b.BEQ(rs, R0, label) }
func (b *Builder) BNEZ(rs Reg, label string) { b.BNE(rs, R0, label) }

// J jumps unconditionally to label.
func (b *Builder) J(label string) { b.emitFixup(isa.Inst{Op: isa.J}, label, fixJump) }

// JAL calls label, leaving the return address in RA.
func (b *Builder) JAL(label string) { b.emitFixup(isa.Inst{Op: isa.JAL}, label, fixJump) }

// JR jumps to the address in rs.
func (b *Builder) JR(rs Reg) { b.emit(isa.Inst{Op: isa.JR, R2: rs}) }

// JALR calls the address in rs, leaving the return address in rd.
func (b *Builder) JALR(rd, rs Reg) { b.emit(isa.Inst{Op: isa.JALR, R1: rd, R2: rs}) }

// RET returns via RA.
func (b *Builder) RET() { b.JR(RA) }

// --- Floating point ---

func (b *Builder) fp3(op isa.Op, fd, fs, ft FReg) {
	b.emit(isa.Inst{Op: op, R1: fd, R2: fs, R3: ft})
}

func (b *Builder) FADDS(fd, fs, ft FReg) { b.fp3(isa.FADDS, fd, fs, ft) }
func (b *Builder) FSUBS(fd, fs, ft FReg) { b.fp3(isa.FSUBS, fd, fs, ft) }
func (b *Builder) FMULS(fd, fs, ft FReg) { b.fp3(isa.FMULS, fd, fs, ft) }
func (b *Builder) FDIVS(fd, fs, ft FReg) { b.fp3(isa.FDIVS, fd, fs, ft) }
func (b *Builder) FADDD(fd, fs, ft FReg) { b.fp3(isa.FADDD, fd, fs, ft) }
func (b *Builder) FSUBD(fd, fs, ft FReg) { b.fp3(isa.FSUBD, fd, fs, ft) }
func (b *Builder) FMULD(fd, fs, ft FReg) { b.fp3(isa.FMULD, fd, fs, ft) }
func (b *Builder) FDIVD(fd, fs, ft FReg) { b.fp3(isa.FDIVD, fd, fs, ft) }
func (b *Builder) FMOV(fd, fs FReg)      { b.emit(isa.Inst{Op: isa.FMOV, R1: fd, R2: fs}) }
func (b *Builder) FNEG(fd, fs FReg)      { b.emit(isa.Inst{Op: isa.FNEG, R1: fd, R2: fs}) }

// FP compares write 0/1 into an integer register.
func (b *Builder) FEQ(rd Reg, fs, ft FReg) { b.emit(isa.Inst{Op: isa.FEQ, R1: rd, R2: fs, R3: ft}) }
func (b *Builder) FLT(rd Reg, fs, ft FReg) { b.emit(isa.Inst{Op: isa.FLT, R1: rd, R2: fs, R3: ft}) }
func (b *Builder) FLE(rd Reg, fs, ft FReg) { b.emit(isa.Inst{Op: isa.FLE, R1: rd, R2: fs, R3: ft}) }

// CVTIF converts the signed integer in rs to float64 in fd.
func (b *Builder) CVTIF(fd FReg, rs Reg) { b.emit(isa.Inst{Op: isa.CVTIF, R1: fd, R2: rs}) }

// CVTFI truncates the float64 in fs to a signed integer in rd.
func (b *Builder) CVTFI(rd Reg, fs FReg) { b.emit(isa.Inst{Op: isa.CVTFI, R1: rd, R2: fs}) }

// --- System ---

// SYSCALL traps into the guest kernel with the given call number.
func (b *Builder) SYSCALL(num int32) { b.emit(isa.Inst{Op: isa.SYSCALL, Imm: num}) }

// HALT stops this hardware context permanently.
func (b *Builder) HALT() { b.emit(isa.Inst{Op: isa.HALT}) }

// CPUID loads the physical CPU number into rd.
func (b *Builder) CPUID(rd Reg) { b.emit(isa.Inst{Op: isa.CPUID, R1: rd}) }

// --- Pseudo-instructions ---

// NOP emits add r0, r0, r0.
func (b *Builder) NOP() { b.emit(isa.Inst{Op: isa.ADD}) }

// MOVE copies rs to rd.
func (b *Builder) MOVE(rd, rs Reg) { b.ADD(rd, rs, R0) }

// LI loads a 32-bit constant, using one instruction when it fits in a
// signed 16-bit immediate and a LUI/ORI pair otherwise.
func (b *Builder) LI(rd Reg, v int32) {
	if v >= -32768 && v <= 32767 {
		b.ADDI(rd, R0, v)
		return
	}
	u := uint32(v)
	b.LUI(rd, u>>16)
	if lo := u & 0xffff; lo != 0 {
		b.ORI(rd, rd, lo)
	}
}

// LIU is LI for addresses and other unsigned quantities.
func (b *Builder) LIU(rd Reg, v uint32) { b.LI(rd, int32(v)) }

// LA loads the final address of label into rd. It always expands to a
// LUI/ORI pair so the fixup size is known before addresses are assigned.
func (b *Builder) LA(rd Reg, label string) {
	b.emitFixup(isa.Inst{Op: isa.LUI, R1: rd}, label, fixLUI)
	b.emitFixup(isa.Inst{Op: isa.ORI, R1: rd, R2: rd}, label, fixORI)
}

// Prologue opens a stack frame of n bytes (n must be a positive multiple
// of 8) and saves RA at the top of the frame.
func (b *Builder) Prologue(n int32) {
	if n <= 0 || n%8 != 0 {
		b.errorf("asm: prologue size %d must be a positive multiple of 8", n)
		return
	}
	b.ADDI(SP, SP, -n)
	b.SW(RA, n-4, SP)
}

// Epilogue restores RA, pops the frame opened by Prologue(n) and returns.
func (b *Builder) Epilogue(n int32) {
	b.LW(RA, n-4, SP)
	b.ADDI(SP, SP, n)
	b.RET()
}

// --- Data section ---

// DataLabel defines a label at the current data position.
func (b *Builder) DataLabel(name string) {
	if _, dup := b.syms[name]; dup {
		b.errorf("asm: duplicate label %q", name)
		return
	}
	b.syms[name] = symbol{text: false, value: uint32(len(b.data))}
}

// AlignData pads the data section to an n-byte boundary (n power of two).
func (b *Builder) AlignData(n uint32) {
	if n == 0 || n&(n-1) != 0 {
		b.errorf("asm: align %d not a power of two", n)
		return
	}
	for uint32(len(b.data))%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Word32 appends 32-bit little-endian words to the data section.
func (b *Builder) Word32(vs ...uint32) {
	b.AlignData(4)
	for _, v := range vs {
		b.data = append(b.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// WordSym appends a 32-bit word that will hold label's final address
// (for jump tables and function pointers).
func (b *Builder) WordSym(label string) {
	b.AlignData(4)
	b.dataSyms = append(b.dataSyms, fixup{inst: len(b.data), label: label})
	b.data = append(b.data, 0, 0, 0, 0)
}

// Float64 appends float64 values to the data section (8-byte aligned).
func (b *Builder) Float64(vs ...float64) {
	b.AlignData(8)
	for _, v := range vs {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b.data = append(b.data, byte(bits>>(8*i)))
		}
	}
}

// Zero appends n zero bytes (uninitialized storage).
func (b *Builder) Zero(n uint32) {
	b.data = append(b.data, make([]byte, n)...)
}

// DataSize returns the current size of the data section in bytes.
func (b *Builder) DataSize() uint32 { return uint32(len(b.data)) }

// --- Assembly ---

// Program is an assembled guest program ready to be loaded into memory.
type Program struct {
	TextBase uint32     // byte address of the first instruction
	DataBase uint32     // byte address of the data section
	Insts    []isa.Inst // decoded instructions, index = (pc-TextBase)/4
	Words    []isa.Word // encoded instructions, parallel to Insts
	Data     []byte     // initialized data section
	syms     map[string]uint32
}

// Assemble resolves all labels and fixups and produces a Program with
// the text section at textBase and data section at dataBase (both
// byte addresses; textBase must be 4-byte aligned, dataBase 8-byte).
func (b *Builder) Assemble(textBase, dataBase uint32) (*Program, error) {
	if textBase%4 != 0 {
		b.errorf("asm: text base %#x not 4-byte aligned", textBase)
	}
	if dataBase%8 != 0 {
		b.errorf("asm: data base %#x not 8-byte aligned", dataBase)
	}
	textEnd := uint64(textBase) + 4*uint64(len(b.text))
	if dataBase >= textBase && uint64(dataBase) < textEnd {
		b.errorf("asm: data base %#x overlaps text [%#x,%#x)", dataBase, textBase, textEnd)
	}

	addrOf := func(name string) (uint32, bool) {
		s, ok := b.syms[name]
		if !ok {
			return 0, false
		}
		if s.text {
			return textBase + 4*s.value, true
		}
		return dataBase + s.value, true
	}

	insts := make([]isa.Inst, len(b.text))
	copy(insts, b.text)

	for _, f := range b.fixups {
		target, ok := addrOf(f.label)
		if !ok {
			b.errorf("asm: undefined label %q", f.label)
			continue
		}
		switch f.kind {
		case fixBranch:
			off := int64(target-textBase)/4 - int64(f.inst) - 1
			if off < -32768 || off > 32767 {
				b.errorf("asm: branch to %q out of range (%d instructions)", f.label, off)
				continue
			}
			insts[f.inst].Imm = int32(off)
		case fixJump:
			idx := target / 4
			if idx >= 1<<26 {
				b.errorf("asm: jump target %q at %#x out of 26-bit range", f.label, target)
				continue
			}
			insts[f.inst].Imm = int32(idx)
		case fixLUI:
			insts[f.inst].Imm = int32(int16(uint16(target >> 16)))
		case fixORI:
			insts[f.inst].Imm = int32(int16(uint16(target)))
		}
	}

	data := make([]byte, len(b.data))
	copy(data, b.data)
	for _, f := range b.dataSyms {
		target, ok := addrOf(f.label)
		if !ok {
			b.errorf("asm: undefined label %q in data word", f.label)
			continue
		}
		data[f.inst] = byte(target)
		data[f.inst+1] = byte(target >> 8)
		data[f.inst+2] = byte(target >> 16)
		data[f.inst+3] = byte(target >> 24)
	}

	if len(b.errs) > 0 {
		// Report deterministically: first error plus count.
		return nil, fmt.Errorf("asm: %d error(s); first: %w", len(b.errs), b.errs[0])
	}

	words := make([]isa.Word, len(insts))
	for i, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("asm: instruction %d (%v): %w", i, in, err)
		}
		words[i] = w
	}

	syms := make(map[string]uint32, len(b.syms))
	for name := range b.syms {
		a, _ := addrOf(name)
		syms[name] = a
	}

	return &Program{
		TextBase: textBase,
		DataBase: dataBase,
		Insts:    insts,
		Words:    words,
		Data:     data,
		syms:     syms,
	}, nil
}

// MustAssemble is Assemble but panics on error, for use by the built-in
// workloads whose programs are fixed at build time.
func (b *Builder) MustAssemble(textBase, dataBase uint32) *Program {
	p, err := b.Assemble(textBase, dataBase)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the resolved byte address of a label, panicking if the
// label does not exist (assembly already validated all references).
func (p *Program) Addr(label string) uint32 {
	a, ok := p.syms[label]
	if !ok {
		panic(fmt.Sprintf("asm: no such label %q", label))
	}
	return a
}

// HasLabel reports whether the program defines label.
func (p *Program) HasLabel(label string) bool {
	_, ok := p.syms[label]
	return ok
}

// Labels returns all label names in sorted order.
func (p *Program) Labels() []string {
	out := make([]string, 0, len(p.syms))
	for name := range p.syms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Symbol is one resolved label with the address range it covers:
// [Start, End) runs from the label to the next label in the same
// section (or the section's end). Text labels cover code — function
// entries and branch targets alike — and data labels cover variables
// and arrays, so a profiler or disassembler can map any address back
// to the nearest preceding label.
type Symbol struct {
	Name  string
	Start uint32 // resolved byte address of the label
	End   uint32 // first byte address past the symbol's range
	Text  bool   // text-section label (code) vs data-section label
}

// Symbols returns the program's symbol table sorted by Start then
// Name. Labels sharing an address (aliases) each get the full range
// to the next distinct label address.
func (p *Program) Symbols() []Symbol {
	syms := make([]Symbol, 0, len(p.syms))
	for name, addr := range p.syms {
		text := addr >= p.TextBase && addr < p.TextEnd()
		syms = append(syms, Symbol{Name: name, Start: addr, Text: text})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Start != syms[j].Start {
			return syms[i].Start < syms[j].Start
		}
		return syms[i].Name < syms[j].Name
	})
	// End of each symbol = next distinct label address in its section,
	// else the section end.
	for i := range syms {
		end := p.DataEnd()
		if syms[i].Text {
			end = p.TextEnd()
		}
		for j := i + 1; j < len(syms); j++ {
			if syms[j].Text == syms[i].Text && syms[j].Start > syms[i].Start {
				end = syms[j].Start
				break
			}
		}
		syms[i].End = end
	}
	return syms
}

// Listing renders the text section as an annotated disassembly:
// addresses, label definitions, and one instruction per line.
func (p *Program) Listing() string {
	labelsAt := make(map[uint32][]string)
	for name, addr := range p.syms {
		if addr >= p.TextBase && addr < p.TextEnd() {
			labelsAt[addr] = append(labelsAt[addr], name)
		}
	}
	for _, ls := range labelsAt {
		sort.Strings(ls)
	}
	var sb strings.Builder
	for i, in := range p.Insts {
		addr := p.TextBase + 4*uint32(i)
		for _, l := range labelsAt[addr] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "  %08x:  %s\n", addr, in)
	}
	return sb.String()
}

// TextEnd returns the first byte address past the text section.
func (p *Program) TextEnd() uint32 { return p.TextBase + 4*uint32(len(p.Insts)) }

// DataEnd returns the first byte address past the data section.
func (p *Program) DataEnd() uint32 { return p.DataBase + uint32(len(p.Data)) }

// Load writes the encoded text and the data section into the image at
// physBias plus the program's bases. physBias is 0 when the program's
// addresses are physical (identity-mapped workloads); for relocated
// processes it is the process's user segment base.
func (p *Program) Load(img *mem.Image, physBias uint32) {
	p.LoadText(img, physBias)
	for i, by := range p.Data {
		img.Write8(physBias+p.DataBase+uint32(i), by)
	}
}

// LoadText writes only the encoded text at physBias+TextBase — for
// processes that share one physical text image but have private data
// segments.
func (p *Program) LoadText(img *mem.Image, physBias uint32) {
	for i, w := range p.Words {
		img.Write32(physBias+p.TextBase+4*uint32(i), uint32(w))
	}
}

// LoadDataAt writes only the data section, placing its first byte at the
// given physical address (for per-process private data segments).
func (p *Program) LoadDataAt(img *mem.Image, physBase uint32) {
	for i, by := range p.Data {
		img.Write8(physBase+uint32(i), by)
	}
}
