package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFIFOWithinCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(10, func(uint64) { got = append(got, i) })
	}
	q.RunUntil(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v, want FIFO", got)
		}
	}
}

func TestRunUntilBound(t *testing.T) {
	var q Queue
	fired := map[uint64]bool{}
	for _, c := range []uint64{5, 10, 15} {
		c := c
		q.Schedule(c, func(at uint64) {
			if at != c {
				t.Errorf("fired at %d, scheduled %d", at, c)
			}
			fired[c] = true
		})
	}
	q.RunUntil(10)
	if !fired[5] || !fired[10] || fired[15] {
		t.Errorf("fired = %v", fired)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	if next, ok := q.NextCycle(); !ok || next != 15 {
		t.Errorf("NextCycle = %d,%v", next, ok)
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var q Queue
	var trace []uint64
	q.Schedule(1, func(at uint64) {
		trace = append(trace, at)
		q.Schedule(2, func(at2 uint64) { trace = append(trace, at2) })
	})
	q.RunUntil(3)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 2 {
		t.Errorf("trace = %v", trace)
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if _, ok := q.NextCycle(); ok {
		t.Error("NextCycle on empty queue should report !ok")
	}
	q.RunUntil(100) // must not panic
}

func TestQuickFiresInCycleOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var cycles []uint64
		var fired []uint64
		n := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			c := uint64(r.Intn(100))
			cycles = append(cycles, c)
			q.Schedule(c, func(at uint64) { fired = append(fired, at) })
		}
		q.RunUntil(1000)
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		if len(fired) != len(cycles) {
			return false
		}
		for i := range fired {
			if fired[i] != cycles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNextCycleTracksHead pins NextCycle across schedules and drains:
// it must always report the earliest pending cycle, including after
// out-of-order scheduling and partial drains.
func TestNextCycleTracksHead(t *testing.T) {
	var q Queue
	nop := Func(func(uint64) {})
	q.Schedule(30, nop)
	if c, ok := q.NextCycle(); !ok || c != 30 {
		t.Fatalf("NextCycle = %d,%v, want 30,true", c, ok)
	}
	q.Schedule(10, nop) // earlier event must take the head
	if c, ok := q.NextCycle(); !ok || c != 10 {
		t.Fatalf("NextCycle = %d,%v, want 10,true", c, ok)
	}
	q.Schedule(20, nop)
	q.RunUntil(10)
	if c, ok := q.NextCycle(); !ok || c != 20 {
		t.Fatalf("NextCycle after drain = %d,%v, want 20,true", c, ok)
	}
	q.RunUntil(30)
	if _, ok := q.NextCycle(); ok {
		t.Fatal("NextCycle on drained queue should report !ok")
	}
}

// TestNextCycleSeesRescheduledEvents pins the property the
// quiescence-skipping scheduler depends on: after an event at cycle N
// schedules a follow-up at N+k, NextCycle immediately reports N+k, so
// the cycle loop can never jump over a chain of self-rescheduling
// events (the guest kernel's preemption timers are exactly this shape).
func TestNextCycleSeesRescheduledEvents(t *testing.T) {
	var q Queue
	var fired []uint64
	var tick Func
	tick = func(at uint64) {
		fired = append(fired, at)
		if at < 50 {
			q.Schedule(at+10, tick)
		}
	}
	q.Schedule(10, tick)
	for cyc := uint64(0); cyc <= 60; cyc++ {
		q.RunUntil(cyc)
		if next, ok := q.NextCycle(); ok && next <= cyc {
			t.Fatalf("NextCycle = %d at cycle %d: pending past event", next, cyc)
		}
	}
	want := []uint64{10, 20, 30, 40, 50}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestScheduleSteadyStateZeroAllocs is the satellite acceptance gate
// for the typed heap: once the backing array has reached its high-water
// mark, the Schedule → RunUntil steady state performs no allocations
// (container/heap's Push boxed every item into an interface value).
func TestScheduleSteadyStateZeroAllocs(t *testing.T) {
	var q Queue
	nop := Func(func(uint64) {})
	// Warm the backing array past any size this loop reaches.
	for i := 0; i < 64; i++ {
		q.Schedule(uint64(i), nop)
	}
	q.RunUntil(64)
	cycle := uint64(100)
	allocs := testing.AllocsPerRun(1000, func() {
		q.Schedule(cycle, nop)
		q.Schedule(cycle+3, nop)
		q.RunUntil(cycle + 1)
		q.RunUntil(cycle + 3)
		cycle += 4
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule/RunUntil = %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkQueueScheduleRun measures the steady-state scheduler path:
// one timer-style reschedule plus drain per op, the pattern the guest
// kernel's preemption timers generate. Must report 0 allocs/op.
func BenchmarkQueueScheduleRun(b *testing.B) {
	var q Queue
	nop := Func(func(uint64) {})
	for i := 0; i < 8; i++ {
		q.Schedule(uint64(i), nop)
	}
	q.RunUntil(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uint64(i)
		q.Schedule(c+4, nop)
		q.Schedule(c+2, nop)
		q.RunUntil(c)
	}
}
