package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFIFOWithinCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(10, func(uint64) { got = append(got, i) })
	}
	q.RunUntil(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v, want FIFO", got)
		}
	}
}

func TestRunUntilBound(t *testing.T) {
	var q Queue
	fired := map[uint64]bool{}
	for _, c := range []uint64{5, 10, 15} {
		c := c
		q.Schedule(c, func(at uint64) {
			if at != c {
				t.Errorf("fired at %d, scheduled %d", at, c)
			}
			fired[c] = true
		})
	}
	q.RunUntil(10)
	if !fired[5] || !fired[10] || fired[15] {
		t.Errorf("fired = %v", fired)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	if next, ok := q.NextCycle(); !ok || next != 15 {
		t.Errorf("NextCycle = %d,%v", next, ok)
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var q Queue
	var trace []uint64
	q.Schedule(1, func(at uint64) {
		trace = append(trace, at)
		q.Schedule(2, func(at2 uint64) { trace = append(trace, at2) })
	})
	q.RunUntil(3)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 2 {
		t.Errorf("trace = %v", trace)
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if _, ok := q.NextCycle(); ok {
		t.Error("NextCycle on empty queue should report !ok")
	}
	q.RunUntil(100) // must not panic
}

func TestQuickFiresInCycleOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var cycles []uint64
		var fired []uint64
		n := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			c := uint64(r.Intn(100))
			cycles = append(cycles, c)
			q.Schedule(c, func(at uint64) { fired = append(fired, at) })
		}
		q.RunUntil(1000)
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		if len(fired) != len(cycles) {
			return false
		}
		for i := range fired {
			if fired[i] != cycles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
