// Package event provides the cycle-based discrete-event calendar used by
// the memory system and the top-level simulator loop. Events scheduled
// for the same cycle fire in FIFO order, which keeps the whole simulation
// deterministic.
package event

// Func is an event callback; it receives the cycle at which it fires.
type Func func(cycle uint64)

type item struct {
	cycle uint64
	seq   uint64
	fn    Func
}

// Queue is a calendar of future events. The zero value is ready to use.
//
// The heap is maintained with typed sift-up/sift-down rather than
// container/heap: heap.Push boxes every item into an interface value,
// which costs one allocation per Schedule on what is a steady-state
// scheduler path (the guest kernel re-arms a preemption timer from
// inside every timer event). With the typed form the backing array is
// reused once it reaches its high-water mark, so Schedule/RunUntil run
// at 0 allocs/op (pinned by TestScheduleSteadyStateZeroAllocs).
type Queue struct {
	h   []item
	seq uint64
}

// less orders the heap by cycle, then FIFO by schedule order.
func (q *Queue) less(i, j int) bool {
	if q.h[i].cycle != q.h[j].cycle {
		return q.h[i].cycle < q.h[j].cycle
	}
	return q.h[i].seq < q.h[j].seq
}

// Schedule registers fn to fire at the given cycle.
func (q *Queue) Schedule(cycle uint64, fn Func) {
	q.seq++
	//simlint:allow hotalloc — amortized into the reused backing array; 0 allocs/op at steady state
	q.h = append(q.h, item{cycle: cycle, seq: q.seq, fn: fn})
	for i := len(q.h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// pop removes and returns the earliest item. The vacated tail slot is
// zeroed so the heap does not pin the fired callback for the GC.
func (q *Queue) pop() item {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = item{}
	q.h = q.h[:n]
	for i := 0; ; {
		smallest := i
		if l := 2*i + 1; l < n && q.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return top
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event. The
// quiescence-skipping scheduler uses it as one of the bounds the cycle
// loop may not jump over.
func (q *Queue) NextCycle() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].cycle, true
}

// RunUntil fires, in order, every event scheduled at or before cycle.
// Events may schedule further events; those fire too if they fall within
// the bound.
func (q *Queue) RunUntil(cycle uint64) {
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		it := q.pop()
		it.fn(it.cycle)
	}
}
