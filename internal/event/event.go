// Package event provides the cycle-based discrete-event calendar used by
// the memory system and the top-level simulator loop. Events scheduled
// for the same cycle fire in FIFO order, which keeps the whole simulation
// deterministic.
package event

import "container/heap"

// Func is an event callback; it receives the cycle at which it fires.
type Func func(cycle uint64)

type item struct {
	cycle uint64
	seq   uint64
	fn    Func
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Queue is a calendar of future events. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Schedule registers fn to fire at the given cycle.
func (q *Queue) Schedule(cycle uint64, fn Func) {
	q.seq++
	heap.Push(&q.h, item{cycle: cycle, seq: q.seq, fn: fn})
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event.
func (q *Queue) NextCycle() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].cycle, true
}

// RunUntil fires, in order, every event scheduled at or before cycle.
// Events may schedule further events; those fire too if they fall within
// the bound.
func (q *Queue) RunUntil(cycle uint64) {
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		it := heap.Pop(&q.h).(item)
		it.fn(it.cycle)
	}
}
