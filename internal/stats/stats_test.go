package stats

import (
	"strings"
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/memsys"
)

func fakeRun(arch core.Arch, cycles uint64, perCPU []cpu.StallStats) *core.RunResult {
	return &core.RunResult{
		Arch:      arch,
		Model:     core.ModelMipsy,
		Cycles:    cycles,
		PerCPU:    perCPU,
		MemReport: memsys.Report{},
	}
}

func TestFromRunAveragesAcrossCPUs(t *testing.T) {
	var a, b cpu.StallStats
	a.DStall[memsys.LvlL2] = 100
	b.DStall[memsys.LvlL2] = 300
	a.IStall[memsys.LvlMem] = 50
	b.IStall[memsys.LvlMem] = 150
	r := fakeRun(core.SharedMem, 1000, []cpu.StallStats{a, b})
	bd := FromRun(r)
	if bd.DL2 != 200 {
		t.Errorf("DL2 = %v, want 200", bd.DL2)
	}
	if bd.IStall != 100 {
		t.Errorf("IStall = %v, want 100", bd.IStall)
	}
	if bd.CPU != 1000-200-100 {
		t.Errorf("CPU = %v", bd.CPU)
	}
	if bd.MemStall() != 200 {
		t.Errorf("MemStall = %v", bd.MemStall())
	}
}

func TestNormalized(t *testing.T) {
	b := Breakdown{Total: 500, CPU: 300, DL2: 200}
	base := Breakdown{Total: 1000}
	n := b.Normalized(base)
	if n.Total != 0.5 || n.CPU != 0.3 || n.DL2 != 0.2 {
		t.Errorf("normalized = %+v", n)
	}
	// Zero base: identity.
	if got := b.Normalized(Breakdown{}); got != b {
		t.Error("zero base should return b unchanged")
	}
}

func TestBuildFigureOrdersAndNormalizes(t *testing.T) {
	runs := map[core.Arch]*core.RunResult{
		core.SharedL1:  fakeRun(core.SharedL1, 500, make([]cpu.StallStats, 4)),
		core.SharedL2:  fakeRun(core.SharedL2, 800, make([]cpu.StallStats, 4)),
		core.SharedMem: fakeRun(core.SharedMem, 1000, make([]cpu.StallStats, 4)),
	}
	fig := BuildFigure("Figure X", "test", core.ModelMipsy, runs)
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	if fig.Rows[0].Arch != core.SharedL1 || fig.Rows[2].Arch != core.SharedMem {
		t.Error("rows not in canonical order")
	}
	if fig.Rows[0].Norm.Total != 0.5 || fig.Rows[0].Speedup != 2.0 {
		t.Errorf("normalization wrong: %+v", fig.Rows[0])
	}
	s := fig.String()
	if !strings.Contains(s, "Figure X") || !strings.Contains(s, "shared-l1") {
		t.Errorf("rendered figure missing content:\n%s", s)
	}
}

func TestChartRendersBars(t *testing.T) {
	var busy cpu.StallStats
	busy.DStall[memsys.LvlC2C] = 400
	runs := map[core.Arch]*core.RunResult{
		core.SharedL1:  fakeRun(core.SharedL1, 500, make([]cpu.StallStats, 1)),
		core.SharedL2:  fakeRun(core.SharedL2, 750, make([]cpu.StallStats, 1)),
		core.SharedMem: fakeRun(core.SharedMem, 1000, []cpu.StallStats{busy}),
	}
	chart := BuildFigure("Fig", "w", core.ModelMipsy, runs).Chart()
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	// Header + 3 bars + legend.
	if len(lines) != 5 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), chart)
	}
	// The baseline bar must be about 60 columns and contain the c2c fill.
	base := lines[3]
	if !strings.Contains(base, "x") {
		t.Errorf("baseline bar missing c2c fill: %q", base)
	}
	if n := strings.Count(base, "c") + strings.Count(base, "x"); n < 58 || n > 62 {
		t.Errorf("baseline bar is %d columns, want ~60", n)
	}
	// The shared-L1 bar must be about half as long.
	l1 := lines[1]
	if n := strings.Count(l1, "c"); n < 28 || n > 32 {
		t.Errorf("shared-l1 bar is %d columns, want ~30", n)
	}
}

// TestChartRoundingOverflowAndDrops pins the bar apportionment when
// component rounding misbehaves: a row whose normalized components sum
// past 1.0 (attributed stalls exceeding the baseline — the accounting-
// violation shape) must not let per-segment round-ups pile past the
// rounded bar total, and a tiny nonzero component must never vanish
// from the bar.
func TestChartRoundingOverflowAndDrops(t *testing.T) {
	rows := []Row{
		// Six components of 0.175: each would independently round 10.5
		// up to 11 for a 66-column bar. The sum is 1.05, so the bar must
		// be round(1.05*60) = 63 columns with all six fills present.
		{Arch: core.SharedL1, Norm: Breakdown{
			Total: 1.05, CPU: 0.175, IStall: 0.175,
			DL1: 0.175, DL2: 0.175, DMem: 0.175, DC2C: 0.175,
		}},
		// Components summing to exactly 1.0 with half-up fractions: the
		// bar must be exactly the 60-column baseline, not 63.
		{Arch: core.SharedL2, Norm: Breakdown{
			Total: 1.0, CPU: 0.175, IStall: 0.175,
			DL1: 0.175, DL2: 0.175, DMem: 0.175, DC2C: 0.125,
		}},
		// A 0.005 component rounds to zero columns on its own; it must
		// still get one visible column without growing the bar.
		{Arch: core.SharedMem, Norm: Breakdown{
			Total: 1.0, CPU: 0.995, DC2C: 0.005,
		}},
	}
	fig := Figure{Name: "rounding", Rows: rows}
	lines := strings.Split(strings.TrimRight(fig.Chart(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), fig.Chart())
	}
	bar := func(line string) string {
		i, j := strings.Index(line, "|"), strings.LastIndex(line, "|")
		if i < 0 || j <= i {
			t.Fatalf("no bar in %q", line)
		}
		return line[i+1 : j]
	}

	over := bar(lines[1])
	if len(over) != 63 {
		t.Errorf("overflow bar is %d columns, want 63: %q", len(over), over)
	}
	for _, ch := range "ci12mx" {
		if !strings.ContainsRune(over, ch) {
			t.Errorf("overflow bar dropped segment %q: %q", ch, over)
		}
	}

	exact := bar(lines[2])
	if len(exact) != 60 {
		t.Errorf("exact-1.0 bar is %d columns, want 60: %q", len(exact), exact)
	}
	for _, ch := range "ci12mx" {
		if !strings.ContainsRune(exact, ch) {
			t.Errorf("exact-1.0 bar dropped segment %q: %q", ch, exact)
		}
	}

	tiny := bar(lines[3])
	if len(tiny) != 60 {
		t.Errorf("tiny-component bar is %d columns, want 60: %q", len(tiny), tiny)
	}
	if n := strings.Count(tiny, "x"); n != 1 {
		t.Errorf("tiny component has %d columns, want exactly 1: %q", n, tiny)
	}
}

func TestBuildFigureRequiresBaseline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic without a shared-mem baseline")
		}
	}()
	BuildFigure("x", "w", core.ModelMipsy, map[core.Arch]*core.RunResult{
		core.SharedL1: fakeRun(core.SharedL1, 1, nil),
	})
}

func TestIPCBreakdownApportionsLoss(t *testing.T) {
	var s cpu.StallStats
	s.Instructions = 1000
	s.IStall[memsys.LvlL2] = 100
	s.DStall[memsys.LvlMem] = 200
	s.PipeStall = 100
	r := fakeRun(core.SharedL1, 1000, []cpu.StallStats{s, {}, {}, {}})
	row := IPCBreakdown(r)
	// Per-CPU IPC = 1000 insts / 1000 cycles / 4 CPUs = 0.25.
	if row.IPC != 0.25 {
		t.Fatalf("IPC = %v", row.IPC)
	}
	loss := 2.0 - 0.25
	if got := row.LossI + row.LossD + row.LossPipe; !almost(got, loss) {
		t.Errorf("loss total = %v, want %v", got, loss)
	}
	if !almost(row.LossD, loss*0.5) {
		t.Errorf("LossD = %v, want half of loss", row.LossD)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestMissRatesFrom(t *testing.T) {
	var rep memsys.Report
	rep.L1D.Reads = 80
	rep.L1D.Writes = 20
	rep.L1D.ReadMisses = 8
	rep.L1D.WriteMisses = 2
	rep.L1D.InvMisses = 4
	rep.L2.Reads = 10
	rep.L2.ReadMisses = 5
	m := MissRatesFrom(rep)
	if !almost(m.L1R, 0.06) || !almost(m.L1I, 0.04) {
		t.Errorf("L1 rates = %+v", m)
	}
	if !almost(m.L2R, 0.5) || m.L2I != 0 {
		t.Errorf("L2 rates = %+v", m)
	}
}

func TestFromRunRecordsAccountingViolation(t *testing.T) {
	// Attributed stalls exceed the run's total cycles: the residual CPU
	// time would be negative. It must be clamped to zero, but the excess
	// must be recorded on the breakdown itself, not silently dropped.
	var s cpu.StallStats
	s.DStall[memsys.LvlMem] = 1200
	r := fakeRun(core.SharedMem, 1000, []cpu.StallStats{s})
	bd := FromRun(r)
	if bd.CPU != 0 {
		t.Errorf("CPU = %v, want clamp to 0", bd.CPU)
	}
	if bd.Violation != 200 {
		t.Errorf("Violation = %v, want 200", bd.Violation)
	}

	// A clean run must not report a violation.
	var ok cpu.StallStats
	ok.DStall[memsys.LvlL2] = 400
	bd = FromRun(fakeRun(core.SharedMem, 1000, []cpu.StallStats{ok}))
	if bd.Violation != 0 || bd.CPU != 600 {
		t.Errorf("clean run: CPU=%v Violation=%v", bd.CPU, bd.Violation)
	}

	// Stalls summing exactly to the total leave zero CPU time but no
	// violation.
	var exact cpu.StallStats
	exact.DStall[memsys.LvlL1] = 1000
	bd = FromRun(fakeRun(core.SharedMem, 1000, []cpu.StallStats{exact}))
	if bd.Violation != 0 || bd.CPU != 0 {
		t.Errorf("exact run: CPU=%v Violation=%v", bd.CPU, bd.Violation)
	}
}

// TestFigureAccountingViolations verifies the per-figure aggregation
// that replaced the process-global counter: only rows whose stalls
// overran the total are counted, and separate figures cannot bleed
// into each other because the tally lives on the figure's rows.
func TestFigureAccountingViolations(t *testing.T) {
	var bad cpu.StallStats
	bad.DStall[memsys.LvlMem] = 1500
	var good cpu.StallStats
	good.DStall[memsys.LvlL2] = 400
	runs := map[core.Arch]*core.RunResult{
		core.SharedL1:  fakeRun(core.SharedL1, 1000, []cpu.StallStats{bad}),
		core.SharedMem: fakeRun(core.SharedMem, 1000, []cpu.StallStats{good}),
	}
	fig := BuildFigure("violating", "fake", core.ModelMipsy, runs)
	if got := fig.AccountingViolations(); got != 1 {
		t.Errorf("AccountingViolations = %d, want 1", got)
	}
	clean := map[core.Arch]*core.RunResult{
		core.SharedMem: fakeRun(core.SharedMem, 1000, []cpu.StallStats{good}),
	}
	if got := BuildFigure("clean", "fake", core.ModelMipsy, clean).AccountingViolations(); got != 0 {
		t.Errorf("clean figure AccountingViolations = %d, want 0", got)
	}
}
