// Package stats turns raw simulation results into the quantities the
// paper reports: execution-time breakdowns normalized to the
// shared-memory baseline (Figures 4-10), miss-rate components
// (L1R/L1I/L2R/L2I), and the MXS IPC-loss breakdown (Figure 11).
package stats

import (
	"fmt"
	"strings"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

// Breakdown is the per-architecture execution-time decomposition of one
// run, in average cycles per CPU. CPU time includes synchronization spin
// (the paper folds lock/barrier waiting into CPU time).
type Breakdown struct {
	Total  float64 // wall-clock cycles of the run
	CPU    float64 // busy + spin + (MXS) pipeline stalls
	IStall float64 // instruction-fetch stalls, all levels
	DL1    float64 // data stalls serviced at L1 (extra hit latency, bank conflicts, buffers)
	DL2    float64 // data stalls serviced at L2
	DMem   float64 // data stalls serviced by memory
	DC2C   float64 // data stalls from cache-to-cache transfers / bus coherence

	// Violation is the magnitude of a stall-accounting invariant
	// violation: how many cycles the attributed stalls exceeded the run's
	// total (0 when the books balance). A non-zero value means a CPU
	// model double-counted stall cycles. The tally is per-run state (not
	// a process-global counter), so concurrent runs in the parallel
	// runner cannot race and back-to-back runs cannot bleed violations
	// into each other; Figure.AccountingViolations aggregates it per
	// figure.
	Violation float64
}

// FromRun computes a Breakdown from a run result. The stall components
// must sum to no more than the run's total cycles; if they exceed it by
// more than a rounding epsilon, the excess is recorded as an accounting
// violation instead of being silently clamped away.
func FromRun(r *core.RunResult) Breakdown {
	n := float64(len(r.PerCPU))
	var b Breakdown
	b.Total = float64(r.Cycles)
	for _, s := range r.PerCPU {
		b.IStall += float64(s.TotalIStall()) / n
		b.DL1 += float64(s.DStall[memsys.LvlL1]) / n
		b.DL2 += float64(s.DStall[memsys.LvlL2]) / n
		b.DMem += float64(s.DStall[memsys.LvlMem]) / n
		b.DC2C += float64(s.DStall[memsys.LvlC2C]) / n
	}
	b.CPU = b.Total - b.IStall - b.DL1 - b.DL2 - b.DMem - b.DC2C
	if b.CPU < 0 {
		eps := 1e-6
		if e := 1e-9 * b.Total; e > eps {
			eps = e // scale the tolerance with run length
		}
		if -b.CPU > eps {
			b.Violation = -b.CPU
		}
		b.CPU = 0
	}
	return b
}

// MemStall returns all data-side stall cycles.
func (b Breakdown) MemStall() float64 { return b.DL1 + b.DL2 + b.DMem + b.DC2C }

// Normalized returns b scaled so that base.Total == 1 (the paper
// normalizes each application to the shared-memory architecture).
func (b Breakdown) Normalized(base Breakdown) Breakdown {
	if base.Total == 0 {
		return b
	}
	f := 1 / base.Total
	return Breakdown{
		Total:  b.Total * f,
		CPU:    b.CPU * f,
		IStall: b.IStall * f,
		DL1:    b.DL1 * f,
		DL2:    b.DL2 * f,
		DMem:   b.DMem * f,
		DC2C:   b.DC2C * f,
	}
}

// MissRates carries the four miss-rate components of Section 4, as
// local rates (misses per reference to that cache).
type MissRates struct {
	L1R float64 // L1 data replacement miss rate
	L1I float64 // L1 data invalidation miss rate
	L2R float64 // L2 replacement miss rate
	L2I float64 // L2 invalidation miss rate
}

// MissRatesFrom extracts the components from a memory report.
func MissRatesFrom(rep memsys.Report) MissRates {
	return MissRates{
		L1R: rep.L1D.ReplRate(),
		L1I: rep.L1D.InvRate(),
		L2R: rep.L2.ReplRate(),
		L2I: rep.L2.InvRate(),
	}
}

// Row is one architecture's line in a figure table.
type Row struct {
	Arch    core.Arch
	B       Breakdown
	Norm    Breakdown // normalized to the shared-memory baseline
	Miss    MissRates
	IPC     float64
	Speedup float64 // baseline time / this time
	Cycles  uint64
	Insts   uint64
}

// Figure is a reproduction of one of the paper's per-application
// figures: the three architectures' breakdowns for one workload.
type Figure struct {
	Name     string // e.g. "Figure 4: Eqntott"
	Workload string
	Model    core.CPUModel
	Rows     []Row
}

// BuildFigure assembles a Figure from the three runs, normalizing to the
// shared-memory run (which must be present).
func BuildFigure(name, workload string, model core.CPUModel, runs map[core.Arch]*core.RunResult) Figure {
	fig := Figure{Name: name, Workload: workload, Model: model}
	base, ok := runs[core.SharedMem]
	if !ok {
		panic("stats: BuildFigure requires a shared-mem baseline run")
	}
	baseB := FromRun(base)
	for _, a := range core.Arches() {
		r, ok := runs[a]
		if !ok {
			continue
		}
		b := FromRun(r)
		fig.Rows = append(fig.Rows, Row{
			Arch:    a,
			B:       b,
			Norm:    b.Normalized(baseB),
			Miss:    MissRatesFrom(r.MemReport),
			IPC:     r.IPC(),
			Speedup: baseB.Total / b.Total,
			Cycles:  r.Cycles,
			Insts:   r.Instructions(),
		})
	}
	return fig
}

// AccountingViolations counts the rows of the figure whose stall
// decomposition violated the accounting invariant (attributed stalls
// exceeding the run's total cycles). This replaces the old
// process-global obsv counter: the tally is derived from the figure's
// own rows, so it is naturally per-figure and safe under the parallel
// runner.
func (f Figure) AccountingViolations() int {
	n := 0
	for _, r := range f.Rows {
		if r.B.Violation > 0 {
			n++
		}
	}
	return n
}

// String renders the figure as the text table the paper's bar charts
// encode: normalized execution time split into components, plus the
// miss-rate columns.
func (f Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s, %s CPU model)\n", f.Name, f.Workload, f.Model)
	fmt.Fprintf(&sb, "%-11s %8s %7s %7s %7s %7s %7s %7s %8s | %7s %7s %7s %7s\n",
		"arch", "norm", "cpu", "istall", "dL1", "dL2", "dMem", "dC2C", "speedup",
		"L1R%", "L1I%", "L2R%", "L2I%")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-11s %8.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %8.3f | %7.3f %7.3f %7.3f %7.3f\n",
			r.Arch, r.Norm.Total, r.Norm.CPU, r.Norm.IStall, r.Norm.DL1, r.Norm.DL2,
			r.Norm.DMem, r.Norm.DC2C, r.Speedup,
			100*r.Miss.L1R, 100*r.Miss.L1I, 100*r.Miss.L2R, 100*r.Miss.L2I)
	}
	return sb.String()
}

// Chart renders the figure as ASCII stacked bars — the visual shape of
// the paper's figures. Each bar is the architecture's normalized
// execution time; the fill characters encode where the time went.
func (f Figure) Chart() string {
	const width = 60 // columns representing the baseline (1.0)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — normalized execution time (|%s…| = shared-mem = 1.00)\n",
		f.Name, strings.Repeat("-", 6))
	for _, r := range f.Rows {
		segs := [...]struct {
			ch byte
			v  float64
		}{
			{'c', r.Norm.CPU},
			{'i', r.Norm.IStall},
			{'1', r.Norm.DL1},
			{'2', r.Norm.DL2},
			{'m', r.Norm.DMem},
			{'x', r.Norm.DC2C},
		}
		// Segment widths must sum to round(total*width): rounding each
		// segment independently lets per-segment round-ups accumulate,
		// so a bar whose components sum to exactly 1.0 could overflow
		// the 60-column baseline. Largest-remainder apportionment keeps
		// the total exact, then a second pass guarantees every nonzero
		// component at least one visible column (stolen from the widest
		// segment, never growing the bar).
		var sum float64
		for _, s := range segs {
			sum += s.v
		}
		total := int(sum*width + 0.5)
		var cols [len(segs)]int
		alloc := 0
		for i, s := range segs {
			cols[i] = int(s.v * width)
			alloc += cols[i]
		}
		for alloc < total {
			best, bestFrac := -1, -1.0
			for i, s := range segs {
				frac := s.v*width - float64(cols[i])
				if frac > bestFrac {
					best, bestFrac = i, frac
				}
			}
			cols[best]++
			alloc++
		}
		for i, s := range segs {
			if s.v <= 0 || cols[i] > 0 {
				continue
			}
			widest, w := -1, 1
			for j := range cols {
				if cols[j] > w {
					widest, w = j, cols[j]
				}
			}
			if widest < 0 {
				break // every segment is at width 1 already; nothing to steal
			}
			cols[widest]--
			cols[i]++
		}
		bar := make([]byte, 0, width+16)
		for i, s := range segs {
			for n := 0; n < cols[i]; n++ {
				bar = append(bar, s.ch)
			}
		}
		fmt.Fprintf(&sb, "%-11s |%s| %.3f\n", r.Arch, string(bar), r.Norm.Total)
	}
	sb.WriteString("            c=cpu+sync i=ifetch 1=L1 2=L2 m=memory x=cache-to-cache\n")
	return sb.String()
}

// IPCRow is one bar of Figure 11: achieved IPC and where the ideal
// 2-wide issue was lost.
type IPCRow struct {
	Arch     core.Arch
	IPC      float64
	LossI    float64 // IPC lost to instruction-cache stalls
	LossD    float64 // IPC lost to data-cache stalls
	LossPipe float64 // IPC lost to pipeline stalls (incl. shared-L1 hit time & bank contention)
}

// IPCBreakdown computes a Figure 11 row from an MXS run: the gap between
// the ideal per-CPU IPC of 2 and the achieved per-CPU IPC is apportioned
// across stall sources by their share of stall cycles.
func IPCBreakdown(r *core.RunResult) IPCRow {
	const ideal = 2.0
	row := IPCRow{Arch: r.Arch, IPC: r.IPC() / float64(len(r.PerCPU))}
	var iST, dST, pST float64
	for _, s := range r.PerCPU {
		iST += float64(s.TotalIStall())
		dST += float64(s.TotalDStall())
		pST += float64(s.PipeStall)
	}
	tot := iST + dST + pST
	loss := ideal - row.IPC
	if loss < 0 {
		loss = 0
	}
	if tot > 0 {
		row.LossI = loss * iST / tot
		row.LossD = loss * dST / tot
		row.LossPipe = loss * pST / tot
	}
	return row
}
