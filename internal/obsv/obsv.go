// Package obsv is the simulator's observability layer: cycle-accurate
// event tracing and interval metrics, designed to cost nothing when
// disabled. Every timing-path package (memsys, interconnect, cache,
// coherence, cpu/mxs) carries an optional Tracer; the nil fast path is a
// single pointer comparison and zero allocations, so instrumented code
// can stay on the hot path of every memory reference.
//
// The layer has three parts:
//
//   - Event / Tracer: a fixed-size, allocation-free event record and the
//     interface instrumented components emit into. Ring is the standard
//     implementation (a bounded in-memory ring buffer).
//   - Sinks: WriteJSONL (one JSON object per event, the cmd/tracestats
//     input format) and WriteChromeTrace (the Chrome trace-event format,
//     loadable in chrome://tracing and Perfetto, one track per CPU plus
//     one per shared resource).
//   - Metrics: an interval sampler producing a time-series of per-CPU
//     IPC, miss rates, resource utilization and MSHR occupancy, plus
//     log2-bucket latency histograms for data-miss service time.
package obsv

// EventKind discriminates trace events. The Event field comments below
// describe how each kind uses the generic fields.
type EventKind uint8

const (
	EvNone EventKind = iota

	// Memory-system data path (per reference, emitted on completion).
	EvLoad   // data load: CPU, Addr, Level, Arg=load-to-use latency
	EvStore  // data store accepted: CPU, Addr, Level, Arg=CPU-visible latency
	EvIFetch // instruction line fetch: CPU, Addr, Level, Arg=latency

	// Contended resources (interconnect).
	EvGrant // resource grant: Res, Addr=bank index, Cycle=grant start, Arg=occupancy, Arg2=wait cycles

	// Non-blocking cache bookkeeping (MSHRs, write buffers).
	EvMSHRAlloc  // outstanding miss allocated: CPU, Addr=line, Arg=fill latency
	EvMSHRRetire // fill completed: CPU, Addr=line (Cycle is the completion cycle)
	EvMSHRFull   // structural refusal, all MSHRs busy: CPU
	EvWBufFull   // structural refusal, write buffer full: CPU

	// Coherence.
	EvInval     // invalidations sent for a write: CPU=writer, Addr=line, Arg=lines invalidated
	EvInclEvict // inclusion eviction (lower level replaced the line): Addr=line, Arg=L1 copies removed
	EvC2C       // cache-to-cache supply: CPU=requester, Addr=line
	EvUpgrade   // bus upgrade (invalidate-only): CPU=writer, Addr=line, Arg=lines invalidated

	// Detailed CPU model (MXS).
	EvFlush      // pipeline flush (trap/interrupt): CPU, Arg=instructions squashed
	EvMispredict // branch mispredict: CPU, Addr=branch PC, Arg=instructions squashed
	EvROBFull    // dispatch blocked, window full: CPU

	// Host-timeline tracks (internal/hostprof): the parallel-tick
	// scheduler's own execution, correlated to sim time via Cycle. These
	// describe the host schedule, not guest behavior — cmd/tracestats
	// separates them with -tracks guest|host|all.
	EvHostWindow  // worker window: CPU=worker, Cycle=sim w0, Addr=length (sim cycles), Arg=host µs
	EvHostSpin    // tick-gate spin: CPU=waiter, Addr=peer, Cycle=gate sim cycle, Arg=host ns, Arg2=site index
	EvHostSkip    // local quiescence skip: CPU, Cycle=from, Arg=distance (sim cycles)
	EvHostSerial  // coordinator serial stretch: CPU=-1, Arg=host µs
	EvHostBarrier // coordinator parallel-region span: CPU=-1, Cycle=sim w0, Arg=host µs, Arg2=length (sim cycles)

	NumEventKinds
)

var kindNames = [NumEventKinds]string{
	EvNone:        "none",
	EvLoad:        "load",
	EvStore:       "store",
	EvIFetch:      "ifetch",
	EvGrant:       "grant",
	EvMSHRAlloc:   "mshr-alloc",
	EvMSHRRetire:  "mshr-retire",
	EvMSHRFull:    "mshr-full",
	EvWBufFull:    "wbuf-full",
	EvInval:       "inval",
	EvInclEvict:   "incl-evict",
	EvC2C:         "c2c",
	EvUpgrade:     "upgrade",
	EvFlush:       "flush",
	EvMispredict:  "mispredict",
	EvROBFull:     "rob-full",
	EvHostWindow:  "host-window",
	EvHostSpin:    "host-spin",
	EvHostSkip:    "host-skip",
	EvHostSerial:  "host-serial",
	EvHostBarrier: "host-barrier",
}

// HostKind reports whether k is a host-timeline (scheduler) event as
// opposed to a guest (simulated machine) event.
func HostKind(k EventKind) bool {
	switch k {
	case EvHostWindow, EvHostSpin, EvHostSkip, EvHostSerial, EvHostBarrier:
		return true
	}
	return false
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindFromString is the inverse of EventKind.String (for parsing JSONL
// traces back in); unknown names map to EvNone.
func KindFromString(s string) EventKind {
	for k, n := range kindNames {
		if n == s {
			return EventKind(k)
		}
	}
	return EvNone
}

// ResID identifies a contended shared resource. The set is fixed by the
// three architecture compositions; the bank index (for banked resources)
// or the owning CPU (for per-CPU ports) travels in Event.Addr.
type ResID uint8

const (
	ResNone   ResID = iota
	ResL1Bank       // shared-L1 crossbar cache banks
	ResL2Bank       // shared-L2 crossbar cache banks
	ResL2Port       // uniprocessor-style L2 port (shared-L1 arch, or per-CPU in shared-mem)
	ResMem          // memory controller
	ResBus          // snoopy system bus

	NumResIDs
)

var resNames = [NumResIDs]string{
	ResNone:   "",
	ResL1Bank: "l1-bank",
	ResL2Bank: "l2-bank",
	ResL2Port: "l2-port",
	ResMem:    "memory",
	ResBus:    "bus",
}

func (r ResID) String() string {
	if int(r) < len(resNames) {
		return resNames[r]
	}
	return "?"
}

// ResFromString is the inverse of ResID.String; unknown names map to
// ResNone.
func ResFromString(s string) ResID {
	if s == "" {
		return ResNone
	}
	for r := ResID(1); r < NumResIDs; r++ {
		if resNames[r] == s {
			return r
		}
	}
	return ResNone
}

// LevelNames mirrors the memsys.Level constants (obsv cannot import
// memsys — it sits below every timing package).
var LevelNames = [...]string{"L1", "L2", "Mem", "C2C"}

// LevelName returns the hierarchy-level name for Event.Level.
func LevelName(l uint8) string {
	if int(l) < len(LevelNames) {
		return LevelNames[l]
	}
	return "?"
}

// Event is one trace record. It is a flat value type — emitting one
// never allocates. Field use is kind-specific; see the EventKind
// constants.
type Event struct {
	Cycle uint64    // simulation cycle the event is attributed to
	Addr  uint32    // address / line / bank index / PC (kind-specific)
	Arg   uint32    // primary magnitude: latency, occupancy, count
	Arg2  uint32    // secondary magnitude: wait cycles
	Kind  EventKind //
	CPU   int8      // requesting CPU, or -1 when not CPU-attributed
	Res   ResID     // shared resource, or ResNone
	Level uint8     // memory-hierarchy level (memsys.Level) for memory events
}

// Tracer receives trace events. Instrumented components hold a Tracer
// and guard every emission with a nil check, which is the entire cost of
// disabled tracing. Implementations must tolerate events arriving out of
// cycle order (lazily-reaped MSHR retirements are timestamped with their
// completion cycle but emitted later); sinks sort by cycle.
type Tracer interface {
	Emit(Event)
}

// Tee fans one event stream out to several tracers. Nil entries are
// dropped; a tee of fewer than two live tracers collapses to the single
// tracer (or nil), keeping the fast path a plain nil check.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

func (t teeTracer) Emit(ev Event) {
	for _, tr := range t {
		tr.Emit(ev)
	}
}

// Note: this package deliberately holds no mutable package-level
// state. Per-run tallies (e.g. the stall-accounting violation recorded
// by stats.FromRun) live on per-run values, so back-to-back runs in
// one process cannot bleed into each other and the parallel runner
// (internal/runner) can execute runs concurrently without races.
