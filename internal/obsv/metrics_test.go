package obsv

import (
	"math"
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		lat    uint64
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := bucketOf(c.lat); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.lat, got, c.bucket)
		}
		if c.lat > BucketCeil(c.bucket) {
			t.Errorf("latency %d above its bucket ceil %d", c.lat, BucketCeil(c.bucket))
		}
		if c.bucket > 0 && c.lat <= BucketCeil(c.bucket-1) {
			t.Errorf("latency %d fits the previous bucket (ceil %d)", c.lat, BucketCeil(c.bucket-1))
		}
	}
}

func TestHistMeanAndQuantile(t *testing.T) {
	var h LatencyHist
	// 90 fast hits, 10 slow misses at level 1.
	for i := 0; i < 90; i++ {
		h.Observe(1, 4)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1, 100)
	}
	if got, want := h.Mean(1), (90*4.0+10*100.0)/100; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got := h.Quantile(1, 0.50); got != 4 {
		t.Errorf("p50 = %d, want 4", got)
	}
	// p99 lands in the 100-latency bucket: (64, 128].
	if got := h.Quantile(1, 0.99); got != 128 {
		t.Errorf("p99 = %d, want 128", got)
	}
	if h.Mean(3) != 0 || h.Quantile(3, 0.5) != 0 {
		t.Error("untouched level must report zero")
	}
	h.Observe(maxLevels, 1) // out of range: ignored, not a panic
	if !strings.Contains(h.String(), "L2") {
		t.Errorf("String() missing observed level:\n%s", h.String())
	}
}

func probeAt(cycle uint64, insts []uint64, l1dAcc, l1dMiss, l2Acc, l2Miss uint64) Probe {
	return Probe{
		Cycle:       cycle,
		PerCPUInsts: insts,
		L1DAcc:      l1dAcc, L1DMiss: l1dMiss,
		L2Acc: l2Acc, L2Miss: l2Miss,
		Resources: []ResProbe{{Name: "bus", Acquires: l2Acc, Busy: 10 * l2Acc}},
	}
}

func TestMetricsIntervalLifecycle(t *testing.T) {
	m := NewMetrics(100)
	if m.Due(99) {
		t.Error("due before first boundary")
	}
	if !m.Due(100) || !m.Due(150) {
		t.Error("not due at/after boundary")
	}
	m.Record(probeAt(100, []uint64{80, 40}, 30, 6, 6, 3))
	if m.Due(150) {
		t.Error("due again immediately after recording")
	}
	if !m.Due(200) {
		t.Error("not due at next boundary")
	}
	m.Record(probeAt(200, []uint64{200, 100}, 90, 12, 12, 4))

	ss := m.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %d, want 2", len(ss))
	}
	s0, s1 := ss[0], ss[1]
	if s0.Start != 0 || s0.End != 100 || s1.Start != 100 || s1.End != 200 {
		t.Fatalf("bounds: [%d,%d) [%d,%d)", s0.Start, s0.End, s1.Start, s1.End)
	}
	// First interval is absolute; second is the delta.
	if s0.Insts != 120 || s0.IPC != 1.2 {
		t.Errorf("s0 insts=%d ipc=%v", s0.Insts, s0.IPC)
	}
	if s1.Insts != 180 || s1.IPC != 1.8 {
		t.Errorf("s1 insts=%d ipc=%v", s1.Insts, s1.IPC)
	}
	if s1.PerCPU[0].Insts != 120 || s1.PerCPU[1].Insts != 60 {
		t.Errorf("s1 per-cpu = %+v", s1.PerCPU)
	}
	if s1.L1DAcc != 60 || s1.L1DMiss != 6 || s1.L2Acc != 6 || s1.L2Miss != 1 {
		t.Errorf("s1 mem deltas: %+v", s1)
	}
	if got := s1.L1DMissRate(); got != 0.1 {
		t.Errorf("s1 L1D miss rate = %v", got)
	}
	if r := s1.Resources[0]; r.Acquires != 6 || r.Busy != 60 || r.Util != 0.6 {
		t.Errorf("s1 resource = %+v", r)
	}
}

// TestMetricsFlushPartialInterval is the short-run satellite: a run that
// ends before the first boundary must still produce one sample.
func TestMetricsFlushPartialInterval(t *testing.T) {
	m := NewMetrics(1_000_000)
	if m.Due(4242) {
		t.Fatal("short run should never be due")
	}
	m.Flush(probeAt(4242, []uint64{4000}, 1000, 100, 100, 50))
	ss := m.Samples()
	if len(ss) != 1 {
		t.Fatalf("flushed samples = %d, want 1", len(ss))
	}
	if ss[0].Start != 0 || ss[0].End != 4242 || ss[0].Insts != 4000 {
		t.Errorf("flushed sample = %+v", ss[0])
	}
	// Idempotent: a second flush (or a later stray one) adds nothing.
	m.Flush(probeAt(5000, []uint64{5000}, 1100, 110, 110, 55))
	if len(m.Samples()) != 1 {
		t.Errorf("second flush added a sample")
	}
}

func TestMetricsFlushAfterExactBoundaryAddsNothing(t *testing.T) {
	m := NewMetrics(100)
	p := probeAt(100, []uint64{100}, 10, 1, 1, 0)
	m.Record(p)
	m.Flush(p) // run ended exactly on the boundary
	if len(m.Samples()) != 1 {
		t.Fatalf("samples = %d, want 1 (flush at last boundary must be a no-op)", len(m.Samples()))
	}
}

func TestMetricsSampleSumsMatchCumulative(t *testing.T) {
	// The reconciliation invariant the integration test relies on, in
	// miniature: interval deltas must sum back to the final cumulative
	// probe, whatever the boundary pattern.
	m := NewMetrics(64)
	probes := []Probe{
		probeAt(64, []uint64{10, 20}, 100, 9, 9, 2),
		probeAt(128, []uint64{25, 45}, 260, 21, 21, 6),
		probeAt(200, []uint64{60, 90}, 500, 44, 44, 13),
	}
	for _, p := range probes[:2] {
		m.Record(p)
	}
	m.Flush(probes[2])
	var insts, l1a, l1m, l2a, l2m uint64
	for _, s := range m.Samples() {
		insts += s.Insts
		l1a += s.L1DAcc
		l1m += s.L1DMiss
		l2a += s.L2Acc
		l2m += s.L2Miss
	}
	final := probes[2]
	if insts != final.PerCPUInsts[0]+final.PerCPUInsts[1] {
		t.Errorf("insts sum = %d", insts)
	}
	if l1a != final.L1DAcc || l1m != final.L1DMiss || l2a != final.L2Acc || l2m != final.L2Miss {
		t.Errorf("interval sums diverge from cumulative: %d/%d %d/%d", l1a, l1m, l2a, l2m)
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics(0) // default interval
	if m.Interval != 10000 {
		t.Fatalf("default interval = %d", m.Interval)
	}
	m.ObserveAccess(2, 57)
	m.Record(probeAt(10000, []uint64{5000}, 900, 90, 90, 30))
	out := m.String()
	for _, want := range []string{"1 samples", "bus%", "Mem"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
