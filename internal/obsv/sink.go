package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// --- JSONL sink ---

// jsonlEvent is the wire form of an Event: one JSON object per line,
// with symbolic kind/res/level names so traces are greppable. This is
// the input format of cmd/tracestats.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	CPU   int8   `json:"cpu"`
	Addr  uint32 `json:"addr"`
	Arg   uint32 `json:"arg,omitempty"`
	Arg2  uint32 `json:"arg2,omitempty"`
	Res   string `json:"res,omitempty"`
	Level string `json:"level,omitempty"`
}

func isMemKind(k EventKind) bool {
	switch k {
	case EvLoad, EvStore, EvIFetch:
		return true
	}
	return false
}

// WriteJSONL writes events as JSON Lines in the given order (the ring's
// emission order; sort first if cycle order matters to the consumer).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		je := jsonlEvent{
			Cycle: ev.Cycle,
			Kind:  ev.Kind.String(),
			CPU:   ev.CPU,
			Addr:  ev.Addr,
			Arg:   ev.Arg,
			Arg2:  ev.Arg2,
			Res:   ev.Res.String(),
		}
		if isMemKind(ev.Kind) {
			je.Level = LevelName(ev.Level)
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var je jsonlEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obsv: bad JSONL event %d: %w", len(out), err)
		}
		ev := Event{
			Cycle: je.Cycle,
			Addr:  je.Addr,
			Arg:   je.Arg,
			Arg2:  je.Arg2,
			Kind:  KindFromString(je.Kind),
			CPU:   je.CPU,
			Res:   ResFromString(je.Res),
		}
		for l, n := range LevelNames {
			if n == je.Level {
				ev.Level = uint8(l)
			}
		}
		out = append(out, ev)
	}
}

// --- Chrome trace-event sink ---

// Chrome trace track layout: pid 0 holds one track per CPU (tid = CPU)
// plus one MSHR track per CPU (tid = 64+CPU); pid 1 holds one track per
// shared resource bank (tid = ResID*256 + bank). One simulation cycle is
// written as one microsecond of trace time.
const (
	chromePidCPUs      = 0
	chromePidResources = 1
	chromeMSHRTidBase  = 64
)

func chromeResTid(res ResID, bank uint32) int { return int(res)*256 + int(bank) }

// WriteChromeTrace writes events in the Chrome trace-event format
// (loadable in chrome://tracing and Perfetto). Events are stably sorted
// by cycle, so emitted timestamps are monotonically non-decreasing. The
// output is deterministic for a given event slice.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}

	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name every track that appears in the trace.
	cpus := map[int8]bool{}
	mshrCPUs := map[int8]bool{}
	resTracks := map[int]string{}
	for _, ev := range sorted {
		switch {
		case ev.Kind == EvGrant:
			tid := chromeResTid(ev.Res, ev.Addr)
			if _, ok := resTracks[tid]; !ok {
				resTracks[tid] = fmt.Sprintf("%s[%d]", ev.Res, ev.Addr)
			}
		case ev.Kind == EvMSHRAlloc || ev.Kind == EvMSHRRetire || ev.Kind == EvMSHRFull:
			if ev.CPU >= 0 {
				mshrCPUs[ev.CPU] = true
			}
		case ev.CPU >= 0:
			cpus[ev.CPU] = true
		}
	}
	emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"cpus"}}`, chromePidCPUs)
	emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"shared resources"}}`, chromePidResources)
	for cpu := int8(0); int(cpu) < 64; cpu++ {
		if cpus[cpu] {
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"cpu%d"}}`,
				chromePidCPUs, cpu, cpu)
		}
		if mshrCPUs[cpu] {
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"cpu%d-mshr"}}`,
				chromePidCPUs, chromeMSHRTidBase+int(cpu), cpu)
		}
	}
	tids := make([]int, 0, len(resTracks))
	for tid := range resTracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`,
			chromePidResources, tid, resTracks[tid])
	}

	dur := func(d uint32) uint32 {
		if d == 0 {
			return 1
		}
		return d
	}
	for _, ev := range sorted {
		switch ev.Kind {
		case EvLoad, EvStore, EvIFetch:
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":"%s %s","args":{"addr":"0x%08x"}}`,
				chromePidCPUs, ev.CPU, ev.Cycle, dur(ev.Arg), ev.Kind, LevelName(ev.Level), ev.Addr)
		case EvGrant:
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":"grant","args":{"wait":%d}}`,
				chromePidResources, chromeResTid(ev.Res, ev.Addr), ev.Cycle, dur(ev.Arg), ev.Arg2)
		case EvMSHRAlloc:
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":"mshr","args":{"addr":"0x%08x"}}`,
				chromePidCPUs, chromeMSHRTidBase+int(ev.CPU), ev.Cycle, dur(ev.Arg), ev.Addr)
		case EvMSHRRetire:
			// The allocation slice already covers the fill; skip.
		default:
			emit(`{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","name":"%s","args":{"addr":"0x%08x","n":%d}}`,
				chromePidCPUs, maxTid(ev), ev.Cycle, ev.Kind, ev.Addr, ev.Arg)
		}
	}

	if _, err := io.WriteString(bw, "\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// maxTid places an instant event on its CPU's track, or track 0 when it
// has no CPU attribution.
func maxTid(ev Event) int {
	if ev.CPU >= 0 {
		if ev.Kind == EvMSHRFull {
			return chromeMSHRTidBase + int(ev.CPU)
		}
		return int(ev.CPU)
	}
	return 0
}
