package obsv

import "sync"

// Ring is a bounded in-memory tracer: it keeps the most recent capacity
// events, overwriting the oldest once full. A mutex makes it safe for
// concurrent emitters (future sharded simulators, or tests emitting from
// several goroutines); the simulator's single-threaded cycle loop pays
// an uncontended lock only when tracing is enabled at all — the disabled
// path never reaches the Ring.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever emitted; next slot is next % len(buf)
	dropped uint64 // events overwritten after the ring wrapped
}

// NewRing returns a ring tracer holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	if r.next >= uint64(len(r.buf)) {
		r.dropped++
	}
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Emitted returns the total number of events ever emitted, including
// those overwritten after the ring wrapped.
func (r *Ring) Emitted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns the number of events lost to ring wrap-around.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the held events in emission order (oldest first).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.next <= n {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, n)
	start := r.next % n
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Reset discards all held events.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next, r.dropped = 0, 0
}
