package obsv

import (
	"sync"
	"testing"
)

func TestKindAndResNamesRoundTrip(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	for r := ResID(1); r < NumResIDs; r++ {
		if r.String() == "?" || r.String() == "" {
			t.Fatalf("res %d has no name", r)
		}
		if got := ResFromString(r.String()); got != r {
			t.Errorf("ResFromString(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if ResFromString("") != ResNone {
		t.Error("empty string must map to ResNone")
	}
	if KindFromString("no-such-kind") != EvNone {
		t.Error("unknown kind must map to EvNone")
	}
}

func TestRingKeepsEmissionOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(evs), r.Len())
	}
	for i, ev := range evs {
		if ev.Cycle != uint64(i) {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Fatalf("slot %d = cycle %d, want %d", i, ev.Cycle, want)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	if r.Emitted() != 10 {
		t.Errorf("emitted = %d, want 10", r.Emitted())
	}
	r.Reset()
	if r.Len() != 0 || r.Emitted() != 0 || r.Dropped() != 0 {
		t.Error("reset did not clear the ring")
	}
}

// TestRingConcurrentEmit exercises the ring from several goroutines; the
// race detector (make check) is the real assertion here.
func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(256)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(Event{Cycle: uint64(i), CPU: int8(g)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Events()
				r.Len()
			}
		}
	}()
	wg.Wait()
	close(done)
	if r.Emitted() != goroutines*each {
		t.Errorf("emitted = %d, want %d", r.Emitted(), goroutines*each)
	}
	if r.Len() != 256 {
		t.Errorf("len = %d, want full ring", r.Len())
	}
}

func TestRingEmitDoesNotAllocate(t *testing.T) {
	r := NewRing(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{Cycle: 1, Addr: 2, Kind: EvLoad})
	})
	if allocs != 0 {
		t.Errorf("Ring.Emit allocates %v per op, want 0", allocs)
	}
}

func TestTeeFansOutAndCollapses(t *testing.T) {
	if Tee() != nil {
		t.Error("empty Tee must be nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils must be nil")
	}
	a := NewRing(4)
	if got := Tee(nil, a); got != a {
		t.Error("single-tracer Tee must collapse to the tracer itself")
	}
	b := NewRing(4)
	tee := Tee(a, b)
	tee.Emit(Event{Cycle: 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee did not fan out: a=%d b=%d", a.Len(), b.Len())
	}
}
