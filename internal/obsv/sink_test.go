package obsv

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func testEvents() []Event {
	return []Event{
		{Cycle: 10, Addr: 0x1000, Arg: 51, Kind: EvLoad, CPU: 0, Level: 2},
		{Cycle: 12, Addr: 1, Arg: 6, Arg2: 2, Kind: EvGrant, CPU: -1, Res: ResL2Bank},
		{Cycle: 11, Addr: 0x1000, Arg: 50, Kind: EvMSHRAlloc, CPU: 0},
		{Cycle: 61, Addr: 0x1000, Kind: EvMSHRRetire, CPU: 0},
		{Cycle: 30, Addr: 0x2000, Arg: 1, Kind: EvStore, CPU: 1, Level: 0},
		{Cycle: 40, Addr: 0x2000, Arg: 3, Kind: EvInval, CPU: 1},
		{Cycle: 45, Kind: EvMSHRFull, CPU: 2},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := testEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d events, want %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		if want.Kind == EvGrant || want.Kind == EvInval || want.Kind == EvMSHRAlloc ||
			want.Kind == EvMSHRRetire || want.Kind == EvMSHRFull {
			// Level is only serialized for memory-access kinds.
			want.Level = 0
		}
		if !reflect.DeepEqual(out[i], want) {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], want)
		}
	}
}

// chromeTrace mirrors the Chrome trace-event JSON object enough to
// validate structure.
type chromeTrace struct {
	TraceEvents []struct {
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   *uint64         `json:"ts"`
		Dur  uint64          `json:"dur"`
		Name string          `json:"name"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceValidJSONMonotonic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testEvents()); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("emitted Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var last uint64
	var timed, meta int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			continue
		case "X", "i":
			timed++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Ts == nil {
			t.Fatalf("%s event %q has no ts", ev.Ph, ev.Name)
		}
		if *ev.Ts < last {
			t.Fatalf("timestamps regress: %d after %d", *ev.Ts, last)
		}
		last = *ev.Ts
		if ev.Ph == "X" && ev.Dur == 0 {
			t.Errorf("complete event %q has zero duration", ev.Name)
		}
	}
	if meta == 0 {
		t.Error("no track-naming metadata emitted")
	}
	// EvMSHRRetire is folded into the allocation slice; everything else
	// must appear.
	if want := len(testEvents()) - 1; timed != want {
		t.Errorf("timed events = %d, want %d", timed, want)
	}
}

// TestChromeTraceGolden pins the exact serialized bytes: the writer must
// stay deterministic (sinks are diffed in golden tests downstream).
func TestChromeTraceGolden(t *testing.T) {
	events := []Event{
		{Cycle: 5, Addr: 0x40, Arg: 14, Kind: EvLoad, CPU: 1, Level: 1},
		{Cycle: 7, Addr: 0, Arg: 4, Arg2: 0, Kind: EvGrant, CPU: -1, Res: ResL2Bank},
	}
	const want = `{"traceEvents":[
{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"cpus"}},
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"shared resources"}},
{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"cpu1"}},
{"ph":"M","pid":1,"tid":512,"name":"thread_name","args":{"name":"l2-bank[0]"}},
{"ph":"X","pid":0,"tid":1,"ts":5,"dur":14,"name":"load L2","args":{"addr":"0x00000040"}},
{"ph":"X","pid":1,"tid":512,"ts":7,"dur":4,"name":"grant","args":{"wait":0}}
],"displayTimeUnit":"ms"}
`
	for i := 0; i < 3; i++ { // determinism across repeated serializations
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, events); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want {
			t.Fatalf("golden mismatch (run %d):\ngot:\n%s\nwant:\n%s", i, buf.String(), want)
		}
	}
}
