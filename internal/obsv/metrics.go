package obsv

import (
	"fmt"
	"math/bits"
	"strings"

	"cmpsim/internal/cyc"
)

// maxLevels bounds the memory-hierarchy levels tracked by the latency
// histograms (mirrors memsys.NumLevels; obsv sits below memsys).
const maxLevels = 4

// histBuckets is the number of log2 latency buckets: bucket i counts
// latencies in [2^(i-1)+1, 2^i] (bucket 0 counts latency <= 1). 32
// buckets cover any uint32 latency.
const histBuckets = 33

// LatencyHist is a per-level log2-bucket histogram of data access
// service latency.
type LatencyHist struct {
	Buckets [maxLevels][histBuckets]uint64
	Count   [maxLevels]uint64
	Sum     [maxLevels]uint64
}

// bucketOf maps a latency to its log2 bucket index.
func bucketOf(lat uint64) int {
	if lat <= 1 {
		return 0
	}
	return bits.Len64(lat - 1)
}

// BucketCeil returns the inclusive upper bound of bucket i.
func BucketCeil(i int) uint64 {
	if i <= 0 {
		return 1
	}
	return 1 << uint(i)
}

// Observe records one access serviced at level with the given latency.
func (h *LatencyHist) Observe(level uint8, lat uint64) {
	if level >= maxLevels {
		return
	}
	h.Buckets[level][bucketOf(lat)]++
	h.Count[level]++
	h.Sum[level] += lat
}

// Mean returns the mean latency observed at level.
func (h *LatencyHist) Mean(level uint8) float64 {
	if level >= maxLevels || h.Count[level] == 0 {
		return 0
	}
	return float64(h.Sum[level]) / float64(h.Count[level])
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// latency at level, resolved to bucket granularity.
func (h *LatencyHist) Quantile(level uint8, q float64) uint64 {
	if level >= maxLevels || h.Count[level] == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count[level]))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.Buckets[level][i]
		if cum >= target {
			return BucketCeil(i)
		}
	}
	return BucketCeil(histBuckets - 1)
}

// String renders the non-empty levels of the histogram.
func (h *LatencyHist) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %12s %10s %8s %8s  %s\n", "level", "accesses", "mean", "p50<=", "p99<=", "log2 buckets (lat<=1,2,4,8,...)")
	for l := uint8(0); l < maxLevels; l++ {
		if h.Count[l] == 0 {
			continue
		}
		hi := 0
		for i := 0; i < histBuckets; i++ {
			if h.Buckets[l][i] > 0 {
				hi = i
			}
		}
		var buckets []string
		for i := 0; i <= hi; i++ {
			buckets = append(buckets, fmt.Sprint(h.Buckets[l][i]))
		}
		fmt.Fprintf(&sb, "%-5s %12d %10.2f %8d %8d  [%s]\n",
			LevelName(l), h.Count[l], h.Mean(l), h.Quantile(l, 0.50), h.Quantile(l, 0.99),
			strings.Join(buckets, " "))
	}
	return sb.String()
}

// ResProbe is one resource's cumulative contention counters at a point
// in time (a snapshot of interconnect.ResourceStats).
type ResProbe struct {
	Name     string
	Acquires uint64
	Wait     uint64
	Busy     uint64
}

// Probe is a snapshot of a machine's cumulative counters at one cycle.
// The sampler differences successive probes into interval Samples; the
// core package builds probes from the memory-system report and the CPU
// stat blocks.
type Probe struct {
	Cycle        uint64
	PerCPUInsts  []uint64
	L1DAcc       uint64
	L1DMiss      uint64
	L2Acc        uint64
	L2Miss       uint64
	Resources    []ResProbe
	MSHRInFlight int // instantaneous outstanding misses at the probe cycle
}

// ResSample is one resource's activity during one interval.
type ResSample struct {
	Name     string
	Acquires uint64
	Wait     uint64
	Busy     uint64
	Util     float64 // Busy / interval length (can exceed 1 for banked resources)
}

// CPUSample is one CPU's activity during one interval.
type CPUSample struct {
	Insts uint64
	IPC   float64
}

// Sample is one closed interval of the metrics time-series.
type Sample struct {
	Start, End uint64 // [Start, End) in cycles
	PerCPU     []CPUSample
	Insts      uint64 // total instructions graduated in the interval
	IPC        float64
	L1DAcc     uint64
	L1DMiss    uint64
	L2Acc      uint64
	L2Miss     uint64
	Resources  []ResSample
	MSHRs      int // outstanding misses at the sample boundary
}

// L1DMissRate returns the interval's local L1 data miss rate.
func (s *Sample) L1DMissRate() float64 {
	if s.L1DAcc == 0 {
		return 0
	}
	return float64(s.L1DMiss) / float64(s.L1DAcc)
}

// L2MissRate returns the interval's local L2 miss rate.
func (s *Sample) L2MissRate() float64 {
	if s.L2Acc == 0 {
		return 0
	}
	return float64(s.L2Miss) / float64(s.L2Acc)
}

// Metrics is the interval sampler: every Interval cycles the core probes
// the machine and Record turns the delta since the previous probe into a
// Sample. It also accumulates the latency histogram fed by the memory
// system on every traced data access. Metrics is carried by pointer in
// memsys.Config so that configuration copies share one collector.
type Metrics struct {
	Interval uint64

	hist    LatencyHist
	samples []Sample
	last    Probe
	nextAt  uint64
	flushed bool
}

// NewMetrics returns a collector sampling every interval cycles.
func NewMetrics(interval uint64) *Metrics {
	if interval == 0 {
		interval = 10000
	}
	return &Metrics{Interval: interval, nextAt: interval}
}

// ObserveAccess feeds the latency histogram; called by the memory system
// for every completed data access when metrics are enabled.
func (m *Metrics) ObserveAccess(level uint8, lat uint64) { m.hist.Observe(level, lat) }

// Due reports whether a sample boundary has been reached at cycle.
func (m *Metrics) Due(cycle uint64) bool { return cycle >= m.nextAt }

// NextDue returns the next sample-boundary cycle. The
// quiescence-skipping scheduler uses it as one of the bounds the cycle
// loop may not jump over, so interval samples land on exactly the same
// cycles with and without skipping.
func (m *Metrics) NextDue() uint64 { return m.nextAt }

// Record closes the interval ending at p.Cycle. The caller probes the
// machine when Due reports true.
func (m *Metrics) Record(p Probe) {
	m.record(p)
	m.nextAt = p.Cycle + m.Interval
}

// Flush closes the final (possibly partial) interval at the run's last
// cycle, so short runs — and the tail of every run — are represented.
// Safe to call multiple times; only the first call past the last
// recorded boundary adds a sample.
func (m *Metrics) Flush(p Probe) {
	if m.flushed || p.Cycle <= m.last.Cycle {
		m.flushed = true
		return
	}
	m.record(p)
	m.flushed = true
}

func (m *Metrics) record(p Probe) {
	s := Sample{
		Start:   m.last.Cycle,
		End:     p.Cycle,
		L1DAcc:  cyc.Sub(p.L1DAcc, m.last.L1DAcc),
		L1DMiss: cyc.Sub(p.L1DMiss, m.last.L1DMiss),
		L2Acc:   cyc.Sub(p.L2Acc, m.last.L2Acc),
		L2Miss:  cyc.Sub(p.L2Miss, m.last.L2Miss),
		MSHRs:   p.MSHRInFlight,
	}
	n := float64(cyc.Sub(s.End, s.Start))
	for i, insts := range p.PerCPUInsts {
		var prev uint64
		if i < len(m.last.PerCPUInsts) {
			prev = m.last.PerCPUInsts[i]
		}
		d := cyc.Sub(insts, prev)
		s.PerCPU = append(s.PerCPU, CPUSample{Insts: d, IPC: float64(d) / n})
		s.Insts += d
	}
	s.IPC = float64(s.Insts) / n
	for i, rp := range p.Resources {
		var prev ResProbe
		if i < len(m.last.Resources) {
			prev = m.last.Resources[i]
		}
		rs := ResSample{
			Name:     rp.Name,
			Acquires: cyc.Sub(rp.Acquires, prev.Acquires),
			Wait:     cyc.Sub(rp.Wait, prev.Wait),
			Busy:     cyc.Sub(rp.Busy, prev.Busy),
		}
		rs.Util = float64(rs.Busy) / n
		s.Resources = append(s.Resources, rs)
	}
	m.samples = append(m.samples, s)
	m.last = p
}

// Samples returns the recorded time-series.
func (m *Metrics) Samples() []Sample { return m.samples }

// Hist returns the accumulated latency histogram.
func (m *Metrics) Hist() *LatencyHist { return &m.hist }

// String renders the time-series as a table plus the latency histogram.
func (m *Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "interval metrics (every %d cycles, %d samples)\n", m.Interval, len(m.samples))
	if len(m.samples) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-22s %8s %9s %9s %5s", "cycles", "ipc", "L1Dmiss%", "L2miss%", "mshr")
	for _, r := range m.samples[0].Resources {
		fmt.Fprintf(&sb, " %9s", r.Name+"%")
	}
	sb.WriteByte('\n')
	for _, s := range m.samples {
		fmt.Fprintf(&sb, "[%9d,%9d) %8.3f %9.2f %9.2f %5d",
			s.Start, s.End, s.IPC, 100*s.L1DMissRate(), 100*s.L2MissRate(), s.MSHRs)
		for _, r := range s.Resources {
			fmt.Fprintf(&sb, " %9.1f", 100*r.Util)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\ndata-access service latency (cycles):\n")
	sb.WriteString(m.hist.String())
	return sb.String()
}
