package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cmpsim/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the ownership golden file")

// TestOwnershipGoldenReport pins the sharedmut ownership classification
// of the real tree byte-for-byte. The golden file is the parallel-tick
// work list: a refactor that silently reclassifies a field (an
// arbitrated write going arbiter-free, a per-CPU struct becoming
// shared) shows up here as a diff before it can race. Regenerate after
// a deliberate change with:
//
//	go test ./internal/lint -run TestOwnershipGolden -update
func TestOwnershipGoldenReport(t *testing.T) {
	_, pkgs := loadRealModule(t)
	rep, err := lint.Ownership(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "ownership.golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(data))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("ownership classification drifted from %s;\nif the change is deliberate, regenerate with -update and commit the diff as the work-list change it is", golden)
		logFirstDiff(t, want, data)
	}

	// The report must be deterministic run to run, not just stable
	// against the golden: rebuild from the same packages and compare.
	rep2, err := lint.Ownership(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := rep2.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, append(data2, '\n')) {
		t.Error("two Ownership runs over the same packages differ; classification leaks map order")
	}
}

// TestOwnershipReportShape spot-checks load-bearing entries so a golden
// regeneration cannot silently bless a broken classifier.
func TestOwnershipReportShape(t *testing.T) {
	_, pkgs := loadRealModule(t)
	rep, err := lint.Ownership(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Roots) == 0 || len(rep.Arbiters) == 0 {
		t.Fatalf("report missing roots (%d) or arbiters (%d)", len(rep.Roots), len(rep.Arbiters))
	}
	class := map[string]string{}
	for _, f := range rep.Fields {
		class[f.Package+"."+f.Struct+"."+f.Field] = f.Class
	}
	for key, want := range map[string]string{
		// The MESI state tables only mutate through bus/directory
		// arbitration.
		"internal/memsys.reservations.valid": "shared-arbitrated",
		// Each CPU owns its own store buffer (declared per-cpu).
		"internal/memsys.writeBuf.pending": "per-cpu",
		// The IRQ hazard is fixed, not suppressed: raises funnel through
		// irqLines' arbiter methods (tick-phase raises buffer into the
		// pending set, merged at window boundaries), so the lines
		// classify as arbitrated and the Machine field itself is never
		// reassigned under a tick. No "flagged" class may reappear here —
		// the parallel tick relies on it.
		"internal/core.irqLines.pending": "shared-arbitrated",
		"internal/core.irqLines.live":    "shared-arbitrated",
		"internal/core.Machine.irq":      "tick-const",
		// Construction-time state never written under a tick.
		"internal/memsys.Config.NumCPUs": "tick-const",
	} {
		if got, ok := class[key]; !ok {
			t.Errorf("report has no entry for %s", key)
		} else if got != want {
			t.Errorf("%s classified %q, want %q", key, got, want)
		}
	}
}

func logFirstDiff(t *testing.T, want, got []byte) {
	t.Helper()
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Logf("first diff at line %d:\n golden: %s\n got:    %s", i+1, wl[i], gl[i])
			return
		}
	}
	t.Logf("files differ in length: golden %d lines, got %d lines", len(wl), len(gl))
}
