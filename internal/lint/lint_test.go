package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"cmpsim/internal/lint"
)

// The fixture loader is shared across subtests: the source importer
// caches every transitively type-checked package, so one loader keeps
// the suite fast.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
)

func sharedLoader() *lint.Loader {
	loaderOnce.Do(func() { loader = lint.NewLoader() })
	return loader
}

// wantRe matches the analysistest-style expectation comments used in
// the fixtures: `// want "substring"`.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// loadWants scans a fixture file for expectations, keyed by line.
func loadWants(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := map[int]string{}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
			wants[line] = m[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// analyzerByName fetches one analyzer from the registered suite, so the
// test exercises exactly what cmd/simlint runs.
func analyzerByName(t *testing.T, name string) *lint.Analyzer {
	t.Helper()
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("analyzer %q not registered", name)
	return nil
}

// TestAnalyzersCatchFixtures loads each analyzer's seeded-violation
// fixture and requires the findings to match the `// want` annotations
// exactly — no misses, no extras, and suppressed lines stay silent.
func TestAnalyzersCatchFixtures(t *testing.T) {
	// Each fixture masquerades as an in-scope simulator package via its
	// fake relPath: internal/cache for the per-CPU-domain analyzers,
	// internal/memsys for the ones keyed to the shared domain (sharedmut
	// ownership defaults, cachekey's Config audit).
	fixtures := []struct{ name, relPath string }{
		{"determinism", "internal/cache"},
		{"cycleflow", "internal/cache"},
		{"hotalloc", "internal/cache"},
		{"statreg", "internal/cache"},
		{"sharedmut", "internal/memsys"},
		{"neutral", "internal/cache"},
		{"cachekey", "internal/memsys"},
	}
	for _, fx := range fixtures {
		name := fx.name
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(t, name)
			dir := filepath.Join("testdata", "src", name)
			if name == "neutral" {
				// The neutral fixture consumes stand-in observability
				// packages; preload them under paths whose suffixes mark
				// them as the obs surface.
				for _, sub := range []string{"obsv", "hostprof"} {
					obs, err := sharedLoader().Load(filepath.Join(dir, sub),
						"cmpsim/lintfixture/internal/"+sub, "internal/"+sub)
					if err != nil {
						t.Fatalf("load %s fixture: %v", sub, err)
					}
					sharedLoader().Preload(obs)
				}
			}
			pkg, err := sharedLoader().Load(dir, "cmpsim/lintfixture/"+name, fx.relPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			if pkg == nil {
				t.Fatalf("fixture %s has no files", dir)
			}
			diags, err := lint.RunAnalyzers([]*lint.Analyzer{a}, []*lint.Package{pkg})
			if err != nil {
				t.Fatal(err)
			}

			wants := loadWants(t, filepath.Join(dir, "fixture.go"))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations", dir)
			}
			matched := map[int]bool{}
			for _, d := range diags {
				want, ok := wants[d.Pos.Line]
				if !ok {
					t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("finding at line %d = %q, want substring %q", d.Pos.Line, d.Message, want)
				}
				matched[d.Pos.Line] = true
			}
			for line, want := range wants {
				if !matched[line] {
					t.Errorf("missed expected finding at line %d (want %q)", line, want)
				}
			}
		})
	}
}

// The real-module load is shared across the whole-tree tests (shipped
// tree, ownership golden): type-checking the module from source once is
// expensive enough to amortize.
var (
	moduleOnce sync.Once
	modulePkgs []*lint.Package
	moduleRoot string
	moduleErr  error
)

func loadRealModule(t *testing.T) (string, []*lint.Package) {
	t.Helper()
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	moduleOnce.Do(func() {
		moduleRoot, moduleErr = lint.FindModuleRoot(".")
		if moduleErr != nil {
			return
		}
		modulePkgs, moduleErr = sharedLoader().LoadModule(moduleRoot)
	})
	if moduleErr != nil {
		t.Fatal(moduleErr)
	}
	return moduleRoot, modulePkgs
}

// TestShippedTreeClean runs the full suite over the real module and
// requires zero findings: the simulator itself must satisfy its own
// invariants (violations that are deliberate carry simlint:allow
// comments in the source).
func TestShippedTreeClean(t *testing.T) {
	root, pkgs := loadRealModule(t)
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; loader is missing the tree", len(pkgs), root)
	}
	diags, err := lint.RunAnalyzers(lint.Analyzers(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		rel, rerr := filepath.Rel(root, d.Pos.Filename)
		if rerr != nil {
			rel = d.Pos.Filename
		}
		t.Errorf("%s", fmt.Sprintf("%s:%d:%d: [%s] %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
}

// TestDeterminismScopeExcludesDriverPool pins the goroutine boundary:
// the determinism analyzer's goroutine ban covers the simulation core,
// while the driver-level parallelism one level up — internal/runner's
// worker pool and the cmd/ drivers that dispatch through it — is
// deliberately outside its scope. If the scope ever grows to swallow
// the runner (breaking the parallel experiment driver) or shrinks to
// exempt part of the core (losing the in-run goroutine ban), this
// fails before the tree does.
func TestDeterminismScopeExcludesDriverPool(t *testing.T) {
	scope := lint.DeterminismAnalyzer.Scope
	for _, rel := range []string{
		"internal/cache", "internal/coherence", "internal/core",
		"internal/cpu", "internal/cpu/mxs", "internal/memsys",
		"internal/interconnect", "internal/event",
	} {
		if !scope(rel) {
			t.Errorf("simulation-core package %s escaped the determinism scope", rel)
		}
	}
	for _, rel := range []string{
		"internal/runner", "cmd/experiments", "cmd/sweep", "cmd/cmpsim",
		"internal/workload", "internal/stats", "internal/obsv",
	} {
		if scope(rel) {
			t.Errorf("driver-level package %s must stay outside the determinism scope (the runner pool spawns goroutines by design)", rel)
		}
	}
}
