package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseExprT(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func parseDeclT(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatalf("no func decl in %q", src)
	return nil
}

func TestUnparenAndExprKey(t *testing.T) {
	e := parseExprT(t, "((x))")
	if _, ok := unparen(e).(*ast.Ident); !ok {
		t.Errorf("unparen(((x))) = %T, want *ast.Ident", unparen(e))
	}
	a, b := parseExprT(t, "(cur + 1)"), parseExprT(t, "cur+1")
	if exprKey(a) != exprKey(b) {
		t.Errorf("exprKey treats %q and %q as different", "(cur + 1)", "cur+1")
	}
}

func TestConjunctsAndDisjuncts(t *testing.T) {
	if got := conjuncts(parseExprT(t, "a && b && (c || d)")); len(got) != 3 {
		t.Errorf("conjuncts = %d terms, want 3", len(got))
	}
	if got := disjuncts(parseExprT(t, "a || b || c")); len(got) != 3 {
		t.Errorf("disjuncts = %d terms, want 3", len(got))
	}
	if got := conjuncts(parseExprT(t, "a")); len(got) != 1 {
		t.Errorf("conjuncts of a non-&& expr = %d terms, want 1", len(got))
	}
}

func TestHasNowParam(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"func f(now uint64) {}", true},
		{"func f(a int, now uint64) {}", true},
		{"func f(cycle, now uint64) {}", true},
		{"func f(now uint32) {}", false}, // wrong type
		{"func f(later uint64) {}", false},
		{"func f() {}", false},
	}
	for _, c := range cases {
		if got := hasNowParam(parseDeclT(t, c.src)); got != c.want {
			t.Errorf("hasNowParam(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsTerminalAndBodyTerminates(t *testing.T) {
	terminating := []string{
		"func f() { if x { return } }",
		"func f() { if x { break } }",
		"func f() { if x { panic(1) } }",
		"func f() { if x { y++; return } }",
	}
	for _, src := range terminating {
		fd := parseDeclT(t, src)
		ifs := fd.Body.List[0].(*ast.IfStmt)
		if !bodyTerminates(ifs) {
			t.Errorf("bodyTerminates(%q) = false, want true", src)
		}
	}
	fd := parseDeclT(t, "func f() { if x { y++ } }")
	if bodyTerminates(fd.Body.List[0].(*ast.IfStmt)) {
		t.Error("a non-terminal body reported terminating")
	}
}

func TestScopeUnder(t *testing.T) {
	scope := scopeUnder("internal/cache", "internal/core")
	for _, rel := range []string{"internal/cache", "internal/cache/lru", "internal/core"} {
		if !scope(rel) {
			t.Errorf("scope(%q) = false, want true", rel)
		}
	}
	for _, rel := range []string{"internal/cachex", "internal", "cmd/simlint", ""} {
		if scope(rel) {
			t.Errorf("scope(%q) = true, want false", rel)
		}
	}
}

func TestInspectStackOrder(t *testing.T) {
	f, err := parser.ParseFile(token.NewFileSet(), "t.go",
		"package p\nfunc f() { if true { g() } }", 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawCall bool
	inspectStack(f, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sawCall = true
		// Outermost first, excluding the node itself.
		if len(stack) == 0 {
			t.Fatal("empty stack at a nested call")
		}
		if _, ok := stack[0].(*ast.File); !ok {
			t.Errorf("stack[0] = %T, want *ast.File", stack[0])
		}
		if stack[len(stack)-1] == call {
			t.Error("stack includes the visited node itself")
		}
		if enclosingFunc(stack) == nil {
			t.Error("enclosingFunc missed the FuncDecl on the stack")
		}
		if !containsNode(stack[len(stack)-1], call) {
			t.Error("containsNode(parent, node) = false")
		}
	})
	if !sawCall {
		t.Fatal("inspectStack never visited the call")
	}
}
