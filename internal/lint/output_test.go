package lint_test

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"cmpsim/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "/m/internal/cache/lru.go", Line: 42, Column: 7},
			Analyzer: "hotalloc",
			Message:  "append allocates on the hot path",
		},
		{
			Pos:      token.Position{Filename: "/m/internal/core/core.go", Line: 7, Column: 2},
			Analyzer: "sharedmut",
			Message:  "shared field X is written on an arbiter-free path",
		},
	}
}

// TestJSONFormatPinned locks the -json byte format: sorted records,
// two-space indent, module-relative paths, trailing newline, "[]" when
// clean.
func TestJSONFormatPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, "/m", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/cache/lru.go",
    "line": 42,
    "column": 7,
    "analyzer": "hotalloc",
    "message": "append allocates on the hot path"
  },
  {
    "file": "internal/core/core.go",
    "line": 7,
    "column": 2,
    "analyzer": "sharedmut",
    "message": "shared field X is written on an arbiter-free path"
  }
]
`
	if buf.String() != want {
		t.Errorf("JSON format drifted:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}

	buf.Reset()
	if err := lint.WriteJSON(&buf, "/m", nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Errorf("clean JSON output = %q, want %q", buf.String(), "[]\n")
	}
}

// TestSARIFFormatPinned locks the SARIF skeleton: version 2.1.0, one
// rule per analyzer (sorted, present even with zero findings), one
// result per finding with a module-relative artifact URI.
func TestSARIFFormatPinned(t *testing.T) {
	analyzers := []*lint.Analyzer{
		{Name: "sharedmut", Doc: "classify simulator state"},
		{Name: "hotalloc", Doc: "forbid hot-path allocation"},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, "/m", analyzers, sampleDiags()[:1]); err != nil {
		t.Fatal(err)
	}
	want := `{
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "simlint",
          "rules": [
            {
              "id": "hotalloc",
              "shortDescription": {
                "text": "forbid hot-path allocation"
              }
            },
            {
              "id": "sharedmut",
              "shortDescription": {
                "text": "classify simulator state"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "hotalloc",
          "level": "error",
          "message": {
            "text": "append allocates on the hot path"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/cache/lru.go"
                },
                "region": {
                  "startLine": 42,
                  "startColumn": 7
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("SARIF format drifted:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestBaselineRoundTrip covers the suppression ledger: building from
// findings, count-bounded filtering, and save/load byte stability.
func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	b := lint.BaselineOf("/m", diags)
	if len(b.Entries) != 2 {
		t.Fatalf("BaselineOf produced %d entries, want 2", len(b.Entries))
	}

	// A baseline of everything filters everything.
	if kept := b.Filter("/m", diags); len(kept) != 0 {
		t.Errorf("full baseline kept %d findings, want 0", len(kept))
	}

	// A fresh finding (same file+analyzer, new message) survives.
	extra := lint.Diagnostic{
		Pos:      token.Position{Filename: "/m/internal/cache/lru.go", Line: 50, Column: 1},
		Analyzer: "hotalloc",
		Message:  "make allocates on the hot path",
	}
	if kept := b.Filter("/m", append(diags, extra)); len(kept) != 1 || kept[0].Message != extra.Message {
		t.Errorf("new finding did not survive the baseline: kept %v", kept)
	}

	// Counts bound absorption: two findings with the same key consume
	// one entry of count 1 plus one survivor.
	dup := diags[0]
	dup.Pos.Line = 99
	if kept := b.Filter("/m", append(diags, dup)); len(kept) != 1 {
		t.Errorf("count-1 entry absorbed %d duplicates, want exactly 1 survivor", 3-len(kept)-1)
	}

	// Save/load round-trips and the file is byte-stable.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept := loaded.Filter("/m", diags); len(kept) != 0 {
		t.Errorf("loaded baseline kept %d findings, want 0", len(kept))
	}
	if err := loaded.Save(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("baseline regeneration is not byte-stable")
	}

	// A missing file is an empty baseline, not an error.
	empty, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if kept := empty.Filter("/m", diags); len(kept) != len(diags) {
		t.Errorf("empty baseline filtered findings: kept %d of %d", len(kept), len(diags))
	}
}
