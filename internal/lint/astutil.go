package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// inspectStack walks every node of f, passing the ancestor stack
// (outermost first, not including n itself) alongside each node.
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprKey renders an expression to a comparable string, ignoring
// parentheses (so `cur+1` and `(cur + 1)` compare equal).
func exprKey(e ast.Expr) string {
	return types.ExprString(unparen(e))
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcType returns the signature AST of a FuncDecl or FuncLit node.
func funcType(fn ast.Node) *ast.FuncType {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Type
	case *ast.FuncLit:
		return f.Type
	}
	return nil
}

// hasNowParam reports whether the function has a parameter named "now"
// whose declared type is spelled uint64.
func hasNowParam(fn ast.Node) bool {
	ft := funcType(fn)
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		id, ok := unparen(field.Type).(*ast.Ident)
		if !ok || id.Name != "uint64" {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "now" {
				return true
			}
		}
	}
	return false
}

// conjuncts splits a condition on && into its top-level conjuncts.
func conjuncts(cond ast.Expr) []ast.Expr {
	cond = unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.LAND {
		return append(conjuncts(be.X), conjuncts(be.Y)...)
	}
	return []ast.Expr{cond}
}

// disjuncts splits an || chain into its operands (a non-|| expression is
// its own single disjunct). When a condition is known false, every
// disjunct is individually false.
func disjuncts(cond ast.Expr) []ast.Expr {
	cond = unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.LOR {
		return append(disjuncts(be.X), disjuncts(be.Y)...)
	}
	return []ast.Expr{cond}
}

// isTerminal reports whether a statement unconditionally leaves the
// enclosing block (return, break, continue, goto, or panic).
func isTerminal(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(st.List); n > 0 {
			return isTerminal(st.List[n-1])
		}
	}
	return false
}

// bodyTerminates reports whether the if body ends in a terminal
// statement.
func bodyTerminates(ifs *ast.IfStmt) bool {
	if ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	return isTerminal(ifs.Body.List[len(ifs.Body.List)-1])
}

// containsNode reports whether outer's subtree contains target.
func containsNode(outer ast.Node, target ast.Node) bool {
	if outer == nil {
		return false
	}
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// pkgNameOf resolves the package a selector's qualifier identifies, or
// "" if the qualifier is not a package name.
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// typeHasMethod reports whether t (or *t) has a method with one of the
// given names — the duck-typing test for "is this a tracer/metrics
// sink".
func typeHasMethod(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	for _, ms := range []*types.MethodSet{
		types.NewMethodSet(t),
		types.NewMethodSet(types.NewPointer(t)),
	} {
		for i := 0; i < ms.Len(); i++ {
			name := ms.At(i).Obj().Name()
			for _, want := range names {
				if name == want {
					return true
				}
			}
		}
	}
	return false
}

// scopeUnder returns a Scope predicate matching packages whose
// module-relative path equals or sits below one of the prefixes.
func scopeUnder(prefixes ...string) func(string) bool {
	return func(rel string) bool {
		for _, p := range prefixes {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		}
		return false
	}
}
