package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces that the simulator's state machines are
// bit-for-bit reproducible: two runs with the same seed must produce
// identical cycle counts and statistics. Inside the simulator packages
// it forbids
//
//   - wall-clock reads (time.Now and friends) — simulated time is the
//     only clock;
//   - the math/rand global source — randomness must flow from an
//     explicitly seeded *rand.Rand so a seed pins the run;
//   - goroutine spawns — the event loop is single-threaded by design
//     and scheduler interleaving would leak into results;
//   - ranging over a map — Go randomizes map iteration order, so any
//     map-order-dependent side effect (ordering of emitted events,
//     float accumulation order, tie-breaking) varies run to run.
//
// Map iteration whose effects are provably order-independent (e.g. a
// deletion-only sweep) is suppressed with //simlint:allow determinism.
//
// The goroutine ban is deliberately scoped to the simulation core.
// One level up, internal/runner's worker pool and the cmd/ drivers
// spawn goroutines on purpose: distinct runs share no mutable state,
// so run-level parallelism is sound precisely because in-run
// parallelism is banned here. The scope list below is that boundary —
// internal/runner and cmd/* are intentionally absent, and
// TestDeterminismScopeExcludesDriverPool pins it.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, goroutines and map-order iteration in simulator state machines",
	Scope: scopeUnder(
		"internal/cache", "internal/coherence", "internal/core",
		"internal/cpu", "internal/memsys", "internal/interconnect",
		"internal/event",
	),
	Run: runDeterminism,
}

// wallClockFuncs are the time-package functions that observe or depend
// on the host clock. Pure types and constants (time.Duration etc.) stay
// legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand names that do NOT touch the global
// source: constructing an explicitly seeded generator is the approved
// pattern.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned inside simulator code; the event loop must stay single-threaded")
			case *ast.SelectorExpr:
				switch pkgNameOf(info, n) {
				case "time":
					if wallClockFuncs[n.Sel.Name] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulated cycles are the only clock", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					obj := info.Uses[n.Sel]
					if fn, ok := obj.(*types.Func); ok && !randConstructors[fn.Name()] {
						sig := fn.Type().(*types.Signature)
						if sig.Recv() == nil { // package-level func ⇒ global source
							pass.Reportf(n.Pos(), "rand.%s uses the process-global random source; seed an explicit *rand.Rand instead", fn.Name())
						}
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "ranging over map %s iterates in nondeterministic order; sort keys or restructure", types.ExprString(n.X))
				}
			}
			return true
		})
	}
	return nil
}
