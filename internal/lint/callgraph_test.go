package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"cmpsim/internal/lint"
)

// writeFixturePkg materializes one package's source in a temp dir.
func writeFixturePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCallGraphCyclesAndPath proves the traversal terminates on mutual
// recursion and reconstructs a root→target chain through it.
func TestCallGraphCyclesAndPath(t *testing.T) {
	dir := writeFixturePkg(t, `package a

type Ring struct{}

func (r *Ring) Step(now uint64) { helper() }

func helper() { mutual1() }

func mutual1() { mutual2() }

func mutual2() { mutual1() }

func unreached() { helper() }
`)
	loader := lint.NewLoader()
	pkg, err := loader.Load(dir, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkg})

	step := lint.FuncKey{Pkg: "cg/a", Recv: "Ring", Name: "Step"}
	reach := g.Reachable([]lint.FuncKey{step}, lint.ReachOpts{})
	for _, name := range []string{"helper", "mutual1", "mutual2"} {
		if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Name: name}]; !ok {
			t.Errorf("%s not reached from Ring.Step", name)
		}
	}
	if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Name: "unreached"}]; ok {
		t.Error("unreached function must not appear in the closure")
	}

	path := lint.Path(reach, lint.FuncKey{Pkg: "cg/a", Name: "mutual2"})
	got := lint.PathString(path)
	want := "a.Ring.Step → a.helper → a.mutual1 → a.mutual2"
	if got != want {
		t.Errorf("Path = %q, want %q", got, want)
	}
}

// TestCallGraphCrossPackageEdges loads two packages, the second
// importing the first through the loader's preload hook, and requires
// reachability to cross the boundary.
func TestCallGraphCrossPackageEdges(t *testing.T) {
	dirA := writeFixturePkg(t, `package a

type Ring struct{ n int }

func (r *Ring) Step(now uint64) { r.n++ }
`)
	dirB := writeFixturePkg(t, `package b

import "cg/a"

type Core struct{ r *a.Ring }

func (c *Core) Tick(now uint64) { c.r.Step(now) }
`)
	loader := lint.NewLoader()
	pkgA, err := loader.Load(dirA, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	loader.Preload(pkgA)
	pkgB, err := loader.Load(dirB, "cg/b", "internal/core")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkgA, pkgB})

	tick := lint.FuncKey{Pkg: "cg/b", Recv: "Core", Name: "Tick"}
	reach := g.Reachable([]lint.FuncKey{tick}, lint.ReachOpts{})
	step := lint.FuncKey{Pkg: "cg/a", Recv: "Ring", Name: "Step"}
	if _, ok := reach[step]; !ok {
		t.Fatalf("cross-package callee %v not reached from %v", step, tick)
	}
}

// TestCallGraphInterfaceDispatch requires a call through an interface
// method to reach every module method matching the name and arity, and
// none with a different shape.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	dir := writeFixturePkg(t, `package a

type Sink interface{ Observe(x uint64) }

type impl struct{ n uint64 }

func (i *impl) Observe(x uint64) { i.n += x }

type other struct{}

// Observe with a different arity must not be a dispatch target.
func (o *other) Observe(x, y uint64) {}

func drive(s Sink, now uint64) { s.Observe(now) }
`)
	loader := lint.NewLoader()
	pkg, err := loader.Load(dir, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkg})

	drive := lint.FuncKey{Pkg: "cg/a", Name: "drive"}
	reach := g.Reachable([]lint.FuncKey{drive}, lint.ReachOpts{})
	if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Recv: "impl", Name: "Observe"}]; !ok {
		t.Error("interface dispatch missed the name+arity-matching implementation")
	}
	if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Recv: "other", Name: "Observe"}]; ok {
		t.Error("interface dispatch matched a method with different arity")
	}
}

// TestReachableBoundary requires boundary functions to be reached but
// not traversed through — the arbiter semantics sharedmut builds on.
func TestReachableBoundary(t *testing.T) {
	dir := writeFixturePkg(t, `package a

func root(now uint64) { arbiter() }

func arbiter() { protected() }

func protected() {}
`)
	loader := lint.NewLoader()
	pkg, err := loader.Load(dir, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkg})

	root := lint.FuncKey{Pkg: "cg/a", Name: "root"}
	arb := lint.FuncKey{Pkg: "cg/a", Name: "arbiter"}
	reach := g.Reachable([]lint.FuncKey{root}, lint.ReachOpts{
		Boundary: func(k lint.FuncKey) bool { return k == arb },
	})
	if _, ok := reach[arb]; !ok {
		t.Error("boundary function itself must be reached")
	}
	if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Name: "protected"}]; ok {
		t.Error("traversal crossed a boundary function")
	}
}

// TestReachableSkipsFatalEdges requires panic-argument call sites not
// to conduct reachability when SkipFatal is set (the hotalloc rule: a
// dying simulator allocates for free).
func TestReachableSkipsFatalEdges(t *testing.T) {
	dir := writeFixturePkg(t, `package a

func root(now uint64) {
	if now == 0 {
		panic(render())
	}
}

func render() string { return "boom" }
`)
	loader := lint.NewLoader()
	pkg, err := loader.Load(dir, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkg})

	root := lint.FuncKey{Pkg: "cg/a", Name: "root"}
	render := lint.FuncKey{Pkg: "cg/a", Name: "render"}
	if reach := g.Reachable([]lint.FuncKey{root}, lint.ReachOpts{SkipFatal: true}); len(reach) != 1 {
		t.Errorf("SkipFatal closure = %v, want only the root", reach)
	}
	if reach := g.Reachable([]lint.FuncKey{root}, lint.ReachOpts{}); len(reach) != 2 {
		t.Errorf("default closure = %v, want root plus %v", reach, render)
	}
}

// TestFuncLitEdgesAttributeUpward pins the closure convention: calls
// made inside a function literal belong to the enclosing declaration.
func TestFuncLitEdgesAttributeUpward(t *testing.T) {
	dir := writeFixturePkg(t, `package a

func root(now uint64) {
	f := func() { callee() }
	f()
}

func callee() {}
`)
	loader := lint.NewLoader()
	pkg, err := loader.Load(dir, "cg/a", "internal/cache")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph([]*lint.Package{pkg})
	reach := g.Reachable([]lint.FuncKey{{Pkg: "cg/a", Name: "root"}}, lint.ReachOpts{})
	if _, ok := reach[lint.FuncKey{Pkg: "cg/a", Name: "callee"}]; !ok {
		t.Error("call inside a FuncLit did not attribute to the enclosing declaration")
	}
}
