// Package lint is simlint's analysis framework: a small, dependency-free
// re-implementation of the go/analysis driver model on top of go/parser
// and go/types (the module deliberately has no external dependencies, so
// golang.org/x/tools is not available). It loads and type-checks the
// module's packages with the standard library's source importer and runs
// a fixed suite of simulator-invariant analyzers over them:
//
//   - determinism: no wall-clock, global rand, goroutines or map-order
//     iteration inside the simulator state machines
//   - cycleflow: uint64 cycle arithmetic cannot wrap (subtractions must
//     be guarded, blessed through internal/cyc, or suppressed) and
//     cycle-taking functions cannot return a completion before "now"
//   - hotalloc: the tracer-disabled fast path stays allocation- and
//     fmt-free (the 0 allocs/op contract of internal/obsv)
//   - statreg: every counter field of a *Stats struct is read by some
//     report/merge path, so counters cannot be dropped silently
//
// A finding is suppressed by a comment on the same line or the line
// above, naming the analyzer:
//
//	//simlint:allow determinism — iteration order is unobservable here
//
// New analyzers implement Run (per package) or RunModule (whole module
// at once) and are registered in Analyzers; see DESIGN.md for the
// step-by-step recipe.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Exactly one of Run / RunModule is
// set: Run sees one package at a time; RunModule sees every loaded
// package in one call (for cross-package reachability like statreg).
type Analyzer struct {
	Name string
	Doc  string

	// Scope reports whether the analyzer applies to a package (by its
	// module-relative import path, e.g. "internal/cache"). nil means
	// every package.
	Scope func(relPath string) bool

	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Analyzers is the simlint suite, in reporting order. The first four
// are the v1 AST-local checkers; sharedmut, neutral and cachekey are
// the v2 module-wide dataflow suite built on the shared call graph
// (callgraph.go) that machine-checks the preconditions for the
// parallel tick, the telemetry neutrality contract, and the result
// cache.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CycleflowAnalyzer,
		HotallocAnalyzer,
		StatregAnalyzer,
		SharedmutAnalyzer,
		NeutralAnalyzer,
		CachekeyAnalyzer,
	}
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless a simlint:allow comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.Pkg, p.Analyzer, p.diags, pos, format, args...)
}

// ModulePass is a module-wide analyzer's view of every loaded package.
// Packages is the analyzer's scoped slice; the full module (for
// cross-package reachability and the shared call graph) is available
// through Graph and allPackages.
type ModulePass struct {
	Analyzer *Analyzer
	Packages []*Package
	diags    *[]Diagnostic
	all      []*Package
	shared   *moduleShared
}

// Reportf records a finding positioned in pkg.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	report(pkg, p.Analyzer, p.diags, pos, format, args...)
}

func report(pkg *Package, a *Analyzer, diags *[]Diagnostic, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if pkg.allowedAt(position, a.Name) {
		return
	}
	*diags = append(*diags, Diagnostic{
		Pos:      position,
		Analyzer: a.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	Path    string // full import path ("cmpsim/internal/cache")
	RelPath string // module-relative ("internal/cache"; "" for the root)
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// allow maps (file base name, line) to the analyzer names a
	// simlint:allow comment suppresses there.
	allow map[allowKey]bool
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

func (p *Package) allowedAt(pos token.Position, analyzer string) bool {
	k := allowKey{file: pos.Filename, line: pos.Line, analyzer: analyzer}
	return p.allow[k]
}

// collectAllows indexes simlint:allow comments. A comment suppresses
// findings on its own line and on the following line, so both trailing
// and preceding-line placement work.
func (p *Package) collectAllows() {
	p.allow = map[allowKey]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "simlint:allow")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(text[idx+len("simlint:allow"):])
				name := rest
				if i := strings.IndexAny(rest, " \t—-("); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.allow[allowKey{pos.Filename, pos.Line, name}] = true
				p.allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
}

// Loader loads and type-checks module packages, sharing one file set
// and one source importer (which caches transitively-imported packages
// across loads).
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer

	// preloaded maps import paths to packages registered via Preload,
	// consulted before the source importer. Fixture tests use it to
	// stand in for module packages (a fake internal/obsv the go tool
	// could never resolve from a testdata directory).
	preloaded map[string]*types.Package
}

// NewLoader returns a loader backed by the standard library's source
// importer (type-checks imports from source; no export data needed).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		imp:       importer.ForCompiler(fset, "source", nil),
		preloaded: map[string]*types.Package{},
	}
}

// Preload registers an already-loaded package under its import path so
// later Loads can import it by that path.
func (l *Loader) Preload(p *Package) { l.preloaded[p.Path] = p.Types }

// loaderImporter resolves preloaded paths first, then delegates to the
// source importer.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	if p := li.l.preloaded[path]; p != nil {
		return p, nil
	}
	return li.l.imp.Import(path)
}

func (li loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := li.l.preloaded[path]; p != nil {
		return p, nil
	}
	if from, ok := li.l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return li.l.imp.Import(path)
}

// Load parses and type-checks the non-test .go files of the package in
// dir under the given import path.
func (l *Loader) Load(dir, path, relPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", n, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: loaderImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %v", path, typeErrs[0])
	}
	p := &Package{
		Path:    path,
		RelPath: relPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	p.collectAllows()
	return p, nil
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package of the module rooted at root, skipping
// testdata and hidden directories.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		imp := modPath
		relPath := ""
		if rel != "." {
			imp = modPath + "/" + rel
			relPath = rel
		}
		pkg, err := l.Load(path, imp, relPath)
		if err != nil {
			return fmt.Errorf("%s: %w", imp, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// RunAnalyzers runs the given analyzers over the packages and returns
// the findings sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	shared := &moduleShared{}
	for _, a := range analyzers {
		var scoped []*Package
		for _, pkg := range pkgs {
			if a.Scope == nil || a.Scope(pkg.RelPath) {
				scoped = append(scoped, pkg)
			}
		}
		switch {
		case a.RunModule != nil:
			mp := &ModulePass{Analyzer: a, Packages: scoped, diags: &diags, all: pkgs, shared: shared}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range scoped {
				pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
