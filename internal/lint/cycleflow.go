package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// CycleflowAnalyzer enforces the repo's cycle-arithmetic discipline.
// Cycles are uint64 and only grow, so the dangerous operation is
// subtraction: an out-of-order pair of timestamps wraps to ~2^64 and
// poisons every downstream latency statistic (this class of bug
// motivated internal/cyc). Two rules:
//
//  1. A uint64 subtraction a - b must be dominated by a guard proving
//     a >= b: either an enclosing if/for branch whose condition compares
//     the same two expressions the right way, or an earlier early-exit
//     `if a < b { return ... }` in the same block. Calls to cyc.Sub /
//     cyc.Lat are the blessed saturating form and need no guard.
//
//  2. A function taking the current cycle (`now uint64`) must not
//     return `now - c` for a positive constant c: a completion time
//     strictly before now is always a modelling bug, guard or not.
//
// Arithmetic that is safe for a reason the analyzer cannot see is
// suppressed with //simlint:allow cycleflow.
var CycleflowAnalyzer = &Analyzer{
	Name: "cycleflow",
	Doc:  "forbid unguarded uint64 cycle subtraction and completion times before now",
	Scope: func(rel string) bool {
		if rel == "internal/cyc" || rel == "" {
			return false // cyc implements the guarded form itself
		}
		return scopeUnder("internal", "cmd")(rel)
	},
	Run: runCycleflow,
}

func runCycleflow(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.SUB {
				return
			}
			tv, ok := info.Types[be]
			if !ok || !isUint64(tv.Type) {
				return
			}
			if tv.Value != nil {
				return // constant-folded at compile time; cannot wrap at runtime
			}
			xs, ys := exprKey(be.X), exprKey(be.Y)
			if returnsBeforeNow(info, be, stack) {
				pass.Reportf(be.Pos(), "returns completion cycle %s - %s, which is before now", xs, ys)
				return
			}
			if subGuarded(be, xs, ys, stack) {
				return
			}
			pass.Reportf(be.Pos(), "unguarded uint64 cycle subtraction %s - %s may wrap; guard with a comparison or use cyc.Sub", xs, ys)
		})
	}
	return nil
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// subGuarded reports whether the subtraction sub (operands xs - ys) is
// dominated by a guard establishing xs >= ys.
func subGuarded(sub ast.Node, xs, ys string, stack []ast.Node) bool {
	// Enclosing if/for branches.
	inner := ast.Node(sub)
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			inThen := containsNode(s.Body, inner)
			inElse := s.Else != nil && containsNode(s.Else, inner)
			if inThen && condImpliesGE(s.Cond, xs, ys) {
				return true
			}
			// In the else branch the condition is false, so a failed
			// `a < b` proves a >= b.
			if inElse && condFalseImpliesGE(s.Cond, xs, ys) {
				return true
			}
		case *ast.ForStmt:
			if s.Cond != nil && containsNode(s.Body, inner) && condImpliesGE(s.Cond, xs, ys) {
				return true
			}
		case *ast.BlockStmt:
			// Earlier early-exit guard in the same block: any preceding
			// `if a < b { return/continue/panic }` dominates the rest.
			var child ast.Node = sub
			if i+1 <= len(stack)-1 {
				child = stack[i+1]
			}
			for _, st := range s.List {
				if containsNode(st, inner) || st == child {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if !ok || !bodyTerminates(ifs) {
					continue
				}
				if condFalseImpliesGE(ifs.Cond, xs, ys) {
					return true
				}
			}
		}
	}
	return false
}

// condImpliesGE reports whether cond being true proves xs >= ys; &&
// conjuncts each hold, so each is tried. Beyond the exact comparison it
// understands the skip-jump idiom of bounding against ys plus a
// non-negative literal: a true `xs > ys+k` (or `ys+k < xs`) proves
// xs >= ys for any constant k >= 0.
func condImpliesGE(cond ast.Expr, xs, ys string) bool {
	for _, c := range conjuncts(cond) {
		be, ok := unparen(c).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		l, r := exprKey(be.X), exprKey(be.Y)
		switch be.Op {
		case token.GTR, token.GEQ: // l > r or l >= r
			if l == xs && (r == ys || baseOfAddConst(be.Y) == ys) {
				return true
			}
		case token.LSS, token.LEQ: // l < r  ⇒  r > l
			if r == xs && (l == ys || baseOfAddConst(be.X) == ys) {
				return true
			}
		case token.EQL:
			if (l == xs && r == ys) || (l == ys && r == xs) {
				return true
			}
		}
	}
	return false
}

// condFalseImpliesGE reports whether cond being false proves xs >= ys —
// the question asked by an else branch or a taken early exit. A false
// condition falsifies every || disjunct individually, so each is tried:
// a failed `xs < ys` or `xs <= ys` (or the mirrored `ys > xs`) proves
// the subtraction safe, and so does a failed `xs <= ys+k` for a
// non-negative literal k (the skip-jump guard `if target <= step+1 {
// return }`). && conjunctions prove nothing here — ¬(A && B) leaves
// either conjunct possibly true — so they are deliberately not split.
func condFalseImpliesGE(cond ast.Expr, xs, ys string) bool {
	for _, c := range disjuncts(cond) {
		be, ok := unparen(c).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		l, r := exprKey(be.X), exprKey(be.Y)
		switch be.Op {
		case token.LSS, token.LEQ: // ¬(l < r) ⇒ l >= r
			if l == xs && (r == ys || baseOfAddConst(be.Y) == ys) {
				return true
			}
		case token.GTR, token.GEQ: // ¬(l > r) ⇒ r >= l
			if r == xs && (l == ys || baseOfAddConst(be.X) == ys) {
				return true
			}
		}
	}
	return false
}

// baseOfAddConst returns the key of e's non-literal operand when e has
// the shape `base + k` or `k + base` with k an integer literal (always
// non-negative — Go has no negative literals, only negation, which is a
// unary expression and rejected here). It returns "" otherwise; "" never
// equals an operand key, so lookups on non-matching shapes fail closed.
func baseOfAddConst(e ast.Expr) string {
	be, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return ""
	}
	if lit, ok := unparen(be.Y).(*ast.BasicLit); ok && lit.Kind == token.INT {
		return exprKey(be.X)
	}
	if lit, ok := unparen(be.X).(*ast.BasicLit); ok && lit.Kind == token.INT {
		return exprKey(be.Y)
	}
	return ""
}

// returnsBeforeNow reports whether sub is `now - c` (c a positive
// constant) inside a function taking `now uint64`, used as a returned
// completion time — directly in a return statement or as the Done field
// of a composite literal.
func returnsBeforeNow(info *types.Info, sub *ast.BinaryExpr, stack []ast.Node) bool {
	fn := enclosingFunc(stack)
	if fn == nil || !hasNowParam(fn) {
		return false
	}
	if id, ok := unparen(sub.X).(*ast.Ident); !ok || id.Name != "now" {
		return false
	}
	tv, ok := info.Types[sub.Y]
	if !ok || tv.Value == nil {
		return false
	}
	if v, exact := constant.Uint64Val(tv.Value); !exact || v == 0 {
		return false
	}
	// Walk outward through parens: a return result, or a Done: field.
	var child ast.Node = sub
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.ReturnStmt:
			return true
		case *ast.KeyValueExpr:
			if id, ok := p.Key.(*ast.Ident); ok && id.Name == "Done" && p.Value == child {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
