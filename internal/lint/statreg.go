package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatregAnalyzer closes the loop between counting and reporting. The
// simulator accumulates dozens of counters in *Stats structs (cache
// hits, snoop actions, resource waits); a counter that is incremented
// but never read by any report or merge path is a silent hole in the
// paper's figures — the event happened, was paid for, and vanished.
//
// The analyzer collects every numeric field (including fixed arrays of
// numerics) of every struct type whose name ends in "Stats" defined
// under internal/, then scans the whole module for reads of each field.
// A selector counts as a read unless it is the target of an assignment
// (including compound += accumulation — incrementing is not reporting)
// or an inc/dec statement. Fields with no read anywhere are reported at
// their declaration.
//
// Host-side telemetry gets the same treatment: fields of type
// telemetry.Counter, telemetry.Gauge or telemetry.Histogram in structs
// suffixed "Stats" or "Metrics" are tracked too, with the mutator calls
// Inc/Add/Set/Observe playing the role of "incrementing". What counts
// as exporting such a metric is taking its address (the &m.Field
// handed to Registry registration — that is how a metric reaches
// /metrics and the run report) or reading it through Value()/Count().
// A metric that is only ever mutated never leaves the process.
//
// Because it needs the whole module at once, statreg is a module-wide
// analyzer (RunModule); field identity is matched by (package path,
// type name, field name) strings since separately type-checked
// packages have distinct types.Object identities.
var StatregAnalyzer = &Analyzer{
	Name:      "statreg",
	Doc:       "every counter field of a *Stats struct must be read by a report/merge path; every telemetry metric field must be registered or read",
	RunModule: runStatreg,
}

type fieldKey struct {
	pkgPath   string
	typeName  string
	fieldName string
}

type fieldDecl struct {
	pkg *Package
	pos token.Pos
}

func runStatreg(pass *ModulePass) error {
	decls := map[fieldKey]fieldDecl{}
	telem := map[fieldKey]bool{} // keys whose field is a telemetry metric type

	// Pass 1: collect counter fields of *Stats structs in internal/,
	// and telemetry metric fields of *Stats / *Metrics structs.
	for _, pkg := range pass.Packages {
		if !strings.HasPrefix(pkg.RelPath, "internal/") || pkg.RelPath == "internal/lint" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			isStats := strings.HasSuffix(tn.Name(), "Stats")
			isMetrics := strings.HasSuffix(tn.Name(), "Metrics")
			if !isStats && !isMetrics {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				k := fieldKey{pkg.Path, tn.Name(), f.Name()}
				switch {
				case isTelemetryMetricType(f.Type()):
					// *Stats and *Metrics structs both carry telemetry.
					decls[k] = fieldDecl{pkg: pkg, pos: f.Pos()}
					telem[k] = true
				case isStats && isCounterType(f.Type()):
					// Plain numeric counters stay a *Stats-only rule, so
					// existing *Metrics structs (e.g. obsv.Metrics) keep
					// their numeric-field conventions.
					decls[k] = fieldDecl{pkg: pkg, pos: f.Pos()}
				}
			}
		}
	}
	if len(decls) == 0 {
		return nil
	}

	// Pass 2: scan every package for reads.
	read := map[fieldKey]bool{}
	for _, pkg := range pass.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return
				}
				k, ok := fieldKeyOf(s)
				if !ok {
					return
				}
				if _, tracked := decls[k]; !tracked || read[k] {
					return
				}
				if telem[k] {
					if isTelemetryExport(sel, stack) {
						read[k] = true
					}
					return
				}
				if isReadContext(sel, stack) {
					read[k] = true
				}
			})
		}
	}

	for k, d := range decls {
		if read[k] {
			continue
		}
		if telem[k] {
			pass.Reportf(d.pkg, d.pos, "telemetry metric %s.%s.%s is mutated but never registered or read — it never reaches /metrics or a run report", shortPkg(k.pkgPath), k.typeName, k.fieldName)
			continue
		}
		pass.Reportf(d.pkg, d.pos, "counter %s.%s.%s is incremented but never read by any report or merge path", shortPkg(k.pkgPath), k.typeName, k.fieldName)
	}
	return nil
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isTelemetryMetricType matches value fields of the host-side metric
// types. *CounterVec fields are deliberately excluded: a vec is created
// by Registry.CounterVec, so it is registered by construction.
func isTelemetryMetricType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || !strings.HasSuffix(tn.Pkg().Path(), "internal/telemetry") {
		return false
	}
	switch tn.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// telemetryMutators are the metric methods that record a value. Calling
// one is the telemetry analogue of incrementing a plain counter — it is
// not evidence the metric is ever exported.
var telemetryMutators = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Set":     true,
	"Observe": true,
}

// isTelemetryExport reports whether this occurrence of a metric field
// exports the metric rather than just mutating it. A mutator method
// call (m.Field.Inc(), .Add, .Set, .Observe) is a write; anything else
// that isReadContext accepts — most importantly &m.Field at a Registry
// registration site, but also accessor calls like m.Field.Value() —
// counts as the read that wires the metric to an output path.
func isTelemetryExport(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) >= 2 {
		if p, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && p.X == sel && telemetryMutators[p.Sel.Name] {
			if c, ok := stack[len(stack)-2].(*ast.CallExpr); ok && c.Fun == p {
				return false
			}
		}
	}
	return isReadContext(sel, stack)
}

// isCounterType matches the numeric shapes used for counters: integer
// and float basics, and fixed arrays of them (per-level breakdowns).
func isCounterType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Array:
		return isCounterType(u.Elem())
	}
	return false
}

// fieldKeyOf maps a field selection to its string identity, resolving
// the receiver through pointers and embedded fields to the named struct
// that declares the field.
func fieldKeyOf(s *types.Selection) (fieldKey, bool) {
	obj, ok := s.Obj().(*types.Var)
	if !ok || obj.Pkg() == nil {
		return fieldKey{}, false
	}
	t := s.Recv()
	// Follow the selection's index path through embedded structs so the
	// key names the struct that actually declares the field.
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		t = derefNamed(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return fieldKey{}, false
		}
		t = st.Field(i).Type()
	}
	t = derefNamed(t)
	named, ok := t.(*types.Named)
	if !ok {
		return fieldKey{}, false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return fieldKey{}, false
	}
	return fieldKey{tn.Pkg().Path(), tn.Name(), obj.Name()}, true
}

func derefNamed(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isReadContext reports whether the selector occurrence consumes the
// field's value, as opposed to storing into it. Climbing through index
// expressions and parens, the write contexts are: any assignment target
// (plain, := or compound — accumulation is not reporting) and inc/dec.
func isReadContext(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var node ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			node = p
		case *ast.IndexExpr:
			if p.X != node {
				return true // selector is the index, not the target
			}
			node = p
		case *ast.SelectorExpr:
			// x.Stats.Field — keep climbing only if we are the qualifier.
			if p.X == node {
				return true // outer selector reads through us
			}
			node = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == node {
					return false
				}
			}
			return true
		case *ast.IncDecStmt:
			return p.X != node
		default:
			return true
		}
	}
	return true
}
