// Package fixture seeds cycleflow violations: an unguarded uint64
// subtraction, a completion time returned before now, and the guarded /
// suppressed forms that must stay silent.
package fixture

type result struct {
	Done uint64
}

func unguarded(a, b uint64) uint64 {
	return a - b // want "unguarded uint64 cycle subtraction"
}

func earlyExit(done, now uint64) uint64 {
	if done < now {
		return 0
	}
	return done - now // ok: dominated by the early exit above
}

func enclosingGuard(a, b uint64) uint64 {
	if a >= b {
		return a - b // ok: guarded branch
	}
	return 0
}

func elseBranch(a, b uint64) uint64 {
	if a < b {
		return 0
	} else {
		return a - b // ok: the failed a < b proves a >= b
	}
}

func compoundOperand(done, cur uint64) uint64 {
	if done > cur+1 {
		return done - (cur + 1) // ok: parens around the operand are ignored
	}
	return 0
}

func orEarlyExit(halted bool, to, from uint64) uint64 {
	if halted || to <= from {
		return 0
	}
	return to - from // ok: a taken exit falsifies every || disjunct
}

func skipJumpGuard(target, step uint64) uint64 {
	if target > step+1 {
		return target - step // ok: target > step+1 implies target >= step
	}
	return 0
}

func skipJumpEarlyExit(target, step uint64) uint64 {
	if target <= step+1 {
		return 0
	}
	return target - step // ok: the failed `<= step+1` proves target > step
}

func andEarlyExit(flagged bool, a, b uint64) uint64 {
	if a < b && flagged {
		return 0
	}
	return a - b // want "unguarded uint64 cycle subtraction"
}

func beforeNow(now uint64) result {
	return result{Done: now - 1} // want "before now"
}

func suppressed(a, b uint64) uint64 {
	return a - b //simlint:allow cycleflow — fixture: suppression must silence this line
}

func constantFold() uint64 {
	const width = uint64(32)
	return width - 8 // ok: folded at compile time
}
