// Package fixture seeds a statreg violation: a counter that is
// incremented but never read. The sibling fields demonstrate the reads
// that satisfy the analyzer (merge RHS, report expression) and the
// exemptions (non-numeric fields). BarMetrics does the same for the
// host-side telemetry scope: a metric that is mutated (Inc/Add/Set/
// Observe) but never registered with a Registry or read back.
package fixture

import "cmpsim/internal/telemetry"

type FooStats struct {
	Used   uint64
	Orphan uint64 // want "never read"
	Levels [4]uint64
	Name   string // ok: not a counter
}

// Add merges o into s — the o.* selectors are the reads that register
// Used and Levels.
func (s *FooStats) Add(o FooStats) {
	s.Used += o.Used
	for i := range s.Levels {
		s.Levels[i] += o.Levels[i]
	}
	// Incrementing is not reading: Orphan stays unregistered.
	s.Orphan += 1
	s.Orphan++
}

// Total is a report path.
func (s *FooStats) Total() uint64 {
	return s.Used
}

// BarMetrics exercises the telemetry scope. Served and Depth are
// exported — Served by Registry registration (&m.Served), Depth by a
// Value() read — but Orphan is only ever mutated, so it can never
// appear on /metrics or in a run report.
type BarMetrics struct {
	Served telemetry.Counter
	Orphan telemetry.Counter // want "never registered"
	Depth  telemetry.Gauge
	note   string // ok: not a metric or counter (and *Metrics numerics are out of scope)
	spins  uint64
}

func (m *BarMetrics) register(r *telemetry.Registry) {
	r.Counter("bar_served", "requests served", &m.Served)
}

func (m *BarMetrics) work() {
	m.Served.Inc()
	// Mutation is not export: Orphan stays unregistered.
	m.Orphan.Inc()
	m.Orphan.Add(2)
	m.Depth.Set(int64(m.spins))
	m.note = "busy"
}

func (m *BarMetrics) depth() int64 {
	return m.Depth.Value()
}

// HostStats mirrors the internal/hostprof snapshot shape (SchedStats,
// WorkerStats, WaitStats): the recorder increments fields on the hot
// path and a report renders every one of them — a field only ever
// incremented would be dead weight silently carried by every parallel
// window.
type HostStats struct {
	Windows  uint64
	SpinNs   uint64
	DeadSpin uint64 // want "never read"
	Sites    [4]uint64
}

func (s *HostStats) record(site int) {
	s.Windows++
	s.SpinNs += 10
	s.DeadSpin++
	s.Sites[site]++
}

func (s *HostStats) report() (uint64, uint64) {
	var bySite uint64
	for i := range s.Sites {
		bySite += s.Sites[i]
	}
	return s.Windows, s.SpinNs + bySite
}
