// Package fixture seeds a statreg violation: a counter that is
// incremented but never read. The sibling fields demonstrate the reads
// that satisfy the analyzer (merge RHS, report expression) and the
// exemptions (non-numeric fields).
package fixture

type FooStats struct {
	Used   uint64
	Orphan uint64 // want "never read"
	Levels [4]uint64
	Name   string // ok: not a counter
}

// Add merges o into s — the o.* selectors are the reads that register
// Used and Levels.
func (s *FooStats) Add(o FooStats) {
	s.Used += o.Used
	for i := range s.Levels {
		s.Levels[i] += o.Levels[i]
	}
	// Incrementing is not reading: Orphan stays unregistered.
	s.Orphan += 1
	s.Orphan++
}

// Total is a report path.
func (s *FooStats) Total() uint64 {
	return s.Used
}
