// Package fixture seeds result-cache contract violations. The test
// loads it with relPath "internal/memsys" so its Config struct is
// audited against the fingerprint rules; with no internal/runner in the
// fixture universe, nothing is nil-checked, so every skipped field
// needs an exemption.
package fixture

import "os"

type tracer struct {
	n int
}

// Config mimics memsys.Config for the fingerprint audit.
type Config struct {
	NumCPUs   int
	LineBytes uint32

	Trace *tracer // want "skipped by the cache fingerprint"

	//simlint:cachekey-exempt — fixture: asserted output-neutral
	Telem *tracer // ok: exempted with the neutrality argument

	Lookup map[string]int // want "cannot render canonically"
}

// loadMode reads configuration the fingerprint cannot see.
func loadMode() string {
	return os.Getenv("CMPSIM_MODE") // want "reads configuration outside memsys.Config"
}

var mode string

func setMode(m string) {
	mode = m // want "mutated outside init"
}

func init() {
	mode = "default" // ok: the link-time plugin pattern
}
