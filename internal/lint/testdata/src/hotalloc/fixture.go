// Package fixture seeds hot-path allocations: append/make/fmt and an
// escaping composite literal inside a cycle-taking function, plus the
// tracer-guarded and cold forms that must stay silent.
package fixture

import "fmt"

type event struct {
	cycle uint64
}

type sink struct {
	n int
}

func (s *sink) Emit(e event) {
	s.n++ // ok: the sink itself allocates nothing
}

type unit struct {
	trace *sink
	buf   []uint64
}

func (u *unit) step(now uint64) {
	u.buf = append(u.buf, now) // want "append allocates"

	fmt.Println(now) // want "fmt.Println"

	p := &event{cycle: now} // want "escapes to the heap"
	_ = p

	if u.trace != nil {
		scratch := make([]uint64, 4) // ok: only runs when tracing
		_ = scratch
		u.trace.Emit(event{cycle: now})
	}

	if u.trace == nil {
		return
	}
	fmt.Println("traced", now) // ok: dominated by the nil early exit
}

func (u *unit) cold(x uint64) {
	u.buf = append(u.buf, x) // ok: not a hot function (no now parameter)
}

func (u *unit) deliberate(now uint64) {
	//simlint:allow hotalloc — fixture: suppression must silence the next line
	u.buf = append(u.buf, now)
}

// profiler mimics internal/prof: its hook methods make it a sink, so a
// `!= nil` guard around it marks the instrumented slow path.
type profiler struct {
	pcs map[uint32]uint64
}

func (p *profiler) RetirePC(ppc uint32)                              { p.pcs[ppc]++ }
func (p *profiler) LineAccess(cpu int, addr uint32, w bool, l uint8) { p.pcs[addr]++ }

type profUnit struct {
	prof *profiler
	buf  []uint64
}

func (u *profUnit) step(now uint64) {
	if u.prof != nil {
		u.prof.pcs = make(map[uint32]uint64) // ok: only runs when profiling
		u.prof.RetirePC(uint32(now))
	}

	u.buf = append(u.buf, now) // want "append allocates"
}

// The v2 propagation cases: helpers without a now parameter become hot
// when an unguarded call chain from a hot function reaches them.

func (u *unit) propagate(now uint64) {
	u.fill()
	if u.trace != nil {
		u.slowFill() // guarded call site: hot-ness must not propagate
	}
	if now == 0 {
		panic(fmt.Sprintf("cycle %d stalled", now)) // ok: the run is dying
	}
}

func (u *unit) fill() {
	u.buf = append(u.buf, 0) // want "hot via"
}

func (u *unit) slowFill() {
	u.buf = append(u.buf, 1) // ok: only reachable through the tracer guard
}
