// Package fixture seeds observability-neutrality violations: values
// produced by the (fixture) obs surface steering simulator state and
// control flow, alongside the approved plumbing shapes that must stay
// silent.
package fixture

import (
	hostprof "cmpsim/lintfixture/internal/hostprof"
	obsv "cmpsim/lintfixture/internal/obsv"
)

type unit struct {
	mets  *obsv.Metrics
	rec   *hostprof.Recorder
	cyc   uint64
	count uint64
	table []uint64
}

func (u *unit) tickAssign(now uint64) {
	if u.mets != nil {
		u.cyc = u.mets.NextDue() // want "assigned into simulator state"
	}
}

func (u *unit) tickSteer(now uint64) {
	if u.mets.Count() > 4 { // want "steers simulator control flow"
		u.count++
	}
}

func (u *unit) tickIndex(now uint64) {
	u.table[u.mets.Count()] = now // want "indexes simulator state"
}

func (u *unit) report() uint64 {
	return u.mets.Count() // want "returned from a simulator function"
}

func (u *unit) fieldRead(p *obsv.Probe) {
	u.count = p.Cycle // want "field Probe.Cycle"
}

func (u *unit) pkgVar(now uint64) {
	u.count = obsv.Dropped // want "observability package variable"
}

// sample is the approved idiom: the gated body only observes, so the
// steering cannot perturb simulation output.
func (u *unit) sample(now uint64) {
	if u.mets.Due(now) { // ok: body observes only
		u.mets.Record(now)
	}
}

// buildProbe only moves data INTO obs state: reading an obs field to
// append back into the same obs-owned slice is plumbing.
func (u *unit) buildProbe(p *obsv.Probe) {
	p.Cycle = u.cyc
	p.Insts = append(p.Insts, u.count) // ok: append into obs-owned state
}

// gate is presence-plumbing: comparing the attachment against nil (not
// its data) is how the hot path stays allocation-free.
func (u *unit) gate(now uint64) {
	if u.mets != nil {
		u.mets.Record(now)
	}
}

func (u *unit) justified(now uint64) {
	//simlint:allow neutral — fixture: suppression must silence the next line
	u.cyc = u.mets.NextDue()
}

// The host-schedule observer (internal/hostprof) is held to the same
// contract: its recorder rides the parallel tick gate, so a reading
// leaking into sim state would silently break the byte-identical
// output guarantee.

func (u *unit) hostAssign() {
	u.cyc = u.rec.Spins() // want "assigned into simulator state"
}

func (u *unit) hostSteer() {
	if u.rec.Spins() > 4 { // want "steers simulator control flow"
		u.count++
	}
}

// hostToken is the approved timing idiom: the begin/end token is
// obs-owned plumbing — holding it and handing it back observes only.
func (u *unit) hostToken(peer int) {
	tok := u.rec.SpinBegin() // ok: all-obs-typed result
	u.count++
	u.rec.SpinEnd(tok, peer)
}

// hostGate is presence-plumbing, same as the sampler gate above.
func (u *unit) hostGate() {
	if u.rec != nil {
		u.rec.SpinEnd(u.rec.SpinBegin(), 0)
	}
}
