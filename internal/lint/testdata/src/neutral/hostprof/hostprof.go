// Package hostprof is the neutral fixture's stand-in host-schedule
// observer. The test preloads it under the import path
// "cmpsim/lintfixture/internal/hostprof", whose suffix makes the
// analyzer treat its declarations as observability state — the real
// internal/hostprof is attached to the parallel tick scheduler, where
// an observation leaking into sim state would break the byte-identical
// output guarantee.
package hostprof

// SpinToken mimics the begin/end timing token: an obs-owned value the
// simulator may hold and hand back, but never consume.
type SpinToken struct {
	t0 int64
}

// Recorder mimics the gate-wait recorder.
type Recorder struct {
	spins uint64
}

func (r *Recorder) SpinBegin() SpinToken { return SpinToken{t0: 1} }

func (r *Recorder) SpinEnd(tok SpinToken, peer int) { r.spins++ }

// Spins produces observation data the simulator must not consume.
func (r *Recorder) Spins() uint64 { return r.spins }
