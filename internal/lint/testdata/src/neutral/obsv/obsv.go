// Package obsv is the neutral fixture's stand-in observability surface.
// The test preloads it under the import path
// "cmpsim/lintfixture/internal/obsv", whose suffix makes the analyzer
// treat its declarations as observability state.
package obsv

// Metrics mimics the sampler: Due/Record are the approved idiom, and
// NextDue/Count produce observation data the simulator must not consume.
type Metrics struct {
	interval uint64
	n        uint64
}

func (m *Metrics) NextDue() uint64 { return m.interval * (m.n + 1) }

func (m *Metrics) Count() uint64 { return m.n }

func (m *Metrics) Due(now uint64) bool { return m.interval != 0 && now%m.interval == 0 }

func (m *Metrics) Record(now uint64) { m.n++ }

// Probe mimics a sample record: plain-typed fields of an obs struct.
type Probe struct {
	Cycle uint64
	Insts []uint64
}

// Dropped mimics an obs package-level counter.
var Dropped uint64
