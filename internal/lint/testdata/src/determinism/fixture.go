// Package fixture seeds one violation per determinism rule, plus the
// legal patterns the analyzer must not flag. Lines carrying a
// deliberate violation are annotated with want-comments naming a
// message substring; the test harness requires exactly those findings.
package fixture

import (
	"math/rand"
	"time"
)

type table struct {
	m map[uint32]uint64
}

func (t *table) tick(now uint64) uint64 {
	_ = time.Now() // want "wall clock"

	go func() {}() // want "goroutine"

	x := rand.Uint64() // want "global random source"

	seeded := rand.New(rand.NewSource(1)) // ok: explicitly seeded generator
	x += seeded.Uint64()                  // ok: method on the seeded generator

	for k := range t.m { // want "nondeterministic order"
		x += uint64(k)
	}

	//simlint:allow determinism — fixture: suppression must silence the next line
	for k := range t.m {
		x += uint64(k)
	}

	_ = time.Duration(now) // ok: pure type, no clock access
	return x
}
