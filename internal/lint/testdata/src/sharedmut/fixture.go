// Package fixture seeds the sharedmut ownership violations. The test
// loads it with relPath "internal/memsys", a shared-domain simulator
// package, so undeclared structs default to shared ownership. Tick is
// the reachability root; every write it can reach without crossing an
// arbiter must be per-CPU, arbitrated, or justified.
package fixture

// bus is shared state whose only writer is a declared arbitration
// point — classified shared-arbitrated, no finding.
type bus struct {
	owner int
}

// Acquire models bus arbitration.
//
//simlint:arbiter
func (b *bus) Acquire(cpu int) {
	b.owner = cpu
}

// sharedCounters is shared-domain state with an arbiter-free writer:
// the parallel-tick hazard the analyzer exists to catch.
type sharedCounters struct {
	hits uint64 // want "written on an arbiter-free path"
}

func (s *sharedCounters) bump() {
	s.hits++
}

// private is per-CPU by construction (indexed by cpu id everywhere)
// and declared so; its tick-path writes are fine.
//
//simlint:owned per-cpu
type private struct {
	n uint64
}

// scratch carries a justified hazard: the allow comment on the field
// suppresses the finding.
type scratch struct {
	//simlint:allow sharedmut — fixture: justified hazard under burn-down
	tmp uint64
}

func (s *scratch) poke() {
	s.tmp++
}

// config is never written on any tick path — tick-const, no finding.
type config struct {
	ways int
}

type system struct {
	bus  bus
	ctr  sharedCounters
	pad  scratch
	priv []private
	cfg  config
}

type core struct {
	sys *system
	id  int
}

// Tick is a root by name: everything below here is tick-reachable.
func (c *core) Tick(now uint64) {
	c.sys.bus.Acquire(c.id)
	c.sys.ctr.bump()
	c.sys.pad.poke()
	c.sys.priv[c.id].n++
	_ = c.sys.cfg.ways
}
