package lint

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SharedmutAnalyzer machine-checks the state-ownership precondition of
// the planned parallel tick (ROADMAP: "shard one big simulation across
// host cores"). CPUs and their private caches can only advance
// concurrently if every piece of simulator state is either per-CPU
// owned (touched by one CPU's tick) or shared-and-arbitrated (mutated
// only at declared arbitration points that a parallel scheduler will
// serialize at window boundaries). Today those invariants live in
// reviewers' heads; this analyzer writes them down and regresses them.
//
// Mechanism: build the module call graph, take every Tick / RunWindow
// method in the simulator packages as a root, and trace which reachable
// functions write which struct fields. A second traversal stops at the
// arbitration points — the bus, directory, bank and resource methods
// (plus anything annotated //simlint:arbiter), and the serial cycle
// loop itself — yielding the set of functions a ticking CPU can reach
// *without* crossing an arbiter. Every field of every struct declared
// in the simulator packages is then classified:
//
//   - per-cpu: declared in a per-CPU-owned domain (internal/cpu and its
//     models, internal/cache instances, or a struct annotated
//     //simlint:owned per-cpu);
//   - shared-arbitrated: shared-domain state whose every reachable
//     writer is an arbitration point or sits beneath one;
//   - flagged: shared-domain state writable on an arbiter-free path
//     from a tick — the parallel-tick hazard, reported as a diagnostic;
//   - tick-const: never written by any function reachable from a tick
//     (configuration and construction-time state).
//
// The classification is exported as a deterministic JSON report
// (`simlint -ownership-out ownership.json`, golden-tested), which is
// the work list and regression anchor for the parallel-tick PR: a
// refactor that silently turns an arbitrated field into a flagged one
// fails CI before it can race.
//
// A justified hazard is suppressed with //simlint:allow sharedmut; a
// struct that is per-CPU by construction (e.g. indexed by cpu id
// everywhere) is declared with //simlint:owned per-cpu on its type; a
// method that *is* an arbitration mechanism is declared with
// //simlint:arbiter on its declaration.
var SharedmutAnalyzer = &Analyzer{
	Name:      "sharedmut",
	Doc:       "classify simulator state as per-CPU vs shared; flag shared state written outside declared arbitration points",
	Scope:     scopeUnder(ownershipPackages...),
	RunModule: runSharedmut,
}

// ownershipPackages are the simulator packages whose struct fields get
// classified.
var ownershipPackages = []string{
	"internal/core", "internal/cpu", "internal/cache",
	"internal/memsys", "internal/coherence", "internal/interconnect",
}

// perCPUDefault lists the packages whose types are per-CPU owned by
// construction: each CPU model instance belongs to exactly one CPU, and
// cache.Cache instances are owned by their containing composition (the
// private L1s per CPU; the shared L2 only mutates through arbitrated
// memsys methods, which the memsys classification covers).
var perCPUDefault = map[string]bool{
	"internal/cpu":       true,
	"internal/cpu/mipsy": true,
	"internal/cpu/mxs":   true,
	"internal/cache":     true,
}

// builtinArbiters are the always-on arbitration points: the snoop bus,
// the directory, the contended-resource acquire, and the serial cycle
// loop itself (RunWindow/nextCycle execute strictly serially and in
// fixed CPU rotation — they are the master arbiter a parallel scheduler
// must reproduce at window boundaries). Matched by (package suffix,
// receiver, method). Extend in source with //simlint:arbiter.
var builtinArbiters = []struct{ pkgSuffix, recv, name string }{
	{"internal/interconnect", "Resource", "Acquire"},
	{"internal/interconnect", "Banks", "Acquire"},
	{"internal/coherence", "Snoop", "Read"},
	{"internal/coherence", "Snoop", "Write"},
	{"internal/coherence", "Snoop", "Upgrade"},
	{"internal/coherence", "Directory", "Write"},
	{"internal/coherence", "Directory", "L2Evict"},
	{"internal/coherence", "Directory", "AddSharer"},
	{"internal/coherence", "Directory", "DropSharer"},
	{"internal/core", "Machine", "RunWindow"},
	{"internal/core", "Machine", "nextCycle"},
}

// OwnershipReport is the machine-readable classification emitted by
// `simlint -ownership-out`. Everything is sorted, so byte-identical
// output is a golden-testable property.
type OwnershipReport struct {
	// Roots are the tick entry points the reachability starts from.
	Roots []string `json:"roots"`
	// Arbiters are the declared arbitration points (built-in + annotated).
	Arbiters []string `json:"arbiters"`
	// Fields classifies every struct field of the simulator packages.
	Fields []OwnershipField `json:"fields"`
}

// OwnershipField is one struct field's classification.
type OwnershipField struct {
	Package string `json:"package"` // module-relative package path
	Struct  string `json:"struct"`
	Field   string `json:"field"`
	Type    string `json:"type"`
	// Class is "per-cpu", "shared-arbitrated", "flagged", or
	// "tick-const".
	Class   string            `json:"class"`
	Writers []OwnershipWriter `json:"writers,omitempty"`
}

// OwnershipWriter is one function that writes the field and is
// reachable from a tick root.
type OwnershipWriter struct {
	Func string `json:"func"`
	// Arbitrated is true when every root→writer path crosses an
	// arbitration point (or the writer is one).
	Arbitrated bool `json:"arbitrated"`
	// Path is one example root→writer call chain.
	Path string `json:"path"`
}

// MarshalIndent renders the report as stable, indented JSON.
func (r *OwnershipReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ownershipDiag is a flagged-field diagnostic with a position.
type ownershipDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

func runSharedmut(pass *ModulePass) error {
	_, diags := ownership(pass.Packages, pass.Graph())
	for _, d := range diags {
		pass.Reportf(d.pkg, d.pos, "%s", d.msg)
	}
	return nil
}

// Ownership computes the classification report over the module's
// packages (the caller passes the full LoadModule result; scoping to
// the simulator packages happens internally).
func Ownership(pkgs []*Package) (*OwnershipReport, error) {
	scope := scopeUnder(ownershipPackages...)
	var scoped []*Package
	for _, pkg := range pkgs {
		if scope(pkg.RelPath) {
			scoped = append(scoped, pkg)
		}
	}
	rep, _ := ownership(scoped, BuildCallGraph(pkgs))
	return rep, nil
}

func ownership(scoped []*Package, graph *CallGraph) (*OwnershipReport, []ownershipDiag) {
	inScope := map[string]*Package{}
	for _, pkg := range scoped {
		inScope[pkg.Path] = pkg
	}

	// Directives: per-struct ownership overrides and extra arbiters.
	ownedDir := map[fieldKey]string{} // keyed by (pkg, type, "") → "per-cpu"/"shared"
	arbiters := map[FuncKey]bool{}
	for _, pkg := range scoped {
		collectOwnershipDirectives(pkg, ownedDir, arbiters)
	}
	for key, node := range graph.Nodes {
		for _, b := range builtinArbiters {
			if node.Key.Recv == b.recv && node.Key.Name == b.name && strings.HasSuffix(key.Pkg, b.pkgSuffix) {
				arbiters[key] = true
			}
		}
	}

	// Roots: every Tick / RunWindow method in the simulator packages.
	var roots []FuncKey
	for key := range graph.Nodes {
		if inScope[key.Pkg] == nil || key.Recv == "" {
			continue
		}
		if key.Name == "Tick" || key.Name == "RunWindow" {
			roots = append(roots, key)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return keyLess(roots[i], roots[j]) })

	// Full reachability, and the arbiter-free ("unprotected") slice.
	reach := graph.Reachable(roots, ReachOpts{})
	unprot := graph.Reachable(roots, ReachOpts{Boundary: func(k FuncKey) bool { return arbiters[k] }})

	// Collect field writes in reachable simulator functions.
	type writerInfo struct {
		arbitrated bool
		path       []FuncKey
	}
	writers := map[fieldKey]map[FuncKey]writerInfo{}
	for key := range reach {
		node := graph.Nodes[key]
		if node == nil || inScope[key.Pkg] == nil {
			continue
		}
		pkg := node.Pkg
		arb := arbiters[key]
		_, inUnprot := unprot[key]
		protected := arb || !inUnprot
		ast.Inspect(node.Decl, func(n ast.Node) bool {
			for _, lhs := range writeTargets(n) {
				fk, ok := fieldWriteKey(pkg.Info, lhs)
				if !ok {
					continue
				}
				if inScope[fk.pkgPath] == nil {
					continue
				}
				m := writers[fk]
				if m == nil {
					m = map[FuncKey]writerInfo{}
					writers[fk] = m
				}
				if prev, seen := m[key]; !seen || (prev.arbitrated && !protected) {
					var path []FuncKey
					if protected {
						path = Path(reach, key)
					} else {
						path = Path(unprot, key)
					}
					m[key] = writerInfo{arbitrated: protected, path: path}
				}
			}
			return true
		})
	}

	// Classify every struct field declared in the simulator packages.
	rep := &OwnershipReport{}
	for _, r := range roots {
		rep.Roots = append(rep.Roots, r.String())
	}
	for a := range arbiters {
		rep.Arbiters = append(rep.Arbiters, a.String())
	}
	sort.Strings(rep.Arbiters)

	var diags []ownershipDiag
	for _, pkg := range scoped {
		scope := pkg.Types.Scope()
		names := scope.Names()
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			domain := structDomain(pkg, tn.Name(), ownedDir)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				fk := fieldKey{pkg.Path, tn.Name(), f.Name()}
				of := OwnershipField{
					Package: pkg.RelPath,
					Struct:  tn.Name(),
					Field:   f.Name(),
					Type:    types.TypeString(f.Type(), relativeQualifier),
				}
				ws := writers[fk]
				allArbitrated := true
				var hazard *writerInfo
				var hazardKey FuncKey
				for wk, wi := range ws {
					wi := wi
					of.Writers = append(of.Writers, OwnershipWriter{
						Func:       wk.String(),
						Arbitrated: wi.arbitrated,
						Path:       PathString(wi.path),
					})
					if !wi.arbitrated {
						allArbitrated = false
						if hazard == nil || keyLess(wk, hazardKey) {
							hazard, hazardKey = &wi, wk
						}
					}
				}
				sort.Slice(of.Writers, func(a, b int) bool { return of.Writers[a].Func < of.Writers[b].Func })
				switch {
				case len(ws) == 0:
					of.Class = "tick-const"
				case domain == "per-cpu":
					of.Class = "per-cpu"
				case allArbitrated:
					of.Class = "shared-arbitrated"
				default:
					of.Class = "flagged"
					diags = append(diags, ownershipDiag{
						pkg: pkg,
						pos: f.Pos(),
						msg: "shared field " + shortPkg(pkg.Path) + "." + tn.Name() + "." + f.Name() +
							" is written on an arbiter-free path from a tick (" + PathString(hazard.path) +
							"); a parallel tick would race here — route the write through an arbitration point, " +
							"declare the struct //simlint:owned per-cpu, or justify with //simlint:allow sharedmut",
					})
				}
				rep.Fields = append(rep.Fields, of)
			}
		}
	}
	sort.Slice(rep.Fields, func(i, j int) bool {
		a, b := rep.Fields[i], rep.Fields[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Struct != b.Struct {
			return a.Struct < b.Struct
		}
		return a.Field < b.Field
	})
	sort.Slice(diags, func(i, j int) bool { return diags[i].msg < diags[j].msg })
	return rep, diags
}

// structDomain resolves a struct's ownership domain: explicit
// //simlint:owned directive first, then the package default.
func structDomain(pkg *Package, typeName string, ownedDir map[fieldKey]string) string {
	if d, ok := ownedDir[fieldKey{pkg.Path, typeName, ""}]; ok {
		return d
	}
	if perCPUDefault[pkg.RelPath] {
		return "per-cpu"
	}
	return "shared"
}

// relativeQualifier renders cross-package type names as pkg.Type.
func relativeQualifier(p *types.Package) string { return p.Name() }

// collectOwnershipDirectives scans pkg for //simlint:owned type
// directives and //simlint:arbiter function directives.
func collectOwnershipDirectives(pkg *Package, owned map[fieldKey]string, arbiters map[FuncKey]bool) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					if cls, ok := ownedDirective(doc); ok {
						owned[fieldKey{pkg.Path, ts.Name.Name, ""}] = cls
					}
				}
			case *ast.FuncDecl:
				if hasDirective(d.Doc, "simlint:arbiter") {
					if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						if key, ok := funcKeyOf(obj); ok {
							arbiters[key] = true
						}
					}
				}
			}
		}
	}
}

// ownedDirective extracts "per-cpu" or "shared" from a
// //simlint:owned comment in the doc group.
func ownedDirective(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		idx := strings.Index(c.Text, "simlint:owned")
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(c.Text[idx+len("simlint:owned"):])
		for _, cls := range []string{"per-cpu", "shared"} {
			if strings.HasPrefix(rest, cls) {
				return cls, true
			}
		}
	}
	return "", false
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, directive) {
			return true
		}
	}
	return false
}

// writeTargets returns the lvalue expressions a statement writes to.
func writeTargets(n ast.Node) []ast.Expr {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return s.Lhs
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	}
	return nil
}

// fieldWriteKey resolves an lvalue to the struct field it stores into,
// climbing through index expressions, stars and parens: `s.a[i].f = x`
// writes field f (and, at the top, field a's element — the outermost
// selector is the one charged).
func fieldWriteKey(info *types.Info, lhs ast.Expr) (fieldKey, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			s, ok := info.Selections[e]
			if !ok || s.Kind() != types.FieldVal {
				return fieldKey{}, false
			}
			return fieldKeyOf(s)
		default:
			return fieldKey{}, false
		}
	}
}
