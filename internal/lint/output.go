package lint

// Machine-readable renderings of simlint findings. Both formats are
// deliberately boring: sorted, indented, trailing newline — so CI can
// diff them and the format-pin tests can golden them.
//
//   - JSON: the stable interchange format (`simlint -json`), one record
//     per finding with module-relative paths.
//   - SARIF 2.1.0: the subset GitHub code scanning ingests
//     (`simlint -sarif out.sarif`), with one rule per analyzer.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// JSONDiagnostic is one finding in `simlint -json` output.
type JSONDiagnostic struct {
	File     string `json:"file"` // module-relative, forward slashes
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONDiagnostics converts findings to their JSON form, with paths made
// relative to root, sorted by (file, line, column, analyzer, message).
func JSONDiagnostics(root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

func (a JSONDiagnostic) less(b JSONDiagnostic) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// WriteJSON renders findings as an indented JSON array (always an
// array, "[]" when clean) followed by a newline.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	return writeIndented(w, JSONDiagnostics(root, diags))
}

// SARIF 2.1.0 skeleton — only the fields GitHub code scanning reads.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one rule per
// analyzer in the suite (present even when it found nothing, so the
// rule inventory is stable).
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range JSONDiagnostics(root, diags) {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
				},
			}},
		})
	}
	return writeIndented(w, sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}}, Results: results}},
	})
}

func writeIndented(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// relPath makes file module-relative with forward slashes, falling back
// to the input when it is not under root.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
