package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NeutralAnalyzer proves the observability layers cannot perturb the
// simulation. The repo's contract since PR 1 is that attaching a
// tracer, sampler, profiler, checker or telemetry sink never changes
// simulated cycles or statistics — enforced dynamically by the
// output-identity regression tests, but only for the attachments those
// tests think to exercise. This analyzer enforces the property's static
// shadow: inside the simulator packages, no *value that came out of*
// the observability surface (internal/obsv, internal/prof,
// internal/telemetry, internal/check) may flow into simulator state or
// steer simulator control flow.
//
// A "source" is a non-observability-typed value produced by the
// observability surface: the result of calling an obs-package function
// or method (obsv.Metrics.NextDue returning a cycle, a hypothetical
// tracer.Dropped() count), or a read of a non-obs-typed field of an
// obs-declared struct. Plumbing — passing obs-typed handles around,
// storing a *prof.Profile into the result struct, comparing an
// attachment against nil to gate instrumentation — is deliberately
// exempt: attachment *presence* may gate extra observation-only work
// (that is the hotalloc guard idiom), but observation *data* must never
// come back.
//
// A source is flagged when it reaches an if/for/switch condition, an
// assignment whose target is not itself observability-typed, a return
// from a function with a non-obs result, an index, or an argument to a
// non-obs call. One if-condition shape is exempt: a condition gating a
// body that only performs observation (every statement a call on an obs
// receiver or an assignment into obs state), the `if mets.Due(cyc) {
// mets.Record(...) }` sampler idiom — the steered code cannot perturb
// the simulation because it only observes.
//
// The one legitimate counter-example in the tree — the quiescence
// skipper bounding its jump by the sampler's next due cycle so interval
// samples land on schedule — carries a //simlint:allow neutral with the
// byte-identity argument; anything new must argue its case the same
// way.
var NeutralAnalyzer = &Analyzer{
	Name: "neutral",
	Doc:  "forbid dataflow from observability (obsv/prof/telemetry/check) values into simulator state or control flow",
	Scope: scopeUnder(
		"internal/cache", "internal/coherence", "internal/core",
		"internal/cpu", "internal/memsys", "internal/interconnect",
		"internal/event",
	),
	Run: runNeutral,
}

// obsPackageSuffixes identify the observability surface.
var obsPackageSuffixes = []string{
	"internal/obsv", "internal/prof", "internal/telemetry", "internal/check",
	"internal/hostprof",
}

func isObsPkgPath(path string) bool {
	for _, s := range obsPackageSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isObsType reports whether t is declared in an obs package (through
// pointers, slices and arrays). Obs-typed values are plumbing, not
// data.
func isObsType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Named:
			pkg := u.Obj().Pkg()
			return pkg != nil && isObsPkgPath(pkg.Path())
		default:
			return false
		}
	}
}

func runNeutral(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if src, desc := obsCallSource(info, n, stack); src {
					checkUse(pass, info, n, stack, desc)
				}
			case *ast.SelectorExpr:
				if src, desc := obsFieldSource(info, n); src && isReadContext(n, stack) {
					checkUse(pass, info, n, stack, desc)
				}
			case *ast.Ident:
				// Package-level vars of obs packages read from sim code.
				if v, ok := info.Uses[n].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
					isObsPkgPath(v.Pkg().Path()) && v.Parent() == v.Pkg().Scope() && !isObsType(v.Type()) {
					checkUse(pass, info, n, stack, "observability package variable "+v.Name())
				}
			}
		})
	}
	return nil
}

// obsCallSource reports whether call produces observation data the
// simulator then consumes: the callee is declared in an obs package,
// returns at least one non-obs-typed result, and the result is used.
func obsCallSource(info *types.Info, call *ast.CallExpr, stack []ast.Node) (bool, string) {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return false, ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !isObsPkgPath(fn.Pkg().Path()) {
		return false, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false, ""
	}
	allObs := true
	for i := 0; i < sig.Results().Len(); i++ {
		if !isObsType(sig.Results().At(i).Type()) {
			allObs = false
		}
	}
	if allObs {
		return false, "" // handle plumbing (Snapshot → *prof.Profile, …)
	}
	if len(stack) > 0 {
		if _, discarded := stack[len(stack)-1].(*ast.ExprStmt); discarded {
			return false, ""
		}
	}
	return true, "result of " + shortPkg(fn.Pkg().Path()) + "." + fn.Name() + "()"
}

// obsFieldSource reports whether sel reads observation data out of an
// obs-declared struct (a non-obs-typed field).
func obsFieldSource(info *types.Info, sel *ast.SelectorExpr) (bool, string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false, ""
	}
	recv := derefNamed(s.Recv())
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !isObsPkgPath(named.Obj().Pkg().Path()) {
		return false, ""
	}
	if isObsType(s.Obj().Type()) {
		return false, "" // obs-typed sub-object: plumbing
	}
	return true, "field " + named.Obj().Name() + "." + s.Obj().Name()
}

// checkUse climbs the ancestor stack from the source expression and
// reports consumption that lets observation data perturb simulation.
func checkUse(pass *Pass, info *types.Info, src ast.Expr, stack []ast.Node, desc string) {
	var node ast.Node = src
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr, *ast.BinaryExpr, *ast.KeyValueExpr:
			node = p
		case *ast.SelectorExpr:
			// Qualified references (obsv.Dropped) and projections of a
			// source value both still carry the observation data.
			node = p
		case *ast.CallExpr:
			if p.Fun == node {
				return // the source expression itself being invoked
			}
			if isTypeConversion(info, p) {
				node = p // converted value: keep climbing
				continue
			}
			if isBuiltinCall(info, p) {
				// append/len/copy/… pass the data through rather than
				// consuming it; judge the builtin's own consumer instead
				// (append into an obs-owned slice is plumbing, len in a
				// loop bound is steering).
				node = p
				continue
			}
			if callFeedsObs(info, p) {
				return // feeding an observer is the approved direction
			}
			pass.Reportf(src.Pos(), "%s flows into a simulator call as an argument; observability data must not feed the simulation", desc)
			return
		case *ast.CompositeLit:
			tv, ok := info.Types[p]
			if ok && isObsType(tv.Type) {
				return // building an obs value (a Probe, an Event)
			}
			pass.Reportf(src.Pos(), "%s is stored into simulator composite %s", desc, types.ExprString(p.Type))
			return
		case *ast.IfStmt:
			if p.Cond != node {
				return
			}
			if ifBodyObservesOnly(info, p) {
				return
			}
			pass.Reportf(src.Pos(), "%s steers simulator control flow (if condition); observability must be output-neutral", desc)
			return
		case *ast.ForStmt:
			if p.Cond == node {
				pass.Reportf(src.Pos(), "%s steers simulator control flow (for condition)", desc)
			}
			return
		case *ast.SwitchStmt:
			pass.Reportf(src.Pos(), "%s steers simulator control flow (switch)", desc)
			return
		case *ast.CaseClause:
			pass.Reportf(src.Pos(), "%s steers simulator control flow (case value)", desc)
			return
		case *ast.IndexExpr:
			if p.Index == node {
				pass.Reportf(src.Pos(), "%s indexes simulator state", desc)
				return
			}
			node = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if isBlank(lhs) {
					continue
				}
				tv, ok := info.Types[lhs]
				if ok && isObsType(tv.Type) {
					continue
				}
				if obsOwnedLHS(info, lhs) {
					continue // storing into a field of an obs value: plumbing
				}
				pass.Reportf(src.Pos(), "%s is assigned into simulator state %s", desc, types.ExprString(lhs))
				return
			}
			return
		case *ast.ReturnStmt:
			fn := enclosingFunc(stack[:i])
			ft := funcType(fn)
			if ft != nil && ft.Results != nil {
				for _, r := range ft.Results.List {
					tv, ok := info.Types[r.Type]
					if ok && isObsType(tv.Type) {
						return
					}
				}
			}
			pass.Reportf(src.Pos(), "%s is returned from a simulator function", desc)
			return
		case *ast.RangeStmt:
			pass.Reportf(src.Pos(), "%s drives a simulator range loop", desc)
			return
		default:
			return
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// isTypeConversion reports whether call is a conversion T(x).
func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether call invokes a language builtin
// (append, len, copy, …).
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// obsOwnedLHS reports whether the assignment target is (a projection
// of) an observability-owned value — e.g. p.PerCPUInsts where p is an
// obsv.Probe. Writing INTO obs state is the approved direction even
// when the field itself has a plain type.
func obsOwnedLHS(info *types.Info, e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok && isObsType(tv.Type) {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// callFeedsObs reports whether the call's callee belongs to the
// observability surface (an obs-package function, or a method on an
// obs-typed receiver), so passing observation data to it is fine.
func callFeedsObs(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
			return isObsPkgPath(fn.Pkg().Path())
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && isObsPkgPath(fn.Pkg().Path()) {
			return true
		}
		if tv, ok := info.Types[fun.X]; ok && isObsType(tv.Type) {
			return true
		}
	}
	return false
}

// ifBodyObservesOnly reports whether every statement in the if body
// only observes: calls on obs receivers / obs-package functions, or
// assignments whose every target is obs-typed. Such a body cannot
// perturb the simulation, so gating it on observability state is the
// approved sampler idiom.
func ifBodyObservesOnly(info *types.Info, ifs *ast.IfStmt) bool {
	if ifs.Else != nil {
		return false
	}
	if ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	for _, st := range ifs.Body.List {
		switch s := st.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !callFeedsObs(info, call) {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if isBlank(lhs) {
					continue
				}
				tv, ok := info.Types[lhs]
				if !ok || !isObsType(tv.Type) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}
