package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is simlint v2's shared call-graph substrate. The module-wide
// analyzers (sharedmut, neutral, cachekey, and hotalloc's propagation
// pass) all need the same question answered: "which functions can run
// beneath a given root?" — where the roots are the simulator's hot
// entry points (Core.Tick, Machine.RunWindow) and the edges must cross
// package boundaries and interface dispatch.
//
// Because the loader type-checks each package independently (the module
// has no x/tools dependency, so there is no shared go/packages
// universe), a function is identified by strings, not object identity:
// (package import path, bare receiver type name, function name). The
// same convention statreg already uses for fields.
//
// Interface calls resolve by name + arity: a call through an interface
// method adds edges to every module method with the same name, parameter
// count and result count. This over-approximates (two unrelated
// interfaces sharing a method shape get cross-edges) but never misses a
// real callee, which is the direction reachability analyses need —
// an extra edge can only add a finding, never hide one.

// FuncKey names one function or method across the module.
type FuncKey struct {
	Pkg  string // full import path ("cmpsim/internal/cache")
	Recv string // bare receiver type name ("Cache"; "" for plain funcs)
	Name string
}

func (k FuncKey) String() string {
	short := shortPkg(k.Pkg)
	if k.Recv != "" {
		return short + "." + k.Recv + "." + k.Name
	}
	return short + "." + k.Name
}

// CallEdge is one static call (or function-value reference) site.
type CallEdge struct {
	To      FuncKey
	Pos     token.Pos
	Guarded bool // the site only executes with a tracer/metrics sink attached
	Iface   bool // resolved through interface dispatch (name+arity match)
	Fatal   bool // the site sits inside panic(...) arguments (the run is dying)
}

// FuncNode is one declared function with its outgoing edges.
type FuncNode struct {
	Key   FuncKey
	Pkg   *Package
	Decl  *ast.FuncDecl
	Edges []CallEdge
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[FuncKey]*FuncNode

	// methodsBySig indexes every declared method by (name, nparams,
	// nresults) for interface dispatch.
	methodsBySig map[methodSig][]FuncKey
}

type methodSig struct {
	name     string
	nparams  int
	nresults int
}

// funcKeyOf renders a types.Func as a FuncKey.
func funcKeyOf(fn *types.Func) (FuncKey, bool) {
	if fn.Pkg() == nil {
		return FuncKey{}, false // builtins, error.Error, etc.
	}
	k := FuncKey{Pkg: fn.Pkg().Path(), Name: fn.Name()}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return FuncKey{}, false
	}
	if recv := sig.Recv(); recv != nil {
		k.Recv = bareTypeName(recv.Type())
		if k.Recv == "" {
			return FuncKey{}, false
		}
	}
	return k, true
}

// bareTypeName unwraps pointers to the named type's bare name.
func bareTypeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Interface:
		return "" // anonymous interface
	}
	return ""
}

// BuildCallGraph constructs the call graph over the given packages.
// Function literals contribute their edges to the enclosing declared
// function (a closure built on the hot path runs, at the latest, when
// its creator calls it; attributing its calls upward keeps reachability
// sound without tracking function values through the heap).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:        map[FuncKey]*FuncNode{},
		methodsBySig: map[methodSig][]FuncKey{},
	}
	// Pass 1: declare every FuncDecl as a node, and index methods for
	// interface dispatch.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key, ok := funcKeyOf(obj)
				if !ok {
					continue
				}
				g.Nodes[key] = &FuncNode{Key: key, Pkg: pkg, Decl: fd}
				if key.Recv != "" {
					sig := obj.Type().(*types.Signature)
					ms := methodSig{key.Name, sig.Params().Len(), sig.Results().Len()}
					g.methodsBySig[ms] = append(g.methodsBySig[ms], key)
				}
			}
		}
	}
	for _, keys := range g.methodsBySig {
		sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	}
	// Pass 2: collect edges.
	for _, pkg := range pkgs {
		g.collectEdges(pkg)
	}
	for _, n := range g.Nodes {
		sortEdges(n.Edges)
	}
	return g
}

func keyLess(a, b FuncKey) bool {
	if a.Pkg != b.Pkg {
		return a.Pkg < b.Pkg
	}
	if a.Recv != b.Recv {
		return a.Recv < b.Recv
	}
	return a.Name < b.Name
}

func sortEdges(edges []CallEdge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Pos != edges[j].Pos {
			return edges[i].Pos < edges[j].Pos
		}
		return keyLess(edges[i].To, edges[j].To)
	})
}

// collectEdges walks every function body in pkg, resolving calls and
// method-value references to FuncKeys.
func (g *CallGraph) collectEdges(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			fromDecl := enclosingFuncDecl(stack)
			if fromDecl == nil {
				return
			}
			fromObj, ok := info.Defs[fromDecl.Name].(*types.Func)
			if !ok {
				return
			}
			from, ok := funcKeyOf(fromObj)
			if !ok {
				return
			}
			node := g.Nodes[from]
			if node == nil {
				return
			}
			switch n := n.(type) {
			case *ast.Ident:
				// Direct reference to a declared function: a call, or a
				// function value handed somewhere it may later be called.
				fn, ok := info.Uses[n].(*types.Func)
				if !ok {
					return
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return // method idents resolve via their SelectorExpr below
				}
				if to, ok := funcKeyOf(fn); ok {
					node.Edges = append(node.Edges, CallEdge{
						To: to, Pos: n.Pos(), Guarded: tracerGuarded(info, n, stack),
						Fatal: inPanicArgs(info, stack),
					})
				}
			case *ast.SelectorExpr:
				g.selectorEdges(pkg, node, n, stack)
			}
		})
	}
}

// selectorEdges resolves pkg.Func, recv.Method and interface-method
// selections.
func (g *CallGraph) selectorEdges(pkg *Package, node *FuncNode, sel *ast.SelectorExpr, stack []ast.Node) {
	info := pkg.Info
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	guarded := tracerGuarded(info, sel, stack)
	fatal := inPanicArgs(info, stack)
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			// Interface dispatch: edge to the interface method itself plus
			// every module method matching its shape.
			if to, ok := funcKeyOf(fn); ok {
				node.Edges = append(node.Edges, CallEdge{To: to, Pos: sel.Pos(), Guarded: guarded, Iface: true, Fatal: fatal})
			}
			ms := methodSig{fn.Name(), sig.Params().Len(), sig.Results().Len()}
			for _, impl := range g.methodsBySig[ms] {
				node.Edges = append(node.Edges, CallEdge{To: impl, Pos: sel.Pos(), Guarded: guarded, Iface: true, Fatal: fatal})
			}
			return
		}
	}
	if to, ok := funcKeyOf(fn); ok {
		node.Edges = append(node.Edges, CallEdge{To: to, Pos: sel.Pos(), Guarded: guarded, Fatal: fatal})
	}
}

// inPanicArgs reports whether the visited node sits inside the argument
// list of a panic(...) call. A panicking simulator is no longer on any
// hot path — allocation and formatting while assembling the panic value
// are free — and hot-ness must not propagate through such call sites.
func inPanicArgs(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	return false
}

// enclosingFuncDecl returns the innermost *declared* function on the
// stack, skipping function literals (whose edges attribute upward).
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// ReachOpts tunes a reachability traversal.
type ReachOpts struct {
	// SkipGuarded drops edges whose call site only runs with a tracer
	// attached (the hotalloc slow path).
	SkipGuarded bool

	// SkipFatal drops edges whose call site sits inside panic(...)
	// arguments (the run is already dying there).
	SkipFatal bool

	// Boundary stops the traversal at matching functions: a boundary
	// function is recorded as reached but its callees are not visited
	// through it.
	Boundary func(FuncKey) bool
}

// Reachable returns every function reachable from the roots (roots
// included, when declared in the graph), with, for each, one example
// caller on a shortest path from a root (roots map to themselves).
func (g *CallGraph) Reachable(roots []FuncKey, opts ReachOpts) map[FuncKey]FuncKey {
	seen := map[FuncKey]FuncKey{}
	queue := make([]FuncKey, 0, len(roots))
	for _, r := range roots {
		if _, ok := g.Nodes[r]; !ok {
			continue
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if opts.Boundary != nil && opts.Boundary(cur) {
			continue
		}
		node := g.Nodes[cur]
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			if opts.SkipGuarded && e.Guarded {
				continue
			}
			if opts.SkipFatal && e.Fatal {
				continue
			}
			if _, ok := seen[e.To]; ok {
				continue
			}
			if _, declared := g.Nodes[e.To]; !declared {
				continue
			}
			seen[e.To] = cur
			queue = append(queue, e.To)
		}
	}
	return seen
}

// Path reconstructs a root→target call chain from a Reachable result,
// for diagnostics ("hot via RunWindow → Tick → fill").
func Path(reach map[FuncKey]FuncKey, target FuncKey) []FuncKey {
	var rev []FuncKey
	for cur := target; ; {
		rev = append(rev, cur)
		parent, ok := reach[cur]
		if !ok || parent == cur {
			break
		}
		cur = parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString renders a call chain for a diagnostic message.
func PathString(path []FuncKey) string {
	parts := make([]string, len(path))
	for i, k := range path {
		parts[i] = k.String()
	}
	return strings.Join(parts, " → ")
}

// moduleShared caches per-run artifacts that several analyzers need, so
// one simlint invocation builds the call graph once.
type moduleShared struct {
	graph *CallGraph
}

// Graph returns the shared call graph over pkgs, building it on first
// use. ModulePass carries the cache; a nil shared (direct test
// invocation) builds fresh.
func (p *ModulePass) Graph() *CallGraph {
	if p.shared == nil {
		p.shared = &moduleShared{}
	}
	if p.shared.graph == nil {
		p.shared.graph = BuildCallGraph(p.allPackages())
	}
	return p.shared.graph
}

// allPackages returns the full module package list (unscoped), falling
// back to the scoped list when the runner did not record one.
func (p *ModulePass) allPackages() []*Package {
	if len(p.all) > 0 {
		return p.all
	}
	return p.Packages
}
