package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotallocAnalyzer protects the tracer-disabled fast path. PR 1's
// contract is that with Trace == nil and Metrics == nil the simulator
// allocates nothing per memory reference (0 allocs/op, enforced by
// benchmarks); an accidental append, make, or fmt call on that path
// silently costs 10-30% of simulation throughput before any benchmark
// notices.
//
// A function is hot if it is *directly* hot — it takes the current
// cycle (`now uint64`) or is itself part of the observability surface
// (Emit / Observe / ObserveAccess) — or if the call graph proves a hot
// function can reach it through unguarded call sites. The propagation
// closes the v1 gap where allocations in helpers called from hot
// functions were invisible: `Access(now, …) → fill(addr)` now marks
// fill hot too, and an allocation there is reported with the call path
// that makes it hot.
//
// Inside a hot function the analyzer flags allocation-creating
// expressions (append, make, new, &CompositeLit) and any fmt call,
// unless the expression is behind a tracer guard — an enclosing
// `if x != nil` (or an earlier `if x == nil { return }`) where x is a
// tracer, metrics or profiler sink (its type has an Emit, Observe,
// ObserveAccess, RetirePC or LineAccess method). Guarded code only runs
// when the user asked for tracing or profiling, where allocation is
// acceptable; guarded call sites likewise do not propagate hot-ness.
// Expressions inside panic(...) arguments are exempt the same way: a
// panicking simulator has left the fast path for good, so formatting
// the panic value costs nothing that matters.
//
// Deliberate allocations (e.g. compacting into a reused backing array)
// are suppressed with //simlint:allow hotalloc.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations and fmt calls on the tracer-disabled fast path (call-graph propagated)",
	Scope: scopeUnder(
		"internal/cache", "internal/coherence", "internal/core",
		"internal/cpu", "internal/memsys", "internal/interconnect",
		"internal/event", "internal/obsv", "internal/prof",
	),
	RunModule: runHotalloc,
}

// sinkMethods identify a tracer/metrics/profiler sink by duck typing.
// RetirePC and LineAccess are the profiler's per-retire and per-access
// hooks (internal/prof); a `if prof != nil` guard around them marks the
// instrumented slow path just like a tracer guard does.
var sinkMethods = []string{"Emit", "Observe", "ObserveAccess", "RetirePC", "LineAccess"}

func isHotFunc(fn ast.Node) bool {
	if hasNowParam(fn) {
		return true
	}
	if fd, ok := fn.(*ast.FuncDecl); ok {
		switch fd.Name.Name {
		case "Emit", "Observe", "ObserveAccess":
			return true
		}
	}
	return false
}

func runHotalloc(pass *ModulePass) error {
	graph := pass.Graph()
	inScope := map[*Package]bool{}
	for _, pkg := range pass.Packages {
		inScope[pkg] = true
	}

	// Roots: directly hot declared functions in scoped packages. Sorted
	// so the BFS parent choice (and so the call path in a message) is
	// deterministic.
	var roots []FuncKey
	for key, node := range graph.Nodes {
		if inScope[node.Pkg] && isHotFunc(node.Decl) {
			roots = append(roots, key)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return keyLess(roots[i], roots[j]) })
	// Hot closure over unguarded call edges. The traversal crosses
	// package boundaries freely; only the reporting below is scoped.
	// Panic-argument call sites do not conduct hot-ness: code that only
	// runs while assembling a panic value (check.Checker.fail pulling the
	// event trail out of the ring) is the run's last gasp, not a fast
	// path.
	hot := graph.Reachable(roots, ReachOpts{SkipGuarded: true, SkipFatal: true})

	for _, pkg := range pass.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) {
				fn := enclosingFunc(stack)
				if fn == nil {
					return
				}
				var via string
				switch fn := fn.(type) {
				case *ast.FuncLit:
					// A literal is hot only by its own signature: its body
					// runs when called, which the value-tracking edges
					// already over-approximate for the enclosing decl.
					if !isHotFunc(fn) {
						return
					}
				case *ast.FuncDecl:
					if !isHotFunc(fn) {
						obj, ok := info.Defs[fn.Name].(*types.Func)
						if !ok {
							return
						}
						key, ok := funcKeyOf(obj)
						if !ok {
							return
						}
						if _, reached := hot[key]; !reached {
							return
						}
						via = " (hot via " + PathString(Path(hot, key)) + ")"
					}
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					switch fun := unparen(n.Fun).(type) {
					case *ast.Ident:
						if b, ok := info.Uses[fun].(*types.Builtin); ok {
							switch b.Name() {
							case "append", "make", "new":
								if !tracerGuarded(info, n, stack) && !inPanicArgs(info, stack) {
									pass.Reportf(pkg, n.Pos(), "%s allocates on the hot path; preallocate, or guard behind the tracer nil check%s", b.Name(), via)
								}
							}
						}
					case *ast.SelectorExpr:
						if pkgNameOf(info, fun) == "fmt" {
							if !tracerGuarded(info, n, stack) && !inPanicArgs(info, stack) {
								pass.Reportf(pkg, n.Pos(), "fmt.%s on the hot path allocates and formats per call; move it off the fast path%s", fun.Sel.Name, via)
							}
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
							if !tracerGuarded(info, n, stack) && !inPanicArgs(info, stack) {
								pass.Reportf(pkg, n.Pos(), "&composite literal escapes to the heap on the hot path%s", via)
							}
						}
					}
				}
			})
		}
	}
	return nil
}

// tracerGuarded reports whether node only executes when a tracer or
// metrics sink is attached: it sits in the body of `if x != nil` (x a
// sink), or after an earlier `if x == nil { return }` in an enclosing
// block.
func tracerGuarded(info *types.Info, node ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if containsNode(s.Body, node) && condHasSinkNotNil(info, s.Cond) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				if containsNode(st, node) {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && bodyTerminates(ifs) && condHasSinkIsNil(info, ifs.Cond) {
					return true
				}
			}
		}
	}
	return false
}

// condHasSinkNotNil reports whether any && conjunct is `x != nil` with
// x a tracer/metrics sink.
func condHasSinkNotNil(info *types.Info, cond ast.Expr) bool {
	for _, c := range conjuncts(cond) {
		if x, ok := nilCompare(c, token.NEQ); ok && isSink(info, x) {
			return true
		}
	}
	return false
}

// condHasSinkIsNil reports whether the condition is `x == nil` (alone
// or as a conjunct) with x a sink.
func condHasSinkIsNil(info *types.Info, cond ast.Expr) bool {
	for _, c := range conjuncts(cond) {
		if x, ok := nilCompare(c, token.EQL); ok && isSink(info, x) {
			return true
		}
	}
	return false
}

// nilCompare matches `x OP nil` / `nil OP x` and returns x.
func nilCompare(c ast.Expr, op token.Token) (ast.Expr, bool) {
	be, ok := unparen(c).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil, false
	}
	if isNilIdent(be.Y) {
		return be.X, true
	}
	if isNilIdent(be.X) {
		return be.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isSink reports whether x's static type has a tracer/metrics method.
func isSink(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[unparen(x)]
	if !ok {
		return false
	}
	return typeHasMethod(tv.Type, sinkMethods...)
}
