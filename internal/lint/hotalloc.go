package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer protects the tracer-disabled fast path. PR 1's
// contract is that with Trace == nil and Metrics == nil the simulator
// allocates nothing per memory reference (0 allocs/op, enforced by
// benchmarks); an accidental append, make, or fmt call on that path
// silently costs 10-30% of simulation throughput before any benchmark
// notices.
//
// A function is "hot" if it takes the current cycle (`now uint64`) or
// is itself part of the observability surface (Emit / Observe /
// ObserveAccess). Inside a hot function the analyzer flags
// allocation-creating expressions (append, make, new, &CompositeLit)
// and any fmt call, unless the expression is behind a tracer guard —
// an enclosing `if x != nil` (or an earlier `if x == nil { return }`)
// where x is a tracer, metrics or profiler sink (its type has an Emit,
// Observe, ObserveAccess, RetirePC or LineAccess method). Guarded code
// only runs when the user asked for tracing or profiling, where
// allocation is acceptable.
//
// Deliberate allocations (e.g. compacting into a reused backing array)
// are suppressed with //simlint:allow hotalloc.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations and fmt calls on the tracer-disabled fast path",
	Scope: scopeUnder(
		"internal/cache", "internal/coherence", "internal/core",
		"internal/cpu", "internal/memsys", "internal/interconnect",
		"internal/event", "internal/obsv", "internal/prof",
	),
	Run: runHotalloc,
}

// sinkMethods identify a tracer/metrics/profiler sink by duck typing.
// RetirePC and LineAccess are the profiler's per-retire and per-access
// hooks (internal/prof); a `if prof != nil` guard around them marks the
// instrumented slow path just like a tracer guard does.
var sinkMethods = []string{"Emit", "Observe", "ObserveAccess", "RetirePC", "LineAccess"}

func isHotFunc(fn ast.Node) bool {
	if hasNowParam(fn) {
		return true
	}
	if fd, ok := fn.(*ast.FuncDecl); ok {
		switch fd.Name.Name {
		case "Emit", "Observe", "ObserveAccess":
			return true
		}
	}
	return false
}

func runHotalloc(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			fn := enclosingFunc(stack)
			if fn == nil || !isHotFunc(fn) {
				return
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				switch fun := unparen(n.Fun).(type) {
				case *ast.Ident:
					if b, ok := info.Uses[fun].(*types.Builtin); ok {
						switch b.Name() {
						case "append", "make", "new":
							if !tracerGuarded(info, n, stack) {
								pass.Reportf(n.Pos(), "%s allocates on the hot path; preallocate, or guard behind the tracer nil check", b.Name())
							}
						}
					}
				case *ast.SelectorExpr:
					if pkgNameOf(info, fun) == "fmt" {
						if !tracerGuarded(info, n, stack) {
							pass.Reportf(n.Pos(), "fmt.%s on the hot path allocates and formats per call; move it off the fast path", fun.Sel.Name)
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
						if !tracerGuarded(info, n, stack) {
							pass.Reportf(n.Pos(), "&composite literal escapes to the heap on the hot path")
						}
					}
				}
			}
		})
	}
	return nil
}

// tracerGuarded reports whether node only executes when a tracer or
// metrics sink is attached: it sits in the body of `if x != nil` (x a
// sink), or after an earlier `if x == nil { return }` in an enclosing
// block.
func tracerGuarded(info *types.Info, node ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if containsNode(s.Body, node) && condHasSinkNotNil(info, s.Cond) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				if containsNode(st, node) {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && bodyTerminates(ifs) && condHasSinkIsNil(info, ifs.Cond) {
					return true
				}
			}
		}
	}
	return false
}

// condHasSinkNotNil reports whether any && conjunct is `x != nil` with
// x a tracer/metrics sink.
func condHasSinkNotNil(info *types.Info, cond ast.Expr) bool {
	for _, c := range conjuncts(cond) {
		if x, ok := nilCompare(c, token.NEQ); ok && isSink(info, x) {
			return true
		}
	}
	return false
}

// condHasSinkIsNil reports whether the condition is `x == nil` (alone
// or as a conjunct) with x a sink.
func condHasSinkIsNil(info *types.Info, cond ast.Expr) bool {
	for _, c := range conjuncts(cond) {
		if x, ok := nilCompare(c, token.EQL); ok && isSink(info, x) {
			return true
		}
	}
	return false
}

// nilCompare matches `x OP nil` / `nil OP x` and returns x.
func nilCompare(c ast.Expr, op token.Token) (ast.Expr, bool) {
	be, ok := unparen(c).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil, false
	}
	if isNilIdent(be.Y) {
		return be.X, true
	}
	if isNilIdent(be.X) {
		return be.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isSink reports whether x's static type has a tracer/metrics method.
func isSink(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[unparen(x)]
	if !ok {
		return false
	}
	return typeHasMethod(tv.Type, sinkMethods...)
}
