package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CachekeyAnalyzer statically verifies the runner's result-cache
// contract. The on-disk cache (internal/runner) keys every simulation
// by a reflection fingerprint of memsys.Config: scalar knobs are
// rendered into the key, and the runtime attachments (tracer, sampler,
// checker, profiler, SharedData classifier) are excluded but required
// nil by Cacheable before a job may be memoized. The contract breaks
// silently in two ways, and each way serves stale figures as current:
//
//  1. A new Config field of func/pointer/interface kind is skipped by
//     the fingerprint. Unless Cacheable requires it nil (or it is
//     proven output-neutral), two configs differing only in that field
//     share a cache key. The analyzer cross-references every
//     non-scalar Config field against the nil-checks in the runner's
//     Cacheable function; a field that is neither checked there nor
//     annotated //simlint:cachekey-exempt (the annotation asserts
//     output-neutrality, which the neutral analyzer then enforces) is
//     flagged at its declaration. Map/chan/unsafe fields are always
//     flagged: the fingerprint cannot render them canonically.
//
//  2. Simulator code reads configuration from somewhere the
//     fingerprint cannot see: an environment variable, a file, the
//     flag package, or a mutable package-level variable. Any such read
//     makes two identically-fingerprinted runs differ. The analyzer
//     bans env/file/flag reads inside the simulator packages outright,
//     and enforces the "no mutable package-level state" rule the
//     determinism refactor established: a package-level var in the
//     simulator packages may only be assigned at its declaration or
//     from an init function (the link-time plugin pattern); any other
//     store is flagged.
//
// Escape hatches: //simlint:cachekey-exempt on a Config field (with
// the neutrality argument in the comment), //simlint:allow cachekey on
// a flagged statement.
var CachekeyAnalyzer = &Analyzer{
	Name:      "cachekey",
	Doc:       "every memsys.Config knob must reach the cache fingerprint (or be excluded-and-nil-checked); no config reads outside Config in simulator code",
	Scope:     scopeUnder(append(append([]string{}, ownershipPackages...), "internal/event", "internal/mem")...),
	RunModule: runCachekey,
}

// fingerprintSkippedKinds mirrors runner.Fingerprint's switch: these
// kinds are silently omitted from the cache key and must therefore be
// on the exclusion list.
func fingerprintSkipped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Signature, *types.Pointer, *types.Interface:
		return true
	}
	return false
}

// fingerprintUnrenderable are kinds the fingerprint would render
// nondeterministically or uselessly; they may not appear in Config at
// all.
func fingerprintUnrenderable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return true
	}
	return false
}

func runCachekey(pass *ModulePass) error {
	// Part 1: the Config-field audit. Find memsys.Config and the
	// runner's Cacheable nil-check list in the full module (both may be
	// absent in fixture runs — each check simply has nothing to do).
	var memsysPkg *Package
	nilChecked := map[string]bool{}
	for _, pkg := range pass.allPackages() {
		switch {
		case pkg.RelPath == "internal/memsys":
			memsysPkg = pkg
		case pkg.RelPath == "internal/runner":
			collectCacheableNilChecks(pkg, nilChecked)
		}
	}
	// Fixture hook: a fixture package posing as internal/memsys is in
	// pass.Packages but may not be in a full module load.
	if memsysPkg == nil {
		for _, pkg := range pass.Packages {
			if pkg.RelPath == "internal/memsys" {
				memsysPkg = pkg
				break
			}
		}
	}
	if memsysPkg != nil {
		auditConfig(pass, memsysPkg, nilChecked)
	}

	// Part 2: out-of-band config sources in simulator code.
	for _, pkg := range pass.Packages {
		checkConfigSources(pass, pkg)
	}
	return nil
}

// auditConfig checks every field of memsys.Config against the
// fingerprint contract.
func auditConfig(pass *ModulePass, pkg *Package, nilChecked map[string]bool) {
	tn, ok := pkg.Types.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	exempt := configExemptFields(pkg)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case fingerprintUnrenderable(f.Type()):
			pass.Reportf(pkg, f.Pos(),
				"Config.%s has kind %s, which the cache fingerprint cannot render canonically; restructure the knob as scalars",
				f.Name(), f.Type().Underlying().String())
		case fingerprintSkipped(f.Type()):
			if nilChecked[f.Name()] || exempt[f.Name()] {
				continue
			}
			pass.Reportf(pkg, f.Pos(),
				"Config.%s is skipped by the cache fingerprint but is neither required nil by runner.Cacheable nor annotated //simlint:cachekey-exempt; two configs differing only here would share a cache key and serve stale figures",
				f.Name())
		}
	}
}

// configExemptFields collects //simlint:cachekey-exempt annotations on
// Config field declarations (doc comment or trailing comment).
func configExemptFields(pkg *Package) map[string]bool {
	exempt := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Config" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if hasDirective(fld.Doc, "simlint:cachekey-exempt") || hasDirective(fld.Comment, "simlint:cachekey-exempt") {
					for _, name := range fld.Names {
						exempt[name.Name] = true
					}
				}
			}
			return false
		})
	}
	return exempt
}

// collectCacheableNilChecks records which Cfg fields the runner's
// Cacheable function compares against nil (`job.Cfg.X == nil`).
func collectCacheableNilChecks(pkg *Package, out map[string]bool) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Cacheable" || fd.Recv != nil {
				continue
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.EQL {
					return true
				}
				var sel *ast.SelectorExpr
				if isNilIdent(be.Y) {
					sel, _ = unparen(be.X).(*ast.SelectorExpr)
				} else if isNilIdent(be.X) {
					sel, _ = unparen(be.Y).(*ast.SelectorExpr)
				}
				if sel == nil {
					return true
				}
				if qual, ok := unparen(sel.X).(*ast.SelectorExpr); ok && qual.Sel.Name == "Cfg" {
					out[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
}

// configSourceFuncs are the out-of-band configuration reads banned in
// simulator code, keyed by package path then function name. An empty
// name set bans the whole package.
var configSourceFuncs = map[string]map[string]bool{
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
		"ReadFile": true, "Open": true, "OpenFile": true, "ReadDir": true,
		"UserHomeDir": true, "UserConfigDir": true, "Getwd": true,
	},
	"flag": {}, // any use of the flag package
}

func checkConfigSources(pass *ModulePass, pkg *Package) {
	info := pkg.Info

	// Package-level vars assigned outside init: mutable global state,
	// invisible to the fingerprint (and to the determinism contract).
	globals := map[types.Object]bool{}
	for _, name := range pkg.Types.Scope().Names() {
		if v, ok := pkg.Types.Scope().Lookup(name).(*types.Var); ok {
			globals[v] = true
		}
	}

	for _, f := range pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath := pkgNameOf(info, n)
				if pkgPath == "" {
					return
				}
				names, banned := configSourceFuncs[pkgPath]
				if !banned {
					return
				}
				if len(names) == 0 || names[n.Sel.Name] {
					pass.Reportf(pkg, n.Pos(),
						"%s.%s reads configuration outside memsys.Config; the result cache cannot fingerprint it, so cached figures would go stale silently",
						pkgPath, n.Sel.Name)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Uses[id]
					if obj == nil || !globals[obj] {
						continue
					}
					if inInitFunc(stack) {
						continue // the link-time plugin pattern (core/mxs.go)
					}
					pass.Reportf(pkg, id.Pos(),
						"package-level var %s is mutated outside init; simulator state must live on per-run structs or it aliases across cached runs",
						id.Name)
				}
			}
		})
	}
}

// inInitFunc reports whether the stack is inside a func init() or a
// package-level var initializer.
func inInitFunc(stack []ast.Node) bool {
	fd := enclosingFuncDecl(stack)
	return fd != nil && fd.Recv == nil && fd.Name.Name == "init"
}
