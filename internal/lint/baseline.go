package lint

// The baseline is simlint's committed suppression ledger
// (.simlint-baseline.json at the module root). When a new analyzer
// lands with pre-existing findings that are tracked for burn-down
// rather than fixed inline, `simlint -write-baseline` records them;
// runs then report only findings NOT in the baseline, so CI fails on
// new debt while tolerating the inventoried kind.
//
// Entries match on (file, analyzer, message) with an occurrence count —
// deliberately not on line numbers, so unrelated edits above a
// baselined site do not churn the file. Fixing a baselined finding
// makes `make lint-baseline` regenerate a smaller file; committing that
// shrink is the burn-down record.
//
// The shipped baseline is empty: every finding the v2 suite raised on
// the tree was either fixed or carries an inline //simlint:allow with
// its justification. The machinery exists so a future analyzer can land
// before its findings are all burned down.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the parsed suppression ledger.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry suppresses up to Count findings matching (File,
// Analyzer, Message).
type BaselineEntry struct {
	File     string `json:"file"` // module-relative, forward slashes
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineKey struct {
	file, analyzer, message string
}

// LoadBaseline reads the ledger at path. A missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// BaselineOf builds the ledger that would suppress exactly the given
// findings.
func BaselineOf(root string, diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range JSONDiagnostics(root, diags) {
		counts[baselineKey{d.File, d.Analyzer, d.Message}]++
	}
	b := &Baseline{Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Filter returns the findings not covered by the baseline, preserving
// order. Each entry absorbs at most Count matching findings.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	budget := map[baselineKey]int{}
	for _, e := range b.Entries {
		budget[baselineKey{e.File, e.Analyzer, e.Message}] += e.Count
	}
	kept := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		k := baselineKey{relPath(root, d.Pos.Filename), d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// Save writes the ledger to path (indented, trailing newline), so the
// committed file is byte-stable across regenerations.
func (b *Baseline) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeIndented(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
