package mem

import (
	"testing"
	"testing/quick"
)

func TestImageReadWriteWidths(t *testing.T) {
	m := NewImage(64)
	m.Write8(1, 0xab)
	if got := m.Read8(1); got != 0xab {
		t.Errorf("Read8 = %#x, want 0xab", got)
	}
	m.Write32(4, 0xdeadbeef)
	if got := m.Read32(4); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x, want 0xdeadbeef", got)
	}
	m.Write64(8, 0x0123456789abcdef)
	if got := m.Read64(8); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
	m.WriteF64(16, 3.25)
	if got := m.ReadF64(16); got != 3.25 {
		t.Errorf("ReadF64 = %v, want 3.25", got)
	}
	// Little-endian byte order.
	m.Write32(20, 0x11223344)
	if m.Read8(20) != 0x44 || m.Read8(23) != 0x11 {
		t.Error("Write32 not little-endian")
	}
}

func TestImagePanicsOnBadAccess(t *testing.T) {
	m := NewImage(16)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("oob read8", func() { m.Read8(16) })
	mustPanic("oob write32", func() { m.Write32(16, 0) })
	mustPanic("misaligned read32", func() { m.Read32(2) })
	mustPanic("misaligned read64", func() { m.Read64(4) })
	mustPanic("oob read64 straddling end", func() { m.Read64(12) })
}

func TestIdentitySpace(t *testing.T) {
	s := Identity{Limit: 0x1000}
	if p, ok := s.Translate(0); !ok || p != 0 {
		t.Errorf("Translate(0) = %#x,%v", p, ok)
	}
	if p, ok := s.Translate(0xfff); !ok || p != 0xfff {
		t.Errorf("Translate(0xfff) = %#x,%v", p, ok)
	}
	if _, ok := s.Translate(0x1000); ok {
		t.Error("Translate(limit) should fail")
	}
}

func TestProcSpace(t *testing.T) {
	s := Proc{
		TextPhys: 0x50000, TextLimit: 0x2000,
		DataPhys: 0x10000, UserLimit: 0x4000,
		KernelStart: 0xf0000, KernelLimit: 0xf8000,
	}
	if p, ok := s.Translate(0x100); !ok || p != 0x50100 {
		t.Errorf("text Translate = %#x,%v", p, ok)
	}
	if p, ok := s.Translate(0x2100); !ok || p != 0x10100 {
		t.Errorf("data Translate = %#x,%v", p, ok)
	}
	if _, ok := s.Translate(0x4000); ok {
		t.Error("above user limit should fail")
	}
	if p, ok := s.Translate(0xf0010); !ok || p != 0xf0010 {
		t.Errorf("kernel Translate = %#x,%v", p, ok)
	}
	if _, ok := s.Translate(0xf8000); ok {
		t.Error("above kernel limit should fail")
	}
	if _, ok := s.Translate(0x80000); ok {
		t.Error("hole between segments should fail")
	}
}

func TestQuickProcMappingIsPiecewiseLinear(t *testing.T) {
	s := Proc{
		TextPhys: 0x80000, TextLimit: 0x4000,
		DataPhys: 0x40000, UserLimit: 0x10000,
		KernelStart: 0x100000, KernelLimit: 0x110000,
	}
	f := func(v uint32) bool {
		v %= s.UserLimit
		p, ok := s.Translate(v)
		if !ok {
			return false
		}
		if v < s.TextLimit {
			return p == s.TextPhys+v
		}
		return p == s.DataPhys+(v-s.TextLimit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickImage32RoundTrip(t *testing.T) {
	m := NewImage(1 << 12)
	f := func(addr, v uint32) bool {
		addr = (addr % (m.Size() / 4)) * 4
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
