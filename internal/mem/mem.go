// Package mem provides the simulated physical memory image and the
// address-space translation used by guest contexts.
//
// The memory image is purely functional: it holds the bytes the guest
// programs operate on. All timing (caches, buses, contention) is modelled
// separately by the memory-system packages, which see only addresses.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Image is a flat simulated physical memory. Accessors panic on
// out-of-range or misaligned addresses: guest programs are part of the
// simulator's own test corpus, so such an access is a bug in the
// simulator or a workload, not a recoverable guest error.
type Image struct {
	data []byte
}

// NewImage allocates a zeroed physical memory of the given size in bytes.
func NewImage(size uint32) *Image {
	return &Image{data: make([]byte, size)}
}

// Size returns the physical memory size in bytes.
func (m *Image) Size() uint32 { return uint32(len(m.data)) }

// Snapshot returns a copy of the entire physical memory (for
// checkpointing).
func (m *Image) Snapshot() []byte {
	return append([]byte(nil), m.data...)
}

// RestoreSnapshot replaces the memory contents with a snapshot of the
// same size.
func (m *Image) RestoreSnapshot(data []byte) error {
	if len(data) != len(m.data) {
		return fmt.Errorf("mem: snapshot size %d does not match memory size %d", len(data), len(m.data))
	}
	copy(m.data, data)
	return nil
}

func (m *Image) check(addr, n uint32, what string) {
	if uint64(addr)+uint64(n) > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: %s at %#x (size %d) out of range (memory %d bytes)", what, addr, n, len(m.data)))
	}
	if addr%n != 0 {
		panic(fmt.Sprintf("mem: misaligned %s at %#x (size %d)", what, addr, n))
	}
}

// Read8 reads one byte.
func (m *Image) Read8(addr uint32) uint8 {
	m.check(addr, 1, "read8")
	return m.data[addr]
}

// Write8 writes one byte.
func (m *Image) Write8(addr uint32, v uint8) {
	m.check(addr, 1, "write8")
	m.data[addr] = v
}

// Read32 reads a 32-bit little-endian word. addr must be 4-byte aligned.
func (m *Image) Read32(addr uint32) uint32 {
	m.check(addr, 4, "read32")
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// Write32 writes a 32-bit little-endian word. addr must be 4-byte aligned.
func (m *Image) Write32(addr uint32, v uint32) {
	m.check(addr, 4, "write32")
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Read64 reads a 64-bit little-endian word. addr must be 8-byte aligned.
func (m *Image) Read64(addr uint32) uint64 {
	m.check(addr, 8, "read64")
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// Write64 writes a 64-bit little-endian word. addr must be 8-byte aligned.
func (m *Image) Write64(addr uint32, v uint64) {
	m.check(addr, 8, "write64")
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// ReadF64 reads a float64.
func (m *Image) ReadF64(addr uint32) float64 {
	return math.Float64frombits(m.Read64(addr))
}

// WriteF64 writes a float64.
func (m *Image) WriteF64(addr uint32, v float64) {
	m.Write64(addr, math.Float64bits(v))
}

// Space translates a guest virtual address to a physical address.
// Implementations must be deterministic and side-effect free.
type Space interface {
	// Translate maps a virtual address to physical. ok is false if the
	// address is unmapped; the CPU models treat that as a fatal guest
	// fault.
	Translate(vaddr uint32) (paddr uint32, ok bool)
}

// Identity maps virtual addresses 1:1 onto physical addresses below
// Limit. It is the space used by the parallel applications, which share
// one address space across all CPUs as threads of one process.
type Identity struct {
	Limit uint32
}

// Translate implements Space.
func (s Identity) Translate(v uint32) (uint32, bool) {
	if v >= s.Limit {
		return 0, false
	}
	return v, true
}

// Proc is the address space of one process in the multiprogramming
// workload: a text segment shared by every process running the same
// binary (as an OS shares a program's text pages), a private data/stack
// segment relocated by base-and-bound, and the shared kernel segment
// mapped identically for every process (the kernel is mapped into every
// address space, as in IRIX).
//
// Virtual layout:
//
//	[0, TextLimit)              -> [TextPhys, TextPhys+TextLimit)      (shared)
//	[TextLimit, UserLimit)      -> [DataPhys, ...)                      (private)
//	[KernelStart, KernelLimit)  -> identity                             (shared)
type Proc struct {
	TextPhys    uint32
	TextLimit   uint32
	DataPhys    uint32
	UserLimit   uint32
	KernelStart uint32
	KernelLimit uint32
}

// Translate implements Space.
func (s Proc) Translate(v uint32) (uint32, bool) {
	if v < s.TextLimit {
		return s.TextPhys + v, true
	}
	if v < s.UserLimit {
		return s.DataPhys + (v - s.TextLimit), true
	}
	if v >= s.KernelStart && v < s.KernelLimit {
		return v, true
	}
	return 0, false
}
