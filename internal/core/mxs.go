package core

import (
	"cmpsim/internal/cpu"
	"cmpsim/internal/cpu/mxs"
	"cmpsim/internal/memsys"
)

func init() {
	newMXSCore = func(id int, ctx *cpu.Context, m *Machine, cfg memsys.Config) Core {
		c := mxs.New(id, ctx, m.Sys, m.Code.Cursor(), m.Trap, m.Img, cfg.LineBytes)
		if cfg.Trace != nil {
			c.SetTracer(cfg.Trace)
		}
		if cfg.Prof != nil {
			c.SetProfiler(cfg.Prof)
		}
		return c
	}
}
