package core

import (
	"cmpsim/internal/cpu"
	"cmpsim/internal/cpu/mxs"
	"cmpsim/internal/memsys"
)

func init() {
	newMXSCore = func(id int, ctx *cpu.Context, m *Machine, cfg memsys.Config) Core {
		return mxs.New(id, ctx, m.Sys, m.Code, m.Trap, m.Img, cfg.LineBytes)
	}
}
