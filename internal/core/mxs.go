package core

import (
	"cmpsim/internal/cpu"
	"cmpsim/internal/cpu/mxs"
	"cmpsim/internal/memsys"
)

func init() {
	newMXSCore = func(id int, ctx *cpu.Context, m *Machine, cfg memsys.Config) Core {
		c := mxs.New(id, ctx, m.gatedSys(id), m.Code.Cursor(), m.gatedTrap(id), m.Img, cfg.LineBytes)
		if m.par != nil {
			// MXS reads the shared guest image directly at graduation
			// (load refresh), outside any memory-system call; it must
			// take the tick gate itself before doing so.
			c.SetTickGate(m.par.gate(id))
		}
		if cfg.Trace != nil {
			c.SetTracer(cfg.Trace)
		}
		if cfg.Prof != nil {
			c.SetProfiler(cfg.Prof)
		}
		return c
	}
}
