package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"cmpsim/internal/cpu"
	"cmpsim/internal/mem"
)

// Checkpoint captures a machine's functional state — the physical memory
// image and every hardware context — mirroring the paper's methodology
// (Section 3.2): "The checkpoint saves the internal state of CPU and main
// memory and provides a common starting point for simulating the three
// architectures."
//
// Timing state (cache tags, bank clocks, statistics) is deliberately not
// captured: as in SimOS, a restored simulation starts with cold caches.
// Host-side trap-handler state (the pmake scheduler's process table) is
// also outside the checkpoint, so checkpoints apply to the
// single-address-space workloads.
type Checkpoint struct {
	Mem      []byte
	Contexts []cpu.Context
}

func init() {
	// The Space interface field inside cpu.Context needs its concrete
	// types registered for gob.
	gob.Register(mem.Identity{})
	gob.Register(mem.Proc{})
}

// Checkpoint snapshots the machine's functional state.
func (m *Machine) Checkpoint() *Checkpoint {
	c := &Checkpoint{Mem: m.Img.Snapshot()}
	for _, core := range m.CPUs {
		c.Contexts = append(c.Contexts, *core.Context())
	}
	return c
}

// Restore overwrites the machine's functional state from a checkpoint.
// The machine must have the same memory size and CPU count (typically: a
// freshly Configure()d machine of any architecture).
func (m *Machine) Restore(c *Checkpoint) error {
	if len(c.Contexts) != len(m.CPUs) {
		return fmt.Errorf("core: checkpoint has %d contexts, machine has %d CPUs",
			len(c.Contexts), len(m.CPUs))
	}
	if err := m.Img.RestoreSnapshot(c.Mem); err != nil {
		return err
	}
	for i, core := range m.CPUs {
		*core.Context() = c.Contexts[i]
		core.FlushFetchBuffer()
	}
	return nil
}

// WriteCheckpoint serializes a checkpoint (gob, gzip-compressed).
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(c); err != nil {
		zw.Close()
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	return zw.Close()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	defer zr.Close()
	var c Checkpoint
	if err := gob.NewDecoder(zr).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return &c, nil
}
