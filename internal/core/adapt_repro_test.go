package core

import (
	"testing"
	"time"
)

// Repro: grid < 16 with AdaptWindow and tick-dense cores should not hang.
func TestAdaptSmallGridRepro(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var log []stubTick
		cores := []*gatedStub{{id: 0}, {id: 1}}
		m := stubParMachine(2, 8, cores...)
		m.Cfg.AdaptWindow = true
		for _, c := range cores {
			c.log = &log
		}
		if _, _, err := m.RunWindow(0, 200); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunWindow hung (adaptLen reached 0?)")
	}
}
