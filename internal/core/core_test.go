package core

import (
	"strings"
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

func tinyProgram(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.Label("start")
	b.LI(asm.R1, 41)
	b.ADDI(asm.R1, asm.R1, 1)
	b.LA(asm.R2, "out")
	b.SW(asm.R1, 0, asm.R2)
	b.HALT()
	b.AlignData(4)
	b.DataLabel("out")
	b.Word32(0)
	p, err := b.Assemble(0x1000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestMachine(t *testing.T, a Arch, model CPUModel) *Machine {
	t.Helper()
	m, err := NewMachine(a, model, memsys.DefaultConfig(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addCtx(m *Machine, pc uint32) *cpu.Context {
	ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, PC: pc}
	ctx.Regs[isa.RegSP] = 0x80000
	m.AddContext(ctx)
	return ctx
}

func TestNewSystemRejectsUnknownArch(t *testing.T) {
	if _, err := NewSystem("nope", memsys.DefaultConfig()); err == nil {
		t.Error("unknown arch should error")
	}
	if _, err := NewMachine("nope", ModelMipsy, memsys.DefaultConfig(), 1<<20); err == nil {
		t.Error("NewMachine with unknown arch should error")
	}
	if _, err := NewMachine(SharedL1, "weird", memsys.DefaultConfig(), 1<<20); err == nil {
		t.Error("NewMachine with unknown model should error")
	}
}

func TestMachineRunsToCompletion(t *testing.T) {
	for _, model := range []CPUModel{ModelMipsy, ModelMXS} {
		m := newTestMachine(t, SharedMem, model)
		p := tinyProgram(t)
		m.LoadProgram(p, 0)
		addCtx(m, p.Addr("start"))
		res, err := m.Run(100000)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Img.Read32(p.Addr("out")); got != 42 {
			t.Errorf("%s: out = %d, want 42", model, got)
		}
		if res.Instructions() == 0 || res.Cycles == 0 || res.IPC() <= 0 {
			t.Errorf("%s: degenerate result %+v", model, res)
		}
	}
}

func TestRunRequiresCPUs(t *testing.T) {
	m := newTestMachine(t, SharedL1, ModelMipsy)
	if _, err := m.Run(100); err == nil {
		t.Error("expected error with no CPUs")
	}
}

func TestRunTimeout(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.Label("forever")
	b.J("forever")
	p := b.MustAssemble(0x1000, 0x4000)
	m := newTestMachine(t, SharedMem, ModelMipsy)
	m.LoadProgram(p, 0)
	addCtx(m, p.Addr("start"))
	_, err := m.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("expected timeout error, got %v", err)
	}
}

func TestRunReportsGuestFault(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LUI(asm.R1, 0xffff)
	b.LW(asm.R2, 0, asm.R1)
	b.HALT()
	p := b.MustAssemble(0x1000, 0x4000)
	m := newTestMachine(t, SharedMem, ModelMipsy)
	m.LoadProgram(p, 0)
	addCtx(m, p.Addr("start"))
	_, err := m.Run(100000)
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("expected fault error, got %v", err)
	}
}

func TestCodeRegistryLookup(t *testing.T) {
	var r CodeRegistry
	p1 := tinyProgram(t)
	r.Register(p1, 0)
	r.Register(p1, 0x100000) // a second relocated copy

	in, ok := r.InstAt(0x1000)
	if !ok || in.Op != isa.ADDI {
		t.Errorf("InstAt(base) = %v, %v", in, ok)
	}
	in2, ok := r.InstAt(0x101000)
	if !ok || in2 != in {
		t.Errorf("relocated copy mismatch: %v vs %v", in2, in)
	}
	if _, ok := r.InstAt(0x50000); ok {
		t.Error("lookup outside any program should fail")
	}
	if _, ok := r.InstAt(p1.TextEnd()); ok {
		t.Error("lookup exactly at text end should fail")
	}
	// Per-CPU cursors carry the last-hit cache; it must not corrupt
	// cross-entry lookups, and two cursors must not disturb each other.
	c1, c2 := r.Cursor(), r.Cursor()
	for i := 0; i < 4; i++ {
		if _, ok := c1.InstAt(0x1000); !ok {
			t.Fatal("cursor 1 lookup failed")
		}
		if _, ok := c2.InstAt(0x101004); !ok {
			t.Fatal("cursor 2 lookup failed")
		}
	}
	if c1.last == c2.last {
		t.Error("cursors hitting different entries should memoize independently")
	}
}

func TestEventsFireBeforeTicks(t *testing.T) {
	m := newTestMachine(t, SharedMem, ModelMipsy)
	p := tinyProgram(t)
	m.LoadProgram(p, 0)
	addCtx(m, p.Addr("start"))
	var fired []uint64
	m.Events.Schedule(0, func(at uint64) { fired = append(fired, at) })
	m.Events.Schedule(3, func(at uint64) { fired = append(fired, at) })
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 3 {
		t.Errorf("events fired = %v", fired)
	}
}

func TestIRQLines(t *testing.T) {
	m := newTestMachine(t, SharedMem, ModelMipsy)
	if m.PendingInterrupt(0) {
		t.Error("irq should start clear")
	}
	m.RaiseIRQ(2)
	if !m.PendingInterrupt(2) || m.PendingInterrupt(1) {
		t.Error("RaiseIRQ wrong line")
	}
	m.AckInterrupt(2)
	if m.PendingInterrupt(2) {
		t.Error("Ack did not clear")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		m := newTestMachine(t, SharedL2, ModelMXS)
		p := tinyProgram(t)
		m.LoadProgram(p, 0)
		for i := 0; i < 4; i++ {
			addCtx(m, p.Addr("start"))
		}
		res, err := m.Run(100000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d cycles", a, b)
	}
}
