package core

// Scheduler-level tests for the quiescence-skipping cycle loop, using
// stub cores so blocking horizons and tick order are fully controlled.
// The end-to-end output-identity proof lives in the root package's
// skip_test.go; these pin the loop mechanics themselves: rotation
// arbitration at large cycle counts, skip distances, event chains that
// cross a would-be skip window, and sampler boundaries.

import (
	"reflect"
	"testing"

	"cmpsim/internal/cpu"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
)

// stubTick records one executed tick: which core ran at which cycle, in
// service order.
type stubTick struct {
	cycle uint64
	id    int
}

// stubCore is a minimal Core: blocked (a pure no-op, like a Mipsy CPU
// waiting on memory) until blockedUntil, then runnable every cycle.
type stubCore struct {
	id           int
	blockedUntil uint64
	haltAt       uint64 // halt when ticked at or after this cycle (0 = never)
	halted       bool
	log          *[]stubTick
	ctx          cpu.Context
}

func (s *stubCore) Tick(now uint64) uint64 {
	if !s.halted && now >= s.blockedUntil {
		*s.log = append(*s.log, stubTick{now, s.id})
		if s.haltAt != 0 && now >= s.haltAt {
			s.halted = true
			s.ctx.Halted = true
		}
	}
	return s.NextWork(now)
}

func (s *stubCore) Done() bool            { return s.halted }
func (s *stubCore) Stats() cpu.StallStats { return cpu.StallStats{} }
func (s *stubCore) Context() *cpu.Context { return &s.ctx }
func (s *stubCore) FlushFetchBuffer()     {}
func (s *stubCore) NextWork(now uint64) uint64 {
	if s.halted {
		return cpu.NoWork
	}
	if s.blockedUntil > now {
		return s.blockedUntil
	}
	return now
}

// stubMachine builds a Machine around stub cores sharing one tick log.
func stubMachine(cores ...*stubCore) *Machine {
	m := &Machine{}
	for _, c := range cores {
		m.CPUs = append(m.CPUs, c)
	}
	return m
}

// TestRotationOffsetAtLargeCycles pins the arbitration rotation beyond
// 2^32 cycles: the offset must be computed in uint64 (a narrowing
// int(cyc) would skew the rotation wherever int is 32 bits wide).
func TestRotationOffsetAtLargeCycles(t *testing.T) {
	var log []stubTick
	cores := []*stubCore{{id: 0, log: &log}, {id: 1, log: &log}, {id: 2, log: &log}}
	m := stubMachine(cores...)
	start := uint64(3)<<32 + 5
	if _, _, err := m.RunWindow(start, 2); err != nil {
		t.Fatal(err)
	}
	var want []stubTick
	for cyc := start; cyc < start+2; cyc++ {
		off := int(cyc % 3)
		for i := 0; i < 3; i++ {
			want = append(want, stubTick{cyc, (i + off) % 3})
		}
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("service order = %v, want %v", log, want)
	}
}

// TestSkipJumpsBlockedWindow: with every core blocked, the loop must
// jump straight to the earliest wake-up cycle — and with NoSkip it must
// grind through every cycle — with identical executed ticks either way.
func TestSkipJumpsBlockedWindow(t *testing.T) {
	run := func(noSkip bool) ([]stubTick, uint64) {
		var log []stubTick
		m := stubMachine(
			&stubCore{id: 0, blockedUntil: 1000, haltAt: 1001, log: &log},
			&stubCore{id: 1, blockedUntil: 1200, haltAt: 1200, log: &log},
		)
		m.Cfg.NoSkip = noSkip
		next, halted, err := m.RunWindow(0, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !halted {
			t.Fatalf("noSkip=%v: machine should have halted, stopped at %d", noSkip, next)
		}
		return log, m.SkippedCycles()
	}
	skipLog, skipped := run(false)
	refLog, refSkipped := run(true)
	if !reflect.DeepEqual(skipLog, refLog) {
		t.Errorf("executed ticks diverge:\nskip:    %v\nno-skip: %v", skipLog, refLog)
	}
	if refSkipped != 0 {
		t.Errorf("NoSkip run skipped %d cycles, want 0", refSkipped)
	}
	if skipped == 0 {
		t.Error("skipping run reports 0 skipped cycles; the jump never happened")
	}
	// Cycle 0 ticks both blocked cores (no-ops), then the loop may jump
	// to 1000; core 0 runs cycles 1000-1001, core 1 wakes at 1200.
	if len(skipLog) == 0 || skipLog[0].cycle != 1000 {
		t.Fatalf("first executed tick = %+v, want cycle 1000", skipLog[:min(len(skipLog), 1)])
	}
}

// TestEventChainAcrossSkip: an event at cycle N scheduling one at N+k
// must never be jumped over, even when every CPU sleeps far beyond it —
// each executed cycle re-bounds the next jump by Events.NextCycle.
func TestEventChainAcrossSkip(t *testing.T) {
	var log []stubTick
	m := stubMachine(&stubCore{id: 0, blockedUntil: 10000, log: &log})
	var fired []uint64
	m.Events.Schedule(5, func(at uint64) {
		fired = append(fired, at)
		m.Events.Schedule(12, func(at2 uint64) {
			fired = append(fired, at2)
			m.Events.Schedule(40, func(at3 uint64) { fired = append(fired, at3) })
		})
	})
	if _, _, err := m.RunWindow(0, 100); err != nil {
		t.Fatal(err)
	}
	if want := []uint64{5, 12, 40}; !reflect.DeepEqual(fired, want) {
		t.Errorf("events fired at %v, want %v", fired, want)
	}
	// Executed cycles: 0 (window start), 5, 12, 40 — the other 96 skipped.
	if got := m.SkippedCycles(); got != 96 {
		t.Errorf("skipped = %d, want 96", got)
	}
}

// TestRunWindowSteadyStateAllocs pins the scheduler's own steady-state
// path — event drain, tick-hint gathering, and the nextCycle
// verification scan with its jump — at zero allocations per window.
func TestRunWindowSteadyStateAllocs(t *testing.T) {
	var log []stubTick
	m := stubMachine(
		&stubCore{id: 0, blockedUntil: 1 << 62, log: &log},
		&stubCore{id: 1, blockedUntil: 1 << 62, log: &log},
	)
	var win uint64
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := m.RunWindow(win*1000, 1000); err != nil {
			t.Fatal(err)
		}
		win++
	})
	if allocs != 0 {
		t.Errorf("RunWindow steady state = %.1f allocs/op, want 0", allocs)
	}
}

// TestMetricsBoundariesNotSkipped: sampler due-cycles bound every jump,
// so the interval time-series has exactly the same sample points with
// skipping as without.
func TestMetricsBoundariesNotSkipped(t *testing.T) {
	var log []stubTick
	m := stubMachine(&stubCore{id: 0, blockedUntil: 60, log: &log})
	m.Sys = memsys.NewSharedMem(memsys.DefaultConfig())
	m.Cfg.Metrics = obsv.NewMetrics(10)
	if _, _, err := m.RunWindow(0, 45); err != nil {
		t.Fatal(err)
	}
	var cycles []uint64
	for _, s := range m.Cfg.Metrics.Samples() {
		cycles = append(cycles, s.End)
	}
	if want := []uint64{10, 20, 30, 40}; !reflect.DeepEqual(cycles, want) {
		t.Errorf("sample cycles = %v, want %v", cycles, want)
	}
}
