// Parallel tick scheduler: shards one simulation's per-CPU tick work
// across host goroutines while reproducing the serial cycle loop's
// output byte for byte.
//
// The design is conservative timestamp ordering. Each simulated CPU
// carries an atomic progress clock holding the cycle it is currently
// executing. Within a scheduling window every worker advances its own
// CPUs freely through their private state (pipeline, register file,
// fetch cursor, store buffer), but before a CPU's FIRST touch of shared
// simulation state in cycle t — a memory-system call, a trap into the
// guest kernel, or a direct read of the shared guest image — it blocks
// until every other CPU has either finished cycle t or sits behind it
// in cycle t's service rotation. Cycle t's rotation is the serial
// loop's arbitration order (off = t % nCPUs), so shared-state accesses
// happen in exactly the lexicographic (cycle, rotation-position) order
// the serial loop produces: same grant order, same coherence traffic,
// same stall cycles, same statistics. CPUs that never touch shared
// state in a cycle — the common case — never synchronize at all.
//
// Determinism argument, in brief (DESIGN.md §8 has the full version):
//
//   - Exclusivity: the gate admits CPU p into cycle t's shared region
//     only when every peer j satisfies clock_j > t, or clock_j == t
//     with j after p in t's rotation. Two CPUs distinct in (t, pos)
//     can't both hold a grant, so shared accesses are globally ordered.
//   - Fidelity: that global order is exactly the serial loop's, by
//     induction over (t, pos); per-CPU state between shared accesses
//     is private by the ownership analysis (simlint sharedmut), so
//     every access computes the same values as its serial twin.
//   - Progress: the CPU with the globally minimal (t, pos) never
//     blocks, and is always some worker's locally minimal CPU, so the
//     system can't deadlock.
//   - Race freedom: clocks are atomics (the store releasing cycle t
//     happens-before the load that admits a successor), everything
//     else is either owner-private or touched only under the gate.
//
// Shared resources that are not reached through a CPU's tick — the
// event calendar, the interval sampler, IRQ line delivery, telemetry
// flushes — run only in the coordinator, between window barriers.
package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"cmpsim/internal/cpu"
	"cmpsim/internal/cyc"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/memsys"
)

// gridSize returns the SimWindow scheduling grid. Grid boundaries are
// absolute cycle numbers (multiples of the grid), so where RunWindow
// calls chop the run into chunks cannot move them — checkpoint/resume
// and single-call runs see identical IRQ merge points.
func (m *Machine) gridSize() uint64 {
	if w := m.Cfg.SimWindow; w > 0 {
		return w
	}
	return memsys.DefaultSimWindow
}

// parActive reports whether this RunWindow call takes the parallel
// path. Guest-observability attachments that record per-event streams
// (tracer, profiler, sanitizer) force the serial loop: their emission
// order is part of their contract and is not reproduced by sharded
// ticking. The interval sampler is fine — histogram accumulation is
// commutative and snapshots happen only at window boundaries.
func (m *Machine) parActive() bool {
	return m.par != nil && m.Cfg.Trace == nil && m.Cfg.Prof == nil && m.Cfg.Check == nil
}

// notHalted is the haltAt sentinel: CPU not yet observed Done this
// window.
const notHalted = ^uint64(0)

// clockSlot is one CPU's progress clock, padded to a cache line so
// spinning readers never false-share with the owner's stores.
type clockSlot struct {
	c atomic.Uint64
	_ [56]byte
}

// cpuGate is one CPU's tick-gate state. tick/synced are written by the
// owning worker at the top of every tick; Sync implements the
// rotation-ordered admission spin. waits and siteWaits accumulate
// contended syncs (total and by gate site) for telemetry and are
// drained by the coordinator between runs; rec, when host profiling is
// attached, additionally receives every contended spin with its peer,
// site and duration.
//
//simlint:owned per-cpu — one gate per CPU, mutated only by the worker that owns the CPU (coordinator drains waits and resets grants between barriers)
type cpuGate struct {
	s    *parSched
	cpu  int
	tick uint64

	// grantedUntil is the waiter-side epoch grant: a cycle bound below
	// which every cross-shard peer's published safe horizon has already
	// been observed, so syncs at cycles strictly before it need no clock
	// loads at all. Sound because horizons only move forward inside a
	// carried stretch; the coordinator zeroes the grant whenever it
	// rewinds the clocks (non-quiet window boundary).
	grantedUntil uint64

	synced    bool
	waits     uint64
	siteWaits [hostprof.NumSites]uint64
	rec       *hostprof.GateRec
	_         [16]byte // pad to two cache lines: gates are adjacent in one slice
}

// Sync implements cpu.TickGate — the detailed CPU model's
// graduation-time guest-image read is the only caller that reaches the
// gate without a site-tagged shim.
func (g *cpuGate) Sync() { g.sync(hostprof.SiteMXSImage) }

// sync blocks until every peer CPU has left this CPU's current cycle
// or sits behind it in the cycle's service rotation. Idempotent within
// a tick; a no-op on the serial path.
//
// Two epoch-grant shortcuts over the original every-peer scan (DESIGN
// §8.6): same-shard peers are never checked — the owning worker picks
// its CPUs in (cycle, rotation-position) order, so a same-shard peer's
// published clock always already satisfies the admission predicate —
// and a whole-epoch grant is cached in grantedUntil: after one scan,
// every sync at a cycle below the minimum cross-shard horizon observed
// is admitted with a single comparison.
func (g *cpuGate) sync(site hostprof.Site) {
	s := g.s
	if !s.active || g.synced {
		return
	}
	g.synced = true
	t := g.tick
	if t < g.grantedUntil {
		return // inside a granted epoch: no peer can reach t anymore
	}
	n := len(s.clocks)
	myPos := rotPos(g.cpu, t, n)
	myShard := s.shardOf[g.cpu]
	granted := notHalted
	spun := false
	for j := 0; j < n; j++ {
		if s.shardOf[j] == myShard {
			continue // own worker's CPUs, self included: safe by pick order
		}
		jPos := rotPos(j, t, n)
		cj := s.clocks[j].c.Load()
		if cj > t || (cj == t && jPos > myPos) {
			if cj < granted {
				granted = cj
			}
			continue // peer already past: no contention, no timestamps
		}
		spun = true
		tok := g.rec.SpinBegin()
		for spins := 0; ; spins++ {
			cj = s.clocks[j].c.Load()
			if cj > t || (cj == t && jPos > myPos) {
				break
			}
			// Yield early and often: with fewer host cores than
			// workers (GOMAXPROCS=1 in the degenerate case) the peer
			// cannot advance until this goroutine leaves the P.
			if spins&7 == 7 {
				runtime.Gosched()
			}
		}
		g.rec.SpinEnd(tok, j, site, t)
		if cj < granted {
			granted = cj
		}
	}
	g.grantedUntil = granted
	if spun {
		g.waits++
		g.siteWaits[site]++
	}
}

// rotPos is CPU id's service position in cycle t's rotation — the
// serial loop services CPU (i+off)%n at index i with off = t % n, so
// position(id) = (id - off + n) % n.
func rotPos(id int, t uint64, n int) int {
	return (id - int(t%uint64(n)) + n) % n
}

// gridNext returns the first SimWindow grid boundary strictly after c.
func gridNext(c, grid uint64) uint64 { return (c/grid + 1) * grid }

// winJob is one scheduling window handed to a worker: advance every
// owned CPU from cycle w0 up to (not including) w1. A zero-width job
// (w0 == w1) tells the worker to exit.
type winJob struct {
	w0, w1 uint64
}

// parSched is the parallel tick scheduler's persistent state, built
// once per Machine by NewMachine when the configuration asks for
// sharding. Worker goroutines are spawned per runParallel call and
// joined before it returns, so an idle Machine holds no goroutines.
type parSched struct {
	m       *Machine
	shards  [][]int     // worker -> owned CPU ids
	shardOf []int       // CPU id -> owning worker index
	clocks  []clockSlot // per CPU: safe horizon — no shared-state touch strictly before this cycle
	gates   []cpuGate   // per CPU: tick-gate state, owned by the sharding worker

	// active is true only while workers are running a window (set and
	// cleared by the coordinator around the barrier, so the
	// worker-visible transitions are ordered by the job send / WaitGroup
	// edges). The gates are installed in the CPUs unconditionally;
	// active=false makes Sync a no-op on serially-forced runs.
	active bool

	// haltAt[id] is the first cycle at which id's worker observed the
	// CPU Done in the current window (notHalted otherwise). Every CPU is
	// visited at least once per window, so when the coordinator finds
	// all CPUs Done after a barrier, every haltAt entry is fresh and
	// their maximum is the serial loop's break cycle.
	haltAt []uint64

	// Per-worker telemetry accumulators, owner-written during windows,
	// drained by the coordinator after the final barrier of each
	// runParallel call.
	ticks   []uint64 // executed CPU ticks per shard
	skipped []uint64 // per-CPU cycles locally fast-forwarded per shard
	grants  []uint64 // epoch grants taken at window entry per shard
	granted []uint64 // per-CPU cycles those grants covered per shard

	jobs []chan winJob  // per-worker window hand-off (buffered, reused)
	wg   sync.WaitGroup // window barrier

	// hp is the optional host-side execution observatory
	// (memsys.Config.HostProf). It observes the host schedule only —
	// its presence must never force the serial path or perturb sim
	// output (parActive deliberately ignores it; the parallel-identity
	// tests pin byte-identical output with a recorder attached).
	// hpBound tracks the lazy Bind: the recorder binds on the first
	// runParallel call, not at construction, so a run that never takes
	// the parallel path (guest instruments forced it serial) snapshots
	// to an empty profile.
	hp      *hostprof.Recorder
	hpBound bool
}

// newParSched builds the scheduler for up to `jobs` workers over the
// machine's CPUs. The default assignment splits CPUs into contiguous
// blocks; Config.ShardLayout overrides it with an explicit CPU→worker
// map (profile-guided layouts co-locate the hottest waiter-peer pairs,
// whose gate spins then vanish by the same-shard pick-order argument).
func newParSched(m *Machine, jobs int) (*parSched, error) {
	ncpu := m.Cfg.NumCPUs
	var shards [][]int
	if lay := m.Cfg.ShardLayout; lay != "" {
		var err error
		// The layout decides only which host worker ticks which CPU — a
		// pure host-parallelism knob, excluded from the result-cache key;
		// output is byte-identical for any assignment (identity tests).
		//simlint:allow neutral — shard layout is host scheduling shape, not simulated state
		shards, err = hostprof.ParseShardLayout(lay, ncpu)
		if err != nil {
			return nil, fmt.Errorf("core: -shard-layout: %w", err)
		}
	} else {
		nw := jobs
		// Shard workers beyond the host's cores cannot overlap and only add
		// gate contention; cap at GOMAXPROCS, but keep at least two shards
		// so the concurrent machinery stays exercised (and race-detectable)
		// on small hosts. The shard count is a pure host-parallelism knob —
		// output is byte-identical for any value (parallel-identity tests).
		if procs := runtime.GOMAXPROCS(0); nw > procs {
			nw = procs
			if nw < 2 {
				nw = 2
			}
		}
		if nw > ncpu {
			nw = ncpu
		}
		for w := 0; w < nw; w++ {
			lo, hi := w*ncpu/nw, (w+1)*ncpu/nw
			ids := make([]int, 0, hi-lo)
			for id := lo; id < hi; id++ {
				ids = append(ids, id)
			}
			shards = append(shards, ids)
		}
	}
	nw := len(shards)
	s := &parSched{
		m:       m,
		shards:  shards,
		shardOf: make([]int, ncpu),
		clocks:  make([]clockSlot, ncpu),
		gates:   make([]cpuGate, ncpu),
		haltAt:  make([]uint64, ncpu),
		ticks:   make([]uint64, nw),
		skipped: make([]uint64, nw),
		grants:  make([]uint64, nw),
		granted: make([]uint64, nw),
		jobs:    make([]chan winJob, nw),
	}
	for i := range s.gates {
		s.gates[i] = cpuGate{s: s, cpu: i}
	}
	for w, ids := range shards {
		for _, id := range ids {
			s.shardOf[id] = w
		}
		s.jobs[w] = make(chan winJob, 1)
	}
	s.hp = m.Cfg.HostProf
	return s, nil
}

// gate returns CPU id's tick gate (for models that must Sync before
// touching shared state outside a memory-system call).
func (s *parSched) gate(id int) cpu.TickGate { return &s.gates[id] }

// gatedSys wraps the memory system for one CPU: every call first takes
// the CPU's rotation-order grant for the current cycle, so the shared
// caches, interconnect and coherence state see accesses in exactly the
// serial service order.
type gatedSys struct {
	sys memsys.System
	g   *cpuGate
}

func (w gatedSys) Name() string { return w.sys.Name() }

func (w gatedSys) Access(now uint64, cpu int, addr uint32, write bool) (memsys.Result, bool) {
	w.g.sync(hostprof.SiteAccess)
	return w.sys.Access(now, cpu, addr, write)
}

func (w gatedSys) IFetch(now uint64, cpu int, addr uint32) memsys.Result {
	w.g.sync(hostprof.SiteIFetch)
	return w.sys.IFetch(now, cpu, addr)
}

func (w gatedSys) LLReserve(cpu int, addr uint32) {
	w.g.sync(hostprof.SiteLLReserve)
	w.sys.LLReserve(cpu, addr)
}

func (w gatedSys) SCCheck(cpu int, addr uint32) bool {
	w.g.sync(hostprof.SiteSCCheck)
	return w.sys.SCCheck(cpu, addr)
}

func (w gatedSys) ClearReservation(cpu int) {
	w.g.sync(hostprof.SiteClearReserve)
	w.sys.ClearReservation(cpu)
}

func (w gatedSys) Report() memsys.Report { return w.sys.Report() }

// gatedTrap wraps the trap handler the same way: the guest kernel's
// run queues, process table and pending-wake lists are shared state.
type gatedTrap struct {
	h cpu.TrapHandler
	g *cpuGate
}

func (w gatedTrap) Syscall(now uint64, cpuID int, ctx *cpu.Context, num int32) uint64 {
	w.g.sync(hostprof.SiteSyscall)
	return w.h.Syscall(now, cpuID, ctx, num)
}

// gatedSys returns the memory system CPU id should tick against:
// the machine's system directly when the serial loop is the only
// scheduler, the gate-wrapped view otherwise.
func (m *Machine) gatedSys(id int) memsys.System {
	if m.par == nil {
		return m.Sys
	}
	return gatedSys{sys: m.Sys, g: &m.par.gates[id]}
}

// gatedTrap is gatedSys's counterpart for the trap handler.
func (m *Machine) gatedTrap(id int) cpu.TrapHandler {
	if m.par == nil {
		return m.Trap
	}
	return gatedTrap{h: m.Trap, g: &m.par.gates[id]}
}

// runParallel is RunWindow's sharded twin. The coordinator owns every
// shared resource that the serial loop touches outside CPU ticks — the
// event calendar, IRQ delivery, the interval sampler, telemetry — and
// runs them between window barriers; workers own only their CPUs'
// ticks. Window edges are chosen so nothing shared can change inside a
// window: the next event, the next sampler due-cycle and the next IRQ
// merge grid boundary all bound w1.
func (m *Machine) runParallel(start, n uint64) (next uint64, halted bool, err error) {
	s := m.par
	mets := m.Cfg.Metrics
	tel := m.Cfg.Telem
	grid := m.gridSize()
	end := start + n
	cyc := start
	if tel != nil {
		tel.Windows.Inc()
	}

	nw := len(s.shards)
	// Lazy-bind the host observatory on the first window that actually
	// takes the parallel path; the worker spawns below publish the
	// recorders to their owning goroutines.
	if s.hp != nil && !s.hpBound {
		s.hp.Bind(len(s.clocks), s.shards)
		for i := range s.gates {
			s.gates[i].rec = s.hp.Gate(i)
		}
		s.hpBound = true
	}
	ctk := s.hp.Coord()
	rtok := ctk.RunBegin()
	defer ctk.RunEnd(rtok)
	for w := 0; w < nw; w++ {
		//simlint:allow determinism — the tick gate serializes every shared-state access into the serial loop's exact (cycle, rotation) order; identity pinned by the parallel byte-identity tests
		go s.worker(w)
	}
	// Stop the workers on every exit path (including a guest fault):
	// a zero-width window is the quit signal.
	defer func() {
		for _, ch := range s.jobs {
			ch <- winJob{}
		}
	}()
	telBase := cyc

	// Coordinator-serial slices span everything between barriers: IRQ
	// merge, event calendar, halt scans, window-edge computation,
	// sampler probes, telemetry flushes.
	//
	// carry tracks whether the workers' published safe horizons survive
	// the window boundary (DESIGN §8.6). A horizon is a NextWork proof
	// — "no observable work, hence no shared-state touch, strictly
	// before cycle h, assuming no external input" — so it stays valid
	// across a boundary exactly when no external input arrived: no
	// buffered IRQ promoted onto a live line, no event callback ran.
	// (The interval sampler only reads counters; it never feeds state
	// back into a CPU, so a sampler cut does not invalidate.) The first
	// window never carries: clocks are stale from the previous
	// RunWindow chunk, which may have run serially or not at all.
	carry := false
	// Adaptive window sizing (Config.AdaptWindow): adaptLen is the
	// current window-length target, halved when windows run tick-dense
	// (lockstep phases realign at cheap barriers instead of per-access
	// gate spins) and doubled back toward the grid when they run
	// skip-dominated. The policy input — executed ticks per window — is
	// deterministic, so the adapted schedule shape is reproducible;
	// window edges never change simulated state (identity pinned with
	// the flag on by the parallel byte-identity tests).
	adaptLen := grid
	var prevTicks uint64
	for _, t := range s.ticks {
		prevTicks += t
	}
	stok := ctk.SerialBegin()
	for cyc < end {
		if cyc%grid == 0 {
			if m.irq.npend > 0 {
				carry = false // merge is about to make lines live
			}
			m.irq.merge()
		}
		if ev, ok := m.Events.NextCycle(); ok && ev <= cyc {
			carry = false // event callbacks may wake CPUs / raise IRQs
		}
		m.Events.RunUntil(cyc)
		alive := false
		for _, c := range m.CPUs {
			if !c.Done() {
				alive = true
				break
			}
		}
		if !alive {
			// Mirror the serial loop's break: the sample due at the
			// halt cycle (recorded there before breaking) still fires.
			if mets != nil && mets.Due(cyc) {
				mets.Record(m.probe(cyc))
			}
			break
		}

		// Coordinator fast-forward (Config.AdaptWindow): when every live
		// CPU's carried safe horizon clears the present, the whole
		// stretch up to the minimum horizon is proven no-op — the serial
		// loop's global quiescence skip would jump it — so advance
		// without dispatching a window at all: no worker hand-off, no
		// barrier, no per-worker grant bookkeeping. Bounded exactly like
		// a window edge (grid boundary for IRQ merges, run end, next
		// event, sampler due-cycle + 1), and a live IRQ line never
		// fast-forwards because skipTo refuses to publish a horizon past
		// t+1 for it.
		if m.Cfg.AdaptWindow && carry {
			h := notHalted
			for i, c := range m.CPUs {
				if c.Done() {
					continue
				}
				if v := s.clocks[i].c.Load(); v < h {
					h = v
				}
			}
			if h > cyc {
				jump := gridNext(cyc, grid)
				if end < jump {
					jump = end
				}
				if ev, ok := m.Events.NextCycle(); ok && ev < jump {
					jump = ev
				}
				if mets != nil {
					// Same sanctioned obs→sim dataflow as the window-edge
					// clamp below: the sampler schedule bounds the jump,
					// never what any cycle computes.
					//simlint:allow neutral — fast-forward bound only; output byte-identical (see parallel-identity tests)
					if due := mets.NextDue(); due+1 < jump && due+1 > cyc {
						jump = due + 1
					}
				}
				if h < jump {
					jump = h
				}
				if jump > cyc {
					for _, c := range m.CPUs {
						if c.Done() {
							continue
						}
						if cs, ok := c.(cycleSkipper); ok {
							cs.SkipCycles(cyc, jump)
						}
					}
					ctk.WindowOpen(cyc, jump, hostprof.CutFastForward)
					last := jump - 1 //simlint:allow cycleflow — jump > cyc >= 0, so jump >= 1
					if mets != nil && mets.Due(last) {
						mets.Record(m.probe(last))
					}
					cyc = jump
					continue
				}
			}
		}

		// Window edge: the next grid boundary, clamped by the run end,
		// the next event and the next sampler due-cycle (+1: the serial
		// loop samples after ticking the due cycle, so the due cycle
		// must be a window's last cycle). All bounds exceed cyc, so the
		// window is non-empty.
		cut := hostprof.CutGrid
		w1 := gridNext(cyc, grid)
		if w1 > end {
			w1 = end
			cut = hostprof.CutEnd
		}
		if ev, ok := m.Events.NextCycle(); ok && ev < w1 {
			w1 = ev
			cut = hostprof.CutEvent
		}
		if mets != nil {
			// Sampler-schedule bound, the same sanctioned obs→sim
			// dataflow as nextCycle's: it moves only the barrier, never
			// what any cycle computes (identity pinned by the parallel
			// byte-identity tests).
			//simlint:allow neutral — window edge only; output byte-identical (see parallel-identity tests)
			if due := mets.NextDue(); due < w1 {
				w1 = due + 1
				cut = hostprof.CutSampler
				if w1 <= cyc { // overdue sample: tick one cycle, record
					w1 = cyc + 1
				}
			}
		}
		if m.Cfg.AdaptWindow && cyc+adaptLen < w1 {
			w1 = cyc + adaptLen
			cut = hostprof.CutAdapt
		}

		// Quiet boundary: carry the published safe horizons (and the
		// waiters' cached epoch grants) into the next window — a CPU
		// whose horizon already clears w1 is granted the whole epoch
		// without a single re-proving tick. Otherwise rewind every clock
		// to the present and drop the grant caches with them.
		if !carry {
			for i := range s.clocks {
				s.clocks[i].c.Store(cyc)
				s.gates[i].grantedUntil = 0
			}
		}
		carry = true
		for i := range s.haltAt {
			s.haltAt[i] = notHalted
		}
		ctk.WindowOpen(cyc, w1, cut)
		ctk.SerialEnd(stok)
		btok := ctk.BarrierBegin()
		s.active = true
		m.inTick = true
		s.wg.Add(nw)
		for w := 0; w < nw; w++ {
			s.jobs[w] <- winJob{w0: cyc, w1: w1}
		}
		s.wg.Wait()
		m.inTick = false
		s.active = false
		ctk.BarrierEnd(btok, cyc, w1)
		stok = ctk.SerialBegin()

		if m.Cfg.AdaptWindow {
			// Retune the window-length target from this window's tick
			// density (executed ticks per CPU-cycle — deterministic, so
			// the adapted schedule reproduces run to run): dense lockstep
			// phases shrink the window, skip-dominated phases grow it
			// back toward the grid.
			var tsum uint64
			for _, t := range s.ticks {
				tsum += t
			}
			ticked := tsum - prevTicks //simlint:allow cycleflow — tsum is a monotone sum of per-worker tick counters, so tsum >= prevTicks
			prevTicks = tsum
			span := (w1 - cyc) * uint64(len(s.clocks)) //simlint:allow cycleflow — every window-edge bound exceeds cyc, so w1 > cyc
			if 2*ticked > span && adaptLen > grid/16 {
				adaptLen /= 2
			} else if 8*ticked < span && adaptLen < grid {
				adaptLen *= 2
			}
		}

		allDone := true
		for _, c := range m.CPUs {
			if !c.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			// The serial loop would have broken out of the cycle loop at
			// h = max over CPUs of the first cycle that observed the CPU
			// halted. h == w1 means the last CPU's halting tick was the
			// window's last cycle: fall through, and the next iteration's
			// all-halted pre-check reproduces the serial break exactly.
			h := uint64(0)
			for _, at := range s.haltAt {
				if at > h {
					h = at
				}
			}
			if h < w1 {
				if mets != nil && mets.Due(h) {
					mets.Record(m.probe(h))
				}
				cyc = h
				break
			}
		}
		last := w1 - 1 //simlint:allow cycleflow — w1 > cyc >= 0, so w1 >= 1
		if mets != nil && mets.Due(last) {
			mets.Record(m.probe(last))
		}
		cyc = w1
		if tel != nil {
			tel.ParWindows.Inc()
			if cyc > telBase {
				tel.CyclesTicked.Add(cyc - telBase)
				telBase = cyc
			}
		}
	}

	ctk.SerialEnd(stok)
	if tel != nil {
		if cyc > telBase {
			tel.CyclesTicked.Add(cyc - telBase)
		}
		var gw uint64
		for i := range s.gates {
			g := &s.gates[i]
			gw += g.waits
			g.waits = 0
			for site := range g.siteWaits {
				if n := g.siteWaits[site]; n > 0 {
					tel.GateWaitsBySite.With(hostprof.Site(site).String()).Add(n)
					g.siteWaits[site] = 0
				}
			}
		}
		tel.GateWaits.Add(gw)
		for w := 0; w < nw; w++ {
			if s.ticks[w] > 0 {
				tel.ShardTicks.With(strconv.Itoa(w)).Add(s.ticks[w])
				s.ticks[w] = 0
			}
			if s.skipped[w] > 0 {
				tel.LocalSkipped.Add(s.skipped[w])
				s.skipped[w] = 0
			}
			if s.grants[w] > 0 {
				tel.EpochGrants.Add(s.grants[w])
				s.grants[w] = 0
			}
			if s.granted[w] > 0 {
				tel.EpochGrantedCycles.Add(s.granted[w])
				s.granted[w] = 0
			}
		}
	}
	for _, c := range m.CPUs {
		if f := c.Context().Fault; f != "" {
			return cyc, false, fmt.Errorf("core: cpu fault: %s", f)
		}
	}
	allHalted := true
	for _, c := range m.CPUs {
		if !c.Done() {
			allHalted = false
			break
		}
	}
	return cyc, allHalted, nil
}

// worker advances one shard of CPUs through scheduling windows until
// told to quit. Within a window it repeatedly picks the owned CPU with
// the smallest (cycle, rotation-position) — which is always safe to
// run next, and keeps the globally minimal CPU unblocked — ticks it,
// and publishes its safe horizon through the CPU's clock: the earliest
// future cycle at which the CPU can next touch shared state (the
// unclamped NextWork proof when it skips, the next tick cycle
// otherwise, "never" once it halts). Quiescent stretches are
// fast-forwarded per CPU: a skipped cycle makes no shared-state access
// at all in the serial loop, so skipping it locally cannot reorder
// anything.
func (s *parSched) worker(w int) {
	m := s.m
	noSkip := m.Cfg.NoSkip
	own := s.shards[w]
	cur := make([]uint64, len(own))
	tk := s.hp.Track(w)
	for jb := range s.jobs[w] {
		w0, w1 := jb.w0, jb.w1
		if w0 == w1 {
			return // quit signal
		}
		wtok := tk.WindowBegin(w0)
		ticks0 := s.ticks[w]
		// Window entry: resume each owned CPU from its carried safe
		// horizon. The coordinator left the clocks untouched across a
		// quiet boundary, so a horizon past w0 is a still-valid NextWork
		// proof: the cycles up to it are no-ops in the serial loop too,
		// and SkipCycles replaces them exactly as the in-window local
		// skip does. A horizon at or past w1 grants the whole epoch —
		// the CPU neither ticks nor re-proves anything this window.
		for i, id := range own {
			cur[i] = w0
			h := s.clocks[id].c.Load()
			if h <= w0 {
				continue
			}
			c := m.CPUs[id]
			if c.Done() {
				continue // the pick loop retires it against haltAt
			}
			if h > w1 {
				h = w1
			}
			if cs, ok := c.(cycleSkipper); ok {
				cs.SkipCycles(w0, h)
			}
			s.grants[w]++
			s.granted[w] += h - w0
			tk.Grant(id, w0, h)
			cur[i] = h
		}
		n := len(s.clocks)
		for {
			// Pick the owned CPU with the smallest (cycle, position).
			best := -1
			var bt uint64
			var bp int
			for i, t := range cur {
				if t >= w1 {
					continue
				}
				p := rotPos(own[i], t, n)
				if best < 0 || t < bt || (t == bt && p < bp) {
					best, bt, bp = i, t, p
				}
			}
			if best < 0 {
				break // every owned CPU reached the window edge
			}
			id := own[best]
			c := m.CPUs[id]
			t := cur[best]
			if c.Done() {
				// Done at the window start (halting ticks are caught
				// below). Record the observation cycle and retire the
				// CPU from the window; a halted CPU can never touch
				// shared state again, so its horizon is "never" and
				// survives every carry.
				s.haltAt[id] = t
				s.clocks[id].c.Store(notHalted)
				cur[best] = w1
				continue
			}
			g := &s.gates[id]
			g.tick = t
			g.synced = false
			wake := c.Tick(t)
			s.ticks[w]++
			tk.Tick(id)
			if c.Done() {
				// Halted during this tick: the serial loop would first
				// see it Done at t+1.
				s.haltAt[id] = t + 1
				s.clocks[id].c.Store(notHalted)
				cur[best] = w1
				continue
			}
			nt := t + 1
			hz := nt
			if !noSkip && wake > nt {
				v, h := s.skipTo(c, id, t, nt, w1)
				if h > hz {
					hz = h
				}
				if v > nt {
					s.skipped[w] += v - nt
					tk.Skip(id, nt, v)
					nt = v
				}
			}
			s.clocks[id].c.Store(hz)
			cur[best] = nt
		}
		tk.WindowEnd(wtok, w1, cyc.Sub(s.ticks[w], ticks0))
		s.wg.Done()
	}
}

// skipTo is the per-CPU quiescence skip: verify the tick's wake hint
// against the CPU's own NextWork proof and jump to the earlier of that
// and the window edge. Sound inside a window because a quiescent CPU's
// skipped cycles make no shared-state access, no event fires inside a
// window, and the CPU's live IRQ line is frozen until the next
// coordinator phase — mirroring the serial nextCycle's guards, a live
// line suppresses the skip so delivery stays on the per-cycle path.
//
// It returns both the clamped position `pos` the CPU resumes at inside
// this window and the unclamped proof `horizon`: the position must not
// cross w1 (the coordinator owns everything past the barrier), but the
// horizon may — publishing it through the clock lets cross-shard
// waiters stop checking this CPU for the whole proven stretch, and
// lets the next window's entry grant resume the skip without a
// re-proving tick (DESIGN §8.6).
func (s *parSched) skipTo(c Core, id int, t, step, w1 uint64) (pos, horizon uint64) {
	if s.m.irq.live[id] {
		return step, step
	}
	target := c.NextWork(t)
	if target <= step {
		return step, step
	}
	pos = target
	if pos > w1 {
		pos = w1
	}
	if pos > step {
		if cs, ok := c.(cycleSkipper); ok {
			cs.SkipCycles(step, pos)
		}
	}
	return pos, target
}
