// Package core is the top-level simulator: it composes a memory-system
// architecture, a set of CPU models, the loaded guest programs and the
// trap handler into a Machine, runs the cycle loop to completion, and
// produces the statistics that the experiment harness turns into the
// paper's figures.
package core

import (
	"fmt"
	"io"
	"sort"

	"cmpsim/internal/asm"
	"cmpsim/internal/check"
	"cmpsim/internal/cpu"
	"cmpsim/internal/cpu/mipsy"
	"cmpsim/internal/event"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
)

// Arch identifies one of the three architecture compositions.
type Arch string

const (
	SharedL1  Arch = "shared-l1"
	SharedL2  Arch = "shared-l2"
	SharedMem Arch = "shared-mem"
)

// Arches lists the three architectures in the paper's presentation order
// (the shared-memory machine is the normalization baseline).
func Arches() []Arch { return []Arch{SharedL1, SharedL2, SharedMem} }

// NewSystem builds the memory system for an architecture.
func NewSystem(a Arch, cfg memsys.Config) (memsys.System, error) {
	switch a {
	case SharedL1:
		return memsys.NewSharedL1(cfg), nil
	case SharedL2:
		return memsys.NewSharedL2(cfg), nil
	case SharedMem:
		return memsys.NewSharedMem(cfg), nil
	}
	return nil, fmt.Errorf("core: unknown architecture %q", a)
}

// Core is a CPU model instance driven by the cycle loop.
type Core interface {
	// Tick advances the core by one cycle and returns a quiescence
	// hint: the earliest cycle after now at which this core might have
	// work (cpu.NoWork if it is now halted). The hint obeys the same
	// asymmetric contract as NextWork — too small only costs no-op
	// ticks — and is returned from Tick so the scheduler's common case
	// (someone is runnable next cycle) costs no extra call: the cycle
	// loop only falls back to the verifying NextWork scan when every
	// hint clears cyc+1.
	Tick(now uint64) uint64
	Done() bool
	Stats() cpu.StallStats
	Context() *cpu.Context
	FlushFetchBuffer()

	// NextWork returns the earliest cycle at or after now at which Tick
	// could make progress or have any observable side effect, assuming
	// no external state changes first; cpu.NoWork if the core is halted.
	// The quiescence-skipping scheduler jumps the cycle loop to the
	// minimum NextWork across cores (bounded by pending events, sampler
	// boundaries and interrupts), so the contract is asymmetric: a value
	// that is too small merely costs no-op ticks, while a value that is
	// too large would change simulation output. Models return now+1
	// whenever they cannot cheaply prove a longer quiescent window.
	NextWork(now uint64) uint64
}

// cycleSkipper is implemented by CPU models whose per-cycle accounting
// must be backfilled across a skipped window. MXS charges one stall
// cycle of blame per zero-graduation cycle; a skipped cycle still
// happened architecturally, so the scheduler reports every jump to the
// model before taking it.
type cycleSkipper interface {
	SkipCycles(from, to uint64)
}

// codeEntry is one loaded program's decoded text.
type codeEntry struct {
	base   uint32
	end    uint32
	insts  []isa.Inst
	labels map[uint32][]string // physical address → text labels, for Dump
}

// CodeRegistry resolves physical addresses to decoded instructions over
// all loaded programs. It is immutable once the programs are loaded, so
// all CPUs share it safely; the per-fetch lookup memo lives in the
// per-CPU CodeCursor each core fetches through.
type CodeRegistry struct {
	entries []codeEntry
}

// Register adds p's text, relocated by physBias, to the registry.
func (r *CodeRegistry) Register(p *asm.Program, physBias uint32) {
	e := codeEntry{
		base:   physBias + p.TextBase,
		end:    physBias + p.TextEnd(),
		insts:  p.Insts,
		labels: make(map[uint32][]string),
	}
	for _, s := range p.Symbols() {
		if s.Text {
			e.labels[physBias+s.Start] = append(e.labels[physBias+s.Start], s.Name)
		}
	}
	r.entries = append(r.entries, e)
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].base < r.entries[j].base })
}

// Dump writes a disassembly listing of every registered program region
// to w: one line per instruction with its physical address, annotated
// with the assembler's function and branch-target labels.
func (r *CodeRegistry) Dump(w io.Writer) {
	for _, e := range r.entries {
		fmt.Fprintf(w, "; region %#08x..%#08x (%d instructions)\n", e.base, e.end, len(e.insts))
		for i, in := range e.insts {
			addr := e.base + uint32(4*i)
			for _, l := range e.labels[addr] {
				fmt.Fprintf(w, "%s:\n", l)
			}
			fmt.Fprintf(w, "%08x:  %s\n", addr, in)
		}
	}
}

// InstAt implements cpu.CodeSource by plain scan, with no lookup memo —
// the registry stays read-only after loading. Cores fetch through a
// Cursor instead, which adds the last-hit cache without sharing it.
func (r *CodeRegistry) InstAt(paddr uint32) (isa.Inst, bool) {
	for i := range r.entries {
		e := &r.entries[i]
		if paddr >= e.base && paddr < e.end {
			return e.insts[(paddr-e.base)/4], true
		}
	}
	return isa.Inst{}, false
}

// Cursor returns a per-CPU fetch view of the registry. The cursor
// caches the last entry hit, which covers almost every fetch thanks to
// code locality; keeping the memo per-CPU (rather than on the shared
// registry, as it originally was) means concurrent ticks never write
// shared state on the fetch path.
func (r *CodeRegistry) Cursor() *CodeCursor { return &CodeCursor{reg: r} }

// CodeCursor is one core's private window onto the shared CodeRegistry.
//
//simlint:owned per-cpu — every core gets its own cursor from Machine's newCore
type CodeCursor struct {
	reg  *CodeRegistry
	last int
}

// InstAt implements cpu.CodeSource.
func (c *CodeCursor) InstAt(paddr uint32) (isa.Inst, bool) {
	entries := c.reg.entries
	if c.last < len(entries) {
		if e := &entries[c.last]; paddr >= e.base && paddr < e.end {
			return e.insts[(paddr-e.base)/4], true
		}
	}
	for i := range entries {
		e := &entries[i]
		if paddr >= e.base && paddr < e.end {
			c.last = i
			return e.insts[(paddr-e.base)/4], true
		}
	}
	return isa.Inst{}, false
}

// CPUModel selects the CPU simulator.
type CPUModel string

const (
	ModelMipsy CPUModel = "mipsy"
	ModelMXS   CPUModel = "mxs"
)

// Machine is a fully composed simulated system.
type Machine struct {
	Arch  Arch
	Cfg   memsys.Config
	Img   *mem.Image
	Sys   memsys.System
	Code  *CodeRegistry
	Trap  cpu.TrapHandler
	CPUs  []Core
	Model CPUModel

	// Events is the machine's discrete-event calendar; events fire at
	// the top of their cycle, before any CPU ticks. The guest kernel
	// uses it for preemption timers.
	Events event.Queue

	// irq holds the per-CPU external interrupt lines behind the
	// window-boundary arbitration protocol (see irqLines): event-phase
	// raises land on the live lines immediately, tick-phase raises are
	// buffered and merged onto the live lines at the next SimWindow grid
	// boundary, and each CPU reads and acks only its own live line
	// within a window. Both schedulers follow the same protocol, so
	// delivery cycles are identical serial and parallel.
	irq irqLines

	// inTick distinguishes the two scheduler phases for RaiseIRQ: false
	// while event callbacks run (coordinator phase — raises deliver
	// immediately, as the guest kernel's preemption timers always have),
	// true while CPUs tick (raises buffer until the next grid boundary).
	inTick bool

	// par is the parallel tick scheduler, built only when the
	// configuration asks for sharding (SimJobs > 1 on a multi-CPU
	// machine); nil means the serial loop runs unconditionally.
	par *parSched

	// skipped counts the cycles the quiescence-skipping scheduler
	// fast-forwarded over instead of ticking (a pure speed metric:
	// simulated time is identical with skipping disabled).
	skipped uint64

	// syms is the machine-wide physical-address symbol table, collected
	// from every loaded program (relocated by its load bias) so a
	// profile snapshot can resolve physical PCs and data addresses back
	// to assembler labels.
	syms []prof.Symbol

	// NewCore builds a CPU for the machine; set by the model selection in
	// NewMachine and used by AddContext.
	newCore func(id int, ctx *cpu.Context) Core
}

// irqLines is the per-CPU external-interrupt state under the
// window-boundary arbitration protocol the parallel tick requires and
// the serial loop reproduces:
//
//   - live are the delivered lines. Within a scheduling window each
//     line is read (PendingInterrupt) and cleared (AckInterrupt) only
//     by its own CPU, and written by the coordinator phase (event
//     callbacks, grid-boundary merges) only between windows — so no two
//     goroutines ever touch a live line concurrently.
//   - pending buffers raises made from tick phase (a trap handler
//     running under some CPU's tick). Tick-phase code runs under the
//     scheduler's serial-order shared-state grant, so pending is
//     mutated exclusively; merge promotes it to live at the next
//     SimWindow grid boundary, identically in both schedulers.
//
// The arbitration points are the methods below, declared as such for
// the sharedmut analyzer: the classification is an enforced invariant
// of the parallel scheduler, not documentation.
type irqLines struct {
	live    []bool
	pending []bool
	npend   int // live count of buffered raises; bounds the quiescence skip to the next merge
}

// raise asserts a line: immediately in coordinator phase, buffered to
// the next grid boundary from tick phase.
//
//simlint:arbiter
func (q *irqLines) raise(cpuID int, tickPhase bool) {
	if tickPhase {
		if !q.pending[cpuID] {
			q.pending[cpuID] = true
			q.npend++
		}
		return
	}
	q.live[cpuID] = true
}

// ack clears a CPU's own live line (interrupt taken).
//
//simlint:arbiter
func (q *irqLines) ack(cpuID int) { q.live[cpuID] = false }

// merge promotes buffered tick-phase raises onto the live lines; called
// at SimWindow grid boundaries by both schedulers.
//
//simlint:arbiter
func (q *irqLines) merge() {
	if q.npend == 0 {
		return
	}
	for i, p := range q.pending {
		if p {
			q.live[i] = true
			q.pending[i] = false
		}
	}
	q.npend = 0
}

// RaiseIRQ asserts the external interrupt line of a CPU; the CPU takes
// the interrupt at its next instruction boundary (Mipsy) or after
// draining its pipeline (MXS). Raised from an event callback (the
// kernel's preemption timers) the line is live the same cycle; raised
// from tick phase it is buffered and delivered at the next SimWindow
// grid boundary, in both the serial and the parallel scheduler.
func (m *Machine) RaiseIRQ(cpuID int) { m.irq.raise(cpuID, m.inTick) }

// PendingInterrupt implements cpu.InterruptSource.
func (m *Machine) PendingInterrupt(cpuID int) bool { return m.irq.live[cpuID] }

// AckInterrupt implements cpu.InterruptSource.
func (m *Machine) AckInterrupt(cpuID int) { m.irq.ack(cpuID) }

// interruptible is implemented by CPU models that poll an external
// interrupt line.
type interruptible interface {
	SetInterruptSource(cpu.InterruptSource)
}

// NewMachine builds a machine with the given architecture, memory-system
// configuration, CPU model and physical memory size. Contexts are added
// with AddContext; programs with LoadProgram.
func NewMachine(a Arch, model CPUModel, cfg memsys.Config, memBytes uint32) (*Machine, error) {
	if model == ModelMXS {
		cfg = cfg.MXS()
	}
	sys, err := NewSystem(a, cfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Arch:  a,
		Cfg:   cfg,
		Img:   mem.NewImage(memBytes),
		Sys:   sys,
		Code:  &CodeRegistry{},
		Trap:  cpu.NopTrap{},
		Model: model,
		irq: irqLines{
			live:    make([]bool, cfg.NumCPUs),
			pending: make([]bool, cfg.NumCPUs),
		},
	}
	if (cfg.SimJobs > 1 || cfg.ShardLayout != "") && cfg.NumCPUs > 1 {
		m.par, err = newParSched(m, max(cfg.SimJobs, 2))
		if err != nil {
			return nil, err
		}
	}
	switch model {
	case ModelMipsy:
		m.newCore = func(id int, ctx *cpu.Context) Core {
			c := mipsy.New(id, ctx, m.gatedSys(id), m.Code.Cursor(), m.gatedTrap(id), m.Img, cfg.LineBytes)
			if cfg.Prof != nil {
				c.SetProfiler(cfg.Prof)
			}
			return c
		}
	case ModelMXS:
		if newMXSCore == nil {
			return nil, fmt.Errorf("core: MXS model not linked")
		}
		m.newCore = func(id int, ctx *cpu.Context) Core {
			return newMXSCore(id, ctx, m, cfg)
		}
	default:
		return nil, fmt.Errorf("core: unknown CPU model %q", model)
	}
	return m, nil
}

// newMXSCore is set by the mxs glue file; separated so the core package
// compiles while the detailed model is plugged in.
var newMXSCore func(id int, ctx *cpu.Context, m *Machine, cfg memsys.Config) Core

// SetTrapHandler installs the guest kernel's trap handler. Must be
// called before AddContext so the CPUs capture it.
func (m *Machine) SetTrapHandler(t cpu.TrapHandler) { m.Trap = t }

// sharedDataSetter is implemented by memory systems with a per-region
// L1 write policy (the shared-L2 architecture).
type sharedDataSetter interface {
	SetSharedData(func(addr uint32) bool)
}

// SetSharedData declares which physical addresses hold shared data (the
// rest is thread-private). Architectures without a per-region policy
// ignore it.
func (m *Machine) SetSharedData(f func(addr uint32) bool) {
	if s, ok := m.Sys.(sharedDataSetter); ok {
		s.SetSharedData(f)
	}
}

// LoadProgram writes p into physical memory at physBias and registers
// its text for instruction fetch.
func (m *Machine) LoadProgram(p *asm.Program, physBias uint32) {
	p.Load(m.Img, physBias)
	m.Code.Register(p, physBias)
	m.addSymbols(p, physBias, true)
}

// LoadText loads and registers only p's text at physBias — for programs
// whose text is shared by several processes while each has a private
// copy of the data section (loaded with p.LoadDataAt).
func (m *Machine) LoadText(p *asm.Program, physBias uint32) {
	p.LoadText(m.Img, physBias)
	m.Code.Register(p, physBias)
	m.addSymbols(p, physBias, false)
}

// addSymbols merges p's symbol table, relocated by physBias, into the
// machine-wide table. Data symbols are skipped when the data section
// was not loaded at physBias (LoadText: each process places its data
// elsewhere, so the biased addresses would be wrong).
func (m *Machine) addSymbols(p *asm.Program, physBias uint32, withData bool) {
	for _, s := range p.Symbols() {
		if !s.Text && !withData {
			continue
		}
		m.syms = append(m.syms, prof.Symbol{
			Name:  s.Name,
			Start: physBias + s.Start,
			End:   physBias + s.End,
			Text:  s.Text,
		})
	}
	// Ordering observability metadata (prof.Symbol) at program-load
	// time, before the first tick; the data never reaches simulation.
	sort.SliceStable(m.syms, func(i, j int) bool {
		if m.syms[i].Start != m.syms[j].Start { //simlint:allow neutral — load-time symbol-table ordering
			return m.syms[i].Start < m.syms[j].Start
		}
		return m.syms[i].Name < m.syms[j].Name //simlint:allow neutral — load-time symbol-table ordering
	})
}

// AddContext creates a CPU (with the machine's model) running ctx.
func (m *Machine) AddContext(ctx *cpu.Context) Core {
	c := m.newCore(len(m.CPUs), ctx)
	if i, ok := c.(interruptible); ok {
		i.SetInterruptSource(m)
	}
	m.CPUs = append(m.CPUs, c)
	return c
}

// RunResult summarizes a completed simulation.
type RunResult struct {
	Arch      Arch
	Model     CPUModel
	Cycles    uint64
	PerCPU    []cpu.StallStats
	MemReport memsys.Report
	Metrics   *obsv.Metrics // interval time-series, when sampling was enabled
	Profile   *prof.Profile `json:",omitempty"` // cycle attribution, when profiling was enabled
}

// Instructions returns total instructions executed across all CPUs.
func (r *RunResult) Instructions() uint64 {
	var t uint64
	for _, s := range r.PerCPU {
		t += s.Instructions
	}
	return t
}

// IPC returns aggregate instructions per cycle across all CPUs.
func (r *RunResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions()) / float64(r.Cycles)
}

// RunWindow advances the machine from cycle start for at most n cycles.
// It returns the first cycle not executed, whether every CPU has halted,
// and any guest fault. CPU service order rotates each cycle so no
// processor gets a standing arbitration advantage.
func (m *Machine) RunWindow(start, n uint64) (next uint64, halted bool, err error) {
	if len(m.CPUs) == 0 {
		return start, false, fmt.Errorf("core: machine has no CPUs")
	}
	if m.parActive() {
		return m.runParallel(start, n)
	}
	cpus := len(m.CPUs)
	mets := m.Cfg.Metrics
	noSkip := m.Cfg.NoSkip
	grid := m.gridSize()
	end := start + n
	cyc := start
	// Host telemetry: executed iterations accumulate locally and flush
	// to the shared atomic counters in batches, so the per-cycle cost of
	// enabled telemetry is one branch and one register increment, and
	// the disabled path is the nil check alone. Skipped cycles flush as
	// deltas of m.skipped so the counters stay live mid-window.
	tel := m.Cfg.Telem
	var telTicked uint64
	telSkipBase := m.skipped
	if tel != nil {
		tel.Windows.Inc()
	}
	for cyc < end {
		if cyc%grid == 0 {
			m.irq.merge()
		}
		m.Events.RunUntil(cyc)
		m.inTick = true
		alive := false
		// Candidate quiescence horizon, gathered from the ticks' own
		// return hints. It can only be stale in the safe direction: a
		// tick later in the rotation may create work for an earlier CPU
		// (syscall wake, IPI), never remove any, so wake <= cyc+1
		// soundly suppresses the skip and anything later is re-verified
		// from fresh post-tick state by nextCycle.
		wake := uint64(cpu.NoWork)
		// Rotate in uint64 so multi-billion-cycle runs can't skew the
		// arbitration order through a narrowing conversion on 32-bit ints.
		off := int(cyc % uint64(cpus))
		for i := 0; i < cpus; i++ {
			c := m.CPUs[(i+off)%cpus]
			if c.Done() {
				continue
			}
			alive = true
			if w := c.Tick(cyc); w < wake {
				wake = w
			}
		}
		m.inTick = false
		if mets != nil && mets.Due(cyc) {
			mets.Record(m.probe(cyc))
		}
		if !alive {
			break
		}
		if noSkip || wake <= cyc+1 {
			cyc++
		} else {
			cyc = m.nextCycle(cyc, end, mets)
		}
		if tel != nil {
			telTicked++
			if telTicked >= 1<<20 {
				tel.CyclesTicked.Add(telTicked)
				telTicked = 0
				if sk := m.skipped; sk > telSkipBase {
					tel.CyclesSkipped.Add(sk - telSkipBase)
					telSkipBase = sk
				}
			}
		}
	}
	if tel != nil {
		tel.CyclesTicked.Add(telTicked)
		if sk := m.skipped; sk > telSkipBase {
			tel.CyclesSkipped.Add(sk - telSkipBase)
		}
	}
	for _, c := range m.CPUs {
		if f := c.Context().Fault; f != "" {
			return cyc, false, fmt.Errorf("core: cpu fault: %s", f)
		}
	}
	allHalted := true
	for _, c := range m.CPUs {
		if !c.Done() {
			allHalted = false
			break
		}
	}
	return cyc, allHalted, nil
}

// nextCycle is the slow path of the quiescence skip, entered only when
// the tick pass's candidate horizon says every running CPU is inert
// past cyc+1. It re-verifies that from fresh post-tick state (a tick
// can wake another CPU mid-pass) and returns the cycle the loop should
// execute next: cyc+1 normally, or — when every running CPU, the event
// calendar, and the sampler are provably inert past cyc+1 — the
// earliest cycle at which any of them next has work, clamped to end.
// The skip is recomputed after every executed cycle, so an event that
// schedules another event (or wakes a CPU) always re-bounds the next
// jump; nothing scheduled from inside the skipped window can exist,
// because nothing executes in it. Rotation offsets stay correct for
// free: off derives from the actual cycle number, and all skipped
// cycles are cycles in which no CPU would have ticked at all.
func (m *Machine) nextCycle(cyc, end uint64, mets *obsv.Metrics) uint64 {
	step := cyc + 1
	if step >= end {
		return step
	}
	target := uint64(cpu.NoWork)
	running := false
	for i, c := range m.CPUs {
		if c.Done() {
			continue
		}
		running = true
		// A pending interrupt means the kernel wants this CPU's
		// attention; deliver on the per-cycle path.
		if i < len(m.irq.live) && m.irq.live[i] {
			return step
		}
		w := c.NextWork(cyc)
		if w <= step {
			return step
		}
		if w < target {
			target = w
		}
	}
	if !running {
		// Every CPU halted during the cycle just executed; let the loop
		// run the next cycle per-cycle so its !alive break (and any
		// final events or sample) happen exactly as without skipping.
		return step
	}
	if ev, ok := m.Events.NextCycle(); ok {
		if ev <= step {
			return step
		}
		if ev < target {
			target = ev
		}
	}
	if m.irq.npend > 0 {
		// Buffered tick-phase raises deliver at the next grid boundary;
		// the skip must not jump over the merge.
		if b := gridNext(cyc, m.gridSize()); b < target {
			target = b
		}
	}
	if mets != nil {
		// The sampler's next due cycle bounds the quiescence skip so
		// interval samples land on schedule. This is the tree's one
		// sanctioned obs→sim dataflow: it changes only how the loop
		// advances time, never what any cycle computes, and the
		// output-identity tests pin byte-equal results with and without
		// sampling attached.
		//simlint:allow neutral — skip bound only; output byte-identical (see output-identity tests)
		due := mets.NextDue()
		if due <= step {
			return step
		}
		if due < target {
			target = due
		}
	}
	if target > end {
		target = end
	}
	if target <= step {
		return step
	}
	for _, c := range m.CPUs {
		if c.Done() {
			continue
		}
		if s, ok := c.(cycleSkipper); ok {
			s.SkipCycles(step, target)
		}
	}
	m.skipped += target - step
	return target
}

// SkippedCycles returns how many cycles the quiescence-skipping
// scheduler jumped over instead of ticking, across all RunWindow calls.
func (m *Machine) SkippedCycles() uint64 { return m.skipped }

// Run executes the cycle loop until every CPU halts, any context
// faults, or maxCycles elapses.
func (m *Machine) Run(maxCycles uint64) (*RunResult, error) {
	cyc, halted, err := m.RunWindow(0, maxCycles)
	if err != nil {
		return nil, err
	}
	if !halted {
		return nil, fmt.Errorf("core: simulation exceeded %d cycles", maxCycles)
	}
	return m.Result(cyc), nil
}

// Result assembles the run statistics at the given completion cycle.
// When sampling is enabled, the sampler's final partial interval is
// flushed at the run's last cycle so short runs still report samples and
// the interval totals reconcile with the aggregate report.
func (m *Machine) Result(cycles uint64) *RunResult {
	res := &RunResult{
		Arch:      m.Arch,
		Model:     m.Model,
		Cycles:    cycles,
		MemReport: m.Sys.Report(),
	}
	for _, c := range m.CPUs {
		res.PerCPU = append(res.PerCPU, c.Stats())
	}
	if mets := m.Cfg.Metrics; mets != nil {
		mets.Flush(m.probe(cycles))
		res.Metrics = mets
	}
	if pf := m.Cfg.Prof; pf != nil {
		res.Profile = pf.Snapshot(string(m.Arch), string(m.Model), m.syms)
	}
	if chk := m.Cfg.Check; chk != nil {
		// MSHR leak check, after the metrics flush so the probe above saw
		// the true outstanding count: entries may legitimately complete
		// after the last CPU halts, so probe far past the end — anything
		// still in flight at final+DrainSlack was leaked, not late.
		if mp, ok := m.Sys.(mshrProber); ok {
			chk.CheckDrain(cycles, mp.MSHROutstanding(cycles+check.DrainSlack))
		}
	}
	return res
}

// mshrProber is implemented by memory systems that can report their
// instantaneous outstanding-miss count (all three compositions do).
type mshrProber interface {
	MSHROutstanding(now uint64) int
}

// probe snapshots the machine's cumulative counters for the interval
// sampler.
func (m *Machine) probe(cycle uint64) obsv.Probe {
	rep := m.Sys.Report()
	p := obsv.Probe{
		Cycle:   cycle,
		L1DAcc:  rep.L1D.Accesses(),
		L1DMiss: rep.L1D.Misses(),
		L2Acc:   rep.L2.Accesses(),
		L2Miss:  rep.L2.Misses(),
	}
	for _, c := range m.CPUs {
		p.PerCPUInsts = append(p.PerCPUInsts, c.Stats().Instructions)
	}
	for _, r := range rep.Resources {
		p.Resources = append(p.Resources, obsv.ResProbe{
			Name:     r.Name,
			Acquires: r.Acquires,
			Wait:     r.WaitCycles,
			Busy:     r.BusyCycles,
		})
	}
	if mp, ok := m.Sys.(mshrProber); ok {
		p.MSHRInFlight = mp.MSHROutstanding(cycle)
	}
	return p
}
