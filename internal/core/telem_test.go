package core

// Host-telemetry tests for the cycle loop: the ticked+skipped
// reconciliation invariant and the zero-alloc contract of the
// instrumented loop, disabled and enabled.

import (
	"testing"

	"cmpsim/internal/cpu"
	"cmpsim/internal/telemetry"
)

// quietCore is a stub core whose Tick never allocates (unlike
// stubCore, which appends to a shared log), so it can sit under
// testing.AllocsPerRun: runnable every cycle once past blockedUntil,
// halting when ticked at or after haltAt.
type quietCore struct {
	blockedUntil uint64
	haltAt       uint64 // halt when ticked at or after this cycle (0 = never)
	halted       bool
	ctx          cpu.Context
}

func (s *quietCore) Tick(now uint64) uint64 {
	if !s.halted && now >= s.blockedUntil {
		if s.haltAt != 0 && now >= s.haltAt {
			s.halted = true
			s.ctx.Halted = true
		}
	}
	return s.NextWork(now)
}

func (s *quietCore) Done() bool            { return s.halted }
func (s *quietCore) Stats() cpu.StallStats { return cpu.StallStats{} }
func (s *quietCore) Context() *cpu.Context { return &s.ctx }
func (s *quietCore) FlushFetchBuffer()     {}
func (s *quietCore) NextWork(now uint64) uint64 {
	if s.halted {
		return cpu.NoWork
	}
	if s.blockedUntil > now {
		return s.blockedUntil
	}
	return now
}

// TestRunWindowTelemetryReconciles pins the reconciliation invariant
// the run report and the /metrics smoke test rely on: for a window
// starting at cycle 0, executed iterations + skipped cycles == the
// final cycle count, with the skipped total matching the scheduler's
// own ledger.
func TestRunWindowTelemetryReconciles(t *testing.T) {
	tel := &telemetry.SimMetrics{}
	a := &quietCore{blockedUntil: 1000, haltAt: 1010}
	b := &quietCore{haltAt: 5}
	m := &Machine{}
	m.CPUs = append(m.CPUs, a, b)
	m.Cfg.Telem = tel

	next, halted, err := m.RunWindow(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatalf("machine did not halt (next=%d)", next)
	}
	ticked, skipped := tel.CyclesTicked.Value(), tel.CyclesSkipped.Value()
	if ticked+skipped != next {
		t.Errorf("ticked %d + skipped %d = %d, want final cycle %d",
			ticked, skipped, ticked+skipped, next)
	}
	if skipped != m.SkippedCycles() {
		t.Errorf("telemetry skipped %d != scheduler ledger %d", skipped, m.SkippedCycles())
	}
	if skipped == 0 {
		t.Error("expected a quiescence skip across the blocked window")
	}
	if got := tel.Windows.Value(); got != 1 {
		t.Errorf("Windows = %d, want 1", got)
	}
	if got := tel.Cycles(); got != next {
		t.Errorf("Cycles() = %d, want %d", got, next)
	}
}

// TestRunWindowTelemetryAllocs pins the cycle loop's allocation
// contract with telemetry disabled (nil pointer: the historical
// behavior) and enabled (batched atomic flushes): zero allocations per
// window either way.
func TestRunWindowTelemetryAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		tel  *telemetry.SimMetrics
	}{
		{"disabled", nil},
		{"enabled", &telemetry.SimMetrics{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := &Machine{}
			m.CPUs = append(m.CPUs, &quietCore{})
			m.Cfg.Telem = tc.tel
			var start uint64
			allocs := testing.AllocsPerRun(10, func() {
				next, _, err := m.RunWindow(start, 1000)
				if err != nil {
					t.Fatal(err)
				}
				start = next
			})
			if allocs != 0 {
				t.Errorf("RunWindow with telemetry %s: %v allocs/window, want 0", tc.name, allocs)
			}
		})
	}
}
