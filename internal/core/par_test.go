package core

// Scheduler-level tests for the parallel tick path, using stub cores so
// the barrier and gate mechanics are fully controlled: shared-state
// access order under the rotation gate, event chains across window
// barriers, sampler boundaries, tick-phase IRQ buffering, and halt
// cycles in mid-window. The end-to-end output-identity proof lives in
// the root package's par_test.go.

import (
	"reflect"
	"testing"

	"cmpsim/internal/cpu"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
)

// gatedStub is a stub Core that touches "shared state" every runnable
// tick: it takes its tick gate (as a real CPU model does through the
// wrapped memory system) and appends to a log shared by all cores. The
// log order therefore observes exactly the rotation order the gate
// grants. A gate-ordering bug scrambles the log; a missing
// happens-before edge trips the race detector on the append.
type gatedStub struct {
	id           int
	blockedUntil uint64
	haltAt       uint64 // halt when ticked at or after this cycle (0 = never)
	raiseAt      uint64 // RaiseIRQ(raiseTo) when ticked at this cycle (0 = never)
	raiseTo      int
	halted       bool
	gate         cpu.TickGate
	m            *Machine
	log          *[]stubTick
	irqSeen      *[]uint64 // cycles at which this core saw its live line up
	ctx          cpu.Context
}

func (s *gatedStub) Tick(now uint64) uint64 {
	if s.halted || now < s.blockedUntil {
		return s.NextWork(now)
	}
	if s.gate != nil {
		s.gate.Sync()
	}
	*s.log = append(*s.log, stubTick{now, s.id})
	if s.irqSeen != nil && s.m.PendingInterrupt(s.id) {
		*s.irqSeen = append(*s.irqSeen, now)
		s.m.AckInterrupt(s.id)
	}
	if s.raiseAt != 0 && now == s.raiseAt {
		s.m.RaiseIRQ(s.raiseTo)
	}
	if s.haltAt != 0 && now >= s.haltAt {
		s.halted = true
		s.ctx.Halted = true
	}
	return s.NextWork(now)
}

func (s *gatedStub) Done() bool            { return s.halted }
func (s *gatedStub) Stats() cpu.StallStats { return cpu.StallStats{} }
func (s *gatedStub) Context() *cpu.Context { return &s.ctx }
func (s *gatedStub) FlushFetchBuffer()     {}
func (s *gatedStub) NextWork(now uint64) uint64 {
	if s.halted {
		return cpu.NoWork
	}
	if s.blockedUntil > now {
		return s.blockedUntil
	}
	return now
}

// stubParMachine assembles a Machine over gated stubs with the given
// shard-worker count (1 = serial) and SimWindow grid.
func stubParMachine(simJobs int, grid uint64, cores ...*gatedStub) *Machine {
	m := &Machine{}
	m.Cfg.NumCPUs = len(cores)
	m.Cfg.SimJobs = simJobs
	m.Cfg.SimWindow = grid
	m.irq = irqLines{live: make([]bool, len(cores)), pending: make([]bool, len(cores))}
	if simJobs > 1 && len(cores) > 1 {
		par, err := newParSched(m, simJobs)
		if err != nil {
			panic(err)
		}
		m.par = par
	}
	for i, c := range cores {
		c.m = m
		if m.par != nil {
			c.gate = m.par.gate(i)
		}
		m.CPUs = append(m.CPUs, c)
	}
	return m
}

// parCase runs the same stub scenario serially and at several worker
// counts and requires identical tick logs, stop cycles, halt flags and
// IRQ observations.
type parCase struct {
	mk    func() []*gatedStub // fresh cores sharing fresh logs
	grid  uint64
	start uint64
	n     uint64
	adapt bool // enable adaptive windows + coordinator fast-forward
}

func (tc parCase) run(t *testing.T, simJobs int) (log []stubTick, irqSeen []uint64, next uint64, halted bool) {
	t.Helper()
	cores := tc.mk()
	m := stubParMachine(simJobs, tc.grid, cores...)
	m.Cfg.AdaptWindow = tc.adapt
	shared := &log
	seen := &irqSeen
	for _, c := range cores {
		c.log = shared
		if c.irqSeen != nil {
			c.irqSeen = seen
		}
	}
	next, halted, err := m.RunWindow(tc.start, tc.n)
	if err != nil {
		t.Fatalf("sim-jobs=%d: %v", simJobs, err)
	}
	return log, irqSeen, next, halted
}

func (tc parCase) check(t *testing.T) {
	t.Helper()
	refLog, refSeen, refNext, refHalted := tc.run(t, 1)
	for _, jobs := range []int{2, 4} {
		log, seen, next, halted := tc.run(t, jobs)
		if !reflect.DeepEqual(log, refLog) {
			t.Errorf("sim-jobs=%d tick order diverges:\npar:    %v\nserial: %v", jobs, trunc(log), trunc(refLog))
		}
		if !reflect.DeepEqual(seen, refSeen) {
			t.Errorf("sim-jobs=%d IRQ delivery diverges: par=%v serial=%v", jobs, seen, refSeen)
		}
		if next != refNext || halted != refHalted {
			t.Errorf("sim-jobs=%d stop state = (%d, %v), serial (%d, %v)", jobs, next, halted, refNext, refHalted)
		}
	}
}

func trunc(l []stubTick) []stubTick {
	if len(l) > 24 {
		return l[:24]
	}
	return l
}

// TestParallelSharedAccessOrder pins the tick gate's core property:
// with every core touching shared state every cycle, the global access
// log must equal the serial rotation order exactly.
func TestParallelSharedAccessOrder(t *testing.T) {
	tc := parCase{
		mk: func() []*gatedStub {
			return []*gatedStub{{id: 0}, {id: 1}, {id: 2}, {id: 3}}
		},
		grid: 32, start: 5, n: 200,
	}
	tc.check(t)
	// And against first principles, not just the serial run.
	log, _, _, _ := tc.run(t, 4)
	i := 0
	for cyc := uint64(5); cyc < 205; cyc++ {
		off := int(cyc % 4)
		for k := 0; k < 4; k++ {
			want := stubTick{cyc, (k + off) % 4}
			if log[i] != want {
				t.Fatalf("access %d = %+v, want %+v", i, log[i], want)
			}
			i++
		}
	}
}

// TestParallelStaggeredBlocking mixes runnable and long-blocked cores so
// shards advance at very different rates across barriers; the per-CPU
// local skip must leave the executed-tick record identical.
func TestParallelStaggeredBlocking(t *testing.T) {
	parCase{
		mk: func() []*gatedStub {
			return []*gatedStub{
				{id: 0},
				{id: 1, blockedUntil: 150},
				{id: 2, blockedUntil: 70},
				{id: 3, blockedUntil: 260},
			}
		},
		grid: 64, start: 0, n: 400,
	}.check(t)
}

// TestParallelEventChainAcrossBarriers: an event chain (5 → 12 → 40)
// must fire at exactly those cycles with workers running — events bound
// the window edge, so none can land inside a window.
func TestParallelEventChainAcrossBarriers(t *testing.T) {
	run := func(simJobs int) ([]uint64, []stubTick) {
		var log []stubTick
		cores := []*gatedStub{{id: 0, blockedUntil: 10000}, {id: 1}}
		m := stubParMachine(simJobs, 4096, cores...)
		for _, c := range cores {
			c.log = &log
		}
		var fired []uint64
		m.Events.Schedule(5, func(at uint64) {
			fired = append(fired, at)
			m.Events.Schedule(12, func(at2 uint64) {
				fired = append(fired, at2)
				m.Events.Schedule(40, func(at3 uint64) { fired = append(fired, at3) })
			})
		})
		if _, _, err := m.RunWindow(0, 100); err != nil {
			t.Fatal(err)
		}
		return fired, log
	}
	refFired, refLog := run(1)
	if want := []uint64{5, 12, 40}; !reflect.DeepEqual(refFired, want) {
		t.Fatalf("serial events fired at %v, want %v", refFired, want)
	}
	fired, log := run(2)
	if !reflect.DeepEqual(fired, refFired) {
		t.Errorf("parallel events fired at %v, serial %v", fired, refFired)
	}
	if !reflect.DeepEqual(log, refLog) {
		t.Errorf("tick order diverges around events:\npar:    %v\nserial: %v", trunc(log), trunc(refLog))
	}
}

// TestParallelSamplerBoundaries: sampler due-cycles bound the window
// edge, so the interval time-series has exactly the serial sample
// points.
func TestParallelSamplerBoundaries(t *testing.T) {
	run := func(simJobs int, adapt bool) []uint64 {
		var log []stubTick
		cores := []*gatedStub{{id: 0, blockedUntil: 60}, {id: 1, blockedUntil: 60}}
		m := stubParMachine(simJobs, 4096, cores...)
		m.Cfg.AdaptWindow = adapt
		for _, c := range cores {
			c.log = &log
		}
		m.Sys = memsys.NewSharedMem(memsys.DefaultConfig())
		m.Cfg.Metrics = obsv.NewMetrics(10)
		if _, _, err := m.RunWindow(0, 45); err != nil {
			t.Fatal(err)
		}
		var cycles []uint64
		for _, s := range m.Cfg.Metrics.Samples() {
			cycles = append(cycles, s.End)
		}
		return cycles
	}
	want := []uint64{10, 20, 30, 40}
	if got := run(1, false); !reflect.DeepEqual(got, want) {
		t.Fatalf("serial sample cycles = %v, want %v", got, want)
	}
	if got := run(2, false); !reflect.DeepEqual(got, want) {
		t.Errorf("parallel sample cycles = %v, want %v", got, want)
	}
	// With adaptive windows the coordinator fast-forwards over the
	// all-blocked stretch; the jump must still stop at every sampler due
	// cycle so the time-series is unchanged.
	if got := run(2, true); !reflect.DeepEqual(got, want) {
		t.Errorf("adaptive parallel sample cycles = %v, want %v", got, want)
	}
}

// TestParallelTickPhaseIRQBuffered: an IRQ raised from tick phase is
// buffered and merged onto the live line at the next SimWindow grid
// boundary — the same delivery cycle serial and parallel.
func TestParallelTickPhaseIRQBuffered(t *testing.T) {
	tc := parCase{
		mk: func() []*gatedStub {
			seen := []uint64{}
			return []*gatedStub{
				{id: 0, raiseAt: 3, raiseTo: 1},
				{id: 1, irqSeen: &seen},
			}
		},
		grid: 16, start: 0, n: 64,
	}
	// The observation cycle must be the first grid boundary after the
	// raise: cycle 16.
	_, seen, _, _ := tc.run(t, 1)
	if want := []uint64{16}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("serial IRQ observed at %v, want %v", seen, want)
	}
	tc.check(t)
}

// TestParallelCoordinatorPhaseIRQImmediate: an IRQ raised from an event
// callback is live the same cycle, serial and parallel.
func TestParallelCoordinatorPhaseIRQImmediate(t *testing.T) {
	run := func(simJobs int) []uint64 {
		var log []stubTick
		seen := []uint64{}
		cores := []*gatedStub{{id: 0}, {id: 1, irqSeen: &seen}}
		m := stubParMachine(simJobs, 16, cores...)
		for _, c := range cores {
			c.log = &log
		}
		m.Events.Schedule(21, func(uint64) { m.RaiseIRQ(1) })
		if _, _, err := m.RunWindow(0, 64); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	want := []uint64{21}
	if got := run(1); !reflect.DeepEqual(got, want) {
		t.Fatalf("serial IRQ observed at %v, want %v", got, want)
	}
	if got := run(4); !reflect.DeepEqual(got, want) {
		t.Errorf("parallel IRQ observed at %v, want %v", got, want)
	}
}

// TestParallelMidWindowHalt: cores halting at different cycles mid-
// window must stop the run at the serial break cycle, not the window
// edge.
func TestParallelMidWindowHalt(t *testing.T) {
	tc := parCase{
		mk: func() []*gatedStub {
			return []*gatedStub{
				{id: 0, haltAt: 37},
				{id: 1, haltAt: 90},
				{id: 2, haltAt: 11},
			}
		},
		grid: 4096, start: 0, n: 4000,
	}
	_, _, next, halted := tc.run(t, 1)
	if !halted || next != 91 {
		t.Fatalf("serial stop = (%d, %v), want (91, true)", next, halted)
	}
	tc.check(t)
}

// TestParallelGateIdempotent: repeated Sync calls within one tick must
// be free after the first — pinned by counting contended waits on a
// two-core lockstep machine where every tick syncs twice.
func TestParallelGateIdempotent(t *testing.T) {
	var log []stubTick
	cores := []*gatedStub{{id: 0}, {id: 1}}
	m := stubParMachine(2, 4096, cores...)
	for _, c := range cores {
		c.log = &log
	}
	// Re-sync inside the same tick through a second gate handle: must
	// not deadlock or reorder (synced flag short-circuits).
	g0 := m.par.gate(0)
	cores[0].gate = gateTwice{g0}
	if _, _, err := m.RunWindow(0, 100); err != nil {
		t.Fatal(err)
	}
	if len(log) != 200 {
		t.Fatalf("executed %d ticks, want 200", len(log))
	}
}

// gateTwice syncs twice per call to exercise idempotence.
type gateTwice struct{ g cpu.TickGate }

func (g gateTwice) Sync() { g.g.Sync(); g.g.Sync() }

// TestParallelEpochGrantSpansWindows: long-blocked cores publish safe
// horizons far past the window edge, so their waiters take whole-epoch
// grants and the horizons carry across window boundaries — the clamp at
// the window end must never let a grant outrun the serial rotation.
// Checked with and without adaptive windows (which fast-forward over
// the all-quiescent stretches the same horizons expose).
func TestParallelEpochGrantSpansWindows(t *testing.T) {
	mk := func() []*gatedStub {
		return []*gatedStub{
			{id: 0, blockedUntil: 200},
			{id: 1, blockedUntil: 210},
			{id: 2},
			{id: 3, blockedUntil: 90},
		}
	}
	for _, adapt := range []bool{false, true} {
		parCase{mk: mk, grid: 32, start: 0, n: 300, adapt: adapt}.check(t)
	}
	// The scenario must actually exercise the grant path: horizons past
	// w1 take whole-window grants at window entry.
	var log []stubTick
	cores := mk()
	m := stubParMachine(2, 32, cores...)
	for _, c := range cores {
		c.log = &log
	}
	if _, _, err := m.RunWindow(0, 300); err != nil {
		t.Fatal(err)
	}
	var grants uint64
	for _, g := range m.par.grants {
		grants += g
	}
	if grants == 0 {
		t.Error("no epoch grants taken: scenario does not cover the grant path")
	}
}

// TestParallelPeerHaltMidEpoch: a core halting while peers hold granted
// epochs must publish the not-halted sentinel so waiters stop admitting
// it — and the run must continue to the serial stop cycle, not wedge on
// the dead core's stale clock.
func TestParallelPeerHaltMidEpoch(t *testing.T) {
	for _, adapt := range []bool{false, true} {
		parCase{
			mk: func() []*gatedStub {
				return []*gatedStub{
					{id: 0, haltAt: 40},
					{id: 1, blockedUntil: 100},
					{id: 2},
				}
			},
			grid: 32, start: 0, n: 300, adapt: adapt,
		}.check(t)
	}
}

// TestParallelEventSplitsGrantedEpoch: an event due mid-stretch while
// every core's horizon clears it must still cut the window at the due
// cycle — and an IRQ it raises must reach the blocked target at the
// exact serial cycle (its first runnable tick). This pins both the
// event bound on epoch grants and the event bound on the adaptive
// fast-forward jump.
func TestParallelEventSplitsGrantedEpoch(t *testing.T) {
	run := func(simJobs int, adapt bool) ([]uint64, []uint64, []stubTick) {
		var log []stubTick
		seen := []uint64{}
		cores := []*gatedStub{
			{id: 0, blockedUntil: 10000},
			{id: 1, blockedUntil: 130, irqSeen: &seen},
		}
		m := stubParMachine(simJobs, 4096, cores...)
		m.Cfg.AdaptWindow = adapt
		for _, c := range cores {
			c.log = &log
		}
		var fired []uint64
		m.Events.Schedule(37, func(at uint64) {
			fired = append(fired, at)
			m.RaiseIRQ(1)
			m.Events.Schedule(41, func(at2 uint64) { fired = append(fired, at2) })
		})
		if _, _, err := m.RunWindow(0, 300); err != nil {
			t.Fatal(err)
		}
		return fired, seen, log
	}
	refFired, refSeen, refLog := run(1, false)
	if want := []uint64{37, 41}; !reflect.DeepEqual(refFired, want) {
		t.Fatalf("serial events fired at %v, want %v", refFired, want)
	}
	if want := []uint64{130}; !reflect.DeepEqual(refSeen, want) {
		t.Fatalf("serial IRQ observed at %v, want %v", refSeen, want)
	}
	for _, jobs := range []int{2, 4} {
		for _, adapt := range []bool{false, true} {
			fired, seen, log := run(jobs, adapt)
			if !reflect.DeepEqual(fired, refFired) {
				t.Errorf("sim-jobs=%d adapt=%v events fired at %v, serial %v", jobs, adapt, fired, refFired)
			}
			if !reflect.DeepEqual(seen, refSeen) {
				t.Errorf("sim-jobs=%d adapt=%v IRQ observed at %v, serial %v", jobs, adapt, seen, refSeen)
			}
			if !reflect.DeepEqual(log, refLog) {
				t.Errorf("sim-jobs=%d adapt=%v tick order diverges:\npar:    %v\nserial: %v", jobs, adapt, trunc(log), trunc(refLog))
			}
		}
	}
}

// TestParallelBufferedIRQInGrantedEpoch: a tick-phase IRQ raised while
// its target is blocked deep into a granted epoch is buffered, merged
// onto the live line at the next grid boundary, and observed at the
// target's first runnable tick — identically serial and parallel, with
// and without adaptive windows.
func TestParallelBufferedIRQInGrantedEpoch(t *testing.T) {
	mk := func() []*gatedStub {
		seen := []uint64{}
		return []*gatedStub{
			{id: 0, raiseAt: 3, raiseTo: 1},
			{id: 1, blockedUntil: 40, irqSeen: &seen},
		}
	}
	tc := parCase{mk: mk, grid: 16, start: 0, n: 96}
	// Merge lands at grid boundary 16 inside core 1's granted stretch;
	// the first runnable tick — and so the observation — is cycle 40.
	_, seen, _, _ := tc.run(t, 1)
	if want := []uint64{40}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("serial IRQ observed at %v, want %v", seen, want)
	}
	for _, adapt := range []bool{false, true} {
		tc.adapt = adapt
		tc.check(t)
	}
}
