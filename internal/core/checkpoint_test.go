package core_test

import (
	"bytes"
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// configure builds a machine with the given workload configured on it.
func configure(t *testing.T, w workload.Workload, arch core.Arch) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(arch, core.ModelMipsy, memsys.DefaultConfig(), w.MemBytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Configure(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckpointMidRunTransfersAcrossArchitectures reproduces the
// paper's methodology: position the workload partway on one machine,
// checkpoint, then resume the same functional state on each of the three
// architectures. Every resumed run must complete and pass the workload's
// bit-exact validation.
func TestCheckpointMidRunTransfersAcrossArchitectures(t *testing.T) {
	mk := func() workload.Workload {
		return workload.NewEqntott(workload.EqntottParams{Words: 64, Iters: 40})
	}
	// Position: run ~30% of the way on the baseline machine.
	posW := mk()
	pos := configure(t, posW, core.SharedMem)
	next, halted, err := pos.RunWindow(0, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Fatalf("positioning run finished too early (%d cycles); enlarge the workload", next)
	}
	ck := pos.Checkpoint()

	// Round-trip through the serialized form.
	var buf bytes.Buffer
	if err := core.WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	ck2, err := core.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, arch := range core.Arches() {
		w := mk()
		m := configure(t, w, arch)
		if err := m.Restore(ck2); err != nil {
			t.Fatal(err)
		}
		if _, halted, err := m.RunWindow(0, 50_000_000); err != nil {
			t.Fatalf("%s: %v", arch, err)
		} else if !halted {
			t.Fatalf("%s: resumed run did not finish", arch)
		}
		if err := w.Validate(m); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
}

// TestCheckpointIdempotentResume: restoring a checkpoint onto the same
// architecture and finishing must give the exact result of the
// uninterrupted run.
func TestCheckpointIdempotentResume(t *testing.T) {
	mk := func() workload.Workload {
		return workload.NewEar(workload.EarParams{Channels: 16, Samples: 60})
	}
	// Uninterrupted reference run.
	wRef := mk()
	mRef := configure(t, wRef, core.SharedL2)
	if _, err := mRef.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := wRef.Validate(mRef); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop, checkpoint, restore into a fresh machine,
	// finish.
	wA := mk()
	mA := configure(t, wA, core.SharedL2)
	if _, halted, err := mA.RunWindow(0, 20000); err != nil || halted {
		t.Fatalf("positioning: halted=%v err=%v", halted, err)
	}
	ck := mA.Checkpoint()
	wB := mk()
	mB := configure(t, wB, core.SharedL2)
	if err := mB.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if _, halted, err := mB.RunWindow(0, 50_000_000); err != nil || !halted {
		t.Fatalf("resume: halted=%v err=%v", halted, err)
	}
	if err := wB.Validate(mB); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsMismatchedShape(t *testing.T) {
	w := workload.NewEar(workload.EarParams{Channels: 16, Samples: 10})
	m := configure(t, w, core.SharedMem)
	ck := m.Checkpoint()

	// Wrong CPU count.
	cfg := memsys.DefaultConfig()
	cfg.NumCPUs = 2
	m2, err := core.NewMachine(core.SharedMem, core.ModelMipsy, cfg, w.MemBytes())
	if err != nil {
		t.Fatal(err)
	}
	w2 := workload.NewEar(workload.EarParams{Channels: 16, Samples: 10})
	if err := w2.Configure(m2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(ck); err == nil {
		t.Error("restore with a different CPU count must fail")
	}

	// Wrong memory size.
	m3, err := core.NewMachine(core.SharedMem, core.ModelMipsy, memsys.DefaultConfig(), w.MemBytes()/2)
	if err != nil {
		t.Fatal(err)
	}
	ck3 := &core.Checkpoint{Mem: make([]byte, 16), Contexts: ck.Contexts}
	if err := m3.Restore(ck3); err == nil {
		t.Error("restore with a different memory size must fail")
	}
}
