package guestlib

import (
	"testing"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// runOn assembles b and runs it on nCPU CPUs of the given architecture;
// every CPU starts at "start" with its id in A0.
func runOn(t *testing.T, b *asm.Builder, nCPU int, arch core.Arch) (*core.Machine, *asm.Program) {
	t.Helper()
	p, err := b.Assemble(0, 0x40000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(arch, core.ModelMipsy, memsys.DefaultConfig(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p, 0)
	for i := 0; i < nCPU; i++ {
		ctx := &cpu.Context{Space: mem.Identity{Limit: m.Img.Size()}, TID: i, PC: p.Addr("start")}
		ctx.Regs[isa.RegSP] = 0x200000 + uint32(i)*0x10000
		ctx.Regs[asm.A0] = uint32(i)
		m.AddContext(ctx)
	}
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return m, p
}

func forEachArch(t *testing.T, f func(t *testing.T, arch core.Arch)) {
	for _, a := range core.Arches() {
		a := a
		t.Run(string(a), func(t *testing.T) { f(t, a) })
	}
}

func TestLockMutualExclusion(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch core.Arch) {
		const perCPU = 200
		b := asm.NewBuilder()
		b.Label("start")
		b.MOVE(asm.R20, asm.A0) // tid
		b.LI(asm.R21, perCPU)
		b.Label("loop")
		b.LA(asm.A0, "lock")
		b.JAL(LLockAcquire)
		// Non-atomic read-modify-write inside the critical section: only
		// mutual exclusion makes the final count exact.
		b.LA(asm.R8, "counter")
		b.LW(asm.R9, 0, asm.R8)
		b.ADDI(asm.R9, asm.R9, 1)
		b.SW(asm.R9, 0, asm.R8)
		b.LA(asm.A0, "lock")
		b.JAL(LLockRelease)
		b.ADDI(asm.R21, asm.R21, -1)
		b.BNEZ(asm.R21, "loop")
		b.HALT()
		EmitRuntime(b)
		b.AlignData(4)
		b.DataLabel("lock")
		b.Word32(0)
		b.DataLabel("counter")
		b.Word32(0)

		m, p := runOn(t, b, 4, arch)
		if got := m.Img.Read32(p.Addr("counter")); got != 4*perCPU {
			t.Errorf("counter = %d, want %d", got, 4*perCPU)
		}
	})
}

func TestBarrierPhases(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch core.Arch) {
		const phases = 20
		b := asm.NewBuilder()
		b.Label("start")
		b.MOVE(asm.R20, asm.A0) // tid
		b.LI(asm.R21, phases)   // remaining phases
		b.LI(asm.R22, 0)        // phase counter
		b.Label("phase")
		// slot[tid]++
		b.LA(asm.R8, "slots")
		b.SLLI(asm.R9, asm.R20, 2)
		b.ADD(asm.R8, asm.R8, asm.R9)
		b.LW(asm.R10, 0, asm.R8)
		b.ADDI(asm.R10, asm.R10, 1)
		b.SW(asm.R10, 0, asm.R8)
		// barrier
		b.LA(asm.A0, "bar")
		b.MOVE(asm.A1, asm.R20)
		b.JAL(LBarrierWait)
		// After the barrier every slot must equal phase+1; accumulate an
		// error flag if not.
		b.ADDI(asm.R22, asm.R22, 1)
		b.LA(asm.R8, "slots")
		b.LI(asm.R11, 4) // cpu count
		b.Label("check")
		b.LW(asm.R10, 0, asm.R8)
		b.BEQ(asm.R10, asm.R22, "ok")
		b.LA(asm.R12, "errors")
		b.LW(asm.R13, 0, asm.R12)
		b.ADDI(asm.R13, asm.R13, 1)
		b.SW(asm.R13, 0, asm.R12)
		b.Label("ok")
		b.ADDI(asm.R8, asm.R8, 4)
		b.ADDI(asm.R11, asm.R11, -1)
		b.BNEZ(asm.R11, "check")
		// Second barrier so nobody races ahead into the next phase while
		// others are still checking.
		b.LA(asm.A0, "bar")
		b.MOVE(asm.A1, asm.R20)
		b.JAL(LBarrierWait)
		b.ADDI(asm.R21, asm.R21, -1)
		b.BNEZ(asm.R21, "phase")
		b.HALT()
		EmitRuntime(b)
		b.AlignData(4)
		b.DataLabel("slots")
		b.Zero(16)
		b.DataLabel("errors")
		b.Word32(0)
		EmitBarrierData(b, "bar", 4)

		m, p := runOn(t, b, 4, arch)
		if got := m.Img.Read32(p.Addr("errors")); got != 0 {
			t.Errorf("barrier synchronization errors: %d", got)
		}
		for i := 0; i < 4; i++ {
			if got := m.Img.Read32(p.Addr("slots") + uint32(4*i)); got != phases {
				t.Errorf("slot[%d] = %d, want %d", i, got, phases)
			}
		}
	})
}

func TestTaskQueueHandsOutEachTaskOnce(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch core.Arch) {
		const nTasks = 97
		b := asm.NewBuilder()
		b.Label("start")
		b.MOVE(asm.R20, asm.A0)
		b.Label("next")
		b.LA(asm.A0, "queue")
		b.JAL(LTaskNext)
		b.LI(asm.R8, -1)
		b.BEQ(asm.RV, asm.R8, "done")
		// done[task]++ — single writer per task if handout is exact.
		b.LA(asm.R9, "marks")
		b.SLLI(asm.R10, asm.RV, 2)
		b.ADD(asm.R9, asm.R9, asm.R10)
		b.LW(asm.R11, 0, asm.R9)
		b.ADDI(asm.R11, asm.R11, 1)
		b.SW(asm.R11, 0, asm.R9)
		b.J("next")
		b.Label("done")
		b.HALT()
		EmitRuntime(b)
		EmitTaskQueueData(b, "queue", nTasks)
		b.AlignData(4)
		b.DataLabel("marks")
		b.Zero(4 * nTasks)

		m, p := runOn(t, b, 4, arch)
		for i := 0; i < nTasks; i++ {
			if got := m.Img.Read32(p.Addr("marks") + uint32(4*i)); got != 1 {
				t.Errorf("task %d executed %d times", i, got)
			}
		}
	})
}

func TestMemcpyWords(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.A0, "dst")
	b.LA(asm.A1, "src")
	b.LI(asm.A2, 8)
	b.JAL(LMemcpyWords)
	b.HALT()
	EmitRuntime(b)
	b.AlignData(4)
	b.DataLabel("src")
	b.Word32(1, 2, 3, 4, 5, 6, 7, 8)
	b.DataLabel("dst")
	b.Zero(32)

	m, p := runOn(t, b, 1, core.SharedMem)
	for i := uint32(0); i < 8; i++ {
		if got := m.Img.Read32(p.Addr("dst") + 4*i); got != i+1 {
			t.Errorf("dst[%d] = %d", i, got)
		}
	}
}

func TestZeroLengthMemcpy(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.LA(asm.A0, "dst")
	b.LA(asm.A1, "dst")
	b.LI(asm.A2, 0)
	b.JAL(LMemcpyWords)
	b.HALT()
	EmitRuntime(b)
	b.AlignData(4)
	b.DataLabel("dst")
	b.Word32(0xdeadbeef)
	m, p := runOn(t, b, 1, core.SharedMem)
	if got := m.Img.Read32(p.Addr("dst")); got != 0xdeadbeef {
		t.Errorf("zero-length memcpy clobbered dst: %#x", got)
	}
}

func TestBarrierBytes(t *testing.T) {
	if BarrierBytes(4) != 12+16 {
		t.Errorf("BarrierBytes(4) = %d", BarrierBytes(4))
	}
}
