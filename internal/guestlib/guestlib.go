// Package guestlib is the guest-level runtime linked into every
// workload: spin locks and sense-reversing barriers built on LL/SC, a
// lock-protected task queue with index handout (used by Volpack's
// dynamic task stealing), and small utility routines. Everything here is
// KRISC code emitted through the assembler DSL, so synchronization costs
// are real guest instructions — spin time lands in CPU time exactly as
// the paper describes (Section 4: "time spent waiting for a spin lock or
// for barrier synchronization is included in the CPU time").
//
// Register conventions: routines take arguments in A0..A3, return in RV,
// and clobber only R8..R13 (caller-saved temporaries).
package guestlib

import "cmpsim/internal/asm"

// Runtime routine labels emitted by EmitRuntime.
const (
	LLockAcquire = "gl_lock_acquire" // A0 = lock address
	LLockRelease = "gl_lock_release" // A0 = lock address
	LBarrierWait = "gl_barrier_wait" // A0 = barrier address, A1 = thread id
	LTaskNext    = "gl_task_next"    // A0 = queue address; RV = index or -1
	LMemcpyWords = "gl_memcpy_w"     // A0 = dst, A1 = src, A2 = word count
)

// Barrier data layout (words): count, global sense, total, then one
// local-sense word per participant.
const (
	barCount = 0
	barSense = 4
	barTotal = 8
	barLocal = 12
)

// BarrierBytes returns the size of a barrier structure for n threads.
func BarrierBytes(n int) uint32 { return uint32(barLocal + 4*n) }

// EmitBarrierData lays out an initialized barrier for n participants at
// the current data position under the given label.
func EmitBarrierData(b *asm.Builder, label string, n int) {
	b.AlignData(4)
	b.DataLabel(label)
	b.Word32(uint32(n)) // count
	b.Word32(0)         // global sense
	b.Word32(uint32(n)) // total
	for i := 0; i < n; i++ {
		b.Word32(0) // local sense
	}
}

// Task queue layout (words): lock, next index, limit.
const (
	tqLock  = 0
	tqNext  = 4
	tqLimit = 8
)

// TaskQueueBytes is the size of a task queue structure.
const TaskQueueBytes = 12

// EmitTaskQueueData lays out a task queue handing out [0, limit) at the
// current data position.
func EmitTaskQueueData(b *asm.Builder, label string, limit uint32) {
	b.AlignData(4)
	b.DataLabel(label)
	b.Word32(0)     // lock
	b.Word32(0)     // next
	b.Word32(limit) // limit
}

// EmitRuntime appends the runtime routines to b. Call once per program,
// anywhere in the text section that straight-line code does not fall
// into (conventionally at the end).
func EmitRuntime(b *asm.Builder) {
	emitLock(b)
	emitBarrier(b)
	emitTaskQueue(b)
	emitMemcpy(b)
}

// emitLock: test-and-test-and-set spin lock.
func emitLock(b *asm.Builder) {
	b.Label(LLockAcquire)
	b.Label("gl_la_spin")
	// Spin on a plain load first so the lock line stays shared while held.
	b.LW(asm.R8, 0, asm.A0)
	b.BNEZ(asm.R8, "gl_la_spin")
	b.LL(asm.R8, 0, asm.A0)
	b.BNEZ(asm.R8, "gl_la_spin")
	b.ADDI(asm.R9, asm.R0, 1)
	b.SC(asm.R9, 0, asm.A0)
	b.BEQZ(asm.R9, "gl_la_spin")
	b.RET()

	b.Label(LLockRelease)
	b.SW(asm.R0, 0, asm.A0)
	b.RET()
}

// emitBarrier: sense-reversing barrier; A0 = barrier, A1 = thread id.
func emitBarrier(b *asm.Builder) {
	b.Label(LBarrierWait)
	// Flip this thread's local sense.
	b.SLLI(asm.R8, asm.A1, 2)
	b.ADD(asm.R8, asm.A0, asm.R8) // &local[tid] - barLocal
	b.LW(asm.R9, barLocal, asm.R8)
	b.XORI(asm.R9, asm.R9, 1)
	b.SW(asm.R9, barLocal, asm.R8) // R9 = my sense for this episode

	// Atomically decrement the count.
	b.Label("gl_bw_dec")
	b.LL(asm.R10, barCount, asm.A0)
	b.ADDI(asm.R10, asm.R10, -1)
	b.MOVE(asm.R11, asm.R10)
	b.SC(asm.R11, barCount, asm.A0)
	b.BEQZ(asm.R11, "gl_bw_dec")

	b.BNEZ(asm.R10, "gl_bw_wait")
	// Last arriver: reset the count, then release everyone by publishing
	// the new sense.
	b.LW(asm.R12, barTotal, asm.A0)
	b.SW(asm.R12, barCount, asm.A0)
	b.SW(asm.R9, barSense, asm.A0)
	b.RET()

	// Everyone else spins until the global sense matches their local one.
	b.Label("gl_bw_wait")
	b.LW(asm.R12, barSense, asm.A0)
	b.BNE(asm.R12, asm.R9, "gl_bw_wait")
	b.RET()
}

// emitTaskQueue: RV = next task index, or -1 when the queue is drained.
func emitTaskQueue(b *asm.Builder) {
	b.Label(LTaskNext)
	// Acquire the queue lock (inlined; A0 already points at the lock).
	b.Label("gl_tq_spin")
	b.LW(asm.R8, tqLock, asm.A0)
	b.BNEZ(asm.R8, "gl_tq_spin")
	b.LL(asm.R8, tqLock, asm.A0)
	b.BNEZ(asm.R8, "gl_tq_spin")
	b.ADDI(asm.R9, asm.R0, 1)
	b.SC(asm.R9, tqLock, asm.A0)
	b.BEQZ(asm.R9, "gl_tq_spin")

	b.LW(asm.R10, tqNext, asm.A0)
	b.LW(asm.R11, tqLimit, asm.A0)
	b.BLT(asm.R10, asm.R11, "gl_tq_take")
	b.LI(asm.RV, -1)
	b.J("gl_tq_out")
	b.Label("gl_tq_take")
	b.ADDI(asm.R12, asm.R10, 1)
	b.SW(asm.R12, tqNext, asm.A0)
	b.MOVE(asm.RV, asm.R10)
	b.Label("gl_tq_out")
	b.SW(asm.R0, tqLock, asm.A0) // release
	b.RET()
}

// emitMemcpy: word copy, A0 = dst, A1 = src, A2 = count (words).
func emitMemcpy(b *asm.Builder) {
	b.Label(LMemcpyWords)
	b.BEQZ(asm.A2, "gl_mc_done")
	b.MOVE(asm.R10, asm.A2)
	b.MOVE(asm.R8, asm.A0)
	b.MOVE(asm.R9, asm.A1)
	b.Label("gl_mc_loop")
	b.LW(asm.R11, 0, asm.R9)
	b.SW(asm.R11, 0, asm.R8)
	b.ADDI(asm.R8, asm.R8, 4)
	b.ADDI(asm.R9, asm.R9, 4)
	b.ADDI(asm.R10, asm.R10, -1)
	b.BNEZ(asm.R10, "gl_mc_loop")
	b.Label("gl_mc_done")
	b.RET()
}
