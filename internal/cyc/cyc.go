// Package cyc provides guarded cycle arithmetic for the simulator's
// uint64 cycle domain. Raw uint64 subtraction silently wraps to a huge
// positive number when the operands arrive out of order (a lazily
// reaped completion timestamp older than "now", a grant issued before
// the request under a reordered calendar), which then poisons every
// downstream latency statistic. The simlint cycleflow analyzer flags
// unguarded uint64 subtractions in the timing packages; routing them
// through this package is the blessed form.
package cyc

// Sub returns a-b, saturating to 0 when b > a instead of wrapping.
// Use it for elapsed-cycle computations whose operands are not
// structurally ordered (completion - issue, counter deltas).
func Sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Lat returns the latency done-now of a completed transaction,
// saturating to 0 if the completion timestamp is not after issue.
// Semantically identical to Sub; the separate name documents intent at
// trace-emission sites.
func Lat(done, now uint64) uint64 {
	return Sub(done, now)
}
