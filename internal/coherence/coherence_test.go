package coherence

import (
	"testing"

	"cmpsim/internal/cache"
)

func newNode() Node {
	return Node{
		L1: cache.New(cache.Config{Name: "l1", SizeBytes: 256, LineBytes: 32, Assoc: 2}),
		L2: cache.New(cache.Config{Name: "l2", SizeBytes: 1024, LineBytes: 32, Assoc: 2}),
	}
}

func newSnoop(n int) (*Snoop, []Node) {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = newNode()
	}
	return NewSnoop(nodes), nodes
}

func TestSnoopReadDowngradesRemoteDirty(t *testing.T) {
	s, nodes := newSnoop(2)
	nodes[1].L2.Fill(0x100, cache.Modified)
	nodes[1].L1.Fill(0x100, cache.Modified)
	r := s.Read(0, 0, 0x100)
	if !r.RemoteDirty || !r.RemoteCopy {
		t.Fatalf("result = %+v", r)
	}
	if nodes[1].L2.Probe(0x100).State != cache.Shared {
		t.Error("remote L2 not downgraded")
	}
	if nodes[1].L1.Probe(0x100).State != cache.Shared {
		t.Error("remote L1 not downgraded")
	}
	if s.Stats().CacheToCache != 1 {
		t.Errorf("c2c = %d", s.Stats().CacheToCache)
	}
}

func TestSnoopReadCleanRemote(t *testing.T) {
	s, nodes := newSnoop(3)
	nodes[2].L2.Fill(0x100, cache.Exclusive)
	r := s.Read(0, 0, 0x100)
	if r.RemoteDirty || !r.RemoteCopy {
		t.Fatalf("result = %+v", r)
	}
	if nodes[2].L2.Probe(0x100).State != cache.Shared {
		t.Error("remote E not downgraded to S")
	}
}

func TestSnoopReadNoRemote(t *testing.T) {
	s, _ := newSnoop(4)
	r := s.Read(0, 1, 0x200)
	if r.RemoteCopy || r.RemoteDirty || r.Invalidated != 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestSnoopWriteInvalidatesAll(t *testing.T) {
	s, nodes := newSnoop(4)
	nodes[1].L2.Fill(0x100, cache.Shared)
	nodes[1].L1.Fill(0x100, cache.Shared)
	nodes[2].L2.Fill(0x100, cache.Modified)
	r := s.Write(0, 0, 0x100)
	if !r.RemoteDirty || r.Invalidated != 3 {
		t.Fatalf("result = %+v", r)
	}
	if nodes[1].L2.Probe(0x100) != nil || nodes[1].L1.Probe(0x100) != nil || nodes[2].L2.Probe(0x100) != nil {
		t.Error("remote copies survived BusRdX")
	}
	// Invalidation-miss classification: node 1's next L1 miss on the line
	// must be an invalidation miss.
	res := nodes[1].L1.Access(0x100, false)
	if res.Hit || !res.InvMiss {
		t.Errorf("expected invalidation miss, got %+v", res)
	}
}

func TestSnoopUpgrade(t *testing.T) {
	s, nodes := newSnoop(2)
	nodes[0].L1.Fill(0x100, cache.Shared)
	nodes[1].L1.Fill(0x100, cache.Shared)
	r := s.Upgrade(0, 0, 0x100)
	if r.Invalidated != 1 || r.RemoteDirty {
		t.Fatalf("result = %+v", r)
	}
	if nodes[1].L1.Probe(0x100) != nil {
		t.Error("remote S copy survived upgrade")
	}
	if nodes[0].L1.Probe(0x100) == nil {
		t.Error("upgrader's own copy was invalidated")
	}
	if s.Stats().Upgrades != 1 || s.Stats().InvalidationsSent != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func newDir(n int) (*Directory, []*cache.Cache) {
	l1s := make([]*cache.Cache, n)
	for i := range l1s {
		l1s[i] = cache.New(cache.Config{Name: "l1", SizeBytes: 256, LineBytes: 32, Assoc: 2})
	}
	return NewDirectory(l1s), l1s
}

func TestDirectoryWriteInvalidatesOtherSharers(t *testing.T) {
	d, l1s := newDir(4)
	for i := 0; i < 3; i++ {
		l1s[i].Fill(0x100, cache.Shared)
		d.AddSharer(0x100, i)
	}
	inv := d.Write(0, 0x100, 0)
	if inv != 2 {
		t.Fatalf("invalidated %d, want 2", inv)
	}
	if l1s[0].Probe(0x100) == nil {
		t.Error("writer's own copy removed")
	}
	if l1s[1].Probe(0x100) != nil || l1s[2].Probe(0x100) != nil {
		t.Error("other sharers survived")
	}
	if d.Sharers(0x100) != 1 {
		t.Errorf("sharers = %b", d.Sharers(0x100))
	}
	// Subsequent miss by a victim classifies as invalidation miss.
	res := l1s[1].Access(0x100, false)
	if res.Hit || !res.InvMiss {
		t.Errorf("expected invalidation miss, got %+v", res)
	}
}

func TestDirectoryWriteByNonSharer(t *testing.T) {
	d, l1s := newDir(2)
	l1s[1].Fill(0x100, cache.Shared)
	d.AddSharer(0x100, 1)
	inv := d.Write(0, 0x100, 0) // CPU 0 writes without holding the line
	if inv != 1 {
		t.Fatalf("invalidated %d, want 1", inv)
	}
	if d.Sharers(0x100) != 0 {
		t.Errorf("sharers = %b, want empty", d.Sharers(0x100))
	}
}

func TestDirectoryL2EvictIsNotInvalidationMiss(t *testing.T) {
	d, l1s := newDir(2)
	l1s[0].Fill(0x100, cache.Shared)
	d.AddSharer(0x100, 0)
	n := d.L2Evict(0, 0x100)
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	res := l1s[0].Access(0x100, false)
	if res.Hit || res.InvMiss {
		t.Errorf("expected replacement miss, got %+v", res)
	}
	if d.Sharers(0x100) != 0 {
		t.Error("directory entry survived eviction")
	}
	if d.Stats().InclusionEvicts != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestDirectoryDropSharer(t *testing.T) {
	d, _ := newDir(3)
	d.AddSharer(0x40, 0)
	d.AddSharer(0x40, 2)
	d.DropSharer(0x40, 0)
	if d.Sharers(0x40) != 1<<2 {
		t.Errorf("sharers = %b", d.Sharers(0x40))
	}
	d.DropSharer(0x40, 2)
	if d.Sharers(0x40) != 0 {
		t.Error("sharer mask not cleaned up")
	}
}
