// Package coherence implements the two cache-coherence mechanisms of the
// paper's architectures: a MESI bus-snooping protocol for the
// shared-memory multiprocessor (private L1 + private L2 per CPU), and a
// write-through invalidate directory for the shared-L2 multiprocessor
// (one directory entry per shared-L2 line, Section 2.3).
//
// The protocol engines manipulate cache *state* only; the memory-system
// compositions (package memsys) translate protocol outcomes (remote
// dirty supplier, invalidations sent, ...) into cycles.
package coherence

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
)

// Node is one CPU's private cache hierarchy in the snoopy system.
type Node struct {
	L1 *cache.Cache
	L2 *cache.Cache
}

// SnoopStats counts protocol events.
type SnoopStats struct {
	ReadMissesSnooped  uint64
	WriteMissesSnooped uint64
	Upgrades           uint64
	InvalidationsSent  uint64
	CacheToCache       uint64 // transactions supplied by a remote cache
}

// Snoop is a MESI bus-snooping protocol over a set of nodes. L2 is
// inclusive of L1: any coherence action on L2 is mirrored into L1.
type Snoop struct {
	nodes []Node
	stats SnoopStats
	trace obsv.Tracer
	prof  *prof.Profiler
}

// NewSnoop builds a snooping domain over the given nodes.
func NewSnoop(nodes []Node) *Snoop {
	return &Snoop{nodes: nodes}
}

// Stats returns a copy of the protocol counters.
func (s *Snoop) Stats() SnoopStats { return s.stats }

// SetTracer attaches a tracer; protocol transactions then emit
// invalidation, upgrade and cache-to-cache events.
func (s *Snoop) SetTracer(tr obsv.Tracer) { s.trace = tr }

// SetProfiler attaches a line-sharing profiler; invalidations and
// cache-to-cache transfers are then recorded per line with the
// writer→reader CPU pair that caused them.
func (s *Snoop) SetProfiler(p *prof.Profiler) { s.prof = p }

// SnoopResult reports what a bus transaction found in remote caches.
type SnoopResult struct {
	RemoteDirty bool // a remote cache held the line Modified (it supplies the data)
	RemoteCopy  bool // at least one remote cache held the line in any state
	Invalidated int  // remote lines invalidated by this transaction

	dirtyNode int // node that held the line Modified, -1 if none (profiling)
}

// Read handles a BusRd issued by cpu at cycle now after missing in its
// own hierarchy. Remote Modified/Exclusive copies are downgraded to
// Shared. The caller fills the requester in Shared if RemoteCopy, else
// Exclusive.
func (s *Snoop) Read(now uint64, cpu int, addr uint32) SnoopResult {
	s.stats.ReadMissesSnooped++
	r := SnoopResult{dirtyNode: -1}
	supplier := -1 // dirty owner if any, else the first node with a copy
	for i := range s.nodes {
		if i == cpu {
			continue
		}
		n := s.nodes[i]
		if ln := n.L2.Probe(addr); ln != nil {
			r.RemoteCopy = true
			if supplier < 0 {
				supplier = i
			}
			if _, wasDirty := n.L2.Downgrade(addr); wasDirty {
				r.RemoteDirty = true
				r.dirtyNode = i
				supplier = i
			}
		}
		if ln := n.L1.Probe(addr); ln != nil {
			r.RemoteCopy = true
			if supplier < 0 {
				supplier = i
			}
			if _, wasDirty := n.L1.Downgrade(addr); wasDirty {
				r.RemoteDirty = true
				r.dirtyNode = i
				supplier = i
			}
		}
	}
	if r.RemoteDirty || r.RemoteCopy {
		s.stats.CacheToCache++
		if s.trace != nil {
			s.trace.Emit(obsv.Event{Cycle: now, Addr: addr, Kind: obsv.EvC2C, CPU: int8(cpu)})
		}
		if s.prof != nil && supplier >= 0 {
			s.prof.LineC2C(supplier, cpu, addr)
		}
	}
	return r
}

// Write handles a BusRdX issued by cpu (write miss) — remote copies are
// invalidated; a remote Modified copy supplies the data cache-to-cache.
func (s *Snoop) Write(now uint64, cpu int, addr uint32) SnoopResult {
	s.stats.WriteMissesSnooped++
	r := s.invalidateRemote(now, cpu, addr)
	if r.RemoteDirty {
		s.stats.CacheToCache++
		if s.trace != nil {
			s.trace.Emit(obsv.Event{Cycle: now, Addr: addr, Kind: obsv.EvC2C, CPU: int8(cpu)})
		}
		if s.prof != nil && r.dirtyNode >= 0 {
			s.prof.LineC2C(r.dirtyNode, cpu, addr)
		}
	}
	return r
}

// Upgrade handles a BusUpgr issued by cpu, which holds the line Shared
// and wants to write it. Remote Shared copies are invalidated; no data
// transfer is needed.
func (s *Snoop) Upgrade(now uint64, cpu int, addr uint32) SnoopResult {
	s.stats.Upgrades++
	r := s.invalidateRemote(now, cpu, addr)
	if s.trace != nil {
		s.trace.Emit(obsv.Event{Cycle: now, Addr: addr, Arg: uint32(r.Invalidated), Kind: obsv.EvUpgrade, CPU: int8(cpu)})
	}
	return r
}

func (s *Snoop) invalidateRemote(now uint64, cpu int, addr uint32) SnoopResult {
	r := SnoopResult{dirtyNode: -1}
	for i := range s.nodes {
		if i == cpu {
			continue
		}
		n := s.nodes[i]
		nodeHit := false
		if present, dirty := n.L2.Invalidate(addr); present {
			r.RemoteCopy = true
			r.Invalidated++
			nodeHit = true
			if dirty {
				r.RemoteDirty = true
				r.dirtyNode = i
			}
		}
		if present, dirty := n.L1.Invalidate(addr); present {
			r.RemoteCopy = true
			r.Invalidated++
			nodeHit = true
			if dirty {
				r.RemoteDirty = true
				r.dirtyNode = i
			}
		}
		if nodeHit && s.prof != nil {
			s.prof.LineInval(cpu, i, addr)
		}
	}
	s.stats.InvalidationsSent += uint64(r.Invalidated)
	if r.Invalidated > 0 && s.trace != nil {
		s.trace.Emit(obsv.Event{Cycle: now, Addr: addr, Arg: uint32(r.Invalidated), Kind: obsv.EvInval, CPU: int8(cpu)})
	}
	return r
}

// --- Write-through invalidate directory (shared-L2 architecture) ---

// DirStats counts directory events.
type DirStats struct {
	Invalidations   uint64 // L1 lines invalidated by remote writes
	InclusionEvicts uint64 // L1 lines removed because L2 evicted the line
}

// Directory tracks, for each shared-L2 line, which CPUs' write-through
// L1 caches hold a copy. On a write by one CPU all other sharers are
// invalidated (Section 2.3: "When there is a change to a cache line
// caused by a write or a replacement all processors caching the line
// must receive invalidates").
type Directory struct {
	l1s     []*cache.Cache
	sharers map[uint32]uint16 // line address -> CPU bitmask
	stats   DirStats
	trace   obsv.Tracer
	prof    *prof.Profiler
}

// NewDirectory builds a directory over the write-through L1 caches.
func NewDirectory(l1s []*cache.Cache) *Directory {
	return &Directory{l1s: l1s, sharers: make(map[uint32]uint16)}
}

// Stats returns a copy of the directory counters.
func (d *Directory) Stats() DirStats { return d.stats }

// SetTracer attaches a tracer; invalidations and inclusion evictions
// then emit events.
func (d *Directory) SetTracer(tr obsv.Tracer) { d.trace = tr }

// SetProfiler attaches a line-sharing profiler; write-through
// invalidations are then recorded per line with the writer→reader CPU
// pair. Inclusion evictions are not recorded — they are a capacity
// effect, not sharing.
func (d *Directory) SetProfiler(p *prof.Profiler) { d.prof = p }

// Sharers returns the current sharer bitmask of a line.
func (d *Directory) Sharers(lineAddr uint32) uint16 { return d.sharers[lineAddr] }

// AddSharer records that cpu's L1 now holds lineAddr.
func (d *Directory) AddSharer(lineAddr uint32, cpu int) {
	d.sharers[lineAddr] |= 1 << uint(cpu)
}

// DropSharer records that cpu's L1 no longer holds lineAddr (the L1
// replaced it on its own).
func (d *Directory) DropSharer(lineAddr uint32, cpu int) {
	if m, ok := d.sharers[lineAddr]; ok {
		m &^= 1 << uint(cpu)
		if m == 0 {
			delete(d.sharers, lineAddr)
		} else {
			d.sharers[lineAddr] = m
		}
	}
}

// Write handles a write-through by cpu to lineAddr: every other sharer's
// L1 copy is invalidated (counted as a coherence invalidation, so later
// misses on the line classify as invalidation misses). Returns the
// number of L1 invalidations performed.
func (d *Directory) Write(now uint64, lineAddr uint32, cpu int) int {
	m := d.sharers[lineAddr]
	inv := 0
	for i := range d.l1s {
		if i == cpu || m&(1<<uint(i)) == 0 {
			continue
		}
		if present, _ := d.l1s[i].Invalidate(lineAddr); present {
			inv++
			if d.prof != nil {
				d.prof.LineInval(cpu, i, lineAddr)
			}
		}
	}
	// Only the writer (if it held the line) remains a sharer.
	if m&(1<<uint(cpu)) != 0 {
		d.sharers[lineAddr] = 1 << uint(cpu)
	} else {
		delete(d.sharers, lineAddr)
	}
	d.stats.Invalidations += uint64(inv)
	if inv > 0 && d.trace != nil {
		d.trace.Emit(obsv.Event{Cycle: now, Addr: lineAddr, Arg: uint32(inv), Kind: obsv.EvInval, CPU: int8(cpu)})
	}
	return inv
}

// L2Evict handles the shared L2 replacing lineAddr: inclusion forces all
// L1 copies out. These removals are *not* classified as coherence
// invalidations (they are a capacity/conflict effect of the L2).
func (d *Directory) L2Evict(now uint64, lineAddr uint32) int {
	m, ok := d.sharers[lineAddr]
	if !ok {
		return 0
	}
	n := 0
	for i := range d.l1s {
		if m&(1<<uint(i)) == 0 {
			continue
		}
		if present, _ := d.l1s[i].EvictForInclusion(lineAddr); present {
			n++
		}
	}
	delete(d.sharers, lineAddr)
	d.stats.InclusionEvicts += uint64(n)
	if n > 0 && d.trace != nil {
		d.trace.Emit(obsv.Event{Cycle: now, Addr: lineAddr, Arg: uint32(n), Kind: obsv.EvInclEvict, CPU: -1})
	}
	return n
}
