// Package check is the simulator's runtime sanitizer: an optional
// invariant layer the memory systems call into on every transaction
// when -sanitize is set. Where package lint proves properties of the
// source, check validates the actual simulated state — MESI legality,
// single-writer/multiple-reader, directory/L1 agreement, inclusion,
// per-CPU time monotonicity and MSHR leak-freedom at drain.
//
// The Checker also implements obsv.Tracer: teed into Config.Trace it
// keeps the last N events in a ring, and a violation panics with a
// *Violation carrying that reconstructed event trail, so the failure
// report shows what the machine was doing when the invariant broke.
//
// The sanitizer is opt-in because it probes every cache in the system
// on every access; enable it for correctness runs, never for timing
// measurements.
package check

import (
	"fmt"
	"strings"

	"cmpsim/internal/cache"
	"cmpsim/internal/obsv"
)

// DrainSlack is how many cycles past the final CPU halt an MSHR entry
// may legitimately complete (a store buffered just before the halt can
// still be in flight). Entries outstanding even at final+DrainSlack
// are leaked, not late.
const DrainSlack = 1 << 20

// Violation is the sanitizer's failure report. It is delivered by
// panic: an invariant break means simulated state is corrupt and no
// later statistic can be trusted.
type Violation struct {
	Rule  string       // which invariant broke ("mesi", "inclusion", ...)
	Msg   string       // what was observed
	Trail []obsv.Event // last events before the break, oldest first
}

// Error implements error, rendering the trail one event per line.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sanitizer: %s: %s", v.Rule, v.Msg)
	if len(v.Trail) > 0 {
		fmt.Fprintf(&b, "\nlast %d events:", len(v.Trail))
		for _, e := range v.Trail {
			fmt.Fprintf(&b, "\n  cycle=%d kind=%d cpu=%d addr=%#x arg=%d", e.Cycle, e.Kind, e.CPU, e.Addr, e.Arg)
		}
	}
	return b.String()
}

// NodeState is one node's view of a line for the MESI check: the L1 and
// L2 lines holding it, nil where absent. For the shared-L1 architecture
// (one cache, no coherence) the MESI check does not apply.
type NodeState struct {
	L1, L2 *cache.Line
}

// Checker validates transactions. The zero value is not usable; use New.
type Checker struct {
	trail   *obsv.Ring
	lastNow []uint64 // per-CPU last access time
	checks  uint64
}

// New returns a checker keeping the last trailLen events for violation
// reports.
func New(trailLen int) *Checker {
	return &Checker{trail: obsv.NewRing(trailLen)}
}

// Emit implements obsv.Tracer: the checker records the event stream so
// a violation can show the transactions leading up to it.
func (c *Checker) Emit(e obsv.Event) { c.trail.Emit(e) }

// Checks returns how many invariant evaluations ran (so a clean
// sanitized run can prove it actually checked something).
func (c *Checker) Checks() uint64 { return c.checks }

func (c *Checker) fail(rule, format string, args ...any) {
	panic(&Violation{Rule: rule, Msg: fmt.Sprintf(format, args...), Trail: c.trail.Events()})
}

// CheckAccessTime validates one completed reference: the completion
// cannot precede the request, and each CPU's request times must be
// nondecreasing (the cycle loop never moves a CPU backwards in time).
func (c *Checker) CheckAccessTime(now, done uint64, cpu int, addr uint32) {
	c.checks++
	if done < now {
		c.fail("cycle-monotonic", "cpu %d access of %#x at cycle %d completed at %d, before it was issued", cpu, addr, now, done)
	}
	for len(c.lastNow) <= cpu {
		c.lastNow = append(c.lastNow, 0)
	}
	if now < c.lastNow[cpu] {
		c.fail("cycle-monotonic", "cpu %d issued an access at cycle %d after one at cycle %d", cpu, now, c.lastNow[cpu])
	}
	c.lastNow[cpu] = now
}

// CheckMESI validates the coherence protocol's global state for one
// line across all nodes (the shared-memory architecture's snooped
// private hierarchies):
//
//   - single writer: at most one node holds the line Exclusive or
//     Modified, and then no other node holds any copy;
//   - inclusion: an L1 copy implies an L2 copy in the same node;
//   - write-back consistency: L1 Modified over L2 Shared is illegal
//     (the silent E→M upgrade makes L1-M over L2-E legal).
func (c *Checker) CheckMESI(now uint64, lineAddr uint32, nodes []NodeState) {
	c.checks++
	owner := -1
	copies := 0
	for i, n := range nodes {
		if n.L1 == nil && n.L2 == nil {
			continue
		}
		copies++
		if stateOf(n.L1) >= cache.Exclusive || stateOf(n.L2) >= cache.Exclusive {
			if owner >= 0 {
				c.fail("mesi", "line %#x at cycle %d has two exclusive/modified holders: nodes %d and %d", lineAddr, now, owner, i)
			}
			owner = i
		}
		if n.L1 != nil && n.L2 == nil {
			c.fail("inclusion", "node %d holds line %#x in L1 (%v) but not in its L2 at cycle %d", i, lineAddr, n.L1.State, now)
		}
		if n.L1 != nil && n.L2 != nil && n.L1.State == cache.Modified && n.L2.State == cache.Shared {
			c.fail("mesi", "node %d holds line %#x Modified in L1 over a Shared L2 copy at cycle %d", i, lineAddr, now)
		}
	}
	if owner >= 0 && copies > 1 {
		c.fail("mesi", "line %#x at cycle %d is exclusive/modified in node %d but %d nodes hold copies", lineAddr, now, owner, copies)
	}
}

func stateOf(ln *cache.Line) cache.State {
	if ln == nil {
		return cache.Invalid
	}
	return ln.State
}

// CheckDirectory validates the shared-L2 architecture's write-through
// directory for one shared-classified line: the sharer bitmask must
// exactly match which L1s hold the line, and a nonzero mask implies
// the shared L2 still holds the line (inclusion — an L2 eviction must
// have swept every sharer).
func (c *Checker) CheckDirectory(now uint64, lineAddr uint32, sharers, l1Present uint16, l2Present bool) {
	c.checks++
	if sharers != l1Present {
		c.fail("directory", "line %#x at cycle %d: directory sharers %04b != L1 presence %04b", lineAddr, now, sharers, l1Present)
	}
	if sharers != 0 && !l2Present {
		c.fail("directory", "line %#x at cycle %d has sharers %04b but is absent from the shared L2 (inclusion)", lineAddr, now, sharers)
	}
}

// CheckDrain validates MSHR leak-freedom after the last CPU halts:
// outstanding is the in-flight miss count probed at final+DrainSlack,
// where every legitimate fill has long completed.
func (c *Checker) CheckDrain(final uint64, outstanding int) {
	c.checks++
	if outstanding != 0 {
		c.fail("mshr-drain", "%d MSHR entries still outstanding %d cycles after the run ended at cycle %d (leak)", outstanding, DrainSlack, final)
	}
}
