package check

import (
	"strings"
	"testing"

	"cmpsim/internal/cache"
	"cmpsim/internal/obsv"
)

// mustViolate runs f and requires it to panic with a *Violation on the
// given rule.
func mustViolate(t *testing.T, rule string, f func()) *Violation {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("expected a %q violation, got none", rule)
		}
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panic value %T, want *Violation", r)
		}
		if v.Rule != rule {
			t.Fatalf("violation rule %q, want %q", v.Rule, rule)
		}
	}()
	f()
	return nil
}

func line(st cache.State) *cache.Line { return &cache.Line{State: st} }

func TestAccessTimeViolations(t *testing.T) {
	c := New(8)
	c.CheckAccessTime(100, 101, 0, 0x1000) // ok
	c.CheckAccessTime(100, 100, 0, 0x1000) // ok: zero-latency boundary

	mustViolate(t, "cycle-monotonic", func() {
		c2 := New(8)
		c2.CheckAccessTime(100, 99, 0, 0x1000) // completes before issue
	})
	mustViolate(t, "cycle-monotonic", func() {
		c2 := New(8)
		c2.CheckAccessTime(100, 101, 1, 0x1000)
		c2.CheckAccessTime(50, 51, 1, 0x2000) // CPU 1 moved backwards
	})

	// Different CPUs may interleave at different times.
	c3 := New(8)
	c3.CheckAccessTime(100, 101, 0, 0x1000)
	c3.CheckAccessTime(50, 51, 1, 0x2000)
	c3.CheckAccessTime(101, 102, 0, 0x3000)
}

func TestMESIViolations(t *testing.T) {
	c := New(8)

	// Legal: one Modified holder, nobody else.
	c.CheckMESI(10, 0x1000, []NodeState{
		{L1: line(cache.Modified), L2: line(cache.Modified)},
		{},
	})
	// Legal: two Shared readers.
	c.CheckMESI(11, 0x1000, []NodeState{
		{L1: line(cache.Shared), L2: line(cache.Shared)},
		{L2: line(cache.Shared)},
	})
	// Legal: silent L1 E->M upgrade over an Exclusive L2.
	c.CheckMESI(12, 0x1000, []NodeState{
		{L1: line(cache.Modified), L2: line(cache.Exclusive)},
	})

	mustViolate(t, "mesi", func() {
		New(8).CheckMESI(20, 0x1000, []NodeState{
			{L2: line(cache.Modified)},
			{L2: line(cache.Modified)}, // two writers
		})
	})
	mustViolate(t, "mesi", func() {
		New(8).CheckMESI(21, 0x1000, []NodeState{
			{L2: line(cache.Exclusive)},
			{L2: line(cache.Shared)}, // reader alongside an exclusive holder
		})
	})
	mustViolate(t, "mesi", func() {
		New(8).CheckMESI(22, 0x1000, []NodeState{
			{L1: line(cache.Modified), L2: line(cache.Shared)}, // dirty L1 over shared L2
		})
	})
	mustViolate(t, "inclusion", func() {
		New(8).CheckMESI(23, 0x1000, []NodeState{
			{L1: line(cache.Shared)}, // L1 copy with no L2 backing
		})
	})
}

func TestDirectoryViolations(t *testing.T) {
	c := New(8)
	c.CheckDirectory(10, 0x2000, 0b0101, 0b0101, true) // ok
	c.CheckDirectory(11, 0x2000, 0, 0, false)          // ok: untracked, absent

	mustViolate(t, "directory", func() {
		New(8).CheckDirectory(20, 0x2000, 0b0101, 0b0001, true) // stale sharer bit
	})
	mustViolate(t, "directory", func() {
		New(8).CheckDirectory(21, 0x2000, 0b0010, 0b0010, false) // sharers but no L2 line
	})
}

func TestDrainViolation(t *testing.T) {
	New(8).CheckDrain(1000, 0) // ok
	mustViolate(t, "mshr-drain", func() {
		New(8).CheckDrain(1000, 3)
	})
}

func TestViolationCarriesTrail(t *testing.T) {
	c := New(4)
	for i := uint64(0); i < 6; i++ { // overfill: ring keeps the last 4
		c.Emit(obsv.Event{Cycle: i, Kind: obsv.EvLoad, Addr: uint32(0x100 * i)})
	}
	defer func() {
		r := recover()
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panic value %T, want *Violation", r)
		}
		if len(v.Trail) != 4 {
			t.Fatalf("trail has %d events, want the ring's 4", len(v.Trail))
		}
		if v.Trail[0].Cycle != 2 {
			t.Fatalf("trail starts at cycle %d, want 2 (oldest kept)", v.Trail[0].Cycle)
		}
		msg := v.Error()
		if !strings.Contains(msg, "mshr-drain") || !strings.Contains(msg, "last 4 events") {
			t.Fatalf("Error() = %q, want rule and trail header", msg)
		}
	}()
	c.CheckDrain(1000, 1)
}

func TestChecksCounter(t *testing.T) {
	c := New(8)
	c.CheckAccessTime(1, 2, 0, 0)
	c.CheckDrain(10, 0)
	if got := c.Checks(); got != 2 {
		t.Fatalf("Checks() = %d, want 2", got)
	}
}
