package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNumOpsFitsOpcodeField(t *testing.T) {
	if NumOps > 64 {
		t.Fatalf("NumOps = %d, does not fit in 6-bit opcode field", NumOps)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: ADD, R1: 1, R2: 2, R3: 3},
		{Op: ADDI, R1: 5, R2: 6, Imm: -42},
		{Op: ADDI, R1: 5, R2: 6, Imm: 32767},
		{Op: ADDI, R1: 5, R2: 6, Imm: -32768},
		{Op: LW, R1: 9, R2: 29, Imm: 100},
		{Op: SW, R1: 9, R2: 29, Imm: -4},
		{Op: LD, R1: 3, R2: 8, Imm: 16},
		{Op: BEQ, R1: 1, R2: 2, Imm: -7},
		{Op: J, Imm: 12345},
		{Op: JAL, Imm: (1 << 26) - 1},
		{Op: JR, R2: 31},
		{Op: JALR, R1: 31, R2: 4},
		{Op: LUI, R1: 7, Imm: 0x7fff},
		{Op: FADDD, R1: 1, R2: 2, R3: 3},
		{Op: FEQ, R1: 10, R2: 0, R3: 1},
		{Op: SYSCALL, Imm: 3},
		{Op: HALT},
		{Op: CPUID, R1: 8},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	cases := []Inst{
		{Op: NumOps},
		{Op: ADD, R1: 32},
		{Op: ADDI, R1: 1, R2: 2, Imm: 32768},
		{Op: ADDI, R1: 1, R2: 2, Imm: -32769},
		{Op: J, Imm: 1 << 26},
		{Op: J, Imm: -1},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	w := Word(uint32(NumOps) << 26)
	if _, err := Decode(w); err == nil {
		t.Errorf("Decode(%#08x) succeeded, want error", uint32(w))
	}
}

// randInst generates a random valid instruction for property testing.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(r.Intn(int(NumOps)))
		in := Inst{Op: op}
		switch op.Format() {
		case FormatR:
			in.R1 = uint8(r.Intn(32))
			in.R2 = uint8(r.Intn(32))
			in.R3 = uint8(r.Intn(32))
		case FormatI:
			in.R1 = uint8(r.Intn(32))
			in.R2 = uint8(r.Intn(32))
			in.Imm = int32(int16(r.Uint32()))
		case FormatJ:
			in.Imm = int32(r.Intn(1 << 26))
		}
		return in
	}
}

func TestQuickEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeTotalOnValidOpcode(t *testing.T) {
	// Any word whose opcode field is valid must decode without error and
	// re-encode to a word that decodes to the same instruction (unused
	// bits in R-format are not preserved, so we compare decoded forms).
	f := func(raw uint32) bool {
		op := Op(raw >> 26)
		if op >= NumOps {
			return true // not this property's domain
		}
		in, err := Decode(Word(raw))
		if err != nil {
			return false
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestClassificationPredicates(t *testing.T) {
	if !LW.IsLoad() || !LL.IsLoad() || SW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !SW.IsStore() || !SC.IsStore() || LW.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !BEQ.IsBranch() || J.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !J.IsJump() || !JALR.IsJump() || BNE.IsJump() {
		t.Error("IsJump misclassifies")
	}
	if !FADDD.IsFPOp() || !CVTFI.IsFPOp() || ADD.IsFPOp() {
		t.Error("IsFPOp misclassifies")
	}
	if LW.MemBytes() != 4 || LB.MemBytes() != 1 || LD.MemBytes() != 8 || ADD.MemBytes() != 0 {
		t.Error("MemBytes wrong")
	}
}

func TestDestAndSrcs(t *testing.T) {
	cases := []struct {
		in   Inst
		dest uint8
		srcs []uint8
	}{
		{Inst{Op: ADD, R1: 3, R2: 1, R3: 2}, 3, []uint8{1, 2}},
		{Inst{Op: ADD, R1: 0, R2: 1, R3: 2}, RegNone, []uint8{1, 2}}, // r0 dest discarded
		{Inst{Op: ADD, R1: 3, R2: 0, R3: 2}, 3, []uint8{2}},          // r0 src omitted
		{Inst{Op: ADDI, R1: 3, R2: 4, Imm: 1}, 3, []uint8{4}},
		{Inst{Op: LUI, R1: 3, Imm: 1}, 3, nil},
		{Inst{Op: LW, R1: 3, R2: 29, Imm: 0}, 3, []uint8{29}},
		{Inst{Op: SW, R1: 3, R2: 29, Imm: 0}, RegNone, []uint8{29, 3}},
		{Inst{Op: LD, R1: 3, R2: 29, Imm: 0}, 3 + RegFPBase, []uint8{29}},
		{Inst{Op: SD, R1: 3, R2: 29, Imm: 0}, RegNone, []uint8{29, 3 + RegFPBase}},
		{Inst{Op: SC, R1: 3, R2: 29, Imm: 0}, 3, []uint8{29, 3}},
		{Inst{Op: BEQ, R1: 1, R2: 2, Imm: -1}, RegNone, []uint8{1, 2}},
		{Inst{Op: JAL, Imm: 7}, 31, nil},
		{Inst{Op: JR, R2: 31}, RegNone, []uint8{31}},
		{Inst{Op: JALR, R1: 31, R2: 5}, 31, []uint8{5}},
		{Inst{Op: FADDD, R1: 1, R2: 2, R3: 3}, 1 + RegFPBase, []uint8{2 + RegFPBase, 3 + RegFPBase}},
		{Inst{Op: FEQ, R1: 4, R2: 0, R3: 1}, 4, []uint8{RegFPBase, 1 + RegFPBase}},
		{Inst{Op: CVTIF, R1: 2, R2: 5}, 2 + RegFPBase, []uint8{5}},
		{Inst{Op: CVTFI, R1: 2, R2: 5}, 2, []uint8{5 + RegFPBase}},
		{Inst{Op: CPUID, R1: 6}, 6, nil},
		{Inst{Op: HALT}, RegNone, nil},
		{Inst{Op: SYSCALL, Imm: 1}, RegNone, nil},
	}
	for _, c := range cases {
		if got := c.in.Dest(); got != c.dest {
			t.Errorf("%v: Dest = %d, want %d", c.in, got, c.dest)
		}
		got := c.in.Srcs(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%v: Srcs = %v, want %v", c.in, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v: Srcs = %v, want %v", c.in, got, c.srcs)
				break
			}
		}
	}
}

func TestDisassemblyIsNonEmptyAndDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestInstStringCoversAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for op := Op(0); op < NumOps; op++ {
		in := Inst{Op: op}
		switch op.Format() {
		case FormatR:
			in.R1, in.R2, in.R3 = uint8(r.Intn(32)), uint8(r.Intn(32)), uint8(r.Intn(32))
		case FormatI:
			in.R1, in.R2, in.Imm = uint8(r.Intn(32)), uint8(r.Intn(32)), int32(r.Intn(100)-50)
		case FormatJ:
			in.Imm = int32(r.Intn(1000))
		}
		if s := in.String(); s == "" {
			t.Errorf("op %v: empty disassembly", op)
		}
	}
}
