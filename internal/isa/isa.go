// Package isa defines KRISC, the 32-bit RISC instruction set executed by
// the simulator's CPU models. KRISC is deliberately MIPS-like: 32 integer
// registers (r0 hardwired to zero), 32 floating-point registers, fixed
// 32-bit instruction words, load/store architecture, LL/SC for atomics,
// and separate single/double-precision arithmetic opcodes so that the
// functional-unit latencies of the paper's Table 1 can be modelled.
package isa

import "fmt"

// Op enumerates every KRISC opcode. The numeric value is the 6-bit opcode
// field of the binary encoding, so Op values must stay below 64.
type Op uint8

const (
	// Integer register-register (R-format: rd, rs, rt).
	ADD Op = iota
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT
	SLTU

	// Integer register-immediate (I-format: rt, rs, imm16).
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	LUI
	SLLI
	SRLI
	SRAI

	// Memory (I-format: rt, base rs, displacement imm16).
	LW // load 32-bit word into integer register
	SW // store 32-bit word from integer register
	LB // load byte (zero-extended)
	SB // store byte
	LD // load 64-bit double into FP register
	SD // store 64-bit double from FP register
	LL // load-linked word
	SC // store-conditional word; rt <- 1 on success, 0 on failure

	// Branches (I-format: rs=r1, rt=r2, imm16 = signed instruction offset
	// relative to the next instruction).
	BEQ
	BNE
	BLT
	BGE

	// Jumps. J/JAL are J-format (imm26 = absolute instruction index).
	// JR/JALR are R-format.
	J
	JAL
	JR   // jump to rs (r2)
	JALR // rd <- return address, jump to rs (r2)

	// Floating point (R-format over FP registers: fd, fs, ft).
	FADDS
	FSUBS
	FMULS
	FDIVS
	FADDD
	FSUBD
	FMULD
	FDIVD
	FMOV // fd <- fs
	FNEG // fd <- -fs

	// FP compares write an integer register (R-format: rd int, fs, ft).
	FEQ
	FLT
	FLE

	// Conversions.
	CVTIF // fd <- float64(int32 rs)
	CVTFI // rd <- int32(trunc f fs)

	// System.
	SYSCALL // I-format; imm16 = syscall number
	HALT    // stop this hardware context
	CPUID   // rd <- physical cpu number

	NumOps // sentinel; must be <= 64
)

var opNames = [...]string{
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
	LUI: "lui", SLLI: "slli", SRLI: "srli", SRAI: "srai",
	LW: "lw", SW: "sw", LB: "lb", SB: "sb", LD: "ld", SD: "sd",
	LL: "ll", SC: "sc",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	J: "j", JAL: "jal", JR: "jr", JALR: "jalr",
	FADDS: "fadd.s", FSUBS: "fsub.s", FMULS: "fmul.s", FDIVS: "fdiv.s",
	FADDD: "fadd.d", FSUBD: "fsub.d", FMULD: "fmul.d", FDIVD: "fdiv.d",
	FMOV: "fmov", FNEG: "fneg",
	FEQ: "feq", FLT: "flt", FLE: "fle",
	CVTIF: "cvt.i.f", CVTFI: "cvt.f.i",
	SYSCALL: "syscall", HALT: "halt", CPUID: "cpuid",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Format describes how an instruction's fields are laid out.
type Format uint8

const (
	FormatR Format = iota // r1, r2, r3
	FormatI               // r1, r2, imm16
	FormatJ               // imm26
)

// Format reports the encoding format of op.
func (op Op) Format() Format {
	switch op {
	case ADDI, ANDI, ORI, XORI, SLTI, LUI, SLLI, SRLI, SRAI,
		LW, SW, LB, SB, LD, SD, LL, SC,
		BEQ, BNE, BLT, BGE, SYSCALL:
		return FormatI
	case J, JAL:
		return FormatJ
	default:
		return FormatR
	}
}

// Inst is a decoded KRISC instruction. Field roles depend on the format:
//
//	R-format: R1 = destination, R2/R3 = sources (JR/JALR use R2 as target).
//	I-format: R1 = destination (loads, ALU-imm) or source (stores, branches);
//	          R2 = base/source register; Imm = sign-extended 16-bit immediate.
//	J-format: Imm = 26-bit absolute instruction index.
type Inst struct {
	Op  Op
	R1  uint8
	R2  uint8
	R3  uint8
	Imm int32
}

// Word is a raw 32-bit encoded instruction.
type Word uint32

// Encode packs an instruction into its 32-bit binary form.
func Encode(in Inst) (Word, error) {
	if in.Op >= NumOps {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if in.R1 > 31 || in.R2 > 31 || in.R3 > 31 {
		return 0, fmt.Errorf("isa: encode %s: register out of range", in.Op)
	}
	w := Word(in.Op) << 26
	switch in.Op.Format() {
	case FormatR:
		w |= Word(in.R1)<<21 | Word(in.R2)<<16 | Word(in.R3)<<11
	case FormatI:
		if in.Imm < -32768 || in.Imm > 32767 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d does not fit in 16 bits", in.Op, in.Imm)
		}
		w |= Word(in.R1)<<21 | Word(in.R2)<<16 | Word(uint16(in.Imm))
	case FormatJ:
		if in.Imm < 0 || in.Imm >= 1<<26 {
			return 0, fmt.Errorf("isa: encode %s: target %d does not fit in 26 bits", in.Op, in.Imm)
		}
		w |= Word(in.Imm)
	}
	return w, nil
}

// MustEncode is Encode but panics on error; for use in tests and the
// assembler, which validates fields before encoding.
func MustEncode(in Inst) Word {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word.
func Decode(w Word) (Inst, error) {
	op := Op(w >> 26)
	if op >= NumOps {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d in %#08x", uint8(op), uint32(w))
	}
	in := Inst{Op: op}
	switch op.Format() {
	case FormatR:
		in.R1 = uint8(w >> 21 & 31)
		in.R2 = uint8(w >> 16 & 31)
		in.R3 = uint8(w >> 11 & 31)
	case FormatI:
		in.R1 = uint8(w >> 21 & 31)
		in.R2 = uint8(w >> 16 & 31)
		in.Imm = int32(int16(w & 0xffff))
	case FormatJ:
		in.Imm = int32(w & (1<<26 - 1))
	}
	return in, nil
}

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	switch op {
	case LW, LB, LD, LL:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory. SC is both a store and a
// producer of an integer result.
func (op Op) IsStore() bool {
	switch op {
	case SW, SB, SD, SC:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsJump reports whether op unconditionally redirects control flow.
func (op Op) IsJump() bool {
	switch op {
	case J, JAL, JR, JALR:
		return true
	}
	return false
}

// IsControl reports whether op can change the PC.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsFPOp reports whether op executes on the floating-point units.
func (op Op) IsFPOp() bool {
	switch op {
	case FADDS, FSUBS, FMULS, FDIVS, FADDD, FSUBD, FMULD, FDIVD,
		FMOV, FNEG, FEQ, FLT, FLE, CVTIF, CVTFI:
		return true
	}
	return false
}

// MemBytes reports the access width in bytes of a memory op (0 otherwise).
func (op Op) MemBytes() uint32 {
	switch op {
	case LW, SW, LL, SC:
		return 4
	case LB, SB:
		return 1
	case LD, SD:
		return 8
	}
	return 0
}

// Register identifiers in the unified dependence namespace used by the
// out-of-order model: 0..31 are integer registers, 32..63 are FP registers.
// RegNone marks "no register".
const (
	RegFPBase = 32
	RegNone   = 255
)

// Dest returns the destination register of in within the unified
// namespace, or RegNone. Writes to integer r0 are reported as RegNone
// because r0 is hardwired to zero.
func (in Inst) Dest() uint8 {
	var d uint8 = RegNone
	switch in.Op {
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLL, SRL, SRA, SLT, SLTU,
		ADDI, ANDI, ORI, XORI, SLTI, LUI, SLLI, SRLI, SRAI,
		LW, LB, LL, SC, FEQ, FLT, FLE, CVTFI, CPUID, JALR:
		d = in.R1
	case JAL:
		d = 31 // link register
	case LD, FADDS, FSUBS, FMULS, FDIVS, FADDD, FSUBD, FMULD, FDIVD, FMOV, FNEG, CVTIF:
		// FP f0 is a real register, unlike integer r0.
		return in.R1 + RegFPBase
	}
	if d == 0 {
		return RegNone // integer r0 writes are discarded
	}
	return d
}

// Srcs appends the source registers of in (unified namespace) to dst and
// returns the result. Integer r0 is omitted: it never creates a dependence.
func (in Inst) Srcs(dst []uint8) []uint8 {
	addInt := func(r uint8) {
		if r != 0 {
			dst = append(dst, r)
		}
	}
	addFP := func(r uint8) { dst = append(dst, r+RegFPBase) }
	switch in.Op {
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLL, SRL, SRA, SLT, SLTU:
		addInt(in.R2)
		addInt(in.R3)
	case ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI:
		addInt(in.R2)
	case LUI:
		// no register sources
	case LW, LB, LL, LD:
		addInt(in.R2) // base
	case SW, SB, SC:
		addInt(in.R2) // base
		addInt(in.R1) // data
	case SD:
		addInt(in.R2) // base
		addFP(in.R1)  // data
	case BEQ, BNE, BLT, BGE:
		addInt(in.R1)
		addInt(in.R2)
	case JR, JALR:
		addInt(in.R2)
	case FADDS, FSUBS, FMULS, FDIVS, FADDD, FSUBD, FMULD, FDIVD:
		addFP(in.R2)
		addFP(in.R3)
	case FMOV, FNEG:
		addFP(in.R2)
	case FEQ, FLT, FLE:
		addFP(in.R2)
		addFP(in.R3)
	case CVTIF:
		addInt(in.R2)
	case CVTFI:
		addFP(in.R2)
	}
	return dst
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatJ:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FormatI:
		switch {
		case in.Op.IsMem():
			rc := "r"
			if in.Op == LD || in.Op == SD {
				rc = "f"
			}
			return fmt.Sprintf("%s %s%d, %d(r%d)", in.Op, rc, in.R1, in.Imm, in.R2)
		case in.Op.IsBranch():
			return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.R1, in.R2, in.Imm)
		case in.Op == SYSCALL:
			return fmt.Sprintf("%s %d", in.Op, in.Imm)
		case in.Op == LUI:
			return fmt.Sprintf("%s r%d, %#x", in.Op, in.R1, uint16(in.Imm))
		default:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.R1, in.R2, in.Imm)
		}
	default: // FormatR
		switch in.Op {
		case JR:
			return fmt.Sprintf("%s r%d", in.Op, in.R2)
		case JALR:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.R1, in.R2)
		case HALT:
			return "halt"
		case CPUID:
			return fmt.Sprintf("%s r%d", in.Op, in.R1)
		case FMOV, FNEG:
			return fmt.Sprintf("%s f%d, f%d", in.Op, in.R1, in.R2)
		case FEQ, FLT, FLE:
			return fmt.Sprintf("%s r%d, f%d, f%d", in.Op, in.R1, in.R2, in.R3)
		case CVTIF:
			return fmt.Sprintf("%s f%d, r%d", in.Op, in.R1, in.R2)
		case CVTFI:
			return fmt.Sprintf("%s r%d, f%d", in.Op, in.R1, in.R2)
		default:
			if in.Op.IsFPOp() {
				return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.R1, in.R2, in.R3)
			}
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.R1, in.R2, in.R3)
		}
	}
}

// Conventional register assignments used by the assembler and guest
// runtime (the "KRISC ABI").
const (
	RegZero = 0 // hardwired zero
	RegRV   = 2 // return value
	RegArg0 = 4 // first argument
	RegArg1 = 5
	RegArg2 = 6
	RegArg3 = 7
	RegSP   = 29 // stack pointer
	RegGP   = 28 // global pointer (unused by the runtime, free for guests)
	RegRA   = 31 // return address
)
