package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a frozen Profile. Every renderer iterates sorted
// slices only and breaks ranking ties by address/name, so output is
// byte-deterministic for a given Profile — the property the simprof
// regression tests pin across repeated runs and worker counts.

// FuncAt resolves a physical PC to the nearest preceding text symbol,
// returning its name and the PC's offset from it. Loop-head labels
// count as symbols, so attribution is at label granularity (e.g. a
// hot inner loop shows under its own label, not just the function).
// PCs outside every text symbol resolve to ("", 0) with ok=false.
func (p *Profile) FuncAt(pc uint32) (name string, off uint32, ok bool) {
	return p.symAt(pc, true)
}

// DataAt resolves a physical address to the data symbol containing
// it, mirroring FuncAt for the heatmap's line annotations.
func (p *Profile) DataAt(addr uint32) (name string, off uint32, ok bool) {
	return p.symAt(addr, false)
}

func (p *Profile) symAt(addr uint32, text bool) (string, uint32, bool) {
	best := -1
	// Symbols are sorted by Start; take the last one at or below addr
	// whose range still contains it.
	lo, hi := 0, len(p.Symbols)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Symbols[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo - 1; i >= 0; i-- {
		s := &p.Symbols[i]
		if s.Text == text && s.Start <= addr && addr < s.End {
			best = i
			break
		}
		if s.End <= addr && s.Text == text {
			break // sorted: nothing earlier can contain addr either
		}
	}
	if best < 0 {
		return "", 0, false
	}
	return p.Symbols[best].Name, addr - p.Symbols[best].Start, true
}

// locLabel formats "name+0xOFF" (or bare name at offset 0), falling
// back to the raw address when no symbol contains it.
func (p *Profile) locLabel(addr uint32, text bool) string {
	name, off, ok := p.symAt(addr, text)
	if !ok {
		return fmt.Sprintf("0x%08x", addr)
	}
	if off == 0 {
		return name
	}
	return fmt.Sprintf("%s+0x%x", name, off)
}

// FuncRow is one row of the hot-function table: all PCEntry counters
// of the PCs resolving to one text symbol, summed.
type FuncRow struct {
	Name    string
	Retired uint64
	IStall  [NumLevels]uint64
	DStall  [NumLevels]uint64
	Pipe    uint64
}

// Cycles returns the total cycles attributed to the function.
func (r *FuncRow) Cycles() uint64 {
	n := r.Retired + r.Pipe
	for l := 0; l < NumLevels; l++ {
		n += r.IStall[l] + r.DStall[l]
	}
	return n
}

// HotFuncs aggregates the PC profile to text symbols, sorted by total
// attributed cycles descending (ties by name). PCs outside any symbol
// aggregate under their own "0xADDR" pseudo-symbol.
func (p *Profile) HotFuncs() []FuncRow {
	idx := map[string]*FuncRow{}
	var order []string
	for i := range p.PCs {
		e := &p.PCs[i]
		name, _, ok := p.symAt(e.PC, true)
		if !ok {
			name = fmt.Sprintf("0x%08x", e.PC)
		}
		r := idx[name]
		if r == nil {
			r = &FuncRow{Name: name}
			idx[name] = r
			order = append(order, name)
		}
		r.Retired += e.Retired
		r.Pipe += e.Pipe
		for l := 0; l < NumLevels; l++ {
			r.IStall[l] += e.IStall[l]
			r.DStall[l] += e.DStall[l]
		}
	}
	rows := make([]FuncRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, *idx[name])
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ci, cj := rows[i].Cycles(), rows[j].Cycles()
		if ci != cj {
			return ci > cj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteHotFuncs renders the top-N hot functions with per-level stall
// columns (istall summed across levels; dstall split by level).
func (p *Profile) WriteHotFuncs(w io.Writer, top int) {
	rows := p.HotFuncs()
	fmt.Fprintf(w, "--- hot functions (top %d of %d) ---\n", min(top, len(rows)), len(rows))
	fmt.Fprintf(w, "%-24s %12s %12s %9s %9s %9s %9s %9s %9s\n",
		"function", "cycles", "busy", "istall", "d"+LevelNames[0], "d"+LevelNames[1], "d"+LevelNames[2], "d"+LevelNames[3], "pipe")
	for i := 0; i < len(rows) && i < top; i++ {
		r := &rows[i]
		var is uint64
		for l := 0; l < NumLevels; l++ {
			is += r.IStall[l]
		}
		fmt.Fprintf(w, "%-24s %12d %12d %9d %9d %9d %9d %9d %9d\n",
			clip(r.Name, 24), r.Cycles(), r.Retired, is,
			r.DStall[0], r.DStall[1], r.DStall[2], r.DStall[3], r.Pipe)
	}
}

// WriteHotPCs renders the top-N individual PCs with symbol+offset
// annotations.
func (p *Profile) WriteHotPCs(w io.Writer, top int) {
	order := make([]int, len(p.PCs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ci, cj := p.PCs[order[a]].Cycles(), p.PCs[order[b]].Cycles()
		if ci != cj {
			return ci > cj
		}
		return p.PCs[order[a]].PC < p.PCs[order[b]].PC
	})
	fmt.Fprintf(w, "--- hot PCs (top %d of %d) ---\n", min(top, len(order)), len(order))
	fmt.Fprintf(w, "%-10s %-28s %12s %9s %9s %9s %9s\n",
		"pc", "location", "cycles", "busy", "istall", "dstall", "pipe")
	for i := 0; i < len(order) && i < top; i++ {
		e := &p.PCs[order[i]]
		var is, ds uint64
		for l := 0; l < NumLevels; l++ {
			is += e.IStall[l]
			ds += e.DStall[l]
		}
		fmt.Fprintf(w, "0x%08x %-28s %12d %9d %9d %9d %9d\n",
			e.PC, clip(p.locLabel(e.PC, true), 28), e.Cycles(), e.Retired, is, ds, e.Pipe)
	}
}

// WriteHeatmap renders the top-N cache lines by coherence traffic
// (invalidations + cache-to-cache transfers, ties by miss count then
// address): the line-sharing "heatmap". Each row shows the owning
// data symbol, traffic counters, the per-CPU read/write footprint
// ("0:rw 2:r" = CPU0 read+wrote the line, CPU2 only read it), the
// hottest writer→reader pairs, and a FALSE flag on false-sharing
// candidates.
func (p *Profile) WriteHeatmap(w io.Writer, top int) {
	order := make([]int, 0, len(p.Lines))
	for i := range p.Lines {
		if p.Lines[i].Traffic() > 0 || p.Lines[i].Misses > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := &p.Lines[order[a]], &p.Lines[order[b]]
		if la.Traffic() != lb.Traffic() {
			return la.Traffic() > lb.Traffic()
		}
		if la.Misses != lb.Misses {
			return la.Misses > lb.Misses
		}
		return la.Addr < lb.Addr
	})
	fmt.Fprintf(w, "--- line sharing heatmap (top %d of %d lines with traffic) ---\n",
		min(top, len(order)), len(order))
	fmt.Fprintf(w, "%-10s %-24s %8s %8s %8s %7s %7s %-19s %-20s %s\n",
		"line", "data symbol", "reads", "writes", "misses", "inval", "c2c", "sharers", "pairs", "flag")
	for i := 0; i < len(order) && i < top; i++ {
		e := &p.Lines[order[i]]
		flag := ""
		if e.FalseSharing {
			flag = "FALSE-SHARING?"
		}
		fmt.Fprintf(w, "0x%08x %-24s %8d %8d %8d %7d %7d %-19s %-20s %s\n",
			e.Addr, clip(p.locLabel(e.Addr, false), 24),
			e.Reads, e.Writes, e.Misses, e.Invals, e.C2C,
			clip(sharers(e), 19), clip(pairs(e, 3), 20), flag)
	}
}

// sharers formats the per-CPU footprint: "0:rw 1:r" means CPU0 read
// and wrote the line while CPU1 only read it.
func sharers(e *LineEntry) string {
	var sb strings.Builder
	for i, t := range e.Touch {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:r", t.CPU)
		if t.WriteMask != 0 {
			sb.WriteByte('w')
		}
	}
	return sb.String()
}

// pairs formats the top-n writer→reader pairs by count.
func pairs(e *LineEntry, n int) string {
	order := make([]int, len(e.Pairs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := &e.Pairs[order[a]], &e.Pairs[order[b]]
		if pa.Count != pb.Count {
			return pa.Count > pb.Count
		}
		if pa.Writer != pb.Writer {
			return pa.Writer < pb.Writer
		}
		return pa.Reader < pb.Reader
	})
	var sb strings.Builder
	for i := 0; i < len(order) && i < n; i++ {
		pr := &e.Pairs[order[i]]
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d>%d:%d", pr.Writer, pr.Reader, pr.Count)
	}
	return sb.String()
}

// WriteFolded emits the PC profile as folded stacks for flamegraph
// tools (one "frame;frame;frame count" line per PC, cycles as the
// count), ordered by stack string.
func (p *Profile) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(p.PCs))
	root := p.Workload
	if root == "" {
		root = "all"
	}
	for i := range p.PCs {
		e := &p.PCs[i]
		cyc := e.Cycles()
		if cyc == 0 {
			continue
		}
		fn, _, ok := p.symAt(e.PC, true)
		if !ok {
			fn = "?"
		}
		lines = append(lines, fmt.Sprintf("%s;%s;%s;0x%08x %d", root, p.Arch, fn, e.PC, cyc))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the full three-part report: hot functions, hot
// PCs, and the line-sharing heatmap.
func (p *Profile) WriteReport(w io.Writer, top int) {
	name := p.Workload
	if name == "" {
		name = "?"
	}
	fmt.Fprintf(w, "=== profile: %s / %s / %s (%d CPUs, %dB lines) ===\n",
		name, p.Arch, p.Model, p.NumCPUs, p.LineBytes)
	p.WriteHotFuncs(w, top)
	p.WriteHotPCs(w, top)
	p.WriteHeatmap(w, top)
}

// WriteJSON serializes the profile (indented, key-sorted via the
// struct field order — byte-deterministic). cmd/simprof -in reads it
// back.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile deserializes a profile written by WriteJSON.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("prof: decode profile: %w", err)
	}
	return &p, nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "~"
}
