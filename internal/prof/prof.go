// Package prof is the guest-level cycle-attribution profiler: it
// answers "which guest code and which data lines did the machine
// spend its cycles on", where stats.Breakdown only answers "on what
// category".
//
// It follows the obsv.Tracer discipline exactly. A *Profiler is a
// per-run attachment installed in memsys.Config.Prof; every hook site
// in the CPU models and the memory system is a single method call
// behind one pointer nil-check, so a nil profiler costs one compare
// per site and zero allocations (pinned by BenchmarkProfDisabled and
// the hotalloc analyzer). Because the profiler accumulates into
// private maps owned by one machine, it is a runtime attachment in
// the runner's sense: jobs carrying one bypass the result cache.
//
// Two views are collected:
//
//   - PC profiling: the CPU models charge every retired instruction
//     and every stall cycle — split by the memsys.Level that caused
//     it — to the physical PC of the retiring or blocking
//     instruction. Physical PCs are unambiguous machine-wide (pmake
//     loads per-process copies at distinct physical bases), and the
//     asm symbol table (asm.Program.Symbols, collected by
//     core.Machine at load time) maps them back to function labels.
//
//   - Line profiling: the memory system and the coherence machinery
//     charge per-cache-line access/miss/invalidation/cache-to-cache
//     counters, the latter two keyed by writer→reader CPU pairs, plus
//     per-CPU word-offset touch masks. A line that ping-pongs between
//     CPUs touching disjoint words is flagged as a false-sharing
//     candidate — the paper's Section 4.2 MP3D story made checkable.
//
// Snapshot freezes the maps into a fully sorted, JSON-serializable
// Profile; rendering lives in report.go and cmd/simprof.
package prof

import "sort"

// NumLevels mirrors memsys.NumLevels: the stall-level axis
// (L1, L2, Mem, C2C). prof is imported by memsys, so the constant is
// duplicated here and pinned by a test in the memsys package.
const NumLevels = 4

// LevelNames names the stall levels in report columns.
var LevelNames = [NumLevels]string{"L1", "L2", "Mem", "C2C"}

// pcCounts accumulates cycle attribution for one physical PC.
type pcCounts struct {
	retired uint64            // instructions retired at this PC
	istall  [NumLevels]uint64 // fetch-stall cycles by servicing level
	dstall  [NumLevels]uint64 // data-stall cycles by servicing level
	pipe    uint64            // pipeline/window stalls charged to this PC
}

// lineCounts accumulates sharing behavior for one cache-line address.
type lineCounts struct {
	reads  uint64
	writes uint64
	misses uint64            // accesses serviced beyond the first level
	invals uint64            // coherence invalidations received
	c2c    uint64            // cache-to-cache transfers
	pairs  map[uint16]uint64 // writer<<8|reader → inval+c2c events
	touch  []uint32          // per-CPU word-offset mask (any access)
	wtouch []uint32          // per-CPU word-offset mask (writes)
}

// Profiler collects cycle attribution for one machine run. Build one
// with New, install it in memsys.Config.Prof before constructing the
// machine, and read the result from RunResult.Profile (the core
// snapshots it when the run completes). Not safe for concurrent use;
// like a Tracer or Metrics attachment it must be private to one job.
type Profiler struct {
	numCPUs   int
	lineShift uint32 // log2(lineBytes): addr>>lineShift = line index
	lineMask  uint32 // ^(lineBytes-1): addr&lineMask = line address
	pcs       map[uint32]*pcCounts
	lines     map[uint32]*lineCounts
}

// New returns an empty profiler for a machine with numCPUs processors
// and lineBytes-byte cache lines (both from memsys.Config).
func New(numCPUs int, lineBytes uint32) *Profiler {
	shift := uint32(0)
	for b := lineBytes; b > 1; b >>= 1 {
		shift++
	}
	return &Profiler{
		numCPUs:   numCPUs,
		lineShift: shift,
		lineMask:  ^(lineBytes - 1),
		pcs:       make(map[uint32]*pcCounts),
		lines:     make(map[uint32]*lineCounts),
	}
}

func (p *Profiler) pc(ppc uint32) *pcCounts {
	c := p.pcs[ppc]
	if c == nil {
		c = &pcCounts{}
		p.pcs[ppc] = c
	}
	return c
}

func (p *Profiler) line(addr uint32) *lineCounts {
	la := addr & p.lineMask
	c := p.lines[la]
	if c == nil {
		c = &lineCounts{
			pairs:  make(map[uint16]uint64),
			touch:  make([]uint32, p.numCPUs),
			wtouch: make([]uint32, p.numCPUs),
		}
		p.lines[la] = c
	}
	return c
}

// RetirePC charges one retired instruction to physical PC ppc. The
// CPU models call it wherever they count StallStats.Instructions.
func (p *Profiler) RetirePC(ppc uint32) {
	p.pc(ppc).retired++
}

// IStallPC charges cycles of fetch stall, serviced at level, to the
// physical PC the front end is blocked on.
func (p *Profiler) IStallPC(ppc uint32, level uint8, cycles uint64) {
	p.pc(ppc).istall[level] += cycles
}

// DStallPC charges cycles of data stall, serviced at level, to the
// physical PC of the blocking memory instruction.
func (p *Profiler) DStallPC(ppc uint32, level uint8, cycles uint64) {
	p.pc(ppc).dstall[level] += cycles
}

// PipeStallPC charges cycles of pipeline (non-memory) stall to the
// physical PC of the instruction at the head of the machine.
func (p *Profiler) PipeStallPC(ppc uint32, cycles uint64) {
	p.pc(ppc).pipe += cycles
}

// LineAccess records one completed data access by cpu to addr,
// serviced at level (the memsys.Level of the completion). Accesses
// serviced beyond the first level count as misses for the line.
func (p *Profiler) LineAccess(cpu int, addr uint32, write bool, level uint8) {
	c := p.line(addr)
	word := uint32(1) << ((addr >> 2) & ((1 << (p.lineShift - 2)) - 1))
	c.touch[cpu] |= word
	if write {
		c.writes++
		c.wtouch[cpu] |= word
	} else {
		c.reads++
	}
	if level > 0 {
		c.misses++
	}
}

// LineInval records a coherence invalidation of lineAddr in reader's
// cache caused by writer's store or upgrade.
func (p *Profiler) LineInval(writer, reader int, lineAddr uint32) {
	c := p.line(lineAddr)
	c.invals++
	c.pairs[pairKey(writer, reader)]++
}

// LineC2C records a cache-to-cache transfer of lineAddr supplied by
// the CPU that last held it (writer) to the requester (reader).
func (p *Profiler) LineC2C(writer, reader int, lineAddr uint32) {
	c := p.line(lineAddr)
	c.c2c++
	c.pairs[pairKey(writer, reader)]++
}

func pairKey(writer, reader int) uint16 {
	return uint16(writer)<<8 | uint16(reader)&0xff
}

// Symbol is one assembler label resolved to a physical address range
// [Start, End). Text symbols label code (functions, loop heads); data
// symbols label variables and arrays.
type Symbol struct {
	Name  string
	Start uint32
	End   uint32
	Text  bool
}

// PCEntry is the frozen attribution for one physical PC.
type PCEntry struct {
	PC      uint32
	Retired uint64
	IStall  [NumLevels]uint64
	DStall  [NumLevels]uint64
	Pipe    uint64
}

// Cycles returns the total cycles attributed to the PC: retired
// instructions (busy issue slots) plus every stall category.
func (e *PCEntry) Cycles() uint64 {
	n := e.Retired + e.Pipe
	for l := 0; l < NumLevels; l++ {
		n += e.IStall[l] + e.DStall[l]
	}
	return n
}

// Stalls returns only the stall cycles attributed to the PC.
func (e *PCEntry) Stalls() uint64 {
	n := e.Pipe
	for l := 0; l < NumLevels; l++ {
		n += e.IStall[l] + e.DStall[l]
	}
	return n
}

// Pair is a writer→reader CPU pair with its coherence-event count
// (invalidations plus cache-to-cache transfers).
type Pair struct {
	Writer int
	Reader int
	Count  uint64
}

// CPUTouch is one CPU's word-offset footprint on a line: bit i of a
// mask is set if the CPU touched word i of the line.
type CPUTouch struct {
	CPU       int
	ReadMask  uint32 // words touched by any access
	WriteMask uint32 // words touched by writes
}

// LineEntry is the frozen sharing record for one cache-line address.
type LineEntry struct {
	Addr   uint32
	Reads  uint64
	Writes uint64
	Misses uint64
	Invals uint64
	C2C    uint64
	Pairs  []Pair     `json:",omitempty"`
	Touch  []CPUTouch `json:",omitempty"`

	// FalseSharing marks a false-sharing candidate: the line ping-pongs
	// (coherence events > 0), at least two CPUs touch it, and some pair
	// of touching CPUs use disjoint word offsets.
	FalseSharing bool `json:",omitempty"`
}

// Traffic returns the line's coherence traffic (invals + C2C), the
// heatmap's ranking key.
func (e *LineEntry) Traffic() uint64 { return e.Invals + e.C2C }

// Profile is the frozen, serializable result of one profiled run.
// Every slice is fully sorted, so marshaling a Profile — and every
// renderer in report.go — is byte-deterministic.
type Profile struct {
	Workload  string `json:",omitempty"` // filled in by the driver
	Arch      string
	Model     string
	NumCPUs   int
	LineBytes uint32
	PCs       []PCEntry
	Lines     []LineEntry
	Symbols   []Symbol `json:",omitempty"`
}

// Snapshot freezes the profiler's accumulated state into a Profile.
// syms is the machine's physical-address symbol table (already
// biased); it is sorted into the profile for PC→function resolution.
func (p *Profiler) Snapshot(arch, model string, syms []Symbol) *Profile {
	pr := &Profile{
		Arch:      arch,
		Model:     model,
		NumCPUs:   p.numCPUs,
		LineBytes: uint32(1) << p.lineShift,
	}

	pcs := make([]uint32, 0, len(p.pcs))
	for pc := range p.pcs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	pr.PCs = make([]PCEntry, 0, len(pcs))
	for _, pc := range pcs {
		c := p.pcs[pc]
		pr.PCs = append(pr.PCs, PCEntry{
			PC:      pc,
			Retired: c.retired,
			IStall:  c.istall,
			DStall:  c.dstall,
			Pipe:    c.pipe,
		})
	}

	las := make([]uint32, 0, len(p.lines))
	for la := range p.lines {
		las = append(las, la)
	}
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	pr.Lines = make([]LineEntry, 0, len(las))
	for _, la := range las {
		c := p.lines[la]
		e := LineEntry{
			Addr:   la,
			Reads:  c.reads,
			Writes: c.writes,
			Misses: c.misses,
			Invals: c.invals,
			C2C:    c.c2c,
		}
		keys := make([]uint16, 0, len(c.pairs))
		for k := range c.pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			e.Pairs = append(e.Pairs, Pair{
				Writer: int(k >> 8),
				Reader: int(k & 0xff),
				Count:  c.pairs[k],
			})
		}
		for cpu := 0; cpu < p.numCPUs; cpu++ {
			if c.touch[cpu] != 0 {
				e.Touch = append(e.Touch, CPUTouch{
					CPU:       cpu,
					ReadMask:  c.touch[cpu],
					WriteMask: c.wtouch[cpu],
				})
			}
		}
		e.FalseSharing = falseSharing(&e)
		pr.Lines = append(pr.Lines, e)
	}

	pr.Symbols = append(pr.Symbols, syms...)
	sort.SliceStable(pr.Symbols, func(i, j int) bool {
		if pr.Symbols[i].Start != pr.Symbols[j].Start {
			return pr.Symbols[i].Start < pr.Symbols[j].Start
		}
		return pr.Symbols[i].Name < pr.Symbols[j].Name
	})
	return pr
}

// falseSharing reports whether a frozen line entry looks like false
// sharing: coherence traffic on the line, and at least one pair of
// touching CPUs whose word footprints are disjoint. True sharing —
// CPUs contending for the same word — is deliberately not flagged.
func falseSharing(e *LineEntry) bool {
	if e.Traffic() == 0 || len(e.Touch) < 2 {
		return false
	}
	for i := 0; i < len(e.Touch); i++ {
		for j := i + 1; j < len(e.Touch); j++ {
			if e.Touch[i].ReadMask&e.Touch[j].ReadMask == 0 {
				return true
			}
		}
	}
	return false
}
