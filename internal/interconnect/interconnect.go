// Package interconnect models the contended, occupancy-limited resources
// of the three architectures: cache banks behind crossbars, the L2 port,
// the memory controller, and the shared system bus. Each is a pipelined
// unit that can accept one request per free slot; a request occupies the
// unit for its occupancy and later requests queue behind it.
package interconnect

import (
	"cmpsim/internal/cyc"
	"cmpsim/internal/obsv"
)

// Resource is a single pipelined unit with busy-until semantics. The
// zero value (plus a Name) is an idle resource.
type Resource struct {
	Name      string
	busyUntil uint64

	acquires   uint64
	waitCycles uint64 // cycles requests spent queued behind earlier ones
	busyCycles uint64 // cycles the unit was occupied

	trace obsv.Tracer
	id    obsv.ResID
	bank  uint32
}

// Instrument attaches a tracer; every grant then emits an EvGrant event
// identifying the resource as (id, bank). A nil tracer disables emission
// (the fast path is the nil check in Acquire).
func (r *Resource) Instrument(tr obsv.Tracer, id obsv.ResID, bank uint32) {
	r.trace, r.id, r.bank = tr, id, bank
}

// Acquire reserves the resource at the earliest slot at or after now for
// occ cycles and returns the slot's start cycle. occ of 0 is allowed for
// pure arbitration points.
func (r *Resource) Acquire(now, occ uint64) uint64 {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	// start >= now by construction, but grant timestamps have arrived
	// out of order before (lazily reaped retirements); saturate rather
	// than wrap the wait accounting if they ever do again.
	wait := cyc.Sub(start, now)
	r.busyUntil = start + occ
	r.acquires++
	r.waitCycles += wait
	r.busyCycles += occ
	if r.trace != nil {
		r.trace.Emit(obsv.Event{
			Cycle: start,
			Addr:  r.bank,
			Arg:   uint32(occ),
			Arg2:  uint32(wait),
			Kind:  obsv.EvGrant,
			CPU:   -1,
			Res:   r.id,
		})
	}
	return start
}

// FreeAt returns the earliest cycle at or after now at which the
// resource could start a new request, without reserving it.
func (r *Resource) FreeAt(now uint64) uint64 {
	if r.busyUntil > now {
		return r.busyUntil
	}
	return now
}

// ResourceStats is a snapshot of a resource's contention counters.
type ResourceStats struct {
	Name       string
	Acquires   uint64
	WaitCycles uint64
	BusyCycles uint64
}

// Stats returns the resource's counters.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{Name: r.Name, Acquires: r.acquires, WaitCycles: r.waitCycles, BusyCycles: r.busyCycles}
}

// Banks is a set of identically-configured parallel resources (the banks
// of a banked cache behind a crossbar). Bank selection is done by the
// caller (cache.BankOf), keeping address interleaving in one place.
type Banks []Resource

// NewBanks creates n banks named name[0..n).
func NewBanks(name string, n int) Banks {
	b := make(Banks, n)
	for i := range b {
		b[i].Name = name
	}
	return b
}

// Acquire reserves bank i.
func (b Banks) Acquire(i uint32, now, occ uint64) uint64 {
	return b[i].Acquire(now, occ)
}

// Instrument attaches a tracer to every bank, numbering them 0..n.
func (b Banks) Instrument(tr obsv.Tracer, id obsv.ResID) {
	for i := range b {
		b[i].Instrument(tr, id, uint32(i))
	}
}

// Stats sums the counters of all banks.
func (b Banks) Stats() ResourceStats {
	var s ResourceStats
	for i := range b {
		st := b[i].Stats()
		s.Name = st.Name
		s.Acquires += st.Acquires
		s.WaitCycles += st.WaitCycles
		s.BusyCycles += st.BusyCycles
	}
	return s
}
