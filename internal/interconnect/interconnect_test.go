package interconnect

import (
	"testing"
	"testing/quick"
)

func TestAcquireIdle(t *testing.T) {
	var r Resource
	if start := r.Acquire(10, 2); start != 10 {
		t.Fatalf("start = %d, want 10", start)
	}
	if start := r.Acquire(12, 2); start != 12 {
		t.Fatalf("back-to-back start = %d, want 12", start)
	}
}

func TestAcquireQueues(t *testing.T) {
	var r Resource
	r.Acquire(10, 6)
	if start := r.Acquire(11, 6); start != 16 {
		t.Fatalf("queued start = %d, want 16", start)
	}
	s := r.Stats()
	if s.Acquires != 2 || s.WaitCycles != 5 || s.BusyCycles != 12 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFreeAtDoesNotReserve(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	if got := r.FreeAt(5); got != 10 {
		t.Errorf("FreeAt = %d, want 10", got)
	}
	if got := r.FreeAt(20); got != 20 {
		t.Errorf("FreeAt past busy = %d, want 20", got)
	}
	// FreeAt must not have consumed the slot.
	if start := r.Acquire(5, 1); start != 10 {
		t.Errorf("Acquire after FreeAt = %d, want 10", start)
	}
}

func TestZeroOccupancyArbitration(t *testing.T) {
	var r Resource
	a := r.Acquire(5, 0)
	b := r.Acquire(5, 0)
	if a != 5 || b != 5 {
		t.Errorf("zero-occupancy acquires = %d, %d", a, b)
	}
}

func TestBanksAreIndependent(t *testing.T) {
	b := NewBanks("l1", 4)
	s0 := b.Acquire(0, 10, 4)
	s1 := b.Acquire(1, 10, 4)
	if s0 != 10 || s1 != 10 {
		t.Errorf("independent banks queued: %d %d", s0, s1)
	}
	if s := b.Acquire(0, 10, 4); s != 14 {
		t.Errorf("same bank should queue: %d", s)
	}
	sum := b.Stats()
	if sum.Acquires != 3 || sum.BusyCycles != 12 || sum.WaitCycles != 4 {
		t.Errorf("bank stats = %+v", sum)
	}
}

// Property: starts are monotone in request order and never overlap:
// consecutive grants on one resource are separated by >= occupancy.
func TestQuickNoOverlap(t *testing.T) {
	f := func(times []uint8, occs []uint8) bool {
		var r Resource
		now := uint64(0)
		prevStart := uint64(0)
		prevOcc := uint64(0)
		first := true
		for i, dt := range times {
			now += uint64(dt % 8)
			occ := uint64(1)
			if i < len(occs) {
				occ = uint64(occs[i]%4) + 1
			}
			start := r.Acquire(now, occ)
			if start < now {
				return false
			}
			if !first && start < prevStart+prevOcc {
				return false
			}
			prevStart, prevOcc, first = start, occ, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
