package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRegistryConcurrent hammers shared metrics from parallel
// goroutines (run under -race in make check) and verifies the totals.
func TestRegistryConcurrent(t *testing.T) {
	s := New()
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			busy := s.Runner.WorkerBusy.With("w")
			for i := 0; i < perWorker; i++ {
				s.Runner.JobsCompleted.Inc()
				s.Runner.QueueDepth.Add(1)
				s.Runner.QueueDepth.Add(-1)
				s.Runner.JobSeconds.Observe(0.01)
				s.Sim.CyclesTicked.Add(3)
				busy.Add(5)
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := s.Runner.JobsCompleted.Value(); got != n {
		t.Errorf("JobsCompleted = %d, want %d", got, n)
	}
	if got := s.Runner.QueueDepth.Value(); got != 0 {
		t.Errorf("QueueDepth = %d, want 0", got)
	}
	if got := s.Runner.JobSeconds.Count(); got != n {
		t.Errorf("JobSeconds.Count = %d, want %d", got, n)
	}
	if got, want := s.Runner.JobSeconds.Sum(), float64(n)*0.01; got < want*0.999 || got > want*1.001 {
		t.Errorf("JobSeconds.Sum = %g, want ~%g", got, want)
	}
	if got := s.Sim.CyclesTicked.Value(); got != 3*n {
		t.Errorf("CyclesTicked = %d, want %d", got, 3*n)
	}
	if got := s.Runner.WorkerBusy.With("w").Value(); got != 5*n {
		t.Errorf("WorkerBusy = %d, want %d", got, 5*n)
	}
}

// TestMetricOpsDoNotAllocate pins the enabled-path contract: every
// hot-path metric update is allocation-free, so telemetry can stay on
// for long campaigns.
func TestMetricOpsDoNotAllocate(t *testing.T) {
	s := New()
	busy := s.Runner.WorkerBusy.With("0")
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", func() { s.Runner.JobsCompleted.Inc() }},
		{"Counter.Add", func() { s.Sim.CyclesTicked.Add(17) }},
		{"Gauge.Set", func() { s.Runner.QueueDepth.Set(3) }},
		{"Gauge.Add", func() { s.Runner.QueueDepth.Add(-1) }},
		{"Histogram.Observe", func() { s.Runner.JobSeconds.Observe(0.25) }},
		{"CounterVec.With", func() { s.Runner.WorkerBusy.With("0").Inc() }},
		{"cached vec counter", func() { busy.Add(2) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	r.Counter("dup", "first", &c1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second", &c2)
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	r.Histogram("h", "", []float64{1, 2, 4}, &h)
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %g, want 2 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.95); got != 4 {
		t.Errorf("p95 = %g, want 4 (+Inf reports largest finite bound)", got)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

// populate fills a Set with fixed values for rendering tests.
func populate(s *Set) {
	s.Runner.JobsTotal.Add(4)
	s.Runner.JobsStarted.Add(4)
	s.Runner.JobsCompleted.Add(4)
	s.Runner.JobsFailed.Inc()
	s.Runner.Workers.Set(2)
	s.Runner.CacheHits.Add(1)
	s.Runner.CacheMisses.Add(3)
	s.Runner.JobSeconds.Observe(0.02)
	s.Runner.JobSeconds.Observe(0.04)
	s.Runner.JobSeconds.Observe(0.3)
	s.Runner.JobSeconds.Observe(0.6)
	s.Runner.WorkerBusy.With("0").Add(500_000_000)
	s.Runner.WorkerBusy.With("1").Add(460_000_000)
	s.Sim.CyclesTicked.Add(900_000)
	s.Sim.CyclesSkipped.Add(2_100_000)
	s.Sim.Windows.Add(4)
	s.Runner.RecordJob(JobRecord{Tag: "fft/smp-4x1", Seconds: 0.3, SimCycles: 1_500_000})
	s.Runner.RecordJob(JobRecord{Tag: "ear/mp-1x4", Seconds: 0.6, SimCycles: 1_500_000})
	s.Runner.RecordJob(JobRecord{Tag: "fft/cmp-4x1", Seconds: 0.02, SimCycles: 0, Cached: true})
	s.Runner.RecordJob(JobRecord{Tag: "ear/cmp-4x1", Seconds: 0.04, SimCycles: 0, Failed: true})
}

// TestWritePromDeterministic checks the Prometheus rendering is
// byte-stable and structurally sound.
func TestWritePromDeterministic(t *testing.T) {
	s := New()
	populate(s)
	var a, b bytes.Buffer
	if err := s.Reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renderings of the same state differ")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE sim_jobs_completed_total counter\nsim_jobs_completed_total 4\n",
		"# TYPE sim_job_wall_seconds histogram\n",
		`sim_job_wall_seconds_bucket{le="+Inf"} 4`,
		"sim_job_wall_seconds_count 4\n",
		`sim_worker_busy_nanoseconds_total{worker="0"} 500000000`,
		"sim_cycles_skipped_total 2100000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q", want)
		}
	}
	// Buckets must be cumulative: le="0.05" covers the 0.02 and 0.04
	// observations.
	if !strings.Contains(out, `sim_job_wall_seconds_bucket{le="0.05"} 2`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}

// TestRunReportGolden pins the deterministic text rendering of the run
// report against a golden file (regenerate with go test -run Golden
// -update).
func TestRunReportGolden(t *testing.T) {
	s := New()
	populate(s)
	report := s.BuildReport(1500 * time.Millisecond)
	var buf bytes.Buffer
	if err := report.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The JSON rendering must round-trip the same numbers.
	var js bytes.Buffer
	if err := report.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.JobsCompleted != 4 || back.CacheHitRate != 0.25 || len(back.Jobs) != 4 {
		t.Errorf("JSON round-trip mismatch: %+v", back)
	}
}

func TestHeartbeat(t *testing.T) {
	s := New()
	s.Runner.JobsTotal.Add(10)
	s.Runner.JobsCompleted.Add(4)
	s.Sim.CyclesTicked.Add(1000)
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	hw := s.StartHeartbeat(lockedW, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	hw.Stop()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) < 2 {
		t.Fatalf("expected several heartbeat lines, got %d", len(lines))
	}
	var hb Heartbeat
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatalf("final beat is not valid JSON: %v", err)
	}
	if hb.JobsTotal != 10 || hb.JobsDone != 4 || hb.SimCycles != 1000 {
		t.Errorf("final beat %+v, want jobs 4/10, cycles 1000", hb)
	}
	if hb.ETASeconds <= 0 {
		t.Errorf("ETASeconds = %g, want > 0 with 6 jobs remaining", hb.ETASeconds)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestServeEndpoints starts the HTTP endpoint on an ephemeral port and
// checks /metrics, /debug/vars and /debug/pprof all answer.
func TestServeEndpoints(t *testing.T) {
	s := New()
	populate(s)
	srv, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "sim_jobs_completed_total 4") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["telemetry"]; !ok {
		t.Error("/debug/vars missing telemetry map")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}
