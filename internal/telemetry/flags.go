package telemetry

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Flags is the shared driver glue: each cmd embeds one, registers the
// telemetry flags, calls Start after flag.Parse, points pool/config
// Telem fields at the returned Set, and defers Close. Keeping the
// lifecycle here means all four drivers expose identical flags and
// identical behavior.
type Flags struct {
	Addr     string
	Out      string
	Interval time.Duration

	Report    bool
	ReportOut string

	set     *Set
	srv     *Server
	hb      *HeartbeatWriter
	outFile *os.File
}

// Register adds the telemetry flags to the default flag set.
func (f *Flags) Register() {
	flag.StringVar(&f.Addr, "telemetry-addr", "",
		"serve live host telemetry on this address: /metrics (Prometheus text), /debug/pprof, /debug/vars (use :0 for an ephemeral port)")
	flag.StringVar(&f.Out, "telemetry-out", "",
		"append periodic JSONL heartbeats (progress, ETA, throughput) to this file; \"-\" writes to stderr")
	flag.DurationVar(&f.Interval, "telemetry-interval", 10*time.Second,
		"heartbeat interval for -telemetry-out")
}

// RegisterReport adds the end-of-campaign report flags (campaign
// drivers only: cmd/experiments and cmd/sweep).
func (f *Flags) RegisterReport() {
	flag.BoolVar(&f.Report, "run-report", false,
		"print a deterministic end-of-campaign run report to stderr")
	flag.StringVar(&f.ReportOut, "run-report-out", "",
		"write the end-of-campaign run report as JSON to this file")
}

// Enabled reports whether any telemetry output was requested. When
// false, drivers leave every Telem pointer nil and instrumented code
// stays on its zero-cost disabled path.
func (f *Flags) Enabled() bool {
	return f.Addr != "" || f.Out != "" || f.Report || f.ReportOut != ""
}

// Start creates the Set and starts the requested outputs (HTTP
// endpoint, heartbeat writer). Returns nil, nil when no telemetry flag
// was set. The bound HTTP address is announced on stderr so `:0`
// invocations are scrapable.
func (f *Flags) Start() (*Set, error) {
	if !f.Enabled() {
		return nil, nil
	}
	f.set = New()
	if f.Addr != "" {
		srv, err := f.set.Serve(f.Addr)
		if err != nil {
			return nil, err
		}
		f.srv = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr)
	}
	if f.Out != "" {
		w := os.Stderr
		if f.Out != "-" {
			file, err := os.OpenFile(f.Out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				f.srv.Close()
				return nil, fmt.Errorf("telemetry: open %s: %w", f.Out, err)
			}
			f.outFile = file
			w = file
		}
		f.hb = f.set.StartHeartbeat(w, f.Interval)
	}
	return f.set, nil
}

// Close stops the heartbeat writer (emitting a final beat), renders
// the run report if requested, and shuts down the HTTP server. Safe to
// call when Start was never called or returned nil.
func (f *Flags) Close() error {
	if f.set == nil {
		return nil
	}
	f.hb.Stop()
	if f.outFile != nil {
		_ = f.outFile.Close()
	}
	var firstErr error
	if f.Report || f.ReportOut != "" {
		report := f.set.BuildReport(f.set.Elapsed())
		if f.Report {
			if err := report.WriteText(os.Stderr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.ReportOut != "" {
			file, err := os.Create(f.ReportOut)
			if err == nil {
				err = report.WriteJSON(file)
				if cerr := file.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("telemetry: run report: %w", err)
			}
		}
	}
	if err := f.srv.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
