package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is a live telemetry HTTP endpoint started by Serve. Close
// shuts it down; Addr reports the bound address (useful with ":0").
type Server struct {
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Close stops the server immediately. Safe on a nil receiver so
// drivers can `defer srv.Close()` without caring whether telemetry is
// enabled.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// expvar.Publish panics on a duplicate name, so the process-global
// "telemetry" var is published once and reads whichever Set served
// most recently.
var (
	expvarOnce sync.Once
	activeSet  atomic.Pointer[Set]
)

// Serve starts an HTTP server on addr exposing the campaign's host
// telemetry:
//
//	/metrics     Prometheus text-format dump of the registry
//	/debug/pprof host CPU/heap/goroutine profiles (net/http/pprof)
//	/debug/vars  expvar JSON, including the registry under "telemetry"
//
// The handlers are mounted on a private mux, so a driver can hold the
// default mux for its own use. addr may end in ":0" to bind an
// ephemeral port; the chosen address is in the returned Server.
func (s *Set) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}

	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			if cur := activeSet.Load(); cur != nil {
				return cur.Reg.expvarMap()
			}
			return map[string]any{}
		}))
	})
	activeSet.Store(s)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Reg.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}
