package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// RunReport is the deterministic end-of-campaign summary printed by
// cmd/experiments and cmd/sweep: wall time, throughput, cache
// effectiveness, worker utilization, per-job rows, and a full metric
// dump. Everything except the wall-clock figures is a pure function of
// the metric state, and the rendering is sorted, so two reports built
// from the same state and elapsed time are byte-identical — which is
// what the golden-file test pins down.
type RunReport struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	JobsTotal     uint64  `json:"jobs_total"`
	JobsCompleted uint64  `json:"jobs_completed"`
	JobsFailed    uint64  `json:"jobs_failed"`
	JobsPerSec    float64 `json:"jobs_per_sec"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheCorrupt uint64  `json:"cache_corrupt"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	SimCyclesTicked  uint64  `json:"sim_cycles_ticked"`
	SimCyclesSkipped uint64  `json:"sim_cycles_skipped"`
	SimWindows       uint64  `json:"sim_windows"`
	SimCyclesPerSec  float64 `json:"sim_cycles_per_sec"`
	SkipFraction     float64 `json:"skip_fraction"`

	Workers     int64   `json:"workers"`
	Utilization float64 `json:"utilization"` // busy worker-seconds / (elapsed * workers)

	// JobWallP50/P95 are bucket-upper-bound quantile estimates of the
	// per-job wall-clock histogram, in seconds.
	JobWallP50 float64 `json:"job_wall_p50"`
	JobWallP95 float64 `json:"job_wall_p95"`

	// Jobs lists completed jobs sorted by tag (ties by completion
	// order) so the report is independent of worker scheduling.
	Jobs []JobRecord `json:"jobs"`

	// Metrics is the full registry dump, sorted by name.
	Metrics []MetricSnapshot `json:"metrics"`
}

// BuildReport assembles the report for the given campaign wall time.
// Elapsed is a parameter, not read from the clock, so tests can build
// reports with a fixed value and golden-match the rendering; drivers
// pass set.Elapsed().
func (s *Set) BuildReport(elapsed time.Duration) *RunReport {
	r := &RunReport{
		ElapsedSeconds:   elapsed.Seconds(),
		JobsTotal:        s.Runner.JobsTotal.Value(),
		JobsCompleted:    s.Runner.JobsCompleted.Value(),
		JobsFailed:       s.Runner.JobsFailed.Value(),
		CacheHits:        s.Runner.CacheHits.Value(),
		CacheMisses:      s.Runner.CacheMisses.Value(),
		CacheCorrupt:     s.Runner.CacheCorrupt.Value(),
		SimCyclesTicked:  s.Sim.CyclesTicked.Value(),
		SimCyclesSkipped: s.Sim.CyclesSkipped.Value(),
		SimWindows:       s.Sim.Windows.Value(),
		Workers:          s.Runner.Workers.Value(),
		JobWallP50:       s.Runner.JobSeconds.Quantile(0.50),
		JobWallP95:       s.Runner.JobSeconds.Quantile(0.95),
		Jobs:             s.Runner.Jobs(),
		Metrics:          s.Reg.Snapshot(),
	}
	if r.ElapsedSeconds > 0 {
		r.JobsPerSec = float64(r.JobsCompleted) / r.ElapsedSeconds
		r.SimCyclesPerSec = float64(r.SimCyclesTicked+r.SimCyclesSkipped) / r.ElapsedSeconds
	}
	if probes := r.CacheHits + r.CacheMisses; probes > 0 {
		r.CacheHitRate = float64(r.CacheHits) / float64(probes)
	}
	if cycles := r.SimCyclesTicked + r.SimCyclesSkipped; cycles > 0 {
		r.SkipFraction = float64(r.SimCyclesSkipped) / float64(cycles)
	}
	if r.Workers > 0 && r.ElapsedSeconds > 0 {
		var busyNS uint64
		for _, ns := range s.Runner.WorkerBusy.snapshot() {
			busyNS += ns
		}
		r.Utilization = float64(busyNS) / 1e9 / (r.ElapsedSeconds * float64(r.Workers))
	}
	sort.SliceStable(r.Jobs, func(i, j int) bool { return r.Jobs[i].Tag < r.Jobs[j].Tag })
	return r
}

// f3 renders a float with 3 decimals — enough resolution for a human
// report, stable across platforms.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// WriteText renders the report as sorted, aligned text.
func (r *RunReport) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("== run report ==\n")
	p("wall time          %ss\n", f3(r.ElapsedSeconds))
	p("jobs               %d total, %d completed, %d failed (%s jobs/s)\n",
		r.JobsTotal, r.JobsCompleted, r.JobsFailed, f3(r.JobsPerSec))
	p("cache              %d hits, %d misses, %d corrupt (hit rate %s)\n",
		r.CacheHits, r.CacheMisses, r.CacheCorrupt, f3(r.CacheHitRate))
	p("sim cycles         %d ticked, %d skipped (skip fraction %s) in %d windows\n",
		r.SimCyclesTicked, r.SimCyclesSkipped, f3(r.SkipFraction), r.SimWindows)
	p("host throughput    %s sim-cycles/s\n", f3(r.SimCyclesPerSec))
	p("workers            %d (utilization %s)\n", r.Workers, f3(r.Utilization))
	p("job wall clock     p50 %ss, p95 %ss\n", f3(r.JobWallP50), f3(r.JobWallP95))
	if len(r.Jobs) > 0 {
		p("jobs by tag:\n")
		for _, j := range r.Jobs {
			note := ""
			if j.Cached {
				note = " (cached)"
			}
			if j.Failed {
				note = " (FAILED)"
			}
			cps := 0.0
			if j.Seconds > 0 {
				cps = float64(j.SimCycles) / j.Seconds
			}
			p("  %-40s %ss %12d cycles %14s cyc/s%s\n",
				j.Tag, f3(j.Seconds), j.SimCycles, f3(cps), note)
		}
	}
	p("metrics:\n")
	for _, m := range r.Metrics {
		switch {
		case m.Counter != nil:
			p("  %s %d\n", m.Name, *m.Counter)
		case m.Value != nil:
			p("  %s %d\n", m.Name, *m.Value)
		case m.Histogram != nil:
			p("  %s count %d sum %s\n", m.Name, m.Histogram.Count, f3(m.Histogram.Sum))
		case m.Labels != nil:
			keys := make([]string, 0, len(m.Labels))
			for k := range m.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p("  %s{%s} %d\n", m.Name, k, m.Labels[k])
			}
		}
	}
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
