package telemetry

import (
	"sync"
	"time"
)

// RunnerMetrics is the internal/runner worker pool's instrument panel.
// The pool holds a nil *RunnerMetrics when telemetry is off (every
// update site is nil-guarded); New wires an enabled instance into the
// registry. All fields are updated with single atomic operations from
// worker goroutines.
//
// Every metric field must be registered in register — the statreg lint
// analyzer flags a telemetry metric field that is incremented but never
// exported.
type RunnerMetrics struct {
	JobsTotal     Counter   // jobs submitted to the pool, cumulative across Run calls
	JobsStarted   Counter   // jobs picked up by a worker
	JobsCompleted Counter   // jobs finished (simulated, cached or failed)
	JobsFailed    Counter   // jobs that finished with an error
	QueueDepth    Gauge     // submitted jobs not yet picked up
	Workers       Gauge     // worker goroutines of the most recent Run call
	JobSeconds    Histogram // per-job wall clock, seconds
	WorkerBusy    *CounterVec

	CacheHits    Counter // result-cache probes satisfied without simulating
	CacheMisses  Counter // probes that fell through to simulation
	CacheCorrupt Counter // probes that failed on an unreadable or corrupt entry

	// Attachment accounting: jobs carrying guest-observability
	// instruments run slower and bypass the cache, so a farm operator
	// wants them visible.
	JobsTraced   Counter // jobs with an event tracer attached
	JobsSampled  Counter // jobs with an interval-metrics sampler attached
	JobsProfiled Counter // jobs with a cycle-attribution profiler attached
	JobsChecked  Counter // jobs with the runtime sanitizer attached
	TraceEvents  Counter // trace events emitted by completed jobs' rings
	TraceDropped Counter // trace events dropped by completed jobs' rings

	mu   sync.Mutex
	jobs []JobRecord
}

// register wires every metric into the registry under its exported
// name. The &field arguments are the statreg analyzer's evidence that a
// counter is exported.
func (m *RunnerMetrics) register(r *Registry) {
	r.Counter("sim_jobs_total", "simulation jobs submitted to the worker pool", &m.JobsTotal)
	r.Counter("sim_jobs_started_total", "jobs picked up by a worker", &m.JobsStarted)
	r.Counter("sim_jobs_completed_total", "jobs finished (simulated, cached or failed)", &m.JobsCompleted)
	r.Counter("sim_jobs_failed_total", "jobs that finished with an error", &m.JobsFailed)
	r.Gauge("sim_job_queue_depth", "submitted jobs not yet picked up by a worker", &m.QueueDepth)
	r.Gauge("sim_workers", "worker goroutines of the current pool run", &m.Workers)
	r.Histogram("sim_job_wall_seconds", "per-job wall-clock time", DurationBuckets(), &m.JobSeconds)
	m.WorkerBusy = r.CounterVec("sim_worker_busy_nanoseconds_total", "wall-clock nanoseconds each worker spent executing jobs", "worker")
	r.Counter("sim_cache_hits_total", "result-cache probes satisfied without simulating", &m.CacheHits)
	r.Counter("sim_cache_misses_total", "result-cache probes that fell through to simulation", &m.CacheMisses)
	r.Counter("sim_cache_corrupt_total", "result-cache probes that failed on an unreadable or corrupt entry", &m.CacheCorrupt)
	r.Counter("sim_jobs_traced_total", "jobs carrying an event tracer", &m.JobsTraced)
	r.Counter("sim_jobs_sampled_total", "jobs carrying an interval-metrics sampler", &m.JobsSampled)
	r.Counter("sim_jobs_profiled_total", "jobs carrying a cycle-attribution profiler", &m.JobsProfiled)
	r.Counter("sim_jobs_checked_total", "jobs carrying the runtime sanitizer", &m.JobsChecked)
	r.Counter("sim_trace_events_total", "trace events emitted by completed jobs", &m.TraceEvents)
	r.Counter("sim_trace_dropped_total", "trace events dropped by completed jobs' rings", &m.TraceDropped)
}

// JobRecord is one completed job's host-side summary, recorded by the
// pool for the end-of-campaign run report.
type JobRecord struct {
	Tag       string  `json:"tag"`
	Seconds   float64 `json:"seconds"`
	SimCycles uint64  `json:"sim_cycles"`
	Cached    bool    `json:"cached,omitempty"`
	Failed    bool    `json:"failed,omitempty"`
}

// RecordJob appends one completed job's record (concurrency-safe).
func (m *RunnerMetrics) RecordJob(rec JobRecord) {
	m.mu.Lock()
	m.jobs = append(m.jobs, rec)
	m.mu.Unlock()
}

// Jobs returns a copy of the recorded jobs in completion order.
func (m *RunnerMetrics) Jobs() []JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobRecord, len(m.jobs))
	copy(out, m.jobs)
	return out
}

// SimMetrics is the core cycle loop's instrument panel, carried to
// every machine through memsys.Config.Telem (a shared pointer: all
// concurrent runs of a campaign accumulate into one panel). The cycle
// loop batches updates locally and flushes them with a handful of
// atomic adds per flush window, so the per-cycle cost is one branch.
type SimMetrics struct {
	CyclesTicked  Counter // cycle-loop iterations actually executed
	CyclesSkipped Counter // cycles fast-forwarded by the quiescence-skipping scheduler
	Windows       Counter // RunWindow invocations

	// Parallel-tick instrumentation (zero when every machine runs the
	// serial loop). ParWindows counts barrier-delimited scheduling
	// windows; GateWaits counts tick-gate Sync calls that found a peer
	// CPU still behind in the service rotation and had to spin — the
	// direct measure of cross-shard serialization. LocalSkipped counts
	// per-CPU cycles the workers fast-forwarded inside windows (the
	// sharded counterpart of CyclesSkipped; it is per-CPU work, not
	// machine cycles, so it is deliberately excluded from Cycles).
	ParWindows   Counter
	GateWaits    Counter
	LocalSkipped Counter
	ShardTicks   *CounterVec // per-shard executed CPU ticks: utilization balance

	// Epoch-grant instrumentation: when the coordinator carries per-CPU
	// safe horizons across a quiet window boundary, a CPU whose horizon
	// already clears the new window is granted the whole epoch without a
	// single tick. EpochGrants counts granted window entries;
	// EpochGrantedCycles counts the per-CPU cycles those grants covered —
	// together the live measure of how much re-proving (and peer
	// spinning) the horizon carry eliminates.
	EpochGrants        Counter
	EpochGrantedCycles Counter

	// GateWaitsBySite splits GateWaits by the shared-access site whose
	// gate spun (access/ifetch/ll-reserve/sc-check/clear-reserve/
	// syscall/mxs-image) — the live /metrics view of the attribution
	// that internal/hostprof records in full detail.
	GateWaitsBySite *CounterVec
}

// register wires the cycle-loop metrics into the registry.
func (m *SimMetrics) register(r *Registry) {
	r.Counter("sim_cycles_ticked_total", "cycle-loop iterations executed across all runs", &m.CyclesTicked)
	r.Counter("sim_cycles_skipped_total", "cycles fast-forwarded by the quiescence-skipping scheduler", &m.CyclesSkipped)
	r.Counter("sim_windows_total", "core RunWindow invocations", &m.Windows)
	r.Counter("sim_par_windows_total", "parallel-tick scheduling windows executed", &m.ParWindows)
	r.Counter("sim_gate_waits_total", "tick-gate syncs that spun for a rotation-order grant", &m.GateWaits)
	r.Counter("sim_local_skipped_cpu_cycles_total", "per-CPU cycles fast-forwarded inside parallel windows", &m.LocalSkipped)
	m.ShardTicks = r.CounterVec("sim_shard_ticks_total", "CPU ticks executed by each parallel-tick shard", "shard")
	r.Counter("sim_epoch_grants_total", "whole-window epoch grants from carried safe horizons", &m.EpochGrants)
	r.Counter("sim_epoch_granted_cycles_total", "per-CPU cycles covered by epoch grants at window entry", &m.EpochGrantedCycles)
	m.GateWaitsBySite = r.CounterVec("sim_gate_waits_by_site_total", "tick-gate syncs that spun, by shared-access site", "site")
}

// Cycles returns total simulated cycles advanced (ticked + skipped) —
// the numerator of the host sim-cycles/sec throughput figure.
func (m *SimMetrics) Cycles() uint64 {
	return m.CyclesTicked.Value() + m.CyclesSkipped.Value()
}

// Set bundles one campaign's registry and instrument panels. Drivers
// create one Set per process, point the pool at Runner and every job
// config at Sim, and expose the registry through Serve, StartHeartbeat
// and BuildReport.
type Set struct {
	Reg    *Registry
	Runner *RunnerMetrics
	Sim    *SimMetrics

	start time.Time
}

// New builds a Set with every metric registered.
func New() *Set {
	s := &Set{
		Reg:    NewRegistry(),
		Runner: &RunnerMetrics{},
		Sim:    &SimMetrics{},
		start:  time.Now(),
	}
	s.Runner.register(s.Reg)
	s.Sim.register(s.Reg)
	return s
}

// Elapsed returns wall time since the Set was created.
func (s *Set) Elapsed() time.Duration { return time.Since(s.start) }
