// Package telemetry is the simulator's host-side observability layer:
// a concurrency-safe metrics registry (counters, gauges, histograms
// with fixed bucket layouts) that the experiment drivers expose as a
// live Prometheus-style /metrics endpoint, periodic JSONL heartbeats,
// and a deterministic end-of-campaign run report.
//
// It is the operational complement of internal/obsv and internal/prof:
// those observe the *guest* — simulated cycles, coherence events,
// per-PC stall attribution — while telemetry observes the *host* — how
// fast the simulator itself is running, how busy the worker pool is,
// how effective the result cache is. Guest observability must be
// byte-deterministic; host telemetry is wall-clock-dependent by nature
// and therefore lives strictly outside the simulated state: no metric
// here can influence simulation output.
//
// The enabled/disabled discipline mirrors internal/obsv: instrumented
// code holds a nil-able pointer to its metrics struct (RunnerMetrics in
// internal/runner, SimMetrics via memsys.Config.Telem in the core cycle
// loop) and guards every update with a nil check, so disabled telemetry
// costs one pointer comparison and zero allocations. Enabled updates
// are single atomic operations and also allocation-free, so telemetry
// can stay on even for long farm campaigns.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; updates are atomic and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric (queue depth, worker count).
// The zero value is ready to use; updates are atomic.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DurationBuckets returns the fixed bucket layout used for wall-clock
// histograms: upper bounds in seconds on a 1-2.5-5 decade ladder from
// 1ms to 250s. Returned fresh so a caller cannot mutate the layout
// under a registered histogram.
func DurationBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
	}
}

// Histogram is a fixed-bucket-layout distribution metric. The bucket
// bounds are set once at registration (Registry.Histogram) and never
// change; Observe is lock-free and allocation-free. A Histogram must be
// registered before use — observing on an uninitialized histogram only
// feeds the +Inf bucket.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; observations > last land in counts[len(bounds)]
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// init installs the fixed bucket layout. Called by Registry.Histogram.
func (h *Histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if len(h.counts) > 0 {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0..1):
// the smallest bucket bound whose cumulative count covers q of the
// observations (+Inf reports the largest finite bound). Zero when
// nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.counts) == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= want {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot copies the bucket counts (non-cumulative), count and sum.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, used by the
// JSON report and the expvar dump. Counts is per-bucket
// (non-cumulative); its last entry is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// CounterVec is a set of counters distinguished by one label value
// (e.g. per-worker busy time). Labels are created on first use; With is
// a read-lock map hit after that, so callers on a hot-ish path should
// cache the returned *Counter.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Label returns the vec's label name.
func (v *CounterVec) Label() string { return v.label }

// snapshot copies the per-label values.
func (v *CounterVec) snapshot() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}
