package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Heartbeat is one periodic JSONL progress line emitted by
// StartHeartbeat: a compact campaign health snapshot for tailing a log
// file or feeding a dashboard without scraping /metrics.
type Heartbeat struct {
	// Time is the emission wall-clock time, RFC 3339 with millisecond
	// precision.
	Time string `json:"time"`
	// ElapsedSeconds is wall time since the Set was created.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// JobsTotal/JobsDone/JobsFailed are the pool's cumulative counts.
	JobsTotal  uint64 `json:"jobs_total"`
	JobsDone   uint64 `json:"jobs_done"`
	JobsFailed uint64 `json:"jobs_failed,omitempty"`
	// JobsPerSec is the completion rate over the whole campaign so far.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// ETASeconds estimates time to finish the remaining jobs at the
	// current completion rate; omitted until at least one job finished.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// SimCycles is total simulated cycles advanced (ticked + skipped).
	SimCycles uint64 `json:"sim_cycles"`
	// SimCyclesPerSec is the *interval* simulation throughput: cycles
	// advanced since the previous beat over the beat interval.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	// CacheHits/CacheMisses are the result-cache counters.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
}

// beat builds the heartbeat for the current instant. prevCycles and
// prevTime are the previous beat's cycle count and time, for the
// interval throughput figure.
func (s *Set) beat(now time.Time, prevCycles uint64, prevTime time.Time) Heartbeat {
	elapsed := now.Sub(s.start).Seconds()
	done := s.Runner.JobsCompleted.Value()
	total := s.Runner.JobsTotal.Value()
	cycles := s.Sim.Cycles()
	hb := Heartbeat{
		Time:           now.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		ElapsedSeconds: elapsed,
		JobsTotal:      total,
		JobsDone:       done,
		JobsFailed:     s.Runner.JobsFailed.Value(),
		SimCycles:      cycles,
		CacheHits:      s.Runner.CacheHits.Value(),
		CacheMisses:    s.Runner.CacheMisses.Value(),
	}
	if elapsed > 0 {
		hb.JobsPerSec = float64(done) / elapsed
	}
	if done > 0 && total > done && hb.JobsPerSec > 0 {
		hb.ETASeconds = float64(total-done) / hb.JobsPerSec
	}
	if dt := now.Sub(prevTime).Seconds(); dt > 0 && cycles >= prevCycles {
		hb.SimCyclesPerSec = float64(cycles-prevCycles) / dt
	}
	return hb
}

// HeartbeatWriter emits JSONL heartbeats on a fixed interval until
// stopped. Created by StartHeartbeat.
type HeartbeatWriter struct {
	mu   sync.Mutex
	w    io.Writer
	s    *Set
	stop chan struct{}
	done chan struct{}

	prevCycles uint64
	prevTime   time.Time
}

// StartHeartbeat starts a goroutine writing one JSON heartbeat line to
// w every interval. Stop emits a final beat and waits for the
// goroutine to exit. A non-positive interval defaults to 10s.
func (s *Set) StartHeartbeat(w io.Writer, interval time.Duration) *HeartbeatWriter {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	hw := &HeartbeatWriter{
		w:        w,
		s:        s,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		prevTime: time.Now(),
	}
	go func() {
		defer close(hw.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				hw.emit()
			case <-hw.stop:
				return
			}
		}
	}()
	return hw
}

// emit writes one beat line, tracking interval state under the lock.
func (hw *HeartbeatWriter) emit() {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	now := time.Now()
	hb := hw.s.beat(now, hw.prevCycles, hw.prevTime)
	hw.prevCycles = hb.SimCycles
	hw.prevTime = now
	b, err := json.Marshal(hb)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = hw.w.Write(b)
}

// Stop halts the ticker and emits one final beat so the last line
// always reflects the finished campaign. Safe on a nil receiver; call
// once.
func (hw *HeartbeatWriter) Stop() {
	if hw == nil {
		return
	}
	close(hw.stop)
	<-hw.done
	hw.emit()
}
