package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates registered metric shapes.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterVec
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "?"
}

// entry is one registered metric.
type entry struct {
	name, help string
	kind       kind
	c          *Counter
	g          *Gauge
	h          *Histogram
	v          *CounterVec
}

// Registry names and exposes metrics. Instrument structs own their
// metrics as plain value fields (so updates are direct atomic ops with
// no registry involvement) and register each field once at
// construction; the registry only renders. Registration is
// mutex-guarded; rendering takes a consistent snapshot under the same
// lock. Output is sorted by metric name, so two renderings of the same
// state are byte-identical.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// add registers one entry, panicking on a duplicate or empty name —
// both are programmer errors in the fixed metric catalog, not runtime
// conditions.
func (r *Registry) add(e entry) {
	if e.name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic("telemetry: duplicate metric " + e.name)
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Counter registers c under name.
func (r *Registry) Counter(name, help string, c *Counter) {
	r.add(entry{name: name, help: help, kind: kindCounter, c: c})
}

// Gauge registers g under name.
func (r *Registry) Gauge(name, help string, g *Gauge) {
	r.add(entry{name: name, help: help, kind: kindGauge, g: g})
}

// Histogram registers h under name and installs its fixed bucket
// layout (ascending upper bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, h *Histogram) {
	h.init(bounds)
	r.add(entry{name: name, help: help, kind: kindHistogram, h: h})
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, m: map[string]*Counter{}}
	r.add(entry{name: name, help: help, kind: kindCounterVec, v: v})
	return v
}

// sortedEntries copies the entry list sorted by name.
func (r *Registry) sortedEntries() []entry {
	r.mu.Lock()
	es := make([]entry, len(r.entries))
	copy(es, r.entries)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// fnum renders a float the way the Prometheus text format expects:
// shortest round-trip representation.
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePlain writes every metric as sorted "name value" lines —
// the run report's reconciliation section and the test-friendly dump.
// Vec members render as name{label="value"}.
func (r *Registry) WritePlain(w io.Writer) error {
	for _, e := range r.sortedEntries() {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value())
		case kindHistogram:
			s := e.h.snapshot()
			_, err = fmt.Fprintf(w, "%s_count %d\n%s_sum %s\n", e.name, s.Count, e.name, fnum(s.Sum))
		case kindCounterVec:
			vals := e.v.snapshot()
			labels := make([]string, 0, len(vals))
			for l := range vals {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", e.name, e.v.label, l, vals[l]); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative histogram
// buckets with le labels, _sum and _count series. Deterministic for a
// given metric state: metrics sort by name, vec members by label.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, e := range r.sortedEntries() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			e.name, strings.ReplaceAll(e.help, "\n", " "), e.name, e.kind); err != nil {
			return err
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value())
		case kindHistogram:
			s := e.h.snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fnum(s.Bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, le, cum); err != nil {
					break
				}
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", e.name, fnum(s.Sum), e.name, s.Count)
			}
		case kindCounterVec:
			vals := e.v.snapshot()
			labels := make([]string, 0, len(vals))
			for l := range vals {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", e.name, e.v.label, l, vals[l]); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MetricSnapshot is one metric's point-in-time value in the JSON run
// report and the expvar dump. Exactly one of Value (counter/gauge),
// Histogram, or Labels (vec) is populated.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Value     *int64             `json:"value,omitempty"`
	Counter   *uint64            `json:"count,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
	Labels    map[string]uint64  `json:"labels,omitempty"`
}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	es := r.sortedEntries()
	out := make([]MetricSnapshot, 0, len(es))
	for _, e := range es {
		m := MetricSnapshot{Name: e.name, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			v := e.c.Value()
			m.Counter = &v
		case kindGauge:
			v := e.g.Value()
			m.Value = &v
		case kindHistogram:
			s := e.h.snapshot()
			m.Histogram = &s
		case kindCounterVec:
			m.Labels = e.v.snapshot()
		}
		out = append(out, m)
	}
	return out
}

// expvarMap renders the registry as a plain name→value map for the
// /debug/vars integration.
func (r *Registry) expvarMap() map[string]any {
	out := map[string]any{}
	for _, m := range r.Snapshot() {
		switch {
		case m.Counter != nil:
			out[m.Name] = *m.Counter
		case m.Value != nil:
			out[m.Name] = *m.Value
		case m.Histogram != nil:
			out[m.Name] = *m.Histogram
		case m.Labels != nil:
			out[m.Name] = m.Labels
		}
	}
	return out
}
