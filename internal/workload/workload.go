// Package workload implements the paper's seven benchmarks as real
// guest programs for the simulator: the hand-parallelized applications
// (Eqntott, MP3D, Ocean, Volpack), the compiler-parallelized ones (Ear,
// FFT), and the multiprogramming + OS workload (pmake). Each workload
// builds its program with the assembler DSL, lays out its data to
// reproduce the paper's working-set and sharing characteristics, and
// validates the guest's numeric results against a Go reference
// implementation, so every simulation run is also a correctness check
// of the whole simulator stack.
package workload

import (
	"fmt"
	"sort"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/mem"
	"cmpsim/internal/memsys"
)

// Standard guest memory layout for the parallel applications (the
// multiprogramming workload defines its own segmented layout).
const (
	TextBase  = 0x0000_1000
	DataBase  = 0x0010_0000 // 1 MiB: far enough for any program text
	StackTop  = 0x01f0_0000 // stacks grow down from here
	StackSize = 0x0001_0000 // 64 KiB per thread
	MemBytes  = 0x0200_0000 // 32 MiB physical memory
)

// Workload is one benchmark: it configures a machine (programs,
// contexts, trap handler) and validates the results afterwards.
type Workload interface {
	// Name is the registry key ("eqntott", "mp3d", ...).
	Name() string
	// Description is a one-line summary for the CLI.
	Description() string
	// MemBytes is the physical memory the machine needs.
	MemBytes() uint32
	// Threads is the number of contexts the workload creates.
	Threads() int
	// Configure loads programs and creates contexts on m.
	Configure(m *core.Machine) error
	// Validate checks the guest's results against the Go reference.
	Validate(m *core.Machine) error
}

// builders maps workload names to default-parameter constructors.
var builders = map[string]func() Workload{}

// register adds a constructor; called from each workload's init.
func register(name string, f func() Workload) { builders[name] = f }

// New returns the named workload with the paper-scaled default
// parameters.
func New(name string) (Workload, error) {
	f, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// NewQuick returns the named workload with reduced data sets: large
// enough to exercise every architecture's sharing patterns, small
// enough for smoke runs. This is the single source of the quick
// parameters used by `experiments -quick`, `cmpsim -quick`, and the
// sanitized smoke tests in make check.
func NewQuick(name string) (Workload, error) {
	switch name {
	case "eqntott":
		return NewEqntott(EqntottParams{Words: 128, Iters: 60}), nil
	case "mp3d":
		return NewMP3D(MP3DParams{Particles: 2048, Steps: 2}), nil
	case "ocean":
		return NewOcean(OceanParams{N: 66, FineIter: 3, CoarseIt: 2}), nil
	case "volpack":
		return NewVolpack(VolpackParams{Size: 32, Depth: 16}), nil
	case "ear":
		return NewEar(EarParams{Samples: 400}), nil
	case "fft":
		return NewFFT(FFTParams{N: 64, Batches: 16}), nil
	case "pmake":
		return NewPmake(PmakeParams{Procs: 6, Funcs: 48, Passes: 4}), nil
	}
	return nil, fmt.Errorf("workload: no quick variant of %q (have %v)", name, Names())
}

// Names lists registered workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// setupSPMD loads p and creates n contexts starting at "start" with the
// thread id in A0, each with its own stack, sharing one identity address
// space (threads of a single parallel process).
func setupSPMD(m *core.Machine, p *asm.Program, n int) {
	m.LoadProgram(p, 0)
	for i := 0; i < n; i++ {
		ctx := &cpu.Context{
			Space: mem.Identity{Limit: m.Img.Size()},
			TID:   i,
			PC:    p.Addr("start"),
		}
		ctx.Regs[isa.RegSP] = StackTop - uint32(i)*StackSize
		ctx.Regs[isa.RegArg0] = uint32(i)
		m.AddContext(ctx)
	}
}

// Run builds a machine for (workload, arch, model), runs it to
// completion, validates the results, and returns the run result. It is
// the one-call entry point used by the CLI, the benchmarks and the
// examples. cfg overrides the memory-system parameters; nil uses the
// paper's defaults.
func Run(w Workload, arch core.Arch, model core.CPUModel, cfg *memsys.Config) (*core.RunResult, error) {
	c := memsys.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	m, err := core.NewMachine(arch, model, c, w.MemBytes())
	if err != nil {
		return nil, err
	}
	if err := w.Configure(m); err != nil {
		return nil, fmt.Errorf("workload %s: configure: %w", w.Name(), err)
	}
	res, err := m.Run(maxCycles)
	if err != nil {
		return nil, fmt.Errorf("workload %s on %s: %w", w.Name(), arch, err)
	}
	if err := w.Validate(m); err != nil {
		return nil, fmt.Errorf("workload %s on %s: validation: %w", w.Name(), arch, err)
	}
	return res, nil
}

const maxCycles = 2_000_000_000
