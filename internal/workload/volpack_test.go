package workload

import (
	"testing"

	"cmpsim/internal/core"
)

func smallVolpack() *Volpack {
	return NewVolpack(VolpackParams{Size: 16, Depth: 8})
}

func TestVolpackValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallVolpack(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVolpackLowMissRates(t *testing.T) {
	// Figure 7: Volpack is characterized by a low L1R miss rate (~1%)
	// and a negligible L1I rate.
	w := NewVolpack(VolpackParams{})
	r, err := Run(w, core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	mr := r.MemReport.L1D
	if rate := mr.ReplRate(); rate > 0.05 {
		t.Errorf("L1R rate = %.3f, want low (streaming in storage order)", rate)
	}
	if inv := mr.InvRate(); inv > 0.02 {
		t.Errorf("L1I rate = %.3f, want negligible", inv)
	}
}

func TestVolpackParamValidation(t *testing.T) {
	w := NewVolpack(VolpackParams{Size: 24, Depth: 8}) // not a power of two
	m := newTestMachine(t, core.SharedMem)
	if err := w.Configure(m); err == nil {
		t.Error("expected size validation error")
	}
}
