package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/cyc"
)

// LatProbe is a microbenchmark, not one of the paper's applications: a
// dependent pointer chase through a chain of the given size, run on one
// CPU. Because every load's address depends on the previous load's
// value, no latency can be hidden, so cycles-per-iteration measures the
// load-to-use latency of whichever hierarchy level the chain fits in —
// Table 2 measured end-to-end through a CPU model rather than asserted
// against the memory system directly.
type LatProbe struct {
	ChainBytes uint32 // memory the chain spans (power-of-two-ish)
	Iters      int    // chase steps

	prog     *asm.Program
	expected uint32
}

// LatProbeParams configures LatProbe; zero fields take defaults.
type LatProbeParams struct {
	ChainBytes uint32
	Iters      int
}

// NewLatProbe builds the probe; the default chain fits in any L1.
func NewLatProbe(p LatProbeParams) *LatProbe {
	w := &LatProbe{ChainBytes: 8 << 10, Iters: 30000}
	if p.ChainBytes > 0 {
		w.ChainBytes = p.ChainBytes
	}
	if p.Iters > 0 {
		w.Iters = p.Iters
	}
	return w
}

func init() { register("latprobe", func() Workload { return NewLatProbe(LatProbeParams{}) }) }

const latProbeBase = 0x0040_0000 // the chain lives outside the program image

// Name implements Workload.
func (w *LatProbe) Name() string { return "latprobe" }

// Description implements Workload.
func (w *LatProbe) Description() string {
	return "dependent pointer chase: measures load-to-use latency of one hierarchy level"
}

// MemBytes implements Workload.
func (w *LatProbe) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *LatProbe) Threads() int { return 1 }

// chain builds a random cyclic permutation over line-spaced slots and
// returns the successor physical address per slot.
func (w *LatProbe) chain() []uint32 {
	const stride = 32 // one slot per cache line
	n := int(w.ChainBytes / stride)
	perm := rand.New(rand.NewSource(99)).Perm(n)
	next := make([]uint32, n)
	for i := 0; i < n; i++ {
		from := perm[i]
		to := perm[(i+1)%n]
		next[from] = latProbeBase + uint32(to)*stride
	}
	return next
}

// Configure implements Workload.
func (w *LatProbe) Configure(m *core.Machine) error {
	b := asm.NewBuilder()
	b.Label("start")
	// Only CPU 0 chases; the rest halt immediately so there is no
	// contention.
	b.BNEZ(asm.A0, "lp_done")
	b.LIU(asm.R1, latProbeBase) // current pointer
	b.LI(asm.R2, int32(w.Iters))
	b.Label("lp_loop")
	b.LW(asm.R1, 0, asm.R1) // the dependent chase
	b.ADDI(asm.R2, asm.R2, -1)
	b.BNEZ(asm.R2, "lp_loop")
	b.LA(asm.R3, "final")
	b.SW(asm.R1, 0, asm.R3)
	b.Label("lp_done")
	b.HALT()
	b.AlignData(4)
	b.DataLabel("final")
	b.Word32(0)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	setupSPMD(m, p, m.Cfg.NumCPUs)

	next := w.chain()
	for slot, succ := range next {
		m.Img.Write32(latProbeBase+uint32(slot)*32, succ)
	}
	// Expected final pointer: follow the chain Iters times from slot 0.
	ptr := uint32(latProbeBase)
	for i := 0; i < w.Iters; i++ {
		ptr = next[(ptr-latProbeBase)/32]
	}
	w.expected = ptr
	return nil
}

// Validate implements Workload.
func (w *LatProbe) Validate(m *core.Machine) error {
	if got := m.Img.Read32(w.prog.Addr("final")); got != w.expected {
		return fmt.Errorf("latprobe: final pointer = %#x, want %#x", got, w.expected)
	}
	return nil
}

// MeasureLoadLatency returns the steady-state cycles per chase
// iteration, minus the 2-cycle loop overhead. It runs the probe twice
// with different iteration counts and takes the slope, which cancels the
// cold-start lap (the first traversal misses all the way to memory
// regardless of the chain size) exactly.
func MeasureLoadLatency(arch core.Arch, model core.CPUModel, chainBytes uint32) (float64, error) {
	slots := int(chainBytes / 32)
	i1 := 2 * slots
	i2 := 4 * slots
	run := func(iters int) (uint64, error) {
		w := NewLatProbe(LatProbeParams{ChainBytes: chainBytes, Iters: iters})
		res, err := Run(w, arch, model, nil)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	c1, err := run(i1)
	if err != nil {
		return 0, err
	}
	c2, err := run(i2)
	if err != nil {
		return 0, err
	}
	perIter := float64(cyc.Sub(c2, c1)) / float64(i2-i1)
	const loopOverhead = 2.0 // addi + bnez under the 1-IPC simple model
	return perIter - loopOverhead, nil
}
