package workload

import (
	"testing"

	"cmpsim/internal/core"
)

// smallEqntott is quick enough to run on all three architectures in a
// unit test.
func smallEqntott() *Eqntott {
	return NewEqntott(EqntottParams{Words: 64, Iters: 40})
}

func TestEqntottValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			res, err := Run(smallEqntott(), arch, core.ModelMipsy, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles == 0 || res.Instructions() == 0 {
				t.Fatalf("empty result: %+v", res)
			}
		})
	}
}

func TestEqntottSharedL1CommunicatesCheaply(t *testing.T) {
	// The defining property of Figure 4: the shared-L1 architecture sees
	// (almost) no invalidation misses while the private-L1 architectures
	// pay for the master-to-slave vector transfer, and shared-L1 finishes
	// faster than shared-memory.
	w1 := smallEqntott()
	r1, err := Run(w1, core.SharedL1, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	wm := smallEqntott()
	rm, err := Run(wm, core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MemReport.L1D.InvMisses != 0 {
		t.Errorf("shared-L1 has %d invalidation misses; a single shared cache has none",
			r1.MemReport.L1D.InvMisses)
	}
	if rm.MemReport.L1D.InvMisses == 0 {
		t.Error("shared-memory should suffer invalidation misses from master writes")
	}
	if r1.Cycles >= rm.Cycles {
		t.Errorf("shared-L1 (%d cycles) should beat shared-memory (%d cycles) on eqntott",
			r1.Cycles, rm.Cycles)
	}
}

func TestEqntottDeterministic(t *testing.T) {
	r1, err := Run(smallEqntott(), core.SharedL2, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallEqntott(), core.SharedL2, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Instructions() != r2.Instructions() {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/insts",
			r1.Cycles, r1.Instructions(), r2.Cycles, r2.Instructions())
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	for _, n := range names {
		w, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Errorf("workload %q reports name %q", n, w.Name())
		}
		if w.Description() == "" || w.MemBytes() == 0 || w.Threads() == 0 {
			t.Errorf("workload %q has empty metadata", n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}
