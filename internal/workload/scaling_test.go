package workload

import (
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

// TestCMPScaling runs the SPMD workloads at 2, 4 and 8 CPUs: results
// must still validate and more processors must not slow the fixed-size
// problem down outright.
func TestCMPScaling(t *testing.T) {
	mks := map[string]func() Workload{
		"eqntott": func() Workload { return NewEqntott(EqntottParams{Words: 64, Iters: 20}) },
		"ear":     func() Workload { return NewEar(EarParams{Channels: 32, Samples: 40}) },
		"fft":     func() Workload { return NewFFT(FFTParams{N: 32, Batches: 8}) },
		"volpack": func() Workload { return NewVolpack(VolpackParams{Size: 16, Depth: 4}) },
		"mp3d":    func() Workload { return NewMP3D(MP3DParams{Particles: 512, Steps: 1, Grid: 8}) },
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			cycles := map[int]uint64{}
			for _, n := range []int{2, 4, 8} {
				cfg := memsys.DefaultConfig()
				cfg.NumCPUs = n
				res, err := Run(mk(), core.SharedL2, core.ModelMipsy, &cfg)
				if err != nil {
					t.Fatalf("%d CPUs: %v", n, err)
				}
				cycles[n] = res.Cycles
			}
			// Coarse-grained workloads must actually speed up with more
			// CPUs; fine-grained ones (eqntott's master-serial transmit,
			// ear's per-sample barriers) legitimately may not, so for
			// those only completion + validation is asserted.
			if name == "fft" || name == "mp3d" {
				if cycles[8] >= cycles[2] {
					t.Errorf("8 CPUs (%d cycles) not faster than 2 CPUs (%d)", cycles[8], cycles[2])
				}
			}
		})
	}
}

// TestScalingValidatesResultsAtEveryWidth double-checks the Go-reference
// validation at a non-default width on all three architectures.
func TestScalingValidatesResultsAtEveryWidth(t *testing.T) {
	for _, arch := range core.Arches() {
		cfg := memsys.DefaultConfig()
		cfg.NumCPUs = 8
		w := NewEar(EarParams{Channels: 32, Samples: 40})
		if _, err := Run(w, arch, core.ModelMipsy, &cfg); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
}

// TestOceanRowStripDecomposition: at processor counts other than 4,
// Ocean falls back to row strips and must still validate bit-for-bit.
func TestOceanRowStripDecomposition(t *testing.T) {
	for _, n := range []int{2, 8} {
		cfg := memsys.DefaultConfig()
		cfg.NumCPUs = n
		w := NewOcean(OceanParams{N: 18, FineIter: 3, CoarseIt: 2})
		if _, err := Run(w, core.SharedMem, core.ModelMipsy, &cfg); err != nil {
			t.Fatalf("%d CPUs: %v", n, err)
		}
	}
	// Indivisible interiors are rejected.
	cfg := memsys.DefaultConfig()
	cfg.NumCPUs = 6
	if _, err := Run(NewOcean(OceanParams{N: 18, FineIter: 2, CoarseIt: 1}), core.SharedMem, core.ModelMipsy, &cfg); err == nil {
		t.Error("interior 16 does not divide into 6 strips; expected an error")
	}
}

// TestMP3DRejectsTooManyCPUs documents the collision-buffer layout bound.
func TestMP3DRejectsTooManyCPUs(t *testing.T) {
	cfg := memsys.DefaultConfig()
	cfg.NumCPUs = 16
	if _, err := Run(smallMP3D(), core.SharedL1, core.ModelMipsy, &cfg); err == nil {
		t.Error("mp3d must reject more than 8 CPUs")
	}
}
