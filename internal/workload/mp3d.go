package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// MP3D reproduces the SPLASH particle simulator (Section 3.2.1): a
// rarefied-flow Monte-Carlo code written for vector machines, with
// large communication volume and unstructured read-write sharing
// through the space-cell array. Particles are statically partitioned
// into contiguous blocks, one per CPU, and the blocks are spaced so that
// the four streams alias in the 64KB 2-way shared L1 (set stride 32KB) —
// the mechanism behind the paper's observation that the shared-L1 L1R
// miss rate is over twice that of the private caches. A per-particle
// properties table lives exactly 2MB above the particle array, so in the
// default direct-mapped L2 the two streams conflict line-for-line; with
// a 4-way L2 (the Section 4.1 ablation) both become resident.
type MP3D struct {
	Particles int // must divide by 4; default 16384 (paper: 35000)
	Steps     int
	Grid      int // cells per axis (G^3 cells)
	NumCPUs   int

	prog *asm.Program
	ref  *mp3dState
	seed int64

	// clampSeq generates unique local label names across the emit
	// helpers. Per-instance (not package-level) so repeated builds in
	// one process emit identical label names — a package-level counter
	// made profile symbol tables differ between otherwise identical
	// runs.
	clampSeq int
}

// MP3DParams configures MP3D; zero fields take defaults.
type MP3DParams struct {
	Particles, Steps, Grid int
}

// NewMP3D builds the workload; zero params mean the default scale.
func NewMP3D(p MP3DParams) *MP3D {
	w := &MP3D{Particles: 16384, Steps: 3, Grid: 16, NumCPUs: 4, seed: 1996}
	if p.Particles > 0 {
		w.Particles = p.Particles
	}
	if p.Steps > 0 {
		w.Steps = p.Steps
	}
	if p.Grid > 0 {
		w.Grid = p.Grid
	}
	return w
}

func init() { register("mp3d", func() Workload { return NewMP3D(MP3DParams{}) }) }

// Fixed physical layout (identity address space).
const (
	mp3dParticleBase = 0x0040_0000 // 4 MiB
	// The aux (species properties) table sits 768 KiB above the
	// particles plus 4 KiB: 256 KiB away modulo every L2 size in the study, so the
	// two streams never conflict in any L2.
	mp3dAuxOffset = 0x000c_1000
	mp3dRecBytes  = 48 // x,y,z,vx,vy,vz float64

	// Per-CPU collision buffers: hot, heavily reused, 8 KiB each.
	//
	// The 32 KiB spacing makes all four buffers cover the same sets of
	// the 64 KiB 2-way shared L1 (set stride 32 KiB), so they conflict
	// there while each fits comfortably in one way of a private 16 KiB
	// L1 — the paper's "references from different processors are
	// conflicting in the L1 cache", which makes the shared-L1 L1R miss
	// rate over twice that of the other architectures.
	//
	// The buffers are also spaced an exact 2 MiB apart, so all four
	// cover the *same* lines of the default direct-mapped 2 MiB L2.
	// Only the shared-L1 architecture's L2 sees buffer lines constantly
	// (its thrashing L1 keeps refetching them), so only there do the
	// four buffers ping-pong in the direct-mapped L2 and fall through to
	// memory — the paper's "high L1R miss rate causes a substantial
	// increase in the L2R miss rate". The private L1s of the other two
	// architectures keep the buffers resident, so their L2s barely see
	// them. A 4-way L2 (the Section 4.1 ablation) holds all four buffers
	// and the conflict vanishes, exactly as the paper reports.
	mp3dBufBase    = 0x008c_8000 // 8 MiB + 800 KiB: clear of the particle image mod 2 MiB
	mp3dBufSpacing = 2 << 20
	mp3dBufEntries = 512
	mp3dBufStride  = 16 // bytes per entry

	mp3dEps = 0.0001
	mp3dDt  = 0.1
)

// mp3dScanMults are the strided collision-candidate probes per particle;
// the strides exceed a cache line so each probe touches a distinct
// buffer line (no spatial locality to hide the shared-L1 thrash).
var mp3dScanMults = []int{3, 5, 7, 11, 13, 17}

// Name implements Workload.
func (w *MP3D) Name() string { return "mp3d" }

// Description implements Workload.
func (w *MP3D) Description() string {
	return "SPLASH MP3D particle simulator: streaming working sets, heavy cell sharing"
}

// MemBytes implements Workload.
func (w *MP3D) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *MP3D) Threads() int { return w.NumCPUs }

func (w *MP3D) blockStride() uint32 {
	return uint32(w.Particles / w.NumCPUs * mp3dRecBytes)
}

func (w *MP3D) cells() int { return w.Grid * w.Grid * w.Grid }

// avgCount is the K constant the velocity nudge centres on.
func (w *MP3D) avgCount() int32 { return int32(w.Particles / w.cells()) }

// mp3dState is the Go mirror of the guest computation.
type mp3dState struct {
	x, y, z, vx, vy, vz []float64
	aux                 []float64
	cells               [2][]int32
	bufs                [][]int32 // per-CPU collision buffers
	chk                 []uint32  // per-CPU buffer checksums
}

func (w *MP3D) initialState() *mp3dState {
	rng := rand.New(rand.NewSource(w.seed))
	n := w.Particles
	st := &mp3dState{
		x: make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		aux: make([]float64, n),
	}
	st.cells[0] = make([]int32, w.cells())
	st.cells[1] = make([]int32, w.cells())
	st.bufs = make([][]int32, w.NumCPUs)
	for i := range st.bufs {
		st.bufs[i] = make([]int32, mp3dBufEntries)
	}
	st.chk = make([]uint32, w.NumCPUs)
	g := float64(w.Grid)
	for i := 0; i < n; i++ {
		st.x[i] = rng.Float64() * g
		st.y[i] = rng.Float64() * g
		st.z[i] = rng.Float64() * g
		st.vx[i] = rng.Float64() - 0.5
		st.vy[i] = rng.Float64() - 0.5
		st.vz[i] = rng.Float64() - 0.5
		st.aux[i] = 1.0 + float64(i%5)*0.25
	}
	// Step 0 reads cells[0]; seed it with a deterministic census of the
	// initial positions so the first velocity nudge is meaningful.
	for i := 0; i < n; i++ {
		st.cells[0][w.cellOf(st.x[i], st.y[i], st.z[i])]++
	}
	return st
}

func (w *MP3D) cellOf(x, y, z float64) int {
	g := w.Grid
	clamp := func(v float64) int {
		i := int(int32(v)) // trunc, mirroring CVTFI on in-range values
		if i < 0 {
			i = 0
		}
		if i >= g {
			i = g - 1
		}
		return i
	}
	return (clamp(x)*g+clamp(y))*g + clamp(z)
}

// advance mirrors the guest step exactly (same FP operation order).
func (w *MP3D) advance(st *mp3dState) {
	g := float64(w.Grid)
	k := w.avgCount()
	perCPU := w.Particles / w.NumCPUs
	for step := 0; step < w.Steps; step++ {
		prev := st.cells[step%2]
		next := st.cells[(step+1)%2]
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < w.Particles; i++ {
			c := prev[w.cellOf(st.x[i], st.y[i], st.z[i])]
			nudge := float64(c-k) * mp3dEps * st.aux[i]
			st.vx[i] += nudge
			st.x[i] += st.vx[i] * mp3dDt
			st.y[i] += st.vy[i] * mp3dDt
			st.z[i] += st.vz[i] * mp3dDt
			if st.x[i] < 0 {
				st.x[i] += g
			}
			if st.x[i] >= g {
				st.x[i] -= g
			}
			if st.y[i] < 0 {
				st.y[i] += g
			}
			if st.y[i] >= g {
				st.y[i] -= g
			}
			if st.z[i] < 0 {
				st.z[i] += g
			}
			if st.z[i] >= g {
				st.z[i] -= g
			}
			next[w.cellOf(st.x[i], st.y[i], st.z[i])]++
			// Collision-pair counter at a rotated cell index: a second
			// read-write shared reference per particle (MP3D's
			// communication volume is large and unstructured).
			next[w.cellOf(st.z[i], st.x[i], st.y[i])]++

			// Collision-buffer traffic: record this particle, then scan a
			// window of candidate partners, mirroring the guest exactly.
			cpu := i / perCPU
			li := i % perCPU
			buf := st.bufs[cpu]
			t := int32(st.x[i]) // in [0, G), so plain truncation matches CVTFI
			buf[li&(mp3dBufEntries-1)] = t
			for _, mult := range mp3dScanMults {
				st.chk[cpu] += uint32(buf[(li*mult)&(mp3dBufEntries-1)])
			}
		}
	}
}

// Configure implements Workload.
func (w *MP3D) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs
	if w.NumCPUs > 8 {
		return fmt.Errorf("mp3d: at most 8 CPUs (collision-buffer layout)")
	}
	if w.Particles%w.NumCPUs != 0 {
		return fmt.Errorf("mp3d: particles (%d) must divide by %d CPUs", w.Particles, w.NumCPUs)
	}
	b := asm.NewBuilder()
	perCPU := w.Particles / w.NumCPUs
	cellsPer := w.cells() / w.NumCPUs

	// Register plan: R20 tid, R21 step, R22 step limit, R23 prev cells,
	// R24 next cells, R25 G, R18 particle block base, R19 aux block base,
	// R16 particle counter, others scratch.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R22, int32(w.Steps))
	b.LI(asm.R21, 0)
	b.LI(asm.R25, int32(w.Grid))
	// FP constants: F10 dt, F11 eps, F12 G, F13 zero.
	b.LA(asm.R8, "consts")
	b.LD(asm.F10, 0, asm.R8)
	b.LD(asm.F11, 8, asm.R8)
	b.LD(asm.F12, 16, asm.R8)
	b.CVTIF(asm.F13, asm.R0)
	// Block bases.
	b.LIU(asm.R18, mp3dParticleBase)
	b.LIU(asm.R8, w.blockStride())
	b.MUL(asm.R9, asm.R20, asm.R8)
	b.ADD(asm.R18, asm.R18, asm.R9)
	b.LIU(asm.R19, mp3dParticleBase+mp3dAuxOffset)
	b.ADD(asm.R19, asm.R19, asm.R9)
	// Collision buffer base for this CPU and its running checksum.
	b.LIU(asm.R27, mp3dBufBase)
	b.LIU(asm.R8, mp3dBufSpacing)
	b.MUL(asm.R9, asm.R20, asm.R8)
	b.ADD(asm.R27, asm.R27, asm.R9)
	b.LI(asm.R26, 0)

	b.Label("mp_step")
	// Buffer select on step parity: even reads cells0/writes cells1.
	b.LA(asm.R23, "cells0")
	b.LA(asm.R24, "cells1")
	b.ANDI(asm.R8, asm.R21, 1)
	b.BEQZ(asm.R8, "mp_noswap")
	b.MOVE(asm.R9, asm.R23)
	b.MOVE(asm.R23, asm.R24)
	b.MOVE(asm.R24, asm.R9)
	b.Label("mp_noswap")

	// Zero my slice of the next-census array.
	b.LI(asm.R8, int32(cellsPer))
	b.MUL(asm.R9, asm.R20, asm.R8)
	b.SLLI(asm.R9, asm.R9, 2)
	b.ADD(asm.R9, asm.R24, asm.R9)
	b.LI(asm.R10, int32(cellsPer))
	b.Label("mp_zero")
	b.SW(asm.R0, 0, asm.R9)
	b.ADDI(asm.R9, asm.R9, 4)
	b.ADDI(asm.R10, asm.R10, -1)
	b.BNEZ(asm.R10, "mp_zero")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	// Particle loop.
	b.LI(asm.R16, 0)
	b.LI(asm.R17, int32(perCPU))
	b.Label("mp_part")
	b.LI(asm.R8, mp3dRecBytes)
	b.MUL(asm.R9, asm.R16, asm.R8)
	b.ADD(asm.R10, asm.R18, asm.R9) // &particle
	b.ADD(asm.R11, asm.R19, asm.R9) // &aux (2MB above: L2 conflict in DM)
	b.LD(asm.F0, 0, asm.R10)        // x
	b.LD(asm.F1, 8, asm.R10)        // y
	b.LD(asm.F2, 16, asm.R10)       // z
	b.LD(asm.F3, 24, asm.R10)       // vx
	b.LD(asm.F4, 32, asm.R10)       // vy
	b.LD(asm.F5, 40, asm.R10)       // vz
	b.LD(asm.F6, 0, asm.R11)        // a

	// Census cell of the current position -> c (read-shared across CPUs).
	w.emitCellIndex(b, asm.F0, asm.F1, asm.F2, asm.R12)
	b.SLLI(asm.R12, asm.R12, 2)
	b.ADD(asm.R12, asm.R23, asm.R12)
	b.LW(asm.R13, 0, asm.R12)
	b.ADDI(asm.R13, asm.R13, -w.avgCount())
	b.CVTIF(asm.F7, asm.R13)
	b.FMULD(asm.F7, asm.F7, asm.F11) // (c-K)*eps
	b.FMULD(asm.F7, asm.F7, asm.F6)  // *a
	b.FADDD(asm.F3, asm.F3, asm.F7)  // vx +=

	// Advance.
	b.FMULD(asm.F8, asm.F3, asm.F10)
	b.FADDD(asm.F0, asm.F0, asm.F8)
	b.FMULD(asm.F8, asm.F4, asm.F10)
	b.FADDD(asm.F1, asm.F1, asm.F8)
	b.FMULD(asm.F8, asm.F5, asm.F10)
	b.FADDD(asm.F2, asm.F2, asm.F8)
	// Periodic wrap per axis.
	w.emitWrap(b, asm.F0, "x")
	w.emitWrap(b, asm.F1, "y")
	w.emitWrap(b, asm.F2, "z")

	// Store the mutated fields.
	b.SD(asm.F0, 0, asm.R10)
	b.SD(asm.F1, 8, asm.R10)
	b.SD(asm.F2, 16, asm.R10)
	b.SD(asm.F3, 24, asm.R10)

	// Atomic census increment in the next buffer (read-write sharing).
	w.emitCellIndex(b, asm.F0, asm.F1, asm.F2, asm.R12)
	b.SLLI(asm.R12, asm.R12, 2)
	b.ADD(asm.R12, asm.R24, asm.R12)
	b.Label("mp_inc")
	b.LL(asm.R13, 0, asm.R12)
	b.ADDI(asm.R13, asm.R13, 1)
	b.SC(asm.R13, 0, asm.R12)
	b.BEQZ(asm.R13, "mp_inc")
	// Collision-pair counter at a rotated cell index (more unstructured
	// read-write sharing, as in the original MP3D).
	w.emitCellIndex(b, asm.F2, asm.F0, asm.F1, asm.R12)
	b.SLLI(asm.R12, asm.R12, 2)
	b.ADD(asm.R12, asm.R24, asm.R12)
	b.Label("mp_inc2")
	b.LL(asm.R13, 0, asm.R12)
	b.ADDI(asm.R13, asm.R13, 1)
	b.SC(asm.R13, 0, asm.R12)
	b.BEQZ(asm.R13, "mp_inc2")

	// Collision-buffer traffic: record this particle at entry li, then
	// probe strided candidate-partner entries. Reads dominate, so on the
	// shared-L1 architecture the buffer thrash costs blocking load
	// misses.
	b.CVTFI(asm.R8, asm.F0) // t = trunc(x), in [0,G)
	bufAt := func(mult int) {
		if mult == 1 {
			b.MOVE(asm.R9, asm.R16)
		} else {
			b.LI(asm.R10, int32(mult))
			b.MUL(asm.R9, asm.R16, asm.R10)
		}
		b.ANDI(asm.R9, asm.R9, mp3dBufEntries-1)
		b.SLLI(asm.R9, asm.R9, 4) // * mp3dBufStride
		b.ADD(asm.R9, asm.R27, asm.R9)
	}
	bufAt(1)
	b.SW(asm.R8, 0, asm.R9)
	for _, mult := range mp3dScanMults {
		bufAt(mult)
		b.LW(asm.R11, 0, asm.R9)
		b.ADD(asm.R26, asm.R26, asm.R11)
	}

	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "mp_part")

	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "mp_step")
	// Publish this CPU's buffer checksum.
	b.LA(asm.R8, "chk")
	b.SLLI(asm.R9, asm.R20, 2)
	b.ADD(asm.R8, asm.R8, asm.R9)
	b.SW(asm.R26, 0, asm.R8)
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(8)
	b.DataLabel("consts")
	b.Float64(mp3dDt, mp3dEps, float64(w.Grid))
	b.AlignData(4)
	b.DataLabel("cells0")
	b.Zero(uint32(4 * w.cells()))
	b.DataLabel("cells1")
	b.Zero(uint32(4 * w.cells()))
	b.DataLabel("chk")
	b.Zero(uint32(4 * w.NumCPUs))
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p

	// Shared data is the program data section (census cells, constants,
	// barrier); the particle/aux/buffer regions are owned by single CPUs
	// and write back in the shared-L2 architecture's L1s.
	dataEnd := p.DataEnd()
	m.SetSharedData(func(a uint32) bool { return a >= DataBase && a < dataEnd })

	// Host-side data initialization (particles, aux, initial census) and
	// reference computation.
	st := w.initialState()
	setupSPMD(m, p, w.NumCPUs)
	for i := 0; i < w.Particles; i++ {
		base := uint32(mp3dParticleBase + i*mp3dRecBytes)
		m.Img.WriteF64(base, st.x[i])
		m.Img.WriteF64(base+8, st.y[i])
		m.Img.WriteF64(base+16, st.z[i])
		m.Img.WriteF64(base+24, st.vx[i])
		m.Img.WriteF64(base+32, st.vy[i])
		m.Img.WriteF64(base+40, st.vz[i])
		m.Img.WriteF64(base+uint32(mp3dAuxOffset), st.aux[i])
	}
	for c, v := range st.cells[0] {
		m.Img.Write32(p.Addr("cells0")+uint32(4*c), uint32(v))
	}
	w.ref = st
	w.advance(st)
	return nil
}

// emitCellIndex computes the census cell index of (fx,fy,fz) into rd,
// clamping each truncated coordinate into [0, G).
func (w *MP3D) emitCellIndex(b *asm.Builder, fx, fy, fz asm.FReg, rd asm.Reg) {
	// rd and R13/R14/R15 are scratch here; R25 holds G.
	clamp := func(f asm.FReg, r asm.Reg) {
		b.CVTFI(r, f)
		// if r < 0: r = 0
		b.BGE(r, asm.R0, fmt.Sprintf("mp_cl%d_a", w.clampSeq))
		b.LI(r, 0)
		b.Label(fmt.Sprintf("mp_cl%d_a", w.clampSeq))
		// if r >= G: r = G-1
		b.BLT(r, asm.R25, fmt.Sprintf("mp_cl%d_b", w.clampSeq))
		b.ADDI(r, asm.R25, -1)
		b.Label(fmt.Sprintf("mp_cl%d_b", w.clampSeq))
		w.clampSeq++
	}
	clamp(fx, rd)
	clamp(fy, asm.R14)
	clamp(fz, asm.R15)
	b.MUL(rd, rd, asm.R25)
	b.ADD(rd, rd, asm.R14)
	b.MUL(rd, rd, asm.R25)
	b.ADD(rd, rd, asm.R15)
}

// emitWrap applies periodic boundary wrap to f: F12 holds G, F13 zero.
func (w *MP3D) emitWrap(b *asm.Builder, f asm.FReg, axis string) {
	lo := fmt.Sprintf("mp_w%d_lo", w.clampSeq)
	hi := fmt.Sprintf("mp_w%d_hi", w.clampSeq)
	w.clampSeq++
	b.FLT(asm.R8, f, asm.F13) // f < 0 ?
	b.BEQZ(asm.R8, lo)
	b.FADDD(f, f, asm.F12)
	b.Label(lo)
	b.FLE(asm.R8, asm.F12, f) // f >= G ?
	b.BEQZ(asm.R8, hi)
	b.FSUBD(f, f, asm.F12)
	b.Label(hi)
}

// Validate implements Workload.
func (w *MP3D) Validate(m *core.Machine) error {
	st := w.ref
	for i := 0; i < w.Particles; i++ {
		base := uint32(mp3dParticleBase + i*mp3dRecBytes)
		if got := m.Img.ReadF64(base); got != st.x[i] {
			return fmt.Errorf("mp3d: particle %d x = %v, want %v", i, got, st.x[i])
		}
		if got := m.Img.ReadF64(base + 24); got != st.vx[i] {
			return fmt.Errorf("mp3d: particle %d vx = %v, want %v", i, got, st.vx[i])
		}
	}
	final := st.cells[w.Steps%2]
	base := w.prog.Addr("cells0")
	if w.Steps%2 == 1 {
		base = w.prog.Addr("cells1")
	}
	var total int32
	for c, v := range final {
		got := int32(m.Img.Read32(base + uint32(4*c)))
		if got != v {
			return fmt.Errorf("mp3d: cell %d census = %d, want %d", c, got, v)
		}
		total += got
	}
	// Each particle contributes two census increments per step (its own
	// cell plus the rotated collision-pair cell).
	if total != int32(2*w.Particles) {
		return fmt.Errorf("mp3d: census total = %d, want %d", total, 2*w.Particles)
	}
	chkBase := w.prog.Addr("chk")
	for c := 0; c < w.NumCPUs; c++ {
		if got := m.Img.Read32(chkBase + uint32(4*c)); got != st.chk[c] {
			return fmt.Errorf("mp3d: cpu %d buffer checksum = %#x, want %#x", c, got, st.chk[c])
		}
	}
	return nil
}
