package workload

import (
	"reflect"
	"testing"

	"cmpsim/internal/core"
)

// TestRunsAreReproducible is the end-to-end determinism regression
// test backing the simlint determinism analyzer: running the same
// workload twice on the same architecture must produce bit-identical
// results — cycle count, per-CPU stall breakdowns, and every cache,
// coherence and resource counter in the memory report. Any wall-clock
// read, global-rand call, goroutine or map-order dependence anywhere
// in the simulator shows up here as a diff.
func TestRunsAreReproducible(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			once := func() *core.RunResult {
				res, err := Run(smallEqntott(), arch, core.ModelMipsy, nil)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1, r2 := once(), once()
			if r1.Cycles != r2.Cycles {
				t.Errorf("cycle counts differ between identical runs: %d vs %d", r1.Cycles, r2.Cycles)
			}
			if !reflect.DeepEqual(r1.PerCPU, r2.PerCPU) {
				t.Errorf("per-CPU stall stats differ between identical runs:\n%+v\n%+v", r1.PerCPU, r2.PerCPU)
			}
			if !reflect.DeepEqual(r1.MemReport, r2.MemReport) {
				t.Errorf("memory reports differ between identical runs:\n%+v\n%+v", r1.MemReport, r2.MemReport)
			}
		})
	}
}
