package workload

import (
	"testing"

	"cmpsim/internal/core"
)

func smallEar() *Ear {
	return NewEar(EarParams{Channels: 16, Samples: 60})
}

func TestEarValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallEar(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEarSharingCharacteristics(t *testing.T) {
	// Figure 8: Ear has a negligible L1 miss rate on the shared-L1
	// architecture (the whole working set fits), and the highest L1
	// invalidation miss rate of the applications on the private-L1
	// architectures.
	r1, err := Run(NewEar(EarParams{Samples: 500}), core.SharedL1, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rate := r1.MemReport.L1D.MissRate(); rate > 0.01 {
		t.Errorf("shared-L1 miss rate = %.4f, want negligible", rate)
	}
	rm, err := Run(NewEar(EarParams{Samples: 500}), core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	mr := rm.MemReport.L1D
	if mr.InvMisses == 0 {
		t.Error("shared-memory should see invalidation misses from the cascade")
	}
	if mr.InvRate() < mr.ReplRate() {
		t.Errorf("invalidations (%.4f) should dominate replacements (%.4f) in ear",
			mr.InvRate(), mr.ReplRate())
	}
	if r1.Cycles >= rm.Cycles {
		t.Errorf("shared-L1 (%d cycles) should beat shared-memory (%d) on ear",
			r1.Cycles, rm.Cycles)
	}
}
