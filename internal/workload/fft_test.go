package workload

import (
	"math"
	"math/cmplx"
	"testing"

	"cmpsim/internal/core"
)

func smallFFT() *FFT {
	return NewFFT(FFTParams{N: 32, Batches: 8})
}

func TestFFTValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallFFT(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFFTMirrorIsActuallyAnFFT checks the mirror against a direct DFT,
// so the guest isn't just matching a buggy reference.
func TestFFTMirrorIsActuallyAnFFT(t *testing.T) {
	w := NewFFT(FFTParams{N: 16, Batches: 1})
	in := w.inputs()[0]
	out := append([]float64(nil), in...)
	w.fftMirror(out, w.twiddles(), w.revTable())
	n := w.N
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			x := complex(in[2*j], in[2*j+1])
			want += x * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		got := complex(out[2*k], out[2*k+1])
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("bin %d: got %v, want %v", k, got, want)
		}
	}
}

func TestFFTNoReadWriteSharing(t *testing.T) {
	// Figure 9: FFT has low L1R and (almost) no invalidation misses —
	// the vectors are private and the tables read-only.
	w := NewFFT(FFTParams{N: 64, Batches: 8})
	r, err := Run(w, core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	mr := r.MemReport.L1D
	if mr.InvRate() > 0.005 {
		t.Errorf("L1 invalidation rate = %.4f, want ~0", mr.InvRate())
	}
}

func TestFFTRejectsBadParams(t *testing.T) {
	m := newTestMachine(t, core.SharedMem)
	if err := NewFFT(FFTParams{N: 48}).Configure(m); err == nil {
		t.Error("non-power-of-two N should error")
	}
	m2 := newTestMachine(t, core.SharedMem)
	if err := NewFFT(FFTParams{N: 32, Batches: 7}).Configure(m2); err == nil {
		t.Error("odd batch count should error")
	}
}
