package workload

import (
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

func smallMP3D() *MP3D {
	return NewMP3D(MP3DParams{Particles: 512, Steps: 2, Grid: 8})
}

func TestMP3DValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallMP3D(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMP3DL1MissRatesDominatedByReplacements(t *testing.T) {
	// Section 4.1: "the L1 miss rates of all three architectures is
	// dominated by replacement misses" despite the communication volume.
	w := NewMP3D(MP3DParams{Particles: 4096, Steps: 2, Grid: 8})
	r, err := Run(w, core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	l1 := r.MemReport.L1D
	if l1.ReplMisses() <= l1.InvMisses {
		t.Errorf("replacement misses (%d) should dominate invalidation misses (%d)",
			l1.ReplMisses(), l1.InvMisses)
	}
}

func TestMP3DL2AssocAblation(t *testing.T) {
	// The Section 4.1 experiment: with a 4-way L2 the shared-L1
	// architecture's L2 miss rate drops sharply because the particle and
	// properties streams stop conflicting.
	cfgDM := memsys.DefaultConfig()
	rDM, err := Run(NewMP3D(MP3DParams{Particles: 4096, Steps: 2, Grid: 8}), core.SharedL1, core.ModelMipsy, &cfgDM)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := memsys.DefaultConfig()
	cfg4.L2Assoc = 4
	r4, err := Run(NewMP3D(MP3DParams{Particles: 4096, Steps: 2, Grid: 8}), core.SharedL1, core.ModelMipsy, &cfg4)
	if err != nil {
		t.Fatal(err)
	}
	dm := rDM.MemReport.L2.MissRate()
	fw := r4.MemReport.L2.MissRate()
	if fw >= dm {
		t.Errorf("4-way L2 miss rate (%.3f) should be below direct-mapped (%.3f)", fw, dm)
	}
	if rDM.Cycles <= r4.Cycles {
		t.Errorf("direct-mapped run (%d cycles) should be slower than 4-way (%d)", rDM.Cycles, r4.Cycles)
	}
}
