package workload

import (
	"testing"

	"cmpsim/internal/core"
)

func smallOcean() *Ocean {
	return NewOcean(OceanParams{N: 18, FineIter: 3, CoarseIt: 3})
}

func TestOceanValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallOcean(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOceanOddIterationParity(t *testing.T) {
	// FineIter/CoarseIt odd exercises the other buffer-parity paths.
	w := NewOcean(OceanParams{N: 18, FineIter: 2, CoarseIt: 1})
	if _, err := Run(w, core.SharedMem, core.ModelMipsy, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOceanReplacementMissesDominateEverywhere(t *testing.T) {
	// Figure 6: Ocean causes large numbers of L1R misses on all three
	// architectures; communication (invalidation) misses are a small
	// fraction because only subgrid boundaries are shared.
	for _, arch := range core.Arches() {
		w := NewOcean(OceanParams{N: 66, FineIter: 2, CoarseIt: 1})
		r, err := Run(w, arch, core.ModelMipsy, nil)
		if err != nil {
			t.Fatal(err)
		}
		l1 := r.MemReport.L1D
		if l1.ReplMisses() < 5*l1.InvMisses {
			t.Errorf("%s: expected replacement-dominated misses, got repl=%d inv=%d",
				arch, l1.ReplMisses(), l1.InvMisses)
		}
	}
}
