package workload

import (
	"fmt"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// Eqntott reproduces the paper's parallelized SPEC92 Eqntott kernel
// (Section 3.2.1): the bit-vector comparison routine that dominates the
// benchmark. A master processor updates the vectors being compared, then
// all four processors compare a quarter of the vector each and merge
// their counts — fine-grained parallelism with a high communication to
// computation ratio. The working set (two small vectors) fits easily in
// any of the L1 caches, so the architectures are separated almost
// entirely by communication latency, as in Figure 4.
type Eqntott struct {
	Words   int // words per bit vector (default 256 = 1 KB)
	Iters   int // comparison episodes
	NumCPUs int

	prog     *asm.Program
	expected uint32
}

// EqntottParams configures Eqntott; zero fields take defaults.
type EqntottParams struct {
	Words, Iters int
}

// NewEqntott builds the workload; zero params mean the default scale.
func NewEqntott(p EqntottParams) *Eqntott {
	w := &Eqntott{Words: 256, Iters: 400, NumCPUs: 4}
	if p.Words > 0 {
		w.Words = p.Words
	}
	if p.Iters > 0 {
		w.Iters = p.Iters
	}
	return w
}

func init() { register("eqntott", func() Workload { return NewEqntott(EqntottParams{}) }) }

// Name implements Workload.
func (w *Eqntott) Name() string { return "eqntott" }

// Description implements Workload.
func (w *Eqntott) Description() string {
	return "SPEC92 eqntott bit-vector compare: fine-grained master/slave sharing"
}

// MemBytes implements Workload.
func (w *Eqntott) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *Eqntott) Threads() int { return w.NumCPUs }

// reference mirrors the guest computation exactly and returns the grand
// total of equal-word counts over all episodes. Each episode the master
// produces a fresh pair of vectors — as in the paper, where the master
// transmits new vector copies to the slaves every comparison.
func (w *Eqntott) reference() uint32 {
	vecA := make([]uint32, w.Words)
	vecB := make([]uint32, w.Words)
	var grand uint32
	for iter := 0; iter < w.Iters; iter++ {
		for k := 0; k < w.Words; k++ {
			vecA[k] = uint32(iter + k)
			if k%3 == 0 {
				vecB[k] = uint32(iter + k + 1)
			} else {
				vecB[k] = uint32(iter + k)
			}
		}
		for i := 0; i < w.Words; i++ {
			if vecA[i] == vecB[i] {
				grand++
			}
		}
	}
	return grand
}

// Configure implements Workload.
func (w *Eqntott) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs // the decomposition follows the machine's CPU count
	if w.Words%w.NumCPUs != 0 {
		return fmt.Errorf("eqntott: words (%d) must divide by %d CPUs", w.Words, w.NumCPUs)
	}
	quarter := w.Words / w.NumCPUs
	b := asm.NewBuilder()

	// Register plan: R20=tid, R21=iter, R22=iter limit, R16..R19 master
	// temps, R8..R15 scratch.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R21, 0)
	b.LI(asm.R22, int32(w.Iters))

	b.Label("eq_main")
	b.BNEZ(asm.R20, "eq_sync") // slaves go straight to the barrier

	// --- master: produce a fresh pair of vectors (the "transmit") ---
	b.LI(asm.R16, 0) // k
	b.LI(asm.R17, int32(w.Words))
	b.LA(asm.R11, "vecA")
	b.LA(asm.R12, "vecB")
	b.Label("eq_wr")
	// vecA[k] = iter + k
	b.ADD(asm.R10, asm.R21, asm.R16)
	b.SW(asm.R10, 0, asm.R11)
	// vecB[k] = iter + k (+1 when k%3 == 0, the planted mismatches)
	b.LI(asm.R8, 3)
	b.REM(asm.R9, asm.R16, asm.R8)
	b.BNEZ(asm.R9, "eq_wb")
	b.ADDI(asm.R10, asm.R10, 1)
	b.Label("eq_wb")
	b.SW(asm.R10, 0, asm.R12)
	b.ADDI(asm.R11, asm.R11, 4)
	b.ADDI(asm.R12, asm.R12, 4)
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "eq_wr")

	// --- all: barrier, then compare this CPU's quarter ---
	b.Label("eq_sync")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	// cnt (R14) = number of equal words in [tid*quarter, (tid+1)*quarter)
	b.LI(asm.R14, 0)
	b.LI(asm.R8, int32(quarter))
	b.MUL(asm.R9, asm.R20, asm.R8) // start index
	b.SLLI(asm.R9, asm.R9, 2)
	b.LA(asm.R10, "vecA")
	b.ADD(asm.R10, asm.R10, asm.R9)
	b.LA(asm.R11, "vecB")
	b.ADD(asm.R11, asm.R11, asm.R9)
	b.LI(asm.R12, int32(quarter)) // remaining
	b.Label("eq_cmp")
	b.LW(asm.R13, 0, asm.R10)
	b.LW(asm.R15, 0, asm.R11)
	b.BNE(asm.R13, asm.R15, "eq_ne")
	b.ADDI(asm.R14, asm.R14, 1)
	b.Label("eq_ne")
	b.ADDI(asm.R10, asm.R10, 4)
	b.ADDI(asm.R11, asm.R11, 4)
	b.ADDI(asm.R12, asm.R12, -1)
	b.BNEZ(asm.R12, "eq_cmp")

	// grand += cnt, atomically.
	b.LA(asm.R8, "grand")
	b.Label("eq_add")
	b.LL(asm.R9, 0, asm.R8)
	b.ADD(asm.R9, asm.R9, asm.R14)
	b.SC(asm.R9, 0, asm.R8)
	b.BEQZ(asm.R9, "eq_add")

	// Barrier again so the master does not start rewriting while slaves
	// still compare.
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "eq_main")
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(4)
	b.DataLabel("vecA")
	b.Zero(uint32(4 * w.Words))
	b.DataLabel("vecB")
	b.Zero(uint32(4 * w.Words))
	b.DataLabel("grand")
	b.Word32(0)
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	w.expected = w.reference()
	setupSPMD(m, p, w.NumCPUs)
	return nil
}

// Validate implements Workload.
func (w *Eqntott) Validate(m *core.Machine) error {
	got := m.Img.Read32(w.prog.Addr("grand"))
	if got != w.expected {
		return fmt.Errorf("eqntott: grand total = %d, want %d", got, w.expected)
	}
	return nil
}
