package workload

import (
	"testing"

	"cmpsim/internal/check"
	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

// TestSanitizedRunsClean is the acceptance gate for the runtime
// sanitizer: every architecture runs three workloads (quick data sets)
// with the full invariant suite enabled — MESI legality, directory/L1
// agreement, inclusion, cycle monotonicity and MSHR drain — and must
// finish without a violation (a violation panics the run). It also
// requires the checker to have actually evaluated a meaningful number
// of invariants, so a mis-wired Config.Check cannot pass silently.
func TestSanitizedRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 9 full simulations; skipped in -short mode")
	}
	for _, name := range []string{"eqntott", "fft", "mp3d"} {
		for _, arch := range core.Arches() {
			t.Run(name+"/"+string(arch), func(t *testing.T) {
				w, err := NewQuick(name)
				if err != nil {
					t.Fatal(err)
				}
				chk := check.New(64)
				cfg := memsys.DefaultConfig()
				cfg.Check = chk
				cfg.Trace = chk // populate the violation trail
				if _, err := Run(w, arch, core.ModelMipsy, &cfg); err != nil {
					t.Fatal(err)
				}
				if chk.Checks() < 1000 {
					t.Fatalf("sanitizer ran only %d checks; the Config.Check wiring is broken", chk.Checks())
				}
			})
		}
	}
}

// TestQuickVariantsExist pins the central quick table to the workload
// registry: every registered application workload must have a quick
// variant (latprobe is a microbenchmark with its own size parameters).
func TestQuickVariantsExist(t *testing.T) {
	for _, name := range Names() {
		if name == "latprobe" {
			continue
		}
		w, err := NewQuick(name)
		if err != nil {
			t.Errorf("no quick variant of %q: %v", name, err)
			continue
		}
		if w.Name() != name {
			t.Errorf("NewQuick(%q).Name() = %q", name, w.Name())
		}
	}
	if _, err := NewQuick("no-such-workload"); err == nil {
		t.Error("NewQuick of an unknown name should fail")
	}
}
