package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// Volpack reproduces the parallel shear-warp volume renderer (Section
// 3.2.1, Lacroute's algorithm): a shading lookup table is computed in
// parallel, each processor then composites voxel scanlines into its
// portion of the intermediate image by pulling two-scanline tasks from a
// queue (dynamic task stealing for load balance), and finally the
// intermediate image is warped in parallel into the framebuffer. Because
// shear-warp processes voxels in storage order, the L1 replacement miss
// rate is low (~1% in the paper) and synchronization — the task queue
// and the phase barriers — is a significant fraction of time, which is
// what the shared-cache architectures reduce (Figure 7).
type Volpack struct {
	Size    int // image edge and voxel rows/cols (default 64)
	Depth   int // voxel slices composited per pixel (default 32)
	NumCPUs int

	prog     *asm.Program
	refInter []float64
	refFinal []float64
	seed     int64
}

// VolpackParams configures Volpack; zero fields take defaults.
type VolpackParams struct {
	Size, Depth int
}

// NewVolpack builds the workload; zero params mean the default scale.
func NewVolpack(p VolpackParams) *Volpack {
	w := &Volpack{Size: 64, Depth: 32, NumCPUs: 4, seed: 12}
	if p.Size > 0 {
		w.Size = p.Size
	}
	if p.Depth > 0 {
		w.Depth = p.Depth
	}
	return w
}

func init() { register("volpack", func() Workload { return NewVolpack(VolpackParams{}) }) }

const (
	volpackVoxBase = 0x0040_0000 // voxel volume (read-only shared)
	volpackCut     = 12.0        // early-termination opacity threshold
	volpackTblLen  = 256
)

// Name implements Workload.
func (w *Volpack) Name() string { return "volpack" }

// Description implements Workload.
func (w *Volpack) Description() string {
	return "shear-warp volume renderer: low miss rates, task-queue synchronization"
}

// MemBytes implements Workload.
func (w *Volpack) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *Volpack) Threads() int { return w.NumCPUs }

func (w *Volpack) voxels() []uint8 {
	rng := rand.New(rand.NewSource(w.seed))
	v := make([]uint8, w.Depth*w.Size*w.Size)
	for i := range v {
		v[i] = uint8(rng.Intn(256))
	}
	return v
}

func shadeTable() []float64 {
	t := make([]float64, volpackTblLen)
	for i := range t {
		fi := float64(int32(i))
		t[i] = 1.0 / (1.0 + fi*fi*0.001)
	}
	return t
}

func weightTable(depth int) []float64 {
	t := make([]float64, depth)
	for z := range t {
		t[z] = 1.0 / (1.0 + float64(int32(z))*0.25)
	}
	return t
}

// reference mirrors the guest composite and warp exactly.
func (w *Volpack) reference(vox []uint8) (inter, final []float64) {
	n, d := w.Size, w.Depth
	table := shadeTable()
	wt := weightTable(d)
	inter = make([]float64, n*n)
	for y := 0; y < n; y++ {
		for z := 0; z < d; z++ {
			row := (y + z) & (n - 1) // shear
			for x := 0; x < n; x++ {
				if inter[y*n+x] > volpackCut {
					continue // early ray termination
				}
				v := vox[(z*n+row)*n+x]
				inter[y*n+x] += table[v] * wt[z]
			}
		}
	}
	final = make([]float64, n*n)
	for y := 0; y < n; y++ {
		src := (y + 17) & (n - 1) // the warp resamples across task rows
		for x := 0; x < n; x++ {
			final[y*n+x] = 0.5 * (inter[y*n+x] + inter[src*n+x])
		}
	}
	return inter, final
}

// Configure implements Workload.
func (w *Volpack) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs
	n, d := w.Size, w.Depth
	if n&(n-1) != 0 {
		return fmt.Errorf("volpack: size %d must be a power of two", n)
	}
	if n%(2*w.NumCPUs) != 0 {
		return fmt.Errorf("volpack: size %d must divide into two-scanline tasks across %d CPUs", n, w.NumCPUs)
	}
	nTasks := n / 2

	b := asm.NewBuilder()
	// R20 tid; R25 = n; R24 = d. Phase temporaries documented inline.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R25, int32(n))
	b.LI(asm.R24, int32(d))

	// --- Phase 1: shading table, split across CPUs ---
	// table[i] = 1 / (1 + i*i*0.001) for i in [tid*len/4, ...).
	per := volpackTblLen / w.NumCPUs
	b.LA(asm.R8, "consts")
	b.LD(asm.F10, 0, asm.R8)  // 1.0
	b.LD(asm.F11, 8, asm.R8)  // 0.001
	b.LD(asm.F12, 16, asm.R8) // 0.5
	b.LD(asm.F13, 24, asm.R8) // cut
	b.LI(asm.R9, int32(per))
	b.MUL(asm.R16, asm.R20, asm.R9) // i
	b.ADDI(asm.R17, asm.R16, int32(per))
	b.LA(asm.R18, "table")
	b.Label("vp_tbl")
	b.CVTIF(asm.F0, asm.R16)
	b.FMULD(asm.F0, asm.F0, asm.F0)
	b.FMULD(asm.F0, asm.F0, asm.F11)
	b.FADDD(asm.F0, asm.F0, asm.F10)
	b.FDIVD(asm.F0, asm.F10, asm.F0)
	b.SLLI(asm.R9, asm.R16, 3)
	b.ADD(asm.R9, asm.R18, asm.R9)
	b.SD(asm.F0, 0, asm.R9)
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "vp_tbl")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	// --- Phase 2: composite via the task queue ---
	b.Label("vp_next")
	b.LA(asm.A0, "queue")
	b.JAL(guestlib.LTaskNext)
	b.LI(asm.R8, -1)
	b.BEQ(asm.RV, asm.R8, "vp_comp_done")
	// Task RV covers intermediate rows 2*RV and 2*RV+1.
	b.SLLI(asm.R21, asm.RV, 1) // first row
	b.ADDI(asm.R22, asm.R21, 2)
	b.Label("vp_row")
	// R16 = z loop.
	b.LI(asm.R16, 0)
	b.Label("vp_z")
	// voxel row = (y + z) & (n-1); row base = vox + ((z*n + row) * n).
	b.ADD(asm.R9, asm.R21, asm.R16)
	b.ANDI(asm.R9, asm.R9, uint32(n-1))
	b.MUL(asm.R10, asm.R16, asm.R25)
	b.ADD(asm.R10, asm.R10, asm.R9)
	b.MUL(asm.R10, asm.R10, asm.R25)
	b.LIU(asm.R11, volpackVoxBase)
	b.ADD(asm.R10, asm.R11, asm.R10) // voxel row base
	// weight wz in F1.
	b.LA(asm.R11, "wtab")
	b.SLLI(asm.R12, asm.R16, 3)
	b.ADD(asm.R11, asm.R11, asm.R12)
	b.LD(asm.F1, 0, asm.R11)
	// image row base in R12.
	b.MUL(asm.R12, asm.R21, asm.R25)
	b.SLLI(asm.R12, asm.R12, 3)
	b.LA(asm.R11, "inter")
	b.ADD(asm.R12, asm.R11, asm.R12)
	// x loop: R17.
	b.LI(asm.R17, 0)
	b.Label("vp_x")
	b.SLLI(asm.R9, asm.R17, 3)
	b.ADD(asm.R9, asm.R12, asm.R9) // &img[y][x]
	b.LD(asm.F2, 0, asm.R9)
	b.FLT(asm.R11, asm.F13, asm.F2) // cut < img ?
	b.BNEZ(asm.R11, "vp_skip")      // early ray termination
	b.ADD(asm.R13, asm.R10, asm.R17)
	b.LB(asm.R13, 0, asm.R13) // voxel
	b.SLLI(asm.R13, asm.R13, 3)
	b.LA(asm.R14, "table")
	b.ADD(asm.R13, asm.R14, asm.R13)
	b.LD(asm.F3, 0, asm.R13)
	b.FMULD(asm.F3, asm.F3, asm.F1)
	b.FADDD(asm.F2, asm.F2, asm.F3)
	b.SD(asm.F2, 0, asm.R9)
	b.Label("vp_skip")
	b.ADDI(asm.R17, asm.R17, 1)
	b.BLT(asm.R17, asm.R25, "vp_x")
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R24, "vp_z")
	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "vp_row")
	b.J("vp_next")
	b.Label("vp_comp_done")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	// --- Phase 3: warp; each CPU owns n/4 final rows ---
	rows := n / w.NumCPUs
	b.LI(asm.R9, int32(rows))
	b.MUL(asm.R21, asm.R20, asm.R9)
	b.ADDI(asm.R22, asm.R21, int32(rows))
	b.Label("vp_w_y")
	b.ADDI(asm.R9, asm.R21, 17)
	b.ANDI(asm.R9, asm.R9, uint32(n-1)) // src row
	b.MUL(asm.R10, asm.R9, asm.R25)
	b.SLLI(asm.R10, asm.R10, 3)
	b.LA(asm.R11, "inter")
	b.ADD(asm.R10, asm.R11, asm.R10) // &inter[src][0]
	b.MUL(asm.R12, asm.R21, asm.R25)
	b.SLLI(asm.R12, asm.R12, 3)
	b.ADD(asm.R13, asm.R11, asm.R12) // &inter[y][0]
	b.LA(asm.R11, "final")
	b.ADD(asm.R14, asm.R11, asm.R12) // &final[y][0]
	b.LI(asm.R17, 0)
	b.Label("vp_w_x")
	b.SLLI(asm.R9, asm.R17, 3)
	b.ADD(asm.R15, asm.R13, asm.R9)
	b.LD(asm.F0, 0, asm.R15)
	b.ADD(asm.R15, asm.R10, asm.R9)
	b.LD(asm.F1, 0, asm.R15)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.FMULD(asm.F0, asm.F0, asm.F12)
	b.ADD(asm.R15, asm.R14, asm.R9)
	b.SD(asm.F0, 0, asm.R15)
	b.ADDI(asm.R17, asm.R17, 1)
	b.BLT(asm.R17, asm.R25, "vp_w_x")
	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "vp_w_y")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(8)
	b.DataLabel("consts")
	b.Float64(1.0, 0.001, 0.5, volpackCut)
	b.DataLabel("table")
	b.Zero(uint32(8 * volpackTblLen))
	b.DataLabel("wtab")
	b.Zero(uint32(8 * d))
	b.DataLabel("inter")
	b.Zero(uint32(8 * n * n))
	b.DataLabel("final")
	b.Zero(uint32(8 * n * n))
	guestlib.EmitTaskQueueData(b, "queue", uint32(nTasks))
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	setupSPMD(m, p, w.NumCPUs)

	vox := w.voxels()
	for i, v := range vox {
		m.Img.Write8(volpackVoxBase+uint32(i), v)
	}
	for i, v := range weightTable(d) {
		m.Img.WriteF64(p.Addr("wtab")+uint32(8*i), v)
	}
	w.refInter, w.refFinal = w.reference(vox)
	return nil
}

// Validate implements Workload.
func (w *Volpack) Validate(m *core.Machine) error {
	n := w.Size
	// The shading table itself (computed by the guest).
	ref := shadeTable()
	for i, want := range ref {
		if got := m.Img.ReadF64(w.prog.Addr("table") + uint32(8*i)); got != want {
			return fmt.Errorf("volpack: table[%d] = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < n*n; i++ {
		if got := m.Img.ReadF64(w.prog.Addr("inter") + uint32(8*i)); got != w.refInter[i] {
			return fmt.Errorf("volpack: inter[%d][%d] = %v, want %v", i/n, i%n, got, w.refInter[i])
		}
		if got := m.Img.ReadF64(w.prog.Addr("final") + uint32(8*i)); got != w.refFinal[i] {
			return fmt.Errorf("volpack: final[%d][%d] = %v, want %v", i/n, i%n, got, w.refFinal[i])
		}
	}
	return nil
}
