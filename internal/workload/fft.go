package workload

import (
	"fmt"
	"math"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// FFT reproduces the nasa7 FFT kernel parallelized by the SUIF compiler
// (Section 3.2.2): a batch of independent 1-D FFTs whose outer loop the
// compiler parallelizes across procedure boundaries, giving fairly
// large-grained parallelism. Each CPU transforms its own vectors in
// place; the twiddle and bit-reversal tables are shared read-only. There
// is essentially no read-write sharing, so the three architectures
// perform similarly (Figure 9), with small L2-level differences.
type FFT struct {
	N       int // points per FFT (power of two)
	Batches int // number of vectors (divisible by NumCPUs)
	NumCPUs int

	prog *asm.Program
	ref  [][]float64 // expected output, re/im interleaved per vector
}

// FFTParams configures FFT; zero fields take defaults.
type FFTParams struct {
	N, Batches int
}

// NewFFT builds the workload; zero params mean the default scale.
func NewFFT(p FFTParams) *FFT {
	w := &FFT{N: 256, Batches: 48, NumCPUs: 4}
	if p.N > 0 {
		w.N = p.N
	}
	if p.Batches > 0 {
		w.Batches = p.Batches
	}
	return w
}

func init() { register("fft", func() Workload { return NewFFT(FFTParams{}) }) }

const fftDataBase = 0x0040_0000 // vectors live outside the program image

// Name implements Workload.
func (w *FFT) Name() string { return "fft" }

// Description implements Workload.
func (w *FFT) Description() string {
	return "nasa7 FFT kernel (SUIF): coarse-grained batches, read-only shared tables"
}

// MemBytes implements Workload.
func (w *FFT) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *FFT) Threads() int { return w.NumCPUs }

// twiddles returns the N/2 complex roots of unity used by both guest
// and mirror (identical values: the guest loads this exact table).
func (w *FFT) twiddles() []float64 {
	t := make([]float64, w.N) // N/2 complex pairs
	for j := 0; j < w.N/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(w.N)
		t[2*j] = math.Cos(ang)
		t[2*j+1] = math.Sin(ang)
	}
	return t
}

func (w *FFT) revTable() []uint32 {
	bits := 0
	for 1<<bits < w.N {
		bits++
	}
	t := make([]uint32, w.N)
	for i := range t {
		r := uint32(0)
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		t[i] = r
	}
	return t
}

// inputs generates the deterministic input vectors.
func (w *FFT) inputs() [][]float64 {
	vs := make([][]float64, w.Batches)
	for v := range vs {
		a := make([]float64, 2*w.N)
		for i := 0; i < w.N; i++ {
			// A mix of tones; cheap, deterministic, and exactly
			// representable operations are not required here since both
			// guest and mirror read the same initialized memory.
			a[2*i] = math.Sin(2*math.Pi*float64((v+1)*i)/float64(w.N)) + 0.25*float64(i%5)
			a[2*i+1] = 0.5 * math.Cos(2*math.Pi*float64(i*3)/float64(w.N))
		}
		vs[v] = a
	}
	return vs
}

// fftMirror transforms a (re/im interleaved) in place with the guest's
// exact operation order.
func (w *FFT) fftMirror(a []float64, tw []float64, rev []uint32) {
	n := w.N
	for i := 0; i < n; i++ {
		j := int(rev[i])
		if i < j {
			a[2*i], a[2*j] = a[2*j], a[2*i]
			a[2*i+1], a[2*j+1] = a[2*j+1], a[2*i+1]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		step := n / length
		for i := 0; i < n; i += length {
			for k := 0; k < half; k++ {
				wr := tw[2*k*step]
				wi := tw[2*k*step+1]
				ur, ui := a[2*(i+k)], a[2*(i+k)+1]
				tr, ti := a[2*(i+k+half)], a[2*(i+k+half)+1]
				vr := tr*wr - ti*wi
				vi := tr*wi + ti*wr
				a[2*(i+k)] = ur + vr
				a[2*(i+k)+1] = ui + vi
				a[2*(i+k+half)] = ur - vr
				a[2*(i+k+half)+1] = ui - vi
			}
		}
	}
}

// Configure implements Workload.
func (w *FFT) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs
	if w.N&(w.N-1) != 0 {
		return fmt.Errorf("fft: N=%d must be a power of two", w.N)
	}
	if w.Batches%w.NumCPUs != 0 {
		return fmt.Errorf("fft: batches (%d) must divide by %d CPUs", w.Batches, w.NumCPUs)
	}
	n := w.N
	vecBytes := uint32(16 * n)
	per := w.Batches / w.NumCPUs

	b := asm.NewBuilder()
	// R20 tid, R21 vector index, R22 limit, R18 vector base.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R8, int32(per))
	b.MUL(asm.R21, asm.R20, asm.R8)
	b.ADDI(asm.R22, asm.R21, int32(per))

	b.Label("fft_v")
	b.LIU(asm.R9, fftDataBase)
	b.LIU(asm.R8, vecBytes)
	b.MUL(asm.R10, asm.R21, asm.R8)
	b.ADD(asm.R18, asm.R9, asm.R10) // vector base

	// --- bit-reversal permutation ---
	b.LI(asm.R16, 0) // i
	b.LA(asm.R19, "revtab")
	b.Label("fft_br")
	b.SLLI(asm.R9, asm.R16, 2)
	b.ADD(asm.R9, asm.R19, asm.R9)
	b.LW(asm.R8, 0, asm.R9) // j
	b.BGE(asm.R16, asm.R8, "fft_brs")
	// swap complex i <-> j
	b.SLLI(asm.R9, asm.R16, 4)
	b.ADD(asm.R9, asm.R18, asm.R9)
	b.SLLI(asm.R10, asm.R8, 4)
	b.ADD(asm.R10, asm.R18, asm.R10)
	b.LD(asm.F0, 0, asm.R9)
	b.LD(asm.F1, 8, asm.R9)
	b.LD(asm.F2, 0, asm.R10)
	b.LD(asm.F3, 8, asm.R10)
	b.SD(asm.F2, 0, asm.R9)
	b.SD(asm.F3, 8, asm.R9)
	b.SD(asm.F0, 0, asm.R10)
	b.SD(asm.F1, 8, asm.R10)
	b.Label("fft_brs")
	b.ADDI(asm.R16, asm.R16, 1)
	b.LI(asm.R8, int32(n))
	b.BLT(asm.R16, asm.R8, "fft_br")

	// --- butterfly stages ---
	// R16 = len, R14 = half, R13 = step, R17 = i, R15 = k.
	b.LI(asm.R16, 2)
	b.Label("fft_stage")
	b.SRLI(asm.R14, asm.R16, 1) // half
	b.LI(asm.R8, int32(n))
	b.DIV(asm.R13, asm.R8, asm.R16) // step
	b.LI(asm.R17, 0)                // i
	b.Label("fft_i")
	b.LI(asm.R15, 0) // k
	b.Label("fft_k")
	// w = tw[k*step]
	b.MUL(asm.R9, asm.R15, asm.R13)
	b.SLLI(asm.R9, asm.R9, 4)
	b.LA(asm.R10, "twiddle")
	b.ADD(asm.R9, asm.R10, asm.R9)
	b.LD(asm.F0, 0, asm.R9) // wr
	b.LD(asm.F1, 8, asm.R9) // wi
	// u = a[i+k], t = a[i+k+half]
	b.ADD(asm.R9, asm.R17, asm.R15)
	b.SLLI(asm.R9, asm.R9, 4)
	b.ADD(asm.R9, asm.R18, asm.R9) // &a[i+k]
	b.SLLI(asm.R10, asm.R14, 4)
	b.ADD(asm.R10, asm.R9, asm.R10) // &a[i+k+half]
	b.LD(asm.F2, 0, asm.R9)         // ur
	b.LD(asm.F3, 8, asm.R9)         // ui
	b.LD(asm.F4, 0, asm.R10)        // tr
	b.LD(asm.F5, 8, asm.R10)        // ti
	// v = t * w (complex)
	b.FMULD(asm.F6, asm.F4, asm.F0)
	b.FMULD(asm.F8, asm.F5, asm.F1)
	b.FSUBD(asm.F6, asm.F6, asm.F8) // vr = tr*wr - ti*wi
	b.FMULD(asm.F7, asm.F4, asm.F1)
	b.FMULD(asm.F8, asm.F5, asm.F0)
	b.FADDD(asm.F7, asm.F7, asm.F8) // vi = tr*wi + ti*wr
	// a[i+k] = u + v ; a[i+k+half] = u - v
	b.FADDD(asm.F8, asm.F2, asm.F6)
	b.SD(asm.F8, 0, asm.R9)
	b.FADDD(asm.F8, asm.F3, asm.F7)
	b.SD(asm.F8, 8, asm.R9)
	b.FSUBD(asm.F8, asm.F2, asm.F6)
	b.SD(asm.F8, 0, asm.R10)
	b.FSUBD(asm.F8, asm.F3, asm.F7)
	b.SD(asm.F8, 8, asm.R10)
	b.ADDI(asm.R15, asm.R15, 1)
	b.BLT(asm.R15, asm.R14, "fft_k")
	b.ADD(asm.R17, asm.R17, asm.R16)
	b.LI(asm.R8, int32(n))
	b.BLT(asm.R17, asm.R8, "fft_i")
	b.SLLI(asm.R16, asm.R16, 1)
	b.BLE(asm.R16, asm.R8, "fft_stage")

	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "fft_v")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(8)
	b.DataLabel("twiddle")
	b.Float64(w.twiddles()...)
	b.AlignData(4)
	b.DataLabel("revtab")
	b.Word32(w.revTable()...)
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	setupSPMD(m, p, w.NumCPUs)

	// The vectors are private to their owners; the tables in the data
	// section are shared (read-only).
	dataEnd := p.DataEnd()
	m.SetSharedData(func(a uint32) bool { return a >= DataBase && a < dataEnd })

	ins := w.inputs()
	tw := w.twiddles()
	rev := w.revTable()
	w.ref = make([][]float64, w.Batches)
	for v, a := range ins {
		base := fftDataBase + uint32(v)*vecBytes
		for i, f := range a {
			m.Img.WriteF64(base+uint32(8*i), f)
		}
		out := append([]float64(nil), a...)
		w.fftMirror(out, tw, rev)
		w.ref[v] = out
	}
	return nil
}

// Validate implements Workload.
func (w *FFT) Validate(m *core.Machine) error {
	vecBytes := uint32(16 * w.N)
	for v, want := range w.ref {
		base := fftDataBase + uint32(v)*vecBytes
		for i, f := range want {
			if got := m.Img.ReadF64(base + uint32(8*i)); got != f {
				return fmt.Errorf("fft: vector %d word %d = %v, want %v", v, i, got, f)
			}
		}
	}
	return nil
}
