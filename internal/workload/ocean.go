package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// Ocean reproduces the SPLASH2 Ocean kernel (Section 3.2.1): a multigrid
// solver over an n x n grid where each processor owns a square subgrid
// and communicates only at subgrid boundaries. The per-CPU working set
// (a 65x65-ish quadrant of doubles) exceeds every L1 in the study, so
// all three architectures suffer large L1 replacement miss rates and the
// bandwidth of the L1-L2 path dominates — which is what penalizes the
// shared-L2 architecture's narrower, higher-latency, write-through-
// loaded L2 (Figure 6).
type Ocean struct {
	N        int // fine grid edge including boundary; interior N-2
	FineIter int
	CoarseIt int
	NumCPUs  int

	prog *asm.Program
	refA []float64 // expected final fine grid
	refC []float64 // expected final coarse grid
	seed int64
}

// OceanParams configures Ocean; zero fields take defaults.
type OceanParams struct {
	N, FineIter, CoarseIt int
}

// NewOcean builds the workload; zero params mean the default scale
// (the paper's 130x130 data set).
func NewOcean(p OceanParams) *Ocean {
	w := &Ocean{N: 130, FineIter: 6, CoarseIt: 4, NumCPUs: 4, seed: 26}
	if p.N > 0 {
		w.N = p.N
	}
	if p.FineIter > 0 {
		w.FineIter = p.FineIter
	}
	if p.CoarseIt > 0 {
		w.CoarseIt = p.CoarseIt
	}
	return w
}

func init() { register("ocean", func() Workload { return NewOcean(OceanParams{}) }) }

// Name implements Workload.
func (w *Ocean) Name() string { return "ocean" }

// Description implements Workload.
func (w *Ocean) Description() string {
	return "SPLASH2 Ocean multigrid: big per-CPU working sets, boundary-only sharing"
}

// MemBytes implements Workload.
func (w *Ocean) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *Ocean) Threads() int { return w.NumCPUs }

func (w *Ocean) coarseN() int { return w.N/2 + 1 }

// reference runs the Go mirror: FineIter Jacobi sweeps on the fine grid,
// restriction to the coarse grid, CoarseIt sweeps there, and a blend
// back into the fine grid, all in the guest's FP operation order.
func (w *Ocean) reference(a0 []float64) (fine, coarse []float64) {
	n, m := w.N, w.coarseN()
	a := append([]float64(nil), a0...)
	b := make([]float64, n*n)
	// dst boundary mirrors src boundary (never written by sweeps).
	for i := 0; i < n; i++ {
		b[i] = a[i]
		b[(n-1)*n+i] = a[(n-1)*n+i]
		b[i*n] = a[i*n]
		b[i*n+n-1] = a[i*n+n-1]
	}
	src, dst := a, b
	for t := 0; t < w.FineIter; t++ {
		jacobi(src, dst, n)
		src, dst = dst, src
	}
	fine = src // latest values

	c := make([]float64, m*m)
	d := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			fi, fj := 2*i, 2*j
			if fi > n-1 {
				fi = n - 1
			}
			if fj > n-1 {
				fj = n - 1
			}
			c[i*m+j] = fine[fi*n+fj]
			d[i*m+j] = c[i*m+j] // boundary carry-over for the coarse sweeps
		}
	}
	cs, cd := c, d
	for t := 0; t < w.CoarseIt; t++ {
		jacobi(cs, cd, m)
		cs, cd = cd, cs
	}
	coarse = cs

	for i := 1; i < m-1; i++ {
		for j := 1; j < m-1; j++ {
			fi, fj := 2*i, 2*j
			fine[fi*n+fj] = 0.5 * (fine[fi*n+fj] + coarse[i*m+j])
		}
	}
	return fine, coarse
}

// jacobi performs one 5-point sweep over the interior, in the guest's
// exact FP order: ((((c+up)+down)+left)+right)*0.2.
func jacobi(src, dst []float64, n int) {
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			v := src[i*n+j]
			v += src[(i-1)*n+j]
			v += src[(i+1)*n+j]
			v += src[i*n+j-1]
			v += src[i*n+j+1]
			dst[i*n+j] = v * 0.2
		}
	}
}

// emitSweep emits one parallel Jacobi sweep over [r0,r1) x [c0,c1) rows
// and columns held in R16 (i) / R17 (j). R18 = src base, R19 = dst base,
// R25 = row bytes. F10 holds 0.2.
func (w *Ocean) emitSweep(b *asm.Builder, tag string, n int) {
	rowBytes := int32(8 * n)
	b.Label(tag + "_ri")
	// R14 = src + i*rowBytes + c0*8 ; R15 = dst + ...
	b.LI(asm.R8, rowBytes)
	b.MUL(asm.R9, asm.R16, asm.R8)
	b.ADD(asm.R14, asm.R18, asm.R9)
	b.ADD(asm.R15, asm.R19, asm.R9)
	b.SLLI(asm.R9, asm.R12, 3) // c0*8
	b.ADD(asm.R14, asm.R14, asm.R9)
	b.ADD(asm.R15, asm.R15, asm.R9)
	b.MOVE(asm.R17, asm.R12) // j = c0
	b.Label(tag + "_rj")
	b.LD(asm.F0, 0, asm.R14)
	b.LD(asm.F1, int32(-rowBytes), asm.R14)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.LD(asm.F1, rowBytes, asm.R14)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.LD(asm.F1, -8, asm.R14)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.LD(asm.F1, 8, asm.R14)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.FMULD(asm.F0, asm.F0, asm.F10)
	b.SD(asm.F0, 0, asm.R15)
	b.ADDI(asm.R14, asm.R14, 8)
	b.ADDI(asm.R15, asm.R15, 8)
	b.ADDI(asm.R17, asm.R17, 1)
	b.BLT(asm.R17, asm.R13, tag+"_rj") // j < c1
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R11, tag+"_ri") // i < r1
}

// Configure implements Workload. Four CPUs use the paper's 2x2 square
// subgrid decomposition; other processor counts fall back to row strips
// (the other common Ocean decomposition).
func (w *Ocean) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs
	n, cN := w.N, w.coarseN()
	quad := w.NumCPUs == 4
	if quad && ((n-2)%2 != 0 || (cN-2)%2 != 0) {
		return fmt.Errorf("ocean: interior sizes must be even for a 2x2 decomposition (N=%d)", n)
	}
	if !quad && ((n-2)%w.NumCPUs != 0 || (cN-2)%w.NumCPUs != 0) {
		return fmt.Errorf("ocean: interiors (%d, %d) must divide into %d row strips", n-2, cN-2, w.NumCPUs)
	}
	fineHalf := (n - 2) / 2
	coarseHalf := (cN - 2) / 2

	b := asm.NewBuilder()
	// R20 tid, R21 iter, R26 row-half selector (tid/2), R27 col-half
	// (tid%2). Bounds per sweep go in R16(i)/R11(r1)/R12(c0)/R13(c1).
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.SRLI(asm.R26, asm.R20, 1)
	b.ANDI(asm.R27, asm.R20, 1)
	b.LA(asm.R8, "consts")
	b.LD(asm.F10, 0, asm.R8) // 0.2
	b.LD(asm.F11, 8, asm.R8) // 0.5

	// --- fine sweeps ---
	b.LI(asm.R21, 0)
	b.Label("oc_fine")
	// src/dst by parity.
	b.LA(asm.R18, "gridA")
	b.LA(asm.R19, "gridB")
	b.ANDI(asm.R8, asm.R21, 1)
	b.BEQZ(asm.R8, "oc_fs")
	b.MOVE(asm.R9, asm.R18)
	b.MOVE(asm.R18, asm.R19)
	b.MOVE(asm.R19, asm.R9)
	b.Label("oc_fs")
	if quad {
		// Quadrant bounds: r0 = 1 + (tid/2)*half, c0 = 1 + (tid%2)*half.
		b.LI(asm.R8, int32(fineHalf))
		b.MUL(asm.R16, asm.R26, asm.R8)
		b.ADDI(asm.R16, asm.R16, 1) // i = r0
		b.ADDI(asm.R11, asm.R16, int32(fineHalf))
		b.MUL(asm.R12, asm.R27, asm.R8)
		b.ADDI(asm.R12, asm.R12, 1)
		b.ADDI(asm.R13, asm.R12, int32(fineHalf))
	} else {
		// Row strips: rows [1 + tid*strip, +strip), all interior columns.
		strip := (n - 2) / w.NumCPUs
		b.LI(asm.R8, int32(strip))
		b.MUL(asm.R16, asm.R20, asm.R8)
		b.ADDI(asm.R16, asm.R16, 1)
		b.ADDI(asm.R11, asm.R16, int32(strip))
		b.LI(asm.R12, 1)
		b.LI(asm.R13, int32(n-1))
	}
	w.emitSweep(b, "oc_f", n)
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.ADDI(asm.R21, asm.R21, 1)
	b.LI(asm.R8, int32(w.FineIter))
	b.BLT(asm.R21, asm.R8, "oc_fine")

	// Fine result array (parity of FineIter): even -> gridA.
	b.LA(asm.R18, "gridA")
	if w.FineIter%2 == 1 {
		b.LA(asm.R18, "gridB")
	}

	// --- restriction: C[i][j] = fine[min(2i,n-1)][min(2j,n-1)] ---
	// Rows split evenly: [tid*q, min((tid+1)*q, cN)).
	q := (cN + w.NumCPUs - 1) / w.NumCPUs
	b.LA(asm.R19, "gridC")
	b.LI(asm.R8, int32(q))
	b.MUL(asm.R16, asm.R20, asm.R8)
	b.ADDI(asm.R11, asm.R16, int32(q))
	b.LI(asm.R8, int32(cN))
	b.BLT(asm.R11, asm.R8, "oc_rs")
	b.MOVE(asm.R11, asm.R8)
	b.Label("oc_rs")
	b.BGE(asm.R16, asm.R11, "oc_rdone")
	b.Label("oc_r_i")
	// fi = min(2i, n-1)
	b.SLLI(asm.R9, asm.R16, 1)
	b.LI(asm.R8, int32(n-1))
	b.BLT(asm.R9, asm.R8, "oc_rfi")
	b.MOVE(asm.R9, asm.R8)
	b.Label("oc_rfi")
	b.LI(asm.R8, int32(8*n))
	b.MUL(asm.R14, asm.R9, asm.R8)
	b.ADD(asm.R14, asm.R18, asm.R14) // fine row base
	b.LI(asm.R8, int32(8*cN))
	b.MUL(asm.R15, asm.R16, asm.R8)
	b.ADD(asm.R15, asm.R19, asm.R15) // coarse row base
	b.LI(asm.R17, 0)
	b.Label("oc_r_j")
	b.SLLI(asm.R9, asm.R17, 1)
	b.LI(asm.R8, int32(n-1))
	b.BLT(asm.R9, asm.R8, "oc_rfj")
	b.MOVE(asm.R9, asm.R8)
	b.Label("oc_rfj")
	b.SLLI(asm.R9, asm.R9, 3)
	b.ADD(asm.R9, asm.R14, asm.R9)
	b.LD(asm.F0, 0, asm.R9)
	b.SLLI(asm.R9, asm.R17, 3)
	b.ADD(asm.R9, asm.R15, asm.R9)
	b.SD(asm.F0, 0, asm.R9)
	// D gets the same value (boundary carry-over for coarse sweeps).
	b.LA(asm.R10, "gridD")
	b.SUB(asm.R9, asm.R9, asm.R19)
	b.ADD(asm.R9, asm.R10, asm.R9)
	b.SD(asm.F0, 0, asm.R9)
	b.ADDI(asm.R17, asm.R17, 1)
	b.LI(asm.R8, int32(cN))
	b.BLT(asm.R17, asm.R8, "oc_r_j")
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R11, "oc_r_i")
	b.Label("oc_rdone")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)

	// --- coarse sweeps ---
	b.LI(asm.R21, 0)
	b.Label("oc_coarse")
	b.LA(asm.R18, "gridC")
	b.LA(asm.R19, "gridD")
	b.ANDI(asm.R8, asm.R21, 1)
	b.BEQZ(asm.R8, "oc_cs")
	b.MOVE(asm.R9, asm.R18)
	b.MOVE(asm.R18, asm.R19)
	b.MOVE(asm.R19, asm.R9)
	b.Label("oc_cs")
	if quad {
		b.LI(asm.R8, int32(coarseHalf))
		b.MUL(asm.R16, asm.R26, asm.R8)
		b.ADDI(asm.R16, asm.R16, 1)
		b.ADDI(asm.R11, asm.R16, int32(coarseHalf))
		b.MUL(asm.R12, asm.R27, asm.R8)
		b.ADDI(asm.R12, asm.R12, 1)
		b.ADDI(asm.R13, asm.R12, int32(coarseHalf))
	} else {
		strip := (cN - 2) / w.NumCPUs
		b.LI(asm.R8, int32(strip))
		b.MUL(asm.R16, asm.R20, asm.R8)
		b.ADDI(asm.R16, asm.R16, 1)
		b.ADDI(asm.R11, asm.R16, int32(strip))
		b.LI(asm.R12, 1)
		b.LI(asm.R13, int32(cN-1))
	}
	w.emitSweep(b, "oc_c", cN)
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.ADDI(asm.R21, asm.R21, 1)
	b.LI(asm.R8, int32(w.CoarseIt))
	b.BLT(asm.R21, asm.R8, "oc_coarse")

	// --- blend the coarse correction back into the fine grid ---
	b.LA(asm.R18, "gridA")
	if w.FineIter%2 == 1 {
		b.LA(asm.R18, "gridB")
	}
	b.LA(asm.R19, "gridC")
	if w.CoarseIt%2 == 1 {
		b.LA(asm.R19, "gridD")
	}
	// Interior coarse rows split as quadrant halves over rows only:
	// rows [1 + tid*(cN-2)/4, ...+(cN-2)/4).
	rows := (cN - 2) / w.NumCPUs
	b.LI(asm.R8, int32(rows))
	b.MUL(asm.R16, asm.R20, asm.R8)
	b.ADDI(asm.R16, asm.R16, 1)
	b.ADDI(asm.R11, asm.R16, int32(rows))
	b.Label("oc_b_i")
	b.LI(asm.R8, int32(8*cN))
	b.MUL(asm.R15, asm.R16, asm.R8)
	b.ADD(asm.R15, asm.R19, asm.R15)
	b.SLLI(asm.R9, asm.R16, 1) // fi = 2i
	b.LI(asm.R8, int32(8*n))
	b.MUL(asm.R14, asm.R9, asm.R8)
	b.ADD(asm.R14, asm.R18, asm.R14)
	b.LI(asm.R17, 1)
	b.Label("oc_b_j")
	b.SLLI(asm.R9, asm.R17, 4) // fj*8 = 2j*8
	b.ADD(asm.R9, asm.R14, asm.R9)
	b.LD(asm.F0, 0, asm.R9)
	b.SLLI(asm.R10, asm.R17, 3)
	b.ADD(asm.R10, asm.R15, asm.R10)
	b.LD(asm.F1, 0, asm.R10)
	b.FADDD(asm.F0, asm.F0, asm.F1)
	b.FMULD(asm.F0, asm.F0, asm.F11)
	b.SD(asm.F0, 0, asm.R9)
	b.ADDI(asm.R17, asm.R17, 1)
	b.LI(asm.R8, int32(cN-1))
	b.BLT(asm.R17, asm.R8, "oc_b_j")
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R11, "oc_b_i")
	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(8)
	b.DataLabel("consts")
	b.Float64(0.2, 0.5)
	b.DataLabel("gridA")
	b.Zero(uint32(8 * n * n))
	b.DataLabel("gridB")
	b.Zero(uint32(8 * n * n))
	b.DataLabel("gridC")
	b.Zero(uint32(8 * cN * cN))
	b.DataLabel("gridD")
	b.Zero(uint32(8 * cN * cN))
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	setupSPMD(m, p, w.NumCPUs)

	// Host-side initialization of grid A (and B's boundary).
	rng := rand.New(rand.NewSource(w.seed))
	a0 := make([]float64, n*n)
	for i := range a0 {
		a0[i] = rng.Float64()
	}
	aBase, bBase := p.Addr("gridA"), p.Addr("gridB")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Img.WriteF64(aBase+uint32(8*(i*n+j)), a0[i*n+j])
		}
	}
	for i := 0; i < n; i++ {
		for _, idx := range []int{i, (n-1)*n + i, i * n, i*n + n - 1} {
			m.Img.WriteF64(bBase+uint32(8*idx), a0[idx])
		}
	}
	w.refA, w.refC = w.reference(a0)
	return nil
}

// Validate implements Workload.
func (w *Ocean) Validate(m *core.Machine) error {
	n, cN := w.N, w.coarseN()
	fineLabel := "gridA"
	if w.FineIter%2 == 1 {
		fineLabel = "gridB"
	}
	base := w.prog.Addr(fineLabel)
	for i := 0; i < n*n; i++ {
		if got := m.Img.ReadF64(base + uint32(8*i)); got != w.refA[i] {
			return fmt.Errorf("ocean: fine[%d][%d] = %v, want %v", i/n, i%n, got, w.refA[i])
		}
	}
	coarseLabel := "gridC"
	if w.CoarseIt%2 == 1 {
		coarseLabel = "gridD"
	}
	base = w.prog.Addr(coarseLabel)
	for i := 0; i < cN*cN; i++ {
		if got := m.Img.ReadF64(base + uint32(8*i)); got != w.refC[i] {
			return fmt.Errorf("ocean: coarse[%d][%d] = %v, want %v", i/cN, i%cN, got, w.refC[i])
		}
	}
	return nil
}
