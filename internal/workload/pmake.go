package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/kernel"
	"cmpsim/internal/mem"
)

// Pmake reproduces the multiprogramming and OS workload (Section 3.2.3):
// the compile phase of the Modified Andrew Benchmark run under a
// parallel make — two makes of up to four jobs each, giving eight
// gcc-like processes in separate address spaces, time-shared over the
// four CPUs by the guest kernel. Each process has a large instruction
// working set (its text exceeds the 16 KB I-caches, like gcc's long code
// paths) and a small data working set, and traps into the kernel for
// file reads — so a significant fraction of execution is kernel time on
// shared kernel data, which is what lets the shared-L1 architecture
// stay competitive in Figure 10 despite running unrelated processes.
type Pmake struct {
	Procs   int // compile processes (default 8 = 2 makes x 4 jobs)
	Funcs   int // distinct "compiler phases" = instruction footprint knob
	Passes  int // files compiled per process (Andrew: 17)
	Slots   int // data words a function touches per call
	Quantum int // preemption quantum in cycles; <= 0 disables the timer
	//
	// The paper-faithful default is cooperative scheduling only: the
	// processes yield after each compiled file, and a realistic 1996
	// quantum (~10 ms = 2M cycles) would rarely fire within the run.
	// Setting a small positive quantum turns on genuine timer preemption
	// through the guest kern_switch path.

	prog  *asm.Program
	specs []pmakeFunc
	k     *kernel.Kernel
	ref   []uint32 // expected checksum per process
}

// PmakeParams configures Pmake; zero fields take defaults. Quantum < 0
// disables timer preemption (purely cooperative scheduling).
type PmakeParams struct {
	Procs, Funcs, Passes, Quantum int
}

// NewPmake builds the workload; zero params mean the default scale.
func NewPmake(p PmakeParams) *Pmake {
	w := &Pmake{Procs: 8, Funcs: 96, Passes: 17, Slots: 10, Quantum: -1}
	if p.Procs > 0 {
		w.Procs = p.Procs
	}
	if p.Funcs > 0 {
		w.Funcs = p.Funcs
	}
	if p.Passes > 0 {
		w.Passes = p.Passes
	}
	if p.Quantum != 0 {
		w.Quantum = p.Quantum
	}
	return w
}

func init() { register("pmake", func() Workload { return NewPmake(PmakeParams{}) }) }

// Per-process virtual layout: a text segment shared by all processes
// (the OS shares the gcc binary's text pages) and a private data/stack
// segment. Private segments are staggered by 8 KiB modulo the L1 set
// space so independent processes do not land on identical cache sets.
const (
	pmakeTextV    = 0x0000_1000 // text virtual base
	pmakeTextLim  = 0x0002_0000 // 128 KiB text window
	pmakeDataV    = 0x0002_0000 // data virtual base (== text limit)
	pmakeStackV   = 0x0002_f000 // stack top (phys offset 60 KiB)
	pmakeUserLim  = 0x0003_0000 // end of user virtual space
	pmakeWork     = 1024        // private work-region words per process
	pmakeTextPhys = 0x0010_0000 // the one shared text image
	pmakeDataBase = 0x0020_0000 // first process's private segment
	pmakeDataStep = 0x0001_2000 // 72 KiB stride (64 KiB segment + 8 KiB stagger)
)

func pmakeDataPhys(i int) uint32 { return pmakeDataBase + uint32(i)*pmakeDataStep }

// pmakeFunc is one synthetic "compiler phase": a distinct basic block of
// constants so every function contributes unique text to the
// instruction working set. Its data effect is mirrored in Go.
type pmakeFunc struct {
	offs   []uint32 // word offsets in the work region
	muls   []uint32
	adds   []uint32
	shifts []uint8
}

func (w *Pmake) genSpecs() []pmakeFunc {
	rng := rand.New(rand.NewSource(42))
	specs := make([]pmakeFunc, w.Funcs)
	for f := range specs {
		s := pmakeFunc{
			offs:   make([]uint32, w.Slots),
			muls:   make([]uint32, w.Slots),
			adds:   make([]uint32, w.Slots),
			shifts: make([]uint8, w.Slots),
		}
		for k := 0; k < w.Slots; k++ {
			s.offs[k] = uint32(rng.Intn(pmakeWork))
			s.muls[k] = uint32(rng.Intn(1<<30) | 1)
			s.adds[k] = uint32(rng.Intn(1 << 30))
			s.shifts[k] = uint8(1 + rng.Intn(15))
		}
		specs[f] = s
	}
	return specs
}

// pmakeRepeats is each phase's internal iteration count: the phase loops
// over its slots several times, like a compiler pass iterating over a
// function's IR, which gives gcc-like instruction locality (the paper's
// workload spends ~10% of time on I-stall, not 50%).
const pmakeRepeats = 3

// apply mirrors one function call on a process's work region and returns
// the accumulator the guest leaves in RV.
func (s *pmakeFunc) apply(work []uint32) uint32 {
	var acc uint32
	for r := 0; r < pmakeRepeats; r++ {
		for k := range s.offs {
			x := work[s.offs[k]]
			x = x*s.muls[k] + s.adds[k]
			x ^= x >> s.shifts[k]
			work[s.offs[k]] = x
			acc += x
		}
	}
	return acc
}

// reference computes each process's expected checksum.
func (w *Pmake) reference() []uint32 {
	out := make([]uint32, w.Procs)
	for p := 0; p < w.Procs; p++ {
		work := make([]uint32, pmakeWork)
		var chk uint32
		for pass := 0; pass < w.Passes; pass++ {
			for f := 0; f < w.Funcs; f++ {
				g := (f*7 + pass*13) % w.Funcs
				chk += w.specs[g].apply(work)
				if f&3 == 0 {
					idx := kernel.HashBuf(uint32(pass), uint32(f))
					chk += kernel.BufDataWord(idx, 0)
				}
			}
		}
		out[p] = chk
	}
	return out
}

// Name implements Workload.
func (w *Pmake) Name() string { return "pmake" }

// Description implements Workload.
func (w *Pmake) Description() string {
	return "multiprogramming + OS: 8 gcc-like processes time-shared by the guest kernel"
}

// MemBytes implements Workload.
func (w *Pmake) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *Pmake) Threads() int { return w.Procs }

// buildUserProgram emits the gcc-like compile process.
func (w *Pmake) buildUserProgram() (*asm.Program, error) {
	b := asm.NewBuilder()

	// main: R20 = proc id, R21 = pass, R22 = passes, R23 = checksum,
	// R16 = call counter, R17 = Funcs.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R21, 0)
	b.LI(asm.R22, int32(w.Passes))
	b.LI(asm.R23, 0)
	b.Label("pm_pass")
	b.LI(asm.R16, 0)
	b.LI(asm.R17, int32(w.Funcs))
	b.Label("pm_call")
	// g = (f*7 + pass*13) % Funcs
	b.LI(asm.R8, 7)
	b.MUL(asm.R9, asm.R16, asm.R8)
	b.LI(asm.R8, 13)
	b.MUL(asm.R10, asm.R21, asm.R8)
	b.ADD(asm.R9, asm.R9, asm.R10)
	b.REM(asm.R9, asm.R9, asm.R17)
	// Indirect call through the phase table.
	b.SLLI(asm.R9, asm.R9, 2)
	b.LA(asm.R10, "ftab")
	b.ADD(asm.R10, asm.R10, asm.R9)
	b.LW(asm.R10, 0, asm.R10)
	b.JALR(asm.RA, asm.R10)
	b.ADD(asm.R23, asm.R23, asm.RV)
	// Every 4th call reads a "source file" block through the kernel.
	b.ANDI(asm.R8, asm.R16, 3)
	b.BNEZ(asm.R8, "pm_nord")
	b.LA(asm.A0, "iobuf")
	b.MOVE(asm.A1, asm.R21)
	b.MOVE(asm.A2, asm.R16)
	b.SYSCALL(kernel.SysRead)
	b.LA(asm.R8, "iobuf")
	b.LW(asm.R9, 0, asm.R8)
	b.ADD(asm.R23, asm.R23, asm.R9)
	b.Label("pm_nord")
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "pm_call")
	// One file compiled; let someone else run.
	b.SYSCALL(kernel.SysYield)
	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "pm_pass")
	// Publish the checksum and exit.
	b.LA(asm.R8, "result")
	b.SW(asm.R23, 0, asm.R8)
	b.SYSCALL(kernel.SysExit)
	b.HALT()

	// The compiler phases: each a distinct block of code (the large
	// instruction working set of gcc).
	for f, s := range w.specs {
		b.Label(fmt.Sprintf("fn%d", f))
		b.LI(asm.RV, 0)
		b.LA(asm.R8, "work")
		b.LI(asm.R12, pmakeRepeats)
		b.Label(fmt.Sprintf("fn%d_r", f))
		for k := 0; k < w.Slots; k++ {
			off := int32(4 * s.offs[k])
			b.LW(asm.R9, off, asm.R8)
			b.LIU(asm.R10, s.muls[k])
			b.MUL(asm.R9, asm.R9, asm.R10)
			b.LIU(asm.R10, s.adds[k])
			b.ADD(asm.R9, asm.R9, asm.R10)
			b.SRLI(asm.R11, asm.R9, s.shifts[k])
			b.XOR(asm.R9, asm.R9, asm.R11)
			b.SW(asm.R9, off, asm.R8)
			b.ADD(asm.RV, asm.RV, asm.R9)
		}
		b.ADDI(asm.R12, asm.R12, -1)
		b.BNEZ(asm.R12, fmt.Sprintf("fn%d_r", f))
		b.RET()
	}

	b.AlignData(4)
	b.DataLabel("ftab")
	for f := range w.specs {
		b.WordSym(fmt.Sprintf("fn%d", f))
	}
	b.DataLabel("work")
	b.Zero(4 * pmakeWork)
	b.DataLabel("iobuf")
	b.Zero(4 * kernel.BufWords)
	b.DataLabel("result")
	b.Word32(0)

	return b.Assemble(pmakeTextV, pmakeDataV)
}

// Configure implements Workload.
func (w *Pmake) Configure(m *core.Machine) error {
	w.specs = w.genSpecs()
	prog, err := w.buildUserProgram()
	if err != nil {
		return err
	}
	if prog.TextEnd() >= pmakeTextLim {
		return fmt.Errorf("pmake: text too large (%#x)", prog.TextEnd())
	}
	if prog.DataEnd() >= pmakeStackV-0x1000 {
		return fmt.Errorf("pmake: user image too large (%#x)", prog.DataEnd())
	}
	w.prog = prog

	// One shared text image; a private data segment per process.
	m.LoadText(prog, pmakeTextPhys)
	spaces := make([]mem.Proc, w.Procs)
	for i := range spaces {
		prog.LoadDataAt(m.Img, pmakeDataPhys(i))
		spaces[i] = mem.Proc{
			TextPhys:    pmakeTextPhys,
			TextLimit:   pmakeTextLim,
			DataPhys:    pmakeDataPhys(i),
			UserLimit:   pmakeUserLim,
			KernelStart: kernel.Base,
			KernelLimit: kernel.Limit,
		}
	}

	k, err := kernel.Build(m, spaces, prog.Addr("start"), pmakeStackV)
	if err != nil {
		return err
	}
	w.k = k
	if w.Quantum > 0 {
		k.EnablePreemption(uint64(w.Quantum))
	}

	// Shared data (for the shared-L2 architecture's write policy) is the
	// kernel region; user segments are process-private.
	m.SetSharedData(func(a uint32) bool { return a >= kernel.Base && a < kernel.Limit })

	w.ref = w.reference()
	return nil
}

// Validate implements Workload.
func (w *Pmake) Validate(m *core.Machine) error {
	if !w.k.AllExited() {
		return fmt.Errorf("pmake: not all processes exited")
	}
	for i := 0; i < w.Procs; i++ {
		addr := pmakeDataPhys(i) + (w.prog.Addr("result") - pmakeDataV)
		if got := m.Img.Read32(addr); got != w.ref[i] {
			return fmt.Errorf("pmake: process %d checksum = %#x, want %#x", i, got, w.ref[i])
		}
	}
	return nil
}

// Kernel exposes the kernel instance (for tests and reports).
func (w *Pmake) Kernel() *kernel.Kernel { return w.k }
