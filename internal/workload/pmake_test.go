package workload

import (
	"testing"

	"cmpsim/internal/core"
)

func smallPmake() *Pmake {
	return NewPmake(PmakeParams{Procs: 6, Funcs: 24, Passes: 3})
}

func TestPmakeValidatesOnAllArchitectures(t *testing.T) {
	for _, arch := range core.Arches() {
		t.Run(string(arch), func(t *testing.T) {
			if _, err := Run(smallPmake(), arch, core.ModelMipsy, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPmakeSchedulesAllProcesses(t *testing.T) {
	w := smallPmake()
	if _, err := Run(w, core.SharedMem, core.ModelMipsy, nil); err != nil {
		t.Fatal(err)
	}
	k := w.Kernel()
	if !k.AllExited() {
		t.Fatal("processes left unfinished")
	}
	if k.ExitCount != uint64(w.Procs) {
		t.Errorf("exits = %d, want %d", k.ExitCount, w.Procs)
	}
	// With 6 processes on 4 CPUs and per-pass yields, real context
	// switches must have happened.
	if k.Switches == 0 {
		t.Error("no context switches happened")
	}
	if k.Syscalls == 0 {
		t.Error("no syscalls recorded")
	}
}

func TestPmakeInstructionWorkingSetStressesICache(t *testing.T) {
	// Figure 10: the multiprogramming workload is the only one with a
	// large instruction working set; the I-cache must actually miss.
	w := NewPmake(PmakeParams{Procs: 4, Funcs: 96, Passes: 2})
	r, err := Run(w, core.SharedMem, core.ModelMipsy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemReport.L1I.Misses() == 0 {
		t.Fatal("no instruction cache misses")
	}
	if rate := r.MemReport.L1I.MissRate(); rate < 0.001 {
		t.Errorf("I-cache miss rate %.5f too low for a gcc-like footprint", rate)
	}
}

func TestPmakeFewerProcsThanCPUs(t *testing.T) {
	// Two processes on four CPUs: the two spare CPUs park immediately.
	w := NewPmake(PmakeParams{Procs: 2, Funcs: 8, Passes: 2})
	if _, err := Run(w, core.SharedL1, core.ModelMipsy, nil); err != nil {
		t.Fatal(err)
	}
}
