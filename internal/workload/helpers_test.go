package workload

import (
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
)

// newTestMachine builds a bare machine for Configure-level tests.
func newTestMachine(t *testing.T, arch core.Arch) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(arch, core.ModelMipsy, memsys.DefaultConfig(), MemBytes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
