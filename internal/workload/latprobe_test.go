package workload

import (
	"testing"

	"cmpsim/internal/core"
)

func TestLatProbeValidates(t *testing.T) {
	for _, arch := range core.Arches() {
		w := NewLatProbe(LatProbeParams{ChainBytes: 4 << 10, Iters: 2000})
		if _, err := Run(w, arch, core.ModelMipsy, nil); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
}

// TestGuestMeasuredTable2 reproduces Table 2 from inside the guest: a
// chain that fits the L1 measures the hit time, one that fits only the
// L2 measures the L2 latency, and one that exceeds the L2 measures
// memory latency — through a running CPU model, not the memory-system
// API.
func TestGuestMeasuredTable2(t *testing.T) {
	type window struct{ lo, hi float64 }
	cases := []struct {
		arch  core.Arch
		chain uint32
		want  window
	}{
		// Hits: 1-cycle L1 everywhere under the simple model.
		{core.SharedL1, 8 << 10, window{0.5, 2}},
		{core.SharedL2, 8 << 10, window{0.5, 2}},
		{core.SharedMem, 8 << 10, window{0.5, 2}},
		// L2 level: 256KB misses every L1 but fits every L2.
		// Uniprocessor-style L2: ~11 cycles; crossbar L2: ~15.
		{core.SharedL1, 256 << 10, window{9, 14}},
		{core.SharedL2, 256 << 10, window{13, 18}},
		{core.SharedMem, 256 << 10, window{9, 14}},
		// Memory: 4MB exceeds the 2MB shared L2 and 512KB private L2s.
		{core.SharedL1, 4 << 20, window{55, 72}},
		{core.SharedL2, 4 << 20, window{58, 76}},
		{core.SharedMem, 4 << 20, window{55, 72}},
	}
	for _, c := range cases {
		lat, err := MeasureLoadLatency(c.arch, core.ModelMipsy, c.chain)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.arch, c.chain, err)
		}
		if lat < c.want.lo || lat > c.want.hi {
			t.Errorf("%s with %dKB chain: measured %.2f cycles/load, want [%.0f,%.0f]",
				c.arch, c.chain>>10, lat, c.want.lo, c.want.hi)
		}
	}
}

// TestMXSHidesPointerChaseLessThanILP: under the OoO model the dependent
// chase cannot be hidden, so the measured latency stays near the Mipsy
// value (a consistency check on the two models' memory paths).
func TestMXSChaseLatencyMatchesMipsy(t *testing.T) {
	mip, err := MeasureLoadLatency(core.SharedMem, core.ModelMipsy, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := MeasureLoadLatency(core.SharedMem, core.ModelMXS, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ooo / mip
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("OoO chase latency %.2f vs in-order %.2f: a dependent chase should not diverge (ratio %.2f)",
			ooo, mip, ratio)
	}
}
