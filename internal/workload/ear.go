package workload

import (
	"fmt"
	"math/rand"

	"cmpsim/internal/asm"
	"cmpsim/internal/core"
	"cmpsim/internal/guestlib"
)

// Ear reproduces the SUIF-parallelized SPEC92 ear benchmark (Section
// 3.2.2): an inner-ear model built from a cascade of filter channels.
// The compiler parallelizes the very short per-sample loops, giving an
// extremely small grain size: every sample, each CPU filters its four
// channels (a few FP operations each) and then synchronizes, and each
// channel's input is the previous channel's output from the previous
// sample — producer-consumer sharing that crosses CPUs at every cascade
// boundary. The working set is tiny (everything fits in any L1), so the
// paper's Figure 8 shows a negligible L1 miss rate on the shared-L1
// architecture but the highest invalidation miss rate of all the
// applications on the private-L1 architectures.
type Ear struct {
	Channels int // cascade length; owned NumCPUs ways (default 16)
	Samples  int
	NumCPUs  int

	prog *asm.Program
	ref  *earState
	seed int64
}

// EarParams configures Ear; zero fields take defaults.
type EarParams struct {
	Channels, Samples int
}

// NewEar builds the workload; zero params mean the default scale.
func NewEar(p EarParams) *Ear {
	w := &Ear{Channels: 32, Samples: 2500, NumCPUs: 4, seed: 92}
	if p.Channels > 0 {
		w.Channels = p.Channels
	}
	if p.Samples > 0 {
		w.Samples = p.Samples
	}
	return w
}

func init() { register("ear", func() Workload { return NewEar(EarParams{}) }) }

// Name implements Workload.
func (w *Ear) Name() string { return "ear" }

// Description implements Workload.
func (w *Ear) Description() string {
	return "SUIF-parallelized ear: extremely fine grain, cascade producer-consumer sharing"
}

// MemBytes implements Workload.
func (w *Ear) MemBytes() uint32 { return MemBytes }

// Threads implements Workload.
func (w *Ear) Threads() int { return w.NumCPUs }

// earState is the Go mirror.
type earState struct {
	sig    []float64
	a, bc  []float64 // filter coefficients per channel
	state  []float64 // one-pole state per channel
	out    [2][]float64
	energy []float64
}

func (w *Ear) initialState() *earState {
	rng := rand.New(rand.NewSource(w.seed))
	st := &earState{
		sig:    make([]float64, w.Samples),
		a:      make([]float64, w.Channels),
		bc:     make([]float64, w.Channels),
		state:  make([]float64, w.Channels*earStages),
		energy: make([]float64, w.Channels),
	}
	st.out[0] = make([]float64, w.Channels+1)
	st.out[1] = make([]float64, w.Channels+1)
	for i := range st.sig {
		st.sig[i] = rng.Float64()*2 - 1
	}
	for c := 0; c < w.Channels; c++ {
		st.a[c] = 0.3 + 0.4*float64(c)/float64(w.Channels)
		st.bc[c] = 0.5 - 0.3*float64(c)/float64(w.Channels)
	}
	return st
}

// earStages is the depth of each channel's internal filter cascade (the
// original ear uses cascades of second-order sections per channel).
const earStages = 4

// advance mirrors the guest exactly: per sample, CPU0 latches the input
// into cur[0], then every channel c runs its 4-stage filter cascade on
// prev[c] and writes cur[c+1] — all reads hit the previous sample's
// buffer, so parallel channel order does not matter.
func (w *Ear) advance(st *earState) {
	for s := 0; s < w.Samples; s++ {
		prev := st.out[s%2]
		cur := st.out[(s+1)%2]
		cur[0] = st.sig[s]
		for c := 0; c < w.Channels; c++ {
			x := prev[c]
			for k := 0; k < earStages; k++ {
				y := st.a[c]*x + st.bc[c]*st.state[c*earStages+k]
				st.state[c*earStages+k] = y
				x = y
			}
			cur[c+1] = x
			st.energy[c] += x * x
		}
	}
}

// Configure implements Workload.
func (w *Ear) Configure(m *core.Machine) error {
	w.NumCPUs = m.Cfg.NumCPUs
	if w.Channels%w.NumCPUs != 0 {
		return fmt.Errorf("ear: channels (%d) must divide by %d CPUs", w.Channels, w.NumCPUs)
	}
	per := w.Channels / w.NumCPUs
	b := asm.NewBuilder()

	// R20 tid, R21 sample, R22 samples, R23 prev base, R24 cur base,
	// R25 my first channel, R18 sig base, R19 coef bases via LA.
	b.Label("start")
	b.MOVE(asm.R20, asm.A0)
	b.LI(asm.R21, 0)
	b.LI(asm.R22, int32(w.Samples))
	b.LI(asm.R8, int32(per))
	b.MUL(asm.R25, asm.R20, asm.R8)
	b.LA(asm.R18, "sig")

	b.Label("ear_sample")
	// Buffer select on sample parity: prev = out[s%2], cur = out[1-s%2].
	b.LA(asm.R23, "outA")
	b.LA(asm.R24, "outB")
	b.ANDI(asm.R8, asm.R21, 1)
	b.BEQZ(asm.R8, "ear_nosw")
	b.MOVE(asm.R9, asm.R23)
	b.MOVE(asm.R23, asm.R24)
	b.MOVE(asm.R24, asm.R9)
	b.Label("ear_nosw")

	// CPU0 latches the input sample into cur[0].
	b.BNEZ(asm.R20, "ear_chans")
	b.SLLI(asm.R9, asm.R21, 3)
	b.ADD(asm.R9, asm.R18, asm.R9)
	b.LD(asm.F0, 0, asm.R9)
	b.SD(asm.F0, 0, asm.R24)
	b.Label("ear_chans")

	// My channels: c in [R25, R25+per).
	b.MOVE(asm.R16, asm.R25)
	b.ADDI(asm.R17, asm.R25, int32(per))
	b.Label("ear_c")
	b.SLLI(asm.R9, asm.R16, 3)
	// x = prev[c]
	b.ADD(asm.R10, asm.R23, asm.R9)
	b.LD(asm.F0, 0, asm.R10)
	// coefficients
	b.LA(asm.R11, "coefA")
	b.ADD(asm.R11, asm.R11, asm.R9)
	b.LD(asm.F1, 0, asm.R11)
	b.LA(asm.R11, "coefB")
	b.ADD(asm.R11, asm.R11, asm.R9)
	b.LD(asm.F2, 0, asm.R11)
	// Four-stage cascade: state base = state + c*earStages*8.
	b.LA(asm.R12, "state")
	b.SLLI(asm.R10, asm.R16, 3+2) // c * 8 * earStages
	b.ADD(asm.R12, asm.R12, asm.R10)
	for k := 0; k < earStages; k++ {
		b.LD(asm.F3, int32(8*k), asm.R12)
		b.FMULD(asm.F4, asm.F1, asm.F0) // a*x
		b.FMULD(asm.F5, asm.F2, asm.F3) // b*state_k
		b.FADDD(asm.F4, asm.F4, asm.F5)
		b.SD(asm.F4, int32(8*k), asm.R12) // state_k = y
		b.FMOV(asm.F0, asm.F4)            // x = y for the next stage
	}
	// cur[c+1] = y
	b.ADD(asm.R13, asm.R24, asm.R9)
	b.SD(asm.F4, 8, asm.R13)
	// energy[c] += y*y
	b.LA(asm.R14, "energy")
	b.ADD(asm.R14, asm.R14, asm.R9)
	b.LD(asm.F5, 0, asm.R14)
	b.FMULD(asm.F6, asm.F4, asm.F4)
	b.FADDD(asm.F5, asm.F5, asm.F6)
	b.SD(asm.F5, 0, asm.R14)
	b.ADDI(asm.R16, asm.R16, 1)
	b.BLT(asm.R16, asm.R17, "ear_c")

	b.LA(asm.A0, "bar")
	b.MOVE(asm.A1, asm.R20)
	b.JAL(guestlib.LBarrierWait)
	b.ADDI(asm.R21, asm.R21, 1)
	b.BLT(asm.R21, asm.R22, "ear_sample")
	b.HALT()

	guestlib.EmitRuntime(b)

	b.AlignData(32) // line-align so each CPU's four outputs share a line
	b.DataLabel("outA")
	b.Zero(uint32(8 * (w.Channels + 1)))
	b.AlignData(32)
	b.DataLabel("outB")
	b.Zero(uint32(8 * (w.Channels + 1)))
	b.AlignData(32)
	b.DataLabel("state")
	b.Zero(uint32(8 * w.Channels * earStages))
	b.AlignData(32)
	b.DataLabel("energy")
	b.Zero(uint32(8 * w.Channels))
	b.AlignData(8)
	b.DataLabel("coefA")
	b.Zero(uint32(8 * w.Channels))
	b.DataLabel("coefB")
	b.Zero(uint32(8 * w.Channels))
	b.DataLabel("sig")
	b.Zero(uint32(8 * w.Samples))
	guestlib.EmitBarrierData(b, "bar", w.NumCPUs)

	p, err := b.Assemble(TextBase, DataBase)
	if err != nil {
		return err
	}
	w.prog = p
	setupSPMD(m, p, w.NumCPUs)

	st := w.initialState()
	for i, v := range st.sig {
		m.Img.WriteF64(p.Addr("sig")+uint32(8*i), v)
	}
	for c := 0; c < w.Channels; c++ {
		m.Img.WriteF64(p.Addr("coefA")+uint32(8*c), st.a[c])
		m.Img.WriteF64(p.Addr("coefB")+uint32(8*c), st.bc[c])
	}
	w.ref = st
	w.advance(st)
	return nil
}

// Validate implements Workload.
func (w *Ear) Validate(m *core.Machine) error {
	st := w.ref
	for c := 0; c < w.Channels; c++ {
		if got := m.Img.ReadF64(w.prog.Addr("energy") + uint32(8*c)); got != st.energy[c] {
			return fmt.Errorf("ear: energy[%d] = %v, want %v", c, got, st.energy[c])
		}
	}
	for i := 0; i < w.Channels*earStages; i++ {
		if got := m.Img.ReadF64(w.prog.Addr("state") + uint32(8*i)); got != st.state[i] {
			return fmt.Errorf("ear: state[%d] = %v, want %v", i, got, st.state[i])
		}
	}
	// Final output buffers.
	labels := [2]string{"outA", "outB"}
	for p := 0; p < 2; p++ {
		for i := 0; i <= w.Channels; i++ {
			if got := m.Img.ReadF64(w.prog.Addr(labels[p]) + uint32(8*i)); got != st.out[p][i] {
				return fmt.Errorf("ear: out[%d][%d] = %v, want %v", p, i, got, st.out[p][i])
			}
		}
	}
	return nil
}
