package hostprof

// Offline shard-layout evaluation: score any proposed CPU→worker
// assignment against a saved profile's gate-wait attribution, and
// search for a good one. The model is the co-location identity the
// scheduler guarantees: two CPUs in the same shard are advanced by one
// goroutine in (cycle, rotation-position) order, so their mutual gate
// waits vanish entirely; only cross-shard waiter-peer pairs ever spin.
// A layout is therefore judged by the predicted critical path
//
//	max over workers of (per-shard tick work) + residual cross-shard wait
//
// with per-CPU tick counts (layout-invariant — the same simulation
// ticks the same CPU the same number of times under any assignment) as
// the work weights and the profile's (waiter, peer) wait table as the
// spin weights. On a 1-proc host (profile HostProcs == 1) the max
// becomes a sum: shard goroutines time-slice, nothing overlaps, and the
// best layout is the one with the least cross-shard wait — typically
// the single shard. Both halves come straight from a `parprof -json`
// profile; no re-simulation is needed to compare layouts.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseShardLayout parses an explicit CPU→worker assignment of the
// form "0,1,0,1" (one worker index per CPU). Worker indices must cover
// 0..max contiguously so every shard is non-empty.
func ParseShardLayout(s string, ncpu int) ([][]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != ncpu {
		return nil, fmt.Errorf("layout %q assigns %d CPUs, machine has %d", s, len(parts), ncpu)
	}
	asg := make([]int, ncpu)
	nw := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("layout %q: entry %d (%q) is not a worker index", s, i, p)
		}
		asg[i] = w
		if w+1 > nw {
			nw = w + 1
		}
	}
	shards := make([][]int, nw)
	for id, w := range asg {
		shards[w] = append(shards[w], id)
	}
	for w, ids := range shards {
		if len(ids) == 0 {
			return nil, fmt.Errorf("layout %q: worker %d owns no CPUs (indices must be contiguous from 0)", s, w)
		}
	}
	return shards, nil
}

// FormatShardLayout renders shards back into the "-shard-layout" flag
// form (the inverse of ParseShardLayout).
func FormatShardLayout(shards [][]int) string {
	ncpu := 0
	for _, ids := range shards {
		ncpu += len(ids)
	}
	asg := make([]int, ncpu)
	for w, ids := range shards {
		for _, id := range ids {
			if id >= 0 && id < ncpu {
				asg[id] = w
			}
		}
	}
	parts := make([]string, ncpu)
	for i, w := range asg {
		parts[i] = strconv.Itoa(w)
	}
	return strings.Join(parts, ",")
}

// LayoutScore is one layout's offline evaluation against a profile.
type LayoutScore struct {
	Layout  string  `json:"layout"`
	Workers int     `json:"workers"`
	Shards  [][]int `json:"shards"`

	// Wait decomposition: of the profile's total attributed gate-wait
	// time, how much the layout eliminates by co-location and how much
	// remains on cross-shard pairs.
	TotalWaitNs      uint64 `json:"total_wait_ns"`
	EliminatedWaitNs uint64 `json:"eliminated_wait_ns"`
	CrossWaitNs      uint64 `json:"cross_wait_ns"`

	// Work balance: the heaviest shard's share of total ticks (1/Workers
	// is perfect balance), and the per-shard tick sums it came from.
	MaxShardTickFrac float64  `json:"max_shard_tick_frac"`
	ShardTicks       []uint64 `json:"shard_ticks"`

	// PredictedNs is the estimate the layouts are ranked by. On a host
	// with 2+ procs it is the critical path: the heaviest shard's tick
	// work plus that same shard's waiter-side residual cross-shard wait
	// (a shard goroutine's wall time is its own work plus its own
	// spins; spins overlap the peer shard's work, so they are charged
	// to the waiter only). On a 1-proc host (profile HostProcs == 1)
	// shard goroutines time-slice instead of overlapping, so the
	// prediction is serialized: all shards' work plus all residual
	// cross-shard wait — which correctly makes the single-shard layout,
	// whose cross wait is zero, the winner there. Lower is better; the
	// absolute value is only meaningful relative to other layouts
	// scored against the same profile.
	PredictedNs uint64 `json:"predicted_ns"`
}

// pairWaits folds the profile's (waiter, peer, site) table into a
// symmetric ncpu×ncpu wait-ns matrix.
func pairWaits(p *Profile) [][]uint64 {
	w := make([][]uint64, p.CPUs)
	for i := range w {
		w[i] = make([]uint64, p.CPUs)
	}
	for _, ws := range p.Waits {
		if ws.Waiter < p.CPUs && ws.Peer < p.CPUs {
			w[ws.Waiter][ws.Peer] += ws.Ns
		}
	}
	return w
}

// cpuWork distributes the profile's useful worker time (busy minus
// spin) over CPUs proportionally to their layout-invariant tick
// counts, returning per-CPU work estimates in nanoseconds.
func cpuWork(p *Profile) []uint64 {
	work := make([]uint64, p.CPUs)
	var busy, spin, ticks uint64
	for _, w := range p.Worker {
		busy += w.BusyNs
		spin += w.SpinNs
	}
	for _, c := range p.PerCPU {
		if c.CPU < p.CPUs {
			work[c.CPU] = c.Ticks
			ticks += c.Ticks
		}
	}
	if ticks == 0 {
		return work // old profile without per-CPU ticks: balance term inert
	}
	total := busy - min64(spin, busy) //simlint:allow cycleflow — subtrahend clamped to busy by min64, so no wrap
	for i, t := range work {
		work[i] = uint64(float64(total) * float64(t) / float64(ticks))
	}
	return work
}

// ScoreLayout evaluates one CPU→worker assignment against the profile.
func ScoreLayout(p *Profile, shards [][]int) LayoutScore {
	sc := LayoutScore{
		Layout:  FormatShardLayout(shards),
		Workers: len(shards),
		Shards:  shards,
	}
	shardOf := make([]int, p.CPUs)
	for i := range shardOf {
		shardOf[i] = -1
	}
	for w, ids := range shards {
		for _, id := range ids {
			if id >= 0 && id < p.CPUs {
				shardOf[id] = w
			}
		}
	}
	waits := pairWaits(p)
	for a := 0; a < p.CPUs; a++ {
		for b := 0; b < p.CPUs; b++ {
			ns := waits[a][b]
			if ns == 0 {
				continue
			}
			sc.TotalWaitNs += ns
			if shardOf[a] >= 0 && shardOf[a] == shardOf[b] {
				sc.EliminatedWaitNs += ns
			} else {
				sc.CrossWaitNs += ns
			}
		}
	}
	work := cpuWork(p)
	sc.ShardTicks = make([]uint64, len(shards))
	var critical, serialized, totalTicks uint64
	for w, ids := range shards {
		var shardWork, shardWait uint64
		for _, id := range ids {
			if id < 0 || id >= p.CPUs {
				continue
			}
			shardWork += work[id]
			for _, c := range p.PerCPU {
				if c.CPU == id {
					sc.ShardTicks[w] += c.Ticks
				}
			}
			// Waiter-side residual spin: this shard's goroutine burns it;
			// the peer shard keeps working through it (on a multi-proc
			// host — on one proc nothing overlaps, see below).
			for peer := 0; peer < p.CPUs; peer++ {
				if shardOf[peer] != w {
					shardWait += waits[id][peer]
				}
			}
		}
		if shardWork+shardWait > critical {
			critical = shardWork + shardWait
		}
		serialized += shardWork + shardWait
	}
	for _, t := range sc.ShardTicks {
		totalTicks += t
	}
	if totalTicks > 0 {
		var maxT uint64
		for _, t := range sc.ShardTicks {
			if t > maxT {
				maxT = t
			}
		}
		sc.MaxShardTickFrac = float64(maxT) / float64(totalTicks)
	}
	// One host proc cannot overlap shards: every shard's work and every
	// residual spin runs back to back, so the serialized sum — not the
	// per-shard max — is the wall-clock model there.
	if p.HostProcs == 1 {
		sc.PredictedNs = serialized
	} else {
		sc.PredictedNs = critical
	}
	return sc
}

// SuggestLayout searches for the assignment of the profile's CPUs into
// at most maxWorkers shards that minimizes the predicted critical
// path. Small machines (≤ suggestExactCPUs) are searched exhaustively
// over canonical set partitions; larger ones fall back to a greedy
// agglomerative merge of the hottest waiter-peer pairs.
func SuggestLayout(p *Profile, maxWorkers int) (LayoutScore, error) {
	if p.CPUs < 1 {
		return LayoutScore{}, fmt.Errorf("profile has no CPUs (did the run take the parallel path?)")
	}
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	if maxWorkers > p.CPUs {
		maxWorkers = p.CPUs
	}
	if p.CPUs <= suggestExactCPUs {
		return suggestExact(p, maxWorkers), nil
	}
	return suggestGreedy(p, maxWorkers), nil
}

// suggestExactCPUs bounds the exhaustive partition search: restricted
// growth strings over ≤ 12 CPUs stay in the tens of thousands even
// before the worker-count bound prunes them.
const suggestExactCPUs = 12

// suggestExact enumerates every canonical partition of the CPUs into
// 1..maxWorkers shards (restricted growth strings, so permuting worker
// labels never revisits a layout) and keeps the best score.
func suggestExact(p *Profile, maxWorkers int) LayoutScore {
	asg := make([]int, p.CPUs)
	var best LayoutScore
	have := false
	var walk func(i, used int)
	walk = func(i, used int) {
		if i == p.CPUs {
			sc := ScoreLayout(p, assignmentShards(asg, used))
			if !have || better(sc, best) {
				best, have = sc, true
			}
			return
		}
		lim := used + 1
		if lim > maxWorkers {
			lim = maxWorkers
		}
		for w := 0; w < lim; w++ {
			asg[i] = w
			nu := used
			if w == used {
				nu++
			}
			walk(i+1, nu)
		}
	}
	walk(0, 0)
	return best
}

// suggestGreedy starts from singleton shards and repeatedly merges the
// pair of shards with the largest mutual wait time until the worker
// bound is met, then keeps merging while a merge improves the score.
func suggestGreedy(p *Profile, maxWorkers int) LayoutScore {
	waits := pairWaits(p)
	groups := make([][]int, p.CPUs)
	for i := range groups {
		groups[i] = []int{i}
	}
	mutual := func(a, b []int) uint64 {
		var ns uint64
		for _, x := range a {
			for _, y := range b {
				ns += waits[x][y] + waits[y][x]
			}
		}
		return ns
	}
	mergeHottest := func() bool {
		bi, bj, bns := -1, -1, uint64(0)
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if ns := mutual(groups[i], groups[j]); bi < 0 || ns > bns {
					bi, bj, bns = i, j, ns
				}
			}
		}
		if bi < 0 {
			return false
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		sort.Ints(groups[bi])
		groups = append(groups[:bj], groups[bj+1:]...)
		return true
	}
	for len(groups) > maxWorkers {
		if !mergeHottest() {
			break
		}
	}
	best := ScoreLayout(p, canonShards(groups))
	for len(groups) > 1 {
		save := make([][]int, len(groups))
		for i := range groups {
			save[i] = append([]int(nil), groups[i]...)
		}
		if !mergeHottest() {
			break
		}
		sc := ScoreLayout(p, canonShards(groups))
		if !better(sc, best) {
			groups = save
			break
		}
		best = sc
	}
	return best
}

// better ranks layouts: smaller predicted critical path wins; ties go
// to the layout eliminating more wait, then to fewer workers.
func better(a, b LayoutScore) bool {
	if a.PredictedNs != b.PredictedNs {
		return a.PredictedNs < b.PredictedNs
	}
	if a.EliminatedWaitNs != b.EliminatedWaitNs {
		return a.EliminatedWaitNs > b.EliminatedWaitNs
	}
	return a.Workers < b.Workers
}

// assignmentShards converts a CPU→worker assignment into shard lists.
func assignmentShards(asg []int, nw int) [][]int {
	shards := make([][]int, nw)
	for id, w := range asg {
		shards[w] = append(shards[w], id)
	}
	return shards
}

// canonShards orders shards by their smallest CPU so equivalent
// groupings render identically.
func canonShards(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	copy(out, groups)
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
