// Package hostprof is the host-side execution observatory for the
// sharded parallel-tick scheduler (internal/core/parallel.go). Where
// internal/prof attributes *simulated* cycles to guest code, hostprof
// attributes *host* nanoseconds to the scheduler's own moving parts:
// which CPU spun on the tick gate, on which laggard peer, at which
// shared-access site, for how long; how windows were cut and how long
// they were; how much wall time the coordinator spent serialized
// between barriers. That attribution is the work list the ROADMAP's
// adaptive-window-sizing and shard-local-memory follow-ups need.
//
// The discipline is the same as obsv/prof/telemetry:
//
//   - nil-guarded: every recording method no-ops on a nil receiver, so
//     the instrumented scheduler carries no branches beyond a pointer
//     check and the disabled path costs 0 allocs/op;
//   - output-neutral: hostprof observes the host schedule, never sim
//     state, and nothing flows back (enforced by the neutral lint
//     analyzer — internal/hostprof is an obs package). Unlike the
//     guest-observability attachments (Trace/Prof/Check) it therefore
//     must NOT force the serial path: a recorder rides along with
//     -sim-jobs N and the sim output stays byte-identical;
//   - deterministic snapshots: Snapshot sorts every table, and the
//     schedule-shape half of the profile (window edges, cut reasons,
//     tick and skip counts) is itself deterministic for a fixed worker
//     count — only the wall-clock half varies run to run.
//
// Recording is lock-free after Bind: each worker goroutine owns its
// TrackRec and the GateRecs of its shard's CPUs, the coordinator owns
// the CoordRec, and all buffers are preallocated (appends beyond
// capacity are counted as drops, never grown).
package hostprof

import (
	"sync"
	"time"

	"cmpsim/internal/cyc"
)

// Site identifies the shared-state access point whose gate Sync spun.
// The first six are the gatedSys/gatedTrap shims; SiteMXSImage is the
// detailed CPU model's graduation-time guest-image read (cpu.TickGate).
type Site uint8

const (
	SiteAccess Site = iota
	SiteIFetch
	SiteLLReserve
	SiteSCCheck
	SiteClearReserve
	SiteSyscall
	SiteMXSImage

	NumSites
)

var siteNames = [NumSites]string{
	SiteAccess:       "access",
	SiteIFetch:       "ifetch",
	SiteLLReserve:    "ll-reserve",
	SiteSCCheck:      "sc-check",
	SiteClearReserve: "clear-reserve",
	SiteSyscall:      "syscall",
	SiteMXSImage:     "mxs-image",
}

func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return "?"
}

// SiteFromString is the inverse of Site.String (for reading profiles
// back in); unknown names map to NumSites.
func SiteFromString(s string) Site {
	for i, n := range siteNames {
		if n == s {
			return Site(i)
		}
	}
	return NumSites
}

// Cut identifies which bound won a scheduling window's edge.
type Cut uint8

const (
	CutGrid        Cut = iota // SimWindow grid boundary
	CutEnd                    // RunWindow range end
	CutEvent                  // next event-calendar cycle
	CutSampler                // next interval-sampler due cycle
	CutFastForward            // coordinator fast-forward over an all-quiescent gap
	CutAdapt                  // adaptive sub-grid shortening (laggard-dominated spins)

	NumCuts
)

var cutNames = [NumCuts]string{
	CutGrid:        "grid",
	CutEnd:         "end",
	CutEvent:       "event",
	CutSampler:     "sampler",
	CutFastForward: "fast-forward",
	CutAdapt:       "adapt",
}

func (c Cut) String() string {
	if c < NumCuts {
		return cutNames[c]
	}
	return "?"
}

// hist is a log2-bucketed histogram: bucket i counts values v with
// bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 counts zeros).
type hist [65]uint64

func (h *hist) add(v uint64) {
	i := 0
	for v != 0 {
		v >>= 1
		i++
	}
	h[i]++
}

// Timeline buffer capacities, per track. Slices past the cap are
// dropped (and counted); aggregates are never dropped.
const (
	winCap  = 1 << 13
	spinCap = 1 << 14
	skipCap = 1 << 13
)

// SpinToken carries the spin start time between SpinBegin and SpinEnd;
// WinToken, SerialToken and BarrierToken are the window-, serial- and
// barrier-slice equivalents. All are flat values — recording allocates
// nothing.
type SpinToken struct{ t0 int64 }
type WinToken struct{ t0 int64 }
type SerialToken struct{ t0 int64 }
type BarrierToken struct{ t0 int64 }

// spinCell aggregates one (waiter, peer, site) combination.
type spinCell struct{ count, ns uint64 }

// Slice is one host-timeline interval (or instant, when T1 == T0),
// normalized for the sinks: Track is the worker index, or Workers for
// the coordinator track. Times are nanoseconds since the recorder's
// epoch.
type Slice struct {
	Track int    `json:"track"`
	Kind  string `json:"kind"` // window | spin | skip | grant | serial | barrier | mark
	T0    int64  `json:"t0"`
	T1    int64  `json:"t1"`
	CPU   int    `json:"cpu,omitempty"`  // spin: waiter; skip: skipping CPU
	Peer  int    `json:"peer,omitempty"` // spin: laggard peer
	Site  string `json:"site,omitempty"` // spin: gate site
	Cut   string `json:"cut,omitempty"`  // mark: window cut reason
	W0    uint64 `json:"w0,omitempty"`   // sim-cycle window start (skip: from)
	W1    uint64 `json:"w1,omitempty"`   // sim-cycle window end (skip: to)
}

// TrackRec is one worker goroutine's timeline recorder, owned and
// written exclusively by that worker.
type TrackRec struct {
	r    *Recorder
	w    int
	cpus []int

	// Deterministic schedule shape (fixed worker count ⇒ fixed values).
	windows    uint64
	ticks      uint64
	skipCount  uint64
	skipCycles uint64
	skipHist   hist

	// Epoch grants: window entries the worker covered entirely (or up to
	// a carried horizon) without ticking, plus per-CPU executed-tick
	// counts (indexed by global CPU id; only owned entries are written).
	// cpuTicks is layout-invariant — the same simulation ticks the same
	// CPU the same number of times under any shard layout — which is
	// what lets the offline layout scorer reuse it as a balance weight.
	grants      uint64
	grantCycles uint64
	cpuTicks    []uint64

	// Host wall-clock aggregates.
	busyNs    uint64
	spinNs    uint64
	spinCount uint64

	curT0 int64  // current window's host start
	curW0 uint64 // current window's sim start

	slices  []Slice
	dropped uint64
	_       [8]uint64 // keep adjacent tracks off one cache line
}

// emit appends a timeline slice, dropping (and counting) past capacity.
func (t *TrackRec) emit(s Slice) {
	if len(t.slices) == cap(t.slices) {
		t.dropped++
		return
	}
	t.slices = append(t.slices, s)
}

// WindowBegin marks the start of one scheduling window on this track.
func (t *TrackRec) WindowBegin(w0 uint64) WinToken {
	if t == nil {
		return WinToken{}
	}
	t.curT0 = t.r.now()
	t.curW0 = w0
	return WinToken{t0: t.curT0}
}

// WindowEnd closes the window slice; ticks is the number of CPU ticks
// the worker executed inside it.
func (t *TrackRec) WindowEnd(tok WinToken, w1, ticks uint64) {
	if t == nil {
		return
	}
	t1 := t.r.now()
	t.windows++
	t.ticks += ticks
	t.busyNs += uint64(t1 - tok.t0)
	t.emit(Slice{Track: t.w, Kind: "window", T0: tok.t0, T1: t1, W0: t.curW0, W1: w1})
}

// Skip records one local quiescence fast-forward: CPU cpu jumped from
// sim cycle `from` to `to` without ticking.
func (t *TrackRec) Skip(cpu int, from, to uint64) {
	if t == nil {
		return
	}
	now := t.r.now()
	dist := cyc.Sub(to, from)
	t.skipCount++
	t.skipCycles += dist
	t.skipHist.add(dist)
	t.emit(Slice{Track: t.w, Kind: "skip", T0: now, T1: now, CPU: cpu, W0: from, W1: to})
}

// Tick counts one executed CPU tick against cpu's layout-invariant
// per-CPU total.
func (t *TrackRec) Tick(cpu int) {
	if t == nil {
		return
	}
	t.cpuTicks[cpu]++
}

// Grant records one epoch grant: at window entry, CPU cpu's carried
// safe horizon already covered [from, to), so the worker advanced it
// without a single tick or re-proof.
func (t *TrackRec) Grant(cpu int, from, to uint64) {
	if t == nil {
		return
	}
	now := t.r.now()
	t.grants++
	t.grantCycles += cyc.Sub(to, from)
	t.emit(Slice{Track: t.w, Kind: "grant", T0: now, T1: now, CPU: cpu, W0: from, W1: to})
}

// GateRec is one CPU's gate-wait recorder, owned by the worker that
// owns the CPU (it shares the owning worker's track).
type GateRec struct {
	tk    *TrackRec
	cpu   int
	cells []spinCell // peer*NumSites + site
	hist  hist       // spin duration, log2 ns
}

// SpinBegin stamps the start of one contended gate spin.
func (g *GateRec) SpinBegin() SpinToken {
	if g == nil {
		return SpinToken{}
	}
	return SpinToken{t0: g.tk.r.now()}
}

// SpinEnd attributes the finished spin to (waiter, peer, site) at sim
// cycle `cycle` (the waiter's gate tick).
func (g *GateRec) SpinEnd(tok SpinToken, peer int, site Site, cycle uint64) {
	if g == nil {
		return
	}
	t1 := g.tk.r.now()
	d := uint64(t1 - tok.t0)
	c := &g.cells[peer*int(NumSites)+int(site)]
	c.count++
	c.ns += d
	g.hist.add(d)
	g.tk.spinNs += d
	g.tk.spinCount++
	g.tk.emit(Slice{Track: g.tk.w, Kind: "spin", T0: tok.t0, T1: t1,
		CPU: g.cpu, Peer: peer, Site: site.String(), W0: cycle})
}

// CoordRec is the coordinator's recorder: window cuts, the serial
// stretches between barriers, and the barrier (parallel-region) spans.
// Owned by the coordinating goroutine.
type CoordRec struct {
	r *Recorder

	// Deterministic schedule shape.
	windows    uint64
	cuts       [NumCuts]uint64
	winLenHist hist
	simCycles  uint64

	// Host wall clock.
	serialNs  uint64
	barrierNs uint64
	runNs     uint64

	slices  []Slice
	dropped uint64
}

func (c *CoordRec) emit(s Slice) {
	if len(c.slices) == cap(c.slices) {
		c.dropped++
		return
	}
	c.slices = append(c.slices, s)
}

// WindowOpen records the cut decision for the window [w0, w1) and a
// sim-time correlation mark on the coordinator track.
func (c *CoordRec) WindowOpen(w0, w1 uint64, cut Cut) {
	if c == nil {
		return
	}
	now := c.r.now()
	length := cyc.Sub(w1, w0)
	c.windows++
	c.cuts[cut]++
	c.winLenHist.add(length)
	c.simCycles += length
	c.emit(Slice{Track: c.r.nw, Kind: "mark", T0: now, T1: now, Cut: cut.String(), W0: w0, W1: w1})
}

// SerialBegin opens a coordinator-serial stretch (IRQ merge, event
// calendar, window-edge computation, sampler probes).
func (c *CoordRec) SerialBegin() SerialToken {
	if c == nil {
		return SerialToken{}
	}
	return SerialToken{t0: c.r.now()}
}

// SerialEnd closes the serial stretch.
func (c *CoordRec) SerialEnd(tok SerialToken) {
	if c == nil {
		return
	}
	t1 := c.r.now()
	c.serialNs += uint64(t1 - tok.t0)
	c.emit(Slice{Track: c.r.nw, Kind: "serial", T0: tok.t0, T1: t1})
}

// BarrierBegin opens the parallel region: workers are running the
// window and the coordinator is blocked on the barrier.
func (c *CoordRec) BarrierBegin() BarrierToken {
	if c == nil {
		return BarrierToken{}
	}
	return BarrierToken{t0: c.r.now()}
}

// BarrierEnd closes the parallel region for window [w0, w1).
func (c *CoordRec) BarrierEnd(tok BarrierToken, w0, w1 uint64) {
	if c == nil {
		return
	}
	t1 := c.r.now()
	c.barrierNs += uint64(t1 - tok.t0)
	c.emit(Slice{Track: c.r.nw, Kind: "barrier", T0: tok.t0, T1: t1, W0: w0, W1: w1})
}

// RunBegin stamps the start of one runParallel call; RunEnd accumulates
// its wall time. Multiple RunWindow chunks of one simulation all
// accumulate into the same recorder.
func (c *CoordRec) RunBegin() SerialToken {
	if c == nil {
		return SerialToken{}
	}
	return SerialToken{t0: c.r.now()}
}

func (c *CoordRec) RunEnd(tok SerialToken) {
	if c == nil {
		return
	}
	c.runNs += uint64(c.r.now() - tok.t0)
}

// Recorder is the per-simulation observatory handed to the core through
// memsys.Config.HostProf. Bind is called once by the parallel scheduler
// (before any worker goroutine starts, so the recs it allocates are
// published by the goroutine-creation edge); a recorder attached to a
// run that never takes the parallel path stays unbound and snapshots to
// an empty profile.
type Recorder struct {
	epoch time.Time

	mu     sync.Mutex
	nw     int
	ncpu   int
	shards [][]int
	tracks []*TrackRec
	gates  []*GateRec
	coord  *CoordRec
}

// New builds an empty recorder. The epoch is captured here so every
// timestamp is a small monotonic offset.
func New() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// now returns nanoseconds since the recorder's epoch (monotonic).
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// Bind allocates the per-worker and per-CPU recorders for a scheduler
// with the given shard layout (worker -> owned CPU ids). Idempotent:
// later RunWindow chunks of the same run reuse the first binding.
func (r *Recorder) Bind(ncpu int, shards [][]int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracks != nil {
		return
	}
	r.nw = len(shards)
	r.ncpu = ncpu
	r.shards = make([][]int, len(shards))
	r.gates = make([]*GateRec, ncpu)
	for w, ids := range shards {
		own := make([]int, len(ids))
		copy(own, ids)
		r.shards[w] = own
		tk := &TrackRec{r: r, w: w, cpus: own, cpuTicks: make([]uint64, ncpu),
			slices: make([]Slice, 0, winCap+spinCap+skipCap)}
		r.tracks = append(r.tracks, tk)
		for _, id := range ids {
			r.gates[id] = &GateRec{tk: tk, cpu: id, cells: make([]spinCell, ncpu*int(NumSites))}
		}
	}
	r.coord = &CoordRec{r: r, slices: make([]Slice, 0, 3*winCap)}
}

// Track returns worker w's recorder (nil when unbound or disabled).
func (r *Recorder) Track(w int) *TrackRec {
	if r == nil || w >= len(r.tracks) {
		return nil
	}
	return r.tracks[w]
}

// Gate returns CPU id's gate recorder (nil when unbound or disabled).
func (r *Recorder) Gate(id int) *GateRec {
	if r == nil || id >= len(r.gates) {
		return nil
	}
	return r.gates[id]
}

// Coord returns the coordinator recorder (nil when unbound or
// disabled).
func (r *Recorder) Coord() *CoordRec {
	if r == nil {
		return nil
	}
	return r.coord
}
