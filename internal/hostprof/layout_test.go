package hostprof

import (
	"bytes"
	"strings"
	"testing"
)

// layoutProfile is a hand-built 4-CPU profile with two hot wait pairs
// (0↔1 and 2↔3) and one light cross pair (0↔2): on a multi-proc host
// the best 2-worker layout co-locates each hot pair, on a 1-proc host
// nothing overlaps and the single shard wins.
func layoutProfile(hostProcs int) *Profile {
	return &Profile{
		CPUs: 4, Workers: 2, HostProcs: hostProcs,
		Worker: []WorkerStats{
			{Worker: 0, CPUs: []int{0, 1}, BusyNs: 1000, SpinNs: 400},
			{Worker: 1, CPUs: []int{2, 3}, BusyNs: 1000, SpinNs: 400},
		},
		PerCPU: []CPUStats{{CPU: 0, Ticks: 100}, {CPU: 1, Ticks: 100}, {CPU: 2, Ticks: 100}, {CPU: 3, Ticks: 100}},
		Waits: []WaitStats{
			{Waiter: 0, Peer: 1, Site: "access", Count: 10, Ns: 400},
			{Waiter: 1, Peer: 0, Site: "access", Count: 10, Ns: 400},
			{Waiter: 2, Peer: 3, Site: "access", Count: 10, Ns: 300},
			{Waiter: 3, Peer: 2, Site: "access", Count: 10, Ns: 300},
			{Waiter: 0, Peer: 2, Site: "access", Count: 2, Ns: 50},
			{Waiter: 2, Peer: 0, Site: "access", Count: 2, Ns: 50},
		},
	}
}

func TestParseShardLayoutRoundTrip(t *testing.T) {
	shards, err := ParseShardLayout("0,1,0,1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[0]) != 2 || shards[0][0] != 0 || shards[0][1] != 2 {
		t.Fatalf("shards = %v, want [[0 2] [1 3]]", shards)
	}
	if got := FormatShardLayout(shards); got != "0,1,0,1" {
		t.Errorf("round trip = %q, want %q", got, "0,1,0,1")
	}
}

func TestParseShardLayoutErrors(t *testing.T) {
	for _, bad := range []struct{ s, why string }{
		{"0,1,0", "wrong CPU count"},
		{"0,2,0,2", "worker indices not contiguous from 0"},
		{"0,x,0,1", "non-numeric entry"},
		{"0,-1,0,1", "negative worker index"},
	} {
		if _, err := ParseShardLayout(bad.s, 4); err == nil {
			t.Errorf("ParseShardLayout(%q) succeeded, want error (%s)", bad.s, bad.why)
		}
	}
}

func TestScoreLayoutWaitDecomposition(t *testing.T) {
	p := layoutProfile(8)
	single, err := ParseShardLayout("0,0,0,0", 4)
	if err != nil {
		t.Fatal(err)
	}
	sc := ScoreLayout(p, single)
	if sc.TotalWaitNs != 1500 || sc.EliminatedWaitNs != 1500 || sc.CrossWaitNs != 0 {
		t.Errorf("single shard: total %d eliminated %d cross %d, want 1500/1500/0",
			sc.TotalWaitNs, sc.EliminatedWaitNs, sc.CrossWaitNs)
	}
	pair, err := ParseShardLayout("0,0,1,1", 4)
	if err != nil {
		t.Fatal(err)
	}
	sc = ScoreLayout(p, pair)
	if sc.EliminatedWaitNs != 1400 || sc.CrossWaitNs != 100 {
		t.Errorf("hot-pair layout: eliminated %d cross %d, want 1400/100", sc.EliminatedWaitNs, sc.CrossWaitNs)
	}
	if sc.EliminatedWaitNs+sc.CrossWaitNs != sc.TotalWaitNs {
		t.Errorf("decomposition does not sum: %d + %d != %d", sc.EliminatedWaitNs, sc.CrossWaitNs, sc.TotalWaitNs)
	}
}

func TestSuggestLayoutMultiProcCoLocatesHotPairs(t *testing.T) {
	sc, err := SuggestLayout(layoutProfile(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Layout != "0,0,1,1" {
		t.Errorf("suggested %q, want %q (co-locate the hot wait pairs)", sc.Layout, "0,0,1,1")
	}
}

func TestSuggestLayoutSingleProcSerializes(t *testing.T) {
	// On one host proc shard goroutines time-slice: predicted time is
	// the serialized sum, so the zero-cross-wait single shard must win.
	sc, err := SuggestLayout(layoutProfile(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workers != 1 || sc.Layout != "0,0,0,0" {
		t.Errorf("suggested %q (%d workers), want single shard 0,0,0,0", sc.Layout, sc.Workers)
	}
	if sc.CrossWaitNs != 0 {
		t.Errorf("single shard cross wait = %d, want 0", sc.CrossWaitNs)
	}
}

func TestSuggestLayoutGreedyLargeMachine(t *testing.T) {
	// 16 CPUs exceeds the exhaustive-search bound; the greedy merger
	// must still return a valid layout within the worker bound.
	p := &Profile{CPUs: 16, Workers: 4, HostProcs: 8}
	for i := 0; i < 16; i++ {
		p.PerCPU = append(p.PerCPU, CPUStats{CPU: i, Ticks: 100})
	}
	p.Worker = []WorkerStats{{Worker: 0, BusyNs: 16000, SpinNs: 2000}}
	// One dominant pair: 4↔5.
	p.Waits = []WaitStats{
		{Waiter: 4, Peer: 5, Site: "access", Count: 100, Ns: 1500},
		{Waiter: 5, Peer: 4, Site: "access", Count: 100, Ns: 1500},
	}
	sc, err := SuggestLayout(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workers < 1 || sc.Workers > 4 {
		t.Fatalf("suggested %d workers, want 1..4", sc.Workers)
	}
	shards, err := ParseShardLayout(sc.Layout, 16)
	if err != nil {
		t.Fatalf("suggested layout %q does not parse back: %v", sc.Layout, err)
	}
	same := -1
	for w, ids := range shards {
		for _, id := range ids {
			if id == 4 || id == 5 {
				if same >= 0 && same != w {
					t.Errorf("hot pair 4↔5 split across workers in %q", sc.Layout)
				}
				same = w
			}
		}
	}
}

func TestWriteDiff(t *testing.T) {
	old := layoutProfile(1)
	old.Workload = "mp3d"
	old.Coord = CoordStats{RunNs: 4000, SerialNs: 500, BarrierNs: 3000}
	old.Sched = SchedStats{Windows: 10}
	old.Decomp = decompose(old)

	cur := layoutProfile(1)
	cur.Workload = "mp3d"
	cur.Coord = CoordStats{RunNs: 3000, SerialNs: 500, BarrierNs: 2500}
	cur.Sched = SchedStats{Windows: 10}
	cur.Worker[0].SpinNs = 100
	cur.Worker[1].SpinNs = 100
	cur.Waits = []WaitStats{{Waiter: 0, Peer: 1, Site: "access", Count: 3, Ns: 120}}
	cur.Decomp = decompose(cur)

	var buf bytes.Buffer
	if err := WriteDiff(&buf, old, cur, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run wall", "gate-wait", "schedule:", "per-site gate-wait deltas"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// Shrunk wait on (0,1,access) must show a negative delta.
	if !strings.Contains(out, "-") {
		t.Errorf("diff output shows no negative delta:\n%s", out)
	}
}
