package hostprof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"cmpsim/internal/cyc"
	"cmpsim/internal/obsv"
)

// WriteJSON writes the profile as indented JSON (cmd/parprof -json; read
// back with ReadProfile for a byte-identical re-render).
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile parses a profile written by WriteJSON.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("hostprof: bad profile JSON: %w", err)
	}
	return &p, nil
}

func fmtNs(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtHist(buckets []HistBucket) string {
	if len(buckets) == 0 {
		return "(empty)"
	}
	s := ""
	for i, b := range buckets {
		if i > 0 {
			s += " "
		}
		if b.Log2 == 0 {
			s += fmt.Sprintf("0:%d", b.Count)
		} else {
			s += fmt.Sprintf("2^%d:%d", b.Log2-1, b.Count)
		}
	}
	return s
}

func pct(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }

// WriteReport renders the profile as text tables: first the
// deterministic schedule-shape section (identical across runs at a
// fixed -sim-jobs — the host-prof-smoke diff target), then, unless
// simOnly, the wall-clock section with the speedup decomposition and
// the top-N gate-wait attribution table.
func (p *Profile) WriteReport(w io.Writer, top int, simOnly bool) error {
	bw := bufio.NewWriter(w)
	id := p.Workload
	if p.Arch != "" {
		id += " " + p.Arch
	}
	if p.Model != "" {
		id += "/" + p.Model
	}
	fmt.Fprintf(bw, "host profile: %s\n", id)
	if p.Workers == 0 {
		fmt.Fprintf(bw, "  (run never took the parallel path — use -sim-jobs > 1 on a multi-CPU config)\n")
		return bw.Flush()
	}

	fmt.Fprintf(bw, "\n=== schedule shape (deterministic at %d workers) ===\n", p.Workers)
	fmt.Fprintf(bw, "workers: %d over %d cpus, shards:", p.Workers, p.CPUs)
	for w, ids := range p.Shards {
		fmt.Fprintf(bw, " %d:%v", w, ids)
	}
	fmt.Fprintf(bw, "\nwindows: %d (cut: grid %d, end %d, event %d, sampler %d, fast-forward %d, adapt %d), %d sim cycles\n",
		p.Sched.Windows, p.Sched.CutGrid, p.Sched.CutEnd, p.Sched.CutEvent,
		p.Sched.CutSampler, p.Sched.CutFastFwd, p.Sched.CutAdapt, p.Sched.WindowCycles)
	fmt.Fprintf(bw, "window length (sim cycles, log2): %s\n", fmtHist(p.Sched.WindowLen))
	fmt.Fprintf(bw, "%8s %-12s %10s %12s %10s %14s %8s %14s\n", "worker", "cpus", "windows", "ticks", "skips", "skip-cycles", "grants", "grant-cycles")
	for _, ws := range p.Worker {
		fmt.Fprintf(bw, "%8d %-12s %10d %12d %10d %14d %8d %14d\n",
			ws.Worker, fmt.Sprint(ws.CPUs), ws.Windows, ws.Ticks, ws.SkipCount, ws.SkipCycles,
			ws.Grants, ws.GrantCycles)
	}
	if len(p.PerCPU) > 0 {
		fmt.Fprintf(bw, "per-cpu ticks (layout-invariant):")
		for _, c := range p.PerCPU {
			fmt.Fprintf(bw, " cpu%d:%d", c.CPU, c.Ticks)
		}
		fmt.Fprintf(bw, "\n")
	}
	for _, ws := range p.Worker {
		if len(ws.SkipDist) > 0 {
			fmt.Fprintf(bw, "worker %d skip distance (sim cycles, log2): %s\n", ws.Worker, fmtHist(ws.SkipDist))
		}
	}
	if simOnly {
		return bw.Flush()
	}

	fmt.Fprintf(bw, "\n=== host timing (wall clock; varies run to run) ===\n")
	fmt.Fprintf(bw, "run wall %s, coordinator serial %s, parallel regions %s\n",
		fmtNs(p.Coord.RunNs), fmtNs(p.Coord.SerialNs), fmtNs(p.Coord.BarrierNs))
	d := p.Decomp
	fmt.Fprintf(bw, "speedup decomposition (share of %d x run-wall worker-time):\n", p.Workers)
	fmt.Fprintf(bw, "  work %s  gate-wait %s  barrier-idle %s  coordinator-serial %s\n",
		pct(d.WorkFrac), pct(d.GateWaitFrac), pct(d.BarrierFrac), pct(d.SerialFrac))
	fmt.Fprintf(bw, "  gate-wait share of busy worker time: %s\n", pct(d.GateShareOfBusy))
	fmt.Fprintf(bw, "%8s %14s %14s %12s\n", "worker", "busy", "spinning", "spins")
	for _, ws := range p.Worker {
		fmt.Fprintf(bw, "%8d %14s %14s %12d\n", ws.Worker, fmtNs(ws.BusyNs), fmtNs(ws.SpinNs), ws.SpinCount)
	}
	fmt.Fprintf(bw, "spin duration (ns, log2): %s\n", fmtHist(p.WaitHist))

	if len(p.Waits) > 0 {
		waits := make([]WaitStats, len(p.Waits))
		copy(waits, p.Waits)
		sort.Slice(waits, func(i, j int) bool {
			a, b := waits[i], waits[j]
			if a.Ns != b.Ns {
				return a.Ns > b.Ns
			}
			if a.Waiter != b.Waiter {
				return a.Waiter < b.Waiter
			}
			if a.Peer != b.Peer {
				return a.Peer < b.Peer
			}
			return a.Site < b.Site
		})
		if top > 0 && len(waits) > top {
			waits = waits[:top]
		}
		fmt.Fprintf(bw, "top gate waits (waiter spins until peer passes):\n")
		fmt.Fprintf(bw, "%8s %6s %-14s %10s %14s\n", "waiter", "peer", "site", "count", "spun")
		for _, ws := range waits {
			fmt.Fprintf(bw, "%8d %6d %-14s %10d %14s\n", ws.Waiter, ws.Peer, ws.Site, ws.Count, fmtNs(ws.Ns))
		}
	}
	if p.DroppedSlices > 0 {
		fmt.Fprintf(bw, "timeline: %d slices dropped (aggregates above are complete)\n", p.DroppedSlices)
	}
	return bw.Flush()
}

// fmtDeltaNs renders a signed nanosecond delta.
func fmtDeltaNs(old, new uint64) string {
	if new >= old {
		return "+" + fmtNs(new-old)
	}
	return "-" + fmtNs(old-new)
}

// fmtDeltaPts renders a fraction change in percentage points.
func fmtDeltaPts(old, new float64) string {
	return fmt.Sprintf("%+.1f pts", 100*(new-old))
}

// WriteDiff renders what changed between two saved profiles of the
// same run shape (cmd/parprof -diff old.json new.json): the speedup
// decomposition side by side, the schedule-shape counters, and the
// per-site gate-wait attribution sorted by absolute delta — the table
// to read after an optimization to see exactly which waiter-peer
// pairs paid for the improvement (or caused the regression).
func WriteDiff(w io.Writer, old, new *Profile, top int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "host profile diff: %s -> %s\n", old.Workload, new.Workload)
	if old.Workers != new.Workers || old.CPUs != new.CPUs {
		fmt.Fprintf(bw, "note: shapes differ (%d workers/%d cpus -> %d workers/%d cpus); deltas compare unlike runs\n",
			old.Workers, old.CPUs, new.Workers, new.CPUs)
	}
	fmt.Fprintf(bw, "\nrun wall %s -> %s (%s)\n",
		fmtNs(old.Coord.RunNs), fmtNs(new.Coord.RunNs), fmtDeltaNs(old.Coord.RunNs, new.Coord.RunNs))
	fmt.Fprintf(bw, "decomposition (share of workers x run-wall):\n")
	rows := []struct {
		name     string
		old, new float64
	}{
		{"work", old.Decomp.WorkFrac, new.Decomp.WorkFrac},
		{"gate-wait", old.Decomp.GateWaitFrac, new.Decomp.GateWaitFrac},
		{"barrier-idle", old.Decomp.BarrierFrac, new.Decomp.BarrierFrac},
		{"coordinator-serial", old.Decomp.SerialFrac, new.Decomp.SerialFrac},
	}
	for _, r := range rows {
		fmt.Fprintf(bw, "  %-18s %s -> %s  (%s)\n", r.name, pct(r.old), pct(r.new), fmtDeltaPts(r.old, r.new))
	}
	fmt.Fprintf(bw, "  %-18s %s -> %s  (%s)\n", "gate/busy",
		pct(old.Decomp.GateShareOfBusy), pct(new.Decomp.GateShareOfBusy),
		fmtDeltaPts(old.Decomp.GateShareOfBusy, new.Decomp.GateShareOfBusy))

	sum := func(p *Profile, f func(WorkerStats) uint64) uint64 {
		var t uint64
		for _, ws := range p.Worker {
			t += f(ws)
		}
		return t
	}
	fmt.Fprintf(bw, "schedule: windows %d -> %d, ticks %d -> %d, skips %d -> %d, grants %d -> %d (%d -> %d cycles granted)\n",
		old.Sched.Windows, new.Sched.Windows,
		sum(old, func(w WorkerStats) uint64 { return w.Ticks }), sum(new, func(w WorkerStats) uint64 { return w.Ticks }),
		sum(old, func(w WorkerStats) uint64 { return w.SkipCount }), sum(new, func(w WorkerStats) uint64 { return w.SkipCount }),
		sum(old, func(w WorkerStats) uint64 { return w.Grants }), sum(new, func(w WorkerStats) uint64 { return w.Grants }),
		sum(old, func(w WorkerStats) uint64 { return w.GrantCycles }), sum(new, func(w WorkerStats) uint64 { return w.GrantCycles }))

	type siteKey struct {
		waiter, peer int
		site         string
	}
	waitMap := func(p *Profile) map[siteKey]uint64 {
		m := make(map[siteKey]uint64, len(p.Waits))
		for _, ws := range p.Waits {
			m[siteKey{ws.Waiter, ws.Peer, ws.Site}] += ws.Ns
		}
		return m
	}
	om, nm := waitMap(old), waitMap(new)
	keys := make([]siteKey, 0, len(om)+len(nm))
	seen := map[siteKey]bool{}
	for k := range om {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range nm {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	absDelta := func(k siteKey) uint64 {
		o, n := om[k], nm[k]
		if n >= o {
			return n - o
		}
		return o - n
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := absDelta(keys[i]), absDelta(keys[j])
		if di != dj {
			return di > dj
		}
		a, b := keys[i], keys[j]
		if a.waiter != b.waiter {
			return a.waiter < b.waiter
		}
		if a.peer != b.peer {
			return a.peer < b.peer
		}
		return a.site < b.site
	})
	if top > 0 && len(keys) > top {
		keys = keys[:top]
	}
	if len(keys) > 0 {
		fmt.Fprintf(bw, "per-site gate-wait deltas (by |delta|):\n")
		fmt.Fprintf(bw, "%8s %6s %-14s %14s %14s %14s\n", "waiter", "peer", "site", "old", "new", "delta")
		for _, k := range keys {
			fmt.Fprintf(bw, "%8d %6d %-14s %14s %14s %14s\n",
				k.waiter, k.peer, k.site, fmtNs(om[k]), fmtNs(nm[k]), fmtDeltaNs(om[k], nm[k]))
		}
	}
	return bw.Flush()
}

// WriteFolded writes collapsed flamegraph stacks (ns weights): per
// worker the useful work, barrier idle and per-(site, peer-pair) gate
// waits, plus the coordinator serial time.
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "coordinator;serial %d\n", p.Coord.SerialNs)
	cpuWorker := map[int]int{}
	for wi, ids := range p.Shards {
		for _, id := range ids {
			cpuWorker[id] = wi
		}
	}
	for _, ws := range p.Worker {
		fmt.Fprintf(bw, "worker%d;work %d\n", ws.Worker, clampSub(ws.BusyNs, ws.SpinNs))
		fmt.Fprintf(bw, "worker%d;barrier-idle %d\n", ws.Worker, clampSub(p.Coord.BarrierNs, ws.BusyNs))
	}
	for _, ws := range p.Waits {
		fmt.Fprintf(bw, "worker%d;gate-wait;%s;cpu%d-on-cpu%d %d\n",
			cpuWorker[ws.Waiter], ws.Site, ws.Waiter, ws.Peer, ws.Ns)
	}
	return bw.Flush()
}

// WriteChromeTrace writes the host timeline in the Chrome trace-event
// format (chrome://tracing, Perfetto), following the obsv sink's
// layout idiom: one track per worker goroutine plus the coordinator,
// "X" slices for windows/spins/serial/barrier spans, instants for
// skips and the sim-time window-boundary marks. One microsecond of
// trace time is one microsecond of host time.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"host scheduler"}}`)
	for w, ids := range p.Shards {
		emit(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"worker %d cpus %v"}}`, w, w, ids)
	}
	emit(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"coordinator"}}`, p.Workers)

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	dur := func(s Slice) float64 {
		d := us(s.T1 - s.T0)
		if d <= 0 {
			return 0.001
		}
		return d
	}
	for _, s := range p.Slices {
		switch s.Kind {
		case "window":
			emit(`{"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"window","args":{"w0":%d,"w1":%d}}`,
				s.Track, us(s.T0), dur(s), s.W0, s.W1)
		case "spin":
			emit(`{"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"spin %s","args":{"waiter":%d,"peer":%d,"cycle":%d}}`,
				s.Track, us(s.T0), dur(s), s.Site, s.CPU, s.Peer, s.W0)
		case "skip":
			emit(`{"ph":"i","pid":0,"tid":%d,"ts":%.3f,"s":"t","name":"skip","args":{"cpu":%d,"from":%d,"to":%d}}`,
				s.Track, us(s.T0), s.CPU, s.W0, s.W1)
		case "grant":
			emit(`{"ph":"i","pid":0,"tid":%d,"ts":%.3f,"s":"t","name":"grant","args":{"cpu":%d,"from":%d,"to":%d}}`,
				s.Track, us(s.T0), s.CPU, s.W0, s.W1)
		case "serial":
			emit(`{"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"serial","args":{}}`,
				s.Track, us(s.T0), dur(s))
		case "barrier":
			emit(`{"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"barrier","args":{"w0":%d,"w1":%d}}`,
				s.Track, us(s.T0), dur(s), s.W0, s.W1)
		case "mark":
			emit(`{"ph":"i","pid":0,"tid":%d,"ts":%.3f,"s":"t","name":"window %s","args":{"w0":%d,"w1":%d}}`,
				s.Track, us(s.T0), s.Cut, s.W0, s.W1)
		}
	}
	if _, err := io.WriteString(bw, "\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

// Events converts the profile's timeline to obsv host-track events
// (EvHostWindow/EvHostSpin/EvHostSkip/EvHostSerial/EvHostBarrier) so it
// can ride the obsv JSONL sink and be summarized by cmd/tracestats
// -tracks host. Field use per kind is documented on the obsv constants.
func (p *Profile) Events() []obsv.Event {
	var out []obsv.Event
	for _, s := range p.Slices {
		d := uint64(s.T1 - s.T0)
		wlen := clamp32(cyc.Sub(s.W1, s.W0))
		switch s.Kind {
		case "window":
			out = append(out, obsv.Event{Kind: obsv.EvHostWindow, Cycle: s.W0,
				CPU: int8(s.Track), Addr: wlen, Arg: clamp32(d / 1e3)})
		case "spin":
			out = append(out, obsv.Event{Kind: obsv.EvHostSpin, Cycle: s.W0,
				CPU: int8(s.CPU), Addr: uint32(s.Peer), Arg: clamp32(d),
				Arg2: uint32(SiteFromString(s.Site))})
		case "skip":
			out = append(out, obsv.Event{Kind: obsv.EvHostSkip, Cycle: s.W0,
				CPU: int8(s.CPU), Arg: wlen})
		case "serial":
			out = append(out, obsv.Event{Kind: obsv.EvHostSerial, Cycle: s.W0,
				CPU: -1, Arg: clamp32(d / 1e3)})
		case "barrier":
			out = append(out, obsv.Event{Kind: obsv.EvHostBarrier, Cycle: s.W0,
				CPU: -1, Arg: clamp32(d / 1e3), Arg2: wlen})
		}
	}
	return out
}
