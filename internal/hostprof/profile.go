package hostprof

import (
	"runtime"
	"sort"

	"cmpsim/internal/cyc"
)

// HistBucket is one occupied log2 histogram bucket: Count values v with
// 2^(Log2-1) <= v < 2^Log2 (Log2 == 0 counts zeros).
type HistBucket struct {
	Log2  int    `json:"log2"`
	Count uint64 `json:"count"`
}

func sparse(h *hist) []HistBucket {
	var out []HistBucket
	for i, n := range h {
		if n > 0 {
			out = append(out, HistBucket{Log2: i, Count: n})
		}
	}
	return out
}

func merge(dst, src *hist) {
	for i, n := range src {
		dst[i] += n
	}
}

// SchedStats is the deterministic half of the profile: the schedule
// shape (window edges, cut reasons, lengths) is a pure function of the
// simulation and the worker count, so two runs of the same config at
// the same -sim-jobs produce identical values — the host-prof-smoke
// target diffs exactly this.
type SchedStats struct {
	Windows      uint64       `json:"windows"`
	CutGrid      uint64       `json:"cut_grid"`
	CutEnd       uint64       `json:"cut_end"`
	CutEvent     uint64       `json:"cut_event"`
	CutSampler   uint64       `json:"cut_sampler"`
	CutFastFwd   uint64       `json:"cut_fast_forward,omitempty"` // coordinator fast-forwards over all-quiescent gaps
	CutAdapt     uint64       `json:"cut_adapt,omitempty"`        // adaptive sub-grid shortenings
	WindowCycles uint64       `json:"window_cycles"`              // sim cycles dispatched through windows
	WindowLen    []HistBucket `json:"window_len"`                 // log2 sim-cycle window lengths
}

// WorkerStats is one worker goroutine's totals. Windows/Ticks/Skip* are
// deterministic (schedule shape); BusyNs/SpinNs/SpinCount are host wall
// clock.
type WorkerStats struct {
	Worker      int          `json:"worker"`
	CPUs        []int        `json:"cpus"`
	Windows     uint64       `json:"windows"`
	Ticks       uint64       `json:"ticks"`
	SkipCount   uint64       `json:"skip_count"`
	SkipCycles  uint64       `json:"skip_cycles"`
	SkipDist    []HistBucket `json:"skip_dist,omitempty"` // log2 sim-cycle skip distances
	Grants      uint64       `json:"epoch_grants,omitempty"`
	GrantCycles uint64       `json:"epoch_grant_cycles,omitempty"`
	BusyNs      uint64       `json:"busy_ns"`
	SpinNs      uint64       `json:"spin_ns"`
	SpinCount   uint64       `json:"spin_count"`
}

// CPUStats is one CPU's layout-invariant executed-tick count — the
// balance weight the offline layout scorer uses to estimate per-worker
// work under a hypothetical CPU→worker assignment.
type CPUStats struct {
	CPU   int    `json:"cpu"`
	Ticks uint64 `json:"ticks"`
}

// WaitStats attributes gate-wait time to one (waiter CPU, laggard peer
// CPU, gate site) combination.
type WaitStats struct {
	Waiter int    `json:"waiter"`
	Peer   int    `json:"peer"`
	Site   string `json:"site"`
	Count  uint64 `json:"count"`
	Ns     uint64 `json:"ns"`
}

// CoordStats is the coordinator's wall-clock totals: SerialNs is time
// spent serialized between barriers (IRQ merge, event calendar, window
// edges, sampler probes), BarrierNs the parallel-region spans, RunNs
// the whole parallel-loop wall time.
type CoordStats struct {
	SerialNs  uint64 `json:"serial_ns"`
	BarrierNs uint64 `json:"barrier_ns"`
	RunNs     uint64 `json:"run_ns"`
}

// DecompStats is the Amdahl-style speedup decomposition over total
// worker-time (workers x run wall clock): WorkFrac is useful tick work,
// GateWaitFrac the tick-gate spin share, BarrierFrac worker idle inside
// parallel regions (load imbalance), SerialFrac worker idle while the
// coordinator runs serialized. The four sum to ~1; the gap to
// WorkFrac == 1 is exactly the lost speedup. GateShareOfBusy is
// SpinNs/BusyNs — the fraction of in-window worker time wasted
// spinning, the benchjson gate_wait_frac column.
type DecompStats struct {
	WorkFrac        float64 `json:"work_frac"`
	GateWaitFrac    float64 `json:"gate_wait_frac"`
	BarrierFrac     float64 `json:"barrier_frac"`
	SerialFrac      float64 `json:"serial_frac"`
	GateShareOfBusy float64 `json:"gate_share_of_busy"`
}

// Profile is a deterministic-ordered snapshot of one simulation's host
// schedule, JSON round-trippable for cmd/parprof -json/-in.
type Profile struct {
	Workload string  `json:"workload,omitempty"`
	Arch     string  `json:"arch,omitempty"`
	Model    string  `json:"model,omitempty"`
	CPUs     int     `json:"cpus"`
	Workers  int     `json:"workers"` // 0: the run never took the parallel path
	Shards   [][]int `json:"shards,omitempty"`

	// HostProcs is GOMAXPROCS at capture time. The layout scorer needs
	// it: on a 1-proc host shard goroutines time-slice instead of
	// overlapping, which inverts which layouts win. 0 means an old
	// profile that never recorded it.
	HostProcs int `json:"host_procs,omitempty"`

	Sched    SchedStats    `json:"sched"`
	Worker   []WorkerStats `json:"worker_stats,omitempty"`
	PerCPU   []CPUStats    `json:"per_cpu,omitempty"`
	Waits    []WaitStats   `json:"waits,omitempty"`
	WaitHist []HistBucket  `json:"wait_hist,omitempty"` // log2 spin ns, all CPUs
	Coord    CoordStats    `json:"coord"`
	Decomp   DecompStats   `json:"decomp"`

	Slices        []Slice `json:"slices,omitempty"`
	DroppedSlices uint64  `json:"dropped_slices,omitempty"`
}

// Snapshot assembles the profile: every table sorted, histograms
// sparse, the decomposition computed. Safe to call on a nil or unbound
// recorder (a serial run): the result is an empty profile with
// Workers == 0.
func (r *Recorder) Snapshot(workload, arch, model string) *Profile {
	p := &Profile{Workload: workload, Arch: arch, Model: model}
	if r == nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.coord == nil {
		return p
	}
	p.CPUs = r.ncpu
	p.Workers = r.nw
	p.Shards = r.shards
	p.HostProcs = runtime.GOMAXPROCS(0)

	c := r.coord
	p.Sched = SchedStats{
		Windows:      c.windows,
		CutGrid:      c.cuts[CutGrid],
		CutEnd:       c.cuts[CutEnd],
		CutEvent:     c.cuts[CutEvent],
		CutSampler:   c.cuts[CutSampler],
		CutFastFwd:   c.cuts[CutFastForward],
		CutAdapt:     c.cuts[CutAdapt],
		WindowCycles: c.simCycles,
		WindowLen:    sparse(&c.winLenHist),
	}
	p.Coord = CoordStats{SerialNs: c.serialNs, BarrierNs: c.barrierNs, RunNs: c.runNs}

	for _, tk := range r.tracks {
		p.Worker = append(p.Worker, WorkerStats{
			Worker:      tk.w,
			CPUs:        tk.cpus,
			Windows:     tk.windows,
			Ticks:       tk.ticks,
			SkipCount:   tk.skipCount,
			SkipCycles:  tk.skipCycles,
			SkipDist:    sparse(&tk.skipHist),
			Grants:      tk.grants,
			GrantCycles: tk.grantCycles,
			BusyNs:      tk.busyNs,
			SpinNs:      tk.spinNs,
			SpinCount:   tk.spinCount,
		})
	}
	for id := 0; id < r.ncpu; id++ {
		var n uint64
		for _, tk := range r.tracks {
			if id < len(tk.cpuTicks) {
				n += tk.cpuTicks[id]
			}
		}
		if n > 0 {
			p.PerCPU = append(p.PerCPU, CPUStats{CPU: id, Ticks: n})
		}
	}

	var wh hist
	for waiter, g := range r.gates {
		if g == nil {
			continue
		}
		merge(&wh, &g.hist)
		for peer := 0; peer < r.ncpu; peer++ {
			for s := Site(0); s < NumSites; s++ {
				cell := g.cells[peer*int(NumSites)+int(s)]
				if cell.count == 0 {
					continue
				}
				p.Waits = append(p.Waits, WaitStats{
					Waiter: waiter, Peer: peer, Site: s.String(),
					Count: cell.count, Ns: cell.ns,
				})
			}
		}
	}
	// Gate iteration above is already (waiter, peer, site)-ordered; sort
	// anyway so the invariant survives refactors.
	sort.Slice(p.Waits, func(i, j int) bool {
		a, b := p.Waits[i], p.Waits[j]
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Site < b.Site
	})
	p.WaitHist = sparse(&wh)

	for _, tk := range r.tracks {
		p.Slices = append(p.Slices, tk.slices...)
		p.DroppedSlices += tk.dropped
	}
	p.Slices = append(p.Slices, c.slices...)
	p.DroppedSlices += c.dropped
	sort.Slice(p.Slices, func(i, j int) bool {
		a, b := p.Slices[i], p.Slices[j]
		if a.T0 != b.T0 {
			return a.T0 < b.T0
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.CPU != b.CPU {
			return a.CPU < b.CPU
		}
		return a.W0 < b.W0
	})

	p.Decomp = decompose(p)
	return p
}

// decompose computes the speedup decomposition from the profile's
// aggregate times. Total worker-time is Workers x RunNs; worker busy
// time nests inside barrier spans and spin time inside busy time, so
// the residuals are clamped at zero against wall-clock skew.
func decompose(p *Profile) DecompStats {
	var busy, spin uint64
	for _, w := range p.Worker {
		busy += w.BusyNs
		spin += w.SpinNs
	}
	nw := uint64(p.Workers)
	denom := float64(nw * p.Coord.RunNs)
	var d DecompStats
	if busy > 0 {
		d.GateShareOfBusy = float64(spin) / float64(busy)
	}
	if denom <= 0 {
		return d
	}
	work := cyc.Sub(busy, spin)
	barIdle := clampSub(nw*p.Coord.BarrierNs, busy)
	serIdle := nw * min64(p.Coord.SerialNs, p.Coord.RunNs)
	d.WorkFrac = clampFrac(float64(work) / denom)
	d.GateWaitFrac = clampFrac(float64(spin) / denom)
	d.BarrierFrac = clampFrac(float64(barIdle) / denom)
	d.SerialFrac = clampFrac(float64(serIdle) / denom)
	return d
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func clampSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
