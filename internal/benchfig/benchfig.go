// Package benchfig defines the figure-benchmark matrix shared by the
// root package's BenchmarkFigures suite and cmd/benchjson: one entry
// per reproduced paper figure, with the reduced data-set sizes that
// keep a full sweep in the minutes range (cmd/experiments runs the
// paper-scale versions). Keeping the matrix in one place guarantees
// that `go test -bench Figures` and the BENCH_figures.json perf
// baseline measure exactly the same work.
package benchfig

import (
	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// Figure is one figure benchmark: the workload runs on all three
// architectures under one CPU model, mirroring the corresponding
// per-application figure of the paper.
type Figure struct {
	Name  string // bench sub-name, e.g. "Figure5_MP3D"
	Model core.CPUModel
	Cfg   func() memsys.Config // nil = memsys.DefaultConfig (the paper's parameters)
	New   func() workload.Workload
}

// Config returns the memory-system configuration this figure is
// benchmarked under.
func (f Figure) Config() memsys.Config {
	if f.Cfg != nil {
		return f.Cfg()
	}
	return memsys.DefaultConfig()
}

// MemBoundConfig is the memory-latency-bound design point used by the
// *_MemBound benchmark rows: DRAM at 800 cycles, an L2 at 80, and
// caches shrunk far below the working sets, on a 2-CPU machine. It is
// the regime the quiescence-skipping scheduler exists for — nearly all
// cycles have every CPU mid-miss — so these rows are the perf
// sentinels that future scheduler changes regress against. (Under the
// paper's default parameters only 5-30% of cycles are fully blocked
// and skipping is roughly wall-clock neutral; see DESIGN.md.)
func MemBoundConfig() memsys.Config {
	cfg := memsys.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemLat = 800
	cfg.L2Lat = 80
	cfg.SharedL2Lat = 84
	cfg.C2CLat = 880 // keep C2C > memory, as in Table 2
	cfg.L1DSize = 4 << 10
	cfg.SharedL1Size = 16 << 10
	cfg.PrivL2Size = 64 << 10
	cfg.L2Size = 256 << 10
	return cfg
}

// MXSMemBoundConfig is the memory-bound design point on the paper's
// 4-CPU machine, for the detailed-CPU parallel-tick sentinel row: the
// out-of-order cores spend most cycles with full MSHRs at staggered
// times, so the sharded scheduler's per-CPU quiescence skip removes
// no-op ticks the serial loop must execute (it can only skip cycles
// where every CPU is blocked at once), and the heavy per-tick pipeline
// work of the active CPUs overlaps across host cores.
func MXSMemBoundConfig() memsys.Config {
	cfg := MemBoundConfig()
	cfg.NumCPUs = 4
	return cfg
}

// Figures returns the benchmark matrix in the paper's figure order:
// Figures 4-10 under Mipsy, Figure 11's three applications under MXS.
func Figures() []Figure {
	return []Figure{
		{"Figure4_Eqntott", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewEqntott(workload.EqntottParams{Words: 128, Iters: 40})
		}},
		{"Figure5_MP3D", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewMP3D(workload.MP3DParams{Particles: 2048, Steps: 2})
		}},
		{"Figure6_Ocean", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewOcean(workload.OceanParams{N: 66, FineIter: 2, CoarseIt: 2})
		}},
		{"Figure7_Volpack", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewVolpack(workload.VolpackParams{Size: 32, Depth: 16})
		}},
		{"Figure8_Ear", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewEar(workload.EarParams{Samples: 250})
		}},
		{"Figure9_FFT", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewFFT(workload.FFTParams{N: 64, Batches: 8})
		}},
		{"Figure10_Pmake", core.ModelMipsy, nil, func() workload.Workload {
			return workload.NewPmake(workload.PmakeParams{Procs: 6, Funcs: 32, Passes: 3})
		}},
		{"Figure11_MXS_Pmake", core.ModelMXS, nil, func() workload.Workload {
			return workload.NewPmake(workload.PmakeParams{Procs: 6, Funcs: 32, Passes: 2})
		}},
		{"Figure11_MXS_Eqntott", core.ModelMXS, nil, func() workload.Workload {
			return workload.NewEqntott(workload.EqntottParams{Words: 128, Iters: 30})
		}},
		{"Figure11_MXS_Ear", core.ModelMXS, nil, func() workload.Workload {
			return workload.NewEar(workload.EarParams{Samples: 150})
		}},
		// Memory-latency-bound variants of the MP3D and Ocean figures:
		// larger data sets than the default rows (MP3D 8192 particles,
		// Ocean on a 258x258 grid) under MemBoundConfig, where 90%+ of
		// cycles are fully blocked and the quiescence skip dominates.
		{"Figure5_MP3D_MemBound", core.ModelMipsy, MemBoundConfig, func() workload.Workload {
			return workload.NewMP3D(workload.MP3DParams{Particles: 8192, Steps: 1})
		}},
		{"Figure6_Ocean_MemBound", core.ModelMipsy, MemBoundConfig, func() workload.Workload {
			return workload.NewOcean(workload.OceanParams{N: 258, FineIter: 1, CoarseIt: 1})
		}},
		// Detailed-CPU memory-bound row: the parallel-tick (-sim-jobs)
		// speedup sentinel. See MXSMemBoundConfig.
		{"Figure11_MXS_MP3D_MemBound", core.ModelMXS, MXSMemBoundConfig, func() workload.Workload {
			return workload.NewMP3D(workload.MP3DParams{Particles: 2048, Steps: 1})
		}},
	}
}

// Run executes one iteration of a figure benchmark — the workload on
// all three architectures — and returns the per-architecture results
// plus the total number of simulated cycles, the numerator of the
// simulated-cycles-per-second throughput metric. cfg overrides the
// memory-system parameters; nil uses the figure's own (f.Config).
func Run(f Figure, cfg *memsys.Config) (map[core.Arch]*core.RunResult, uint64, error) {
	if cfg == nil {
		c := f.Config()
		cfg = &c
	}
	runs := make(map[core.Arch]*core.RunResult, 3)
	var cycles uint64
	for _, a := range core.Arches() {
		res, err := workload.Run(f.New(), a, f.Model, cfg)
		if err != nil {
			return nil, 0, err
		}
		runs[a] = res
		cycles += res.Cycles
	}
	return runs, cycles, nil
}
