GO ?= go

.PHONY: all build check vet lint lint-baseline test race smoke race-smoke bench bench-gate bench-trace telemetry-smoke host-prof-smoke layout-smoke experiments-output clean

all: build

build:
	$(GO) build ./...

# check is the verification gate: static analysis (vet + the simlint
# invariant suite), the full test suite under the race detector (the
# trace ring is the shared-state hot spot), a sanitized smoke run of
# every architecture, and a race-checked parallel smoke of the runner
# pool.
check: vet lint race smoke race-smoke

vet:
	$(GO) vet ./...

# lint runs the project's own go/types-based analyzers (determinism,
# cycleflow, hotalloc, statreg, sharedmut, neutral, cachekey) over the
# whole module, emitting SARIF for code scanning and the sharedmut
# ownership classification alongside the terminal findings. See
# cmd/simlint and the "Correctness tooling" section of the README.
lint:
	$(GO) run ./cmd/simlint -sarif simlint.sarif -ownership-out ownership.json

# lint-baseline regenerates the committed suppression ledger from the
# current findings and fails if it no longer matches the checked-in
# file — run it (and commit the diff) after deliberately accepting or
# burning down inventoried debt.
lint-baseline:
	$(GO) run ./cmd/simlint -write-baseline
	git diff --exit-code .simlint-baseline.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs one reduced-size workload per traffic pattern on all three
# architectures with the runtime sanitizer on: every memory transaction
# is checked for MESI legality, directory/L1 agreement, inclusion,
# cycle monotonicity and MSHR drain, and any violation panics with an
# event trail.
smoke:
	$(GO) run ./cmd/cmpsim -workload eqntott -quick -sanitize
	$(GO) run ./cmd/cmpsim -workload fft -quick -sanitize
	$(GO) run ./cmd/cmpsim -workload mp3d -quick -sanitize

# race-smoke drives both parallelism axes under the race detector on
# real simulations, not just the unit tests. First the internal/runner
# worker pool: all three architectures of a sanitized quick workload run
# concurrently on 4 workers, proving the pool's job isolation (no shared
# tracer, checker, or counter state). Then the intra-simulation parallel
# tick: a detailed-CPU quick workload sharded across 4 sim workers
# (-sanitize is omitted there — the sanitizer forces the serial path,
# so a sanitized run would not exercise the tick gate at all).
race-smoke:
	$(GO) run -race ./cmd/cmpsim -workload eqntott -quick -sanitize -jobs 4
	$(GO) run -race ./cmd/cmpsim -workload mp3d -quick -model mxs -sim-jobs 4

# bench runs the figure-benchmark matrix (internal/benchfig) through
# cmd/benchjson and writes BENCH_figures.json: ns/op and simulated
# cycles/sec per figure, with and without the quiescence-skipping
# scheduler, plus the skip speedup. CI uploads the file as an artifact
# so every PR leaves a perf trajectory to regress against.
bench:
	$(GO) run ./cmd/benchjson

# bench-gate is the CI perf gate: re-measure the figure matrix
# (median of 3 samples per cell) and diff against the committed
# baseline. Sim cycle counts must match exactly (determinism anchor —
# including at -sim-jobs 2 and under the profile-suggested shard
# layout on the detailed-CPU rows); Mipsy MemBound rows must keep a
# >= 2x skip speedup; the MXS MemBound row must keep a >= 1.5x
# parallel-tick speedup (1.4x on hosts with fewer than 4 cores) unless
# the baseline marks it par_regression, and its gate_wait_frac may not
# climb more than 5 points above the committed value when the adopted
# layout matches; every other row's dimensionless speedup must stay
# within ±30% of its baseline value.
bench-gate:
	$(GO) run ./cmd/benchjson -gate BENCH_figures.json -samples 3

# telemetry-smoke scrapes the live /metrics endpoint in the middle of
# a parallel campaign and reconciles it against the final run report —
# the ISSUE 6 acceptance criterion, as a hermetic Go test.
telemetry-smoke:
	$(GO) test -race -run TestTelemetryHTTPSmoke -v .

# experiments-output regenerates the full-campaign capture that
# EXPERIMENTS.md describes. The file is a generated artifact —
# .gitignore'd, like simlint.sarif and ownership.json — so reproduce
# it locally rather than expecting it in the tree (~30 s on one core;
# add `-sim-jobs 4` manually for a sharded run, output is identical).
experiments-output:
	$(GO) run ./cmd/experiments > experiments_output.txt

# bench-trace proves the disabled-instrumentation acceptance bar:
# BenchmarkTracerDisabled, BenchmarkProfDisabled and
# BenchmarkHostProfDisabled must report 0 allocs/op (CI greps the
# output for exactly that).
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkTracer|BenchmarkProf|BenchmarkHostProf' -benchmem .

# layout-smoke round-trips the profile-guided layout pipeline on real
# runs: profile a quick sharded memory-bound point, ask the offline
# search (parprof -suggest-layout) for a CPU→worker assignment, then
# prove the suggested -shard-layout plus -sim-window-adapt leave the
# simulation output byte-identical to the serial run.
layout-smoke:
	$(GO) run ./cmd/parprof -workload mp3d -quick -arch shared-mem -membound -sim-jobs 2 -json layout_prof.json > /dev/null
	$(GO) run ./cmd/cmpsim -workload mp3d -quick -arch shared-mem -model mxs > layout_a.txt
	LAYOUT=$$($(GO) run ./cmd/parprof -in layout_prof.json -suggest-layout 4 | sed -n 's/^rerun with: -shard-layout //p'); \
	  echo "layout-smoke: adopting -shard-layout $$LAYOUT"; \
	  $(GO) run ./cmd/cmpsim -workload mp3d -quick -arch shared-mem -model mxs -sim-jobs 4 -shard-layout "$$LAYOUT" -sim-window-adapt > layout_b.txt
	cmp layout_a.txt layout_b.txt
	rm -f layout_a.txt layout_b.txt layout_prof.json

# host-prof-smoke pins the host observatory's determinism contract on a
# real sharded run: two parprof invocations over the memory-bound
# 2-CPU MP3D point at -sim-jobs 2 must print byte-identical
# schedule-shape reports (-sim-only strips the wall-clock half), and
# the second run leaves its decomposition JSON behind for CI to upload.
host-prof-smoke:
	$(GO) run ./cmd/parprof -workload mp3d -quick -arch shared-mem -membound -cpus 2 -sim-jobs 2 -sim-only -json hostprof_smoke.json > hostprof_a.txt
	$(GO) run ./cmd/parprof -workload mp3d -quick -arch shared-mem -membound -cpus 2 -sim-jobs 2 -sim-only -json hostprof_smoke.json > hostprof_b.txt
	cmp hostprof_a.txt hostprof_b.txt
	rm -f hostprof_a.txt hostprof_b.txt

clean:
	$(GO) clean ./...
