GO ?= go

.PHONY: all build check vet test race bench-trace clean

all: build

build:
	$(GO) build ./...

# check is the verification gate: static analysis plus the full test
# suite under the race detector (the trace ring and global counters are
# the shared-state hot spots).
check: vet race

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-trace proves the disabled-instrumentation acceptance bar:
# BenchmarkTracerDisabled must report 0 allocs/op.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkTracer' -benchmem .

clean:
	$(GO) clean ./...
