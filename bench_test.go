// Benchmarks regenerating the paper's tables and figures. Each
// BenchmarkFigures sub-benchmark runs one workload of the shared
// internal/benchfig matrix on all three architectures and reports the
// normalized execution times (the heights of the paper's bars) as
// custom metrics:
//
//	go test -bench=. -benchmem
//
// The data sets are reduced from the paper-scale defaults so a full
// bench sweep stays in the minutes range; cmd/experiments runs the
// paper-scale versions. Absolute cycle counts differ from the 1996
// testbed by design — the shapes (who wins, by roughly what factor) are
// the reproduction target. cmd/benchjson (make bench) measures the same
// matrix with and without quiescence skipping and writes the
// BENCH_figures.json perf baseline.
package cmpsim_test

import (
	"fmt"
	"testing"

	"cmpsim"
	"cmpsim/internal/benchfig"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

// runFigure runs one benchfig entry (the workload on all three
// architectures) and reports each architecture's normalized execution
// time as a metric.
func runFigure(b *testing.B, f benchfig.Figure, cfg *cmpsim.Config) {
	b.Helper()
	var norm [3]float64
	var ipc [3]float64
	for i := 0; i < b.N; i++ {
		runs, _, err := benchfig.Run(f, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fig := cmpsim.BuildFigure("bench", "bench", f.Model, runs)
		for j, row := range fig.Rows {
			norm[j] = row.Norm.Total
			ipc[j] = row.IPC
		}
	}
	b.ReportMetric(norm[0], "norm-sharedL1")
	b.ReportMetric(norm[1], "norm-sharedL2")
	b.ReportMetric(norm[2], "norm-sharedMem")
	if f.Model == cmpsim.ModelMXS {
		b.ReportMetric(ipc[0]/4, "ipc/cpu-sharedL1")
		b.ReportMetric(ipc[1]/4, "ipc/cpu-sharedL2")
		b.ReportMetric(ipc[2]/4, "ipc/cpu-sharedMem")
	}
}

// --- Table 1 ---

func BenchmarkTable1_FuncUnitLatencies(b *testing.B) {
	ops := []isa.Op{isa.ADD, isa.MUL, isa.DIV, isa.BEQ, isa.SW,
		isa.FADDS, isa.FMULS, isa.FDIVS, isa.FADDD, isa.FMULD, isa.FDIVD}
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, op := range ops {
			sink += cpu.Latency(op)
		}
	}
	b.ReportMetric(float64(cpu.Latency(isa.FDIVD)), "dp-divide-cycles")
	_ = sink
}

// --- Table 2 ---

func BenchmarkTable2_AccessLatencies(b *testing.B) {
	var l1, l2lat, mem uint64
	for i := 0; i < b.N; i++ {
		cfg := memsys.DefaultConfig()
		s := memsys.NewSharedL2(cfg)
		r, _ := s.Access(0, 0, 0x1000, false)
		mem = r.Done
		r, _ = s.Access(1000, 0, 0x1000, false)
		l1 = r.Done - 1000
		r, _ = s.Access(2000, 1, 0x1000, false)
		l2lat = r.Done - 2000
	}
	b.ReportMetric(float64(l1), "sharedL2-L1-cycles")
	b.ReportMetric(float64(l2lat), "sharedL2-L2-cycles")
	b.ReportMetric(float64(mem), "sharedL2-mem-cycles")
}

// --- Figures 4-11 ---

// BenchmarkFigures runs every entry of the shared benchfig matrix
// (Figures 4-10 under Mipsy, Figure 11's applications under MXS) as a
// sub-benchmark; cmd/benchjson measures the identical matrix skip vs.
// -no-skip and writes BENCH_figures.json.
func BenchmarkFigures(b *testing.B) {
	for _, f := range benchfig.Figures() {
		f := f
		b.Run(f.Name, func(b *testing.B) { runFigure(b, f, nil) })
	}
}

// --- Section 4.1 ablation ---

func BenchmarkAblation_MP3DL2Assoc(b *testing.B) {
	for _, assoc := range []uint32{1, 2, 4} {
		assoc := assoc
		b.Run(benchName("l2assoc", int(assoc)), func(b *testing.B) {
			var missRate float64
			for i := 0; i < b.N; i++ {
				cfg := cmpsim.DefaultConfig()
				cfg.L2Assoc = assoc
				w := workload.NewMP3D(workload.MP3DParams{Particles: 2048, Steps: 2})
				res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					b.Fatal(err)
				}
				missRate = res.MemReport.L2.MissRate()
			}
			b.ReportMetric(100*missRate, "L2-miss-%")
		})
	}
}

// --- Design-choice ablations (DESIGN.md section 5) ---

// Shared-L1 hit time 1 vs 3 cycles and bank contention: the modelling
// delta between the paper's Mipsy and MXS configurations, on ear (the
// most latency-sensitive workload).
func BenchmarkAblation_SharedL1HitTime(b *testing.B) {
	for _, hit := range []uint64{1, 3} {
		hit := hit
		b.Run(benchName("hit", int(hit)), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := cmpsim.DefaultConfig()
				cfg.SharedL1HitLat = hit
				cfg.SharedL1BankContention = hit > 1
				w := workload.NewEar(workload.EarParams{Samples: 250})
				res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// Shared-L1 crossbar bank count sweep.
func BenchmarkAblation_SharedL1Banks(b *testing.B) {
	for _, banks := range []uint32{1, 2, 4, 8} {
		banks := banks
		b.Run(benchName("banks", int(banks)), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := cmpsim.DefaultConfig()
				cfg.SharedL1Banks = banks
				cfg.SharedL1HitLat = 3
				cfg.SharedL1BankContention = true
				w := workload.NewOcean(workload.OceanParams{N: 34, FineIter: 2, CoarseIt: 1})
				res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// Shared-L2 datapath width: the paper narrows the L2 path to 64 bits to
// save crossbar pins (occupancy 4); this sweeps the 128-bit alternative
// (occupancy 2) on bandwidth-hungry Ocean.
func BenchmarkAblation_SharedL2Datapath(b *testing.B) {
	for _, occ := range []uint64{2, 4} {
		occ := occ
		b.Run(benchName("occ", int(occ)), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := cmpsim.DefaultConfig()
				cfg.SharedL2Occ = occ
				w := workload.NewOcean(workload.OceanParams{N: 66, FineIter: 2, CoarseIt: 1})
				res, err := cmpsim.RunWorkload(w, cmpsim.SharedL2, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// Cache-to-cache transfer latency sweep for the shared-memory machine
// (Table 2's "> 50 cycles") on communication-bound eqntott.
func BenchmarkAblation_C2CLatency(b *testing.B) {
	for _, lat := range []uint64{50, 55, 70, 90} {
		lat := lat
		b.Run(benchName("c2c", int(lat)), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := cmpsim.DefaultConfig()
				cfg.C2CLat = lat
				w := workload.NewEqntott(workload.EqntottParams{Words: 128, Iters: 30})
				res, err := cmpsim.RunWorkload(w, cmpsim.SharedMem, cmpsim.ModelMipsy, &cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s-%d", k, v)
}
