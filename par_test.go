// Parallel-tick identity suite: the sharded scheduler (Config.SimJobs >
// 1) must be invisible in every observable output. Each case runs the
// same workload serially and with 2 and 4 shard workers — with the
// interval sampler attached, the one observability instrument the
// parallel path supports — and requires identical cycle counts, per-CPU
// stall statistics, memory reports, interval samples and latency
// histograms. The figures built from the runs must also match, so the
// printed experiments/cmpsim output is byte-identical by construction.
//
// Per-event instruments (tracer, profiler, sanitizer) force the serial
// loop; a separate case pins that a traced run with SimJobs set still
// produces the serial trace.
package cmpsim_test

import (
	"reflect"
	"testing"

	"cmpsim"
	"cmpsim/internal/workload"
)

// parRun is everything observable about one sampled run.
type parRun struct {
	res     *cmpsim.Result
	samples []cmpsim.Sample
	hist    string
}

func runSharded(t *testing.T, mk func() cmpsim.Workload, arch cmpsim.Arch, model cmpsim.CPUModel, simJobs int) parRun {
	t.Helper()
	return runShardedOpts(t, mk, arch, model, simJobs, "", false)
}

// runShardedOpts additionally takes the two scheduler shape knobs: an
// explicit CPU→worker layout and the adaptive window-sizing flag. Both
// are output-neutral by contract; the tests here are that contract's
// enforcement.
func runShardedOpts(t *testing.T, mk func() cmpsim.Workload, arch cmpsim.Arch, model cmpsim.CPUModel, simJobs int, layout string, adapt bool) parRun {
	t.Helper()
	cfg := cmpsim.DefaultConfig()
	cfg.SimJobs = simJobs
	cfg.ShardLayout = layout
	cfg.AdaptWindow = adapt
	cfg.Metrics = cmpsim.NewMetrics(5000)
	res, err := cmpsim.RunWorkload(mk(), arch, model, &cfg)
	if err != nil {
		t.Fatalf("%s/%s sim-jobs=%d layout=%q adapt=%v: %v", arch, model, simJobs, layout, adapt, err)
	}
	return parRun{res: res, samples: cfg.Metrics.Samples(), hist: cfg.Metrics.Hist().String()}
}

// diffParRuns fails the test on the first observable difference between
// a sharded and the serial run of the same configuration.
func diffParRuns(t *testing.T, jobs int, par, ref parRun) {
	t.Helper()
	if par.res.Cycles != ref.res.Cycles {
		t.Errorf("sim-jobs=%d cycles: par=%d serial=%d", jobs, par.res.Cycles, ref.res.Cycles)
	}
	if !reflect.DeepEqual(par.res.PerCPU, ref.res.PerCPU) {
		t.Errorf("sim-jobs=%d per-CPU stats diverge:\npar:    %+v\nserial: %+v", jobs, par.res.PerCPU, ref.res.PerCPU)
	}
	if !reflect.DeepEqual(par.res.MemReport, ref.res.MemReport) {
		t.Errorf("sim-jobs=%d memory report diverges:\npar:    %+v\nserial: %+v", jobs, par.res.MemReport, ref.res.MemReport)
	}
	if !reflect.DeepEqual(par.samples, ref.samples) {
		t.Errorf("sim-jobs=%d interval samples diverge (%d vs %d samples)", jobs, len(par.samples), len(ref.samples))
	}
	if par.hist != ref.hist {
		t.Errorf("sim-jobs=%d latency histograms diverge:\npar:\n%s\nserial:\n%s", jobs, par.hist, ref.hist)
	}
}

// TestParallelMatchesSerial covers the full architecture × CPU-model
// matrix with a miss-heavy workload at 1, 2 and 4 shard workers.
func TestParallelMatchesSerial(t *testing.T) {
	for _, model := range []cmpsim.CPUModel{cmpsim.ModelMipsy, cmpsim.ModelMXS} {
		model := model
		mk := func() cmpsim.Workload {
			return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
		}
		t.Run(string(model), func(t *testing.T) {
			refRuns := map[cmpsim.Arch]*cmpsim.Result{}
			parRuns := map[cmpsim.Arch]*cmpsim.Result{}
			for _, arch := range cmpsim.Architectures() {
				ref := runSharded(t, mk, arch, model, 1)
				refRuns[arch] = ref.res
				for _, jobs := range []int{2, 4} {
					par := runSharded(t, mk, arch, model, jobs)
					t.Run(string(arch), func(t *testing.T) { diffParRuns(t, jobs, par, ref) })
					parRuns[arch] = par.res
				}
			}
			refFig := cmpsim.BuildFigure("par", "mp3d", model, refRuns)
			parFig := cmpsim.BuildFigure("par", "mp3d", model, parRuns)
			if parFig.String() != refFig.String() {
				t.Errorf("figure text diverges:\npar:\n%s\nserial:\n%s", parFig, refFig)
			}
			if parFig.Chart() != refFig.Chart() {
				t.Error("figure charts diverge")
			}
		})
	}
}

// TestParallelLayoutAdaptMatchesSerial pins the other two scheduler
// shape knobs across the full architecture × model matrix: an explicit
// shard layout (including the degenerate single-shard one a 1-core
// host's profile suggests, and an interleaved split that breaks the
// default contiguous assignment) and adaptive window sizing, alone and
// combined, must all reproduce the serial run byte for byte.
func TestParallelLayoutAdaptMatchesSerial(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
	}
	cases := []struct {
		name   string
		jobs   int
		layout string
		adapt  bool
	}{
		{"layout-single-shard", 2, "0,0,0,0", false},
		{"layout-interleaved", 2, "0,1,0,1", false},
		{"adapt", 4, "", true},
		{"layout-adapt", 2, "0,1,1,0", true},
	}
	for _, model := range []cmpsim.CPUModel{cmpsim.ModelMipsy, cmpsim.ModelMXS} {
		model := model
		t.Run(string(model), func(t *testing.T) {
			for _, arch := range cmpsim.Architectures() {
				ref := runSharded(t, mk, arch, model, 1)
				for _, c := range cases {
					t.Run(string(arch)+"/"+c.name, func(t *testing.T) {
						par := runShardedOpts(t, mk, arch, model, c.jobs, c.layout, c.adapt)
						diffParRuns(t, c.jobs, par, ref)
					})
				}
			}
		})
	}
}

// TestParallelMatchesSerialKernel exercises the paths the matrix above
// cannot: the guest kernel's preemption timers raising interrupts from
// event callbacks, trap-handler mutation of kernel run queues under the
// tick gate, and context switches re-activating parked cores — all
// across window barriers.
func TestParallelMatchesSerialKernel(t *testing.T) {
	for _, model := range []cmpsim.CPUModel{cmpsim.ModelMipsy, cmpsim.ModelMXS} {
		model := model
		mk := func() cmpsim.Workload {
			return workload.NewPmake(workload.PmakeParams{Procs: 5, Funcs: 10, Passes: 2})
		}
		t.Run(string(model), func(t *testing.T) {
			ref := runSharded(t, mk, cmpsim.SharedL1, model, 1)
			for _, jobs := range []int{2, 4} {
				diffParRuns(t, jobs, runSharded(t, mk, cmpsim.SharedL1, model, jobs), ref)
			}
			// Preemption timers and trap-handler IRQs against carried
			// horizons, fast-forward and a non-contiguous layout.
			diffParRuns(t, 2, runShardedOpts(t, mk, cmpsim.SharedL1, model, 2, "0,1,0,1", true), ref)
		})
	}
}

// TestParallelNoSkipMatches pins the orthogonality of the two scheduler
// features: sharding with the quiescence skip disabled must still match
// the plain serial run.
func TestParallelNoSkipMatches(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 256, Steps: 1})
	}
	ref := runSharded(t, mk, cmpsim.SharedMem, cmpsim.ModelMXS, 1)
	cfg := cmpsim.DefaultConfig()
	cfg.SimJobs = 4
	cfg.NoSkip = true
	cfg.Metrics = cmpsim.NewMetrics(5000)
	res, err := cmpsim.RunWorkload(mk(), cmpsim.SharedMem, cmpsim.ModelMXS, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffParRuns(t, 4, parRun{res: res, samples: cfg.Metrics.Samples(), hist: cfg.Metrics.Hist().String()}, ref)
}

// TestParallelTracedFallsBackSerial pins the forced-serial contract:
// per-event instruments keep their exact serial emission order even
// when the configuration asks for sharding.
func TestParallelTracedFallsBackSerial(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 256, Steps: 1})
	}
	run := func(simJobs int) ([]cmpsim.TraceEvent, *cmpsim.Result) {
		cfg := cmpsim.DefaultConfig()
		cfg.SimJobs = simJobs
		ring := cmpsim.NewTraceRing(1 << 16)
		cfg.Trace = ring
		res, err := cmpsim.RunWorkload(mk(), cmpsim.SharedL2, cmpsim.ModelMXS, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ring.Events(), res
	}
	refEvents, refRes := run(1)
	parEvents, parRes := run(4)
	if !reflect.DeepEqual(parEvents, refEvents) {
		t.Errorf("trace event streams diverge under SimJobs (%d vs %d events)", len(parEvents), len(refEvents))
	}
	if parRes.Cycles != refRes.Cycles {
		t.Errorf("cycles diverge under SimJobs with tracer: %d vs %d", parRes.Cycles, refRes.Cycles)
	}
}
