// Command simlint runs the simulator's invariant analyzers (package
// internal/lint) over the module:
//
//	simlint            # analyze the whole module
//	simlint ./...      # same
//	simlint internal/memsys internal/cache
//
// Findings print as path:line:col: [analyzer] message and the exit
// status is 1 when any finding survives suppression. -list prints the
// suite. Suppress an individual finding with a //simlint:allow <name>
// comment on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cmpsim/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	// The source importer resolves module-internal imports relative to
	// the working directory's module; run from the root so any package
	// argument works.
	if err := os.Chdir(root); err != nil {
		fatal(err)
	}

	loader := lint.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	// Positional args narrow the analysis to matching packages; "./..."
	// and the empty list mean everything. statreg still sees the whole
	// module for its read-scan, so narrowing only filters the output.
	filters := packageFilters(flag.Args())
	diags, err := lint.RunAnalyzers(lint.Analyzers(), pkgs)
	if err != nil {
		fatal(err)
	}

	bad := false
	for _, d := range diags {
		if !filters.match(root, d.Pos.Filename) {
			continue
		}
		rel, rerr := filepath.Rel(root, d.Pos.Filename)
		if rerr != nil {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

type filterList []string

func packageFilters(args []string) filterList {
	var fl filterList
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		a = strings.TrimSuffix(a, "/...")
		a = strings.Trim(a, "/")
		if a == "." || a == "" {
			return nil // whole module
		}
		fl = append(fl, a)
	}
	return fl
}

func (fl filterList) match(root, file string) bool {
	if len(fl) == 0 {
		return true
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return true
	}
	rel = filepath.ToSlash(rel)
	for _, f := range fl {
		if strings.HasPrefix(rel, f+"/") || filepath.Dir(rel) == f {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(1)
}
