// Command simlint runs the simulator's invariant analyzers (package
// internal/lint) over the module:
//
//	simlint                          # analyze the whole module
//	simlint ./...                    # same
//	simlint internal/memsys          # narrow the *output* to packages
//	simlint -analyzers sharedmut,hotalloc
//	simlint -json                    # findings as a JSON array
//	simlint -sarif out.sarif         # SARIF 2.1.0 for code scanning
//	simlint -ownership-out ownership.json
//	simlint -write-baseline          # inventory current findings
//	simlint -list                    # print the suite
//
// Findings print as path:line:col: [analyzer] message. Exit status:
//
//	0  clean (no findings survived suppression, baseline and filters)
//	1  findings
//	2  load/usage error (bad flag, unknown analyzer, type-check failure)
//
// Suppress an individual finding with a //simlint:allow <name> comment
// on the offending line or the line above; inventoried debt lives in
// .simlint-baseline.json (see -baseline / -write-baseline). Under
// GITHUB_ACTIONS=true (or -github) findings are also emitted as
// ::error workflow annotations so they attach to the PR diff.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cmpsim/internal/lint"
)

const baselineName = ".simlint-baseline.json"

func main() {
	os.Exit(runWith(os.Args[1:], os.Stdout))
}

// runWith is the whole CLI behind an explicit flag set and output
// stream, so the exit-code contract (0 clean / 1 findings / 2 error)
// is testable in-process.
func runWith(argv []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	var (
		listFlag      = fs.Bool("list", false, "list the analyzers and exit")
		jsonFlag      = fs.Bool("json", false, "print findings as a JSON array on stdout")
		sarifFlag     = fs.String("sarif", "", "also write findings as SARIF 2.1.0 to `file`")
		ownershipFlag = fs.String("ownership-out", "", "write the sharedmut ownership classification to `file` as JSON")
		analyzersFlag = fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		baselineFlag  = fs.String("baseline", "", "baseline file (default: "+baselineName+" at the module root, if present)")
		writeBaseline = fs.Bool("write-baseline", false, "regenerate the baseline from current findings and exit")
		githubFlag    = fs.Bool("github", false, "emit GitHub ::error workflow annotations (auto under GITHUB_ACTIONS=true)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*analyzersFlag)
	if err != nil {
		return fail(err)
	}

	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	// The source importer resolves module-internal imports relative to
	// the working directory's module; run from the root so any package
	// argument works.
	if err := os.Chdir(root); err != nil {
		return fail(err)
	}

	loader := lint.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		return fail(err)
	}

	if *ownershipFlag != "" {
		rep, err := lint.Ownership(pkgs)
		if err != nil {
			return fail(err)
		}
		data, err := rep.MarshalIndent()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*ownershipFlag, append(data, '\n'), 0o644); err != nil {
			return fail(err)
		}
	}

	diags, err := lint.RunAnalyzers(analyzers, pkgs)
	if err != nil {
		return fail(err)
	}

	// Positional args narrow the analysis to matching packages; "./..."
	// and the empty list mean everything. Module-wide analyzers still
	// see the whole module, so narrowing only filters the output.
	filters := packageFilters(fs.Args())
	var filtered []lint.Diagnostic
	for _, d := range diags {
		if filters.match(root, d.Pos.Filename) {
			filtered = append(filtered, d)
		}
	}

	baselinePath := *baselineFlag
	if baselinePath == "" {
		baselinePath = filepath.Join(root, baselineName)
	}
	if *writeBaseline {
		b := lint.BaselineOf(root, filtered)
		if err := b.Save(baselinePath); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "simlint: wrote %d baseline entries to %s\n", len(b.Entries), baselinePath)
		return 0
	}
	baseline, err := lint.LoadBaseline(baselinePath)
	if err != nil {
		return fail(err)
	}
	filtered = baseline.Filter(root, filtered)

	if *sarifFlag != "" {
		f, err := os.Create(*sarifFlag)
		if err != nil {
			return fail(err)
		}
		if err := lint.WriteSARIF(f, root, analyzers, filtered); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}

	github := *githubFlag || os.Getenv("GITHUB_ACTIONS") == "true"
	if *jsonFlag {
		if err := lint.WriteJSON(stdout, root, filtered); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range lint.JSONDiagnostics(root, filtered) {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if github {
		for _, d := range lint.JSONDiagnostics(root, filtered) {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=simlint %s::%s\n",
				d.File, d.Line, d.Column, d.Analyzer, escapeAnnotation(d.Message))
		}
	}
	if len(filtered) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves -analyzers against the suite, preserving
// suite order; an unknown name is a usage error (exit 2).
func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		return nil, fmt.Errorf("unknown analyzer(s) %s (see simlint -list)", strings.Join(unknown, ", "))
	}
	return out, nil
}

// escapeAnnotation encodes the characters the workflow-command parser
// treats specially.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

type filterList []string

func packageFilters(args []string) filterList {
	var fl filterList
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		a = strings.TrimSuffix(a, "/...")
		a = strings.Trim(a, "/")
		if a == "." || a == "" {
			return nil // whole module
		}
		fl = append(fl, a)
	}
	return fl
}

func (fl filterList) match(root, file string) bool {
	if len(fl) == 0 {
		return true
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return true
	}
	rel = filepath.ToSlash(rel)
	for _, f := range fl {
		if strings.HasPrefix(rel, f+"/") || filepath.Dir(rel) == f {
			return true
		}
	}
	return false
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	return 2
}
