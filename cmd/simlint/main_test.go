package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirT moves the process into dir for the test's duration. runWith
// resolves the module from the working directory, so each case runs
// inside its own temp module.
func chdirT(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule materializes a one-package module under a temp root and
// returns the root.
func writeModule(t *testing.T, relPath, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixturemod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, filepath.FromSlash(relPath))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestExitCodeUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if got := runWith([]string{"-analyzers", "nosuch"}, &out); got != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", got)
	}
	if got := runWith([]string{"-no-such-flag"}, &out); got != 2 {
		t.Errorf("unknown flag: exit %d, want 2", got)
	}
}

func TestExitCodeList(t *testing.T) {
	var out bytes.Buffer
	if got := runWith([]string{"-list"}, &out); got != 0 {
		t.Fatalf("-list: exit %d, want 0", got)
	}
	for _, name := range []string{"determinism", "sharedmut", "neutral", "cachekey"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

func TestExitCodeFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks a module")
	}
	// time.Now() inside simulator scope is a determinism finding.
	root := writeModule(t, "internal/cache", `package cache

import "time"

func Tick(now uint64) int64 { return time.Now().UnixNano() }
`)
	chdirT(t, root)
	var out bytes.Buffer
	if got := runWith(nil, &out); got != 1 {
		t.Fatalf("module with violation: exit %d, want 1\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("output missing the determinism finding:\n%s", out.String())
	}
}

func TestExitCodeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks a module")
	}
	root := writeModule(t, "internal/cache", `package cache

func Tick(now uint64) uint64 { return now + 1 }
`)
	chdirT(t, root)
	var out bytes.Buffer
	if got := runWith(nil, &out); got != 0 {
		t.Fatalf("clean module: exit %d, want 0\noutput:\n%s", got, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}
