// Command simprof runs a workload under the guest-level
// cycle-attribution profiler (internal/prof) and renders where the
// cycles went: hot guest functions and PCs with per-level stall
// columns, and the cache-line sharing heatmap with false-sharing
// candidates flagged.
//
// Like cmd/cmpsim, the per-architecture runs dispatch through the
// internal/runner pool, so -jobs shards them across cores without
// changing a byte of output. Profiled jobs are never cached (the
// profiler is a runtime attachment), so there is no -cache-dir flag.
//
// Usage:
//
//	simprof -workload mp3d -quick                 # all three architectures
//	simprof -workload ear -arch shared-mem        # one architecture
//	simprof -workload mp3d -quick -out prof.json  # also save raw profiles
//	simprof -in prof.shared-mem.json              # re-render a saved profile
//	simprof -workload fft -quick -folded fft.txt  # folded stacks (flamegraphs)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/prof"
	"cmpsim/internal/runner"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simprof:", err)
	os.Exit(1)
}

// splice inserts arch before the extension when several architectures
// run in one invocation ("prof.json" → "prof.shared-mem.json").
func splice(path, arch string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + arch + ext
}

// writeFile creates path and hands it to fn, folding the close error
// into fn's.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		wlName   = flag.String("workload", "", "workload to profile (see cmpsim -list)")
		archStr  = flag.String("arch", "all", "architecture: shared-l1, shared-l2, shared-mem, or all")
		model    = flag.String("model", "mipsy", "CPU model: mipsy or mxs")
		cpus     = flag.Int("cpus", 0, "override processor count (0 = paper's 4)")
		quick    = flag.Bool("quick", false, "use reduced data sets (smoke runs)")
		top      = flag.Int("top", 15, "rows per report table")
		jobs     = flag.Int("jobs", 0, "max concurrent architecture runs (0 = GOMAXPROCS); output is identical for any value")
		progress = flag.Bool("progress", false, "print per-job completion lines on stderr; stdout is unaffected")
		out      = flag.String("out", "", "write each run's raw profile as JSON to this file (arch spliced in before the extension)")
		folded   = flag.String("folded", "", "write folded-stack lines (flamegraph.pl input) to this file")
		in       = flag.String("in", "", "render a previously saved profile JSON and exit (no simulation)")
	)
	var telem telemetry.Flags
	telem.Register()
	flag.Parse()

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		p, err := prof.ReadProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p.WriteReport(os.Stdout, *top)
		return
	}
	if *wlName == "" {
		fmt.Fprintln(os.Stderr, "simprof: -workload is required (or -in to render a saved profile)")
		os.Exit(2)
	}

	var arches []core.Arch
	if *archStr == "all" {
		arches = core.Arches()
	} else {
		arches = []core.Arch{core.Arch(*archStr)}
	}

	set, err := telem.Start()
	if err != nil {
		fatal(err)
	}
	defer telem.Close()

	pool := &runner.Pool{Workers: *jobs}
	if *progress {
		pool.Progress = os.Stderr
	}
	if set != nil {
		pool.Telem = set.Runner
	}

	variant := "full"
	if *quick {
		variant = "quick"
	}
	archJobs := make([]runner.Job, len(arches))
	for i, a := range arches {
		cfg := memsys.DefaultConfig()
		if *cpus > 0 {
			cfg.NumCPUs = *cpus
		}
		cfg.Prof = prof.New(cfg.NumCPUs, cfg.LineBytes)
		if set != nil {
			cfg.Telem = set.Sim
		}
		name := *wlName
		q := *quick
		archJobs[i] = runner.Job{
			Workload: func() (workload.Workload, error) {
				if q {
					return workload.NewQuick(name)
				}
				return workload.New(name)
			},
			WorkloadKey: name + "/" + variant,
			Arch:        a,
			Model:       core.CPUModel(*model),
			Cfg:         cfg,
			Tag:         name + "-" + string(a),
		}
	}

	results := pool.Run(archJobs)
	if err := runner.FirstErr(results); err != nil {
		fatal(err)
	}

	multi := len(arches) > 1
	for i, a := range arches {
		p := results[i].Res.Profile
		if p == nil {
			fatal(fmt.Errorf("%s: run returned no profile", a))
		}
		p.Workload = *wlName
		p.WriteReport(os.Stdout, *top)
		if *out != "" {
			path := splice(*out, string(a), multi)
			if err := writeFile(path, p.WriteJSON); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote profile to %s\n", path)
		}
		if *folded != "" {
			path := splice(*folded, string(a), multi)
			if err := writeFile(path, p.WriteFolded); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote folded stacks to %s\n", path)
		}
	}
}
