package main

import (
	"fmt"
	"io"
	"sort"

	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
)

// regionProfile aggregates the memory system's access trace by 256KB
// physical region: how many references each region received, at which
// hierarchy level they were serviced, and how much load-to-use latency
// they cost. It implements obsv.Tracer and is wired in through
// memsys.Config.Trace, consuming only the load/store events.
type regionProfile struct {
	regions map[uint32]*regionStats
}

type regionStats struct {
	count    [memsys.NumLevels]uint64
	latency  uint64
	accesses uint64
	writes   uint64
}

const regionShift = 18 // 256 KiB granularity

func newRegionProfile() *regionProfile {
	return &regionProfile{regions: make(map[uint32]*regionStats)}
}

// Emit implements obsv.Tracer.
func (p *regionProfile) Emit(ev obsv.Event) {
	if ev.Kind != obsv.EvLoad && ev.Kind != obsv.EvStore {
		return
	}
	key := ev.Addr >> regionShift
	rs := p.regions[key]
	if rs == nil {
		rs = &regionStats{}
		p.regions[key] = rs
	}
	rs.count[ev.Level]++
	rs.accesses++
	rs.latency += uint64(ev.Arg)
	if ev.Kind == obsv.EvStore {
		rs.writes++
	}
}

// print writes the top-n regions by total latency.
func (p *regionProfile) print(w io.Writer, n int) {
	type row struct {
		key uint32
		rs  *regionStats
	}
	rows := make([]row, 0, len(p.regions))
	for k, rs := range p.regions {
		rows = append(rows, row{k, rs})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rs.latency != rows[j].rs.latency {
			return rows[i].rs.latency > rows[j].rs.latency
		}
		return rows[i].key < rows[j].key
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	fmt.Fprintf(w, "%-22s %10s %8s %9s %9s %9s %9s %10s\n",
		"region", "accesses", "writes%", "L1%", "L2%", "mem%", "c2c%", "avg lat")
	for _, r := range rows {
		base := r.rs
		pct := func(c uint64) float64 { return 100 * float64(c) / float64(base.accesses) }
		fmt.Fprintf(w, "[%08x,%08x) %10d %7.1f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %10.2f\n",
			r.key<<regionShift, (r.key+1)<<regionShift,
			base.accesses, pct(base.writes),
			pct(base.count[memsys.LvlL1]), pct(base.count[memsys.LvlL2]),
			pct(base.count[memsys.LvlMem]), pct(base.count[memsys.LvlC2C]),
			float64(base.latency)/float64(base.accesses))
	}
}
