// Command cmpsim runs one workload on one or all of the three
// multiprocessor-microprocessor architectures and prints the paper-style
// execution-time breakdown and miss-rate table.
//
// With -arch all (the default) the three architecture runs are
// independent, so they dispatch through the internal/runner pool:
// -jobs shards them across cores and -cache-dir memoizes results;
// output is identical for any worker count.
//
// Usage:
//
//	cmpsim -workload eqntott                 # all three architectures, Mipsy
//	cmpsim -workload mp3d -arch shared-l1    # one architecture
//	cmpsim -workload ear -model mxs          # detailed dynamic superscalar model
//	cmpsim -workload mp3d -l2assoc 4         # the Section 4.1 L2 ablation
//	cmpsim -workload eqntott -quick -jobs 4  # parallel smoke run
//	cmpsim -list                             # list workloads
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cmpsim/internal/check"
	"cmpsim/internal/core"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
	"cmpsim/internal/runner"
	"cmpsim/internal/stats"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

// splicePath inserts arch before the extension when several
// architectures run in one invocation, so per-run sink files never
// collide ("prof.json" → "prof.shared-mem.json").
func splicePath(path, arch string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + arch + ext
}

// writeTraces flushes one run's ring to the requested sink files. When
// several architectures run in one invocation, each run gets its own
// files with the architecture name spliced in before the extension —
// two runs never share a sink, so their events cannot interleave.
func writeTraces(ring *obsv.Ring, chromePath, jsonlPath, arch string, multi bool) error {
	events := ring.Events()
	write := func(path string, fn func(io.Writer, []obsv.Event) error) error {
		if path == "" {
			return nil
		}
		path = splicePath(path, arch, multi)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(events), path)
		return nil
	}
	if err := write(chromePath, obsv.WriteChromeTrace); err != nil {
		return err
	}
	return write(jsonlPath, obsv.WriteJSONL)
}

// printCoherence prints the coherence-protocol counters of the
// architectures that have one (bus snooping for shared-mem, the L1
// sharing directory for shared-L2). These feed the Section 3
// discussion of coherence traffic and are otherwise invisible in the
// figure-style breakdowns.
func printCoherence(rep *memsys.Report) {
	if sn := rep.Snoop; sn != nil {
		fmt.Printf("            snoop: rd=%d wr=%d upg=%d inv=%d c2c=%d\n",
			sn.ReadMissesSnooped, sn.WriteMissesSnooped, sn.Upgrades,
			sn.InvalidationsSent, sn.CacheToCache)
	}
	if d := rep.Dir; d != nil {
		fmt.Printf("            dir: inv=%d inclusion-evicts=%d\n",
			d.Invalidations, d.InclusionEvicts)
	}
}

func main() {
	var (
		wlName  = flag.String("workload", "", "workload to run (see -list)")
		archStr = flag.String("arch", "all", "architecture: shared-l1, shared-l2, shared-mem, or all")
		model   = flag.String("model", "mipsy", "CPU model: mipsy or mxs")
		l2assoc = flag.Uint("l2assoc", 0, "override L2 associativity (0 = paper default)")
		cpus    = flag.Int("cpus", 0, "override processor count (0 = paper's 4)")
		regions = flag.Bool("regions", false, "profile data accesses by 256KB physical region")
		list    = flag.Bool("list", false, "list available workloads")
		verbose = flag.Bool("v", false, "also print raw cycle counts and IPC")
		quick   = flag.Bool("quick", false, "use reduced data sets (smoke runs)")
		noSkip  = flag.Bool("no-skip", false, "disable quiescence skipping in the cycle loop (slower; output is identical)")

		jobs     = flag.Int("jobs", 0, "max concurrent architecture runs (0 = GOMAXPROCS); output is identical for any value")
		simJobs  = flag.Int("sim-jobs", 1, "shard each simulation's CPUs across up to N host goroutines (1 = serial; output is identical for any value; composes with -jobs under a host-core cap)")
		layout   = flag.String("shard-layout", "", "explicit CPU→worker assignment for the parallel tick, e.g. 0,1,0,1 (empty = contiguous split; parprof -suggest-layout proposes one; output is identical for any layout)")
		adaptWin = flag.Bool("sim-window-adapt", false, "let the parallel-tick coordinator fast-forward quiescent stretches and retune window sizes from observed tick density (output is identical)")
		cacheDir = flag.String("cache-dir", "", "memoize run results as JSON under this directory (\"\" = off)")
		progress = flag.Bool("progress", false, "print per-job completion lines (wall time, cache status) on stderr; stdout is unaffected")

		profFlag = flag.Bool("prof", false, "collect a guest cycle-attribution profile and print hot functions/PCs and the line-sharing heatmap")
		profOut  = flag.String("prof-out", "", "write the profile as JSON (cmd/simprof -in reads it) to this file")
		profTop  = flag.Int("prof-top", 15, "rows per profile report table")

		sanitize = flag.Bool("sanitize", false, "validate coherence/cycle invariants on every transaction (panics with an event trail on violation)")

		hostProf    = flag.Bool("host-prof", false, "profile the parallel-tick host schedule (gate waits, speedup decomposition); unlike -prof this does NOT force the run serial")
		hostProfOut = flag.String("host-prof-out", "", "write the host profile as JSON (cmd/parprof -in reads it) to this file")

		traceChrome = flag.String("trace", "", "write a Chrome trace (chrome://tracing, Perfetto) to this file")
		traceJSONL  = flag.String("trace-out", "", "write the raw event trace as JSON Lines (cmd/tracestats input) to this file")
		traceBuf    = flag.Int("trace-buf", 1<<20, "trace ring-buffer capacity in events (oldest dropped)")
		metricsIvl  = flag.Uint64("metrics-interval", 0, "sample interval metrics every N cycles (0 = off)")
	)
	var telem telemetry.Flags
	telem.Register()
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			w, _ := workload.New(n)
			fmt.Printf("%-10s %s\n", n, w.Description())
		}
		return
	}
	if *wlName == "" {
		fmt.Fprintln(os.Stderr, "cmpsim: -workload is required (try -list)")
		os.Exit(2)
	}

	var arches []core.Arch
	if *archStr == "all" {
		arches = core.Arches()
	} else {
		arches = []core.Arch{core.Arch(*archStr)}
	}

	cfg := memsys.DefaultConfig()
	if *l2assoc > 0 {
		cfg.L2Assoc = uint32(*l2assoc)
	}
	if *cpus > 0 {
		cfg.NumCPUs = *cpus
	}
	cfg.NoSkip = *noSkip
	cfg.SimJobs = *simJobs
	cfg.ShardLayout = *layout
	cfg.AdaptWindow = *adaptWin

	set, err := telem.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	defer telem.Close()

	pool := &runner.Pool{Workers: runner.CapWorkers(*jobs, *simJobs)}
	if *progress {
		pool.Progress = os.Stderr
	}
	if set != nil {
		pool.Telem = set.Runner
		cfg.Telem = set.Sim
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmpsim:", err)
			os.Exit(1)
		}
		pool.Cache = cache
	}

	// One job per architecture, each with its own tracer, profile and
	// checker instances so parallel runs share nothing.
	variant := "full"
	if *quick {
		variant = "quick"
	}
	archJobs := make([]runner.Job, len(arches))
	rings := make([]*obsv.Ring, len(arches))
	profs := make([]*regionProfile, len(arches))
	checkers := make([]*check.Checker, len(arches))
	hostRecs := make([]*hostprof.Recorder, len(arches))
	for i, a := range arches {
		acfg := cfg
		var tracers []obsv.Tracer
		if *regions {
			profs[i] = newRegionProfile()
			tracers = append(tracers, profs[i])
		}
		if *traceChrome != "" || *traceJSONL != "" {
			rings[i] = obsv.NewRing(*traceBuf)
			tracers = append(tracers, rings[i])
		}
		if *sanitize {
			// The checker doubles as a tracer so its violation reports
			// carry the events leading up to the break.
			checkers[i] = check.New(64)
			tracers = append(tracers, checkers[i])
			acfg.Check = checkers[i]
		}
		acfg.Trace = obsv.Tee(tracers...)
		if *metricsIvl > 0 {
			acfg.Metrics = obsv.NewMetrics(*metricsIvl)
		}
		if *profFlag || *profOut != "" {
			acfg.Prof = prof.New(acfg.NumCPUs, acfg.LineBytes)
		}
		if *hostProf || *hostProfOut != "" {
			// Host-side observer: records the parallel scheduler's own
			// execution, never sim state, so the run stays parallel.
			hostRecs[i] = hostprof.New()
			acfg.HostProf = hostRecs[i]
		}
		name := *wlName
		q := *quick
		archJobs[i] = runner.Job{
			Workload: func() (workload.Workload, error) {
				if q {
					return workload.NewQuick(name)
				}
				return workload.New(name)
			},
			WorkloadKey: name + "/" + variant,
			Arch:        a,
			Model:       core.CPUModel(*model),
			Cfg:         acfg,
			Tag:         name + "-" + string(a),
		}
	}

	results := pool.Run(archJobs)

	runs := map[core.Arch]*core.RunResult{}
	for i, a := range arches {
		if err := results[i].Err; err != nil {
			fmt.Fprintln(os.Stderr, "cmpsim:", err)
			os.Exit(1)
		}
		res := results[i].Res
		runs[a] = res
		if chk := checkers[i]; chk != nil {
			// Reaching here means every check passed (a violation panics).
			fmt.Printf("%-11s sanitize: %d checks, 0 violations\n", a, chk.Checks())
		}
		if *verbose {
			fmt.Printf("%-11s cycles=%d insts=%d IPC=%.3f\n", a, res.Cycles, res.Instructions(), res.IPC())
			printCoherence(&res.MemReport)
		}
		if prof := profs[i]; prof != nil {
			fmt.Printf("--- %s: data accesses by 256KB region (top 12 by total latency) ---\n", a)
			prof.print(os.Stdout, 12)
		}
		if ring := rings[i]; ring != nil {
			if err := writeTraces(ring, *traceChrome, *traceJSONL, string(a), len(arches) > 1); err != nil {
				fmt.Fprintln(os.Stderr, "cmpsim:", err)
				os.Exit(1)
			}
			if ring.Dropped() > 0 {
				fmt.Fprintf(os.Stderr, "cmpsim: %s: trace ring dropped %d of %d events (raise -trace-buf)\n",
					a, ring.Dropped(), ring.Emitted())
			}
		}
		if res.Metrics != nil {
			fmt.Printf("--- %s: interval metrics ---\n%s", a, res.Metrics.String())
		}
		if p := res.Profile; p != nil {
			p.Workload = *wlName
			if *profFlag {
				p.WriteReport(os.Stdout, *profTop)
			}
			if *profOut != "" {
				path := splicePath(*profOut, string(a), len(arches) > 1)
				f, err := os.Create(path)
				if err == nil {
					err = p.WriteJSON(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "cmpsim:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote profile to %s\n", path)
			}
		}
		if rec := hostRecs[i]; rec != nil {
			hp := rec.Snapshot(*wlName, string(a), *model)
			if *hostProf {
				if err := hp.WriteReport(os.Stdout, *profTop, false); err != nil {
					fmt.Fprintln(os.Stderr, "cmpsim:", err)
					os.Exit(1)
				}
			}
			if *hostProfOut != "" {
				path := splicePath(*hostProfOut, string(a), len(arches) > 1)
				f, err := os.Create(path)
				if err == nil {
					err = hp.WriteJSON(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "cmpsim:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote host profile to %s\n", path)
			}
		}
	}

	if _, ok := runs[core.SharedMem]; !ok {
		// No baseline for normalization; print raw numbers in run order.
		for _, a := range arches {
			b := stats.FromRun(runs[a])
			fmt.Printf("%-11s total=%.0f cpu=%.0f istall=%.0f dstall=%.0f\n",
				a, b.Total, b.CPU, b.IStall, b.MemStall())
		}
		return
	}
	fig := stats.BuildFigure("Result", *wlName, core.CPUModel(*model), runs)
	fmt.Print(fig.String())
	fmt.Print(fig.Chart())

	if *model == "mxs" {
		fmt.Println("\nIPC breakdown (Figure 11 style):")
		for _, a := range arches {
			row := stats.IPCBreakdown(runs[a])
			fmt.Printf("%-11s IPC=%.3f lossI=%.3f lossD=%.3f lossPipe=%.3f\n",
				a, row.IPC, row.LossI, row.LossD, row.LossPipe)
		}
	}
}
