// Command experiments regenerates every table and figure of the paper's
// evaluation in one run: Table 1 (functional-unit latencies), Table 2
// (contention-free access latencies), Figures 4-10 (per-application
// execution-time breakdowns and miss rates under the simple CPU model),
// the Section 4.1 MP3D L2-associativity ablation, and Figure 11 (IPC
// breakdowns under the detailed dynamic superscalar model).
//
//	experiments            # full paper-scale run (a few minutes)
//	experiments -quick     # reduced data sets for a fast smoke run
//	experiments -skip-mxs  # only the Mipsy figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/cyc"
	"cmpsim/internal/cpu"
	"cmpsim/internal/isa"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/stats"
	"cmpsim/internal/workload"
)

// obsvOpts carries the observability flags; when tracing or sampling is
// on, every (figure, architecture) run gets its own output file.
type obsvOpts struct {
	chrome   string
	jsonl    string
	bufSize  int
	interval uint64
}

var obsvFlags obsvOpts

func main() {
	quick := flag.Bool("quick", false, "reduced data sets")
	skipMXS := flag.Bool("skip-mxs", false, "skip the detailed-CPU (Figure 11) runs")
	flag.StringVar(&obsvFlags.chrome, "trace", "", "write per-run Chrome traces; the figure and architecture are spliced into this filename")
	flag.StringVar(&obsvFlags.jsonl, "trace-out", "", "write per-run JSONL traces (cmd/tracestats input)")
	flag.IntVar(&obsvFlags.bufSize, "trace-buf", 1<<20, "trace ring-buffer capacity in events")
	flag.Uint64Var(&obsvFlags.interval, "metrics-interval", 0, "sample interval metrics every N cycles (0 = off)")
	flag.Parse()

	start := time.Now()
	table1()
	table2()

	figures := []struct {
		name string
		wl   func() workload.Workload
	}{
		{"Figure 4: Eqntott", func() workload.Workload { return eqntott(*quick) }},
		{"Figure 5: MP3D", func() workload.Workload { return mp3d(*quick) }},
		{"Figure 6: Ocean", func() workload.Workload { return ocean(*quick) }},
		{"Figure 7: Volpack", func() workload.Workload { return volpack(*quick) }},
		{"Figure 8: Ear", func() workload.Workload { return ear(*quick) }},
		{"Figure 9: FFT", func() workload.Workload { return fft(*quick) }},
		{"Figure 10: Multiprogramming + OS", func() workload.Workload { return pmake(*quick) }},
	}
	for _, f := range figures {
		runFigure(f.name, f.wl, core.ModelMipsy, nil)
	}

	mp3dAblation(*quick)

	if !*skipMXS {
		fmt.Println("=== Figure 11: dynamic superscalar (MXS) results ===")
		for _, f := range []struct {
			name string
			wl   func() workload.Workload
		}{
			{"Figure 11a: Multiprogramming (MXS)", func() workload.Workload { return pmake(*quick) }},
			{"Figure 11b: Eqntott (MXS)", func() workload.Workload { return eqntott(*quick) }},
			{"Figure 11c: Ear (MXS)", func() workload.Workload { return ear(*quick) }},
		} {
			rows := runFigure(f.name, f.wl, core.ModelMXS, nil)
			fmt.Println("IPC loss breakdown (ideal per-CPU IPC = 2):")
			for _, r := range rows {
				fmt.Printf("  %-11s IPC=%.3f  lossI=%.3f  lossD=%.3f  lossPipe=%.3f\n",
					r.Arch, r.IPC, r.LossI, r.LossD, r.LossPipe)
			}
			fmt.Println()
		}
	}

	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// pick builds name at full scale, or the central quick variant
// (workload.NewQuick) under -quick, so the reduced parameters stay in
// one place.
func pick(q bool, name string) workload.Workload {
	var w workload.Workload
	var err error
	if q {
		w, err = workload.NewQuick(name)
	} else {
		w, err = workload.New(name)
	}
	if err != nil {
		panic(err) // registry and quick table cover the same seven names
	}
	return w
}

func eqntott(q bool) workload.Workload { return pick(q, "eqntott") }
func mp3d(q bool) workload.Workload    { return pick(q, "mp3d") }
func ocean(q bool) workload.Workload   { return pick(q, "ocean") }
func volpack(q bool) workload.Workload { return pick(q, "volpack") }
func ear(q bool) workload.Workload     { return pick(q, "ear") }
func fft(q bool) workload.Workload     { return pick(q, "fft") }
func pmake(q bool) workload.Workload   { return pick(q, "pmake") }

func table1() {
	fmt.Println("=== Table 1: CPU functional unit latencies (cycles) ===")
	rows := []struct {
		name string
		op   isa.Op
	}{
		{"Integer ALU", isa.ADD},
		{"Integer Multiply", isa.MUL},
		{"Integer Divide", isa.DIV},
		{"Branch", isa.BEQ},
		{"Store", isa.SW},
		{"SP Add/Sub", isa.FADDS},
		{"SP Multiply", isa.FMULS},
		{"SP Divide", isa.FDIVS},
		{"DP Add/Sub", isa.FADDD},
		{"DP Multiply", isa.FMULD},
		{"DP Divide", isa.FDIVD},
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %2d\n", r.name, cpu.Latency(r.op))
	}
	fmt.Printf("  %-18s %s\n", "Load", "1 or 3 (memory system; shared-L1 pays 3 under MXS)")
	fmt.Println()
}

func table2() {
	fmt.Println("=== Table 2: contention-free access latencies (cycles, incl. 1-cycle L1 lookup) ===")
	cfg := memsys.DefaultConfig()
	type probeResult struct {
		arch        string
		l1, l2, mem uint64
		c2c         uint64
	}
	results := []probeResult{}

	// shared-L1 (simple CPU configuration: 1-cycle hit).
	s1 := memsys.NewSharedL1(cfg)
	r, _ := s1.Access(0, 0, 0x1000, false) // cold -> memory
	memLat := r.Done
	r, _ = s1.Access(1000, 0, 0x1000, false) // hit
	l1Lat := cyc.Lat(r.Done, 1000)
	// L2 hit: evict from L1 via three conflicting fills.
	for i, a := range []uint32{0x1000 + 32<<10, 0x1000 + 64<<10, 0x1000 + 96<<10} {
		s1.Access(uint64(2000+200*i), 0, a, false)
	}
	r, _ = s1.Access(10000, 0, 0x1000, false)
	results = append(results, probeResult{"shared-l1", l1Lat, cyc.Lat(r.Done, 10000), memLat, 0})

	s2 := memsys.NewSharedL2(cfg)
	r, _ = s2.Access(0, 0, 0x1000, false)
	memLat = r.Done
	r, _ = s2.Access(1000, 0, 0x1000, false)
	l1Lat = cyc.Lat(r.Done, 1000)
	r, _ = s2.Access(2000, 1, 0x1000, false) // other CPU: L2 hit
	results = append(results, probeResult{"shared-l2", l1Lat, cyc.Lat(r.Done, 2000), memLat, 0})

	sm := memsys.NewSharedMem(cfg)
	r, _ = sm.Access(0, 0, 0x1000, false)
	memLat = r.Done
	r, _ = sm.Access(1000, 0, 0x1000, false)
	l1Lat = cyc.Lat(r.Done, 1000)
	r, _ = sm.Access(2000, 1, 0x1000, false) // remote copy: cache-to-cache
	c2c := cyc.Lat(r.Done, 2000)
	// L2 hit: evict CPU1's L1 copy by filling its set, then re-read.
	for i, a := range []uint32{0x1000 + 8<<10, 0x1000 + 16<<10} {
		sm.Access(uint64(3000+200*i), 1, a, false)
	}
	r, _ = sm.Access(10000, 1, 0x1000, false)
	results = append(results, probeResult{"shared-mem", l1Lat, cyc.Lat(r.Done, 10000), memLat, c2c})

	fmt.Printf("  %-11s %6s %6s %6s %6s\n", "arch", "L1", "L2", "mem", "c2c")
	for _, p := range results {
		c2cs := "-"
		if p.c2c > 0 {
			c2cs = fmt.Sprint(p.c2c)
		}
		fmt.Printf("  %-11s %6d %6d %6d %6s\n", p.arch, p.l1, p.l2, p.mem, c2cs)
	}
	fmt.Println()
}

// runTag turns a figure name into a filename-safe fragment
// ("Figure 4: Eqntott" -> "figure-4-eqntott").
func runTag(name string) string {
	f := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}
	tag := strings.Map(f, name)
	for strings.Contains(tag, "--") {
		tag = strings.ReplaceAll(tag, "--", "-")
	}
	return strings.Trim(tag, "-")
}

// splice inserts tag before path's extension.
func splice(path, tag string) string {
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + tag + ext
}

// dumpTrace writes the ring's events to the per-run trace files.
func dumpTrace(ring *obsv.Ring, tag string) {
	events := ring.Events()
	if obsvFlags.chrome != "" {
		path := splice(obsvFlags.chrome, tag)
		f, err := os.Create(path)
		if err == nil {
			err = obsv.WriteChromeTrace(f, events)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("  [trace] %d events -> %s\n", len(events), path)
	}
	if obsvFlags.jsonl != "" {
		path := splice(obsvFlags.jsonl, tag)
		f, err := os.Create(path)
		if err == nil {
			err = obsv.WriteJSONL(f, events)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("  [trace] %d events -> %s\n", len(events), path)
	}
	if ring.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: trace ring dropped %d of %d events (raise -trace-buf)\n",
			ring.Dropped(), ring.Emitted())
	}
}

func runFigure(name string, mk func() workload.Workload, model core.CPUModel, cfg *memsys.Config) []stats.IPCRow {
	// The stall-accounting violation counter is process-global; reset it
	// so each figure reports only its own violations instead of
	// accumulating everything since program start.
	obsv.ResetAccountingViolations()
	runs := map[core.Arch]*core.RunResult{}
	var ipcRows []stats.IPCRow
	var wlName string
	for _, a := range core.Arches() {
		w := mk()
		wlName = w.Name()
		acfg := memsys.DefaultConfig()
		if cfg != nil {
			acfg = *cfg
		}
		var ring *obsv.Ring
		if obsvFlags.chrome != "" || obsvFlags.jsonl != "" {
			ring = obsv.NewRing(obsvFlags.bufSize)
			acfg.Trace = ring
		}
		if obsvFlags.interval > 0 {
			acfg.Metrics = obsv.NewMetrics(obsvFlags.interval)
		}
		res, err := workload.Run(w, a, model, &acfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s on %s: %v\n", name, a, err)
			os.Exit(1)
		}
		if ring != nil {
			dumpTrace(ring, runTag(name)+"-"+string(a))
		}
		if res.Metrics != nil {
			samples := res.Metrics.Samples()
			var peak float64
			for _, smp := range samples {
				if smp.IPC > peak {
					peak = smp.IPC
				}
			}
			fmt.Printf("  [metrics] %s: %d samples, peak interval IPC %.3f\n", a, len(samples), peak)
		}
		runs[a] = res
		ipcRows = append(ipcRows, stats.IPCBreakdown(res))
	}
	fig := stats.BuildFigure(name, wlName, model, runs)
	fmt.Print(fig.String())
	fmt.Print(fig.Chart())
	if n := obsv.AccountingViolations(); n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %s: %d stall-accounting violation(s) in this figure\n", name, n)
	}
	fmt.Println()
	return ipcRows
}

func mp3dAblation(q bool) {
	fmt.Println("=== Section 4.1 ablation: MP3D shared-L1 with L2 associativity 1 vs 4 ===")
	for _, assoc := range []uint32{1, 4} {
		cfg := memsys.DefaultConfig()
		cfg.L2Assoc = assoc
		w := mp3d(q)
		res, err := workload.Run(w, core.SharedL1, core.ModelMipsy, &cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("  L2 %d-way: cycles=%-10d L2 miss rate=%5.1f%%  L1R=%5.1f%%\n",
			assoc, res.Cycles, 100*res.MemReport.L2.MissRate(), 100*res.MemReport.L1D.ReplRate())
	}
	fmt.Println()
}
