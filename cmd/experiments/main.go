// Command experiments regenerates every table and figure of the paper's
// evaluation in one run: Table 1 (functional-unit latencies), Table 2
// (contention-free access latencies), Figures 4-10 (per-application
// execution-time breakdowns and miss rates under the simple CPU model),
// the Section 4.1 MP3D L2-associativity ablation, and Figure 11 (IPC
// breakdowns under the detailed dynamic superscalar model).
//
// The full (architecture × CPU model × workload) grid is dispatched
// through the internal/runner worker pool: independent runs execute on
// up to -jobs cores and results are merged in stable order, so the
// printed figures are byte-identical to a -jobs=1 run. With -cache-dir
// set, finished cells are memoized on disk and later invocations skip
// them entirely.
//
//	experiments                  # full paper-scale run (a few minutes)
//	experiments -quick           # reduced data sets for a fast smoke run
//	experiments -skip-mxs        # only the Mipsy figures
//	experiments -jobs 4          # shard runs across 4 workers
//	experiments -cache-dir .sim  # reuse cached results across invocations
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/cpu"
	"cmpsim/internal/cyc"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/isa"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/prof"
	"cmpsim/internal/runner"
	"cmpsim/internal/stats"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

// obsvOpts carries the observability flags; when tracing or sampling is
// on, every (figure, architecture) run gets its own ring and its own
// output file, so parallel runs can never interleave events.
type obsvOpts struct {
	chrome      string
	jsonl       string
	bufSize     int
	interval    uint64
	profOut     string
	hostProfOut string
}

var obsvFlags obsvOpts

// noSkipFlag disables quiescence skipping in every dispatched run; the
// skip regression suite uses it to prove output-identical behavior.
var noSkipFlag bool

// simJobsFlag shards each dispatched simulation's CPUs across host
// goroutines; output is identical for any value. layoutFlag and
// adaptWinFlag are the other two scheduler shape knobs, equally
// output-neutral.
var simJobsFlag int
var layoutFlag string
var adaptWinFlag bool

// telemSim, when host telemetry is enabled, is the campaign-wide
// cycle-loop instrument panel shared by every dispatched job.
var telemSim *telemetry.SimMetrics

// fatalf is the single exit path for run and sink failures: nothing is
// printed-and-continued, so CI sees a non-zero exit on any broken cell.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

// figureSpec is one printed figure: a workload run on all three
// architectures under one CPU model. jobIdx are the positions of the
// per-architecture jobs (in core.Arches() order) in the dispatched
// job slice.
type figureSpec struct {
	name   string
	model  core.CPUModel
	jobIdx [3]int
}

// grid accumulates the full experiment job list plus the per-job rings
// that collect traces for the sink files.
type grid struct {
	jobs     []runner.Job
	rings    []*obsv.Ring
	hostRecs []*hostprof.Recorder
}

// addJob appends one run to the grid, wiring per-job observability
// attachments, and returns its job index.
func (g *grid) addJob(wlName string, quick bool, arch core.Arch, model core.CPUModel, cfg memsys.Config, tag string) int {
	variant := "full"
	if quick {
		variant = "quick"
	}
	cfg.NoSkip = noSkipFlag
	cfg.SimJobs = simJobsFlag
	cfg.ShardLayout = layoutFlag
	cfg.AdaptWindow = adaptWinFlag
	cfg.Telem = telemSim
	job := runner.Job{
		Workload: func() (workload.Workload, error) {
			if quick {
				return workload.NewQuick(wlName)
			}
			return workload.New(wlName)
		},
		WorkloadKey: wlName + "/" + variant,
		Arch:        arch,
		Model:       model,
		Cfg:         cfg,
		Tag:         tag,
	}
	var ring *obsv.Ring
	if obsvFlags.chrome != "" || obsvFlags.jsonl != "" {
		ring = obsv.NewRing(obsvFlags.bufSize)
		job.Cfg.Trace = ring
	}
	if obsvFlags.interval > 0 {
		job.Cfg.Metrics = obsv.NewMetrics(obsvFlags.interval)
	}
	if obsvFlags.profOut != "" {
		job.Cfg.Prof = prof.New(job.Cfg.NumCPUs, job.Cfg.LineBytes)
	}
	var hrec *hostprof.Recorder
	if obsvFlags.hostProfOut != "" {
		// Host-schedule observer: unlike Trace/Prof it never forces the
		// run serial, so -host-prof-out composes with -sim-jobs.
		hrec = hostprof.New()
		job.Cfg.HostProf = hrec
	}
	g.jobs = append(g.jobs, job)
	g.rings = append(g.rings, ring)
	g.hostRecs = append(g.hostRecs, hrec)
	return len(g.jobs) - 1
}

// addFigure appends one workload's three-architecture runs.
func (g *grid) addFigure(name, wlName string, quick bool, model core.CPUModel) figureSpec {
	spec := figureSpec{name: name, model: model}
	for i, a := range core.Arches() {
		spec.jobIdx[i] = g.addJob(wlName, quick, a, model, memsys.DefaultConfig(),
			runTag(name)+"-"+string(a))
	}
	return spec
}

func main() {
	quick := flag.Bool("quick", false, "reduced data sets")
	skipMXS := flag.Bool("skip-mxs", false, "skip the detailed-CPU (Figure 11) runs")
	jobs := flag.Int("jobs", 0, "max concurrent simulation runs (0 = GOMAXPROCS); output is identical for any value")
	cacheDir := flag.String("cache-dir", "", "memoize run results as JSON under this directory (\"\" = off)")
	flag.StringVar(&obsvFlags.chrome, "trace", "", "write per-run Chrome traces; the figure and architecture are spliced into this filename")
	flag.StringVar(&obsvFlags.jsonl, "trace-out", "", "write per-run JSONL traces (cmd/tracestats input)")
	flag.IntVar(&obsvFlags.bufSize, "trace-buf", 1<<20, "trace ring-buffer capacity in events")
	flag.Uint64Var(&obsvFlags.interval, "metrics-interval", 0, "sample interval metrics every N cycles (0 = off)")
	flag.StringVar(&obsvFlags.profOut, "prof-out", "", "write per-run cycle-attribution profiles as JSON (cmd/simprof -in); the run tag is spliced into this filename")
	flag.StringVar(&obsvFlags.hostProfOut, "host-prof-out", "", "write per-run host-schedule profiles as JSON (cmd/parprof -in); the run tag is spliced into this filename")
	progress := flag.Bool("progress", false, "print per-job completion lines (wall time, cache status) on stderr; stdout is unaffected")
	flag.BoolVar(&noSkipFlag, "no-skip", false, "disable quiescence skipping in the cycle loop (slower; output is identical)")
	flag.IntVar(&simJobsFlag, "sim-jobs", 1, "shard each simulation's CPUs across up to N host goroutines (1 = serial; output is identical for any value; composes with -jobs under a host-core cap)")
	flag.StringVar(&layoutFlag, "shard-layout", "", "explicit CPU→worker assignment for the parallel tick, e.g. 0,1,0,1 (empty = contiguous split; parprof -suggest-layout proposes one; output is identical for any layout)")
	flag.BoolVar(&adaptWinFlag, "sim-window-adapt", false, "let the parallel-tick coordinator fast-forward quiescent stretches and retune window sizes from observed tick density (output is identical)")
	var telem telemetry.Flags
	telem.Register()
	telem.RegisterReport()
	flag.Parse()

	start := time.Now()
	table1()
	table2()

	set, err := telem.Start()
	if err != nil {
		fatalf("%v", err)
	}
	defer telem.Close()

	pool := &runner.Pool{Workers: runner.CapWorkers(*jobs, simJobsFlag)}
	if *progress {
		pool.Progress = os.Stderr
	}
	if set != nil {
		pool.Telem = set.Runner
		telemSim = set.Sim
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		pool.Cache = cache
	}

	// Build the whole grid up front — Figures 4-10, the Section 4.1
	// ablation, and Figure 11 — then dispatch it through one pool run so
	// every independent cell can execute concurrently. Printing happens
	// afterwards in spec order, which keeps the output byte-identical to
	// a serial run.
	var g grid
	figures := []struct {
		name string
		wl   string
	}{
		{"Figure 4: Eqntott", "eqntott"},
		{"Figure 5: MP3D", "mp3d"},
		{"Figure 6: Ocean", "ocean"},
		{"Figure 7: Volpack", "volpack"},
		{"Figure 8: Ear", "ear"},
		{"Figure 9: FFT", "fft"},
		{"Figure 10: Multiprogramming + OS", "pmake"},
	}
	var mipsySpecs []figureSpec
	for _, f := range figures {
		mipsySpecs = append(mipsySpecs, g.addFigure(f.name, f.wl, *quick, core.ModelMipsy))
	}

	ablationAssocs := []uint32{1, 4}
	var ablationIdx []int
	for _, assoc := range ablationAssocs {
		cfg := memsys.DefaultConfig()
		cfg.L2Assoc = assoc
		ablationIdx = append(ablationIdx, g.addJob("mp3d", *quick, core.SharedL1, core.ModelMipsy,
			cfg, fmt.Sprintf("ablation-mp3d-l2assoc-%d", assoc)))
	}

	var mxsSpecs []figureSpec
	if !*skipMXS {
		for _, f := range []struct {
			name string
			wl   string
		}{
			{"Figure 11a: Multiprogramming (MXS)", "pmake"},
			{"Figure 11b: Eqntott (MXS)", "eqntott"},
			{"Figure 11c: Ear (MXS)", "ear"},
		} {
			mxsSpecs = append(mxsSpecs, g.addFigure(f.name, f.wl, *quick, core.ModelMXS))
		}
	}

	results := pool.Run(g.jobs)

	for _, spec := range mipsySpecs {
		printFigure(spec, &g, results)
	}

	fmt.Println("=== Section 4.1 ablation: MP3D shared-L1 with L2 associativity 1 vs 4 ===")
	for i, assoc := range ablationAssocs {
		r := results[ablationIdx[i]]
		if r.Err != nil {
			fatalf("%v", r.Err)
		}
		res := r.Res
		fmt.Printf("  L2 %d-way: cycles=%-10d L2 miss rate=%5.1f%%  L1R=%5.1f%%\n",
			assoc, res.Cycles, 100*res.MemReport.L2.MissRate(), 100*res.MemReport.L1D.ReplRate())
		dumpProfile(res.Profile, "mp3d", g.jobs[ablationIdx[i]].Tag)
		dumpHostProf(g.hostRecs[ablationIdx[i]], "mp3d", string(core.SharedL1),
			string(core.ModelMipsy), g.jobs[ablationIdx[i]].Tag)
	}
	fmt.Println()

	if !*skipMXS {
		fmt.Println("=== Figure 11: dynamic superscalar (MXS) results ===")
		for _, spec := range mxsSpecs {
			rows := printFigure(spec, &g, results)
			fmt.Println("IPC loss breakdown (ideal per-CPU IPC = 2):")
			for _, r := range rows {
				fmt.Printf("  %-11s IPC=%.3f  lossI=%.3f  lossD=%.3f  lossPipe=%.3f\n",
					r.Arch, r.IPC, r.LossI, r.LossD, r.LossPipe)
			}
			fmt.Println()
		}
	}

	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func table1() {
	fmt.Println("=== Table 1: CPU functional unit latencies (cycles) ===")
	rows := []struct {
		name string
		op   isa.Op
	}{
		{"Integer ALU", isa.ADD},
		{"Integer Multiply", isa.MUL},
		{"Integer Divide", isa.DIV},
		{"Branch", isa.BEQ},
		{"Store", isa.SW},
		{"SP Add/Sub", isa.FADDS},
		{"SP Multiply", isa.FMULS},
		{"SP Divide", isa.FDIVS},
		{"DP Add/Sub", isa.FADDD},
		{"DP Multiply", isa.FMULD},
		{"DP Divide", isa.FDIVD},
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %2d\n", r.name, cpu.Latency(r.op))
	}
	fmt.Printf("  %-18s %s\n", "Load", "1 or 3 (memory system; shared-L1 pays 3 under MXS)")
	fmt.Println()
}

func table2() {
	fmt.Println("=== Table 2: contention-free access latencies (cycles, incl. 1-cycle L1 lookup) ===")
	cfg := memsys.DefaultConfig()
	type probeResult struct {
		arch        string
		l1, l2, mem uint64
		c2c         uint64
	}
	results := []probeResult{}

	// shared-L1 (simple CPU configuration: 1-cycle hit).
	s1 := memsys.NewSharedL1(cfg)
	r, _ := s1.Access(0, 0, 0x1000, false) // cold -> memory
	memLat := r.Done
	r, _ = s1.Access(1000, 0, 0x1000, false) // hit
	l1Lat := cyc.Lat(r.Done, 1000)
	// L2 hit: evict from L1 via three conflicting fills.
	for i, a := range []uint32{0x1000 + 32<<10, 0x1000 + 64<<10, 0x1000 + 96<<10} {
		s1.Access(uint64(2000+200*i), 0, a, false)
	}
	r, _ = s1.Access(10000, 0, 0x1000, false)
	results = append(results, probeResult{"shared-l1", l1Lat, cyc.Lat(r.Done, 10000), memLat, 0})

	s2 := memsys.NewSharedL2(cfg)
	r, _ = s2.Access(0, 0, 0x1000, false)
	memLat = r.Done
	r, _ = s2.Access(1000, 0, 0x1000, false)
	l1Lat = cyc.Lat(r.Done, 1000)
	r, _ = s2.Access(2000, 1, 0x1000, false) // other CPU: L2 hit
	results = append(results, probeResult{"shared-l2", l1Lat, cyc.Lat(r.Done, 2000), memLat, 0})

	sm := memsys.NewSharedMem(cfg)
	r, _ = sm.Access(0, 0, 0x1000, false)
	memLat = r.Done
	r, _ = sm.Access(1000, 0, 0x1000, false)
	l1Lat = cyc.Lat(r.Done, 1000)
	r, _ = sm.Access(2000, 1, 0x1000, false) // remote copy: cache-to-cache
	c2c := cyc.Lat(r.Done, 2000)
	// L2 hit: evict CPU1's L1 copy by filling its set, then re-read.
	for i, a := range []uint32{0x1000 + 8<<10, 0x1000 + 16<<10} {
		sm.Access(uint64(3000+200*i), 1, a, false)
	}
	r, _ = sm.Access(10000, 1, 0x1000, false)
	results = append(results, probeResult{"shared-mem", l1Lat, cyc.Lat(r.Done, 10000), memLat, c2c})

	fmt.Printf("  %-11s %6s %6s %6s %6s\n", "arch", "L1", "L2", "mem", "c2c")
	for _, p := range results {
		c2cs := "-"
		if p.c2c > 0 {
			c2cs = fmt.Sprint(p.c2c)
		}
		fmt.Printf("  %-11s %6d %6d %6d %6s\n", p.arch, p.l1, p.l2, p.mem, c2cs)
	}
	fmt.Println()
}

// runTag turns a figure name into a filename-safe fragment
// ("Figure 4: Eqntott" -> "figure-4-eqntott").
func runTag(name string) string {
	f := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}
	tag := strings.Map(f, name)
	for strings.Contains(tag, "--") {
		tag = strings.ReplaceAll(tag, "--", "-")
	}
	return strings.Trim(tag, "-")
}

// splice inserts tag before path's extension.
func splice(path, tag string) string {
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + tag + ext
}

// dumpTrace writes one job's ring to that job's trace files (the job
// tag is spliced into the filename, so no two runs share a sink). Each
// file is created, written and closed here, per run — a sink failure
// is fatal, never printed-and-skipped.
func dumpTrace(ring *obsv.Ring, tag string) {
	events := ring.Events()
	write := func(path string, fn func(*os.File, []obsv.Event) error) {
		f, err := os.Create(path)
		if err == nil {
			err = fn(f, events)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  [trace] %d events -> %s\n", len(events), path)
	}
	if obsvFlags.chrome != "" {
		write(splice(obsvFlags.chrome, tag), func(f *os.File, evs []obsv.Event) error {
			return obsv.WriteChromeTrace(f, evs)
		})
	}
	if obsvFlags.jsonl != "" {
		write(splice(obsvFlags.jsonl, tag), func(f *os.File, evs []obsv.Event) error {
			return obsv.WriteJSONL(f, evs)
		})
	}
	if ring.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: trace ring dropped %d of %d events (raise -trace-buf)\n",
			ring.Dropped(), ring.Emitted())
	}
}

// dumpHostProf writes one job's host-schedule profile to that job's
// -host-prof-out file (tag spliced in). No-op when the run carried no
// recorder.
func dumpHostProf(rec *hostprof.Recorder, wlName, arch, model, tag string) {
	if rec == nil {
		return
	}
	p := rec.Snapshot(wlName, arch, model)
	path := splice(obsvFlags.hostProfOut, tag)
	f, err := os.Create(path)
	if err == nil {
		err = p.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatalf("%s: write host profile: %v", tag, err)
	}
	fmt.Printf("  [host-prof] wrote %s\n", path)
}

// dumpProfile writes one job's cycle-attribution profile to that job's
// -prof-out file (tag spliced in). No-op when the run carried no
// profiler.
func dumpProfile(p *prof.Profile, wlName, tag string) {
	if p == nil {
		return
	}
	p.Workload = wlName
	path := splice(obsvFlags.profOut, tag)
	f, err := os.Create(path)
	if err == nil {
		err = p.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatalf("%s: write profile: %v", tag, err)
	}
	fmt.Printf("  [prof] wrote %s\n", path)
}

// printFigure renders one figure from its per-architecture results:
// trace dumps and metrics summaries first (in architecture order),
// then the breakdown table, chart and any accounting violations. A
// failed run aborts with a non-zero exit.
func printFigure(spec figureSpec, g *grid, results []runner.Result) []stats.IPCRow {
	runs := map[core.Arch]*core.RunResult{}
	var ipcRows []stats.IPCRow
	var wlName string
	for i, a := range core.Arches() {
		idx := spec.jobIdx[i]
		r := results[idx]
		if r.Err != nil {
			fatalf("%s on %s: %v", spec.name, a, r.Err)
		}
		res := r.Res
		wlName = strings.SplitN(g.jobs[idx].WorkloadKey, "/", 2)[0]
		if ring := g.rings[idx]; ring != nil {
			dumpTrace(ring, g.jobs[idx].Tag)
		}
		dumpProfile(res.Profile, wlName, g.jobs[idx].Tag)
		dumpHostProf(g.hostRecs[idx], wlName, string(a), string(spec.model), g.jobs[idx].Tag)
		if res.Metrics != nil {
			samples := res.Metrics.Samples()
			var peak float64
			for _, smp := range samples {
				if smp.IPC > peak {
					peak = smp.IPC
				}
			}
			fmt.Printf("  [metrics] %s: %d samples, peak interval IPC %.3f\n", a, len(samples), peak)
		}
		runs[a] = res
		ipcRows = append(ipcRows, stats.IPCBreakdown(res))
	}
	fig := stats.BuildFigure(spec.name, wlName, spec.model, runs)
	fmt.Print(fig.String())
	fmt.Print(fig.Chart())
	if n := fig.AccountingViolations(); n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %s: %d stall-accounting violation(s) in this figure\n", spec.name, n)
	}
	fmt.Println()
	return ipcRows
}
