// Command disasm prints the disassembly of a workload's guest programs
// (the benchmark itself, the guest runtime, and — for the
// multiprogramming workload — the guest kernel), as loaded into physical
// memory. Useful for inspecting exactly what the CPU models execute.
//
//	disasm -workload ear | less
//	disasm -workload pmake | grep -A4 kern_read
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cmpsim/internal/core"
	"cmpsim/internal/memsys"
	"cmpsim/internal/workload"
)

func main() {
	name := flag.String("workload", "", "workload whose guest code to dump (see cmpsim -list)")
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "disasm: -workload is required")
		os.Exit(2)
	}
	w, err := workload.New(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(2)
	}
	m, err := core.NewMachine(core.SharedMem, core.ModelMipsy, memsys.DefaultConfig(), w.MemBytes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	if err := w.Configure(m); err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	m.Code.Dump(out)
}
